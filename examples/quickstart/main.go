// Quickstart: predict the runtime of PageRank on the Wikipedia stand-in,
// then run it for real (on the simulated cluster) and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"predict"
)

func main() {
	// 1. A dataset. Stand-ins for the paper's four graphs are registered
	// by prefix; scale 0.5 halves the default size for a fast demo.
	g := predict.Dataset("Wiki").Generate(0.5, 42)
	fmt.Printf("dataset: Wikipedia-sim, %d vertices, %d edges\n\n",
		g.NumVertices(), g.NumEdges())

	// 2. An algorithm. PageRank converges when the average per-vertex
	// rank change drops below tau = eps/N (the paper's setting).
	pr := predict.NewPageRank()
	pr.Tau = predict.PageRankTau(0.001, g.NumVertices())

	// 3. The predictor: 10% Biased Random Jump sample, cost model trained
	// on sample runs at the paper's four training ratios.
	cfg := predict.DefaultCluster()
	p := predict.NewPredictor(predict.Options{
		Sampling:       predict.SamplingOptions{Ratio: 0.10, Seed: 7},
		BSP:            cfg,
		TrainingRatios: []float64{0.05, 0.10, 0.15, 0.20},
	})
	pred, err := p.Predict(pr, g)
	if err != nil {
		log.Fatalf("predict: %v", err)
	}
	fmt.Println("--- prediction ---")
	fmt.Println(predict.FormatPrediction(pred))

	// 4. Ground truth: the actual run on the full graph.
	actual, err := pr.Run(g, cfg)
	if err != nil {
		log.Fatalf("actual run: %v", err)
	}
	ev := predict.Evaluate(pred, actual)
	fmt.Println("\n--- actual run ---")
	fmt.Printf("iterations           %d (prediction error %+.1f%%)\n",
		ev.ActualIterations, 100*ev.IterationsError)
	fmt.Printf("superstep runtime    %.1f s (prediction error %+.1f%%)\n",
		ev.ActualSeconds, 100*ev.RuntimeError)

	// 5. Versus the analytical upper bound the paper compares against.
	bound := predict.PageRankIterationBound(0.001, pr.Damping)
	fmt.Printf("\nanalytical iteration bound: %d (%.1fx the actual — PREDIcT's sample run is %.1fx off)\n",
		bound,
		float64(bound)/float64(ev.ActualIterations),
		float64(ev.PredictedIterations)/float64(ev.ActualIterations))
}
