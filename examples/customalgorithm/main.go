// Custom algorithm: plugging a user-defined vertex program into PREDIcT.
//
// The paper's methodology is not limited to the five built-in algorithms:
// anything that (a) runs as a BSP vertex program and (b) declares its
// transform function can be predicted. This example implements Random
// Walk with Restart (RWR) proximity — an algorithm the paper's §5.3
// expects to benefit from walk-based sampling — and predicts its runtime.
//
// RWR's convergence threshold is an absolute aggregate (like PageRank's),
// so its transform function scales tau by 1/sr.
//
//	go run ./examples/customalgorithm
package main

import (
	"fmt"
	"log"

	"predict"
	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/graph"
)

// rwr computes Random Walk with Restart proximity from a seed vertex: the
// stationary probability of a walker that follows out-edges and restarts
// at the seed with probability restart.
type rwr struct {
	Seed    graph.VertexID
	Restart float64
	Tau     float64
}

// Name implements predict.Algorithm.
func (r rwr) Name() string { return "RandomWalkWithRestart" }

// Transformed implements predict.Algorithm: the threshold is an absolute
// aggregate tuned to graph size, so it scales by 1/sr — the same default
// rule as PageRank. The seed must also be remapped into the sample; the
// closest hub is a faithful stand-in, so we keep vertex 0 of the sample
// (BRJ visits hubs first).
func (r rwr) Transformed(sr float64) algorithms.Algorithm {
	r.Tau = r.Tau / sr
	r.Seed = 0
	return r
}

// Run implements predict.Algorithm.
func (r rwr) Run(g *graph.Graph, cfg bsp.Config) (*algorithms.RunInfo, error) {
	prog := &rwrProgram{cfg: r, n: float64(g.NumVertices())}
	eng := bsp.NewEngine[float64, float64](g, prog, cfg)
	eng.SetCombiner(func(a, b float64) float64 { return a + b })
	n := float64(g.NumVertices())
	eng.SetHalt(func(si bsp.SuperstepInfo) bool {
		return si.Superstep > 0 && si.Aggregates["rwr.delta"]/n < r.Tau
	})
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}
	return &algorithms.RunInfo{
		Algorithm:  r.Name(),
		Iterations: res.Supersteps,
		Converged:  res.Converged,
		Profile:    res.Profile,
	}, nil
}

type rwrProgram struct {
	cfg rwr
	n   float64
}

func (p *rwrProgram) Init(_ *graph.Graph, id bsp.VertexID) float64 {
	if id == p.cfg.Seed {
		return 1
	}
	return 0
}

func (p *rwrProgram) Compute(ctx *bsp.Context[float64], id bsp.VertexID, val *float64, msgs []float64) {
	if ctx.Superstep() > 0 {
		var sum float64
		for _, m := range msgs {
			sum += m
		}
		next := (1 - p.cfg.Restart) * sum
		if id == p.cfg.Seed {
			next += p.cfg.Restart
		}
		delta := next - *val
		if delta < 0 {
			delta = -delta
		}
		ctx.AddToAggregate("rwr.delta", delta)
		*val = next
	}
	if deg := ctx.Graph().OutDegree(id); deg > 0 && *val > 0 {
		ctx.SendToNeighbors(id, *val/float64(deg))
	}
}

func (p *rwrProgram) MessageBytes(float64) int { return 8 }

func main() {
	g := predict.Dataset("TW").Generate(0.3, 17)
	cfg := predict.DefaultCluster()

	// Proximity from the biggest hub.
	seed := graph.VertexID(0)
	best := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.VertexID(v)); d > best {
			best, seed = d, graph.VertexID(v)
		}
	}
	alg := rwr{Seed: seed, Restart: 0.15, Tau: predict.PageRankTau(0.001, g.NumVertices())}
	fmt.Printf("custom algorithm %q on Twitter-sim (%d vertices), seed hub %d (degree %d)\n\n",
		alg.Name(), g.NumVertices(), seed, best)

	p := predict.NewPredictor(predict.Options{
		Sampling:       predict.SamplingOptions{Ratio: 0.1, Seed: 23},
		BSP:            cfg,
		TrainingRatios: []float64{0.05, 0.1, 0.15, 0.2},
	})
	pred, err := p.Predict(alg, g)
	if err != nil {
		log.Fatalf("predict: %v", err)
	}
	fmt.Println(predict.FormatPrediction(pred))

	actual, err := alg.Run(g, cfg)
	if err != nil {
		log.Fatalf("actual: %v", err)
	}
	ev := predict.Evaluate(pred, actual)
	fmt.Printf("\nactual: %d iterations, %.0f s superstep phase\n",
		ev.ActualIterations, ev.ActualSeconds)
	fmt.Printf("errors: iterations %+.1f%%, runtime %+.1f%%\n",
		100*ev.IterationsError, 100*ev.RuntimeError)
}
