// SLA feasibility analysis — the paper's §1 motivating question:
//
//	"Given a cluster deployment and a workload of iterative algorithms,
//	 is it feasible to execute the workload on an input dataset while
//	 guaranteeing user specified SLAs?"
//
// The example predicts the runtime of a three-job analytics workload on
// the UK web-graph stand-in, answers the feasibility question
// probabilistically — each prediction carries a p50/p95 runtime interval,
// so the workload's chance of meeting the deadline is a number, not a
// yes/no — then verifies the answer with actual runs.
//
//	go run ./examples/slafeasibility
package main

import (
	"fmt"
	"log"
	"math"

	"predict"
)

func main() {
	g := predict.Dataset("UK").Generate(0.5, 99)
	cfg := predict.DefaultCluster()
	fmt.Printf("dataset: UK2002-sim (%d vertices, %d edges), workers: %d\n\n",
		g.NumVertices(), g.NumEdges(), cfg.Workers)

	// The nightly analytics workload: rank pages, find their top-k
	// reachable ranks, label the link communities.
	pr := predict.NewPageRank()
	pr.Tau = predict.PageRankTau(0.001, g.NumVertices())
	tk := predict.NewTopKRanking()
	tk.PageRank = pr
	workload := []struct {
		name string
		alg  predict.Algorithm
	}{
		{"nightly PageRank", pr},
		{"top-k reachability", tk},
		{"community semi-clustering", predict.NewSemiClustering()},
	}

	const slaSeconds = 500.0

	p := predict.NewPredictor(predict.Options{
		Sampling:       predict.SamplingOptions{Ratio: 0.10, Seed: 3},
		BSP:            cfg,
		TrainingRatios: []float64{0.05, 0.10, 0.15, 0.20},
	})

	var totalPredicted, totalVariance, planningCost float64
	preds := make([]*predict.Prediction, len(workload))
	for i, job := range workload {
		pred, err := p.Predict(job.alg, g)
		if err != nil {
			log.Fatalf("%s: %v", job.name, err)
		}
		preds[i] = pred
		totalPredicted += pred.SuperstepSeconds
		totalVariance += pred.Runtime.StdDevSeconds * pred.Runtime.StdDevSeconds
		planningCost += pred.SampleRunSeconds
		fmt.Printf("%-28s predicted %7.0f s (p95 %7.0f s) in %2d iterations (model R2 %.2f)\n",
			job.name, pred.SuperstepSeconds, pred.Runtime.P95Seconds,
			pred.Iterations, pred.Model.R2())
	}

	// The jobs run back to back and their errors are independent, so the
	// workload's distribution is the sum of means with summed variances.
	workloadDist := predict.Distribution{
		MeanSeconds:   totalPredicted,
		StdDevSeconds: math.Sqrt(totalVariance),
	}
	pMeet := workloadDist.ProbabilityWithin(slaSeconds)
	fmt.Printf("\nworkload prediction: %.0f s against an SLA of %.0f s\n", totalPredicted, slaSeconds)
	fmt.Printf("probability of meeting the SLA: %.1f%%\n", 100*pMeet)
	switch {
	case pMeet >= 0.95:
		fmt.Println("=> FEASIBLE: admit the workload")
	case pMeet >= 0.5:
		fmt.Println("=> MARGINAL: admit only if the SLA tolerates occasional misses")
	default:
		fmt.Println("=> INFEASIBLE: renegotiate the SLA or add workers")
	}
	fmt.Printf("(planning itself cost %.0f simulated seconds of sample runs)\n\n", planningCost)

	// Verify against ground truth.
	var totalActual float64
	for i, job := range workload {
		actual, err := job.alg.Run(g, cfg)
		if err != nil {
			log.Fatalf("%s actual: %v", job.name, err)
		}
		ev := predict.Evaluate(preds[i], actual)
		totalActual += ev.ActualSeconds
		fmt.Printf("%-28s actual    %7.0f s (prediction error %+5.1f%%)\n",
			job.name, ev.ActualSeconds, 100*ev.RuntimeError)
	}
	fmt.Printf("\nworkload actual: %.0f s — SLA %s\n", totalActual,
		map[bool]string{true: "met", false: "missed"}[totalActual <= slaSeconds])
}
