// Real-dataset ingestion walkthrough: edge list -> snapshot -> registry
// -> prediction.
//
// The example stands in for the operational flow of serving predictions
// on a real-world graph:
//
//  1. An edge list arrives (here: generated and written to disk, exactly
//     what a SNAP/KONECT download looks like after column cleanup).
//  2. It is converted once to a binary CSR snapshot (the cmd/graphgen
//     -convert step), which loads in O(bytes) with no parsing.
//  3. A predictd service is pointed at the directory (-dataset-dir); the
//     files become named datasets on GET /datasets.
//  4. POST /datasets/{name}/load pre-warms the graph cache, and /predict
//     addresses the dataset by name — same request shape as the
//     synthetic stand-ins, same model cache underneath.
//
// Run:
//
//	go run ./examples/datasets
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"predict"
	"predict/internal/service"
)

func main() {
	dir, err := os.MkdirTemp("", "predict-datasets-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. A "downloaded" edge list: the Wikipedia stand-in at 10% scale,
	// written in the plain text format (src dst per line).
	g := predict.Dataset("Wiki").Generate(0.10, 1)
	edgePath := filepath.Join(dir, "wiki-small.txt")
	f, err := os.Create(edgePath)
	if err != nil {
		log.Fatal(err)
	}
	if err := predict.WriteGraph(f, g); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(edgePath)
	fmt.Printf("edge list %s: %d vertices, %d edges, %d bytes\n",
		filepath.Base(edgePath), g.NumVertices(), g.NumEdges(), fi.Size())

	// 2. Convert to a binary snapshot under a different dataset name, and
	// time the two load paths to show why snapshots exist.
	snapPath := filepath.Join(dir, "wiki-snap.snap")
	sf, err := os.Create(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := predict.WriteGraphSnapshot(sf, g); err != nil {
		log.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := predict.LoadGraphFile(edgePath); err != nil {
		log.Fatal(err)
	}
	textLoad := time.Since(start)
	start = time.Now()
	if _, err := predict.LoadGraphFile(snapPath); err != nil {
		log.Fatal(err)
	}
	snapLoad := time.Since(start)
	fmt.Printf("parallel text load %v, snapshot load %v (%.1fx)\n\n",
		textLoad, snapLoad, float64(textLoad)/float64(snapLoad))

	// 3. Serve the directory as a dataset registry.
	svc := service.New(service.Config{DatasetDir: dir})
	server := httptest.NewServer(svc.Handler())
	defer server.Close()

	var inventory struct {
		Datasets []service.DatasetInfo `json:"datasets"`
	}
	mustGet(server.URL+"/datasets", &inventory)
	fmt.Println("GET /datasets:")
	for _, d := range inventory.Datasets {
		fmt.Printf("  %-12s formats=%v  %d bytes\n", d.Name, d.Formats, d.SizeBytes)
	}

	// 4. Pre-load the snapshot dataset, then predict on it by name.
	var loaded struct {
		Dataset   service.DatasetInfo `json:"dataset"`
		ElapsedMS float64             `json:"elapsed_ms"`
	}
	mustPost(server.URL+"/datasets/wiki-snap/load", nil, &loaded)
	fmt.Printf("\nPOST /datasets/wiki-snap/load: %d vertices, %d edges in %.1f ms\n",
		loaded.Dataset.Vertices, loaded.Dataset.Edges, loaded.ElapsedMS)

	req := service.PredictRequest{Dataset: "wiki-snap", Algorithm: "PR", Ratio: 0.10}
	var pred service.PredictResponse
	mustPost(server.URL+"/predict", req, &pred)
	fmt.Printf("\nPOST /predict {dataset: wiki-snap, algorithm: PR}:\n")
	fmt.Printf("  iterations %d, runtime %.1f s, model R2 %.3f (cache hit: %v)\n",
		pred.Iterations, pred.SuperstepSeconds, pred.ModelR2, pred.CacheHit)

	// The same request again costs only extrapolation.
	mustPost(server.URL+"/predict", req, &pred)
	fmt.Printf("  repeat: %.1f ms end to end (cache hit: %v)\n", pred.ElapsedMillis, pred.CacheHit)
}

func mustGet(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func mustPost(url string, body, out any) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			log.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&msg)
		log.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, msg["error"])
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
