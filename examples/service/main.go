// SLA-feasibility sweep against the prediction service — the serving-side
// version of examples/slafeasibility.
//
// The example starts an in-process predictd service, then acts as an HTTP
// client planning a nightly PageRank job on the Wikipedia stand-in:
//
//  1. A cold /predict call pays the full pipeline (sample runs + fit) and
//     populates the model cache.
//  2. A /predict/batch what-if sweep asks "would the job meet its SLA on
//     4, 8, 12, ... workers?" — every item reuses the one cached model
//     (the worker count is an extrapolation input, not part of the model
//     key), so the whole sweep costs milliseconds.
//  3. A repeat of the cold call demonstrates the warm path.
//
// Run:
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"predict/internal/service"
)

func main() {
	// An in-process predictd; point the client at a real one via -addr in
	// production.
	svc := service.New(service.Config{})
	server := httptest.NewServer(svc.Handler())
	defer server.Close()
	fmt.Printf("predictd serving on %s\n\n", server.URL)

	base := service.PredictRequest{
		Dataset:   "Wiki",
		Scale:     0.1,
		Algorithm: "PR",
		Ratio:     0.1,
	}

	// 1. Cold call: fits and caches the cost model.
	cold := post[service.PredictResponse](server.URL+"/predict", base)
	fmt.Printf("cold prediction: %d iterations, %.0f s superstep phase "+
		"(model R2 %.3f, fitted in %.0f ms, planning cost %.0f simulated s)\n\n",
		cold.Iterations, cold.SuperstepSeconds, cold.ModelR2,
		cold.ElapsedMillis, cold.SampleRunSeconds)

	// 2. What-if sweep: same model, many hypothetical cluster sizes.
	const slaSeconds = 40.0
	var batch service.BatchRequest
	workerCounts := []int{4, 8, 12, 16, 24, 32}
	for _, w := range workerCounts {
		req := base
		req.Workers = w
		batch.Requests = append(batch.Requests, req)
	}
	sweep := post[service.BatchResponse](server.URL+"/predict/batch", batch)

	fmt.Printf("what-if sweep against a %.0f s SLA (%d configs in %.1f ms, %d cache hits):\n",
		slaSeconds, len(workerCounts), sweep.ElapsedMillis, sweep.CacheHits)
	fmt.Printf("  %-8s %-14s %s\n", "workers", "predicted", "verdict")
	for i, item := range sweep.Responses {
		if item.Error != "" {
			log.Fatalf("sweep item %d: %s", i, item.Error)
		}
		r := item.Response
		verdict := "FEASIBLE"
		if r.SuperstepSeconds > slaSeconds {
			verdict = "infeasible"
		}
		fmt.Printf("  %-8d %7.0f s      %s\n", r.Workers, r.SuperstepSeconds, verdict)
	}

	// 3. Warm repeat of the original query.
	warm := post[service.PredictResponse](server.URL+"/predict", base)
	fmt.Printf("\nwarm repeat: cache_hit=%v in %.2f ms (cold path took %.0f ms, %.0fx speedup)\n",
		warm.CacheHit, warm.ElapsedMillis, cold.ElapsedMillis,
		cold.ElapsedMillis/warm.ElapsedMillis)

	var health map[string]any
	getJSON(server.URL+"/healthz", &health)
	fmt.Printf("healthz: models=%v fits=%v hits=%v misses=%v\n",
		health["models"], health["fits"], health["hits"], health["misses"])
}

// post sends v as JSON and decodes a T response, failing hard on errors.
func post[T any](url string, v any) *T {
	body, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: HTTP %d: %s", url, resp.StatusCode, e.Error)
	}
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatalf("POST %s: decoding: %v", url, err)
	}
	return &out
}

// getJSON decodes a GET response into v.
func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
