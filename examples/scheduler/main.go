// Predicted-runtime scheduling — the paper's §1 resource-allocation
// motivation: runtime estimates for iterative jobs play the role query
// cost estimates play for a DBMS optimizer.
//
// A batch of iterative jobs on different datasets is scheduled on one
// cluster queue two ways: FIFO (arrival order) and Shortest-Predicted-Job
// -First using PREDIcT estimates. Mean completion time improves when the
// predictions get the ordering right.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"
	"sort"

	"predict"
)

type job struct {
	name      string
	alg       predict.Algorithm
	graph     *predict.Graph
	predicted float64
	actual    float64
}

func main() {
	cfg := predict.DefaultCluster()

	// A mixed batch: the heavier UK jobs arrive first, so FIFO is
	// maximally unlucky.
	wiki := predict.Dataset("Wiki").Generate(0.4, 5)
	uk := predict.Dataset("UK").Generate(0.4, 6)
	prW := predict.NewPageRank()
	prW.Tau = predict.PageRankTau(0.001, wiki.NumVertices())
	prU := predict.NewPageRank()
	prU.Tau = predict.PageRankTau(0.001, uk.NumVertices())
	tkW := predict.NewTopKRanking()
	tkW.PageRank = prW

	jobs := []*job{
		{name: "semi-clustering @UK", alg: predict.NewSemiClustering(), graph: uk},
		{name: "top-k @Wiki", alg: tkW, graph: wiki},
		{name: "pagerank @UK", alg: prU, graph: uk},
		{name: "pagerank @Wiki", alg: prW, graph: wiki},
		{name: "components @Wiki", alg: predict.NewConnectedComponents(), graph: wiki},
	}

	p := predict.NewPredictor(predict.Options{
		Sampling:       predict.SamplingOptions{Ratio: 0.10, Seed: 11},
		BSP:            cfg,
		TrainingRatios: []float64{0.05, 0.10, 0.15, 0.20},
	})

	fmt.Println("predicting job runtimes from 10% sample runs:")
	for _, j := range jobs {
		pred, err := p.Predict(j.alg, j.graph)
		if err != nil {
			log.Fatalf("%s: %v", j.name, err)
		}
		j.predicted = pred.SuperstepSeconds
		actual, err := j.alg.Run(j.graph, cfg)
		if err != nil {
			log.Fatalf("%s actual: %v", j.name, err)
		}
		j.actual = actual.Profile.SuperstepPhaseSeconds()
		fmt.Printf("  %-22s predicted %6.0f s   actual %6.0f s\n", j.name, j.predicted, j.actual)
	}

	fifo := meanCompletion(jobs)
	sjf := make([]*job, len(jobs))
	copy(sjf, jobs)
	sort.SliceStable(sjf, func(i, k int) bool { return sjf[i].predicted < sjf[k].predicted })
	spjf := meanCompletion(sjf)

	fmt.Printf("\nmean completion time, FIFO:                        %7.0f s\n", fifo)
	fmt.Printf("mean completion time, shortest-predicted-first:    %7.0f s (%.0f%% better)\n",
		spjf, 100*(fifo-spjf)/fifo)

	// The oracle ordering (sort by true runtime) bounds what any
	// predictor could achieve.
	oracle := make([]*job, len(jobs))
	copy(oracle, jobs)
	sort.SliceStable(oracle, func(i, k int) bool { return oracle[i].actual < oracle[k].actual })
	fmt.Printf("mean completion time, oracle ordering:             %7.0f s\n", meanCompletion(oracle))
}

// meanCompletion simulates running jobs back to back in the given order
// and returns the mean completion time (actual runtimes).
func meanCompletion(order []*job) float64 {
	var clock, total float64
	for _, j := range order {
		clock += j.actual
		total += clock
	}
	return total / float64(len(order))
}
