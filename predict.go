// Package predict is a from-scratch Go reproduction of PREDIcT ("Towards
// Predicting the Runtime of Large Scale Iterative Analytics", Popescu et
// al., VLDB 2013): an experimental methodology that predicts the number of
// iterations and the runtime of iterative graph algorithms (PageRank,
// semi-clustering, top-k ranking, connected components, neighborhood
// estimation) executed on a Bulk Synchronous Parallel engine.
//
// The pipeline (paper Figure 1):
//
//  1. Draw a structure-preserving sample of the input graph (Biased
//     Random Jump by default).
//  2. Apply the algorithm's transform function to its convergence
//     parameters (e.g. PageRank's τ_S = τ_G/sr) and run it on the sample,
//     profiling per-iteration key input features (active vertices,
//     local/remote message counts and bytes).
//  3. Extrapolate the features to full-graph scale (eV = |V_G|/|V_S| for
//     vertex-driven features, eE = |E_G|/|E_S| for message features).
//  4. Translate features into per-iteration runtime with a cost model
//     fitted by multivariate linear regression with forward feature
//     selection, trained on sample runs and optional historical runs.
//
// Quickstart:
//
//	g := predict.Dataset("Wiki").Generate(0.25, 1)
//	pr := predict.NewPageRank()
//	pr.Tau = predict.PageRankTau(0.001, g.NumVertices())
//	p := predict.NewPredictor(predict.Options{
//		Sampling:       predict.SamplingOptions{Ratio: 0.1, Seed: 7},
//		BSP:            predict.DefaultCluster(),
//		TrainingRatios: []float64{0.05, 0.1, 0.15, 0.2},
//	})
//	pred, err := p.Predict(pr, g)
//	// pred.Iterations, pred.SuperstepSeconds, pred.Model.R2() ...
//
// The repository substitutes the paper's 10-node Giraph/Hadoop testbed
// with an in-process BSP engine priced by a hidden cost oracle, and the
// four real datasets with seeded synthetic stand-ins; see DESIGN.md for
// the substitution arguments and EXPERIMENTS.md for paper-vs-measured
// results of every table and figure.
//
// For repeated or what-if queries, cmd/predictd serves predictions over
// HTTP with cached cost models (internal/service): the expensive half of
// the pipeline (sample runs + regression) runs once per distinct
// configuration and every later query pays only extrapolation.
package predict

import (
	"fmt"
	"io"

	"predict/internal/algorithms"
	"predict/internal/bounds"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/core"
	"predict/internal/gen"
	"predict/internal/graph"
	"predict/internal/sampling"
)

// Core graph types.
type (
	// Graph is an immutable directed graph in CSR form.
	Graph = graph.Graph
	// VertexID identifies a vertex (dense 0..n-1).
	VertexID = graph.VertexID
	// GraphBuilder accumulates edges and builds immutable Graphs.
	GraphBuilder = graph.Builder
)

// Prediction pipeline types.
type (
	// Options configures a Predictor (sampling, environment, training).
	Options = core.Options
	// Predictor runs the PREDIcT pipeline.
	Predictor = core.Predictor
	// Prediction is the pipeline outcome: iterations, per-iteration and
	// total runtime estimates, the fitted cost model and diagnostics.
	Prediction = core.Prediction
	// Evaluation holds the paper's error metrics for one prediction.
	Evaluation = core.Evaluation
	// Distribution is a prediction's uncertainty summary: mean, spread,
	// p50/p95 and the closed-loop blend regime. Prediction.Runtime holds
	// one; ProbabilityWithin answers SLA-deadline questions.
	Distribution = core.Distribution
	// Algorithm is the plug-in interface for predictable algorithms.
	Algorithm = algorithms.Algorithm
	// RunInfo is a profiled algorithm run.
	RunInfo = algorithms.RunInfo
)

// Execution environment types.
type (
	// ClusterConfig parameterizes the BSP engine (workers, oracle, seed).
	ClusterConfig = bsp.Config
	// CostOracle prices simulated cluster time; it stands in for the
	// paper's physical testbed.
	CostOracle = cluster.CostOracle
	// SamplingMethod selects RJ, BRJ, MHRW or UNI.
	SamplingMethod = sampling.Method
	// SamplingOptions carries ratio, restart probability and seed.
	SamplingOptions = sampling.Options
	// DatasetSpec is a registered stand-in for a paper dataset.
	DatasetSpec = gen.Dataset
)

// Algorithm configuration types.
type (
	// PageRankConfig is the PageRank algorithm (§4.1).
	PageRankConfig = algorithms.PageRank
	// SemiClusteringConfig is parallel semi-clustering (§4.2).
	SemiClusteringConfig = algorithms.SemiClustering
	// TopKRankingConfig is top-k ranking over PageRank output (§4.3).
	TopKRankingConfig = algorithms.TopKRanking
	// ConnectedComponentsConfig is HashMin label propagation.
	ConnectedComponentsConfig = algorithms.ConnectedComponents
	// NeighborhoodEstimationConfig is FM-sketch neighborhood estimation.
	NeighborhoodEstimationConfig = algorithms.NeighborhoodEstimation
)

// Sampling methods (§3.2.1, §5.3).
const (
	RandomJump         = sampling.RandomJump
	BiasedRandomJump   = sampling.BiasedRandomJump
	MetropolisHastings = sampling.MetropolisHastings
	UniformVertex      = sampling.UniformVertex
)

// NewPredictor returns a Predictor with the given options.
func NewPredictor(opts Options) *Predictor { return core.New(opts) }

// Evaluate compares a prediction against a profiled actual run, returning
// the paper's signed relative errors.
func Evaluate(pred *Prediction, actual *RunInfo) Evaluation {
	return core.Evaluate(pred, actual)
}

// NewPageRank returns PageRank with the paper's defaults (d = 0.85).
func NewPageRank() PageRankConfig { return algorithms.NewPageRank() }

// NewSemiClustering returns semi-clustering with the paper's base settings
// (CMax=1, SMax=1, VMax=10, fB=0.1, τ=0.001).
func NewSemiClustering() SemiClusteringConfig { return algorithms.NewSemiClustering() }

// NewTopKRanking returns top-k ranking with K=10, τ=0.001.
func NewTopKRanking() TopKRankingConfig { return algorithms.NewTopKRanking() }

// NewConnectedComponents returns HashMin connected components.
func NewConnectedComponents() ConnectedComponentsConfig { return algorithms.NewConnectedComponents() }

// NewNeighborhoodEstimation returns FM-sketch neighborhood estimation.
func NewNeighborhoodEstimation() NeighborhoodEstimationConfig {
	return algorithms.NewNeighborhoodEstimation()
}

// AlgorithmByName constructs a paper algorithm from its name or short tag
// (PR, SC, TOPK, CC, NH).
func AlgorithmByName(name string) (Algorithm, error) { return algorithms.ByName(name) }

// PageRankTau returns the paper's convergence threshold τ = ε/N (§5.1).
func PageRankTau(epsilon float64, numVertices int) float64 {
	return algorithms.TauForTolerance(epsilon, numVertices)
}

// PageRankIterationBound returns the Langville & Meyer analytical upper
// bound on PageRank iterations, the baseline PREDIcT beats (§5.1).
func PageRankIterationBound(epsilon, damping float64) int {
	return bounds.PageRankIterations(epsilon, damping)
}

// DefaultCluster returns the default simulated execution environment:
// 8 workers priced by the default cost oracle.
func DefaultCluster() ClusterConfig {
	o := cluster.DefaultOracle()
	return ClusterConfig{Workers: bsp.DefaultWorkers, Oracle: &o}
}

// Dataset returns the stand-in dataset spec for a paper prefix (LJ, Wiki,
// TW, UK). It panics on unknown prefixes; use Datasets to enumerate.
func Dataset(prefix string) DatasetSpec {
	ds, err := gen.ByPrefix(prefix)
	if err != nil {
		panic(err)
	}
	return ds
}

// Datasets lists the four stand-ins in the paper's Table 2 order.
func Datasets() []DatasetSpec { return gen.StandIns() }

// Sample draws a sample of g with the given method, returning the induced
// subgraph and achieved ratios.
func Sample(g *Graph, method SamplingMethod, opts SamplingOptions) (*sampling.Result, error) {
	return sampling.Sample(g, method, opts)
}

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// ReadGraph parses the edge-list format produced by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph writes g as a plain-text edge list.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// LoadGraph parses the edge-list format in parallel (chunked at line
// boundaries, shards parsed concurrently), producing a Graph bit-identical
// to ReadGraph's. parallelism <= 0 selects GOMAXPROCS.
func LoadGraph(r io.Reader, parallelism int) (*Graph, error) {
	return graph.LoadEdgeList(r, graph.LoadOptions{Parallelism: parallelism})
}

// LoadGraphFile loads a graph from disk, auto-detecting binary CSR
// snapshots (by magic number) and plain-text edge lists.
func LoadGraphFile(path string) (*Graph, error) {
	return graph.LoadFile(path, graph.LoadOptions{})
}

// WriteGraphSnapshot writes g in the binary CSR snapshot format: a
// versioned, checksummed image of the CSR arrays that reloads in O(bytes)
// with no parsing. See DESIGN.md §9 for the wire layout.
func WriteGraphSnapshot(w io.Writer, g *Graph) error { return graph.WriteSnapshot(w, g) }

// ReadGraphSnapshot reads a graph written by WriteGraphSnapshot, verifying
// its checksum and structural invariants.
func ReadGraphSnapshot(r io.Reader) (*Graph, error) { return graph.ReadSnapshot(r) }

// FormatPrediction renders a prediction as a short human-readable report.
func FormatPrediction(p *Prediction) string {
	sel := ""
	for i, f := range p.Model.SelectedFeatures() {
		if i > 0 {
			sel += ", "
		}
		sel += string(f)
	}
	return fmt.Sprintf(
		"algorithm            %s\n"+
			"predicted iterations %d\n"+
			"predicted runtime    %.1f s (superstep phase)\n"+
			"cost model R2        %.3f (features: %s)\n"+
			"sample               %.1f%% vertices, %.1f%% edges (eV=%.1f, eE=%.1f)\n"+
			"sample-run cost      %.1f s",
		p.Algorithm, p.Iterations, p.SuperstepSeconds, p.Model.R2(), sel,
		100*p.SampleVertexRatio(), 100*p.SampleEdgeRatio(), p.Scale.EV, p.Scale.EE,
		p.SampleRunSeconds)
}
