package predict_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus the DESIGN.md ablations and micro-benchmarks of
// the substrates. Each figure/table benchmark regenerates the full
// experiment at a reduced dataset scale (set PREDICT_BENCH_SCALE to
// override) and reports the headline error metric at sr = 0.1 as a custom
// benchmark metric, so `go test -bench` output doubles as a compact
// reproduction report.

import (
	"math"
	"testing"

	"predict/internal/algorithms"
	"predict/internal/benchenv"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/experiments"
	"predict/internal/gen"
	"predict/internal/regress"
	"predict/internal/sampling"
)

// benchScale resolves the benchmark dataset scale from the
// PREDICT_BENCH_SCALE environment variable (default 0.15, documented in
// the README; validation shared with cmd/bench via internal/benchenv).
// Malformed values fail the benchmark loudly: silently falling back to
// the default would make a mistyped CI variable measure the wrong
// workload without anyone noticing.
func benchScale(tb testing.TB) float64 {
	tb.Helper()
	v, err := benchenv.Scale(0.15)
	if err != nil {
		tb.Fatal(err)
	}
	return v
}

func benchLab(tb testing.TB) *experiments.Lab {
	return experiments.NewLab(experiments.Config{
		Scale:          benchScale(tb),
		Seed:           7,
		Ratios:         []float64{0.05, 0.10, 0.20},
		TrainingRatios: []float64{0.05, 0.10, 0.15, 0.20},
	})
}

// meanAbsAt returns the mean absolute series value at the given ratio.
func meanAbsAt(figs []*experiments.FigureResult, ratio float64) float64 {
	var sum float64
	n := 0
	for _, f := range figs {
		for _, s := range f.Series {
			for _, p := range s.Points {
				if p.Ratio == ratio && !math.IsNaN(p.Value) && !math.IsInf(p.Value, 0) {
					sum += math.Abs(p.Value)
					n++
				}
			}
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func benchFigure(b *testing.B, run func(lab *experiments.Lab) ([]*experiments.FigureResult, error)) {
	b.Helper()
	var lastErr float64
	for i := 0; i < b.N; i++ {
		lab := benchLab(b)
		figs, err := run(lab)
		if err != nil {
			b.Fatal(err)
		}
		lastErr = meanAbsAt(figs, 0.10)
	}
	b.ReportMetric(lastErr, "mean|err|@sr0.1")
}

func benchTable(b *testing.B, run func(lab *experiments.Lab) (*experiments.TableResult, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		lab := benchLab(b)
		if _, err := run(lab); err != nil {
			b.Fatal(err)
		}
	}
}

// ----- Figures -----------------------------------------------------------

func BenchmarkFigure4PageRankIterations(b *testing.B) {
	benchFigure(b, func(l *experiments.Lab) ([]*experiments.FigureResult, error) { return l.Figure4() })
}

func BenchmarkFigure5SemiClusteringIterations(b *testing.B) {
	benchFigure(b, func(l *experiments.Lab) ([]*experiments.FigureResult, error) { return l.Figure5() })
}

func BenchmarkFigure6TopKFeatures(b *testing.B) {
	benchFigure(b, func(l *experiments.Lab) ([]*experiments.FigureResult, error) { return l.Figure6() })
}

func BenchmarkFigure7SemiClusteringRuntime(b *testing.B) {
	benchFigure(b, func(l *experiments.Lab) ([]*experiments.FigureResult, error) { return l.Figure7() })
}

func BenchmarkFigure8TopKRuntime(b *testing.B) {
	benchFigure(b, func(l *experiments.Lab) ([]*experiments.FigureResult, error) { return l.Figure8() })
}

func BenchmarkFigure9SamplingSensitivity(b *testing.B) {
	benchFigure(b, func(l *experiments.Lab) ([]*experiments.FigureResult, error) { return l.Figure9() })
}

func BenchmarkExtendedConnectedComponents(b *testing.B) {
	benchFigure(b, func(l *experiments.Lab) ([]*experiments.FigureResult, error) {
		return l.FigureConnectedComponents()
	})
}

func BenchmarkExtendedNeighborhoodEstimation(b *testing.B) {
	benchFigure(b, func(l *experiments.Lab) ([]*experiments.FigureResult, error) {
		return l.FigureNeighborhoodEstimation()
	})
}

// ----- Tables ------------------------------------------------------------

func BenchmarkTable2Datasets(b *testing.B) {
	benchTable(b, func(l *experiments.Lab) (*experiments.TableResult, error) { return l.Table2() })
}

func BenchmarkTable3Overhead(b *testing.B) {
	benchTable(b, func(l *experiments.Lab) (*experiments.TableResult, error) { return l.Table3() })
}

func BenchmarkUpperBounds(b *testing.B) {
	benchTable(b, func(l *experiments.Lab) (*experiments.TableResult, error) { return l.UpperBounds() })
}

func BenchmarkMemoryLimits(b *testing.B) {
	// The OOM reproduction needs the full-size Twitter stand-in; cap the
	// work by running at the default bench scale where the budget is
	// scaled too (the outcome column is exercised either way).
	benchTable(b, func(l *experiments.Lab) (*experiments.TableResult, error) { return l.MemoryLimits() })
}

// ----- Ablations ---------------------------------------------------------

func BenchmarkAblationNoTransform(b *testing.B) {
	benchTable(b, func(l *experiments.Lab) (*experiments.TableResult, error) { return l.AblationNoTransform() })
}

func BenchmarkAblationUniformSampling(b *testing.B) {
	benchTable(b, func(l *experiments.Lab) (*experiments.TableResult, error) { return l.AblationUniformSampling() })
}

func BenchmarkAblationVertexOnlyExtrapolation(b *testing.B) {
	benchTable(b, func(l *experiments.Lab) (*experiments.TableResult, error) {
		return l.AblationVertexOnlyExtrapolation()
	})
}

func BenchmarkAblationNoCriticalPath(b *testing.B) {
	benchTable(b, func(l *experiments.Lab) (*experiments.TableResult, error) { return l.AblationNoCriticalPath() })
}

func BenchmarkAblationNoFeatureSelection(b *testing.B) {
	benchTable(b, func(l *experiments.Lab) (*experiments.TableResult, error) {
		return l.AblationNoFeatureSelection()
	})
}

// ----- Substrate micro-benchmarks ---------------------------------------

// BenchmarkBSPPageRankSuperstep measures engine throughput: simulated
// PageRank supersteps over a mid-size scale-free graph.
func BenchmarkBSPPageRankSuperstep(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 8, 0.4, 3)
	o := cluster.DefaultOracle()
	o.MemoryBudgetBytes = 0
	cfg := bsp.Config{Workers: 8, Oracle: &o, Seed: 1}
	pr := algorithms.NewPageRank()
	pr.Tau = 0 // run to MaxIterations
	pr.MaxIterations = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pr.Run(g, cfg); err != nil && ri(err) {
			b.Fatal(err)
		}
	}
	edgesPerOp := float64(g.NumEdges()) * 10
	b.ReportMetric(edgesPerOp*float64(b.N)/b.Elapsed().Seconds(), "edge-msgs/s")
}

// ri reports whether err is a real failure (ErrNoConvergence is expected
// when running a fixed number of supersteps).
func ri(err error) bool {
	return err != nil && !isNoConvergence(err)
}

func isNoConvergence(err error) bool {
	type unwrapper interface{ Unwrap() error }
	for err != nil {
		if err == bsp.ErrNoConvergence {
			return true
		}
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// BenchmarkSamplingBRJ measures Biased Random Jump sampling throughput.
func BenchmarkSamplingBRJ(b *testing.B) {
	g := gen.BarabasiAlbert(50000, 8, 0.4, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.Sample(g, sampling.BiasedRandomJump,
			sampling.Options{Ratio: 0.1, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegressionForwardSelect measures cost-model fitting.
func BenchmarkRegressionForwardSelect(b *testing.B) {
	const rows = 200
	X := make([][]float64, rows)
	y := make([]float64, rows)
	for i := range X {
		f := float64(i)
		X[i] = []float64{f, f * 2, f * f, 100 - f, f + 7, f * 3, 8}
		y[i] = 0.5 + 3*f + 0.01*f*f
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regress.ForwardSelect(X, y, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGraphGeneration measures stand-in generation cost.
func BenchmarkGraphGeneration(b *testing.B) {
	ds, err := gen.ByPrefix("Wiki")
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := ds.Generate(scale, uint64(i))
		if g.NumVertices() == 0 {
			b.Fatal("empty graph")
		}
	}
}
