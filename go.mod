module predict

go 1.24
