package predict_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"predict"
)

func TestFacadeDatasets(t *testing.T) {
	ds := predict.Datasets()
	if len(ds) != 4 {
		t.Fatalf("Datasets() = %d entries, want 4", len(ds))
	}
	wiki := predict.Dataset("Wiki")
	g := wiki.Generate(0.02, 1)
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Fatal("Wiki stand-in generated empty graph")
	}
}

func TestFacadeDatasetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dataset(bogus) did not panic")
		}
	}()
	predict.Dataset("bogus")
}

func TestFacadeEndToEnd(t *testing.T) {
	g := predict.Dataset("Wiki").Generate(0.05, 3)
	pr := predict.NewPageRank()
	pr.Tau = predict.PageRankTau(0.001, g.NumVertices())

	cfg := predict.DefaultCluster()
	cfg.Workers = 4
	p := predict.NewPredictor(predict.Options{
		Sampling:       predict.SamplingOptions{Ratio: 0.15, Seed: 5},
		BSP:            cfg,
		TrainingRatios: []float64{0.1, 0.2},
	})
	pred, err := p.Predict(pr, g)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred.Iterations < 2 {
		t.Errorf("Iterations = %d, want >= 2", pred.Iterations)
	}
	if pred.SuperstepSeconds <= 0 {
		t.Errorf("SuperstepSeconds = %v, want > 0", pred.SuperstepSeconds)
	}

	actual, err := pr.Run(g, cfg)
	if err != nil {
		t.Fatalf("actual run: %v", err)
	}
	ev := predict.Evaluate(pred, actual)
	if ev.ActualIterations == 0 || ev.ActualSeconds == 0 {
		t.Errorf("evaluation missing actuals: %+v", ev)
	}

	report := predict.FormatPrediction(pred)
	for _, want := range []string{"PageRank", "iterations", "R2", "sample"} {
		if !strings.Contains(report, want) {
			t.Errorf("FormatPrediction missing %q:\n%s", want, report)
		}
	}
}

func TestFacadeGraphRoundTrip(t *testing.T) {
	b := predict.NewGraphBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := predict.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := predict.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Errorf("round trip edges = %d, want 2", g2.NumEdges())
	}
}

func TestFacadeSnapshotAndParallelLoad(t *testing.T) {
	b := predict.NewGraphBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	var snap bytes.Buffer
	if err := predict.WriteGraphSnapshot(&snap, g); err != nil {
		t.Fatal(err)
	}
	g2, err := predict.ReadGraphSnapshot(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 4 || g2.NumEdges() != 3 {
		t.Errorf("snapshot round trip gave %v", g2)
	}

	var text bytes.Buffer
	if err := predict.WriteGraph(&text, g); err != nil {
		t.Fatal(err)
	}
	g3, err := predict.LoadGraph(&text, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumVertices() != 4 || g3.NumEdges() != 3 {
		t.Errorf("parallel load gave %v", g3)
	}

	dir := t.TempDir()
	path := dir + "/g.snap"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := predict.WriteGraphSnapshot(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g4, err := predict.LoadGraphFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g4.NumEdges() != 3 {
		t.Errorf("LoadGraphFile gave %v", g4)
	}
}

func TestFacadeAlgorithmByName(t *testing.T) {
	for _, name := range []string{"PR", "SC", "TOPK", "CC", "NH"} {
		if _, err := predict.AlgorithmByName(name); err != nil {
			t.Errorf("AlgorithmByName(%s): %v", name, err)
		}
	}
}

func TestFacadeSample(t *testing.T) {
	g := predict.Dataset("TW").Generate(0.02, 9)
	s, err := predict.Sample(g, predict.BiasedRandomJump, predict.SamplingOptions{Ratio: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph.NumVertices() == 0 {
		t.Error("empty sample")
	}
}

func TestFacadeBoundMatchesPaper(t *testing.T) {
	if got := predict.PageRankIterationBound(0.001, 0.85); got < 42 || got > 43 {
		t.Errorf("bound = %d, want 42-43", got)
	}
}
