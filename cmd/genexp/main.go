// Command genexp regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	genexp -exp fig4          # one experiment
//	genexp -exp all           # everything (EXPERIMENTS.md source data)
//	genexp -exp table3 -scale 0.5 -v
//
// Experiments: fig4 fig5 fig6 fig7 fig8 fig9 table2 table3 bounds memory
// closedloop ablations all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"predict/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: fig4 fig5 fig6 fig7 fig8 fig9 cc nh table2 table3 bounds memory closedloop ablations all")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default stand-in sizes)")
		workers = flag.Int("workers", 0, "BSP workers (0 = default)")
		seed    = flag.Uint64("seed", 0, "master seed (0 = default)")
		verbose = flag.Bool("v", false, "print progress to stderr")
		format  = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()
	asCSV = *format == "csv"

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	lab := experiments.NewLab(experiments.Config{
		Scale:    *scale,
		Workers:  *workers,
		Seed:     *seed,
		Progress: progress,
	})

	start := time.Now()
	if err := run(lab, strings.ToLower(*exp), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "genexp:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
	}
}

// asCSV selects CSV output instead of aligned text tables.
var asCSV bool

func run(lab *experiments.Lab, exp string, w io.Writer) error {
	figs := func(fs []*experiments.FigureResult, err error) error {
		if err != nil {
			return err
		}
		for _, f := range fs {
			if asCSV {
				fmt.Fprintf(w, "# %s — %s\n", f.ID, f.Title)
				if err := f.WriteCSV(w); err != nil {
					return err
				}
				continue
			}
			f.Render(w)
		}
		return nil
	}
	table := func(t *experiments.TableResult, err error) error {
		if err != nil {
			return err
		}
		if asCSV {
			fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
			return t.WriteCSV(w)
		}
		t.Render(w)
		return nil
	}

	switch exp {
	case "fig4":
		return figs(lab.Figure4())
	case "fig5":
		return figs(lab.Figure5())
	case "fig6":
		return figs(lab.Figure6())
	case "fig7":
		return figs(lab.Figure7())
	case "fig8":
		return figs(lab.Figure8())
	case "fig9":
		return figs(lab.Figure9())
	case "cc":
		return figs(lab.FigureConnectedComponents())
	case "nh":
		return figs(lab.FigureNeighborhoodEstimation())
	case "table2":
		return table(lab.Table2())
	case "table3":
		return table(lab.Table3())
	case "bounds":
		return table(lab.UpperBounds())
	case "memory":
		return table(lab.MemoryLimits())
	case "closedloop":
		return table(lab.ClosedLoop())
	case "ablations":
		for _, f := range []func() (*experiments.TableResult, error){
			lab.AblationNoTransform,
			lab.AblationUniformSampling,
			lab.AblationVertexOnlyExtrapolation,
			lab.AblationNoCriticalPath,
			lab.AblationNoFeatureSelection,
		} {
			if err := table(f()); err != nil {
				return err
			}
		}
		return nil
	case "all":
		for _, id := range []string{"table2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
			"cc", "nh", "bounds", "table3", "memory", "closedloop", "ablations"} {
			if err := run(lab, id, w); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}
