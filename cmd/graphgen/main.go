// Command graphgen generates synthetic graphs (the dataset stand-ins or
// raw generator families), converts between graph file formats, and
// reports structural properties.
//
// Usage:
//
//	graphgen -data UK -stats                 # stand-in + Table 2 properties
//	graphgen -type ba -n 10000 -deg 8 -out g.txt
//	graphgen -type rmat -n 65536 -deg 16 -stats
//	graphgen -data Wiki -out wiki.snap       # write a binary CSR snapshot
//	graphgen -convert g.txt -out g.snap      # edge list -> snapshot
//	graphgen -convert g.snap -out g.txt      # snapshot -> edge list
//
// Output format follows the -out extension: ".snap" writes the binary CSR
// snapshot (checksummed, reloads in O(bytes)); anything else writes the
// plain-text edge list. -convert detects the input format by content
// (snapshot magic number, text otherwise), so it also re-encodes and
// re-validates snapshots.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"predict"
	"predict/internal/gen"
	"predict/internal/graph"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset stand-in prefix: LJ, Wiki, TW, UK")
		typ     = flag.String("type", "", "generator family: ba, rmat, er, ws, powerlaw, lognormal, path, cycle, star, grid")
		convert = flag.String("convert", "", "load this graph file (snapshot or edge list) instead of generating")
		n       = flag.Int("n", 10000, "vertices")
		deg     = flag.Float64("deg", 8, "average out-degree (family-dependent)")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (with -data)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "write the graph to this file (.snap = binary snapshot, else edge list)")
		stats   = flag.Bool("stats", false, "measure and print structural properties")
	)
	flag.Parse()

	g, name, err := build(*data, *typ, *convert, *n, *deg, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d vertices, %d edges, avg out-degree %.2f\n",
		name, g.NumVertices(), g.NumEdges(), g.AvgOutDegree())

	if *stats {
		p := graph.Measure(g, 32, 200, *seed)
		fmt.Printf("max out-degree      %d\n", p.MaxOutDegree)
		fmt.Printf("effective diameter  %d\n", p.EffectiveDiameter)
		fmt.Printf("clustering coeff    %.3f\n", p.Clustering)
		fmt.Printf("power-law alpha     %.2f\n", p.PowerLawAlpha)
		fmt.Printf("largest WCC         %.1f%%\n", 100*p.LargestWCC)
		fmt.Printf("mean in/out ratio   %.2f\n", p.InOutRatio)
	}
	if *out != "" {
		if err := writeGraphFile(*out, g); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// writeGraphFile writes g to path in the format the extension selects.
func writeGraphFile(path string, g *graph.Graph) error {
	if strings.HasSuffix(path, ".snap") {
		return graph.WriteSnapshotFile(path, g)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := predict.WriteGraph(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func build(data, typ, convert string, n int, deg, scale float64, seed uint64) (*graph.Graph, string, error) {
	if convert != "" {
		if data != "" || typ != "" {
			return nil, "", fmt.Errorf("-convert is exclusive with -data/-type")
		}
		g, err := predict.LoadGraphFile(convert)
		if err != nil {
			return nil, "", err
		}
		return g, convert, nil
	}
	if data != "" {
		ds, err := gen.ByPrefix(data)
		if err != nil {
			return nil, "", err
		}
		return ds.Generate(scale, seed), ds.Name, nil
	}
	switch typ {
	case "ba":
		return gen.BarabasiAlbert(n, int(deg/1.5)+1, 0.5, seed), "barabasi-albert", nil
	case "rmat":
		return gen.RMAT(n, deg, gen.DefaultRMAT(), seed), "rmat", nil
	case "er":
		return gen.ErdosRenyi(n, deg, seed), "erdos-renyi", nil
	case "ws":
		return gen.WattsStrogatz(n, int(deg), 0.1, seed), "watts-strogatz", nil
	case "powerlaw":
		return gen.FromDegreeDist(n, gen.PowerLawDist{Alpha: 2.3, Min: 2, Max: n / 50},
			gen.ConfigModelOptions{TargetBias: 0.8}, seed), "powerlaw-config", nil
	case "lognormal":
		return gen.FromDegreeDist(n, gen.LogNormalDist{Mu: 2, Sigma: 1, Min: 1, Max: n / 50},
			gen.ConfigModelOptions{TargetBias: 0.5}, seed), "lognormal-config", nil
	case "path":
		return gen.Path(n), "path", nil
	case "cycle":
		return gen.Cycle(n), "cycle", nil
	case "star":
		return gen.Star(n, true), "star", nil
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return gen.Grid(side, side), "grid", nil
	}
	return nil, "", fmt.Errorf("need -data, -type or -convert (got type=%q)", typ)
}
