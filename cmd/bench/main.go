// Command bench is the repo's reproducible performance harness. It runs
// the three scenarios that define the serving system's cost structure at
// fixed seeds and a fixed dataset scale, and writes the measurements to a
// JSON artifact (BENCH_results.json by default) that the perf trajectory
// and the CI bench gate consume:
//
//	cold_fit_sequential   Predictor.Fit with Parallelism=1 — the baseline
//	cold_fit_parallel     the same fit on a GOMAXPROCS pool, plus the
//	                      speedup vs sequential and a coefficient-identity
//	                      check (the parallel fit must be bit-identical)
//	warm_extrapolate      Fitted.Extrapolate on the cached model
//	engine_superstep      steady-state cost of one BSP superstep (setup
//	                      subtracted by differencing run lengths)
//	sampling_brj          one BRJ sample draw (walk + subgraph induction),
//	                      the unit cost a cold fit pays per training ratio
//	induced_subgraph      direct-CSR subgraph induction alone, on a fixed
//	                      pre-drawn vertex set
//	graph_load_text       sequential text edge-list parse from disk
//	                      (graph.ReadEdgeList) — the ingestion baseline
//	graph_load_parallel   the chunked parallel loader on the same file,
//	                      plus its speedup and a bit-identity check
//	graph_load_snapshot   binary CSR snapshot load of the same graph, plus
//	                      its speedup over the text baseline
//	graph_load_mmap       zero-copy mmap of the same snapshot
//	                      (graph.MmapSnapshot): full validation, O(1)
//	                      allocation — plus its speedup over the copy-in
//	                      snapshot load (skipped where mmap is unsupported)
//	service_end_to_end    a mixed cold/warm workload over the HTTP service
//	                      under the production serving config (pooled
//	                      codecs, admission control, batch-window
//	                      coalescing) — the allocs-per-request gate
//	service_sustained_rps warm-hit latency percentiles at a fixed offered
//	                      load, uncontended vs under saturating cold
//	                      traffic, plus the shed rate — the p99-ratio gate
//	closed_loop           the feedback loop: prediction error against a
//	                      known target runtime before /observe feedback
//	                      and at every five-observation checkpoint after,
//	                      plus the p50/p95 interval's coverage of the
//	                      target — the error-shrink and coverage gates
//	service_faults        the robustness tax, measured under deterministic
//	                      fault injection: the 503 round-trip cost of a
//	                      breaker-open fast-fail, and a flaky dataset
//	                      load's retry-path overhead vs a clean load.
//	                      Injection is restored to disabled before the
//	                      artifact is written; every gated scenario above
//	                      runs injection-free
//
// Every scenario also records allocs_per_op and bytes_per_op from
// runtime.MemStats deltas, so the perf trajectory tracks allocation
// regressions alongside time.
//
// Usage:
//
//	bench                                  # report only
//	bench -min-speedup 1.5                 # CI gate: exit 1 below 1.5x
//	bench -max-superstep-allocs 32         # CI gate: engine allocs/superstep
//	bench -max-coldfit-allocs 2500         # CI gate: sequential cold-fit allocs
//	bench -max-load-allocs 64              # CI gate: snapshot-load allocs
//	bench -max-mmap-load-allocs 16         # CI gate: mmap snapshot-load allocs
//	bench -max-e2e-allocs 150              # CI gate: serving allocs/request
//	bench -max-p99-ratio 5                 # CI gate: warm p99 under cold saturation
//	bench -min-error-shrink 2              # CI gate: closed-loop error reduction factor
//	bench -min-p95-coverage 0.9            # CI gate: closed-loop interval calibration
//	bench -summary BENCH_results.json      # markdown latency summary of an artifact
//	PREDICT_BENCH_SCALE=0.08 bench         # smaller dataset stand-ins
//
// Timings vary with the host; everything else — samples, models,
// predictions — is fixed by the seeds, so two runs of the harness are
// directly comparable. The parallel-fit speedup needs real cores: on a
// single-CPU host it hovers around 1.0x, which is why the gate is an
// explicit flag rather than a default.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predict/internal/algorithms"
	"predict/internal/benchenv"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/core"
	"predict/internal/faultinject"
	"predict/internal/features"
	"predict/internal/gen"
	"predict/internal/graph"
	"predict/internal/parallel"
	"predict/internal/retry"
	"predict/internal/sampling"
	"predict/internal/service"
)

// printSummary renders the serving scenarios of an existing artifact as
// a small markdown table — the CI job summary's headline numbers, so a
// reviewer sees p50/p99 and the shed rate without opening the JSON.
func printSummary(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var res Results
	if err := json.Unmarshal(blob, &res); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	fmt.Println("| metric | value |")
	fmt.Println("|---|---|")
	for _, sc := range res.Scenarios {
		switch sc.Name {
		case "graph_load_mmap":
			fmt.Printf("| mmap load allocs/op | %.0f |\n", sc.AllocsPerOp)
			if sc.SpeedupVsCopyIn > 0 {
				fmt.Printf("| mmap load vs copy-in | %.2fx |\n", sc.SpeedupVsCopyIn)
			}
		case "service_end_to_end":
			fmt.Printf("| e2e allocs/request | %.0f |\n", sc.AllocsPerOp)
			if sc.CacheHitRatio != nil {
				fmt.Printf("| e2e cache hit ratio | %.2f |\n", *sc.CacheHitRatio)
			}
		case "service_sustained_rps":
			fmt.Printf("| offered warm load | %.0f req/s |\n", sc.OfferedRPS)
			fmt.Printf("| warm p50 / p99 (uncontended) | %.2f ms / %.2f ms |\n", sc.UncontendedP50Millis, sc.UncontendedP99Millis)
			fmt.Printf("| warm p50 / p99 (cold-saturated) | %.2f ms / %.2f ms |\n", sc.P50Millis, sc.P99Millis)
			fmt.Printf("| p99 ratio | %.2fx |\n", sc.P99Ratio)
			if sc.ShedRate != nil {
				fmt.Printf("| cold traffic shed | %d of %d (%.0f%%) |\n", sc.ColdShed, sc.ColdOffered, *sc.ShedRate*100)
			}
		case "closed_loop":
			fmt.Printf("| closed-loop error (before → after %d obs) | %.1f%% → %.2f%% (%.0fx) |\n",
				sc.Observations, 100*sc.ErrorBefore, 100*sc.ErrorAfter, sc.ErrorShrink)
			if sc.P95Coverage != nil {
				fmt.Printf("| closed-loop p95 coverage | %.0f%% |\n", *sc.P95Coverage*100)
			}
		case "service_faults":
			fmt.Printf("| breaker-open fast-fail | %.0f µs/req |\n", sc.NsPerOp/1e3)
			if sc.RetryBaselineNsPerOp > 0 {
				fmt.Printf("| flaky dataset load (2 transient faults) | %.2fx clean load |\n", sc.RetryOverheadRatio)
			}
		}
	}
	return nil
}

// trainingRatios is the paper's §5.2 four-ratio training schedule — the
// "4-ratio scenario" the CI speedup gate is defined on (the main ratio
// 0.10 is one of the four, so a fit runs exactly 4 sample pipelines).
var trainingRatios = []float64{0.05, 0.10, 0.15, 0.20}

// Scenario is one benchmark measurement in the JSON artifact.
type Scenario struct {
	Name string `json:"name"`
	// Runs is how many repetitions were measured; NsPerOp is the best
	// (minimum) repetition, the standard noise-resistant statistic.
	Runs    int     `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	OpsPerS float64 `json:"ops_per_sec"`
	// AllocsPerOp/BytesPerOp are runtime.MemStats deltas (Mallocs and
	// TotalAlloc) per operation, averaged over the measured repetitions —
	// the allocation trajectory the perf gate tracks. On engine_superstep
	// they are per-superstep steady-state figures with setup subtracted.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// SpeedupVsSequential is set on cold_fit_parallel.
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	// SpeedupVsCopyIn is set on graph_load_mmap: the mmap load's speedup
	// over the copy-in snapshot load of the same file.
	SpeedupVsCopyIn float64 `json:"speedup_vs_copyin,omitempty"`
	// CoefficientsMatch is set on cold_fit_parallel: whether the parallel
	// fit's model is bit-identical to the sequential baseline's.
	CoefficientsMatch *bool `json:"coefficients_match,omitempty"`
	// CacheHitRatio and Requests are set on the service scenarios.
	CacheHitRatio *float64 `json:"cache_hit_ratio,omitempty"`
	Requests      int      `json:"requests,omitempty"`
	// The sustained-RPS fields: warm-hit latency percentiles under mixed
	// cold/warm traffic at a fixed offered load, the same percentiles
	// with no cold traffic (uncontended), their ratio (the CI latency
	// gate), and the cold-path shed statistics.
	P50Millis            float64  `json:"p50_ms,omitempty"`
	P99Millis            float64  `json:"p99_ms,omitempty"`
	UncontendedP50Millis float64  `json:"uncontended_p50_ms,omitempty"`
	UncontendedP99Millis float64  `json:"uncontended_p99_ms,omitempty"`
	P99Ratio             float64  `json:"p99_ratio,omitempty"`
	OfferedRPS           float64  `json:"offered_rps,omitempty"`
	ColdOffered          int      `json:"cold_offered,omitempty"`
	ColdShed             int      `json:"cold_shed,omitempty"`
	ShedRate             *float64 `json:"shed_rate,omitempty"`
	// The closed_loop fields: relative prediction error against a known
	// target runtime before any feedback and after the full observation
	// stream, their ratio (the -min-error-shrink CI gate), and the
	// fraction of post-threshold checkpoints whose p50/p95 interval
	// covered the target (the -min-p95-coverage CI gate). Observations
	// is the stream length.
	ErrorBefore  float64  `json:"error_before,omitempty"`
	ErrorAfter   float64  `json:"error_after,omitempty"`
	ErrorShrink  float64  `json:"error_shrink,omitempty"`
	P95Coverage  *float64 `json:"p95_coverage,omitempty"`
	Observations int      `json:"observations,omitempty"`
	// The service_faults fields. NsPerOp on that scenario is the 503
	// round trip against an open circuit breaker (the fast-fail a client
	// pays while a model key is known-broken). These record the
	// transient-failure retry tax: a registry dataset load that survives
	// two injected transient read failures (so two jittered backoff
	// sleeps) vs the identical load with no faults, and their ratio.
	RetryLoadNsPerOp     float64 `json:"retry_load_ns_per_op,omitempty"`
	RetryBaselineNsPerOp float64 `json:"retry_baseline_ns_per_op,omitempty"`
	RetryOverheadRatio   float64 `json:"retry_overhead_ratio,omitempty"`
}

// Results is the BENCH_results.json schema.
type Results struct {
	GeneratedAt    string     `json:"generated_at"`
	GoVersion      string     `json:"go_version"`
	GOMAXPROCS     int        `json:"gomaxprocs"`
	NumCPU         int        `json:"num_cpu"`
	Dataset        string     `json:"dataset"`
	Scale          float64    `json:"scale"`
	TrainingRatios []float64  `json:"training_ratios"`
	Scenarios      []Scenario `json:"scenarios"`
	// ColdFitSpeedup duplicates the parallel scenario's speedup at the
	// top level so the CI gate and the trajectory can read one field.
	ColdFitSpeedup float64 `json:"cold_fit_speedup"`
}

func main() {
	var (
		out         = flag.String("out", "BENCH_results.json", "output artifact path")
		dataset     = flag.String("dataset", "Wiki", "dataset stand-in prefix (LJ, Wiki, TW, UK)")
		scale       = flag.Float64("scale", 0, "dataset scale factor (0 = $PREDICT_BENCH_SCALE or 0.1)")
		runs        = flag.Int("runs", 3, "repetitions per cold-fit and engine_superstep scenario (best time, mean allocs)")
		minSpeedup  = flag.Float64("min-speedup", 0, "fail (exit 1) if parallel cold-fit speedup is below this (0 disables the gate)")
		maxSSAlloc  = flag.Float64("max-superstep-allocs", 0, "fail (exit 1) if steady-state engine allocs per superstep exceed this (0 disables the gate)")
		maxCFAlloc  = flag.Float64("max-coldfit-allocs", 0, "fail (exit 1) if sequential cold-fit allocs per op exceed this (0 disables the gate)")
		maxLdAlloc  = flag.Float64("max-load-allocs", 0, "fail (exit 1) if snapshot graph-load allocs per op exceed this (0 disables the gate)")
		maxMmAlloc  = flag.Float64("max-mmap-load-allocs", 0, "fail (exit 1) if mmap snapshot-load allocs per op exceed this (0 disables the gate; also fails if mmap is unsupported on the host)")
		maxE2EAlloc = flag.Float64("max-e2e-allocs", 0, "fail (exit 1) if service_end_to_end allocs per request exceed this (0 disables the gate)")
		maxP99Ratio = flag.Float64("max-p99-ratio", 0, "fail (exit 1) if the sustained-RPS warm p99 exceeds this multiple of the uncontended warm p99 (0 disables the gate)")
		minShrink   = flag.Float64("min-error-shrink", 0, "fail (exit 1) if closed-loop feedback shrinks the prediction error by less than this factor (0 disables the gate)")
		minP95Cov   = flag.Float64("min-p95-coverage", 0, "fail (exit 1) if fewer than this fraction of closed-loop checkpoints cover the target inside the p50/p95 interval (0 disables the gate)")
		summary     = flag.String("summary", "", "print a markdown serving-latency summary of an existing artifact and exit")
	)
	flag.Parse()
	if *summary != "" {
		if err := printSummary(*summary); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*out, *dataset, *scale, *runs, gates{
		minSpeedup:  *minSpeedup,
		maxSSAlloc:  *maxSSAlloc,
		maxCFAlloc:  *maxCFAlloc,
		maxLdAlloc:  *maxLdAlloc,
		maxMmAlloc:  *maxMmAlloc,
		maxE2EAlloc: *maxE2EAlloc,
		maxP99Ratio: *maxP99Ratio,
		minShrink:   *minShrink,
		minP95Cov:   *minP95Cov,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

// gates are the CI failure thresholds; zero disables each.
type gates struct {
	minSpeedup  float64
	maxSSAlloc  float64
	maxCFAlloc  float64
	maxLdAlloc  float64
	maxMmAlloc  float64
	maxE2EAlloc float64
	maxP99Ratio float64
	minShrink   float64
	minP95Cov   float64
}

// measureOp runs op `runs` times and returns the best wall time plus the
// mean allocation deltas per run (runtime.MemStats Mallocs/TotalAlloc are
// monotonic counters, so the deltas are exact regardless of GC).
func measureOp(runs int, op func() error) (bestNs, allocsPerOp, bytesPerOp float64, err error) {
	bestNs = math.MaxFloat64
	var ms0, ms1 runtime.MemStats
	for r := 0; r < runs; r++ {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if err := op(); err != nil {
			return 0, 0, 0, err
		}
		ns := float64(time.Since(start).Nanoseconds())
		runtime.ReadMemStats(&ms1)
		if ns < bestNs {
			bestNs = ns
		}
		allocsPerOp += float64(ms1.Mallocs - ms0.Mallocs)
		bytesPerOp += float64(ms1.TotalAlloc - ms0.TotalAlloc)
	}
	return bestNs, allocsPerOp / float64(runs), bytesPerOp / float64(runs), nil
}

// benchScale resolves the dataset scale: the -scale flag, else the
// PREDICT_BENCH_SCALE environment variable (shared validation in
// internal/benchenv), else 0.1. Malformed values are an error, not a
// silent fallback.
func benchScale(flagScale float64) (float64, error) {
	if flagScale != 0 {
		if flagScale < 0 || math.IsNaN(flagScale) || math.IsInf(flagScale, 0) {
			return 0, fmt.Errorf("malformed -scale %v: want a positive float", flagScale)
		}
		return flagScale, nil
	}
	return benchenv.Scale(0.1)
}

func run(out, dataset string, flagScale float64, runs int, g8 gates) error {
	scale, err := benchScale(flagScale)
	if err != nil {
		return err
	}
	if runs < 1 {
		runs = 1
	}
	ds, err := gen.ByPrefix(dataset)
	if err != nil {
		return err
	}
	// The gated scenarios define the injection-free cost structure; a
	// leaked injector (a bug in service_faults' restore, or a stray
	// Enable in a linked package) would silently tax every number below.
	if faultinject.Enabled() {
		return fmt.Errorf("fault injection is enabled; the gated scenarios measure the injection-free build")
	}
	fmt.Printf("bench: dataset=%s scale=%g gomaxprocs=%d runs=%d\n",
		dataset, scale, runtime.GOMAXPROCS(0), runs)
	g := ds.Generate(scale, 1)

	res := &Results{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Dataset:        dataset,
		Scale:          scale,
		TrainingRatios: trainingRatios,
	}

	seqScn, seqFit, err := coldFit(g, 1, runs)
	if err != nil {
		return fmt.Errorf("cold_fit_sequential: %w", err)
	}
	seqScn.Name = "cold_fit_sequential"
	res.add(*seqScn)

	parScn, parFit, err := coldFit(g, 0, runs)
	if err != nil {
		return fmt.Errorf("cold_fit_parallel: %w", err)
	}
	speedup := seqScn.NsPerOp / parScn.NsPerOp
	match, err := sameModel(seqFit, parFit, g)
	if err != nil {
		return err
	}
	res.ColdFitSpeedup = speedup
	parScn.Name = "cold_fit_parallel"
	parScn.SpeedupVsSequential = speedup
	parScn.CoefficientsMatch = &match
	res.add(*parScn)

	warmScn, err := warmExtrapolate(seqFit, g)
	if err != nil {
		return fmt.Errorf("warm_extrapolate: %w", err)
	}
	res.add(*warmScn)

	ssScn, err := engineSuperstep(g, runs)
	if err != nil {
		return fmt.Errorf("engine_superstep: %w", err)
	}
	res.add(*ssScn)

	brjScn, err := samplingBRJ(g)
	if err != nil {
		return fmt.Errorf("sampling_brj: %w", err)
	}
	res.add(*brjScn)

	subScn, err := inducedSubgraph(g)
	if err != nil {
		return fmt.Errorf("induced_subgraph: %w", err)
	}
	res.add(*subScn)

	loadScns, err := graphLoad(g, runs)
	if err != nil {
		return fmt.Errorf("graph_load: %w", err)
	}
	for _, s := range loadScns {
		if s != nil { // mmap scenario is nil where the platform lacks mmap
			res.add(*s)
		}
	}
	snapScn, mmapScn := loadScns[2], loadScns[3]

	svcScenario, err := serviceEndToEnd(dataset, scale)
	if err != nil {
		return fmt.Errorf("service_end_to_end: %w", err)
	}
	res.add(*svcScenario)

	rpsScenario, err := serviceSustainedRPS(dataset, scale)
	if err != nil {
		return fmt.Errorf("service_sustained_rps: %w", err)
	}
	res.add(*rpsScenario)

	loopScenario, err := closedLoop(dataset, scale)
	if err != nil {
		return fmt.Errorf("closed_loop: %w", err)
	}
	res.add(*loopScenario)

	// service_faults runs last: it is the only scenario that enables the
	// fault injector, and everything above must measure the
	// injection-free build the CI gates are defined on.
	faultsScenario, err := serviceFaults(g, dataset, scale)
	if err != nil {
		return fmt.Errorf("service_faults: %w", err)
	}
	if faultinject.Enabled() {
		return fmt.Errorf("service_faults left fault injection enabled; refusing to write results")
	}
	res.add(*faultsScenario)

	if err := writeResults(out, res); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s (cold-fit speedup %.2fx, coefficients match %v, superstep allocs/op %.1f, cold-fit allocs/op %.0f, e2e allocs/req %.0f, sustained warm p99 %.2fms = %.1fx uncontended)\n",
		out, speedup, match, ssScn.AllocsPerOp, seqScn.AllocsPerOp,
		svcScenario.AllocsPerOp, rpsScenario.P99Millis, rpsScenario.P99Ratio)

	if !match {
		return fmt.Errorf("parallel fit is not bit-identical to the sequential baseline")
	}
	if g8.minSpeedup > 0 && speedup < g8.minSpeedup {
		return fmt.Errorf("cold-fit speedup %.2fx below the %.2fx gate (gomaxprocs=%d)",
			speedup, g8.minSpeedup, runtime.GOMAXPROCS(0))
	}
	if g8.maxSSAlloc > 0 && ssScn.AllocsPerOp > g8.maxSSAlloc {
		return fmt.Errorf("engine steady state allocates %.1f per superstep, above the %.1f gate",
			ssScn.AllocsPerOp, g8.maxSSAlloc)
	}
	if g8.maxCFAlloc > 0 && seqScn.AllocsPerOp > g8.maxCFAlloc {
		return fmt.Errorf("sequential cold fit allocates %.0f per op, above the %.0f gate",
			seqScn.AllocsPerOp, g8.maxCFAlloc)
	}
	if g8.maxLdAlloc > 0 && snapScn.AllocsPerOp > g8.maxLdAlloc {
		return fmt.Errorf("snapshot graph load allocates %.0f per op, above the %.0f gate",
			snapScn.AllocsPerOp, g8.maxLdAlloc)
	}
	if g8.maxMmAlloc > 0 {
		if mmapScn == nil {
			return fmt.Errorf("mmap load gate set but mmap snapshots are unsupported on this host")
		}
		if mmapScn.AllocsPerOp > g8.maxMmAlloc {
			return fmt.Errorf("mmap snapshot load allocates %.0f per op, above the %.0f gate",
				mmapScn.AllocsPerOp, g8.maxMmAlloc)
		}
	}
	if g8.maxE2EAlloc > 0 && svcScenario.AllocsPerOp > g8.maxE2EAlloc {
		return fmt.Errorf("service end-to-end allocates %.0f per request, above the %.0f gate",
			svcScenario.AllocsPerOp, g8.maxE2EAlloc)
	}
	if g8.maxP99Ratio > 0 && rpsScenario.P99Ratio > g8.maxP99Ratio {
		return fmt.Errorf("sustained warm p99 %.2fms is %.1fx the uncontended %.2fms, above the %.1fx gate",
			rpsScenario.P99Millis, rpsScenario.P99Ratio, rpsScenario.UncontendedP99Millis, g8.maxP99Ratio)
	}
	if g8.minShrink > 0 && loopScenario.ErrorShrink < g8.minShrink {
		return fmt.Errorf("closed-loop feedback shrank the error %.1fx (%.3f -> %.3f), below the %.1fx gate",
			loopScenario.ErrorShrink, loopScenario.ErrorBefore, loopScenario.ErrorAfter, g8.minShrink)
	}
	if g8.minP95Cov > 0 && *loopScenario.P95Coverage < g8.minP95Cov {
		return fmt.Errorf("closed-loop p50/p95 interval covered the target at %.0f%% of checkpoints, below the %.0f%% gate",
			100**loopScenario.P95Coverage, 100*g8.minP95Cov)
	}
	return nil
}

func (r *Results) add(s Scenario) {
	r.Scenarios = append(r.Scenarios, s)
	extra := ""
	if s.SpeedupVsSequential > 0 {
		extra = fmt.Sprintf("  speedup=%.2fx", s.SpeedupVsSequential)
	}
	if s.CacheHitRatio != nil {
		extra = fmt.Sprintf("  hit-ratio=%.2f", *s.CacheHitRatio)
	}
	fmt.Printf("  %-22s %12.0f ns/op%s\n", s.Name, s.NsPerOp, extra)
}

func opsPerS(nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return 1e9 / nsPerOp
}

// benchEnv is the fixed sample-run environment: 4 workers, the default
// oracle, no noise so the cost model is exactly reproducible.
func benchEnv() bsp.Config {
	o := cluster.DefaultOracle()
	o.NoiseStdDev = 0
	o.MemoryBudgetBytes = 0
	return bsp.Config{Workers: 4, Oracle: &o, Seed: 1}
}

func benchPredictor(parallelism, n int) (*core.Predictor, algorithms.Algorithm) {
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, n)
	p := core.New(core.Options{
		Sampling:       sampling.Options{Ratio: 0.10, Seed: 1},
		BSP:            benchEnv(),
		TrainingRatios: trainingRatios,
		Parallelism:    parallelism,
	})
	return p, pr
}

// coldFit measures Predictor.Fit at the given parallelism (1 = the
// sequential baseline, 0 = GOMAXPROCS) and returns the scenario (name
// filled by the caller) plus the last fitted model for the identity check.
func coldFit(g *graph.Graph, parallelism, runs int) (*Scenario, *core.Fitted, error) {
	p, alg := benchPredictor(parallelism, g.NumVertices())
	var fitted *core.Fitted
	ns, allocs, bytes, err := measureOp(runs, func() error {
		f, err := p.Fit(alg, g)
		fitted = f
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return &Scenario{
		Runs: runs, NsPerOp: ns, OpsPerS: opsPerS(ns),
		AllocsPerOp: allocs, BytesPerOp: bytes,
	}, fitted, nil
}

// sameModel reports whether two fits produced bit-identical models and
// predictions, by comparing a canonical JSON encoding of coefficients,
// intercept, selected features, R2, iteration count and the per-iteration
// runtime prediction on g.
func sameModel(a, b *core.Fitted, g *graph.Graph) (bool, error) {
	ja, err := modelFingerprint(a, g)
	if err != nil {
		return false, err
	}
	jb, err := modelFingerprint(b, g)
	if err != nil {
		return false, err
	}
	return bytes.Equal(ja, jb), nil
}

func modelFingerprint(f *core.Fitted, g *graph.Graph) ([]byte, error) {
	pred, err := f.Extrapolate(g, 0)
	if err != nil {
		return nil, err
	}
	coeffs, intercept := f.Model.Coefficients()
	names := make([]string, 0, len(coeffs))
	for name := range coeffs {
		names = append(names, string(name))
	}
	sort.Strings(names)
	type pair struct {
		Name string
		C    float64
	}
	fp := struct {
		Coeffs     []pair
		Intercept  float64
		R2         float64
		Iterations int
		PerIter    []float64
	}{Intercept: intercept, R2: f.Model.R2(), Iterations: f.Iterations, PerIter: pred.PerIterationSeconds}
	for _, name := range names {
		fp.Coeffs = append(fp.Coeffs, pair{Name: name, C: coeffs[features.Name(name)]})
	}
	return json.Marshal(fp)
}

// measureLoop measures a repeated steady-state operation: op runs ops
// times inside one measureOp window and the totals are divided back to
// per-op figures.
func measureLoop(name string, ops int, op func() error) (*Scenario, error) {
	total, allocs, bytes, err := measureOp(1, func() error {
		for i := 0; i < ops; i++ {
			if err := op(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ns := total / float64(ops)
	return &Scenario{
		Name: name, Runs: 1, NsPerOp: ns, OpsPerS: opsPerS(ns),
		AllocsPerOp: allocs / float64(ops), BytesPerOp: bytes / float64(ops),
	}, nil
}

// warmExtrapolate measures the cached-model path: Extrapolate on the full
// graph, the operation every cache hit pays.
func warmExtrapolate(f *core.Fitted, g *graph.Graph) (*Scenario, error) {
	return measureLoop("warm_extrapolate", 2000, func() error {
		_, err := f.Extrapolate(g, 0)
		return err
	})
}

// ssProgram is the engine_superstep scenario's vertex program: the
// PageRank communication shape (a float share to every out-neighbor, one
// aggregate contribution, no vote-to-halt) with a combiner, so the
// measured loop is the engine's combiner fast path under full load.
type ssProgram struct{ n float64 }

func (p ssProgram) Init(_ *graph.Graph, _ bsp.VertexID) float64 { return 1 / p.n }

func (p ssProgram) Compute(ctx *bsp.Context[float64], id bsp.VertexID, v *float64, msgs []float64) {
	var sum float64
	for _, m := range msgs {
		sum += m
	}
	if ctx.Superstep() > 0 {
		*v = 0.15/p.n + 0.85*sum
	}
	ctx.AddToAggregate("bench.mass", sum)
	if deg := ctx.Graph().OutDegree(id); deg > 0 {
		ctx.SendToNeighbors(id, *v/float64(deg))
	}
}

func (ssProgram) MessageBytes(float64) int { return 8 }
func (ssProgram) FixedMessageBytes() int   { return 8 }

// engineSuperstep measures the steady-state cost of one BSP superstep on
// the bench graph — ns, heap allocations and bytes per superstep with the
// one-time setup (partitioning, buffer allocation, value init) subtracted
// by differencing a long run against a one-superstep run. This is the
// scenario the allocation gate (-max-superstep-allocs) is defined on.
func engineSuperstep(g *graph.Graph, runs int) (*Scenario, error) {
	const steps = 64
	cfg := benchEnv()
	cfg.MaxSupersteps = steps + 1
	runEngine := func(supersteps int) func() error {
		return func() error {
			eng := bsp.NewEngine[float64, float64](g, ssProgram{n: float64(g.NumVertices())}, cfg)
			eng.SetCombiner(func(a, b float64) float64 { return a + b })
			eng.SetHalt(func(info bsp.SuperstepInfo) bool { return info.Superstep >= supersteps-1 })
			_, err := eng.Run()
			return err
		}
	}
	longNs, longAllocs, longBytes, err := measureOp(runs, runEngine(steps))
	if err != nil {
		return nil, err
	}
	setupNs, setupAllocs, setupBytes, err := measureOp(runs, runEngine(1))
	if err != nil {
		return nil, err
	}
	perStep := func(long, setup float64) float64 {
		d := (long - setup) / (steps - 1)
		if d < 0 {
			return 0 // measurement noise on a host with background load
		}
		return d
	}
	ns := perStep(longNs, setupNs)
	return &Scenario{
		Name: "engine_superstep", Runs: runs, NsPerOp: ns, OpsPerS: opsPerS(ns),
		AllocsPerOp: perStep(longAllocs, setupAllocs),
		BytesPerOp:  perStep(longBytes, setupBytes),
	}, nil
}

// samplingBRJ measures one Biased Random Jump sample draw — seed
// selection, the walk and the direct-CSR subgraph induction — the unit
// cost every cold fit pays once per training ratio. The first draw builds
// the per-graph degree artifacts; the measured loop is the steady state a
// fit's second, third, ... samples (and every later fit on the same
// cached graph) run at.
func samplingBRJ(g *graph.Graph) (*Scenario, error) {
	opts := sampling.Options{Ratio: 0.10, Seed: 1}
	if _, err := sampling.Sample(g, sampling.BiasedRandomJump, opts); err != nil {
		return nil, err
	}
	return measureLoop("sampling_brj", 100, func() error {
		_, err := sampling.Sample(g, sampling.BiasedRandomJump, opts)
		return err
	})
}

// inducedSubgraph measures the direct-CSR induction alone on a fixed
// pre-drawn vertex set (a 10% BRJ sample's visit sequence), isolating the
// two-pass CSR construction from walk randomness.
func inducedSubgraph(g *graph.Graph) (*Scenario, error) {
	s, err := sampling.Sample(g, sampling.BiasedRandomJump, sampling.Options{Ratio: 0.10, Seed: 1})
	if err != nil {
		return nil, err
	}
	verts := s.Vertices
	return measureLoop("induced_subgraph", 100, func() error {
		_, _, err := graph.InducedSubgraph(g, verts)
		return err
	})
}

// graphLoad measures the three ingestion paths on the bench graph: the
// sequential text parse (baseline), the chunked parallel loader on the
// same file, and the binary CSR snapshot — each loading from a real file
// so the numbers include I/O. The parallel and snapshot scenarios carry
// their speedup over the text baseline in SpeedupVsSequential, and all
// three loads are checked bit-identical to the source graph (the loader's
// core contract) before the scenarios are reported.
func graphLoad(g *graph.Graph, runs int) ([4]*Scenario, error) {
	var out [4]*Scenario
	dir, err := os.MkdirTemp("", "bench-load-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)

	textPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(textPath)
	if err != nil {
		return out, err
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		f.Close()
		return out, err
	}
	if err := f.Close(); err != nil {
		return out, err
	}
	snapPath := filepath.Join(dir, "g.snap")
	if err := graph.WriteSnapshotFile(snapPath, g); err != nil {
		return out, err
	}

	measureLoad := func(name string, load func() (*graph.Graph, error)) (*Scenario, error) {
		var loaded *graph.Graph
		ns, allocs, bytes, err := measureOp(runs, func() error {
			lg, err := load()
			loaded = lg
			return err
		})
		if err != nil {
			return nil, err
		}
		if !sameGraph(g, loaded) {
			return nil, fmt.Errorf("%s: loaded graph differs from the source graph", name)
		}
		return &Scenario{
			Name: name, Runs: runs, NsPerOp: ns, OpsPerS: opsPerS(ns),
			AllocsPerOp: allocs, BytesPerOp: bytes,
		}, nil
	}

	text, err := measureLoad("graph_load_text", func() (*graph.Graph, error) {
		f, err := os.Open(textPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	})
	if err != nil {
		return out, err
	}

	par, err := measureLoad("graph_load_parallel", func() (*graph.Graph, error) {
		return graph.LoadFile(textPath, graph.LoadOptions{})
	})
	if err != nil {
		return out, err
	}
	par.SpeedupVsSequential = text.NsPerOp / par.NsPerOp

	snap, err := measureLoad("graph_load_snapshot", func() (*graph.Graph, error) {
		return graph.ReadSnapshotFile(snapPath)
	})
	if err != nil {
		return out, err
	}
	snap.SpeedupVsSequential = text.NsPerOp / snap.NsPerOp

	mm, err := mmapLoad(g, snapPath, runs)
	if err != nil {
		return out, err
	}
	if mm != nil {
		mm.SpeedupVsSequential = text.NsPerOp / mm.NsPerOp
		mm.SpeedupVsCopyIn = snap.NsPerOp / mm.NsPerOp
	}

	out[0], out[1], out[2], out[3] = text, par, snap, mm
	return out, nil
}

// mmapLoad measures the zero-copy snapshot path: map + validate per op,
// with the previous iteration's mapping closed inside the op so exactly
// one generation is live at a time (the registry's eviction pattern).
// The identity check runs against the final, still-open mapping. Returns
// a nil scenario where the platform cannot mmap.
func mmapLoad(g *graph.Graph, snapPath string, runs int) (*Scenario, error) {
	var mg *graph.MappedGraph
	ns, allocs, bytes, err := measureOp(runs, func() error {
		if mg != nil {
			if err := mg.Close(); err != nil {
				return err
			}
		}
		m, err := graph.MmapSnapshot(snapPath)
		mg = m
		return err
	})
	if err != nil {
		if errors.Is(err, graph.ErrMmapUnsupported) {
			return nil, nil
		}
		return nil, err
	}
	defer mg.Close()
	if !sameGraph(g, mg.Graph()) {
		return nil, fmt.Errorf("graph_load_mmap: mapped graph differs from the source graph")
	}
	return &Scenario{
		Name: "graph_load_mmap", Runs: runs, NsPerOp: ns, OpsPerS: opsPerS(ns),
		AllocsPerOp: allocs, BytesPerOp: bytes,
	}, nil
}

// sameGraph compares two graphs through the exported CSR accessors.
func sameGraph(a, b *graph.Graph) bool {
	if b == nil || a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.HasWeights() != b.HasWeights() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.OutNeighbors(graph.VertexID(v)), b.OutNeighbors(graph.VertexID(v))
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
		wa, wb := a.OutWeights(graph.VertexID(v)), b.OutWeights(graph.VertexID(v))
		for i := range wa {
			if wa[i] != wb[i] {
				return false
			}
		}
	}
	return true
}

// servingConfig is the production serving configuration the service
// scenarios run under: a bounded fit queue (admission control), a short
// batch window coalescing identical predictions, and otherwise defaults.
// fitQueueDepth is per-scenario: end-to-end sizes it to admit its three
// cold keys, sustained-RPS sizes it to saturate.
func servingConfig(fitQueueDepth int) service.Config {
	return service.Config{
		FitQueueDepth: fitQueueDepth,
		BatchWindow:   20 * time.Millisecond,
	}
}

// benchClient is one load-generating client speaking HTTP/1.1 over a
// persistent connection with fully reused buffers, so the measured
// allocation column reflects the serving stack rather than client
// machinery (net/http's client costs ~50 allocs per request on its own,
// which would drown the handler's budget). Payloads are pre-encoded once
// (they are fixed per scenario); cache hits are detected with a byte
// scan rather than a full JSON decode. The server always sets
// Content-Length (the pooled writeJSON path), which is what makes the
// fixed-frame read loop below correct.
type benchClient struct {
	conn net.Conn
	br   *bufio.Reader
	wbuf []byte // request frame under construction
	buf  []byte // response body, reused
}

var cacheHitTrue = []byte(`"cache_hit":true`)

// post sends one pre-encoded /predict payload. It returns the response
// status, whether the prediction was answered from cache, and the
// Retry-After header on shed (429/503) responses.
func (c *benchClient) post(url string, payload []byte) (status int, cacheHit bool, retryAfter string, err error) {
	status, cacheHit, retryAfter, err = c.roundTrip(url, payload)
	if err != nil && c.conn != nil {
		// The server may close an idle keep-alive connection between
		// paced requests; reconnect once before reporting failure.
		c.close()
		status, cacheHit, retryAfter, err = c.roundTrip(url, payload)
	}
	return status, cacheHit, retryAfter, err
}

func (c *benchClient) close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

func (c *benchClient) roundTrip(url string, payload []byte) (status int, cacheHit bool, retryAfter string, err error) {
	host := strings.TrimPrefix(url, "http://")
	if c.conn == nil {
		conn, err := net.Dial("tcp", host)
		if err != nil {
			return 0, false, "", err
		}
		c.conn = conn
		if c.br == nil {
			c.br = bufio.NewReaderSize(conn, 4096)
		} else {
			c.br.Reset(conn)
		}
	}

	w := append(c.wbuf[:0], "POST /predict HTTP/1.1\r\nHost: "...)
	w = append(w, host...)
	w = append(w, "\r\nContent-Type: application/json\r\nContent-Length: "...)
	w = strconv.AppendInt(w, int64(len(payload)), 10)
	w = append(w, "\r\n\r\n"...)
	w = append(w, payload...)
	c.wbuf = w
	if _, err := c.conn.Write(w); err != nil {
		return 0, false, "", err
	}

	line, err := c.br.ReadSlice('\n')
	if err != nil {
		return 0, false, "", err
	}
	if len(line) < 12 || !bytes.HasPrefix(line, []byte("HTTP/1.1 ")) {
		return 0, false, "", fmt.Errorf("bench client: malformed status line %q", line)
	}
	status, err = strconv.Atoi(string(line[9:12]))
	if err != nil {
		return 0, false, "", fmt.Errorf("bench client: malformed status line %q", line)
	}

	bodyLen := -1
	connClose := false
	for {
		line, err = c.br.ReadSlice('\n')
		if err != nil {
			return 0, false, "", err
		}
		if len(bytes.TrimRight(line, "\r\n")) == 0 {
			break
		}
		if v, ok := headerValue(line, "Content-Length:"); ok {
			if bodyLen, err = strconv.Atoi(string(v)); err != nil {
				return 0, false, "", fmt.Errorf("bench client: bad Content-Length %q", v)
			}
		}
		if v, ok := headerValue(line, "Retry-After:"); ok {
			retryAfter = string(v)
		}
		if v, ok := headerValue(line, "Connection:"); ok && string(v) == "close" {
			connClose = true
		}
	}
	if bodyLen < 0 {
		return 0, false, "", fmt.Errorf("bench client: response without Content-Length (status %d)", status)
	}
	if cap(c.buf) < bodyLen {
		c.buf = make([]byte, bodyLen)
	}
	c.buf = c.buf[:bodyLen]
	if _, err := io.ReadFull(c.br, c.buf); err != nil {
		return 0, false, "", err
	}
	if connClose {
		c.close()
	}
	if status != http.StatusOK {
		return status, false, retryAfter, nil
	}
	return status, bytes.Contains(c.buf, cacheHitTrue), "", nil
}

// headerValue returns the trimmed value if the header line (still
// carrying its \r\n) starts with the canonical-case name.
func headerValue(line []byte, name string) ([]byte, bool) {
	if len(line) < len(name) || string(line[:len(name)]) != name {
		return nil, false
	}
	return bytes.TrimSpace(line[len(name):]), true
}

// encodePayloads pre-encodes the scenario's request bodies once.
func encodePayloads(reqs []service.PredictRequest) ([][]byte, error) {
	out := make([][]byte, len(reqs))
	for i, r := range reqs {
		blob, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		out[i] = blob
	}
	return out, nil
}

// warmKeyRequests are the three distinct model keys (one per algorithm
// family) the service scenarios mix.
func warmKeyRequests(dataset string, scale float64) []service.PredictRequest {
	base := service.PredictRequest{
		Dataset:        dataset,
		Scale:          scale,
		Ratio:          0.10,
		TrainingRatios: trainingRatios,
	}
	var reqs []service.PredictRequest
	for _, alg := range []string{"PR", "CC", "NH"} {
		r := base
		r.Algorithm = alg
		reqs = append(reqs, r)
	}
	return reqs
}

// elapsedRE masks the one non-deterministic response field when checking
// warm responses for byte-identity.
var elapsedRE = regexp.MustCompile(`"elapsed_ms":[0-9.eE+-]+`)

// checkWarmByteIdentity posts each warm key twice — once inside the
// coalescer's batch window of earlier traffic, once after the window has
// certainly expired (a fresh leader computation) — and requires the
// responses byte-identical modulo elapsed_ms. This is the serving
// invariant the pooling/coalescing rewrite must preserve: sharing a
// computed prediction never changes a single response byte.
func checkWarmByteIdentity(url string, payloads [][]byte, window time.Duration) error {
	client := &benchClient{}
	for i, p := range payloads {
		first, err := rawWarmBody(client, url, p)
		if err != nil {
			return err
		}
		time.Sleep(window + 10*time.Millisecond)
		second, err := rawWarmBody(client, url, p)
		if err != nil {
			return err
		}
		if !bytes.Equal(first, second) {
			return fmt.Errorf("warm response %d not byte-identical across the batch window:\n  %s\n  %s", i, first, second)
		}
	}
	return nil
}

func rawWarmBody(c *benchClient, url string, payload []byte) ([]byte, error) {
	status, _, _, err := c.post(url, payload)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("warm request: status %d: %s", status, c.buf)
	}
	return elapsedRE.ReplaceAll(bytes.Clone(c.buf), []byte(`"elapsed_ms":0`)), nil
}

// serviceEndToEnd drives a sustained mixed workload through the HTTP
// service under the production serving configuration: three distinct
// model keys (cold fits, answered concurrently on the shared fit pool)
// and warm repeats of each, measuring end-to-end request latency and
// allocations per request across the whole serving stack — HTTP
// handling, JSON codecs, cache lookups, coalescing and the shared-pool
// cold fits, amortized over the warm traffic they serve. This is the
// scenario the -max-e2e-allocs CI gate is defined on.
func serviceEndToEnd(dataset string, scale float64) (*Scenario, error) {
	cfg := servingConfig(4) // admits all three cold keys
	svc := service.New(cfg)
	server := httptest.NewServer(svc.Handler())
	defer server.Close()

	const repsPerKey = 40
	keys := warmKeyRequests(dataset, scale)
	var reqs []service.PredictRequest
	for rep := 0; rep < repsPerKey; rep++ {
		reqs = append(reqs, keys...)
	}
	payloads, err := encodePayloads(reqs)
	if err != nil {
		return nil, err
	}

	// Four concurrent clients, first-error semantics — the same pool the
	// fit pipeline uses. Each client owns its buffers.
	const nClients = 4
	clients := parallel.NewPool(nClients)
	perClient := make([]benchClient, nClients)
	var next atomic.Int64
	var hits atomic.Int64
	totalNs, allocs, bytes_, err := measureOp(1, func() error {
		next.Store(-1)
		return clients.ForEach(context.Background(), nClients,
			func(_ context.Context, ci int) error {
				c := &perClient[ci]
				for {
					i := int(next.Add(1))
					if i >= len(reqs) {
						return nil
					}
					status, hit, _, err := c.post(server.URL, payloads[i])
					if err != nil {
						return err
					}
					if status != http.StatusOK {
						return fmt.Errorf("request %d: status %d: %s", i, status, c.buf)
					}
					if hit {
						hits.Add(1)
					}
				}
			})
	})
	if err != nil {
		return nil, err
	}

	if err := checkWarmByteIdentity(server.URL, payloads[:len(keys)], cfg.BatchWindow); err != nil {
		return nil, err
	}

	hitRatio := float64(hits.Load()) / float64(len(reqs))
	n := float64(len(reqs))
	return &Scenario{
		Name:          "service_end_to_end",
		Runs:          1,
		NsPerOp:       totalNs / n,
		OpsPerS:       n / (totalNs / 1e9),
		AllocsPerOp:   allocs / n,
		BytesPerOp:    bytes_ / n,
		CacheHitRatio: &hitRatio,
		Requests:      len(reqs),
	}, nil
}

// percentile returns the p-th percentile (0..1) of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// pacedWarmLoad drives the warm keys at a fixed offered load (open loop:
// send times are scheduled up front, so a slow server accumulates
// backlog instead of silently lowering the load) and returns the sorted
// per-request latencies.
func pacedWarmLoad(url string, payloads [][]byte, nRequests int, rps float64, nClients int) ([]time.Duration, error) {
	interval := time.Duration(float64(time.Second) / rps)
	latencies := make([]time.Duration, nRequests)
	pool := parallel.NewPool(nClients)
	start := time.Now()
	var next atomic.Int64
	next.Store(-1)
	clients := make([]benchClient, nClients)
	err := pool.ForEach(context.Background(), nClients, func(_ context.Context, ci int) error {
		c := &clients[ci]
		for {
			i := int(next.Add(1))
			if i >= nRequests {
				return nil
			}
			due := start.Add(time.Duration(i) * interval)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			s := time.Now()
			status, _, _, err := c.post(url, payloads[i%len(payloads)])
			if err != nil {
				return err
			}
			if status != http.StatusOK {
				return fmt.Errorf("warm request %d: status %d: %s", i, status, c.buf)
			}
			latencies[i] = time.Since(s)
		}
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	return latencies, nil
}

// serviceSustainedRPS measures warm-hit latency under sustained mixed
// traffic with admission control engaged. Phase 1 drives the warm keys
// alone at a fixed offered load (the uncontended baseline). Phase 2
// repeats the same warm load while cold clients hammer a stream of
// distinct model keys as fast as the service will take them, saturating
// the bounded fit queue so the excess is shed with 503 + Retry-After.
// The scenario reports warm p50/p99 for both phases, their p99 ratio
// (the -max-p99-ratio CI gate: cold saturation must not starve warm
// traffic), the shed rate, and allocations per request across phase 2.
func serviceSustainedRPS(dataset string, scale float64) (*Scenario, error) {
	cfg := servingConfig(1) // two closed-loop cold clients vs one slot: saturated
	// Leave one processor's worth of fit parallelism free for serving
	// warm traffic — the ops guidance for latency-sensitive deployments
	// (DESIGN.md §10); on a single-processor host there is nothing to
	// spare and the admission queue is the only protection.
	if n := runtime.GOMAXPROCS(0); n > 1 {
		cfg.FitParallelism = n - 1
	}
	svc := service.New(cfg)
	server := httptest.NewServer(svc.Handler())
	defer server.Close()

	keys := warmKeyRequests(dataset, scale)
	warmPayloads, err := encodePayloads(keys)
	if err != nil {
		return nil, err
	}
	// Pre-warm the three models (cold fits paid outside the measurement).
	warmup := &benchClient{}
	for _, p := range warmPayloads {
		if status, _, _, err := warmup.post(server.URL, p); err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("pre-warm: status %d err %v: %s", status, err, warmup.buf)
		}
	}

	const (
		warmPerPhase = 400
		offeredRPS   = 300.0
		warmClients  = 2
		coldClients  = 2
	)

	uncontended, err := pacedWarmLoad(server.URL, warmPayloads, warmPerPhase, offeredRPS, warmClients)
	if err != nil {
		return nil, fmt.Errorf("uncontended phase: %w", err)
	}

	// Phase 2: the same warm load with saturating cold traffic beside it.
	// Cold clients run closed-loop over distinct sample seeds; every
	// response must be 200 (admitted), or 503/429 carrying Retry-After.
	stop := make(chan struct{})
	var coldOffered, coldShed atomic.Int64
	var coldErr error
	var coldWG sync.WaitGroup
	coldBase := keys[0]
	for ci := 0; ci < coldClients; ci++ {
		coldWG.Add(1)
		go func(ci int) {
			defer coldWG.Done()
			c := &benchClient{}
			for seed := uint64(1); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				r := coldBase
				r.SampleSeed = uint64(ci+2)*100000 + seed // distinct cold key per request
				payload, err := json.Marshal(r)
				if err != nil {
					coldErr = err
					return
				}
				status, _, retryAfter, err := c.post(server.URL, payload)
				if err != nil {
					coldErr = err
					return
				}
				coldOffered.Add(1)
				switch status {
				case http.StatusOK:
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
					coldShed.Add(1)
					if retryAfter == "" {
						coldErr = fmt.Errorf("shed response (status %d) missing Retry-After", status)
						return
					}
					time.Sleep(2 * time.Millisecond)
				default:
					coldErr = fmt.Errorf("cold request: status %d: %s", status, c.buf)
					return
				}
			}
		}(ci)
	}

	var contended []time.Duration
	totalNs, allocs, _, err := measureOp(1, func() error {
		lats, err := pacedWarmLoad(server.URL, warmPayloads, warmPerPhase, offeredRPS, warmClients)
		contended = lats
		return err
	})
	close(stop)
	coldWG.Wait()
	if err != nil {
		return nil, fmt.Errorf("contended phase: %w", err)
	}
	if coldErr != nil {
		return nil, fmt.Errorf("cold traffic: %w", coldErr)
	}

	st := svc.Stats()
	totalReqs := warmPerPhase + int(coldOffered.Load())
	shedRate := 0.0
	if n := coldOffered.Load(); n > 0 {
		shedRate = float64(coldShed.Load()) / float64(n)
	}
	up50 := float64(percentile(uncontended, 0.50)) / 1e6
	up99 := float64(percentile(uncontended, 0.99)) / 1e6
	p50 := float64(percentile(contended, 0.50)) / 1e6
	p99 := float64(percentile(contended, 0.99)) / 1e6
	ratio := 0.0
	if up99 > 0 {
		ratio = p99 / up99
	}
	if st.Shed != coldShed.Load() {
		return nil, fmt.Errorf("/stats shed %d disagrees with client-observed sheds %d", st.Shed, coldShed.Load())
	}
	return &Scenario{
		Name:                 "service_sustained_rps",
		Runs:                 1,
		NsPerOp:              totalNs / float64(warmPerPhase),
		OpsPerS:              float64(warmPerPhase) / (totalNs / 1e9),
		AllocsPerOp:          allocs / float64(totalReqs),
		Requests:             totalReqs,
		P50Millis:            p50,
		P99Millis:            p99,
		UncontendedP50Millis: up50,
		UncontendedP99Millis: up99,
		P99Ratio:             ratio,
		OfferedRPS:           offeredRPS,
		ColdOffered:          int(coldOffered.Load()),
		ColdShed:             int(coldShed.Load()),
		ShedRate:             &shedRate,
	}, nil
}

// closedLoop drives the feedback loop end to end in process: a cold fit's
// prediction error against a known target runtime (30% above the sample
// fit's estimate), then the blended prediction's error as a deterministic
// observation stream accrues through Observe. The offsets cycle
// symmetrically around the target (their mean is exactly 1.0 every five
// observations), so at each five-observation checkpoint the remaining
// error is purely the blend's sample-row weight — it must shrink
// strictly as observations accrue, and that shrink is enforced here the
// way cold_fit_parallel enforces coefficient identity. The scenario also
// tracks interval calibration: at every checkpoint the target must fall
// inside the prediction's central interval (p95 on the high side);
// P95Coverage is the fraction of checkpoints where it did. NsPerOp is
// one observe+predict feedback round. The -min-error-shrink and
// -min-p95-coverage CI gates are defined on this scenario.
func closedLoop(dataset string, scale float64) (*Scenario, error) {
	svc := service.New(service.Config{})
	ctx := context.Background()
	req := warmKeyRequests(dataset, scale)[0]

	base, err := svc.Predict(ctx, req)
	if err != nil {
		return nil, err
	}
	if base.BlendRegime != core.RegimeExtrapolation {
		return nil, fmt.Errorf("cold prediction regime %q, want %q", base.BlendRegime, core.RegimeExtrapolation)
	}

	// The "true" runtime the sample fit misestimates by 30%.
	target := base.SuperstepSeconds * 1.30
	offsets := []float64{0.98, 1.02, 0.99, 1.01, 1.00}
	const nObs = 30
	relErr := func(pred float64) float64 { return math.Abs(pred-target) / target }
	errBefore := relErr(base.SuperstepSeconds)

	var checkpointErrs []float64
	covered, checkpoints := 0, 0
	totalNs, allocs, bytes_, err := measureOp(1, func() error {
		for i := 0; i < nObs; i++ {
			if _, err := svc.Observe(ctx, service.ObserveRequest{
				ModelKey:      base.ModelKey,
				ActualSeconds: target * offsets[i%len(offsets)],
			}); err != nil {
				return err
			}
			resp, err := svc.Predict(ctx, req)
			if err != nil {
				return err
			}
			if (i+1)%len(offsets) != 0 {
				continue
			}
			if resp.BlendRegime != core.RegimeInterpolation {
				return fmt.Errorf("%d observations in: regime %q, want %q",
					i+1, resp.BlendRegime, core.RegimeInterpolation)
			}
			checkpointErrs = append(checkpointErrs, relErr(resp.SuperstepSeconds))
			checkpoints++
			lo := resp.SuperstepSeconds - (resp.P95Seconds - resp.SuperstepSeconds)
			if target >= lo && target <= resp.P95Seconds {
				covered++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	prev := errBefore
	for i, e := range checkpointErrs {
		if e >= prev {
			return nil, fmt.Errorf("closed-loop error did not shrink at checkpoint %d (%d observations): %.5f -> %.5f",
				i, (i+1)*len(offsets), prev, e)
		}
		prev = e
	}
	errAfter := checkpointErrs[len(checkpointErrs)-1]
	shrink := math.MaxFloat64
	if errAfter > 0 {
		shrink = errBefore / errAfter
	}
	coverage := float64(covered) / float64(checkpoints)
	n := float64(nObs)
	return &Scenario{
		Name:         "closed_loop",
		Runs:         1,
		NsPerOp:      totalNs / n,
		OpsPerS:      n / (totalNs / 1e9),
		AllocsPerOp:  allocs / n,
		BytesPerOp:   bytes_ / n,
		ErrorBefore:  errBefore,
		ErrorAfter:   errAfter,
		ErrorShrink:  shrink,
		P95Coverage:  &coverage,
		Observations: nObs,
	}, nil
}

// serviceFaults measures the robustness tax under deterministic fault
// injection, in two halves:
//
//  1. Breaker-open fast-fail: every fit is made to fail via an injected
//     PointServiceFit error, the per-key circuit breaker trips, and the
//     scenario's NsPerOp is the 503 round trip against the open breaker —
//     the latency a client pays while a model key is known-broken, which
//     must stay a cheap cache-miss-and-refuse, never a fit.
//  2. Retry-path overhead: registry snapshot loads where two of every
//     three read attempts fail with an injected transient error, so each
//     load succeeds on its third attempt after two jittered backoff
//     sleeps. RetryLoadNsPerOp vs RetryBaselineNsPerOp (the identical
//     load with no faults) is the tax, RetryOverheadRatio their ratio.
//
// The injector is restored to disabled before returning; run() re-checks
// that, so the gated scenarios always measure the injection-free build.
func serviceFaults(g *graph.Graph, dataset string, scale float64) (*Scenario, error) {
	// --- breaker-open fast-fail ---
	restore := faultinject.Enable(faultinject.NewInjector(1, faultinject.Rule{
		Point: faultinject.PointServiceFit,
		Err:   errors.New("bench: injected fit failure"),
	}))
	defer restore()

	cfg := servingConfig(4)
	cfg.FitBreakerThreshold = 2
	cfg.FitBreakerCooldown = time.Minute // stays open for the whole measurement
	svc := service.New(cfg)
	server := httptest.NewServer(svc.Handler())
	defer server.Close()

	payloads, err := encodePayloads(warmKeyRequests(dataset, scale)[:1])
	if err != nil {
		return nil, err
	}
	payload := payloads[0]
	client := &benchClient{}
	defer client.close()

	// Trip the breaker: threshold consecutive fit failures surface as 500s.
	for i := 0; i < cfg.FitBreakerThreshold; i++ {
		status, _, _, err := client.post(server.URL, payload)
		if err != nil {
			return nil, err
		}
		if status != http.StatusInternalServerError {
			return nil, fmt.Errorf("tripping request %d: status %d, want 500", i, status)
		}
	}

	const fastFails = 2000
	totalNs, allocs, bytes_, err := measureOp(1, func() error {
		for i := 0; i < fastFails; i++ {
			status, _, retryAfter, err := client.post(server.URL, payload)
			if err != nil {
				return err
			}
			if status != http.StatusServiceUnavailable {
				return fmt.Errorf("fast-fail request %d: status %d, want 503", i, status)
			}
			if retryAfter == "" {
				return fmt.Errorf("fast-fail request %d: missing Retry-After", i)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if st := svc.Stats(); st.BreakerTrips < 1 || st.BreakerFastFails < fastFails {
		return nil, fmt.Errorf("breaker stats disagree with the load: trips=%d fast_fails=%d (want >=1, >=%d)",
			st.BreakerTrips, st.BreakerFastFails, fastFails)
	}

	// --- retry-path overhead on flaky dataset loads ---
	dir, err := os.MkdirTemp("", "bench-faults-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	if err := graph.WriteSnapshotFile(filepath.Join(dir, "clean0.snap"), g); err != nil {
		return nil, err
	}
	blob, err := os.ReadFile(filepath.Join(dir, "clean0.snap"))
	if err != nil {
		return nil, err
	}
	const nLoads = 8
	for i := 0; i < nLoads; i++ {
		for _, prefix := range []string{"clean", "flaky"} {
			if prefix == "clean" && i == 0 {
				continue
			}
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%s%d.snap", prefix, i)), blob, 0o644); err != nil {
				return nil, err
			}
		}
	}

	lsvc := service.New(service.Config{
		DatasetDir:     dir,
		MaxGraphs:      2 * nLoads, // every load below is a distinct cold key
		RetryAttempts:  3,
		RetryBaseDelay: 200 * time.Microsecond,
		RetryMaxDelay:  2 * time.Millisecond,
	})
	lserver := httptest.NewServer(lsvc.Handler())
	defer lserver.Close()
	loadAll := func(prefix string) (nsPerLoad float64, err error) {
		start := time.Now()
		for i := 0; i < nLoads; i++ {
			resp, err := http.Post(fmt.Sprintf("%s/datasets/%s%d/load", lserver.URL, prefix, i), "application/json", http.NoBody)
			if err != nil {
				return 0, err
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return 0, fmt.Errorf("loading %s%d: status %d", prefix, i, resp.StatusCode)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / nLoads, nil
	}

	// Part 1's injector (fit failures only) is still enabled but never
	// fires on a dataset load, so this is the clean baseline.
	baselineNs, err := loadAll("clean")
	if err != nil {
		return nil, err
	}
	restoreFlaky := faultinject.Enable(faultinject.NewInjector(1, faultinject.Rule{
		Point:  faultinject.PointGraphLoadFile,
		From:   1,
		Count:  2,
		Period: 3, // attempts 1,2 fail, 3 succeeds — every load costs two retries
		Err:    retry.Transient(errors.New("bench: injected transient read failure")),
	}))
	flakyNs, err := loadAll("flaky")
	restoreFlaky()
	if err != nil {
		return nil, err
	}
	if got, want := lsvc.Stats().IORetries, int64(2*nLoads); got != want {
		return nil, fmt.Errorf("io_retries = %d after the flaky loads, want %d", got, want)
	}

	n := float64(fastFails)
	return &Scenario{
		Name:                 "service_faults",
		Runs:                 1,
		NsPerOp:              totalNs / n,
		OpsPerS:              n / (totalNs / 1e9),
		AllocsPerOp:          allocs / n,
		BytesPerOp:           bytes_ / n,
		Requests:             fastFails,
		RetryLoadNsPerOp:     flakyNs,
		RetryBaselineNsPerOp: baselineNs,
		RetryOverheadRatio:   flakyNs / baselineNs,
	}, nil
}

func writeResults(path string, res *Results) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
