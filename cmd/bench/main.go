// Command bench is the repo's reproducible performance harness. It runs
// the three scenarios that define the serving system's cost structure at
// fixed seeds and a fixed dataset scale, and writes the measurements to a
// JSON artifact (BENCH_results.json by default) that the perf trajectory
// and the CI bench gate consume:
//
//	cold_fit_sequential   Predictor.Fit with Parallelism=1 — the baseline
//	cold_fit_parallel     the same fit on a GOMAXPROCS pool, plus the
//	                      speedup vs sequential and a coefficient-identity
//	                      check (the parallel fit must be bit-identical)
//	warm_extrapolate      Fitted.Extrapolate on the cached model
//	engine_superstep      steady-state cost of one BSP superstep (setup
//	                      subtracted by differencing run lengths)
//	sampling_brj          one BRJ sample draw (walk + subgraph induction),
//	                      the unit cost a cold fit pays per training ratio
//	induced_subgraph      direct-CSR subgraph induction alone, on a fixed
//	                      pre-drawn vertex set
//	graph_load_text       sequential text edge-list parse from disk
//	                      (graph.ReadEdgeList) — the ingestion baseline
//	graph_load_parallel   the chunked parallel loader on the same file,
//	                      plus its speedup and a bit-identity check
//	graph_load_snapshot   binary CSR snapshot load of the same graph, plus
//	                      its speedup over the text baseline
//	service_end_to_end    a mixed cold/warm workload over the HTTP service
//
// Every scenario also records allocs_per_op and bytes_per_op from
// runtime.MemStats deltas, so the perf trajectory tracks allocation
// regressions alongside time.
//
// Usage:
//
//	bench                                  # report only
//	bench -min-speedup 1.5                 # CI gate: exit 1 below 1.5x
//	bench -max-superstep-allocs 32         # CI gate: engine allocs/superstep
//	bench -max-coldfit-allocs 2500         # CI gate: sequential cold-fit allocs
//	bench -max-load-allocs 64              # CI gate: snapshot-load allocs
//	PREDICT_BENCH_SCALE=0.08 bench         # smaller dataset stand-ins
//
// Timings vary with the host; everything else — samples, models,
// predictions — is fixed by the seeds, so two runs of the harness are
// directly comparable. The parallel-fit speedup needs real cores: on a
// single-CPU host it hovers around 1.0x, which is why the gate is an
// explicit flag rather than a default.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"predict/internal/algorithms"
	"predict/internal/benchenv"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/core"
	"predict/internal/features"
	"predict/internal/gen"
	"predict/internal/graph"
	"predict/internal/parallel"
	"predict/internal/sampling"
	"predict/internal/service"
)

// trainingRatios is the paper's §5.2 four-ratio training schedule — the
// "4-ratio scenario" the CI speedup gate is defined on (the main ratio
// 0.10 is one of the four, so a fit runs exactly 4 sample pipelines).
var trainingRatios = []float64{0.05, 0.10, 0.15, 0.20}

// Scenario is one benchmark measurement in the JSON artifact.
type Scenario struct {
	Name string `json:"name"`
	// Runs is how many repetitions were measured; NsPerOp is the best
	// (minimum) repetition, the standard noise-resistant statistic.
	Runs    int     `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	OpsPerS float64 `json:"ops_per_sec"`
	// AllocsPerOp/BytesPerOp are runtime.MemStats deltas (Mallocs and
	// TotalAlloc) per operation, averaged over the measured repetitions —
	// the allocation trajectory the perf gate tracks. On engine_superstep
	// they are per-superstep steady-state figures with setup subtracted.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// SpeedupVsSequential is set on cold_fit_parallel.
	SpeedupVsSequential float64 `json:"speedup_vs_sequential,omitempty"`
	// CoefficientsMatch is set on cold_fit_parallel: whether the parallel
	// fit's model is bit-identical to the sequential baseline's.
	CoefficientsMatch *bool `json:"coefficients_match,omitempty"`
	// CacheHitRatio and Requests are set on service_end_to_end.
	CacheHitRatio *float64 `json:"cache_hit_ratio,omitempty"`
	Requests      int      `json:"requests,omitempty"`
}

// Results is the BENCH_results.json schema.
type Results struct {
	GeneratedAt    string     `json:"generated_at"`
	GoVersion      string     `json:"go_version"`
	GOMAXPROCS     int        `json:"gomaxprocs"`
	NumCPU         int        `json:"num_cpu"`
	Dataset        string     `json:"dataset"`
	Scale          float64    `json:"scale"`
	TrainingRatios []float64  `json:"training_ratios"`
	Scenarios      []Scenario `json:"scenarios"`
	// ColdFitSpeedup duplicates the parallel scenario's speedup at the
	// top level so the CI gate and the trajectory can read one field.
	ColdFitSpeedup float64 `json:"cold_fit_speedup"`
}

func main() {
	var (
		out        = flag.String("out", "BENCH_results.json", "output artifact path")
		dataset    = flag.String("dataset", "Wiki", "dataset stand-in prefix (LJ, Wiki, TW, UK)")
		scale      = flag.Float64("scale", 0, "dataset scale factor (0 = $PREDICT_BENCH_SCALE or 0.1)")
		runs       = flag.Int("runs", 3, "repetitions per cold-fit and engine_superstep scenario (best time, mean allocs)")
		minSpeedup = flag.Float64("min-speedup", 0, "fail (exit 1) if parallel cold-fit speedup is below this (0 disables the gate)")
		maxSSAlloc = flag.Float64("max-superstep-allocs", 0, "fail (exit 1) if steady-state engine allocs per superstep exceed this (0 disables the gate)")
		maxCFAlloc = flag.Float64("max-coldfit-allocs", 0, "fail (exit 1) if sequential cold-fit allocs per op exceed this (0 disables the gate)")
		maxLdAlloc = flag.Float64("max-load-allocs", 0, "fail (exit 1) if snapshot graph-load allocs per op exceed this (0 disables the gate)")
	)
	flag.Parse()
	if err := run(*out, *dataset, *scale, *runs, *minSpeedup, *maxSSAlloc, *maxCFAlloc, *maxLdAlloc); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
}

// measureOp runs op `runs` times and returns the best wall time plus the
// mean allocation deltas per run (runtime.MemStats Mallocs/TotalAlloc are
// monotonic counters, so the deltas are exact regardless of GC).
func measureOp(runs int, op func() error) (bestNs, allocsPerOp, bytesPerOp float64, err error) {
	bestNs = math.MaxFloat64
	var ms0, ms1 runtime.MemStats
	for r := 0; r < runs; r++ {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if err := op(); err != nil {
			return 0, 0, 0, err
		}
		ns := float64(time.Since(start).Nanoseconds())
		runtime.ReadMemStats(&ms1)
		if ns < bestNs {
			bestNs = ns
		}
		allocsPerOp += float64(ms1.Mallocs - ms0.Mallocs)
		bytesPerOp += float64(ms1.TotalAlloc - ms0.TotalAlloc)
	}
	return bestNs, allocsPerOp / float64(runs), bytesPerOp / float64(runs), nil
}

// benchScale resolves the dataset scale: the -scale flag, else the
// PREDICT_BENCH_SCALE environment variable (shared validation in
// internal/benchenv), else 0.1. Malformed values are an error, not a
// silent fallback.
func benchScale(flagScale float64) (float64, error) {
	if flagScale != 0 {
		if flagScale < 0 || math.IsNaN(flagScale) || math.IsInf(flagScale, 0) {
			return 0, fmt.Errorf("malformed -scale %v: want a positive float", flagScale)
		}
		return flagScale, nil
	}
	return benchenv.Scale(0.1)
}

func run(out, dataset string, flagScale float64, runs int, minSpeedup, maxSSAlloc, maxCFAlloc, maxLdAlloc float64) error {
	scale, err := benchScale(flagScale)
	if err != nil {
		return err
	}
	if runs < 1 {
		runs = 1
	}
	ds, err := gen.ByPrefix(dataset)
	if err != nil {
		return err
	}
	fmt.Printf("bench: dataset=%s scale=%g gomaxprocs=%d runs=%d\n",
		dataset, scale, runtime.GOMAXPROCS(0), runs)
	g := ds.Generate(scale, 1)

	res := &Results{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NumCPU:         runtime.NumCPU(),
		Dataset:        dataset,
		Scale:          scale,
		TrainingRatios: trainingRatios,
	}

	seqScn, seqFit, err := coldFit(g, 1, runs)
	if err != nil {
		return fmt.Errorf("cold_fit_sequential: %w", err)
	}
	seqScn.Name = "cold_fit_sequential"
	res.add(*seqScn)

	parScn, parFit, err := coldFit(g, 0, runs)
	if err != nil {
		return fmt.Errorf("cold_fit_parallel: %w", err)
	}
	speedup := seqScn.NsPerOp / parScn.NsPerOp
	match, err := sameModel(seqFit, parFit, g)
	if err != nil {
		return err
	}
	res.ColdFitSpeedup = speedup
	parScn.Name = "cold_fit_parallel"
	parScn.SpeedupVsSequential = speedup
	parScn.CoefficientsMatch = &match
	res.add(*parScn)

	warmScn, err := warmExtrapolate(seqFit, g)
	if err != nil {
		return fmt.Errorf("warm_extrapolate: %w", err)
	}
	res.add(*warmScn)

	ssScn, err := engineSuperstep(g, runs)
	if err != nil {
		return fmt.Errorf("engine_superstep: %w", err)
	}
	res.add(*ssScn)

	brjScn, err := samplingBRJ(g)
	if err != nil {
		return fmt.Errorf("sampling_brj: %w", err)
	}
	res.add(*brjScn)

	subScn, err := inducedSubgraph(g)
	if err != nil {
		return fmt.Errorf("induced_subgraph: %w", err)
	}
	res.add(*subScn)

	loadScns, err := graphLoad(g, runs)
	if err != nil {
		return fmt.Errorf("graph_load: %w", err)
	}
	for _, s := range loadScns {
		res.add(*s)
	}
	snapScn := loadScns[2]

	svcScenario, err := serviceEndToEnd(dataset, scale)
	if err != nil {
		return fmt.Errorf("service_end_to_end: %w", err)
	}
	res.add(*svcScenario)

	if err := writeResults(out, res); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s (cold-fit speedup %.2fx, coefficients match %v, superstep allocs/op %.1f, cold-fit allocs/op %.0f)\n",
		out, speedup, match, ssScn.AllocsPerOp, seqScn.AllocsPerOp)

	if !match {
		return fmt.Errorf("parallel fit is not bit-identical to the sequential baseline")
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("cold-fit speedup %.2fx below the %.2fx gate (gomaxprocs=%d)",
			speedup, minSpeedup, runtime.GOMAXPROCS(0))
	}
	if maxSSAlloc > 0 && ssScn.AllocsPerOp > maxSSAlloc {
		return fmt.Errorf("engine steady state allocates %.1f per superstep, above the %.1f gate",
			ssScn.AllocsPerOp, maxSSAlloc)
	}
	if maxCFAlloc > 0 && seqScn.AllocsPerOp > maxCFAlloc {
		return fmt.Errorf("sequential cold fit allocates %.0f per op, above the %.0f gate",
			seqScn.AllocsPerOp, maxCFAlloc)
	}
	if maxLdAlloc > 0 && snapScn.AllocsPerOp > maxLdAlloc {
		return fmt.Errorf("snapshot graph load allocates %.0f per op, above the %.0f gate",
			snapScn.AllocsPerOp, maxLdAlloc)
	}
	return nil
}

func (r *Results) add(s Scenario) {
	r.Scenarios = append(r.Scenarios, s)
	extra := ""
	if s.SpeedupVsSequential > 0 {
		extra = fmt.Sprintf("  speedup=%.2fx", s.SpeedupVsSequential)
	}
	if s.CacheHitRatio != nil {
		extra = fmt.Sprintf("  hit-ratio=%.2f", *s.CacheHitRatio)
	}
	fmt.Printf("  %-22s %12.0f ns/op%s\n", s.Name, s.NsPerOp, extra)
}

func opsPerS(nsPerOp float64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return 1e9 / nsPerOp
}

// benchEnv is the fixed sample-run environment: 4 workers, the default
// oracle, no noise so the cost model is exactly reproducible.
func benchEnv() bsp.Config {
	o := cluster.DefaultOracle()
	o.NoiseStdDev = 0
	o.MemoryBudgetBytes = 0
	return bsp.Config{Workers: 4, Oracle: &o, Seed: 1}
}

func benchPredictor(parallelism, n int) (*core.Predictor, algorithms.Algorithm) {
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, n)
	p := core.New(core.Options{
		Sampling:       sampling.Options{Ratio: 0.10, Seed: 1},
		BSP:            benchEnv(),
		TrainingRatios: trainingRatios,
		Parallelism:    parallelism,
	})
	return p, pr
}

// coldFit measures Predictor.Fit at the given parallelism (1 = the
// sequential baseline, 0 = GOMAXPROCS) and returns the scenario (name
// filled by the caller) plus the last fitted model for the identity check.
func coldFit(g *graph.Graph, parallelism, runs int) (*Scenario, *core.Fitted, error) {
	p, alg := benchPredictor(parallelism, g.NumVertices())
	var fitted *core.Fitted
	ns, allocs, bytes, err := measureOp(runs, func() error {
		f, err := p.Fit(alg, g)
		fitted = f
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return &Scenario{
		Runs: runs, NsPerOp: ns, OpsPerS: opsPerS(ns),
		AllocsPerOp: allocs, BytesPerOp: bytes,
	}, fitted, nil
}

// sameModel reports whether two fits produced bit-identical models and
// predictions, by comparing a canonical JSON encoding of coefficients,
// intercept, selected features, R2, iteration count and the per-iteration
// runtime prediction on g.
func sameModel(a, b *core.Fitted, g *graph.Graph) (bool, error) {
	ja, err := modelFingerprint(a, g)
	if err != nil {
		return false, err
	}
	jb, err := modelFingerprint(b, g)
	if err != nil {
		return false, err
	}
	return bytes.Equal(ja, jb), nil
}

func modelFingerprint(f *core.Fitted, g *graph.Graph) ([]byte, error) {
	pred, err := f.Extrapolate(g, 0)
	if err != nil {
		return nil, err
	}
	coeffs, intercept := f.Model.Coefficients()
	names := make([]string, 0, len(coeffs))
	for name := range coeffs {
		names = append(names, string(name))
	}
	sort.Strings(names)
	type pair struct {
		Name string
		C    float64
	}
	fp := struct {
		Coeffs     []pair
		Intercept  float64
		R2         float64
		Iterations int
		PerIter    []float64
	}{Intercept: intercept, R2: f.Model.R2(), Iterations: f.Iterations, PerIter: pred.PerIterationSeconds}
	for _, name := range names {
		fp.Coeffs = append(fp.Coeffs, pair{Name: name, C: coeffs[features.Name(name)]})
	}
	return json.Marshal(fp)
}

// measureLoop measures a repeated steady-state operation: op runs ops
// times inside one measureOp window and the totals are divided back to
// per-op figures.
func measureLoop(name string, ops int, op func() error) (*Scenario, error) {
	total, allocs, bytes, err := measureOp(1, func() error {
		for i := 0; i < ops; i++ {
			if err := op(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ns := total / float64(ops)
	return &Scenario{
		Name: name, Runs: 1, NsPerOp: ns, OpsPerS: opsPerS(ns),
		AllocsPerOp: allocs / float64(ops), BytesPerOp: bytes / float64(ops),
	}, nil
}

// warmExtrapolate measures the cached-model path: Extrapolate on the full
// graph, the operation every cache hit pays.
func warmExtrapolate(f *core.Fitted, g *graph.Graph) (*Scenario, error) {
	return measureLoop("warm_extrapolate", 2000, func() error {
		_, err := f.Extrapolate(g, 0)
		return err
	})
}

// ssProgram is the engine_superstep scenario's vertex program: the
// PageRank communication shape (a float share to every out-neighbor, one
// aggregate contribution, no vote-to-halt) with a combiner, so the
// measured loop is the engine's combiner fast path under full load.
type ssProgram struct{ n float64 }

func (p ssProgram) Init(_ *graph.Graph, _ bsp.VertexID) float64 { return 1 / p.n }

func (p ssProgram) Compute(ctx *bsp.Context[float64], id bsp.VertexID, v *float64, msgs []float64) {
	var sum float64
	for _, m := range msgs {
		sum += m
	}
	if ctx.Superstep() > 0 {
		*v = 0.15/p.n + 0.85*sum
	}
	ctx.AddToAggregate("bench.mass", sum)
	if deg := ctx.Graph().OutDegree(id); deg > 0 {
		ctx.SendToNeighbors(id, *v/float64(deg))
	}
}

func (ssProgram) MessageBytes(float64) int { return 8 }
func (ssProgram) FixedMessageBytes() int   { return 8 }

// engineSuperstep measures the steady-state cost of one BSP superstep on
// the bench graph — ns, heap allocations and bytes per superstep with the
// one-time setup (partitioning, buffer allocation, value init) subtracted
// by differencing a long run against a one-superstep run. This is the
// scenario the allocation gate (-max-superstep-allocs) is defined on.
func engineSuperstep(g *graph.Graph, runs int) (*Scenario, error) {
	const steps = 64
	cfg := benchEnv()
	cfg.MaxSupersteps = steps + 1
	runEngine := func(supersteps int) func() error {
		return func() error {
			eng := bsp.NewEngine[float64, float64](g, ssProgram{n: float64(g.NumVertices())}, cfg)
			eng.SetCombiner(func(a, b float64) float64 { return a + b })
			eng.SetHalt(func(info bsp.SuperstepInfo) bool { return info.Superstep >= supersteps-1 })
			_, err := eng.Run()
			return err
		}
	}
	longNs, longAllocs, longBytes, err := measureOp(runs, runEngine(steps))
	if err != nil {
		return nil, err
	}
	setupNs, setupAllocs, setupBytes, err := measureOp(runs, runEngine(1))
	if err != nil {
		return nil, err
	}
	perStep := func(long, setup float64) float64 {
		d := (long - setup) / (steps - 1)
		if d < 0 {
			return 0 // measurement noise on a host with background load
		}
		return d
	}
	ns := perStep(longNs, setupNs)
	return &Scenario{
		Name: "engine_superstep", Runs: runs, NsPerOp: ns, OpsPerS: opsPerS(ns),
		AllocsPerOp: perStep(longAllocs, setupAllocs),
		BytesPerOp:  perStep(longBytes, setupBytes),
	}, nil
}

// samplingBRJ measures one Biased Random Jump sample draw — seed
// selection, the walk and the direct-CSR subgraph induction — the unit
// cost every cold fit pays once per training ratio. The first draw builds
// the per-graph degree artifacts; the measured loop is the steady state a
// fit's second, third, ... samples (and every later fit on the same
// cached graph) run at.
func samplingBRJ(g *graph.Graph) (*Scenario, error) {
	opts := sampling.Options{Ratio: 0.10, Seed: 1}
	if _, err := sampling.Sample(g, sampling.BiasedRandomJump, opts); err != nil {
		return nil, err
	}
	return measureLoop("sampling_brj", 100, func() error {
		_, err := sampling.Sample(g, sampling.BiasedRandomJump, opts)
		return err
	})
}

// inducedSubgraph measures the direct-CSR induction alone on a fixed
// pre-drawn vertex set (a 10% BRJ sample's visit sequence), isolating the
// two-pass CSR construction from walk randomness.
func inducedSubgraph(g *graph.Graph) (*Scenario, error) {
	s, err := sampling.Sample(g, sampling.BiasedRandomJump, sampling.Options{Ratio: 0.10, Seed: 1})
	if err != nil {
		return nil, err
	}
	verts := s.Vertices
	return measureLoop("induced_subgraph", 100, func() error {
		_, _, err := graph.InducedSubgraph(g, verts)
		return err
	})
}

// graphLoad measures the three ingestion paths on the bench graph: the
// sequential text parse (baseline), the chunked parallel loader on the
// same file, and the binary CSR snapshot — each loading from a real file
// so the numbers include I/O. The parallel and snapshot scenarios carry
// their speedup over the text baseline in SpeedupVsSequential, and all
// three loads are checked bit-identical to the source graph (the loader's
// core contract) before the scenarios are reported.
func graphLoad(g *graph.Graph, runs int) ([3]*Scenario, error) {
	var out [3]*Scenario
	dir, err := os.MkdirTemp("", "bench-load-*")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)

	textPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(textPath)
	if err != nil {
		return out, err
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		f.Close()
		return out, err
	}
	if err := f.Close(); err != nil {
		return out, err
	}
	snapPath := filepath.Join(dir, "g.snap")
	if err := graph.WriteSnapshotFile(snapPath, g); err != nil {
		return out, err
	}

	measureLoad := func(name string, load func() (*graph.Graph, error)) (*Scenario, error) {
		var loaded *graph.Graph
		ns, allocs, bytes, err := measureOp(runs, func() error {
			lg, err := load()
			loaded = lg
			return err
		})
		if err != nil {
			return nil, err
		}
		if !sameGraph(g, loaded) {
			return nil, fmt.Errorf("%s: loaded graph differs from the source graph", name)
		}
		return &Scenario{
			Name: name, Runs: runs, NsPerOp: ns, OpsPerS: opsPerS(ns),
			AllocsPerOp: allocs, BytesPerOp: bytes,
		}, nil
	}

	text, err := measureLoad("graph_load_text", func() (*graph.Graph, error) {
		f, err := os.Open(textPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	})
	if err != nil {
		return out, err
	}

	par, err := measureLoad("graph_load_parallel", func() (*graph.Graph, error) {
		return graph.LoadFile(textPath, graph.LoadOptions{})
	})
	if err != nil {
		return out, err
	}
	par.SpeedupVsSequential = text.NsPerOp / par.NsPerOp

	snap, err := measureLoad("graph_load_snapshot", func() (*graph.Graph, error) {
		return graph.ReadSnapshotFile(snapPath)
	})
	if err != nil {
		return out, err
	}
	snap.SpeedupVsSequential = text.NsPerOp / snap.NsPerOp

	out[0], out[1], out[2] = text, par, snap
	return out, nil
}

// sameGraph compares two graphs through the exported CSR accessors.
func sameGraph(a, b *graph.Graph) bool {
	if b == nil || a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() ||
		a.HasWeights() != b.HasWeights() {
		return false
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.OutNeighbors(graph.VertexID(v)), b.OutNeighbors(graph.VertexID(v))
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
		wa, wb := a.OutWeights(graph.VertexID(v)), b.OutWeights(graph.VertexID(v))
		for i := range wa {
			if wa[i] != wb[i] {
				return false
			}
		}
	}
	return true
}

// serviceEndToEnd drives a mixed workload through the HTTP service: three
// distinct model keys (cold fits, answered concurrently on the shared fit
// pool) and nine warm repeats of each, measuring end-to-end request
// latency and the resulting cache hit ratio.
func serviceEndToEnd(dataset string, scale float64) (*Scenario, error) {
	svc := service.New(service.Config{})
	server := httptest.NewServer(svc.Handler())
	defer server.Close()

	base := service.PredictRequest{
		Dataset:        dataset,
		Scale:          scale,
		Algorithm:      "PR",
		Ratio:          0.10,
		TrainingRatios: trainingRatios,
	}
	var reqs []service.PredictRequest
	for _, alg := range []string{"PR", "CC", "NH"} {
		for rep := 0; rep < 10; rep++ {
			r := base
			r.Algorithm = alg
			reqs = append(reqs, r)
		}
	}

	// Four concurrent clients, first-error semantics — the same pool the
	// fit pipeline uses. The allocation columns cover the whole serving
	// stack: HTTP handling, cache lookups and the shared-pool cold fits.
	clients := parallel.NewPool(4)
	totalNs, allocs, bytes, err := measureOp(1, func() error {
		return clients.ForEach(context.Background(), len(reqs),
			func(_ context.Context, i int) error {
				return postPredict(server.URL, reqs[i])
			})
	})
	if err != nil {
		return nil, err
	}

	st := svc.Stats()
	hitRatio := st.HitRatio
	n := float64(len(reqs))
	return &Scenario{
		Name:          "service_end_to_end",
		Runs:          1,
		NsPerOp:       totalNs / n,
		OpsPerS:       n / (totalNs / 1e9),
		AllocsPerOp:   allocs / n,
		BytesPerOp:    bytes / n,
		CacheHitRatio: &hitRatio,
		Requests:      len(reqs),
	}, nil
}

func postPredict(url string, r service.PredictRequest) error {
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(r); err != nil {
		return err
	}
	resp, err := http.Post(url+"/predict", "application/json", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&msg)
		return fmt.Errorf("POST /predict: status %d: %s", resp.StatusCode, msg["error"])
	}
	var pr service.PredictResponse
	return json.NewDecoder(resp.Body).Decode(&pr)
}

func writeResults(path string, res *Results) error {
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
