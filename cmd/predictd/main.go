// Command predictd serves PREDIcT predictions over HTTP: graphs are
// loaded once, fitted cost models are cached (LRU-bounded) and reused
// across requests, and the cache optionally persists through a history
// file so restarts skip the expensive sample-run pipeline.
//
// Usage:
//
//	predictd -addr :8080
//	predictd -addr :8080 -history models.jsonl      # warm + persist cache
//	predictd -dataset-dir ./datasets                # serve real graphs by name
//	predictd -dataset-dir ./datasets -mmap-datasets # zero-copy snapshots (datasets larger than RAM)
//	predictd -max-models 128 -timeout 120s -workers 16
//	predictd -fit-parallelism 8 -fit-timeout 2m     # cold-path budget
//	predictd -fit-queue-depth 8 -max-inflight 256   # admission control (shed past the bound)
//	predictd -batch-window 10ms -retry-after 2s     # coalescing + shed guidance
//	predictd -fit-breaker-threshold 5 -fit-breaker-cooldown 5s  # per-model circuit breaker
//	predictd -retry-attempts 3 -retry-base-delay 50ms -retry-max-delay 1s  # transient dataset I/O
//	predictd -pprof-addr 127.0.0.1:6060             # live profiling (off by default)
//	predictd -drain-timeout 10s                     # SIGTERM drain deadline before fits are canceled
//	predictd -blend-threshold 5                     # observations before closed-loop refits kick in
//
// API (JSON; docs/API.md is the full reference):
//
//	POST /predict               {"dataset":"Wiki","algorithm":"PR","ratio":0.1}
//	POST /predict/batch         {"requests":[{...},{...}]}
//	POST /observe               {"model_key":"...","actual_seconds":123.4}  closed-loop feedback
//	GET  /datasets              registry inventory (with -dataset-dir)
//	POST /datasets/{name}/load  pre-load a registry dataset
//	GET  /models
//	GET  /stats
//	GET  /healthz               liveness (always 200; honest status field)
//	GET  /readyz                readiness (503 while dataset dir or history file is broken)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the DefaultServeMux, served only on -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/faultinject"
	"predict/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		maxModels = flag.Int("max-models", 64, "LRU bound on cached cost models")
		maxGraphs = flag.Int("max-graphs", 8, "LRU bound on cached dataset graphs")
		timeout   = flag.Duration("timeout", 60*time.Second, "default per-request timeout")
		maxBatch  = flag.Int("max-batch", 256, "maximum requests per batch call")
		workers   = flag.Int("workers", 0, "sample-cluster BSP workers (0 = default 8)")
		seed      = flag.Uint64("seed", 0, "cost-oracle noise seed")
		histFile  = flag.String("history", "", "JSON-lines file: warm the model cache at startup, persist it at shutdown")
		dataDir   = flag.String("dataset-dir", "", "dataset registry directory (<name>.snap snapshots, <name>.txt/.el/.edges edge lists)")
		mmapData  = flag.Bool("mmap-datasets", false, "serve .snap registry datasets from mmap'd pages (zero-copy, shared across processes; falls back to copy-in where unsupported)")
		fitPar    = flag.Int("fit-parallelism", 0, "shared fit-pool budget: sample pipelines running at once across all cold fits (0 = GOMAXPROCS)")
		fitTO     = flag.Duration("fit-timeout", 0, "per-fit deadline, detached from request timeouts (0 = default 5m)")
		fitQueue  = flag.Int("fit-queue-depth", 0, "cold fits outstanding before shedding with 503 (0 = 4x fit parallelism, <0 = unlimited)")
		maxInfl   = flag.Int("max-inflight", 0, "hard bound on in-flight requests before shedding with 429 (0 = unlimited)")
		batchWin  = flag.Duration("batch-window", 0, "coalesce identical predictions arriving within this window (0 = only overlapping requests)")
		retry     = flag.Duration("retry-after", 0, "Retry-After guidance on shed responses (0 = default 1s)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables profiling")
		brkThresh = flag.Int("fit-breaker-threshold", 0, "consecutive fit failures before a model key's circuit breaker opens (0 = default 5, <0 = disabled)")
		brkCool   = flag.Duration("fit-breaker-cooldown", 0, "how long an open breaker waits before a half-open probe (0 = default 5s)")
		retryN    = flag.Int("retry-attempts", 0, "dataset I/O attempts for transient failures, first try included (0 = default 3, <0 = no retries)")
		retryBase = flag.Duration("retry-base-delay", 0, "first backoff between dataset I/O retries, jittered exponential after (0 = default 50ms)")
		retryMax  = flag.Duration("retry-max-delay", 0, "backoff ceiling between dataset I/O retries (0 = default 1s)")
		drainTO   = flag.Duration("drain-timeout", 10*time.Second, "SIGTERM drain deadline: how long in-flight requests get before their fits are canceled")
		ckptOff   = flag.Bool("no-checkpoints", false, "disable continuous model checkpointing; models then persist only at clean shutdown")
		ckptGrow  = flag.Int("checkpoint-growth-factor", 0, "compact the checkpoint log when it grows this many times its post-compaction size (0 = default 4, <0 = never compact)")
		blendK    = flag.Int("blend-threshold", 0, "observed runtimes per model key before predictions switch to the observation-weighted refit (0 = default 5)")
	)
	flag.Parse()

	// Fault injection for the crash/soak harness: PREDICT_FAULTS schedules
	// deterministic faults (including self-SIGKILL) inside the real binary.
	// Unset means disabled with zero overhead; malformed means refuse to
	// start — a harness run with a typo'd schedule must not silently test
	// nothing.
	if on, err := faultinject.EnableFromEnv(); err != nil {
		log.Fatalf("predictd: %s: %v", faultinject.EnvVar, err)
	} else if on {
		log.Printf("predictd: fault injection enabled from %s", faultinject.EnvVar)
	}

	oracle := cluster.DefaultOracle()
	svc := service.New(service.Config{
		MaxModels:      *maxModels,
		MaxGraphs:      *maxGraphs,
		DefaultTimeout: *timeout,
		MaxBatch:       *maxBatch,
		FitParallelism: *fitPar,
		FitTimeout:     *fitTO,
		FitQueueDepth:  *fitQueue,
		MaxInFlight:    *maxInfl,
		BatchWindow:    *batchWin,
		ShedRetryAfter: *retry,
		Cluster:        bsp.Config{Workers: *workers, Seed: *seed, Oracle: &oracle},
		DatasetDir:     *dataDir,
		MmapDatasets:   *mmapData,

		FitBreakerThreshold: *brkThresh,
		FitBreakerCooldown:  *brkCool,
		RetryAttempts:       *retryN,
		RetryBaseDelay:      *retryBase,
		RetryMaxDelay:       *retryMax,
		// The readiness probe (GET /readyz) watches the history file's
		// appendability when one is configured; with checkpointing on
		// (default) every fitted model is durably appended here at fit time.
		HistoryPath:            *histFile,
		DisableCheckpoints:     *ckptOff,
		CheckpointGrowthFactor: *ckptGrow,
		BlendThreshold:         *blendK,
	})

	// Warm the cache from history. If the warm-up could not read the whole
	// file, overwriting it would destroy the records that failed to load —
	// divert checkpoints and the shutdown snapshot to a sibling file and
	// leave the original for inspection.
	if *histFile != "" {
		warmed, skipped, err := svc.WarmFromHistory(*histFile)
		switch {
		case err != nil:
			svc.RedirectHistory(*histFile + ".recovered")
			log.Printf("predictd: warming from %s: %v; will persist to %s to preserve the original",
				*histFile, err, svc.HistoryPath())
		case skipped > 0:
			svc.RedirectHistory(*histFile + ".recovered")
			log.Printf("predictd: warmed %d model(s), skipped %d unreadable record(s); will persist to %s to preserve the original",
				warmed, skipped, svc.HistoryPath())
		case warmed > 0:
			log.Printf("predictd: warmed %d model(s) from %s", warmed, *histFile)
		}
		if svc.Stats().TornRecovered > 0 {
			// A crash tore the file's last record mid-append; the complete
			// records warmed fine and the next compaction or snapshot
			// rewrites the file whole, so no divert is needed — but the
			// operator should know the crash happened.
			log.Printf("predictd: recovered a torn trailing record in %s (interrupted append); complete records kept", *histFile)
		}
	}

	// The profiling listener is opt-in and separate from the service
	// listener, so profiling endpoints are never exposed on the serving
	// address. The blank net/http/pprof import registers its handlers on
	// the DefaultServeMux, which nothing else in this process serves; the
	// controller closes the listener first during drain.
	ctrl, err := service.StartController(svc, service.ControllerConfig{
		Addr:         *addr,
		PprofAddr:    *pprofAddr,
		PprofHandler: http.DefaultServeMux,
		DrainTimeout: *drainTO,
		Logf: func(format string, args ...any) {
			log.Printf("predictd: "+format, args...)
		},
	})
	if err != nil {
		log.Fatalf("predictd: %v", err)
	}

	// Serve until SIGINT/SIGTERM, then drain: readiness flips to draining,
	// new work is refused 503 + Connection: close, in-flight requests get
	// the drain deadline, and fits still running past it are canceled.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-ctrl.Err():
		log.Fatalf("predictd: %v", err)
	case sig := <-sigc:
		log.Printf("predictd: %s: draining", sig)
	}
	if err := ctrl.Drain(); err != nil {
		log.Printf("predictd: drain: %v", err)
	}

	// The shutdown snapshot is an optimization, not the durability story —
	// checkpointing already persisted every model at fit time. It compacts
	// the log to exactly the live cache (LRU order preserved) in one pass.
	if path := svc.HistoryPath(); path != "" {
		if n, err := svc.SaveHistory(path); err != nil {
			log.Printf("predictd: persisting cache: %v", err)
		} else {
			fmt.Printf("predictd: persisted %d model(s) to %s\n", n, path)
		}
	}
}
