// Command predict runs the PREDIcT pipeline end to end: sample a graph,
// profile a transformed sample run, fit a cost model, predict the full
// run's iterations and runtime — and optionally verify against the actual
// run.
//
// Usage:
//
//	predict -data Wiki -alg PR -ratio 0.1 -actual
//	predict -input graph.txt -alg SC -ratio 0.15
//	predict -data TW -alg CC -method RJ -workers 16
package main

import (
	"flag"
	"fmt"
	"os"

	"predict"
	"predict/internal/algorithms"
	"predict/internal/costmodel"
	"predict/internal/features"
	"predict/internal/history"
)

func main() {
	var (
		data     = flag.String("data", "Wiki", "dataset stand-in prefix: LJ, Wiki, TW, UK (ignored with -input)")
		input    = flag.String("input", "", "edge-list file to load instead of a generated dataset")
		scale    = flag.Float64("scale", 1.0, "dataset scale factor")
		algName  = flag.String("alg", "PR", "algorithm: PR, SC, TOPK, CC, NH")
		ratio    = flag.Float64("ratio", 0.10, "sampling ratio")
		method   = flag.String("method", "BRJ", "sampling method: BRJ, RJ, MHRW, UNI")
		eps      = flag.Float64("eps", 0.001, "PageRank tolerance level (tau = eps/N)")
		workers  = flag.Int("workers", 0, "BSP workers (0 = default 8)")
		seed     = flag.Uint64("seed", 1, "random seed")
		actual   = flag.Bool("actual", false, "also execute the actual run and report errors")
		histFile = flag.String("history", "", "JSON-lines history file: prior runs train the cost model (§3.4)")
		saveHist = flag.Bool("save-history", false, "with -actual and -history: archive the actual run for future predictions")
	)
	flag.Parse()

	g, err := loadGraph(*input, *data, *scale, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	alg, err := configureAlgorithm(*algName, *eps, g.NumVertices())
	if err != nil {
		fail(err)
	}

	// Prior runs of the same algorithm, if archived, join the training set.
	var trainHistory []costmodel.TrainingRun
	if *histFile != "" {
		if records, torn, err := history.LoadFile(*histFile); err == nil {
			runs, skipped, err := history.TrainingRunsFor(records, alg.Name())
			if err != nil {
				fail(err)
			}
			trainHistory = runs
			fmt.Printf("history: %d matching run(s) loaded (%d other-algorithm records skipped)\n",
				len(runs), skipped)
			if torn != nil {
				fmt.Printf("history: recovered %s (likely an interrupted append; complete records kept)\n", torn)
			}
		} else if !os.IsNotExist(err) {
			fail(err)
		}
	}

	cfg := predict.DefaultCluster()
	cfg.Workers = *workers
	cfg.Seed = *seed
	p := predict.NewPredictor(predict.Options{
		Method:         predict.SamplingMethod(*method),
		Sampling:       predict.SamplingOptions{Ratio: *ratio, Seed: *seed},
		BSP:            cfg,
		TrainingRatios: []float64{0.05, 0.10, 0.15, 0.20},
		History:        trainHistory,
	})
	pred, err := p.Predict(alg, g)
	if err != nil {
		fail(err)
	}
	fmt.Println("\n--- prediction ---")
	fmt.Println(predict.FormatPrediction(pred))

	if !*actual {
		return
	}
	ri, err := alg.Run(g, cfg)
	if err != nil {
		fail(fmt.Errorf("actual run: %w", err))
	}
	ev := predict.Evaluate(pred, ri)
	fmt.Println("\n--- actual run ---")
	fmt.Printf("iterations        %d (error %+.1f%%)\n", ev.ActualIterations, 100*ev.IterationsError)
	fmt.Printf("superstep runtime %.1f s (error %+.1f%%)\n", ev.ActualSeconds, 100*ev.RuntimeError)
	fmt.Printf("remote msg bytes  %.3g (error %+.1f%%)\n", ev.ActualRemoteBytes, 100*ev.RemoteBytesError)

	if *saveHist && *histFile != "" {
		rec := history.FromRun(ri, fmt.Sprintf("%s scale=%g", *data, *scale), "actual",
			features.ModeCriticalShare)
		if err := history.AppendFile(*histFile, rec); err != nil {
			fail(err)
		}
		fmt.Printf("\narchived actual run to %s\n", *histFile)
	}
}

func loadGraph(input, data string, scale float64, seed uint64) (*predict.Graph, error) {
	if input == "" {
		for _, ds := range predict.Datasets() {
			if ds.Prefix == data {
				return ds.Generate(scale, seed), nil
			}
		}
		return nil, fmt.Errorf("unknown dataset %q (want LJ, Wiki, TW or UK)", data)
	}
	f, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return predict.ReadGraph(f)
}

func configureAlgorithm(name string, eps float64, n int) (predict.Algorithm, error) {
	alg, err := predict.AlgorithmByName(name)
	if err != nil {
		return nil, err
	}
	// PageRank-based algorithms need tau = eps/N.
	switch a := alg.(type) {
	case algorithms.PageRank:
		a.Tau = predict.PageRankTau(eps, n)
		return a, nil
	case algorithms.TopKRanking:
		a.PageRank.Tau = predict.PageRankTau(eps, n)
		return a, nil
	}
	return alg, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "predict:", err)
	os.Exit(1)
}
