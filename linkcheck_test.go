package predict_test

// Offline markdown link checker: every repo-relative link in the
// documentation (README.md, DESIGN.md, EXPERIMENTS.md, the other root
// documents, and docs/) must point at a file that exists, and every
// anchor — same-file or cross-file — must match a heading in its
// target. External http(s) links are out of scope: this suite runs
// offline and CI must not fail on someone else's outage. The checker is
// a test rather than an installed tool so it needs no network, no
// version pin, and runs with the ordinary suite.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"unicode"
)

// markdownFiles returns the documentation set: *.md at the repository
// root plus everything under docs/, which is where relative links can
// rot silently.
func markdownFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir("docs", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("link checker found no markdown files — is the test running outside the repo root?")
	}
	return files
}

// inlineLink matches [text](target) including images; target group 1
// stops at the closing parenthesis (no doc here nests parentheses in
// relative targets, and external targets are skipped anyway).
var inlineLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// githubSlug reproduces GitHub's heading-anchor algorithm closely
// enough for this repository: lowercase, drop everything but letters,
// digits, spaces and hyphens, then turn each space into a hyphen.
// Repeated headings get -1, -2… suffixes via the caller's counter.
func githubSlug(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// headingAnchors returns the set of anchor slugs a markdown file
// defines. Fenced code blocks are skipped so a "# comment" inside a
// shell snippet does not mint an anchor.
func headingAnchors(t *testing.T, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	anchors := make(map[string]bool)
	counts := make(map[string]int)
	inFence := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		text := strings.TrimLeft(line, "#")
		if text == line || (text != "" && text[0] != ' ') {
			continue // not a heading (e.g. "#!/bin/sh" outside a fence)
		}
		slug := githubSlug(text)
		if n := counts[slug]; n > 0 {
			anchors[slug+"-"+strconv.Itoa(n)] = true
		} else {
			anchors[slug] = true
		}
		counts[slug]++
	}
	return anchors
}

// TestMarkdownLinks holds every repo-relative documentation link to an
// existing target and every anchor to an existing heading.
func TestMarkdownLinks(t *testing.T) {
	anchorCache := make(map[string]map[string]bool)
	anchorsOf := func(path string) map[string]bool {
		if a, ok := anchorCache[path]; ok {
			return a
		}
		a := headingAnchors(t, path)
		anchorCache[path] = a
		return a
	}

	checked := 0
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range inlineLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external: out of scope offline
			}
			checked++
			path, frag, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", file, target, err)
					continue
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				continue // anchors into non-markdown targets are not ours to define
			}
			if !anchorsOf(resolved)[frag] {
				t.Errorf("%s: link %q: no heading in %s slugs to %q", file, target, resolved, frag)
			}
		}
	}
	if checked == 0 {
		t.Error("link checker matched no repo-relative links — the extraction regexp has regressed")
	}
	t.Logf("checked %d repo-relative links", checked)
}
