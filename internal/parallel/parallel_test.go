package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAllTasks(t *testing.T) {
	p := NewPool(3)
	var ran [16]atomic.Bool
	err := p.ForEach(context.Background(), len(ran), func(_ context.Context, i int) error {
		ran[i].Store(true)
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i := range ran {
		if !ran[i].Load() {
			t.Errorf("task %d never ran", i)
		}
	}
}

func TestForEachRespectsBound(t *testing.T) {
	const bound = 2
	p := NewPool(bound)
	var cur, peak atomic.Int64
	err := p.ForEach(context.Background(), 12, func(_ context.Context, i int) error {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if got := peak.Load(); got > bound {
		t.Errorf("peak concurrency %d exceeds bound %d", got, bound)
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	p := NewPool(1) // sequential: task 3 fails, tasks 4+ must not start
	var started atomic.Int64
	err := p.ForEach(context.Background(), 10, func(_ context.Context, i int) error {
		started.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); n != 4 {
		t.Errorf("started %d tasks after failure at index 3, want 4", n)
	}
}

func TestForEachErrorCancelsRunningTasks(t *testing.T) {
	boom := errors.New("boom")
	p := NewPool(2)
	err := p.ForEach(context.Background(), 2, func(ctx context.Context, i int) error {
		if i == 0 {
			return boom
		}
		select {
		case <-ctx.Done():
			return nil // cancellation observed: the expected path
		case <-time.After(5 * time.Second):
			return errors.New("task never saw cancellation")
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestForEachHonorsContextCancellation(t *testing.T) {
	p := NewPool(1)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	err := p.ForEach(ctx, 100, func(_ context.Context, i int) error {
		if started.Add(1) == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 100 {
		t.Errorf("cancellation did not stop task launches (started %d)", n)
	}
}

// TestWaitingCountsFullBacklog pins the Waiting() semantics the /stats
// endpoint relies on: every submitted-but-unstarted task counts, not
// just the one submission currently blocked on the semaphore.
func TestWaitingCountsFullBacklog(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	running := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- p.ForEach(context.Background(), 5, func(_ context.Context, i int) error {
			if i == 0 {
				close(running)
				<-release
			}
			return nil
		})
	}()
	<-running
	// Task 0 occupies the single slot; tasks 1-4 are the backlog.
	deadline := time.Now().Add(5 * time.Second)
	for p.Waiting() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("Waiting() = %d, want the full backlog 4", p.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	if got := p.InFlight(); got != 1 {
		t.Errorf("InFlight() = %d, want 1", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if got := p.Waiting(); got != 0 {
		t.Errorf("Waiting() after completion = %d, want 0", got)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := NewPool(4).ForEach(context.Background(), 0, nil); err != nil {
		t.Fatalf("ForEach(0 tasks) = %v, want nil", err)
	}
}

func TestNewPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if NewPool(0).Size() < 1 {
		t.Fatal("default pool size < 1")
	}
	if got := NewPool(7).Size(); got != 7 {
		t.Fatalf("Size() = %d, want 7", got)
	}
}

func TestPoolSharedAcrossForEachCalls(t *testing.T) {
	const bound = 2
	p := NewPool(bound)
	var cur, peak atomic.Int64
	task := func(_ context.Context, i int) error {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return nil
	}
	done := make(chan error, 2)
	for k := 0; k < 2; k++ {
		go func() { done <- p.ForEach(context.Background(), 6, task) }()
	}
	for k := 0; k < 2; k++ {
		if err := <-done; err != nil {
			t.Fatalf("ForEach: %v", err)
		}
	}
	if got := peak.Load(); got > bound {
		t.Errorf("peak concurrency %d across shared ForEach calls exceeds bound %d", got, bound)
	}
}
