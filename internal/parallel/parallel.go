// Package parallel provides the bounded worker pool shared by the fit
// pipeline and the prediction service. A Pool caps how many expensive
// tasks — sample+profile pipelines, mostly — run at once, propagates the
// first error, and honors context cancellation, while exposing depth
// counters for the service's /stats endpoint.
//
// Pools carry no task state of their own: determinism is the caller's
// property. The fit pipeline keeps it by deriving every task's RNG seed
// from the task's index (sampling.DeriveSeed), never from execution
// order, so a Pool of any size produces bit-identical results.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded-concurrency executor. The zero value is not usable;
// construct with NewPool. A Pool may be shared by many concurrent ForEach
// calls — the bound then applies across all of them, which is how the
// prediction service keeps N concurrent cold fits from launching
// N*len(TrainingRatios) sample pipelines at once.
type Pool struct {
	size     int
	sem      chan struct{}
	inFlight atomic.Int64
	waiting  atomic.Int64
}

// NewPool returns a pool running at most size tasks concurrently.
// A non-positive size selects GOMAXPROCS: sample pipelines are CPU-bound,
// so more slots than processors only adds scheduling churn.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return &Pool{size: size, sem: make(chan struct{}, size)}
}

// Size reports the pool's concurrency bound.
func (p *Pool) Size() int { return p.size }

// InFlight reports how many tasks are executing right now.
func (p *Pool) InFlight() int64 { return p.inFlight.Load() }

// Waiting reports how many tasks have been submitted via ForEach but not
// yet started executing — the pool depth a saturated service shows on
// /stats. Every task of every in-progress ForEach counts, so ten 4-task
// calls on a full pool report a backlog of ~40, not 10.
func (p *Pool) Waiting() int64 { return p.waiting.Load() }

// ForEach runs fn(ctx, i) for every i in [0, n) on the pool and waits for
// completion. Tasks start in index order (interleaved with other ForEach
// calls sharing the pool) and at most Size run at once.
//
// The first task error cancels the ctx passed to running tasks and stops
// unstarted tasks from launching; already-running tasks finish before
// ForEach returns that first error. If ctx is cancelled externally,
// ForEach stops launching tasks and returns ctx's error. fn must write
// its result into an index-addressed slot (results[i]) rather than
// append, so output order never depends on scheduling.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	taskCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// All n tasks count as waiting up front, so Waiting() reports the
	// real backlog behind a saturated pool; each task leaves the count
	// when it starts, and tasks abandoned by cancellation leave it on
	// exit.
	p.waiting.Add(int64(n))
	started := 0
	defer func() { p.waiting.Add(int64(started - n)) }()

	var (
		wg       sync.WaitGroup
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}

	for i := 0; i < n && taskCtx.Err() == nil; i++ {
		// Acquire a slot before spawning, so a cancelled ForEach stops
		// cheaply instead of parking n goroutines on the semaphore.
		select {
		case p.sem <- struct{}{}:
		case <-taskCtx.Done():
			i = n
			continue
		}
		// Re-check after acquiring: a failing task cancels taskCtx before
		// releasing its slot, so the select above can win the semaphore
		// case and the cancellation case simultaneously.
		if taskCtx.Err() != nil {
			<-p.sem
			break
		}
		started++
		p.waiting.Add(-1)
		p.inFlight.Add(1)
		wg.Add(1)
		go func(i int) {
			defer func() {
				p.inFlight.Add(-1)
				<-p.sem
				wg.Done()
			}()
			if err := fn(taskCtx, i); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if started == n {
		// Every task ran to completion: a cancellation that raced the
		// last task must not discard fully-computed work.
		return nil
	}
	return ctx.Err()
}
