package algorithms

import (
	"math"
	"math/bits"

	"predict/internal/bsp"
	"predict/internal/graph"
)

// nhSketches is the number of Flajolet–Martin bitmasks per vertex. Multiple
// sketches are averaged for accuracy, as in HADI/ANF.
const nhSketches = 8

// NeighborhoodEstimation approximates, for every vertex, the number of
// vertices reachable from it (its expanding neighborhood) using
// Flajolet–Martin sketches propagated hop by hop — the HADI/ANF scheme the
// paper's evaluation uses for "neighborhood estimation" (the LinkedIn
// "professionals reachable within a few hops" workload from §1).
//
// A vertex whose sketch union stops changing sends nothing, so iterations
// track the effective diameter. Convergence: the fraction of vertices
// whose sketch changed drops below Tau (a ratio, identity transform), or
// the natural fixed point.
type NeighborhoodEstimation struct {
	// Tau is the convergence threshold on changedVertices/totalVertices;
	// zero runs to the fixed point.
	Tau float64
	// MaxIterations caps the run; zero selects 100.
	MaxIterations int
	// HashSeed perturbs the per-vertex sketch initialization.
	HashSeed uint64
}

// NewNeighborhoodEstimation returns the default configuration (τ=0.001).
func NewNeighborhoodEstimation() NeighborhoodEstimation {
	return NeighborhoodEstimation{Tau: 0.001, MaxIterations: 100}
}

// Name implements Algorithm.
func (n NeighborhoodEstimation) Name() string { return "NeighborhoodEstimation" }

// Transformed implements Algorithm: ratio threshold, identity transform.
func (n NeighborhoodEstimation) Transformed(float64) Algorithm { return n }

// Run implements Algorithm.
func (n NeighborhoodEstimation) Run(g *graph.Graph, cfg bsp.Config) (*RunInfo, error) {
	ri, _, err := n.RunEstimates(g, cfg)
	return ri, err
}

// nhMsg is a set of FM bitmasks in flight.
type nhMsg [nhSketches]uint64

// nhValue is the per-vertex sketch state.
type nhValue struct {
	sketch nhMsg
}

// RunEstimates executes the algorithm and returns the per-vertex
// neighborhood size estimates. Estimates count vertices *reachable from*
// each vertex, so sketches flow backwards along edges: the flood runs on
// the transpose graph.
func (n NeighborhoodEstimation) RunEstimates(g *graph.Graph, cfg bsp.Config) (*RunInfo, []float64, error) {
	if n.MaxIterations > 0 {
		cfg.MaxSupersteps = n.MaxIterations
	} else if cfg.MaxSupersteps == 0 {
		cfg.MaxSupersteps = 100
	}
	prog := &nhProgram{seed: n.HashSeed}
	eng := bsp.NewEngine[nhValue, nhMsg](g.Reverse(), prog, cfg)
	// Bitwise OR is exact under any regrouping, so Flajolet–Martin sketch
	// unions combine on the send side: one merged sketch per (sender,
	// destination) pair instead of one 64-byte message per edge.
	eng.SetExactCombiner(func(a, b nhMsg) nhMsg {
		for i := range a {
			a[i] |= b[i]
		}
		return a
	})
	nv := float64(g.NumVertices())
	tau := n.Tau
	if tau > 0 {
		eng.SetHalt(func(si bsp.SuperstepInfo) bool {
			if si.Superstep < 1 {
				return false
			}
			return si.Aggregates[aggNHChanged]/nv < tau
		})
	}
	res, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	ests := make([]float64, len(res.Values))
	for v := range res.Values {
		ests[v] = fmEstimate(res.Values[v].sketch)
	}
	return info(n.Name(), res), ests, nil
}

const aggNHChanged = "nh.changed"

type nhProgram struct {
	seed uint64
}

// splitmix64 is the standard avalanche mixer used for per-vertex hashes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (np *nhProgram) Init(_ *graph.Graph, id bsp.VertexID) nhValue {
	var v nhValue
	for s := 0; s < nhSketches; s++ {
		h := splitmix64(uint64(id)<<8 | uint64(s) ^ np.seed)
		// Geometric bit position: trailing zeros gives P(pos = k) = 2^-(k+1).
		pos := bits.TrailingZeros64(h)
		if pos > 62 {
			pos = 62
		}
		v.sketch[s] = 1 << uint(pos)
	}
	return v
}

func (np *nhProgram) Compute(ctx *bsp.Context[nhMsg], id bsp.VertexID, v *nhValue, msgs []nhMsg) {
	if ctx.Superstep() == 0 {
		ctx.SendToNeighbors(id, v.sketch)
		ctx.VoteToHalt()
		return
	}
	changed := false
	for _, m := range msgs {
		for i := range v.sketch {
			if v.sketch[i]|m[i] != v.sketch[i] {
				v.sketch[i] |= m[i]
				changed = true
			}
		}
	}
	if changed {
		ctx.AddToAggregate(aggNHChanged, 1)
		ctx.SendToNeighbors(id, v.sketch)
	}
	ctx.VoteToHalt()
}

func (np *nhProgram) MessageBytes(nhMsg) int { return 8 * nhSketches }

// FixedMessageBytes implements bsp.FixedSizeMessager: a sketch message is
// nhSketches 64-bit bitmasks.
func (np *nhProgram) FixedMessageBytes() int { return 8 * nhSketches }

// fmEstimate converts FM bitmasks to a cardinality estimate: 2^R / 0.77351
// where R is the average position of the lowest zero bit.
func fmEstimate(sketch nhMsg) float64 {
	var total float64
	for _, bm := range sketch {
		r := bits.TrailingZeros64(^bm)
		total += float64(r)
	}
	avg := total / float64(nhSketches)
	return math.Pow(2, avg) / 0.77351
}
