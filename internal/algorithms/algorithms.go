// Package algorithms implements the iterative graph algorithms the paper
// evaluates (§4, §5): PageRank, semi-clustering, top-k ranking, connected
// components and neighborhood estimation. Each algorithm is a BSP vertex
// program plus a convergence condition, and knows its own transform
// function — the adjustment PREDIcT applies to its parameters when running
// on a sample (§3.2.2).
//
// The three end-to-end use cases cover the paper's runtime categories:
// PageRank has near-constant per-iteration runtime; semi-clustering varies
// through message *sizes*; top-k ranking varies through message *counts*;
// connected components and neighborhood estimation add sparse-computation
// and sketch-propagation patterns.
package algorithms

import (
	"fmt"

	"predict/internal/bsp"
	"predict/internal/graph"
)

// RunInfo is the type-erased outcome of an algorithm run: everything the
// prediction pipeline consumes.
type RunInfo struct {
	// Algorithm is the algorithm's Name().
	Algorithm string
	// Iterations is the number of supersteps executed.
	Iterations int
	// Converged reports whether the convergence condition fired (vs the
	// superstep cap).
	Converged bool
	// Profile carries per-superstep, per-worker features and simulated
	// times.
	Profile *bsp.Profile
}

// Algorithm is the uniform interface between the prediction pipeline and
// a concrete iterative algorithm.
type Algorithm interface {
	// Name identifies the algorithm (stable across Transformed copies).
	Name() string
	// Transformed returns a copy of the algorithm configured for a sample
	// run at vertex sampling ratio sr: the paper's transform function
	// T = (Conf_S => Conf_G, Conv_S => Conv_G). Algorithms whose
	// convergence threshold is an absolute aggregate (PageRank) scale it
	// by 1/sr; ratio-based thresholds (semi-clustering, top-k) are kept.
	Transformed(sr float64) Algorithm
	// Run executes the algorithm on g under cfg.
	Run(g *graph.Graph, cfg bsp.Config) (*RunInfo, error)
}

// ByName constructs each paper algorithm with its default configuration.
func ByName(name string) (Algorithm, error) {
	switch name {
	case "PageRank", "PR":
		return NewPageRank(), nil
	case "SemiClustering", "SC":
		return NewSemiClustering(), nil
	case "TopKRanking", "TOPK":
		return NewTopKRanking(), nil
	case "ConnectedComponents", "CC":
		return NewConnectedComponents(), nil
	case "NeighborhoodEstimation", "NH":
		return NewNeighborhoodEstimation(), nil
	}
	return nil, fmt.Errorf("algorithms: unknown algorithm %q", name)
}

// All returns every paper algorithm with default configuration, in the
// order of the paper's Table 3.
func All() []Algorithm {
	return []Algorithm{
		NewPageRank(),
		NewSemiClustering(),
		NewConnectedComponents(),
		NewTopKRanking(),
		NewNeighborhoodEstimation(),
	}
}

// info assembles a RunInfo from an engine result.
func info[V any](name string, res *bsp.Result[V]) *RunInfo {
	return &RunInfo{
		Algorithm:  name,
		Iterations: res.Supersteps,
		Converged:  res.Converged,
		Profile:    res.Profile,
	}
}
