package algorithms

import (
	"predict/internal/bsp"
	"predict/internal/graph"
)

// PageRank computes vertex ranks by power iteration (§4.1). Convergence:
// the average per-vertex |Δ rank| between consecutive iterations drops
// below Tau. Its transform function scales Tau by 1/sr because the
// threshold is an absolute aggregate tuned to graph size:
// T = (d_S = d_G, τ_S = τ_G × 1/sr).
type PageRank struct {
	// Damping is the damping factor d, typically 0.85.
	Damping float64
	// Tau is the convergence threshold on the average delta change of
	// PageRank per vertex. The paper sets Tau = ε/N with tolerance level
	// ε in {0.01, 0.001}.
	Tau float64
	// MaxIterations caps the run; zero selects 200.
	MaxIterations int
}

// NewPageRank returns PageRank with the paper's defaults (d = 0.85 and a
// placeholder threshold; experiments set Tau = ε/N per dataset).
func NewPageRank() PageRank {
	return PageRank{Damping: 0.85, Tau: 1e-9, MaxIterations: 200}
}

// TauForTolerance returns the paper's threshold τ = ε/N for an n-vertex
// graph at tolerance level ε (§5.1).
func TauForTolerance(epsilon float64, n int) float64 {
	return epsilon / float64(n)
}

// Name implements Algorithm.
func (p PageRank) Name() string { return "PageRank" }

// Transformed implements Algorithm: τ_S = τ_G × 1/sr, configuration
// parameters (damping) unchanged.
func (p PageRank) Transformed(sr float64) Algorithm {
	p.Tau = p.Tau / sr
	return p
}

// Run implements Algorithm.
func (p PageRank) Run(g *graph.Graph, cfg bsp.Config) (*RunInfo, error) {
	ri, _, err := p.RunRanks(g, cfg)
	return ri, err
}

// RunRanks executes PageRank and additionally returns the final per-vertex
// ranks (used as top-k ranking input).
func (p PageRank) RunRanks(g *graph.Graph, cfg bsp.Config) (*RunInfo, []float64, error) {
	if p.MaxIterations > 0 {
		cfg.MaxSupersteps = p.MaxIterations
	}
	prog := &pageRankProgram{damping: p.Damping, n: float64(g.NumVertices())}
	eng := bsp.NewEngine[prValue, float64](g, prog, cfg)
	// Floating-point addition is not associative at the bit level, so the
	// rank-share combiner must stay a plain (receive-side) combiner: the
	// engine applies it in its fixed pinned order, keeping ranks, delta
	// aggregates and iteration counts bit-identical on every run. Do not
	// "upgrade" this to SetExactCombiner.
	eng.SetCombiner(func(a, b float64) float64 { return a + b })
	n := float64(g.NumVertices())
	tau := p.Tau
	eng.SetHalt(func(s bsp.SuperstepInfo) bool {
		if s.Superstep == 0 {
			return false // no delta defined before the first propagation
		}
		return s.Aggregates[aggDelta]/n < tau
	})
	res, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	ranks := make([]float64, len(res.Values))
	for i, v := range res.Values {
		ranks[i] = v.rank
	}
	return info(p.Name(), res), ranks, nil
}

const (
	aggDelta = "pr.delta"
	// aggDangling accumulates the rank mass of zero-out-degree vertices;
	// it is redistributed uniformly in the next iteration (the standard
	// stochastic-matrix correction). Samples are dangling-heavy — most
	// sampled vertices lose out-edges — so without redistribution their
	// delta trajectories diverge from the full graph's.
	aggDangling = "pr.dangling"
)

// prValue is the per-vertex PageRank state.
type prValue struct {
	rank float64
}

type pageRankProgram struct {
	damping float64
	n       float64
}

func (p *pageRankProgram) Init(_ *graph.Graph, _ bsp.VertexID) prValue {
	return prValue{rank: 1 / p.n}
}

func (p *pageRankProgram) Compute(ctx *bsp.Context[float64], id bsp.VertexID, v *prValue, msgs []float64) {
	if ctx.Superstep() > 0 {
		var sum float64
		for _, m := range msgs {
			sum += m
		}
		// Dangling mass from the previous iteration is spread uniformly.
		dangling := ctx.Aggregate(aggDangling) / p.n
		newRank := (1-p.damping)/p.n + p.damping*(sum+dangling)
		delta := newRank - v.rank
		if delta < 0 {
			delta = -delta
		}
		ctx.AddToAggregate(aggDelta, delta)
		v.rank = newRank
	}
	if deg := ctx.Graph().OutDegree(id); deg > 0 {
		share := v.rank / float64(deg)
		ctx.SendToNeighbors(id, share)
	} else {
		ctx.AddToAggregate(aggDangling, v.rank)
	}
	// PageRank never votes to halt: termination is the master-side
	// convergence condition on the delta aggregate.
}

func (p *pageRankProgram) MessageBytes(float64) int { return 8 }

// FixedMessageBytes implements bsp.FixedSizeMessager: every rank share is
// one float64.
func (p *pageRankProgram) FixedMessageBytes() int { return 8 }
