package algorithms

import (
	"testing"

	"predict/internal/gen"
	"predict/internal/graph"
)

func TestConnectedComponentsLabels(t *testing.T) {
	// Components {0,1,2}, {3,4}, {5}.
	g := graph.MustFromEdges(6, [][2]graph.VertexID{{0, 1}, {1, 2}, {3, 4}})
	cc := NewConnectedComponents()
	_, labels, err := cc.RunLabels(g, quietCfg(2))
	if err != nil {
		t.Fatalf("RunLabels: %v", err)
	}
	want := []graph.VertexID{0, 0, 0, 3, 3, 5}
	for v, l := range labels {
		if l != want[v] {
			t.Errorf("label[%d] = %d, want %d", v, l, want[v])
		}
	}
}

func TestConnectedComponentsWeaklyConnected(t *testing.T) {
	// Directed chain 0->1->2: weakly connected even though 2 cannot reach 0.
	g := gen.Path(3)
	cc := NewConnectedComponents()
	_, labels, err := cc.RunLabels(g, quietCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for v, l := range labels {
		if l != 0 {
			t.Errorf("label[%d] = %d, want 0 (weak connectivity)", v, l)
		}
	}
}

func TestConnectedComponentsAgreesWithUnionFind(t *testing.T) {
	g := gen.ErdosRenyi(800, 1.2, 55) // sparse: multiple components
	cc := NewConnectedComponents()
	_, labels, err := cc.RunLabels(g, quietCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	ufLabels, _ := graph.WeaklyConnectedComponents(g)
	// The labelings must induce the same partition.
	bspToUF := map[graph.VertexID]int32{}
	for v := range labels {
		if prev, ok := bspToUF[labels[v]]; ok {
			if prev != ufLabels[v] {
				t.Fatalf("vertex %d: BSP label %d maps to UF components %d and %d",
					v, labels[v], prev, ufLabels[v])
			}
		} else {
			bspToUF[labels[v]] = ufLabels[v]
		}
	}
}

func TestConnectedComponentsSparseComputation(t *testing.T) {
	// Active vertices must collapse after the first iterations — the
	// paper's sparse-computation pattern.
	g := gen.BarabasiAlbert(3000, 4, 0.5, 77)
	cc := NewConnectedComponents()
	ri, err := cc.Run(g, quietCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if ri.Iterations < 3 {
		t.Skipf("converged in %d iterations", ri.Iterations)
	}
	first := ri.Profile.Supersteps[1].Total().ActiveVertices
	last := ri.Profile.Supersteps[ri.Iterations-1].Total().ActiveVertices
	if last*10 > first {
		t.Errorf("active vertices did not collapse: %d -> %d", first, last)
	}
}

func TestConnectedComponentsTransformedIdentity(t *testing.T) {
	cc := NewConnectedComponents()
	if tr := cc.Transformed(0.05).(ConnectedComponents); tr != cc {
		t.Error("Transformed must be identity for fixed-point convergence")
	}
}

func TestNeighborhoodEstimationCycle(t *testing.T) {
	// On a 32-cycle every vertex reaches all 32 vertices; the FM estimate
	// should land within a factor ~2.
	g := gen.Cycle(32)
	nh := NewNeighborhoodEstimation()
	nh.Tau = 0 // fixed point
	_, ests, err := nh.RunEstimates(g, quietCfg(2))
	if err != nil {
		t.Fatalf("RunEstimates: %v", err)
	}
	for v, e := range ests {
		if e < 8 || e > 128 {
			t.Errorf("vertex %d estimate %v, want within factor ~4 of 32", v, e)
		}
	}
}

func TestNeighborhoodEstimationIterationsTrackDiameter(t *testing.T) {
	// A path of length L takes ~L supersteps to flood; a BA graph floods
	// within its small effective diameter.
	path := gen.Path(40)
	nh := NewNeighborhoodEstimation()
	nh.Tau = 0
	riPath, err := nh.Run(path, quietCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	ba := gen.BarabasiAlbert(2000, 5, 0.5, 88)
	riBA, err := nh.Run(ba, quietCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if riPath.Iterations < 30 {
		t.Errorf("path iterations = %d, want ~40", riPath.Iterations)
	}
	if riBA.Iterations >= riPath.Iterations {
		t.Errorf("scale-free iterations %d should be far below path %d",
			riBA.Iterations, riPath.Iterations)
	}
}

func TestNeighborhoodEstimationMonotoneInReach(t *testing.T) {
	// Estimates for the head of a path (reaches everything) must exceed
	// estimates for the tail (reaches only itself).
	g := gen.Path(60)
	nh := NewNeighborhoodEstimation()
	nh.Tau = 0
	_, ests, err := nh.RunEstimates(g, quietCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if ests[0] <= ests[59] {
		t.Errorf("head estimate %v <= tail estimate %v", ests[0], ests[59])
	}
}

func TestFMEstimateEmptyAndDense(t *testing.T) {
	var empty nhMsg
	small := fmEstimate(empty)
	var dense nhMsg
	for i := range dense {
		dense[i] = (1 << 20) - 1 // 20 trailing ones
	}
	big := fmEstimate(dense)
	if small >= big {
		t.Errorf("fmEstimate: empty %v >= dense %v", small, big)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"PR", "SC", "TOPK", "CC", "NH",
		"PageRank", "SemiClustering", "TopKRanking", "ConnectedComponents", "NeighborhoodEstimation"} {
		alg, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%s): %v", name, err)
			continue
		}
		if alg.Name() == "" {
			t.Errorf("ByName(%s) returned anonymous algorithm", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
}

func TestAllReturnsFiveAlgorithms(t *testing.T) {
	algs := All()
	if len(algs) != 5 {
		t.Fatalf("All() returned %d algorithms, want 5", len(algs))
	}
	seen := map[string]bool{}
	for _, a := range algs {
		if seen[a.Name()] {
			t.Errorf("duplicate algorithm %s", a.Name())
		}
		seen[a.Name()] = true
	}
}
