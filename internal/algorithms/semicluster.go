package algorithms

import (
	"sort"

	"predict/internal/bsp"
	"predict/internal/graph"
)

// SemiClustering implements the parallel semi-clustering algorithm of the
// Pregel paper (§4.2 of PREDIcT): every vertex maintains up to CMax
// semi-clusters it belongs to, scored by
//
//	Sc = (Ic - fB*Bc) / (Vc(Vc-1)/2)
//
// and circulates the best SMax clusters to its neighbors each iteration.
// Convergence: the ratio of semi-cluster updates per iteration drops below
// Tau. Because the threshold is a ratio, the transform function keeps it
// unchanged on sample runs: T = (ID_Conf, τ_S = τ_G).
//
// Per-iteration runtime varies through growing message *sizes* (clusters
// accumulate members up to VMax) — the paper's category ii.a.
type SemiClustering struct {
	// CMax is the maximum number of semi-clusters a vertex retains.
	CMax int
	// SMax is the number of best clusters sent to neighbors per iteration.
	SMax int
	// VMax is the maximum number of vertices in a semi-cluster.
	VMax int
	// FB is the boundary edge factor in (0, 1) penalizing boundary edges.
	FB float64
	// Tau is the convergence threshold on updatedClusters/totalClusters.
	Tau float64
	// MaxIterations caps the run; zero selects 150.
	MaxIterations int
}

// NewSemiClustering returns the paper's base settings (§5.1):
// CMax=1, SMax=1, VMax=10, fB=0.1, τ=0.001.
func NewSemiClustering() SemiClustering {
	return SemiClustering{CMax: 1, SMax: 1, VMax: 10, FB: 0.1, Tau: 0.001, MaxIterations: 150}
}

// Name implements Algorithm.
func (s SemiClustering) Name() string { return "SemiClustering" }

// Transformed implements Algorithm: all parameters identical on the sample
// run (ratio-based convergence is not tuned to dataset size).
func (s SemiClustering) Transformed(float64) Algorithm { return s }

// Run implements Algorithm. The input is symmetrized (semi-clustering is
// defined on undirected weighted graphs); unweighted inputs get weight 1.
func (s SemiClustering) Run(g *graph.Graph, cfg bsp.Config) (*RunInfo, error) {
	ri, _, err := s.RunClusters(g, cfg)
	return ri, err
}

// Cluster is a semi-cluster in the final output: its member vertices and
// score.
type Cluster struct {
	Members []graph.VertexID
	Score   float64
}

// RunClusters executes semi-clustering and returns each vertex's best
// clusters.
func (s SemiClustering) RunClusters(g *graph.Graph, cfg bsp.Config) (*RunInfo, [][]Cluster, error) {
	if s.MaxIterations > 0 {
		cfg.MaxSupersteps = s.MaxIterations
	} else if cfg.MaxSupersteps == 0 {
		cfg.MaxSupersteps = 150
	}
	ug := g.Undirected()
	prog := &scProgram{p: s}
	eng := bsp.NewEngine[scValue, scCluster](ug, prog, cfg)
	tau := s.Tau
	eng.SetHalt(func(si bsp.SuperstepInfo) bool {
		if si.Superstep < 1 {
			return false
		}
		total := si.Aggregates[aggSCTotal]
		if total == 0 {
			return true // nothing clustered: degenerate input
		}
		return si.Aggregates[aggSCUpdated]/total < tau
	})
	res, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	out := make([][]Cluster, len(res.Values))
	for v := range res.Values {
		for _, c := range res.Values[v].best {
			out[v] = append(out[v], Cluster{Members: c.members, Score: c.score})
		}
	}
	return info(s.Name(), res), out, nil
}

const (
	aggSCUpdated = "sc.updated"
	aggSCTotal   = "sc.total"
)

// scCluster is a semi-cluster in flight: sorted member list plus
// incrementally maintained internal/boundary weights and score.
type scCluster struct {
	members []graph.VertexID // sorted ascending
	ic, bc  float64
	score   float64
}

func (c scCluster) contains(v graph.VertexID) bool {
	lo, hi := 0, len(c.members)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.members[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(c.members) && c.members[lo] == v
}

func (c scCluster) equal(o scCluster) bool {
	if len(c.members) != len(o.members) {
		return false
	}
	for i := range c.members {
		if c.members[i] != o.members[i] {
			return false
		}
	}
	return true
}

// scValue is the per-vertex semi-clustering state.
type scValue struct {
	best     []scCluster // up to CMax best clusters containing the vertex
	strength float64     // total weight of incident edges (cached)
}

type scProgram struct {
	p SemiClustering
}

func (sp *scProgram) Init(g *graph.Graph, id bsp.VertexID) scValue {
	var strength float64
	ws := g.OutWeights(id)
	if ws == nil {
		strength = float64(g.OutDegree(id))
	} else {
		for _, w := range ws {
			strength += float64(w)
		}
	}
	return scValue{strength: strength}
}

// score computes the normalized semi-cluster score; singleton clusters
// score 0 so that any real cluster with positive internal weight wins.
func (sp *scProgram) score(ic, bc float64, size int) float64 {
	denom := float64(size*(size-1)) / 2
	if denom < 1 {
		denom = 1
	}
	return (ic - sp.p.FB*bc) / denom
}

// edgeWeight returns w(id, m) or 0 if the edge does not exist.
func edgeWeight(g *graph.Graph, id, m graph.VertexID) float64 {
	adj := g.OutNeighbors(id)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < m {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(adj) && adj[lo] == m {
		if ws := g.OutWeights(id); ws != nil {
			return float64(ws[lo])
		}
		return 1
	}
	return 0
}

// extend returns cluster c with vertex id added, maintaining Ic and Bc
// incrementally: edges from id to members become internal (and stop being
// boundary); all other incident edges of id become boundary.
func (sp *scProgram) extend(g *graph.Graph, c scCluster, id graph.VertexID, strength float64) scCluster {
	var wToMembers float64
	for _, m := range c.members {
		wToMembers += edgeWeight(g, id, m)
	}
	members := make([]graph.VertexID, len(c.members)+1)
	copy(members, c.members)
	members[len(c.members)] = id
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	ic := c.ic + wToMembers
	bc := c.bc + strength - 2*wToMembers
	if bc < 0 {
		bc = 0
	}
	return scCluster{
		members: members,
		ic:      ic,
		bc:      bc,
		score:   sp.score(ic, bc, len(members)),
	}
}

func (sp *scProgram) Compute(ctx *bsp.Context[scCluster], id bsp.VertexID, v *scValue, msgs []scCluster) {
	g := ctx.Graph()
	if ctx.Superstep() == 0 {
		// Create the singleton cluster and broadcast it.
		c := scCluster{
			members: []graph.VertexID{id},
			ic:      0,
			bc:      v.strength,
		}
		c.score = sp.score(c.ic, c.bc, 1)
		v.best = []scCluster{c}
		ctx.SendToNeighbors(id, c)
		ctx.AddToAggregate(aggSCUpdated, 1)
		ctx.AddToAggregate(aggSCTotal, 1)
		return
	}

	// Form candidates: received clusters plus extensions including self.
	candidates := make([]scCluster, 0, 2*len(msgs))
	for _, sc := range msgs {
		candidates = append(candidates, sc)
		if len(sc.members) < sp.p.VMax && !sc.contains(id) {
			candidates = append(candidates, sp.extend(g, sc, id, v.strength))
		}
	}
	sortClusters(candidates)

	// Send the best SMax onwards.
	limit := sp.p.SMax
	if limit > len(candidates) {
		limit = len(candidates)
	}
	for i := 0; i < limit; i++ {
		ctx.SendToNeighbors(id, candidates[i])
	}

	// Update the local best-cluster list with candidates containing id.
	merged := make([]scCluster, 0, len(v.best)+4)
	merged = append(merged, v.best...)
	for _, c := range candidates {
		if c.contains(id) {
			merged = append(merged, c)
		}
	}
	sortClusters(merged)
	newBest := dedupClusters(merged, sp.p.CMax)

	updated := 0
	for i := range newBest {
		if i >= len(v.best) || !newBest[i].equal(v.best[i]) {
			updated++
		}
	}
	v.best = newBest
	ctx.AddToAggregate(aggSCUpdated, float64(updated))
	ctx.AddToAggregate(aggSCTotal, float64(len(v.best)))
}

func (sp *scProgram) MessageBytes(m scCluster) int {
	return 4*len(m.members) + 12 // member IDs + score + length header
}

// ValueBytes implements bsp.ValueSizer so the simulated memory budget sees
// semi-clustering's large vertex state.
func (sp *scProgram) ValueBytes(v scValue) int {
	b := 16
	for _, c := range v.best {
		b += 4*len(c.members) + 24
	}
	return b
}

// sortClusters orders clusters by score descending, with deterministic
// tie-breaking by size then lexicographic members.
func sortClusters(cs []scCluster) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].score != cs[j].score {
			return cs[i].score > cs[j].score
		}
		if len(cs[i].members) != len(cs[j].members) {
			return len(cs[i].members) < len(cs[j].members)
		}
		for k := range cs[i].members {
			if cs[i].members[k] != cs[j].members[k] {
				return cs[i].members[k] < cs[j].members[k]
			}
		}
		return false
	})
}

// dedupClusters removes duplicate member sets (keeping sorted order) and
// truncates to limit.
func dedupClusters(cs []scCluster, limit int) []scCluster {
	out := make([]scCluster, 0, limit)
	for _, c := range cs {
		dup := false
		for _, kept := range out {
			if c.equal(kept) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
			if len(out) == limit {
				break
			}
		}
	}
	return out
}
