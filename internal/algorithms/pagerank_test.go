package algorithms

import (
	"math"
	"testing"

	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/gen"
	"predict/internal/graph"
)

func quietCfg(workers int) bsp.Config {
	o := cluster.DefaultOracle()
	o.NoiseStdDev = 0
	o.MemoryBudgetBytes = 0
	return bsp.Config{Workers: workers, Oracle: &o, Seed: 7}
}

func TestPageRankSumsToOneOnCycle(t *testing.T) {
	// On a cycle every vertex has in=out=1, so ranks stay uniform and sum
	// to 1 (no dangling mass loss).
	g := gen.Cycle(50)
	pr := NewPageRank()
	pr.Tau = 1e-12
	ri, ranks, err := pr.RunRanks(g, quietCfg(4))
	if err != nil {
		t.Fatalf("RunRanks: %v", err)
	}
	var sum float64
	for _, r := range ranks {
		sum += r
		if math.Abs(r-1.0/50) > 1e-9 {
			t.Fatalf("rank = %v, want uniform 0.02", r)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v, want 1", sum)
	}
	if ri.Iterations < 2 {
		t.Errorf("Iterations = %d, suspiciously few", ri.Iterations)
	}
}

func TestPageRankRanksHubHighest(t *testing.T) {
	// Inward star + ring: vertex 0 receives from everyone, so it must get
	// the top rank.
	b := graph.NewBuilder(20)
	for i := 1; i < 20; i++ {
		b.AddEdge(graph.VertexID(i), 0)
		b.AddEdge(graph.VertexID(i), graph.VertexID(i%19+1))
	}
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := NewPageRank()
	pr.Tau = 1e-10
	_, ranks, err := pr.RunRanks(g, quietCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 20; v++ {
		if ranks[v] >= ranks[0] {
			t.Fatalf("vertex %d rank %v >= hub rank %v", v, ranks[v], ranks[0])
		}
	}
}

func TestPageRankTighterTauMoreIterations(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 5, 0.4, 3)
	run := func(eps float64) int {
		pr := NewPageRank()
		pr.Tau = TauForTolerance(eps, g.NumVertices())
		ri, err := pr.Run(g, quietCfg(4))
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		return ri.Iterations
	}
	loose := run(0.01)
	tight := run(0.001)
	if tight <= loose {
		t.Errorf("iterations: tight tau %d <= loose tau %d", tight, loose)
	}
}

func TestPageRankTransformedScalesTau(t *testing.T) {
	pr := NewPageRank()
	pr.Tau = 0.001
	tr := pr.Transformed(0.1).(PageRank)
	if math.Abs(tr.Tau-0.01) > 1e-12 {
		t.Errorf("transformed Tau = %v, want 0.01 (tau/sr)", tr.Tau)
	}
	if tr.Damping != pr.Damping {
		t.Error("transform must keep damping (identity over Conf)")
	}
	// The original must be unchanged (value semantics).
	if pr.Tau != 0.001 {
		t.Error("Transformed mutated the receiver")
	}
}

func TestPageRankFigure2Invariants(t *testing.T) {
	// The paper's Figure 2 argument: a sample that halves the graph while
	// preserving structure doubles per-vertex ranks, so the average delta
	// is preserved iff the threshold is scaled by 1/sr. We verify on a
	// structure that samples exactly: a cycle (every half-cycle... a cycle
	// sample of contiguous arc is a path, not structure preserving).
	// Instead use two disjoint identical cycles: sampling one of them at
	// sr=0.5 preserves all structure exactly.
	b := graph.NewBuilder(40)
	for i := 0; i < 20; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%20))
		b.AddEdge(graph.VertexID(20+i), graph.VertexID(20+(i+1)%20))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sampleVerts := make([]graph.VertexID, 20)
	for i := range sampleVerts {
		sampleVerts[i] = graph.VertexID(i)
	}
	sample, _, err := graph.InducedSubgraph(g, sampleVerts)
	if err != nil {
		t.Fatal(err)
	}

	pr := NewPageRank()
	pr.Tau = 0.004 / float64(g.NumVertices())
	full, err := pr.Run(g, quietCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	// Transform for sr = 0.5: tau_S = tau_G / 0.5.
	prS := pr.Transformed(0.5).(PageRank)
	sampleRun, err := prS.Run(sample, quietCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if full.Iterations != sampleRun.Iterations {
		t.Errorf("iterations: full %d vs transformed sample %d, want equal",
			full.Iterations, sampleRun.Iterations)
	}
	// Without the transform the invariant breaks on small thresholds only;
	// on this symmetric structure the untransformed sample converges at a
	// different iteration count for thresholds between the two delta
	// trajectories. Verify the delta-scaling premise directly instead:
	// per-iteration average delta on the sample is double the full graph's.
	fullDelta := full.Profile.Supersteps[1].Aggregates[aggDelta] / 40
	sampDelta := sampleRun.Profile.Supersteps[1].Aggregates[aggDelta] / 20
	if fullDelta == 0 {
		t.Skip("degenerate: cycle converges immediately")
	}
	ratio := sampDelta / fullDelta
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("avg delta ratio sample/full = %v, want 2 (= 1/sr)", ratio)
	}
}

func TestPageRankDanglingVerticesDoNotCrash(t *testing.T) {
	// A path has a dangling tail vertex (no out-edges).
	g := gen.Path(30)
	pr := NewPageRank()
	pr.Tau = 1e-8
	_, ranks, err := pr.RunRanks(g, quietCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range ranks {
		if r < 0 || math.IsNaN(r) {
			t.Fatalf("vertex %d has invalid rank %v", v, r)
		}
	}
}

func TestPageRankDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 0.3, 5)
	pr := NewPageRank()
	pr.Tau = TauForTolerance(0.001, g.NumVertices())
	_, r1, err := pr.RunRanks(g, quietCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := pr.RunRanks(g, quietCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1 {
		if r1[v] != r2[v] {
			t.Fatalf("vertex %d: %v vs %v across identical runs", v, r1[v], r2[v])
		}
	}
}

func TestTauForTolerance(t *testing.T) {
	if got := TauForTolerance(0.01, 1000); got != 1e-5 {
		t.Errorf("TauForTolerance = %v, want 1e-5", got)
	}
}
