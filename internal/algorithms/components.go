package algorithms

import (
	"predict/internal/bsp"
	"predict/internal/graph"
)

// ConnectedComponents labels weakly connected components by HashMin label
// propagation: every vertex repeatedly adopts the smallest vertex ID seen
// in its neighborhood. Per-iteration work collapses as labels stabilize —
// the paper's example of sparse computation with "up to 100x runtime
// variability among consecutive iterations" (§1).
//
// The algorithm runs to its natural fixed point (no updates -> no messages
// -> all vertices halted), so there is no convergence threshold and the
// transform function is the identity.
type ConnectedComponents struct {
	// MaxIterations caps the run; zero selects 300.
	MaxIterations int
}

// NewConnectedComponents returns the default configuration.
func NewConnectedComponents() ConnectedComponents {
	return ConnectedComponents{MaxIterations: 300}
}

// Name implements Algorithm.
func (c ConnectedComponents) Name() string { return "ConnectedComponents" }

// Transformed implements Algorithm: fixed-point convergence needs no
// parameter scaling.
func (c ConnectedComponents) Transformed(float64) Algorithm { return c }

// Run implements Algorithm. The input is symmetrized so the labels are
// weak components, as in the paper's evaluation.
func (c ConnectedComponents) Run(g *graph.Graph, cfg bsp.Config) (*RunInfo, error) {
	ri, _, err := c.RunLabels(g, cfg)
	return ri, err
}

// RunLabels executes the algorithm and returns the per-vertex component
// labels (the smallest vertex ID in each component).
func (c ConnectedComponents) RunLabels(g *graph.Graph, cfg bsp.Config) (*RunInfo, []graph.VertexID, error) {
	if c.MaxIterations > 0 {
		cfg.MaxSupersteps = c.MaxIterations
	} else if cfg.MaxSupersteps == 0 {
		cfg.MaxSupersteps = 300
	}
	ug := g.Undirected()
	prog := &ccProgram{}
	eng := bsp.NewEngine[graph.VertexID, graph.VertexID](ug, prog, cfg)
	// Integer min is associative, commutative and idempotent at the bit
	// level, so the engine may combine on the send side: at most one label
	// crosses each (sender, destination) pair per superstep.
	eng.SetExactCombiner(func(a, b graph.VertexID) graph.VertexID {
		if a < b {
			return a
		}
		return b
	})
	res, err := eng.Run()
	if err != nil {
		return nil, nil, err
	}
	return info(c.Name(), res), res.Values, nil
}

type ccProgram struct{}

func (ccProgram) Init(_ *graph.Graph, id bsp.VertexID) graph.VertexID { return id }

func (ccProgram) Compute(ctx *bsp.Context[graph.VertexID], id bsp.VertexID, label *graph.VertexID, msgs []graph.VertexID) {
	if ctx.Superstep() == 0 {
		ctx.SendToNeighbors(id, *label)
		ctx.VoteToHalt()
		return
	}
	best := *label
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < *label {
		*label = best
		ctx.SendToNeighbors(id, best)
	}
	ctx.VoteToHalt()
}

func (ccProgram) MessageBytes(graph.VertexID) int { return 4 }

// FixedMessageBytes implements bsp.FixedSizeMessager: labels are 4-byte
// vertex IDs.
func (ccProgram) FixedMessageBytes() int { return 4 }
