package algorithms

import (
	"testing"

	"predict/internal/gen"
	"predict/internal/graph"
)

// twoCliques builds two dense 5-cliques joined by a single weak bridge —
// the canonical semi-clustering input.
func twoCliques() *graph.Graph {
	b := graph.NewBuilder(10)
	addClique := func(offset int) {
		for i := 0; i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				b.AddWeightedEdge(graph.VertexID(offset+i), graph.VertexID(offset+j), 1)
			}
		}
	}
	addClique(0)
	addClique(5)
	b.AddWeightedEdge(0, 5, 0.1) // weak bridge
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestSemiClusteringFindsCliques(t *testing.T) {
	sc := NewSemiClustering()
	sc.VMax = 5
	sc.Tau = 0.001
	ri, clusters, err := sc.RunClusters(twoCliques(), quietCfg(2))
	if err != nil {
		t.Fatalf("RunClusters: %v", err)
	}
	if ri.Iterations < 2 {
		t.Errorf("Iterations = %d, want >= 2", ri.Iterations)
	}
	// Every vertex should end with at least one cluster containing itself.
	for v, cs := range clusters {
		if len(cs) == 0 {
			t.Fatalf("vertex %d has no clusters", v)
		}
		found := false
		for _, m := range cs[0].Members {
			if m == graph.VertexID(v) {
				found = true
			}
		}
		if !found {
			t.Errorf("vertex %d's best cluster %v does not contain it", v, cs[0].Members)
		}
	}
	// Vertices 1-4 (inside clique A, away from the bridge) should cluster
	// exclusively with clique-A members.
	for _, v := range []int{1, 2, 3, 4} {
		for _, m := range clusters[v][0].Members {
			if m >= 5 {
				t.Errorf("vertex %d clustered across the bridge: %v", v, clusters[v][0].Members)
			}
		}
	}
}

func TestSemiClusteringRespectsVMax(t *testing.T) {
	sc := NewSemiClustering()
	sc.VMax = 3
	_, clusters, err := sc.RunClusters(twoCliques(), quietCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for v, cs := range clusters {
		for _, c := range cs {
			if len(c.Members) > 3 {
				t.Errorf("vertex %d has cluster of size %d > VMax=3", v, len(c.Members))
			}
		}
	}
}

func TestSemiClusteringRespectsCMax(t *testing.T) {
	sc := NewSemiClustering()
	sc.CMax = 2
	_, clusters, err := sc.RunClusters(gen.BarabasiAlbert(200, 3, 0.5, 9), quietCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	for v, cs := range clusters {
		if len(cs) > 2 {
			t.Errorf("vertex %d holds %d clusters > CMax=2", v, len(cs))
		}
	}
}

func TestSemiClusteringMessageBytesGrow(t *testing.T) {
	// Category ii.a: message sizes grow over iterations as clusters fill.
	sc := NewSemiClustering()
	ri, err := sc.Run(gen.BarabasiAlbert(1000, 4, 0.5, 21), quietCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if ri.Iterations < 3 {
		t.Skipf("converged too fast (%d iterations) for size-growth check", ri.Iterations)
	}
	first := ri.Profile.Supersteps[0].Total()
	mid := ri.Profile.Supersteps[ri.Iterations/2].Total()
	avgFirst := float64(first.MessageBytes()) / float64(first.Messages())
	avgMid := float64(mid.MessageBytes()) / float64(mid.Messages())
	if avgMid <= avgFirst {
		t.Errorf("average message size did not grow: first %.1f, mid %.1f", avgFirst, avgMid)
	}
}

func TestSemiClusteringTransformedIsIdentity(t *testing.T) {
	sc := NewSemiClustering()
	tr := sc.Transformed(0.1).(SemiClustering)
	if tr != sc {
		t.Errorf("Transformed changed config: %+v vs %+v", tr, sc)
	}
}

func TestScClusterContains(t *testing.T) {
	c := scCluster{members: []graph.VertexID{2, 5, 9}}
	for _, v := range []graph.VertexID{2, 5, 9} {
		if !c.contains(v) {
			t.Errorf("contains(%d) = false, want true", v)
		}
	}
	for _, v := range []graph.VertexID{1, 3, 10} {
		if c.contains(v) {
			t.Errorf("contains(%d) = true, want false", v)
		}
	}
}

func TestScoreSingletonIsSafe(t *testing.T) {
	sp := &scProgram{p: NewSemiClustering()}
	s := sp.score(0, 5, 1)
	if s > 0 {
		t.Errorf("singleton score = %v, want <= 0", s)
	}
}

func TestScoreNormalization(t *testing.T) {
	// Score must be normalized by the clique edge count so large clusters
	// are not favored: a 3-cluster with ic=3 (triangle) scores
	// (3 - 0)/3 = 1.
	sp := &scProgram{p: SemiClustering{FB: 0}}
	if got := sp.score(3, 0, 3); got != 1 {
		t.Errorf("score = %v, want 1", got)
	}
}

func TestDedupClusters(t *testing.T) {
	a := scCluster{members: []graph.VertexID{1, 2}, score: 5}
	b := scCluster{members: []graph.VertexID{1, 2}, score: 5}
	c := scCluster{members: []graph.VertexID{3}, score: 1}
	out := dedupClusters([]scCluster{a, b, c}, 10)
	if len(out) != 2 {
		t.Errorf("dedup kept %d clusters, want 2", len(out))
	}
	out = dedupClusters([]scCluster{a, c}, 1)
	if len(out) != 1 {
		t.Errorf("limit ignored: %d clusters", len(out))
	}
}

func TestEdgeWeight(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if w := edgeWeight(g, 0, 1); w != 2.5 {
		t.Errorf("edgeWeight(0,1) = %v, want 2.5", w)
	}
	if w := edgeWeight(g, 0, 2); w != 0 {
		t.Errorf("edgeWeight(0,2) = %v, want 0", w)
	}
}
