package algorithms

import (
	"math"
	"testing"

	"predict/internal/gen"
	"predict/internal/graph"
)

// TestPageRankMassConservation: with dangling-mass redistribution the
// total rank must stay ~1 even on graphs full of sinks.
func TestPageRankMassConservation(t *testing.T) {
	cases := map[string]*graph.Graph{
		"path": gen.Path(50),
		"star": gen.Star(50, true),
		"ba":   gen.BarabasiAlbert(500, 3, 0.2, 5),
	}
	for name, g := range cases {
		pr := NewPageRank()
		pr.Tau = 1e-10
		_, ranks, err := pr.RunRanks(g, quietCfg(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		if math.Abs(sum-1) > 0.02 {
			t.Errorf("%s: ranks sum to %v, want ~1 (dangling redistribution)", name, sum)
		}
	}
}

// TestNeighborhoodEstimationDeterministic: FM sketches are seeded from
// vertex IDs, so two runs must agree bit for bit.
func TestNeighborhoodEstimationDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(800, 4, 0.4, 9)
	nh := NewNeighborhoodEstimation()
	_, e1, err := nh.RunEstimates(g, quietCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	_, e2, err := nh.RunEstimates(g, quietCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	for v := range e1 {
		if e1[v] != e2[v] {
			t.Fatalf("vertex %d: %v vs %v across identical runs", v, e1[v], e2[v])
		}
	}
	// A different hash seed must change at least some estimates.
	nh2 := NewNeighborhoodEstimation()
	nh2.HashSeed = 12345
	_, e3, err := nh2.RunEstimates(g, quietCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for v := range e1 {
		if e1[v] == e3[v] {
			same++
		}
	}
	if same == len(e1) {
		t.Error("HashSeed had no effect on any estimate")
	}
}

// TestSemiClusteringValueBytesGrowWithClusters: the memory sizer must see
// larger state for fuller cluster lists.
func TestSemiClusteringValueBytes(t *testing.T) {
	sp := &scProgram{p: NewSemiClustering()}
	empty := scValue{}
	one := scValue{best: []scCluster{{members: []graph.VertexID{1, 2, 3}}}}
	if sp.ValueBytes(one) <= sp.ValueBytes(empty) {
		t.Errorf("ValueBytes(one cluster) = %d <= ValueBytes(empty) = %d",
			sp.ValueBytes(one), sp.ValueBytes(empty))
	}
}

// TestConnectedComponentsOnDegenerateStructures exercises the paper's
// §3.5 limitation examples end to end.
func TestConnectedComponentsOnDegenerateStructures(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"path":  gen.Path(64),
		"cycle": gen.Cycle(64),
		"grid":  gen.Grid(8, 8),
	} {
		cc := NewConnectedComponents()
		_, labels, err := cc.RunLabels(g, quietCfg(2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v, l := range labels {
			if l != 0 {
				t.Fatalf("%s: vertex %d label %d, want single component 0", name, v, l)
			}
		}
	}
}

// TestTopKRespectsKAcrossGraphs property-checks the K bound.
func TestTopKRespectsK(t *testing.T) {
	for _, k := range []int{1, 3, 10} {
		g := gen.BarabasiAlbert(300, 4, 0.4, uint64(k))
		tk := NewTopKRanking()
		tk.K = k
		tk.PageRank.Tau = TauForTolerance(0.01, g.NumVertices())
		_, lists, err := tk.RunLists(g, quietCfg(2))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for v, list := range lists {
			if len(list) > k {
				t.Fatalf("k=%d: vertex %d has %d entries", k, v, len(list))
			}
		}
	}
}
