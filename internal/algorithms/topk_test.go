package algorithms

import (
	"testing"

	"predict/internal/gen"
	"predict/internal/graph"
)

func TestTopKOnCycleEveryoneSeesGlobalTop(t *testing.T) {
	// On a cycle all vertices reach all others, and ranks are uniform, so
	// each vertex's top-k must be the k smallest IDs (rank tie-break).
	g := gen.Cycle(20)
	tk := NewTopKRanking()
	tk.K = 3
	tk.Tau = 0 // run to fixed point
	tk.PageRank.Tau = 1e-12
	_, lists, err := tk.RunLists(g, quietCfg(2))
	if err != nil {
		t.Fatalf("RunLists: %v", err)
	}
	for v, list := range lists {
		if len(list) != 3 {
			t.Fatalf("vertex %d list size %d, want 3", v, len(list))
		}
		for i, want := range []graph.VertexID{0, 1, 2} {
			if list[i].ID != want {
				t.Errorf("vertex %d list[%d].ID = %d, want %d", v, i, list[i].ID, want)
			}
		}
	}
}

func TestTopKListSortedAndDeduped(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 0.5, 31)
	tk := NewTopKRanking()
	tk.K = 5
	tk.PageRank.Tau = TauForTolerance(0.001, g.NumVertices())
	_, lists, err := tk.RunLists(g, quietCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	for v, list := range lists {
		seen := map[graph.VertexID]bool{}
		for i, e := range list {
			if seen[e.ID] {
				t.Fatalf("vertex %d: duplicate entry %d", v, e.ID)
			}
			seen[e.ID] = true
			if i > 0 && list[i-1].Rank < e.Rank {
				t.Fatalf("vertex %d: list not sorted desc at %d", v, i)
			}
		}
		if len(list) > 5 {
			t.Fatalf("vertex %d: list size %d > K", v, len(list))
		}
	}
}

func TestTopKMessageCountsDecay(t *testing.T) {
	// Category ii.b: message counts decay as vertices stop updating.
	g := gen.BarabasiAlbert(2000, 5, 0.4, 37)
	tk := NewTopKRanking()
	tk.PageRank.Tau = TauForTolerance(0.01, g.NumVertices())
	ri, err := tk.Run(g, quietCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if ri.Iterations < 4 {
		t.Skipf("converged too fast (%d iterations)", ri.Iterations)
	}
	first := ri.Profile.Supersteps[1].Total().Messages()
	last := ri.Profile.Supersteps[ri.Iterations-1].Total().Messages()
	if last >= first {
		t.Errorf("messages did not decay: superstep 1 %d vs last %d", first, last)
	}
}

func TestTopKTransformed(t *testing.T) {
	tk := NewTopKRanking()
	tk.Tau = 0.001
	tk.PageRank.Tau = 1e-6
	tr := tk.Transformed(0.1).(TopKRanking)
	if tr.Tau != 0.001 {
		t.Errorf("top-k Tau changed to %v; ratio thresholds are identity-transformed", tr.Tau)
	}
	if diff := tr.PageRank.Tau - 1e-5; diff > 1e-18 || diff < -1e-18 {
		t.Errorf("inner PageRank Tau = %v, want scaled 1e-5", tr.PageRank.Tau)
	}
	if tr.K != tk.K {
		t.Error("K must be preserved (Conf = {topK} identity)")
	}
}

func TestTopKHelper(t *testing.T) {
	in := []RankEntry{
		{ID: 1, Rank: 0.5},
		{ID: 2, Rank: 0.9},
		{ID: 1, Rank: 0.5}, // duplicate
		{ID: 3, Rank: 0.7},
	}
	out := topK(in, 2)
	if len(out) != 2 || out[0].ID != 2 || out[1].ID != 3 {
		t.Errorf("topK = %v, want [{2 0.9} {3 0.7}]", out)
	}
}

func TestRankListsEqual(t *testing.T) {
	a := []RankEntry{{ID: 1, Rank: 0.5}}
	b := []RankEntry{{ID: 1, Rank: 0.5}}
	c := []RankEntry{{ID: 2, Rank: 0.5}}
	if !rankListsEqual(a, b) {
		t.Error("equal lists reported unequal")
	}
	if rankListsEqual(a, c) {
		t.Error("different lists reported equal")
	}
	if rankListsEqual(a, nil) {
		t.Error("different lengths reported equal")
	}
}

func TestTopKRunOnRanksUsesProvidedRanks(t *testing.T) {
	g := gen.Cycle(10)
	ranks := make([]float64, 10)
	ranks[7] = 1.0 // vertex 7 dominates
	tk := NewTopKRanking()
	tk.K = 1
	tk.Tau = 0
	_, lists, err := tk.RunOnRanks(g, ranks, quietCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for v, list := range lists {
		if list[0].ID != 7 {
			t.Fatalf("vertex %d top entry = %d, want 7", v, list[0].ID)
		}
	}
}
