package algorithms

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"testing"

	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/graph"
)

// The engine-determinism pins: for every (algorithm, oracle seed, worker
// count) the exact bits of the run's Profile (per-superstep messages,
// bytes, aggregates, worker seconds — see bsp.Profile.Fingerprint) and of
// the algorithm's output values. The values were captured from the
// pre-rewrite per-superstep message path (the engine that allocated fresh
// outboxes and spawned workers every superstep) and pin the persistent-
// worker engine to it bit for bit: any change to partitioning, message
// order, combiner application order, aggregate merge order or oracle rng
// consumption shows up here as a one-line diff.
//
// To regenerate after an *intentional* semantics change, run:
//
//	PREDICT_CAPTURE_PINS=1 go test ./internal/algorithms -run TestEngineDeterminismPins -v
//
// and paste the printed table (then justify the change in DESIGN.md §7).
var determinismPins = map[string]string{
	"CC/s1/w1":         "4ed1ceb8116842ce 74b4429a2fdd70e5",
	"CC/s1/w2":         "9bf0126c8e66965d 74b4429a2fdd70e5",
	"CC/s1/w7":         "07bfb2452008971a 74b4429a2fdd70e5",
	"CC/s1234567/w1":   "6aa7b0a05e3941d8 74b4429a2fdd70e5",
	"CC/s1234567/w2":   "9d8d69461e1446c8 74b4429a2fdd70e5",
	"CC/s1234567/w7":   "1bca454b9d57aa6a 74b4429a2fdd70e5",
	"CC/s42/w1":        "39240f85f1add252 74b4429a2fdd70e5",
	"CC/s42/w2":        "70b4a65ee9276090 74b4429a2fdd70e5",
	"CC/s42/w7":        "6d8d07209140fb7e 74b4429a2fdd70e5",
	"NH/s1/w1":         "a73142289e57dc3e e52c8fc29dc7c331",
	"NH/s1/w2":         "8c3e433f7a759dad e52c8fc29dc7c331",
	"NH/s1/w7":         "55c43afb003a184b e52c8fc29dc7c331",
	"NH/s1234567/w1":   "6125ea8394185708 e52c8fc29dc7c331",
	"NH/s1234567/w2":   "394b93ab4eff4206 e52c8fc29dc7c331",
	"NH/s1234567/w7":   "cb19c6e18b134714 e52c8fc29dc7c331",
	"NH/s42/w1":        "2df239d262fbb07e e52c8fc29dc7c331",
	"NH/s42/w2":        "fa1ba7cf432b2691 e52c8fc29dc7c331",
	"NH/s42/w7":        "eda86d03b7f659b8 e52c8fc29dc7c331",
	"PR/s1/w1":         "c119de650239e956 78ae1f8c95e0f6d1",
	"PR/s1/w2":         "804763f1f1d1824f f804fa24c1ec6ac2",
	"PR/s1/w7":         "ba49b940ca4b29db e71462b81cef4823",
	"PR/s1234567/w1":   "d8fb9d89ec3a2f17 78ae1f8c95e0f6d1",
	"PR/s1234567/w2":   "949b5d95cb7d748b f804fa24c1ec6ac2",
	"PR/s1234567/w7":   "71ecfe2567424f5b e71462b81cef4823",
	"PR/s42/w1":        "c0a4ae52ab8a503f 78ae1f8c95e0f6d1",
	"PR/s42/w2":        "0c5d108757255e0e f804fa24c1ec6ac2",
	"PR/s42/w7":        "4d7a53461551e711 e71462b81cef4823",
	"SC/s1/w1":         "4724a5a2fc1f111f 0b56ce85454aec8b",
	"SC/s1/w2":         "da303a2561822ef6 0b56ce85454aec8b",
	"SC/s1/w7":         "90f847eb97f6e6d4 0b56ce85454aec8b",
	"SC/s1234567/w1":   "e855f8ede6910828 0b56ce85454aec8b",
	"SC/s1234567/w2":   "c2555fefcab6acdd 0b56ce85454aec8b",
	"SC/s1234567/w7":   "b0e438ba63b77db0 0b56ce85454aec8b",
	"SC/s42/w1":        "45a12c542c54e035 0b56ce85454aec8b",
	"SC/s42/w2":        "3e78d518b8d0e0b7 0b56ce85454aec8b",
	"SC/s42/w7":        "9af6a4cfb809550a 0b56ce85454aec8b",
	"TOPK/s1/w1":       "0bb5f9fde6007f22 1abcded29a76d4c5",
	"TOPK/s1/w2":       "8e7726f1a4c5db26 6016d63752edb3e5",
	"TOPK/s1/w7":       "59448f7401d7ceb0 0f32e2e3cb06eb05",
	"TOPK/s1234567/w1": "ca18ffa64d6ab713 1abcded29a76d4c5",
	"TOPK/s1234567/w2": "f54bfbc37004c711 6016d63752edb3e5",
	"TOPK/s1234567/w7": "d40eb8205fdc48c1 0f32e2e3cb06eb05",
	"TOPK/s42/w1":      "8b621d55b5dcc34b 1abcded29a76d4c5",
	"TOPK/s42/w2":      "8e1b35b5cf084fd1 6016d63752edb3e5",
	"TOPK/s42/w7":      "82c6b66f0e804b36 0f32e2e3cb06eb05",
}

// determinismGraph builds a fixed 150-vertex graph with mixed degrees: a
// ring (connectivity), arithmetic chords (fan-out) and a hub (skew). The
// structure exercises local and remote traffic at every pinned worker
// count.
func determinismGraph() *graph.Graph {
	const n = 150
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
		if i%2 == 0 {
			b.AddEdge(graph.VertexID(i), graph.VertexID((i*7+3)%n))
		}
		if i%5 == 0 && i != 0 {
			b.AddEdge(graph.VertexID(i), 0)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// determinismConfig keeps the oracle's noise and straggler model ON so the
// pinned worker seconds cover the rng consumption order, and disables only
// the memory budget (the test graph is tiny; the budget is irrelevant).
func determinismConfig(workers int, seed uint64) bsp.Config {
	o := cluster.DefaultOracle()
	o.MemoryBudgetBytes = 0
	return bsp.Config{Workers: workers, Seed: seed, Oracle: &o}
}

type pinnedRun struct {
	name string
	run  func(g *graph.Graph, cfg bsp.Config) (*RunInfo, string, error)
}

func fpHash() (*fnvWriter, func() string) {
	h := &fnvWriter{h: fnv.New64a()}
	return h, h.hex
}

type fnvWriter struct {
	h interface {
		Sum64() uint64
		Write([]byte) (int, error)
	}
}

func (w *fnvWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.h.Write(buf[:])
}
func (w *fnvWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *fnvWriter) hex() string {
	return fmt.Sprintf("%016x", w.h.Sum64())
}

func pinnedRuns() []pinnedRun {
	return []pinnedRun{
		{"PR", func(g *graph.Graph, cfg bsp.Config) (*RunInfo, string, error) {
			pr := NewPageRank()
			pr.Tau = TauForTolerance(0.001, g.NumVertices())
			ri, ranks, err := pr.RunRanks(g, cfg)
			if err != nil {
				return nil, "", err
			}
			h, hex := fpHash()
			for _, r := range ranks {
				h.f64(r)
			}
			return ri, hex(), nil
		}},
		{"CC", func(g *graph.Graph, cfg bsp.Config) (*RunInfo, string, error) {
			ri, labels, err := NewConnectedComponents().RunLabels(g, cfg)
			if err != nil {
				return nil, "", err
			}
			h, hex := fpHash()
			for _, l := range labels {
				h.u64(uint64(l))
			}
			return ri, hex(), nil
		}},
		{"NH", func(g *graph.Graph, cfg bsp.Config) (*RunInfo, string, error) {
			ri, ests, err := NewNeighborhoodEstimation().RunEstimates(g, cfg)
			if err != nil {
				return nil, "", err
			}
			h, hex := fpHash()
			for _, e := range ests {
				h.f64(e)
			}
			return ri, hex(), nil
		}},
		{"TOPK", func(g *graph.Graph, cfg bsp.Config) (*RunInfo, string, error) {
			ri, lists, err := NewTopKRanking().RunLists(g, cfg)
			if err != nil {
				return nil, "", err
			}
			h, hex := fpHash()
			for _, list := range lists {
				h.u64(uint64(len(list)))
				for _, e := range list {
					h.u64(uint64(e.ID))
					h.f64(e.Rank)
				}
			}
			return ri, hex(), nil
		}},
		{"SC", func(g *graph.Graph, cfg bsp.Config) (*RunInfo, string, error) {
			ri, clusters, err := NewSemiClustering().RunClusters(g, cfg)
			if err != nil {
				return nil, "", err
			}
			h, hex := fpHash()
			for _, cs := range clusters {
				h.u64(uint64(len(cs)))
				for _, c := range cs {
					h.f64(c.Score)
					for _, m := range c.Members {
						h.u64(uint64(m))
					}
				}
			}
			return ri, hex(), nil
		}},
	}
}

// TestEngineDeterminismPins runs every paper algorithm across 3 oracle
// seeds × worker counts {1, 2, 7} and asserts the full Profile and the
// output values are bit-identical to the pinned pre-rewrite engine.
func TestEngineDeterminismPins(t *testing.T) {
	capture := os.Getenv("PREDICT_CAPTURE_PINS") != ""
	g := determinismGraph()
	var keys []string
	got := map[string]string{}
	for _, pr := range pinnedRuns() {
		for _, seed := range []uint64{1, 42, 1234567} {
			for _, workers := range []int{1, 2, 7} {
				key := fmt.Sprintf("%s/s%d/w%d", pr.name, seed, workers)
				ri, valFP, err := pr.run(g, determinismConfig(workers, seed))
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				got[key] = ri.Profile.Fingerprint() + " " + valFP
				keys = append(keys, key)
			}
		}
	}
	if capture {
		sorted := append([]string(nil), keys...)
		sort.Strings(sorted)
		for _, k := range sorted {
			fmt.Printf("\t%q: %q,\n", k, got[k])
		}
		return
	}
	for _, k := range keys {
		want, ok := determinismPins[k]
		if !ok {
			t.Errorf("%s: no pinned fingerprint (run with PREDICT_CAPTURE_PINS=1 to capture)", k)
			continue
		}
		if got[k] != want {
			t.Errorf("%s: fingerprint %s, pinned %s — engine output changed bit-wise", k, got[k], want)
		}
	}
}

// TestEngineRunToRunStability re-runs one configuration of every algorithm
// and asserts two runs in the same process are bit-identical — the
// persistent-worker engine must not let goroutine scheduling reach any
// output.
func TestEngineRunToRunStability(t *testing.T) {
	g := determinismGraph()
	for _, pr := range pinnedRuns() {
		cfg := determinismConfig(3, 7)
		ri1, v1, err := pr.run(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pr.name, err)
		}
		ri2, v2, err := pr.run(g, cfg)
		if err != nil {
			t.Fatalf("%s: %v", pr.name, err)
		}
		if f1, f2 := ri1.Profile.Fingerprint(), ri2.Profile.Fingerprint(); f1 != f2 {
			t.Errorf("%s: profile fingerprints differ across runs: %s vs %s", pr.name, f1, f2)
		}
		if v1 != v2 {
			t.Errorf("%s: value fingerprints differ across runs: %s vs %s", pr.name, v1, v2)
		}
	}
}
