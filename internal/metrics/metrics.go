// Package metrics provides the error statistics the paper reports:
// signed relative error (negative = under-prediction), coefficient of
// determination R², and aggregate error summaries.
package metrics

import (
	"fmt"
	"math"
)

// SignedRelativeError returns (predicted - actual) / actual. Negative
// values are under-predictions, positive are over-predictions, matching
// the sign convention of the paper's figures. Returns 0 when both are
// zero, +Inf when only actual is zero.
func SignedRelativeError(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (predicted - actual) / actual
}

// AbsRelativeError is |SignedRelativeError|.
func AbsRelativeError(predicted, actual float64) float64 {
	return math.Abs(SignedRelativeError(predicted, actual))
}

// R2 computes the coefficient of determination of predictions against
// actuals: 1 - SS_res/SS_tot. Returns NaN for fewer than two points and
// 1 when actuals are constant and matched exactly.
func R2(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		panic(fmt.Sprintf("metrics: R2 length mismatch %d vs %d", len(predicted), len(actual)))
	}
	n := len(actual)
	if n < 2 {
		return math.NaN()
	}
	var mean float64
	for _, y := range actual {
		mean += y
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	for i := range actual {
		d := actual[i] - predicted[i]
		ssRes += d * d
		t := actual[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.Inf(-1)
	}
	return 1 - ssRes/ssTot
}

// MAPE is the mean absolute percentage error over paired slices, skipping
// zero actuals.
func MAPE(predicted, actual []float64) float64 {
	if len(predicted) != len(actual) {
		panic(fmt.Sprintf("metrics: MAPE length mismatch %d vs %d", len(predicted), len(actual)))
	}
	var sum float64
	n := 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((predicted[i] - actual[i]) / actual[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// MeanAbs returns the mean of absolute values.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// MaxAbs returns the maximum absolute value.
func MaxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
