package metrics

import (
	"math"
	"testing"
)

func TestSignedRelativeError(t *testing.T) {
	cases := []struct {
		pred, actual, want float64
	}{
		{110, 100, 0.1},
		{90, 100, -0.1},
		{100, 100, 0},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := SignedRelativeError(c.pred, c.actual); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SignedRelativeError(%v, %v) = %v, want %v", c.pred, c.actual, got, c.want)
		}
	}
	if got := SignedRelativeError(5, 0); !math.IsInf(got, 1) {
		t.Errorf("SignedRelativeError(5, 0) = %v, want +Inf", got)
	}
}

func TestAbsRelativeError(t *testing.T) {
	if got := AbsRelativeError(90, 100); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("AbsRelativeError = %v, want 0.1", got)
	}
}

func TestR2PerfectFit(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); got != 1 {
		t.Errorf("R2(y, y) = %v, want 1", got)
	}
}

func TestR2MeanPredictorIsZero(t *testing.T) {
	actual := []float64{1, 2, 3, 4, 5}
	pred := []float64{3, 3, 3, 3, 3}
	if got := R2(pred, actual); math.Abs(got) > 1e-12 {
		t.Errorf("R2(mean) = %v, want 0", got)
	}
}

func TestR2TooFewPoints(t *testing.T) {
	if got := R2([]float64{1}, []float64{1}); !math.IsNaN(got) {
		t.Errorf("R2 single point = %v, want NaN", got)
	}
}

func TestR2PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("R2 with mismatched lengths did not panic")
		}
	}()
	R2([]float64{1}, []float64{1, 2})
}

func TestMAPE(t *testing.T) {
	got := MAPE([]float64{110, 90}, []float64{100, 100})
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE = %v, want 0.1", got)
	}
	// Zero actuals are skipped.
	got = MAPE([]float64{110, 5}, []float64{100, 0})
	if math.Abs(got-0.1) > 1e-12 {
		t.Errorf("MAPE with zero actual = %v, want 0.1", got)
	}
	if got := MAPE(nil, nil); !math.IsNaN(got) {
		t.Errorf("MAPE(nil) = %v, want NaN", got)
	}
}

func TestMeanAbsAndMaxAbs(t *testing.T) {
	xs := []float64{-1, 2, -3}
	if got := MeanAbs(xs); got != 2 {
		t.Errorf("MeanAbs = %v, want 2", got)
	}
	if got := MaxAbs(xs); got != 3 {
		t.Errorf("MaxAbs = %v, want 3", got)
	}
	if got := MeanAbs(nil); !math.IsNaN(got) {
		t.Errorf("MeanAbs(nil) = %v, want NaN", got)
	}
}
