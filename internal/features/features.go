// Package features defines the key input features of the paper's Table 1,
// extracts per-iteration feature vectors from BSP run profiles, and
// extrapolates them from sample scale to full-graph scale (§3.3–3.4).
package features

import (
	"fmt"

	"predict/internal/bsp"
)

// Name identifies a key input feature (Table 1).
type Name string

// The feature pool of Table 1. NumIter is not a per-iteration feature: the
// transform function preserves the iteration count, so it enters prediction
// implicitly (one cost-model invocation per sample-run iteration).
const (
	ActVert    Name = "ActVert"    // number of active vertices
	TotVert    Name = "TotVert"    // number of total vertices
	LocMsg     Name = "LocMsg"     // number of local messages
	RemMsg     Name = "RemMsg"     // number of remote messages
	LocMsgSize Name = "LocMsgSize" // bytes of local messages
	RemMsgSize Name = "RemMsgSize" // bytes of remote messages
	AvgMsgSize Name = "AvgMsgSize" // average message size (not extrapolated)
	// SpillBytes counts message bytes spilled to disk. Giraph 0.1.0 could
	// not spill (the paper's experiments therefore exclude it, §3.3), but
	// the simulated cluster optionally can; the feature joins the pool so
	// cost models remain valid under spilling — the paper's suggested
	// extension.
	SpillBytes Name = "SpillBytes"
)

// Pool returns the candidate features for the cost model, in canonical
// column order.
func Pool() []Name {
	return []Name{ActVert, TotVert, LocMsg, RemMsg, LocMsgSize, RemMsgSize, AvgMsgSize, SpillBytes}
}

// Index returns the canonical column index of a feature name.
func Index(n Name) (int, error) {
	for i, p := range Pool() {
		if p == n {
			return i, nil
		}
	}
	return -1, fmt.Errorf("features: unknown feature %q", n)
}

// Vector is a feature vector in Pool() column order.
type Vector []float64

// Get returns the value of a named feature.
func (v Vector) Get(n Name) float64 {
	i, err := Index(n)
	if err != nil {
		panic(err)
	}
	return v[i]
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	return append(Vector(nil), v...)
}

// IterationFeatures pairs one iteration's feature vector with that
// iteration's simulated runtime (the regression target).
type IterationFeatures struct {
	Vector  Vector
	Seconds float64
}

// Mode selects how per-worker loads reduce to one vector per iteration.
type Mode int

const (
	// ModeCriticalShare scales graph-level totals by the critical-path
	// worker's outbound-edge share — the paper's critical-path modeling
	// (§3.4). This is the default.
	ModeCriticalShare Mode = iota
	// ModeMeanWorker scales totals by 1/workers, ignoring skew (ablation).
	ModeMeanWorker
	// ModeTotals uses raw graph-level totals (ablation).
	ModeTotals
)

// shareFor returns the scaling factor a mode applies to totals.
func shareFor(mode Mode, p *bsp.Profile) float64 {
	switch mode {
	case ModeCriticalShare:
		return p.CriticalShare()
	case ModeMeanWorker:
		if p.NumWorkers == 0 {
			return 1
		}
		return 1 / float64(p.NumWorkers)
	default:
		return 1
	}
}

// FromProfile extracts one IterationFeatures per superstep of a profiled
// run. The feature vector is the graph-level totals scaled per the mode;
// the target is the superstep's simulated seconds.
func FromProfile(p *bsp.Profile, mode Mode) []IterationFeatures {
	share := shareFor(mode, p)
	out := make([]IterationFeatures, len(p.Supersteps))
	for i := range p.Supersteps {
		sp := &p.Supersteps[i]
		tot := sp.Total()
		v := make(Vector, len(Pool()))
		v[0] = float64(tot.ActiveVertices) * share
		v[1] = float64(tot.TotalVertices) * share
		v[2] = float64(tot.LocalMessages) * share
		v[3] = float64(tot.RemoteMessages) * share
		v[4] = float64(tot.LocalMessageBytes) * share
		v[5] = float64(tot.RemoteMessageBytes) * share
		if msgs := tot.Messages(); msgs > 0 {
			v[6] = float64(tot.MessageBytes()) / float64(msgs) // not share-scaled
		}
		v[7] = float64(tot.SpilledBytes) * share
		out[i] = IterationFeatures{Vector: v, Seconds: sp.Seconds}
	}
	return out
}

// Scale holds the extrapolation factors of §3.4: eV = |V_G|/|V_S| for
// vertex-driven features and eE = |E_G|/|E_S| for edge-driven features.
type Scale struct {
	EV float64
	EE float64
}

// NewScale builds extrapolation factors from graph and sample sizes.
func NewScale(graphVertices, sampleVertices int, graphEdges, sampleEdges int64) (Scale, error) {
	if sampleVertices == 0 || sampleEdges == 0 {
		return Scale{}, fmt.Errorf("features: empty sample (v=%d, e=%d)", sampleVertices, sampleEdges)
	}
	return Scale{
		EV: float64(graphVertices) / float64(sampleVertices),
		EE: float64(graphEdges) / float64(sampleEdges),
	}, nil
}

// VerticesOnly returns a copy of s that extrapolates every feature by eV —
// the ablation showing why message features need the edge factor.
func (s Scale) VerticesOnly() Scale {
	return Scale{EV: s.EV, EE: s.EV}
}

// Apply extrapolates a sample-run feature vector to full-graph scale:
// vertex-driven features (ActVert, TotVert) scale by eV, message features
// by eE, and AvgMsgSize is preserved (Table 1's "Extrapolation" column).
func (s Scale) Apply(v Vector) Vector {
	out := v.Clone()
	out[0] *= s.EV // ActVert
	out[1] *= s.EV // TotVert
	out[2] *= s.EE // LocMsg
	out[3] *= s.EE // RemMsg
	out[4] *= s.EE // LocMsgSize
	out[5] *= s.EE // RemMsgSize
	// out[6] AvgMsgSize: no extrapolation
	out[7] *= s.EE // SpillBytes
	return out
}

// RescaleShare multiplies every load-dependent feature by factor, leaving
// AvgMsgSize untouched. The predictor uses it to move a vector from the
// sample graph's critical-path share to the full graph's (both computable
// in the read phase).
func (v Vector) RescaleShare(factor float64) Vector {
	out := v.Clone()
	for i := range out {
		if i == 6 { // AvgMsgSize is load-independent
			continue
		}
		out[i] *= factor
	}
	return out
}
