package features

import (
	"testing"

	"predict/internal/bsp"
	"predict/internal/cluster"
)

func sampleProfile() *bsp.Profile {
	return &bsp.Profile{
		NumWorkers:     2,
		GraphVertices:  100,
		GraphEdges:     1000,
		WorkerVertices: []int64{50, 50},
		WorkerOutEdges: []int64{600, 400},
		Supersteps: []bsp.SuperstepProfile{
			{
				Workers: []cluster.WorkerLoad{
					{ActiveVertices: 50, TotalVertices: 50, LocalMessages: 100,
						RemoteMessages: 200, LocalMessageBytes: 800, RemoteMessageBytes: 1600},
					{ActiveVertices: 50, TotalVertices: 50, LocalMessages: 100,
						RemoteMessages: 200, LocalMessageBytes: 800, RemoteMessageBytes: 1600},
				},
				Seconds: 2.5,
			},
		},
	}
}

func TestPoolOrderStable(t *testing.T) {
	want := []Name{ActVert, TotVert, LocMsg, RemMsg, LocMsgSize, RemMsgSize, AvgMsgSize, SpillBytes}
	got := Pool()
	if len(got) != len(want) {
		t.Fatalf("Pool size %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Pool[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestIndex(t *testing.T) {
	i, err := Index(RemMsgSize)
	if err != nil || i != 5 {
		t.Errorf("Index(RemMsgSize) = %d, %v; want 5, nil", i, err)
	}
	if _, err := Index(Name("bogus")); err == nil {
		t.Error("Index(bogus) succeeded")
	}
}

func TestFromProfileTotalsMode(t *testing.T) {
	fs := FromProfile(sampleProfile(), ModeTotals)
	if len(fs) != 1 {
		t.Fatalf("got %d iterations, want 1", len(fs))
	}
	v := fs[0].Vector
	if v.Get(ActVert) != 100 {
		t.Errorf("ActVert = %v, want 100", v.Get(ActVert))
	}
	if v.Get(RemMsg) != 400 {
		t.Errorf("RemMsg = %v, want 400", v.Get(RemMsg))
	}
	if v.Get(RemMsgSize) != 3200 {
		t.Errorf("RemMsgSize = %v, want 3200", v.Get(RemMsgSize))
	}
	// AvgMsgSize = total bytes / total msgs = 4800/600 = 8.
	if v.Get(AvgMsgSize) != 8 {
		t.Errorf("AvgMsgSize = %v, want 8", v.Get(AvgMsgSize))
	}
	if fs[0].Seconds != 2.5 {
		t.Errorf("Seconds = %v, want 2.5", fs[0].Seconds)
	}
}

func TestFromProfileCriticalShare(t *testing.T) {
	p := sampleProfile()
	fs := FromProfile(p, ModeCriticalShare)
	// Critical share = 600/1000 = 0.6.
	if got := fs[0].Vector.Get(ActVert); got != 60 {
		t.Errorf("ActVert = %v, want 60 (= 100 * 0.6)", got)
	}
	// AvgMsgSize must not be share-scaled.
	if got := fs[0].Vector.Get(AvgMsgSize); got != 8 {
		t.Errorf("AvgMsgSize = %v, want 8", got)
	}
}

func TestFromProfileMeanWorker(t *testing.T) {
	fs := FromProfile(sampleProfile(), ModeMeanWorker)
	if got := fs[0].Vector.Get(ActVert); got != 50 {
		t.Errorf("ActVert = %v, want 50 (= 100/2)", got)
	}
}

func TestScaleApply(t *testing.T) {
	s := Scale{EV: 10, EE: 20}
	v := Vector{1, 2, 3, 4, 5, 6, 7, 8}
	out := s.Apply(v)
	want := Vector{10, 20, 60, 80, 100, 120, 7, 160}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("Apply[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Original untouched.
	if v[0] != 1 {
		t.Error("Apply mutated its input")
	}
}

func TestScaleVerticesOnly(t *testing.T) {
	s := Scale{EV: 10, EE: 20}.VerticesOnly()
	if s.EE != 10 {
		t.Errorf("VerticesOnly EE = %v, want 10", s.EE)
	}
}

func TestNewScale(t *testing.T) {
	s, err := NewScale(1000, 100, 50000, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if s.EV != 10 || s.EE != 20 {
		t.Errorf("Scale = %+v, want EV=10 EE=20", s)
	}
	if _, err := NewScale(1000, 0, 50000, 2500); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestRescaleShare(t *testing.T) {
	v := Vector{1, 1, 1, 1, 1, 1, 9, 1}
	out := v.RescaleShare(3)
	for i := range out {
		if i == 6 {
			continue
		}
		if out[i] != 3 {
			t.Errorf("RescaleShare[%d] = %v, want 3", i, out[i])
		}
	}
	if out[6] != 9 {
		t.Errorf("AvgMsgSize rescaled: %v, want 9", out[6])
	}
}
