// Package bounds provides the analytical upper bounds the paper compares
// against (§5.1): closed-form iteration counts that ignore dataset
// characteristics and are therefore loose in practice.
package bounds

import (
	"math"
)

// PageRankIterations returns the Langville & Meyer upper bound on the
// number of power iterations needed to reach tolerance level epsilon with
// damping factor d:
//
//	#iterations = log10(epsilon) / log10(d)
//
// For epsilon = 0.001, d = 0.85 this gives ~42 iterations, versus fewer
// than 21 observed on all of the paper's datasets — a 2x over-estimate.
func PageRankIterations(epsilon, damping float64) int {
	if epsilon <= 0 || epsilon >= 1 || damping <= 0 || damping >= 1 {
		return 0
	}
	return int(math.Ceil(math.Log10(epsilon) / math.Log10(damping)))
}

// ConnectedComponentsIterations returns the trivial diameter bound for
// HashMin label propagation: the label needs at most diameter hops to
// flood a component.
func ConnectedComponentsIterations(diameter int) int {
	return diameter + 1
}
