package bounds

import "testing"

func TestPageRankIterationsMatchesPaper(t *testing.T) {
	// The paper: for epsilon = 0.001, d = 0.85 the bound gives 42
	// iterations (log10(0.001)/log10(0.85) = 42.5).
	got := PageRankIterations(0.001, 0.85)
	if got != 43 && got != 42 {
		t.Errorf("PageRankIterations(0.001, 0.85) = %d, want ~42-43", got)
	}
	// Looser tolerance, fewer iterations.
	loose := PageRankIterations(0.1, 0.85)
	if loose >= got {
		t.Errorf("looser tolerance bound %d >= tighter %d", loose, got)
	}
}

func TestPageRankIterationsDegenerate(t *testing.T) {
	for _, c := range []struct{ eps, d float64 }{
		{0, 0.85}, {-1, 0.85}, {1, 0.85}, {0.001, 0}, {0.001, 1}, {0.001, 2},
	} {
		if got := PageRankIterations(c.eps, c.d); got != 0 {
			t.Errorf("PageRankIterations(%v, %v) = %d, want 0", c.eps, c.d, got)
		}
	}
}

func TestConnectedComponentsIterations(t *testing.T) {
	if got := ConnectedComponentsIterations(10); got != 11 {
		t.Errorf("ConnectedComponentsIterations(10) = %d, want 11", got)
	}
}
