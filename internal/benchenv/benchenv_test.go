package benchenv

import "testing"

func TestScale(t *testing.T) {
	cases := []struct {
		env     string
		want    float64
		wantErr bool
	}{
		{"", 0.15, false},
		{"0.08", 0.08, false},
		{"1", 1, false},
		{"bogus", 0, true},
		{"0", 0, true},
		{"-0.1", 0, true},
		{"NaN", 0, true},
		{"+Inf", 0, true},
	}
	for _, c := range cases {
		t.Setenv("PREDICT_BENCH_SCALE", c.env)
		got, err := Scale(0.15)
		if (err != nil) != c.wantErr {
			t.Errorf("Scale with env %q: err = %v, wantErr %v", c.env, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("Scale with env %q = %v, want %v", c.env, got, c.want)
		}
	}
}
