// Package benchenv resolves the PREDICT_BENCH_SCALE environment variable
// shared by cmd/bench and the root-package `go test -bench` benchmarks,
// so the parse-and-validate rules cannot drift between the two harnesses.
package benchenv

import (
	"fmt"
	"math"
	"os"
	"strconv"
)

// Scale returns the dataset scale factor from PREDICT_BENCH_SCALE, or
// fallback when the variable is unset. Malformed values — anything that
// is not a positive finite float — are an error, never a silent
// fallback: a mistyped CI variable must not quietly measure the wrong
// workload.
func Scale(fallback float64) (float64, error) {
	s := os.Getenv("PREDICT_BENCH_SCALE")
	if s == "" {
		return fallback, nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("malformed PREDICT_BENCH_SCALE=%q: want a positive float", s)
	}
	return v, nil
}
