//go:build unix

package faultinject

import (
	"os"
	"syscall"
)

// RaiseKill terminates the process with SIGKILL — no deferred functions,
// no flushes, no exit handlers — exactly the death a power loss or an
// OOM kill delivers. It never returns: SIGKILL delivery can race the
// return from kill(2), so the caller parks forever rather than executing
// one more instruction of the path under test.
func RaiseKill() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {}
}
