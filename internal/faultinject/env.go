package faultinject

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// EnvVar is the environment variable EnableFromEnv reads its schedule
// from; EnvSeedVar seeds the injector (default 1). The crash harness sets
// both when it launches the real binary, which is how a process-level
// test schedules a SIGKILL at an exact internal point.
const (
	EnvVar     = "PREDICT_FAULTS"
	EnvSeedVar = "PREDICT_FAULTS_SEED"
)

// EnableFromEnv installs an injector from the PREDICT_FAULTS schedule if
// one is set, returning whether injection was enabled. With the variable
// unset or empty this does nothing — the production state stays the
// nil-injector fast path.
//
// The schedule is ';'-separated rules of ','-separated fields:
//
//	point=history.append,from=2,partial=25,kill
//	point=service.fit,from=1,count=1,period=7,err=injected fit failure
//
// Fields: point=NAME (required), from=N, count=N, period=N, prob=F,
// partial=N, delay=DURATION, err=MESSAGE, kill. Unknown fields are
// errors: a typo in a crash schedule must fail the harness loudly, not
// silently test nothing.
func EnableFromEnv() (bool, error) {
	spec := os.Getenv(EnvVar)
	if strings.TrimSpace(spec) == "" {
		return false, nil
	}
	rules, err := ParseRules(spec)
	if err != nil {
		return false, fmt.Errorf("faultinject: %s: %w", EnvVar, err)
	}
	seed := uint64(1)
	if v := os.Getenv(EnvSeedVar); v != "" {
		seed, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return false, fmt.Errorf("faultinject: %s=%q: %w", EnvSeedVar, v, err)
		}
	}
	Enable(NewInjector(seed, rules...))
	return true, nil
}

// ParseRules parses a PREDICT_FAULTS schedule into injection rules.
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		var r Rule
		for _, field := range strings.Split(rs, ",") {
			field = strings.TrimSpace(field)
			if field == "" {
				continue
			}
			key, val, hasVal := strings.Cut(field, "=")
			var err error
			switch key {
			case "point":
				r.Point = val
			case "from":
				r.From, err = strconv.Atoi(val)
			case "count":
				r.Count, err = strconv.Atoi(val)
			case "period":
				r.Period, err = strconv.Atoi(val)
			case "prob":
				r.Prob, err = strconv.ParseFloat(val, 64)
			case "partial":
				r.PartialBytes, err = strconv.Atoi(val)
			case "delay":
				r.Delay, err = time.ParseDuration(val)
			case "err":
				if val == "" {
					val = "injected fault"
				}
				r.Err = errors.New(val)
			case "kill":
				if hasVal {
					return nil, fmt.Errorf("rule %q: kill takes no value", rs)
				}
				r.Kill = true
			default:
				return nil, fmt.Errorf("rule %q: unknown field %q", rs, key)
			}
			if err != nil {
				return nil, fmt.Errorf("rule %q: field %q: %w", rs, field, err)
			}
		}
		if r.Point == "" {
			return nil, fmt.Errorf("rule %q: missing point=", rs)
		}
		if r.Err == nil && !r.Kill && r.Delay <= 0 {
			return nil, fmt.Errorf("rule %q: no effect (want err=, kill or delay=)", rs)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, errors.New("empty schedule")
	}
	return rules, nil
}
