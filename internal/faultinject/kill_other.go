//go:build !unix

package faultinject

import "os"

// RaiseKill approximates an uncatchable kill on platforms without
// syscall.Kill: os.Exit runs no deferred functions, which is the property
// the crash harness depends on. 137 mirrors the shell's SIGKILL code.
func RaiseKill() {
	os.Exit(137)
}
