// Package faultinject is the deterministic fault-injection harness the
// chaos suite and the robustness benchmarks drive the system with.
//
// Cloud runtimes are dominated by infrastructure noise — slow disks,
// transient I/O errors, failed tasks — yet code paths that "cannot fail"
// in tests fail constantly in production. This package lets a test (or
// cmd/bench) declare a seeded, schedule-based plan of failures and replay
// it bit-identically: every instrumented code path calls Fire(point) at
// its entry, and the active Injector decides — by hit count, by period,
// or by seeded coin flip — whether that particular hit observes an
// injected error, an injected latency, or a partial (torn) write.
//
// The disabled path is the contract that lets the injection points live
// on production code paths at all: when no Injector is enabled (the
// default, and the only state outside tests), Fire is one atomic pointer
// load and a nil return — no locks, no allocations, no behavior change.
// The CI alloc gates and the pinned golden fingerprints run against
// exactly this disabled build, proving the instrumentation is free.
//
// Determinism: an Injector's schedule depends only on its seed, its rules
// and the order of Fire calls. Single-threaded replays are bit-identical;
// concurrent replays are per-point deterministic in aggregate (the hit
// counter is taken under the injector lock). Seeds come from the chaos
// suite's PREDICT_CHAOS_SEED, so a failing schedule is reproducible from
// the CI log alone.
package faultinject

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// The instrumented injection points. Each names the production code path
// that calls Fire with it; injecting anywhere else is a no-op.
const (
	// PointGraphLoadFile fires at graph.LoadFile's entry (the registry's
	// text/snapshot load path).
	PointGraphLoadFile = "graph.load_file"
	// PointGraphReadSnapshot fires at graph.ReadSnapshot/ReadSnapshotFile.
	PointGraphReadSnapshot = "graph.read_snapshot"
	// PointGraphOpenSnapshot fires at graph.OpenSnapshot (the mmap-with-
	// fallback policy layer).
	PointGraphOpenSnapshot = "graph.open_snapshot"
	// PointHistoryAppend fires inside history append; PartialBytes rules
	// produce a real torn record on disk (a simulated crash mid-append).
	PointHistoryAppend = "history.append"
	// PointHistoryCompact fires inside history.CompactFile, after the
	// compacted temp file is durable but before the rename makes it the
	// log — the window where a crash must leave the old log intact.
	PointHistoryCompact = "history.compact"
	// PointHistoryLoad fires at history.LoadFile's entry.
	PointHistoryLoad = "history.load"
	// PointServiceFit fires at the service's cold-fit path, before the
	// sample pipelines run — the hook the breaker chaos tests trip.
	PointServiceFit = "service.fit"
)

// Fault is what an instrumented call site observes when a rule fires.
// Sites interpret the fields they can honor: every site honors Delay and
// Err; only write sites honor PartialBytes; sites on the durability path
// honor Kill.
type Fault struct {
	// Err, when non-nil, is returned by the instrumented operation after
	// Delay (and, for write points, after the partial write).
	Err error
	// Delay is slept before the operation proceeds or fails.
	Delay time.Duration
	// PartialBytes, when > 0 at a write point, persists only that many
	// bytes of the payload before failing — a torn write.
	PartialBytes int
	// Kill, when true, terminates the process with SIGKILL at the point's
	// most interesting moment (after a partial write lands, before a
	// compaction rename, at a fit's start) — the crash harness's way of
	// dying mid-operation with no deferred cleanup, no flushes, no
	// graceful anything. Only the process-level crash harness schedules
	// kills; in-process tests use Err.
	Kill bool
}

// Sleep applies the fault's injected latency. Call sites without a
// context use it directly; it is a no-op for pure error faults.
func (f *Fault) Sleep() {
	if f != nil && f.Delay > 0 {
		time.Sleep(f.Delay)
	}
}

// SleepContext applies the fault's injected latency but returns early if
// ctx is done — call sites with a cancelable context (the fit path) use
// it so an injected stall still honors shutdown.
func (f *Fault) SleepContext(ctx context.Context) {
	if f == nil || f.Delay <= 0 {
		return
	}
	t := time.NewTimer(f.Delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// MaybeKill terminates the process with SIGKILL if the fault asks for it,
// and never returns in that case. Call sites place it at the exact moment
// the scheduled crash should strike.
func (f *Fault) MaybeKill() {
	if f != nil && f.Kill {
		RaiseKill()
	}
}

// Rule is one line of an injection schedule: when Point is hit, fire on
// the selected hits with the given fault.
type Rule struct {
	// Point selects the injection point this rule applies to.
	Point string
	// From/Count select a 1-based window of hits: fire on hits
	// [From, From+Count). From 0 means 1; Count 0 means unbounded.
	From  int
	Count int
	// Period, when > 0, applies the window cyclically: the rule fires on
	// hit h when ((h-1) mod Period)+1 falls inside [From, From+Count).
	// "Fail 2 of every 3 attempts" is {From: 1, Count: 2, Period: 3}.
	Period int
	// Prob, when > 0, additionally gates each in-window hit on a seeded
	// coin flip with this probability — the same seed replays the same
	// flips in the same Fire order.
	Prob float64
	// The fault to inject when the rule fires.
	Err          error
	Delay        time.Duration
	PartialBytes int
	Kill         bool
}

// matches reports whether the rule fires on the point's hit number h
// (1-based). The caller holds the injector lock and supplies the flip.
func (r *Rule) matches(h int, flip func() float64) bool {
	if r.Period > 0 {
		h = (h-1)%r.Period + 1
	}
	from := r.From
	if from <= 0 {
		from = 1
	}
	if h < from {
		return false
	}
	if r.Count > 0 && h >= from+r.Count {
		return false
	}
	if r.Prob > 0 && flip() >= r.Prob {
		return false
	}
	return true
}

// Injector holds one seeded fault schedule plus its replay state (per-
// point hit and fire counters). Safe for concurrent use; the disabled
// global path never touches it.
type Injector struct {
	mu    sync.Mutex
	rng   uint64
	rules []Rule
	hits  map[string]int
	fired map[string]int
}

// NewInjector returns an injector replaying the given rules under seed.
func NewInjector(seed uint64, rules ...Rule) *Injector {
	return &Injector{
		rng:   seed,
		rules: rules,
		hits:  make(map[string]int),
		fired: make(map[string]int),
	}
}

// splitmix64 is the step function behind the seeded coin flips — tiny,
// deterministic and plenty for schedule decorrelation.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (in *Injector) flip() float64 {
	return float64(in.next()>>11) / float64(1<<53)
}

// fire records one hit at point and returns the fault of the first
// matching rule, or nil.
func (in *Injector) fire(point string) *Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[point]++
	h := in.hits[point]
	for i := range in.rules {
		r := &in.rules[i]
		if r.Point != point || !r.matches(h, in.flip) {
			continue
		}
		in.fired[point]++
		return &Fault{Err: r.Err, Delay: r.Delay, PartialBytes: r.PartialBytes, Kill: r.Kill}
	}
	return nil
}

// Hits reports how many times point has been reached (fired or not).
func (in *Injector) Hits(point string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[point]
}

// Fired reports how many faults have been injected at point.
func (in *Injector) Fired(point string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}

// String summarizes the injector's replay state for test failure output.
func (in *Injector) String() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return fmt.Sprintf("faultinject: %d rules, hits=%v fired=%v", len(in.rules), in.hits, in.fired)
}

// active is the process-wide injector hook. Nil (the default and the only
// production state) disables injection entirely: Fire is then one atomic
// load. Tests enable an injector for a scope and restore on exit.
var active atomic.Pointer[Injector]

// Enable installs in as the process-wide injector and returns a restore
// function that reinstates the previous one. Tests must defer the
// restore; overlapping enables in parallel tests are the caller's
// responsibility (the chaos suite runs its injected tests serially).
func Enable(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// Enabled reports whether any injector is active (used by bench to refuse
// to record numbers from an injected build by accident).
func Enabled() bool { return active.Load() != nil }

// Fire is the instrumented call sites' entry: it returns the fault to
// apply at point, or nil. With no injector enabled this is a single
// atomic load — zero allocations, zero behavior change — which is what
// lets it live on production hot paths under the CI alloc gates.
func Fire(point string) *Fault {
	in := active.Load()
	if in == nil {
		return nil
	}
	return in.fire(point)
}
