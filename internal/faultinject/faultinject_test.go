package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func firePattern(in *Injector, point string, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if in.fire(point) != nil {
			b.WriteByte('X')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}

func TestDisabledFireIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("injector enabled at test start")
	}
	if f := Fire(PointGraphLoadFile); f != nil {
		t.Fatalf("disabled Fire returned %v, want nil", f)
	}
}

func TestDisabledFireAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		if Fire(PointHistoryAppend) != nil {
			t.Fatal("unexpected fault")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled Fire allocates %.1f per call, want 0", allocs)
	}
}

func TestEnableRestore(t *testing.T) {
	in := NewInjector(1, Rule{Point: PointServiceFit, Err: errBoom})
	restore := Enable(in)
	if !Enabled() {
		t.Fatal("Enabled() false after Enable")
	}
	f := Fire(PointServiceFit)
	if f == nil || f.Err != errBoom {
		t.Fatalf("Fire = %v, want fault with errBoom", f)
	}
	if Fire(PointGraphLoadFile) != nil {
		t.Fatal("unmatched point fired")
	}
	restore()
	if Enabled() {
		t.Fatal("Enabled() true after restore")
	}
	if Fire(PointServiceFit) != nil {
		t.Fatal("Fire fired after restore")
	}
}

func TestEnableRestoresPrevious(t *testing.T) {
	a := NewInjector(1, Rule{Point: PointServiceFit, Err: errBoom})
	b := NewInjector(2)
	restoreA := Enable(a)
	restoreB := Enable(b)
	if Fire(PointServiceFit) != nil {
		t.Fatal("injector b should not fire")
	}
	restoreB()
	if f := Fire(PointServiceFit); f == nil {
		t.Fatal("injector a not restored")
	}
	restoreA()
	if Enabled() {
		t.Fatal("injector still enabled after full unwind")
	}
}

func TestWindowMatching(t *testing.T) {
	cases := []struct {
		name string
		rule Rule
		want string
	}{
		{"always", Rule{}, "XXXXXXXXXX"},
		{"from3", Rule{From: 3}, "..XXXXXXXX"},
		{"from3count2", Rule{From: 3, Count: 2}, "..XX......"},
		{"first-only", Rule{Count: 1}, "X........."},
		{"two-of-three", Rule{From: 1, Count: 2, Period: 3}, "XX.XX.XX.X"},
		{"third-of-three", Rule{From: 3, Count: 1, Period: 3}, "..X..X..X."},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.rule.Point = "p"
			tc.rule.Err = errBoom
			in := NewInjector(7, tc.rule)
			if got := firePattern(in, "p", 10); got != tc.want {
				t.Fatalf("pattern = %s, want %s", got, tc.want)
			}
		})
	}
}

func TestProbDeterministic(t *testing.T) {
	pattern := func(seed uint64) string {
		in := NewInjector(seed, Rule{Point: "p", Prob: 0.5, Err: errBoom})
		return firePattern(in, "p", 64)
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	c := pattern(43)
	if a == c {
		t.Fatalf("different seeds produced identical 64-hit schedule %s", a)
	}
	fired := strings.Count(a, "X")
	if fired < 16 || fired > 48 {
		t.Fatalf("prob 0.5 fired %d/64 times — flip distribution broken", fired)
	}
}

func TestProbZeroNeverFlips(t *testing.T) {
	// Prob 0 means "no coin flip", not "never fire": the window alone
	// decides, and the rng must not advance.
	in := NewInjector(9, Rule{Point: "p", Err: errBoom})
	before := in.rng
	in.fire("p")
	if in.rng != before {
		t.Fatal("rng advanced on a probability-free rule")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	in := NewInjector(1,
		Rule{Point: "p", From: 2, Err: errA},
		Rule{Point: "p", Err: errB},
	)
	if f := in.fire("p"); f.Err != errB {
		t.Fatalf("hit 1 fault = %v, want b (first rule out of window)", f.Err)
	}
	if f := in.fire("p"); f.Err != errA {
		t.Fatalf("hit 2 fault = %v, want a (earlier rule wins)", f.Err)
	}
}

func TestCounters(t *testing.T) {
	in := NewInjector(1, Rule{Point: "p", From: 2, Count: 1, Err: errBoom})
	for i := 0; i < 5; i++ {
		in.fire("p")
	}
	in.fire("q")
	if got := in.Hits("p"); got != 5 {
		t.Fatalf("Hits(p) = %d, want 5", got)
	}
	if got := in.Fired("p"); got != 1 {
		t.Fatalf("Fired(p) = %d, want 1", got)
	}
	if got := in.Hits("q"); got != 1 {
		t.Fatalf("Hits(q) = %d, want 1", got)
	}
	if got := in.Fired("q"); got != 0 {
		t.Fatalf("Fired(q) = %d, want 0", got)
	}
	if s := in.String(); !strings.Contains(s, "1 rules") {
		t.Fatalf("String() = %q, want rule count", s)
	}
}

func TestFaultFields(t *testing.T) {
	in := NewInjector(1, Rule{Point: "p", Err: errBoom, Delay: time.Millisecond, PartialBytes: 7})
	f := in.fire("p")
	if f.Err != errBoom || f.Delay != time.Millisecond || f.PartialBytes != 7 {
		t.Fatalf("fault = %+v, want all rule fields carried over", f)
	}
	start := time.Now()
	f.Sleep()
	if time.Since(start) < time.Millisecond {
		t.Fatal("Sleep returned before the injected delay elapsed")
	}
	var nilFault *Fault
	nilFault.Sleep() // must not panic
}

func TestConcurrentFire(t *testing.T) {
	// Aggregate determinism under concurrency: total hits and fires are
	// exact even when Fire races (the pattern order is not asserted).
	in := NewInjector(3, Rule{Point: "p", From: 1, Count: 1, Period: 2, Err: errBoom})
	restore := Enable(in)
	defer restore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				Fire("p")
			}
		}()
	}
	wg.Wait()
	if got := in.Hits("p"); got != 800 {
		t.Fatalf("Hits = %d, want 800", got)
	}
	if got := in.Fired("p"); got != 400 {
		t.Fatalf("Fired = %d, want 400 (every other hit)", got)
	}
}
