package faultinject

import (
	"context"
	"testing"
	"time"
)

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(
		"point=history.append,from=2,partial=25,kill; point=service.fit,from=1,count=1,period=7,err=boom,delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	r := rules[0]
	if r.Point != "history.append" || r.From != 2 || r.PartialBytes != 25 || !r.Kill || r.Err != nil {
		t.Errorf("rule 0 = %+v", r)
	}
	r = rules[1]
	if r.Point != "service.fit" || r.From != 1 || r.Count != 1 || r.Period != 7 ||
		r.Err == nil || r.Err.Error() != "boom" || r.Delay != 5*time.Millisecond || r.Kill {
		t.Errorf("rule 1 = %+v", r)
	}
}

func TestParseRulesRejectsMalformedSchedules(t *testing.T) {
	for _, spec := range []string{
		"",                                // empty
		"from=2,kill",                     // missing point
		"point=history.append",            // no effect
		"point=history.append,nope=1",     // unknown field
		"point=history.append,kill=yes",   // kill takes no value
		"point=history.append,from=x,err", // bad int
	} {
		if _, err := ParseRules(spec); err == nil {
			t.Errorf("ParseRules(%q) accepted a malformed schedule", spec)
		}
	}
}

func TestEnableFromEnv(t *testing.T) {
	// Unset: stays disabled.
	t.Setenv(EnvVar, "")
	if on, err := EnableFromEnv(); on || err != nil {
		t.Fatalf("empty env: on=%v err=%v", on, err)
	}
	if Enabled() {
		t.Fatal("injector enabled by empty env")
	}

	// Malformed: loud error, still disabled.
	t.Setenv(EnvVar, "point=")
	if on, err := EnableFromEnv(); on || err == nil {
		t.Fatalf("malformed env: on=%v err=%v, want error", on, err)
	}

	// Valid: the schedule replays.
	t.Setenv(EnvVar, "point=test.env,from=2,err=synthetic")
	t.Setenv(EnvSeedVar, "7")
	on, err := EnableFromEnv()
	if !on || err != nil {
		t.Fatalf("EnableFromEnv: on=%v err=%v", on, err)
	}
	defer func() { Enable(nil) }() // drop the env injector, discard its restore
	if f := Fire("test.env"); f != nil {
		t.Fatalf("hit 1 fired %+v, want nil (from=2)", f)
	}
	f := Fire("test.env")
	if f == nil || f.Err == nil || f.Err.Error() != "synthetic" {
		t.Fatalf("hit 2 = %+v, want the synthetic error", f)
	}
}

func TestEnableFromEnvRejectsBadSeed(t *testing.T) {
	t.Setenv(EnvVar, "point=test.seed,err=x")
	t.Setenv(EnvSeedVar, "not-a-number")
	if on, err := EnableFromEnv(); on || err == nil {
		t.Fatalf("bad seed: on=%v err=%v, want error", on, err)
	}
}

// TestSleepContextHonorsCancellation pins the property the drain path
// depends on: an injected stall aborts as soon as the lifecycle context
// is canceled instead of holding a fit-pool slot for the full delay.
func TestSleepContextHonorsCancellation(t *testing.T) {
	f := &Fault{Delay: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		f.SleepContext(ctx)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SleepContext did not return after cancellation")
	}
	// Nil fault and zero delay are no-ops regardless of ctx state.
	var nilFault *Fault
	nilFault.SleepContext(ctx)
	(&Fault{}).SleepContext(ctx)
}
