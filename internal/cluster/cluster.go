// Package cluster simulates the execution environment of the paper's
// testbed: a 10-node Hadoop/Giraph cluster with 29 workers, 1 Gbps links
// and network-dominated superstep costs.
//
// The CostOracle is the ground truth of the simulation: it converts
// per-worker superstep load counters into simulated seconds. Its
// coefficients are deliberately hidden from the prediction pipeline
// (internal/costmodel), which must recover them by fitting a regression to
// profiled sample runs — the same inference problem PREDIcT faces on real
// hardware. The oracle includes a fixed per-superstep barrier overhead and
// seeded multiplicative noise; the former reproduces the paper's
// observation that very short sample runs over-estimate cost factors
// (§5.2, top-k on LiveJournal), the latter bounds attainable model fit
// (R² < 1).
package cluster

import (
	"math/rand/v2"
)

// WorkerLoad holds the per-worker, per-superstep counters that Giraph's
// instrumented code path exposes — exactly the paper's Table 1 key input
// features at worker granularity.
type WorkerLoad struct {
	// ActiveVertices counts compute-function invocations (vertices doing
	// actual work this superstep).
	ActiveVertices int64
	// TotalVertices counts vertices allocated to the worker.
	TotalVertices int64
	// LocalMessages/RemoteMessages count messages sent to vertices on the
	// same/another worker.
	LocalMessages  int64
	RemoteMessages int64
	// LocalMessageBytes/RemoteMessageBytes are the corresponding payload
	// byte counts.
	LocalMessageBytes  int64
	RemoteMessageBytes int64
	// SpilledBytes counts message bytes written to disk when the
	// worker's in-memory message buffer overflows (§3.3: a candidate
	// feature "if spilling occurs"; Giraph 0.1.0 could not spill, so the
	// default oracle disables it).
	SpilledBytes int64
}

// Add accumulates o into l.
func (l *WorkerLoad) Add(o WorkerLoad) {
	l.ActiveVertices += o.ActiveVertices
	l.TotalVertices += o.TotalVertices
	l.LocalMessages += o.LocalMessages
	l.RemoteMessages += o.RemoteMessages
	l.LocalMessageBytes += o.LocalMessageBytes
	l.RemoteMessageBytes += o.RemoteMessageBytes
	l.SpilledBytes += o.SpilledBytes
}

// Messages returns total messages sent by the worker this superstep.
func (l WorkerLoad) Messages() int64 { return l.LocalMessages + l.RemoteMessages }

// MessageBytes returns total payload bytes sent by the worker.
func (l WorkerLoad) MessageBytes() int64 { return l.LocalMessageBytes + l.RemoteMessageBytes }

// CostOracle converts worker loads into simulated seconds. All rates are
// seconds per unit. It plays the role of the physical cluster: the "actual
// runtime" of every experiment in this repository is the oracle's output.
type CostOracle struct {
	// PerActiveVertex is the fixed compute cost of one vertex-program
	// invocation (the paper's "constant cost factor" for local computation).
	PerActiveVertex float64
	// PerVertexScan is the per-allocated-vertex bookkeeping cost paid every
	// superstep regardless of activity.
	PerVertexScan float64
	// PerLocalMessage/PerLocalByte price messages that stay on the worker
	// (memory copies).
	PerLocalMessage float64
	PerLocalByte    float64
	// PerRemoteMessage/PerRemoteByte price messages crossing the network;
	// on a 1 Gbps cluster these dominate (assumption v, §3.1).
	PerRemoteMessage float64
	PerRemoteByte    float64
	// BarrierOverhead is the fixed synchronization cost per superstep
	// (master coordination + barrier latency).
	BarrierOverhead float64
	// SetupSeconds is the fixed job setup cost (Hadoop job launch, worker
	// allocation). Dominates very short sample runs, as in Table 3.
	SetupSeconds float64
	// ReadPerVertex/ReadPerEdge price loading the input graph from the
	// distributed filesystem into worker memory.
	ReadPerVertex float64
	ReadPerEdge   float64
	// WritePerVertex prices writing the output back.
	WritePerVertex float64
	// SpillThresholdBytes is the per-worker in-memory message buffer; a
	// superstep whose message bytes exceed it spills the excess to disk
	// at PerSpillByte seconds per byte. Zero disables spilling (Giraph
	// 0.1.0 behaviour: it runs out of memory instead, see
	// MemoryBudgetBytes).
	SpillThresholdBytes int64
	PerSpillByte        float64
	// NoiseStdDev is the relative standard deviation of multiplicative
	// noise applied to each worker's superstep time.
	NoiseStdDev float64
	// StragglerProb/StragglerFactor model the occasional slow worker
	// (JVM pauses, disk contention): with StragglerProb a worker's
	// superstep time is multiplied by StragglerFactor. Stragglers give
	// the critical-path time a heavy upper tail, which is what keeps
	// real cost-model fits below R² = 1 (the paper reports 0.82–0.99).
	StragglerProb   float64
	StragglerFactor float64
	// MemoryBudgetBytes caps the simulated cluster memory available for
	// graph + in-flight messages; exceeding it aborts the run like
	// Giraph's OOM on the Twitter dataset (§5, "Memory Limits").
	// Zero means unlimited.
	MemoryBudgetBytes int64
}

// DefaultOracle returns cost factors loosely calibrated so that full runs
// of the dataset stand-ins land in the hundreds-to-thousands of simulated
// seconds, matching the magnitude of the paper's Table 3.
func DefaultOracle() CostOracle {
	return CostOracle{
		PerActiveVertex:   5.0e-6,
		PerVertexScan:     2.0e-7,
		PerLocalMessage:   1.5e-5,
		PerLocalByte:      4.0e-7,
		PerRemoteMessage:  6.0e-5,
		PerRemoteByte:     3.0e-6,
		BarrierOverhead:   0.9,
		SetupSeconds:      38,
		ReadPerVertex:     9.0e-6,
		ReadPerEdge:       1.1e-6,
		WritePerVertex:    6.0e-6,
		NoiseStdDev:       0.05,
		StragglerProb:     0.03,
		StragglerFactor:   1.6,
		MemoryBudgetBytes: 400 << 20, // reproduces Giraph's OOM on Twitter-scale message loads
	}
}

// WorkerSeconds prices one worker's superstep. The rng applies
// multiplicative noise; pass nil for the noiseless expectation.
func (o CostOracle) WorkerSeconds(l WorkerLoad, rng *rand.Rand) float64 {
	t := o.PerActiveVertex*float64(l.ActiveVertices) +
		o.PerVertexScan*float64(l.TotalVertices) +
		o.PerLocalMessage*float64(l.LocalMessages) +
		o.PerLocalByte*float64(l.LocalMessageBytes) +
		o.PerRemoteMessage*float64(l.RemoteMessages) +
		o.PerRemoteByte*float64(l.RemoteMessageBytes) +
		o.PerSpillByte*float64(l.SpilledBytes)
	if rng != nil && o.NoiseStdDev > 0 {
		mul := 1 + o.NoiseStdDev*rng.NormFloat64()
		if mul < 0.5 {
			mul = 0.5 // clamp pathological draws
		}
		t *= mul
	}
	if rng != nil && o.StragglerProb > 0 && rng.Float64() < o.StragglerProb {
		t *= o.StragglerFactor
	}
	return t
}

// SuperstepSeconds prices a whole superstep: the slowest worker (critical
// path, §3.3 "synchronization phase") plus the barrier overhead.
func (o CostOracle) SuperstepSeconds(workerSeconds []float64) float64 {
	maxT := 0.0
	for _, t := range workerSeconds {
		if t > maxT {
			maxT = t
		}
	}
	return maxT + o.BarrierOverhead
}

// ReadSeconds prices the read phase for a graph of n vertices and m edges
// split across workers.
func (o CostOracle) ReadSeconds(n, m int64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	return (o.ReadPerVertex*float64(n) + o.ReadPerEdge*float64(m)) / float64(workers)
}

// WriteSeconds prices the write phase.
func (o CostOracle) WriteSeconds(n int64, workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	return o.WritePerVertex * float64(n) / float64(workers)
}
