package cluster

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestWorkerLoadAdd(t *testing.T) {
	a := WorkerLoad{ActiveVertices: 1, TotalVertices: 2, LocalMessages: 3,
		RemoteMessages: 4, LocalMessageBytes: 5, RemoteMessageBytes: 6}
	b := a
	a.Add(b)
	if a.ActiveVertices != 2 || a.RemoteMessageBytes != 12 {
		t.Errorf("Add: got %+v", a)
	}
	if a.Messages() != 14 {
		t.Errorf("Messages = %d, want 14", a.Messages())
	}
	if a.MessageBytes() != 22 {
		t.Errorf("MessageBytes = %d, want 22", a.MessageBytes())
	}
}

func TestWorkerSecondsNoiseless(t *testing.T) {
	o := CostOracle{
		PerActiveVertex:  1,
		PerLocalMessage:  10,
		PerRemoteMessage: 100,
	}
	l := WorkerLoad{ActiveVertices: 2, LocalMessages: 3, RemoteMessages: 4}
	got := o.WorkerSeconds(l, nil)
	want := 2.0 + 30 + 400
	if got != want {
		t.Errorf("WorkerSeconds = %v, want %v", got, want)
	}
}

func TestWorkerSecondsNoiseIsBoundedAndSeeded(t *testing.T) {
	o := DefaultOracle()
	o.NoiseStdDev = 0.05
	l := WorkerLoad{ActiveVertices: 1e6, RemoteMessages: 1e6, RemoteMessageBytes: 8e6}
	base := o.WorkerSeconds(l, nil)
	rng1 := rand.New(rand.NewPCG(1, 2))
	rng2 := rand.New(rand.NewPCG(1, 2))
	t1 := o.WorkerSeconds(l, rng1)
	t2 := o.WorkerSeconds(l, rng2)
	if t1 != t2 {
		t.Error("same seed produced different noisy times")
	}
	if math.Abs(t1-base)/base > 0.5 {
		t.Errorf("noise moved time by more than 50%%: %v vs %v", t1, base)
	}
}

func TestSuperstepSecondsIsCriticalPath(t *testing.T) {
	o := CostOracle{BarrierOverhead: 1}
	got := o.SuperstepSeconds([]float64{1, 5, 3})
	if got != 6 {
		t.Errorf("SuperstepSeconds = %v, want 6 (max 5 + barrier 1)", got)
	}
}

func TestReadWriteSeconds(t *testing.T) {
	o := CostOracle{ReadPerVertex: 2, ReadPerEdge: 1, WritePerVertex: 4}
	if got := o.ReadSeconds(10, 100, 2); got != (20+100)/2.0 {
		t.Errorf("ReadSeconds = %v, want 60", got)
	}
	if got := o.WriteSeconds(10, 2); got != 20 {
		t.Errorf("WriteSeconds = %v, want 20", got)
	}
	// Zero workers must not divide by zero.
	if got := o.ReadSeconds(10, 0, 0); got != 20 {
		t.Errorf("ReadSeconds with 0 workers = %v, want 20", got)
	}
}

func TestDefaultOracleShape(t *testing.T) {
	o := DefaultOracle()
	if o.PerRemoteMessage <= o.PerLocalMessage {
		t.Error("remote messages should cost more than local ones")
	}
	if o.PerRemoteByte <= o.PerLocalByte {
		t.Error("remote bytes should cost more than local ones")
	}
	if o.SetupSeconds <= 0 || o.BarrierOverhead <= 0 {
		t.Error("fixed overheads must be positive to reproduce Table 3 shape")
	}
	if o.MemoryBudgetBytes <= 0 {
		t.Error("default oracle should carry a finite memory budget")
	}
}
