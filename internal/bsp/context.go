package bsp

import (
	"predict/internal/cluster"
	"predict/internal/graph"
)

// Context is the per-worker execution context handed to Program.Compute.
// It routes messages, tracks the Table 1 counters, exposes aggregators and
// implements vote-to-halt. A Context is only valid for the duration of the
// Compute call that receives it.
type Context[M any] struct {
	g       *graph.Graph
	part    []int32
	worker  int
	workers int
	numVert int64

	superstep int
	current   VertexID
	load      cluster.WorkerLoad
	agg       map[string]float64
	prevAgg   map[string]float64
	halted    []bool
	outbox    [][]envelope[M]
	combiner  Combiner[M]
	prog      interface{ MessageBytes(m M) int }

	// next-superstep inboxes, owned by the engine; a worker only writes
	// entries for vertices it owns (local sends).
	nextOne  []M
	nextHas  []bool
	nextList [][]M
}

// Superstep returns the current 0-based superstep index.
func (c *Context[M]) Superstep() int { return c.superstep }

// NumVertices returns the number of vertices in the graph.
func (c *Context[M]) NumVertices() int64 { return c.numVert }

// Graph returns the input graph (read-only by convention).
func (c *Context[M]) Graph() *graph.Graph { return c.g }

// Worker returns the executing worker's index.
func (c *Context[M]) Worker() int { return c.worker }

// Send delivers message m to vertex dst at the next superstep, updating
// the local/remote counters according to dst's worker.
func (c *Context[M]) Send(dst VertexID, m M) {
	bytes := int64(c.prog.MessageBytes(m))
	if int(c.part[dst]) == c.worker {
		c.load.LocalMessages++
		c.load.LocalMessageBytes += bytes
		if c.combiner != nil {
			if c.nextHas[dst] {
				c.nextOne[dst] = c.combiner(c.nextOne[dst], m)
			} else {
				c.nextOne[dst] = m
				c.nextHas[dst] = true
			}
		} else {
			c.nextList[dst] = append(c.nextList[dst], m)
		}
		return
	}
	w := int(c.part[dst])
	c.load.RemoteMessages++
	c.load.RemoteMessageBytes += bytes
	c.outbox[w] = append(c.outbox[w], envelope[M]{dst: dst, m: m})
}

// SendToNeighbors sends m to every out-neighbor of v.
func (c *Context[M]) SendToNeighbors(v VertexID, m M) {
	for _, dst := range c.g.OutNeighbors(v) {
		c.Send(dst, m)
	}
}

// VoteToHalt deactivates the current vertex; a subsequent message
// reactivates it (Pregel semantics).
func (c *Context[M]) VoteToHalt() {
	c.halted[c.current] = true
}

// AddToAggregate accumulates v into the named global aggregator. The merged
// value is visible to the master's halt predicate after this superstep and
// to all vertices (via Aggregate) during the next superstep.
func (c *Context[M]) AddToAggregate(name string, v float64) {
	c.agg[name] += v
}

// Aggregate returns the named aggregator's merged value from the previous
// superstep (0 for the first superstep or unknown names).
func (c *Context[M]) Aggregate(name string) float64 {
	return c.prevAgg[name]
}
