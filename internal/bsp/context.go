package bsp

import (
	"predict/internal/cluster"
	"predict/internal/graph"
)

// Context is the per-worker execution context handed to Program.Compute.
// It routes messages, tracks the Table 1 counters, exposes aggregators and
// implements vote-to-halt. A Context is only valid for the duration of the
// Compute call that receives it.
//
// Contexts are persistent: the engine creates one per worker for the whole
// run and all hot-path state — outboxes, send-side combining slots,
// aggregator arrays — is reused across supersteps, invalidated lazily by
// an epoch stamp instead of being reallocated or cleared. Send and
// AddToAggregate are therefore allocation-free in the steady state.
type Context[M any] struct {
	g       *graph.Graph
	part    []int32
	worker  int
	workers int
	numVert int64

	superstep int
	epoch     uint32 // superstep+1; stamps slots and aggregates as live
	current   VertexID
	load      cluster.WorkerLoad
	halted    []bool
	combiner  Combiner[M]
	prog      interface{ MessageBytes(m M) int }
	// fixedBytes caches FixedSizeMessager.FixedMessageBytes (-1 when the
	// program's messages are variable-size), sparing the per-send
	// interface call on the dominant fixed-size programs.
	fixedBytes int

	// scratch backs the one-element message slice handed to Compute on
	// the combiner path.
	scratch [1]M

	// Slice-backed aggregators: names are interned once into aggIdx and
	// accumulate into aggVals; aggEpoch marks which names were touched
	// this superstep (stale values are reset on first touch, so there is
	// no per-superstep clearing pass and the master merges exactly the
	// names touched this superstep, like the historical fresh-map path).
	aggIdx   map[string]int
	aggNames []string
	aggVals  []float64
	aggEpoch []uint32
	prevAgg  map[string]float64

	// Remote sends, one of two reusable forms. Without an exact combiner:
	// one envelope per message, per destination worker (outbox[dw]),
	// truncated and reused each superstep. With an exact combiner: one
	// dense combined slot per destination vertex (slot/slotEpoch) plus
	// the first-touch order per destination worker (touched[dw]) — at
	// most one combined value per (sender, destination vertex) pair.
	outbox    [][]envelope[M]
	slot      []M
	slotEpoch []uint32
	touched   [][]VertexID

	// next-superstep inboxes, owned by the engine; a worker only writes
	// entries for vertices it owns (local sends).
	nextOne  []M
	nextHas  []bool
	nextList [][]M
}

// Superstep returns the current 0-based superstep index.
func (c *Context[M]) Superstep() int { return c.superstep }

// NumVertices returns the number of vertices in the graph.
func (c *Context[M]) NumVertices() int64 { return c.numVert }

// Graph returns the input graph (read-only by convention).
func (c *Context[M]) Graph() *graph.Graph { return c.g }

// Worker returns the executing worker's index.
func (c *Context[M]) Worker() int { return c.worker }

// Send delivers message m to vertex dst at the next superstep, updating
// the local/remote counters according to dst's worker. Counters are
// always per message sent — combining collapses storage and delivery
// work, never the counted load.
func (c *Context[M]) Send(dst VertexID, m M) {
	bytes := int64(c.fixedBytes)
	if bytes < 0 {
		bytes = int64(c.prog.MessageBytes(m))
	}
	if int(c.part[dst]) == c.worker {
		c.load.LocalMessages++
		c.load.LocalMessageBytes += bytes
		if c.combiner != nil {
			if c.nextHas[dst] {
				c.nextOne[dst] = c.combiner(c.nextOne[dst], m)
			} else {
				c.nextOne[dst] = m
				c.nextHas[dst] = true
			}
		} else {
			c.nextList[dst] = append(c.nextList[dst], m)
		}
		return
	}
	w := int(c.part[dst])
	c.load.RemoteMessages++
	c.load.RemoteMessageBytes += bytes
	if c.slot != nil {
		// Send-side combining (exact combiners only): fold into the dense
		// per-destination slot; only the first touch records the envelope.
		if c.slotEpoch[dst] == c.epoch {
			c.slot[dst] = c.combiner(c.slot[dst], m)
		} else {
			c.slot[dst] = m
			c.slotEpoch[dst] = c.epoch
			c.touched[w] = append(c.touched[w], dst)
		}
		return
	}
	c.outbox[w] = append(c.outbox[w], envelope[M]{dst: dst, m: m})
}

// SendToNeighbors sends m to every out-neighbor of v.
func (c *Context[M]) SendToNeighbors(v VertexID, m M) {
	for _, dst := range c.g.OutNeighbors(v) {
		c.Send(dst, m)
	}
}

// VoteToHalt deactivates the current vertex; a subsequent message
// reactivates it (Pregel semantics).
func (c *Context[M]) VoteToHalt() {
	c.halted[c.current] = true
}

// AddToAggregate accumulates v into the named global aggregator. The merged
// value is visible to the master's halt predicate after this superstep and
// to all vertices (via Aggregate) during the next superstep.
func (c *Context[M]) AddToAggregate(name string, v float64) {
	i, ok := c.aggIdx[name]
	if !ok {
		i = len(c.aggNames)
		c.aggIdx[name] = i
		c.aggNames = append(c.aggNames, name)
		c.aggVals = append(c.aggVals, 0)
		c.aggEpoch = append(c.aggEpoch, 0)
	}
	if c.aggEpoch[i] != c.epoch {
		c.aggEpoch[i] = c.epoch
		c.aggVals[i] = 0
	}
	c.aggVals[i] += v
}

// Aggregate returns the named aggregator's merged value from the previous
// superstep (0 for the first superstep or unknown names).
func (c *Context[M]) Aggregate(name string) float64 {
	return c.prevAgg[name]
}
