// Package bsp implements a Pregel/Giraph-style Bulk Synchronous Parallel
// graph-processing engine (§2.2 of the paper): vertex-centric programs run
// in supersteps, exchanging messages that are delivered at the next
// superstep, with vote-to-halt semantics, optional combiners, global
// aggregators and a master-side convergence predicate.
//
// The engine executes genuinely in parallel (one goroutine per worker) and
// maintains the per-worker, per-superstep counters of the paper's Table 1
// (active vertices, local/remote message counts and bytes). A
// cluster.CostOracle converts those counters into simulated cluster
// seconds, which stand in for the wall-clock runtimes of the paper's
// 10-node Giraph deployment.
package bsp

import (
	"errors"
	"fmt"

	"predict/internal/cluster"
	"predict/internal/graph"
)

// VertexID aliases graph.VertexID for convenience.
type VertexID = graph.VertexID

// ErrOutOfMemory reports that a superstep's in-flight messages exceeded the
// simulated cluster memory budget, mirroring Giraph's inability to spill
// messages to disk (§5, "Memory Limits").
var ErrOutOfMemory = errors.New("bsp: simulated cluster memory budget exceeded")

// ErrNoConvergence reports that MaxSupersteps elapsed before the program
// halted or the convergence predicate fired.
var ErrNoConvergence = errors.New("bsp: superstep limit reached before convergence")

// DefaultWorkers is the worker count used when Config.Workers is zero.
const DefaultWorkers = 8

// Config parameterizes an engine run.
type Config struct {
	// Workers is the number of BSP workers; the paper's setup has 29.
	// Zero selects 8.
	Workers int
	// MaxSupersteps bounds the run; zero selects 500.
	MaxSupersteps int
	// Seed drives the cost oracle's noise. Runs with equal seeds and equal
	// programs are bit-identical.
	Seed uint64
	// Oracle prices the simulated cluster. The zero value selects
	// cluster.DefaultOracle().
	Oracle *cluster.CostOracle
}

func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = DefaultWorkers
	}
	if c.MaxSupersteps == 0 {
		c.MaxSupersteps = 500
	}
	if c.Oracle == nil {
		o := cluster.DefaultOracle()
		c.Oracle = &o
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("bsp: negative worker count %d", c.Workers)
	}
	if c.MaxSupersteps < 0 {
		return fmt.Errorf("bsp: negative superstep limit %d", c.MaxSupersteps)
	}
	return nil
}

// Program is a vertex-centric BSP program with vertex values of type V and
// messages of type M.
type Program[V, M any] interface {
	// Init returns the initial value of vertex id.
	Init(g *graph.Graph, id VertexID) V
	// Compute processes the messages delivered to vertex id this superstep
	// and may send messages, update the value in place, vote to halt, and
	// contribute to aggregators via ctx.
	Compute(ctx *Context[M], id VertexID, value *V, messages []M)
	// MessageBytes reports the serialized payload size of a message, used
	// for the byte counters and the memory budget.
	MessageBytes(m M) int
}

// ValueSizer is an optional Program extension reporting per-vertex state
// size, used by the simulated memory budget. Programs with large vertex
// state (semi-clustering) should implement it.
type ValueSizer[V any] interface {
	ValueBytes(v V) int
}

// FixedSizeMessager is an optional Program extension declaring that every
// message serializes to the same number of bytes. The engine caches the
// size at setup and skips the per-send MessageBytes call on the hot path;
// the returned value must equal MessageBytes(m) for every m. Programs
// with variable-size messages (top-k lists, semi-clusters) simply do not
// implement it.
type FixedSizeMessager interface {
	FixedMessageBytes() int
}

// Combiner merges two messages destined for the same vertex (e.g. partial
// sums for PageRank), reducing memory and delivery cost exactly like
// Giraph combiners.
type Combiner[M any] func(a, b M) M

// SuperstepInfo is handed to the master's convergence predicate after
// every superstep.
type SuperstepInfo struct {
	// Superstep is the 0-based superstep index that just completed.
	Superstep int
	// ActiveVertices is the number of compute invocations this superstep.
	ActiveVertices int64
	// SentMessages is the number of messages sent this superstep.
	SentMessages int64
	// Aggregates holds the merged aggregator values for this superstep.
	Aggregates map[string]float64
	// NumVertices is the graph size, for ratio-style conditions.
	NumVertices int64
}

// HaltPredicate is evaluated by the master after each superstep; returning
// true terminates the run (the algorithm's convergence condition).
type HaltPredicate func(info SuperstepInfo) bool

// Result is the outcome of an engine run.
type Result[V any] struct {
	// Values holds the final vertex values, indexed by vertex.
	Values []V
	// Supersteps is the number of supersteps executed (the paper's
	// "number of iterations" feature).
	Supersteps int
	// Converged is false if the run stopped at MaxSupersteps.
	Converged bool
	// Profile carries all per-superstep, per-worker measurements.
	Profile *Profile
}
