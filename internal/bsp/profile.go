package bsp

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"predict/internal/cluster"
)

// SuperstepProfile records one superstep's measurements.
type SuperstepProfile struct {
	// Workers holds per-worker load counters (Table 1 features at worker
	// granularity).
	Workers []cluster.WorkerLoad
	// WorkerSeconds holds the oracle-priced per-worker times.
	WorkerSeconds []float64
	// Seconds is the superstep's simulated runtime: critical-path worker
	// plus barrier overhead.
	Seconds float64
	// Aggregates holds merged aggregator values.
	Aggregates map[string]float64
	// WallNanos is the real (host) compute time of the superstep.
	WallNanos int64
}

// Total returns the sum of all worker loads.
func (s *SuperstepProfile) Total() cluster.WorkerLoad {
	var t cluster.WorkerLoad
	for _, w := range s.Workers {
		t.Add(w)
	}
	return t
}

// Profile aggregates the measurements of a whole run. It is the raw
// material for feature extraction (internal/features) and cost-model
// training (internal/costmodel).
type Profile struct {
	NumWorkers    int
	GraphVertices int64
	GraphEdges    int64
	// WorkerVertices/WorkerOutEdges describe the partitioning: vertices
	// and outbound edges allocated to each worker. The worker with the
	// most outbound edges is the predicted critical path (§3.4).
	WorkerVertices []int64
	WorkerOutEdges []int64
	// Supersteps holds one entry per executed superstep.
	Supersteps []SuperstepProfile
	// Phase times in simulated seconds (§2.2 phase breakdown).
	SetupSeconds float64
	ReadSeconds  float64
	WriteSeconds float64
}

// CriticalWorker returns the index of the worker with the most outbound
// edges — the paper's static critical-path estimate, computable in the
// read phase before execution.
func (p *Profile) CriticalWorker() int {
	best, bestEdges := 0, int64(-1)
	for w, e := range p.WorkerOutEdges {
		if e > bestEdges {
			best, bestEdges = w, e
		}
	}
	return best
}

// CriticalShare returns the critical worker's fraction of all outbound
// edges. Multiplying graph-level feature totals by this share approximates
// the critical worker's load.
func (p *Profile) CriticalShare() float64 {
	if p.GraphEdges == 0 {
		return 0
	}
	return float64(p.WorkerOutEdges[p.CriticalWorker()]) / float64(p.GraphEdges)
}

// SuperstepPhaseSeconds sums the simulated seconds of all supersteps — the
// phase PREDIcT predicts (§2.2).
func (p *Profile) SuperstepPhaseSeconds() float64 {
	var t float64
	for i := range p.Supersteps {
		t += p.Supersteps[i].Seconds
	}
	return t
}

// TotalSeconds is the end-to-end simulated runtime including setup, read
// and write phases (the quantity in Table 3).
func (p *Profile) TotalSeconds() float64 {
	return p.SetupSeconds + p.ReadSeconds + p.SuperstepPhaseSeconds() + p.WriteSeconds
}

// Iterations is the number of executed supersteps.
func (p *Profile) Iterations() int { return len(p.Supersteps) }

// Fingerprint digests every simulation-visible bit of the profile into a
// short hex string: partitioning, per-superstep per-worker counters,
// worker seconds, superstep seconds and aggregates (exact float64 bits),
// and the phase times. WallNanos is excluded — it is host timing, not
// simulation output. Two runs are bit-identical iff their fingerprints
// match, which is what the engine-determinism regression tests pin.
func (p *Profile) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int64) { wu(uint64(v)) }
	wf := func(v float64) { wu(math.Float64bits(v)) }

	wi(int64(p.NumWorkers))
	wi(p.GraphVertices)
	wi(p.GraphEdges)
	for _, v := range p.WorkerVertices {
		wi(v)
	}
	for _, v := range p.WorkerOutEdges {
		wi(v)
	}
	wf(p.SetupSeconds)
	wf(p.ReadSeconds)
	wf(p.WriteSeconds)
	for i := range p.Supersteps {
		sp := &p.Supersteps[i]
		for _, l := range sp.Workers {
			wi(l.ActiveVertices)
			wi(l.TotalVertices)
			wi(l.LocalMessages)
			wi(l.RemoteMessages)
			wi(l.LocalMessageBytes)
			wi(l.RemoteMessageBytes)
			wi(l.SpilledBytes)
		}
		for _, s := range sp.WorkerSeconds {
			wf(s)
		}
		wf(sp.Seconds)
		names := make([]string, 0, len(sp.Aggregates))
		for k := range sp.Aggregates {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			h.Write([]byte(k))
			wf(sp.Aggregates[k])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
