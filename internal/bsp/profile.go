package bsp

import (
	"predict/internal/cluster"
)

// SuperstepProfile records one superstep's measurements.
type SuperstepProfile struct {
	// Workers holds per-worker load counters (Table 1 features at worker
	// granularity).
	Workers []cluster.WorkerLoad
	// WorkerSeconds holds the oracle-priced per-worker times.
	WorkerSeconds []float64
	// Seconds is the superstep's simulated runtime: critical-path worker
	// plus barrier overhead.
	Seconds float64
	// Aggregates holds merged aggregator values.
	Aggregates map[string]float64
	// WallNanos is the real (host) compute time of the superstep.
	WallNanos int64
}

// Total returns the sum of all worker loads.
func (s *SuperstepProfile) Total() cluster.WorkerLoad {
	var t cluster.WorkerLoad
	for _, w := range s.Workers {
		t.Add(w)
	}
	return t
}

// Profile aggregates the measurements of a whole run. It is the raw
// material for feature extraction (internal/features) and cost-model
// training (internal/costmodel).
type Profile struct {
	NumWorkers    int
	GraphVertices int64
	GraphEdges    int64
	// WorkerVertices/WorkerOutEdges describe the partitioning: vertices
	// and outbound edges allocated to each worker. The worker with the
	// most outbound edges is the predicted critical path (§3.4).
	WorkerVertices []int64
	WorkerOutEdges []int64
	// Supersteps holds one entry per executed superstep.
	Supersteps []SuperstepProfile
	// Phase times in simulated seconds (§2.2 phase breakdown).
	SetupSeconds float64
	ReadSeconds  float64
	WriteSeconds float64
}

// CriticalWorker returns the index of the worker with the most outbound
// edges — the paper's static critical-path estimate, computable in the
// read phase before execution.
func (p *Profile) CriticalWorker() int {
	best, bestEdges := 0, int64(-1)
	for w, e := range p.WorkerOutEdges {
		if e > bestEdges {
			best, bestEdges = w, e
		}
	}
	return best
}

// CriticalShare returns the critical worker's fraction of all outbound
// edges. Multiplying graph-level feature totals by this share approximates
// the critical worker's load.
func (p *Profile) CriticalShare() float64 {
	if p.GraphEdges == 0 {
		return 0
	}
	return float64(p.WorkerOutEdges[p.CriticalWorker()]) / float64(p.GraphEdges)
}

// SuperstepPhaseSeconds sums the simulated seconds of all supersteps — the
// phase PREDIcT predicts (§2.2).
func (p *Profile) SuperstepPhaseSeconds() float64 {
	var t float64
	for i := range p.Supersteps {
		t += p.Supersteps[i].Seconds
	}
	return t
}

// TotalSeconds is the end-to-end simulated runtime including setup, read
// and write phases (the quantity in Table 3).
func (p *Profile) TotalSeconds() float64 {
	return p.SetupSeconds + p.ReadSeconds + p.SuperstepPhaseSeconds() + p.WriteSeconds
}

// Iterations is the number of executed supersteps.
func (p *Profile) Iterations() int { return len(p.Supersteps) }
