package bsp

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"predict/internal/cluster"
	"predict/internal/graph"
)

// envelope is a message in flight to a vertex on another worker.
type envelope[M any] struct {
	dst VertexID
	m   M
}

// Engine executes a Program over a graph under a Config. Engines are
// single-use: construct, configure, Run once.
type Engine[V, M any] struct {
	g        *graph.Graph
	prog     Program[V, M]
	cfg      Config
	combiner Combiner[M]
	halt     HaltPredicate
}

// NewEngine returns an engine for program p over graph g.
func NewEngine[V, M any](g *graph.Graph, p Program[V, M], cfg Config) *Engine[V, M] {
	return &Engine[V, M]{g: g, prog: p, cfg: cfg.withDefaults()}
}

// SetCombiner installs a message combiner (optional).
func (e *Engine[V, M]) SetCombiner(c Combiner[M]) { e.combiner = c }

// SetHalt installs the master-side convergence predicate (optional). When
// nil, the run terminates only when every vertex has voted to halt and no
// messages are in flight.
func (e *Engine[V, M]) SetHalt(h HaltPredicate) { e.halt = h }

// partitionWorker maps a vertex to its worker with a multiplicative hash,
// emulating Giraph's hash partitioning.
func partitionWorker(v VertexID, workers int) int {
	return int((uint64(uint32(v)) * 2654435761) % uint64(workers))
}

// Run executes the program to convergence and returns the final vertex
// values plus the full execution profile. It returns ErrOutOfMemory if the
// simulated memory budget is exceeded and ErrNoConvergence (with a partial
// result) if MaxSupersteps elapses first.
func (e *Engine[V, M]) Run() (*Result[V], error) {
	if err := e.cfg.Validate(); err != nil {
		return nil, err
	}
	n := e.g.NumVertices()
	W := e.cfg.Workers
	if W > n && n > 0 {
		W = n // never more workers than vertices
	}
	if n == 0 {
		return nil, fmt.Errorf("bsp: empty graph")
	}
	oracle := *e.cfg.Oracle
	rng := rand.New(rand.NewPCG(e.cfg.Seed, e.cfg.Seed^0xbf58476d1ce4e5b9))

	// ----- Setup phase: partition vertices onto workers.
	part := make([]int32, n)
	workerVerts := make([][]VertexID, W)
	workerOutEdges := make([]int64, W)
	for v := 0; v < n; v++ {
		w := partitionWorker(VertexID(v), W)
		part[v] = int32(w)
		workerVerts[w] = append(workerVerts[w], VertexID(v))
		workerOutEdges[w] += int64(e.g.OutDegree(VertexID(v)))
	}
	workerVertCounts := make([]int64, W)
	for w := range workerVerts {
		workerVertCounts[w] = int64(len(workerVerts[w]))
	}

	profile := &Profile{
		NumWorkers:     W,
		GraphVertices:  int64(n),
		GraphEdges:     e.g.NumEdges(),
		WorkerVertices: workerVertCounts,
		WorkerOutEdges: workerOutEdges,
		SetupSeconds:   oracle.SetupSeconds,
		ReadSeconds:    oracle.ReadSeconds(int64(n), e.g.NumEdges(), W),
		WriteSeconds:   oracle.WriteSeconds(int64(n), W),
	}

	// ----- Read phase: initialize vertex values (parallel per worker).
	values := make([]V, n)
	runWorkers(W, func(w int) {
		for _, v := range workerVerts[w] {
			values[v] = e.prog.Init(e.g, v)
		}
	})
	halted := make([]bool, n)

	// Message storage. With a combiner each vertex holds at most one
	// pending message; without one it holds a list.
	var (
		curList  [][]M
		nextList [][]M
		curOne   []M
		curHas   []bool
		nextOne  []M
		nextHas  []bool
	)
	if e.combiner != nil {
		curOne = make([]M, n)
		curHas = make([]bool, n)
		nextOne = make([]M, n)
		nextHas = make([]bool, n)
	} else {
		curList = make([][]M, n)
		nextList = make([][]M, n)
	}

	graphBytes := 8*e.g.NumEdges() + 16*int64(n)
	sizer, hasSizer := any(e.prog).(ValueSizer[V])

	contexts := make([]*Context[M], W)
	for w := 0; w < W; w++ {
		contexts[w] = &Context[M]{
			g:       e.g,
			part:    part,
			worker:  w,
			workers: W,
			numVert: int64(n),
		}
	}
	prevAgg := map[string]float64{}

	// ----- Superstep phase.
	converged := false
	for step := 0; step < e.cfg.MaxSupersteps; step++ {
		start := time.Now()
		// Reset per-superstep context state.
		for w := 0; w < W; w++ {
			c := contexts[w]
			c.superstep = step
			c.load = cluster.WorkerLoad{TotalVertices: workerVertCounts[w]}
			c.agg = map[string]float64{}
			c.prevAgg = prevAgg
			c.outbox = make([][]envelope[M], W)
			c.halted = halted
			c.combiner = e.combiner
			c.prog = e.prog
			c.nextOne = nextOne
			c.nextHas = nextHas
			c.nextList = nextList
		}

		// Compute phase: each worker scans its vertices.
		runWorkers(W, func(w int) {
			c := contexts[w]
			var scratch [1]M
			for _, v := range workerVerts[w] {
				var msgs []M
				if e.combiner != nil {
					if curHas[v] {
						scratch[0] = curOne[v]
						msgs = scratch[:1]
					}
				} else {
					msgs = curList[v]
				}
				if halted[v] && len(msgs) == 0 {
					continue
				}
				if len(msgs) > 0 {
					halted[v] = false // message receipt reactivates
				}
				c.load.ActiveVertices++
				c.current = v
				e.prog.Compute(c, v, &values[v], msgs)
			}
		})

		// Delivery phase: each worker merges remote envelopes targeting it.
		runWorkers(W, func(w int) {
			for sw := 0; sw < W; sw++ {
				for _, env := range contexts[sw].outbox[w] {
					if e.combiner != nil {
						if nextHas[env.dst] {
							nextOne[env.dst] = e.combiner(nextOne[env.dst], env.m)
						} else {
							nextOne[env.dst] = env.m
							nextHas[env.dst] = true
						}
					} else {
						nextList[env.dst] = append(nextList[env.dst], env.m)
					}
				}
			}
		})
		wallNanos := time.Since(start).Nanoseconds()

		// Master: merge aggregates deterministically, price the superstep.
		agg := map[string]float64{}
		for w := 0; w < W; w++ {
			keys := make([]string, 0, len(contexts[w].agg))
			for k := range contexts[w].agg {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				agg[k] += contexts[w].agg[k]
			}
		}
		loads := make([]cluster.WorkerLoad, W)
		workerSecs := make([]float64, W)
		var total cluster.WorkerLoad
		var msgBytesInMemory int64
		for w := 0; w < W; w++ {
			loads[w] = contexts[w].load
			// Serialized footprint: payload plus a fixed per-message
			// envelope. Anything over the spill threshold goes to disk.
			footprint := loads[w].MessageBytes() + 16*loads[w].Messages()
			if t := oracle.SpillThresholdBytes; t > 0 && footprint > t {
				loads[w].SpilledBytes = footprint - t
				footprint = t
			}
			msgBytesInMemory += footprint
			workerSecs[w] = oracle.WorkerSeconds(loads[w], rng)
			total.Add(loads[w])
		}
		sp := SuperstepProfile{
			Workers:       loads,
			WorkerSeconds: workerSecs,
			Seconds:       oracle.SuperstepSeconds(workerSecs),
			Aggregates:    agg,
			WallNanos:     wallNanos,
		}
		profile.Supersteps = append(profile.Supersteps, sp)

		// Memory budget: graph + vertex state + doubled message footprint
		// (outboxes plus inboxes), with a fixed per-message overhead.
		if oracle.MemoryBudgetBytes > 0 {
			var valueBytes int64
			if hasSizer {
				for i := range values {
					valueBytes += int64(sizer.ValueBytes(values[i]))
				}
			}
			// Spilled bytes live on disk, not in memory.
			est := graphBytes + valueBytes + 2*msgBytesInMemory
			if est > oracle.MemoryBudgetBytes {
				return &Result[V]{Values: values, Supersteps: step + 1, Profile: profile},
					fmt.Errorf("%w: superstep %d needs ~%d MiB, budget %d MiB",
						ErrOutOfMemory, step, est>>20, oracle.MemoryBudgetBytes>>20)
			}
		}

		prevAgg = agg

		// Termination checks.
		if e.halt != nil && e.halt(SuperstepInfo{
			Superstep:      step,
			ActiveVertices: total.ActiveVertices,
			SentMessages:   total.Messages(),
			Aggregates:     agg,
			NumVertices:    int64(n),
		}) {
			converged = true
		}
		if total.Messages() == 0 {
			allHalted := true
			for _, h := range halted {
				if !h {
					allHalted = false
					break
				}
			}
			if allHalted {
				converged = true
			}
		}

		// Swap message buffers.
		if e.combiner != nil {
			curOne, nextOne = nextOne, curOne
			curHas, nextHas = nextHas, curHas
			for i := range nextHas {
				nextHas[i] = false
			}
		} else {
			curList, nextList = nextList, curList
			for i := range nextList {
				nextList[i] = nextList[i][:0]
			}
		}

		if converged {
			break
		}
	}

	res := &Result[V]{
		Values:     values,
		Supersteps: len(profile.Supersteps),
		Converged:  converged,
		Profile:    profile,
	}
	if !converged {
		return res, fmt.Errorf("%w: %d supersteps", ErrNoConvergence, e.cfg.MaxSupersteps)
	}
	return res, nil
}

// runWorkers executes fn(w) for w in [0, workers) concurrently and waits.
func runWorkers(workers int, fn func(w int)) {
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
