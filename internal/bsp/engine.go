package bsp

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"predict/internal/cluster"
	"predict/internal/graph"
)

// envelope is a message in flight to a vertex on another worker.
type envelope[M any] struct {
	dst VertexID
	m   M
}

// Engine executes a Program over a graph under a Config. Engines are
// single-use: construct, configure, Run once.
//
// The superstep loop is engineered for near-zero steady-state heap
// allocation: W worker goroutines are spawned once and driven through
// phase barriers for the whole run (inline on the caller for W=1),
// outboxes and inboxes are reused across supersteps, aggregators are
// slice-backed behind an interned name table, and exact combiners are
// applied on the send side so remote traffic collapses to at most one
// combined slot per (sender, destination) pair. None of this is
// observable in the simulation: messages and bytes are counted at send
// time, so Profile counters, oracle pricing and fitted cost models are
// bit-identical to the historical per-superstep message path (pinned by
// the engine-determinism tests).
type Engine[V, M any] struct {
	g             *graph.Graph
	prog          Program[V, M]
	cfg           Config
	combiner      Combiner[M]
	exactCombiner bool
	halt          HaltPredicate
	partitioned   *graph.Partitioned
}

// NewEngine returns an engine for program p over graph g.
func NewEngine[V, M any](g *graph.Graph, p Program[V, M], cfg Config) *Engine[V, M] {
	return &Engine[V, M]{g: g, prog: p, cfg: cfg.withDefaults()}
}

// SetCombiner installs a message combiner (optional). The combiner is
// applied in a fixed, scheduling-independent order — eagerly for local
// messages, then per sending worker in worker order at delivery — so
// combiners that are only approximately associative (floating-point
// sums) still produce bit-identical results on every run. Combiners that
// are exact under regrouping should use SetExactCombiner, which
// additionally enables send-side combining.
func (e *Engine[V, M]) SetCombiner(c Combiner[M]) {
	e.combiner = c
	e.exactCombiner = false
}

// SetExactCombiner installs a combiner that is bit-exact under any
// grouping and ordering of its applications: associative and commutative
// at the bit level, like min, max, bitwise and/or, or integer addition —
// but not floating-point addition, whose rounding depends on grouping.
// For exact combiners the engine combines remote messages on the send
// side into one dense slot per destination vertex, so at most one
// combined value per (sender, destination) pair crosses the worker
// boundary regardless of how many messages were sent. Counters are
// unaffected (messages and bytes are counted at send time); only the
// host-side memory footprint and delivery work shrink.
func (e *Engine[V, M]) SetExactCombiner(c Combiner[M]) {
	e.combiner = c
	e.exactCombiner = true
}

// SetHalt installs the master-side convergence predicate (optional). When
// nil, the run terminates only when every vertex has voted to halt and no
// messages are in flight.
func (e *Engine[V, M]) SetHalt(h HaltPredicate) { e.halt = h }

// SetPartitioned switches the engine from hash placement to
// partition-owning placement: one persistent worker per partition of p,
// each scanning its contiguous vertex range through views that alias the
// shared (possibly mmap'd) CSR arrays — dense cache-friendly sweeps
// instead of hash-scattered ones. p must partition the engine's graph;
// Config.Workers is ignored in favor of p.NumPartitions().
//
// Placement is PREDICTION-VISIBLE: per-worker loads, critical-path
// seconds and Profile.Fingerprint all depend on which worker owns which
// vertex, so a partitioned run is a different (equally deterministic)
// execution than a hash-placed run, exactly as a Giraph job behaves under
// a different partitioner. The default therefore remains hash placement,
// keeping every historical pinned fingerprint intact; partitioned runs
// pin their own fingerprints in the engine partition tests.
func (e *Engine[V, M]) SetPartitioned(p *graph.Partitioned) { e.partitioned = p }

// partitionWorker maps a vertex to its worker with a multiplicative hash,
// emulating Giraph's hash partitioning.
func partitionWorker(v VertexID, workers int) int {
	return int((uint64(uint32(v)) * 2654435761) % uint64(workers))
}

// crew drives a fixed set of persistent worker goroutines through phase
// barriers: the master installs a phase body, kicks every worker, and
// waits for all of them — the two-spawns-per-superstep pattern replaced
// by two channel round-trips. A single-worker crew runs every phase
// inline on the master goroutine and never spawns.
type crew struct {
	workers int
	fn      func(w int) // current phase body; written only between phases
	kick    []chan struct{}
	wg      sync.WaitGroup
}

// startCrew launches the worker goroutines (none for a single worker).
func startCrew(workers int) *crew {
	c := &crew{workers: workers}
	if workers == 1 {
		return c
	}
	c.kick = make([]chan struct{}, workers)
	for w := range c.kick {
		c.kick[w] = make(chan struct{}, 1)
		go func(w int) {
			for range c.kick[w] {
				c.fn(w)
				c.wg.Done()
			}
		}(w)
	}
	return c
}

// phase runs fn(w) for every worker and returns when all have finished.
// The channel send publishes c.fn to the workers; wg.Wait publishes
// their writes back to the master.
func (c *crew) phase(fn func(w int)) {
	if c.workers == 1 {
		fn(0)
		return
	}
	c.fn = fn
	c.wg.Add(c.workers)
	for _, k := range c.kick {
		k <- struct{}{}
	}
	c.wg.Wait()
}

// stop terminates the worker goroutines. Safe to call more than once
// only via the single defer in Run.
func (c *crew) stop() {
	for _, k := range c.kick {
		close(k)
	}
}

// Run executes the program to convergence and returns the final vertex
// values plus the full execution profile. It returns ErrOutOfMemory if the
// simulated memory budget is exceeded and ErrNoConvergence (with a partial
// result) if MaxSupersteps elapses first.
func (e *Engine[V, M]) Run() (*Result[V], error) {
	if err := e.cfg.Validate(); err != nil {
		return nil, err
	}
	n := e.g.NumVertices()
	W := e.cfg.Workers
	if W > n && n > 0 {
		W = n // never more workers than vertices
	}
	if n == 0 {
		return nil, fmt.Errorf("bsp: empty graph")
	}
	oracle := *e.cfg.Oracle
	rng := rand.New(rand.NewPCG(e.cfg.Seed, e.cfg.Seed^0xbf58476d1ce4e5b9))

	// ----- Setup phase: place vertices onto workers. Default is the
	// hash placement (via the same assignHash that PartitionStats
	// predicts); SetPartitioned swaps in partition-owning placement where
	// workerVerts[w] is a contiguous sub-slice of one shared identity
	// array — W slice headers instead of W scattered vertex lists.
	var (
		part             []int32
		workerVerts      [][]VertexID
		workerOutEdges   []int64
		workerVertCounts []int64
	)
	if p := e.partitioned; p != nil {
		if p.Graph() != e.g {
			return nil, fmt.Errorf("bsp: SetPartitioned: partition is over a different graph")
		}
		W = p.NumPartitions()
		part = make([]int32, n)
		identity := make([]VertexID, n)
		for v := range identity {
			identity[v] = VertexID(v)
		}
		workerVerts = make([][]VertexID, W)
		workerOutEdges = make([]int64, W)
		workerVertCounts = make([]int64, W)
		for w := 0; w < W; w++ {
			lo, hi := p.Bounds(w)
			workerVerts[w] = identity[lo:hi]
			workerOutEdges[w] = p.View(w).NumEdges()
			workerVertCounts[w] = int64(hi - lo)
			for v := lo; v < hi; v++ {
				part[v] = int32(w)
			}
		}
	} else {
		part, workerVertCounts, workerOutEdges = assignHash(e.g, W)
		workerVerts = make([][]VertexID, W)
		for w := range workerVerts {
			workerVerts[w] = make([]VertexID, 0, workerVertCounts[w])
		}
		for v := 0; v < n; v++ {
			workerVerts[part[v]] = append(workerVerts[part[v]], VertexID(v))
		}
	}

	profile := &Profile{
		NumWorkers:     W,
		GraphVertices:  int64(n),
		GraphEdges:     e.g.NumEdges(),
		WorkerVertices: workerVertCounts,
		WorkerOutEdges: workerOutEdges,
		SetupSeconds:   oracle.SetupSeconds,
		ReadSeconds:    oracle.ReadSeconds(int64(n), e.g.NumEdges(), W),
		WriteSeconds:   oracle.WriteSeconds(int64(n), W),
	}

	// Message storage. With a combiner each vertex holds at most one
	// pending message; without one it holds a list. All buffers are
	// allocated once and reused for the whole run.
	useCombiner := e.combiner != nil
	var (
		curList  [][]M
		nextList [][]M
		curOne   []M
		curHas   []bool
		nextOne  []M
		nextHas  []bool
	)
	if useCombiner {
		curOne = make([]M, n)
		curHas = make([]bool, n)
		nextOne = make([]M, n)
		nextHas = make([]bool, n)
	} else {
		curList = make([][]M, n)
		nextList = make([][]M, n)
	}

	graphBytes := 8*e.g.NumEdges() + 16*int64(n)
	sizer, hasSizer := any(e.prog).(ValueSizer[V])
	fixedBytes := -1
	if fm, ok := any(e.prog).(FixedSizeMessager); ok {
		fixedBytes = fm.FixedMessageBytes()
	}

	values := make([]V, n)
	halted := make([]bool, n)

	// Persistent per-worker contexts: every buffer a superstep needs —
	// outboxes, combined-send slots, aggregator arrays — lives here and is
	// reused, so the steady-state loop allocates nothing per worker.
	contexts := make([]*Context[M], W)
	for w := 0; w < W; w++ {
		c := &Context[M]{
			g:          e.g,
			part:       part,
			worker:     w,
			workers:    W,
			numVert:    int64(n),
			prog:       e.prog,
			fixedBytes: fixedBytes,
			combiner:   e.combiner,
			halted:     halted,
			aggIdx:     map[string]int{},
			nextOne:    nextOne,
			nextHas:    nextHas,
			nextList:   nextList,
		}
		if W > 1 {
			if useCombiner && e.exactCombiner {
				// Send-side combining: one dense combined slot per
				// destination vertex, plus the first-touch order per
				// destination worker (the deterministic delivery order).
				c.slot = make([]M, n)
				c.slotEpoch = make([]uint32, n)
				c.touched = make([][]VertexID, W)
			} else {
				c.outbox = make([][]envelope[M], W)
			}
		}
		contexts[w] = c
	}

	workers := startCrew(W)
	defer workers.stop()

	// ----- Read phase: initialize vertex values (parallel per worker).
	workers.phase(func(w int) {
		for _, v := range workerVerts[w] {
			values[v] = e.prog.Init(e.g, v)
		}
	})

	// Phase bodies are built once; per-superstep state reaches them
	// through the contexts and the captured buffer variables.
	computePhase := func(w int) {
		c := contexts[w]
		for _, v := range workerVerts[w] {
			var msgs []M
			if useCombiner {
				if curHas[v] {
					c.scratch[0] = curOne[v]
					msgs = c.scratch[:1]
				}
			} else {
				msgs = curList[v]
			}
			if halted[v] && len(msgs) == 0 {
				continue
			}
			if len(msgs) > 0 {
				halted[v] = false // message receipt reactivates
			}
			c.load.ActiveVertices++
			c.current = v
			e.prog.Compute(c, v, &values[v], msgs)
		}
	}
	// Delivery merges remote sends targeting worker w, sender by sender in
	// worker order — the fixed merge order that keeps combiner application
	// bit-reproducible (and, for non-exact combiners, bit-identical to the
	// historical per-message path).
	deliverPhase := func(w int) {
		for sw := 0; sw < W; sw++ {
			c := contexts[sw]
			if c.slot != nil {
				for _, dst := range c.touched[w] {
					if nextHas[dst] {
						nextOne[dst] = e.combiner(nextOne[dst], c.slot[dst])
					} else {
						nextOne[dst] = c.slot[dst]
						nextHas[dst] = true
					}
				}
				continue
			}
			for _, env := range c.outbox[w] {
				if useCombiner {
					if nextHas[env.dst] {
						nextOne[env.dst] = e.combiner(nextOne[env.dst], env.m)
					} else {
						nextOne[env.dst] = env.m
						nextHas[env.dst] = true
					}
				} else {
					nextList[env.dst] = append(nextList[env.dst], env.m)
				}
			}
		}
	}

	prevAgg := map[string]float64{}

	// ----- Superstep phase.
	converged := false
	for step := 0; step < e.cfg.MaxSupersteps; step++ {
		start := time.Now()
		epoch := uint32(step + 1)
		// Reset per-superstep context state: truncate reused buffers,
		// advance the epoch that lazily invalidates slots and aggregates.
		for w := 0; w < W; w++ {
			c := contexts[w]
			c.superstep = step
			c.epoch = epoch
			c.load = cluster.WorkerLoad{TotalVertices: workerVertCounts[w]}
			c.prevAgg = prevAgg
			for i := range c.touched {
				c.touched[i] = c.touched[i][:0]
			}
			for i := range c.outbox {
				c.outbox[i] = c.outbox[i][:0]
			}
		}

		// Compute phase: each worker scans its vertices. Delivery phase:
		// each worker merges the remote sends targeting it (no remote
		// traffic exists on a single worker).
		workers.phase(computePhase)
		if W > 1 {
			workers.phase(deliverPhase)
		}
		wallNanos := time.Since(start).Nanoseconds()

		// Master: merge aggregates deterministically — per key, worker
		// contributions accumulate in worker order; the epoch gate keeps
		// the key set exactly the names touched this superstep.
		agg := map[string]float64{}
		for w := 0; w < W; w++ {
			c := contexts[w]
			for i, name := range c.aggNames {
				if c.aggEpoch[i] == epoch {
					agg[name] += c.aggVals[i]
				}
			}
		}
		loads := make([]cluster.WorkerLoad, W)
		workerSecs := make([]float64, W)
		var total cluster.WorkerLoad
		var msgBytesInMemory int64
		for w := 0; w < W; w++ {
			loads[w] = contexts[w].load
			// Serialized footprint: payload plus a fixed per-message
			// envelope. Anything over the spill threshold goes to disk.
			footprint := loads[w].MessageBytes() + 16*loads[w].Messages()
			if t := oracle.SpillThresholdBytes; t > 0 && footprint > t {
				loads[w].SpilledBytes = footprint - t
				footprint = t
			}
			msgBytesInMemory += footprint
			workerSecs[w] = oracle.WorkerSeconds(loads[w], rng)
			total.Add(loads[w])
		}
		sp := SuperstepProfile{
			Workers:       loads,
			WorkerSeconds: workerSecs,
			Seconds:       oracle.SuperstepSeconds(workerSecs),
			Aggregates:    agg,
			WallNanos:     wallNanos,
		}
		profile.Supersteps = append(profile.Supersteps, sp)

		// Memory budget: graph + vertex state + doubled message footprint
		// (outboxes plus inboxes), with a fixed per-message overhead.
		if oracle.MemoryBudgetBytes > 0 {
			var valueBytes int64
			if hasSizer {
				for i := range values {
					valueBytes += int64(sizer.ValueBytes(values[i]))
				}
			}
			// Spilled bytes live on disk, not in memory.
			est := graphBytes + valueBytes + 2*msgBytesInMemory
			if est > oracle.MemoryBudgetBytes {
				return &Result[V]{Values: values, Supersteps: step + 1, Profile: profile},
					fmt.Errorf("%w: superstep %d needs ~%d MiB, budget %d MiB",
						ErrOutOfMemory, step, est>>20, oracle.MemoryBudgetBytes>>20)
			}
		}

		prevAgg = agg

		// Termination checks.
		if e.halt != nil && e.halt(SuperstepInfo{
			Superstep:      step,
			ActiveVertices: total.ActiveVertices,
			SentMessages:   total.Messages(),
			Aggregates:     agg,
			NumVertices:    int64(n),
		}) {
			converged = true
		}
		if total.Messages() == 0 {
			allHalted := true
			for _, h := range halted {
				if !h {
					allHalted = false
					break
				}
			}
			if allHalted {
				converged = true
			}
		}

		// Swap message buffers.
		if useCombiner {
			curOne, nextOne = nextOne, curOne
			curHas, nextHas = nextHas, curHas
			for i := range nextHas {
				nextHas[i] = false
			}
		} else {
			curList, nextList = nextList, curList
			for i := range nextList {
				nextList[i] = nextList[i][:0]
			}
		}
		// Re-point the contexts at the swapped next-superstep inboxes.
		for w := 0; w < W; w++ {
			c := contexts[w]
			c.nextOne, c.nextHas, c.nextList = nextOne, nextHas, nextList
		}

		if converged {
			break
		}
	}

	res := &Result[V]{
		Values:     values,
		Supersteps: len(profile.Supersteps),
		Converged:  converged,
		Profile:    profile,
	}
	if !converged {
		return res, fmt.Errorf("%w: %d supersteps", ErrNoConvergence, e.cfg.MaxSupersteps)
	}
	return res, nil
}
