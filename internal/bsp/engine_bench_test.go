package bsp

import (
	"testing"

	"predict/internal/graph"
)

// benchGraph builds a deterministic mixed-degree graph: ring + arithmetic
// chords + a hub, the same shape the determinism tests pin, scaled up so
// the superstep loop dominates setup.
func benchGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(VertexID(i), VertexID((i+1)%n))
		if i%2 == 0 {
			b.AddEdge(VertexID(i), VertexID((i*7+3)%n))
		}
		if i%5 == 0 && i != 0 {
			b.AddEdge(VertexID(i), 0)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// rankShareProgram is the PageRank-shaped benchmark load: float64 rank
// shares to every neighbor, an aggregate per superstep, no vote-to-halt.
type rankShareProgram struct{ n float64 }

func (p rankShareProgram) Init(_ *graph.Graph, _ VertexID) float64 { return 1 / p.n }

func (p rankShareProgram) Compute(ctx *Context[float64], id VertexID, v *float64, msgs []float64) {
	var sum float64
	for _, m := range msgs {
		sum += m
	}
	if ctx.Superstep() > 0 {
		*v = 0.15/p.n + 0.85*sum
	}
	ctx.AddToAggregate("bench.delta", sum)
	if deg := ctx.Graph().OutDegree(id); deg > 0 {
		ctx.SendToNeighbors(id, *v/float64(deg))
	}
}

func (rankShareProgram) MessageBytes(float64) int { return 8 }
func (rankShareProgram) FixedMessageBytes() int   { return 8 }

// labelMinProgram is the Components-shaped benchmark load: VertexID label
// floods with an exact (min) combiner. It keeps all vertices active so
// every superstep does full work.
type labelMinProgram struct{}

func (labelMinProgram) Init(_ *graph.Graph, id VertexID) VertexID { return id }

func (labelMinProgram) Compute(ctx *Context[VertexID], id VertexID, label *VertexID, msgs []VertexID) {
	for _, m := range msgs {
		if m < *label {
			*label = m
		}
	}
	ctx.SendToNeighbors(id, *label)
}

func (labelMinProgram) MessageBytes(VertexID) int { return 4 }
func (labelMinProgram) FixedMessageBytes() int    { return 4 }

const benchSupersteps = 32

// haltAfter stops a benchmark run at a fixed superstep count so every
// measured Run executes the same loop.
func haltAfter(steps int) HaltPredicate {
	return func(info SuperstepInfo) bool { return info.Superstep >= steps-1 }
}

func benchConfig(workers int) Config {
	o := quietOracle()
	return Config{Workers: workers, Oracle: o, Seed: 1, MaxSupersteps: benchSupersteps + 1}
}

// runEngineBench measures one engine Run of benchSupersteps supersteps per
// iteration and reports per-superstep derived metrics alongside the
// standard allocs/op (which includes one-time setup: partitioning, value
// init, buffer allocation).
func runEngineBench[V, M any](b *testing.B, g *graph.Graph, workers int,
	newEngine func() *Engine[V, M]) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := newEngine()
		eng.SetHalt(haltAfter(benchSupersteps))
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*benchSupersteps), "ns/superstep")
}

func BenchmarkSuperstepPageRankCombiner(b *testing.B) {
	g := benchGraph(4000)
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "w1", 4: "w4"}[workers], func(b *testing.B) {
			runEngineBench(b, g, workers, func() *Engine[float64, float64] {
				eng := NewEngine[float64, float64](g, rankShareProgram{n: float64(g.NumVertices())}, benchConfig(workers))
				eng.SetCombiner(func(a, b float64) float64 { return a + b })
				return eng
			})
		})
	}
}

func BenchmarkSuperstepPageRankNoCombiner(b *testing.B) {
	g := benchGraph(4000)
	runEngineBench(b, g, 4, func() *Engine[float64, float64] {
		return NewEngine[float64, float64](g, rankShareProgram{n: float64(g.NumVertices())}, benchConfig(4))
	})
}

func BenchmarkSuperstepComponentsExactCombiner(b *testing.B) {
	g := benchGraph(4000)
	runEngineBench(b, g, 4, func() *Engine[VertexID, VertexID] {
		eng := NewEngine[VertexID, VertexID](g, labelMinProgram{}, benchConfig(4))
		eng.SetExactCombiner(func(a, b VertexID) VertexID {
			if a < b {
				return a
			}
			return b
		})
		return eng
	})
}

func BenchmarkSuperstepComponentsNoCombiner(b *testing.B) {
	g := benchGraph(4000)
	runEngineBench(b, g, 4, func() *Engine[VertexID, VertexID] {
		return NewEngine[VertexID, VertexID](g, labelMinProgram{}, benchConfig(4))
	})
}
