package bsp

import (
	"errors"
	"testing"

	"predict/internal/cluster"
)

func TestSpillCountersAndPricing(t *testing.T) {
	g := cycleGraph(100)
	o := quietOracle()
	o.SpillThresholdBytes = 100 // ~12 messages of 8 bytes per worker
	o.PerSpillByte = 1
	cfg := Config{Workers: 2, Oracle: o, Seed: 1}
	eng := NewEngine[int, int](g, maxProgram{}, cfg)
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Superstep 0: each worker sends 50 messages with a serialized
	// footprint of 8 payload + 16 envelope bytes = 1200 bytes, so 1100
	// bytes spill per worker.
	s0 := res.Profile.Supersteps[0]
	var spilled int64
	for _, w := range s0.Workers {
		spilled += w.SpilledBytes
	}
	if spilled != 2200 {
		t.Errorf("spilled = %d bytes, want 2200", spilled)
	}
	// Spill time must appear in the superstep price: 1100 bytes * 1
	// s/byte dominates everything else.
	if s0.Seconds < 1100 {
		t.Errorf("superstep seconds = %v, want >= 1100 (spill-priced)", s0.Seconds)
	}
}

func TestSpillPreventsOOM(t *testing.T) {
	// With spilling enabled, the same message load that would blow the
	// memory budget completes: spilled bytes do not count against memory.
	g := cycleGraph(2000)
	base := quietOracle()
	base.MemoryBudgetBytes = 40000 // graph fits (~48KB fails; tune below)

	// First confirm the budget is violated without spilling.
	o1 := *base
	o1.MemoryBudgetBytes = 8*g.NumEdges() + 16*int64(g.NumVertices()) + 20000
	eng1 := NewEngine[int, int](g, chattyProgram{}, Config{Workers: 2, Oracle: &o1, MaxSupersteps: 3})
	_, err := eng1.Run()
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM without spilling, got %v", err)
	}

	// Now enable spilling with a small in-memory buffer: no OOM.
	o2 := o1
	o2.SpillThresholdBytes = 1000
	o2.PerSpillByte = 1e-6
	eng2 := NewEngine[int, int](g, chattyProgram{}, Config{Workers: 2, Oracle: &o2, MaxSupersteps: 3})
	_, err = eng2.Run()
	if errors.Is(err, ErrOutOfMemory) {
		t.Fatal("OOM despite spilling")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSpillDisabledByDefault(t *testing.T) {
	o := cluster.DefaultOracle()
	if o.SpillThresholdBytes != 0 {
		t.Error("default oracle must not spill (Giraph 0.1.0 cannot)")
	}
}
