package bsp

import (
	"path/filepath"
	"testing"

	"predict/internal/graph"
)

func TestPartitionStatsConservation(t *testing.T) {
	g := starPlusRing(500)
	verts, edges := PartitionStats(g, 8)
	var vSum, eSum int64
	for w := range verts {
		vSum += verts[w]
		eSum += edges[w]
	}
	if vSum != int64(g.NumVertices()) {
		t.Errorf("vertex sum = %d, want %d", vSum, g.NumVertices())
	}
	if eSum != g.NumEdges() {
		t.Errorf("edge sum = %d, want %d", eSum, g.NumEdges())
	}
}

func TestPartitionStatsMatchesEngine(t *testing.T) {
	// The static partition stats must agree with what the engine records.
	g := starPlusRing(300)
	verts, edges := PartitionStats(g, 4)
	eng := NewEngine[int, int](g, maxProgram{}, testCfg(4))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if res.Profile.WorkerVertices[w] != verts[w] {
			t.Errorf("worker %d vertices: engine %d vs static %d",
				w, res.Profile.WorkerVertices[w], verts[w])
		}
		if res.Profile.WorkerOutEdges[w] != edges[w] {
			t.Errorf("worker %d edges: engine %d vs static %d",
				w, res.Profile.WorkerOutEdges[w], edges[w])
		}
	}
}

func TestCriticalShareOfBounds(t *testing.T) {
	g := starPlusRing(1000)
	share := CriticalShareOf(g, 8)
	if share < 1.0/8 || share > 1.0 {
		t.Errorf("CriticalShareOf = %v, want in [0.125, 1]", share)
	}
	// One worker owns everything.
	if s := CriticalShareOf(g, 1); s != 1 {
		t.Errorf("single-worker share = %v, want 1", s)
	}
}

func TestCriticalShareOfEmptyGraph(t *testing.T) {
	b := graph.NewBuilder(5) // no edges
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s := CriticalShareOf(g, 4); s != 0 {
		t.Errorf("edgeless share = %v, want 0", s)
	}
}

func TestPartitionStatsClampsWorkers(t *testing.T) {
	g := starPlusRing(10)
	verts, _ := PartitionStats(g, 100)
	if len(verts) != 10 {
		t.Errorf("got %d workers, want clamped 10", len(verts))
	}
	verts, _ = PartitionStats(g, 0)
	if len(verts) != 1 {
		t.Errorf("got %d workers for 0 requested, want 1", len(verts))
	}
}

// skewedGraph concentrates a third of the edge mass on 5% of the
// vertices — the degree skew that makes balance interesting.
func skewedGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	state := uint64(11)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	for i := 0; i < 5*n; i++ {
		src := next(n)
		if i%3 == 0 {
			src = next(n/20 + 1)
		}
		b.AddEdge(VertexID(src), VertexID(next(n)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestPartitionConservation pins that the edge-balanced cuts cover every
// vertex and every edge exactly once.
func TestPartitionConservation(t *testing.T) {
	for _, g := range []*graph.Graph{starPlusRing(500), skewedGraph(500)} {
		for _, parts := range []int{1, 2, 7} {
			p := Partition(g, parts)
			if p.NumPartitions() != parts {
				t.Fatalf("NumPartitions = %d, want %d", p.NumPartitions(), parts)
			}
			var verts int
			var edges int64
			for i := 0; i < parts; i++ {
				v := p.View(i)
				verts += v.NumVertices()
				edges += v.NumEdges()
			}
			if verts != g.NumVertices() || edges != g.NumEdges() {
				t.Fatalf("parts=%d: views cover %d vertices / %d edges, want %d / %d",
					parts, verts, edges, g.NumVertices(), g.NumEdges())
			}
		}
	}
}

// TestPartitionBalanceBaselines is the satellite regression tying the
// partitioner to the diagnostics: its objective is exactly the metric
// CriticalShareOf reports for hash placement. On near-uniform degrees
// the edge-balanced cuts must match the hash baseline (small tolerance:
// contiguity quantizes the cuts); on any graph they must beat the naive
// equal-vertex-count contiguous cut, since the painter search optimizes
// over that same family. (On graphs whose heavy vertices cluster in ID
// space, hash scattering can beat ANY contiguous cut — that is the
// documented trade-off, not a regression.)
func TestPartitionBalanceBaselines(t *testing.T) {
	uniformCut := func(g *graph.Graph, parts int) *graph.Partitioned {
		n := g.NumVertices()
		starts := make([]graph.VertexID, parts+1)
		for i := 0; i <= parts; i++ {
			starts[i] = graph.VertexID(i * n / parts)
		}
		p, err := graph.NewPartitioned(g, starts)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for name, g := range map[string]*graph.Graph{
		"star_plus_ring": starPlusRing(1000),
		"skewed":         skewedGraph(1000),
	} {
		for _, parts := range []int{2, 4, 8} {
			balanced := CriticalShare(Partition(g, parts))
			if naive := CriticalShare(uniformCut(g, parts)); balanced > naive+1e-9 {
				t.Errorf("%s parts=%d: edge-balanced critical share %.4f worse than the naive uniform cut's %.4f",
					name, parts, balanced, naive)
			}
			if balanced < 1.0/float64(parts)-1e-9 || balanced > 1.0 {
				t.Errorf("%s parts=%d: critical share %.4f outside [1/parts, 1]", name, parts, balanced)
			}
			if name == "star_plus_ring" {
				if hash := CriticalShareOf(g, parts); balanced > hash+0.02 {
					t.Errorf("parts=%d: edge-balanced critical share %.4f worse than hash %.4f on uniform degrees",
						parts, balanced, hash)
				}
			}
		}
	}
}

func TestPartitionClamps(t *testing.T) {
	g := starPlusRing(10)
	if p := Partition(g, 100); p.NumPartitions() != 10 {
		t.Errorf("parts=100 on 10 vertices: got %d partitions, want 10", p.NumPartitions())
	}
	if p := Partition(g, 0); p.NumPartitions() != 1 {
		t.Errorf("parts=0: got %d partitions, want 1", p.NumPartitions())
	}
	b := graph.NewBuilder(0)
	empty, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := Partition(empty, 3)
	if p.NumPartitions() != 3 {
		t.Errorf("empty graph: got %d partitions, want 3", p.NumPartitions())
	}
	if CriticalShare(p) != 0 {
		t.Errorf("empty graph critical share = %v, want 0", CriticalShare(p))
	}
}

// TestEnginePartitionedPlacement pins the opt-in partition-owning
// placement end to end: converged values are bit-identical to the hash
// placement (placement never changes program semantics), the per-worker
// profile matches the partition bounds, and repeated partitioned runs
// are deterministic.
func TestEnginePartitionedPlacement(t *testing.T) {
	g := skewedGraph(300)
	flat, err := NewEngine[int, int](g, maxProgram{}, testCfg(4)).Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 7} {
		p := Partition(g, parts)
		run := func() *Result[int] {
			eng := NewEngine[int, int](g, maxProgram{}, testCfg(4))
			eng.SetPartitioned(p)
			res, err := eng.Run()
			if err != nil {
				t.Fatalf("parts=%d: %v", parts, err)
			}
			return res
		}
		a, b := run(), run()
		if a.Profile.Fingerprint() != b.Profile.Fingerprint() {
			t.Fatalf("parts=%d: partitioned runs not deterministic", parts)
		}
		if a.Profile.NumWorkers != parts {
			t.Fatalf("parts=%d: profile reports %d workers", parts, a.Profile.NumWorkers)
		}
		for w := 0; w < parts; w++ {
			lo, hi := p.Bounds(w)
			if a.Profile.WorkerVertices[w] != int64(hi-lo) {
				t.Errorf("parts=%d worker %d: %d vertices, want bounds size %d",
					parts, w, a.Profile.WorkerVertices[w], hi-lo)
			}
			if a.Profile.WorkerOutEdges[w] != p.View(w).NumEdges() {
				t.Errorf("parts=%d worker %d: %d out-edges, want view's %d",
					parts, w, a.Profile.WorkerOutEdges[w], p.View(w).NumEdges())
			}
		}
		for v := range flat.Values {
			if a.Values[v] != flat.Values[v] {
				t.Fatalf("parts=%d: vertex %d value %d differs from hash placement's %d",
					parts, v, a.Values[v], flat.Values[v])
			}
		}
		if a.Supersteps != flat.Supersteps {
			t.Errorf("parts=%d: %d supersteps vs hash placement's %d", parts, a.Supersteps, flat.Supersteps)
		}
	}
}

// TestEnginePartitionedSingleMatchesHash pins the degenerate case: one
// partition and one hash worker are the same placement, so the entire
// profile fingerprint — loads, aggregates, priced seconds — must match.
func TestEnginePartitionedSingleMatchesHash(t *testing.T) {
	g := starPlusRing(200)
	hashEng := NewEngine[int, int](g, maxProgram{}, testCfg(1))
	hashRes, err := hashEng.Run()
	if err != nil {
		t.Fatal(err)
	}
	partEng := NewEngine[int, int](g, maxProgram{}, testCfg(1))
	partEng.SetPartitioned(Partition(g, 1))
	partRes, err := partEng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := partRes.Profile.Fingerprint(), hashRes.Profile.Fingerprint(); got != want {
		t.Errorf("single-partition fingerprint %s differs from single-worker hash %s", got, want)
	}
}

// TestEngineFingerprintOnMmapGraph runs the hash-placed engine on an
// mmap'd snapshot of the test graph at several worker counts and
// requires profile fingerprints identical to the heap graph's: the
// engine cannot tell mapped pages from heap arrays.
func TestEngineFingerprintOnMmapGraph(t *testing.T) {
	g := skewedGraph(300)
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := graph.WriteSnapshotFile(path, g); err != nil {
		t.Fatal(err)
	}
	mapped, live, err := graph.OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mmap path live: %v (false means copy-in fallback, still pinned)", live)
	for _, workers := range []int{1, 2, 7} {
		heapRes, err := NewEngine[int, int](g, maxProgram{}, testCfg(workers)).Run()
		if err != nil {
			t.Fatal(err)
		}
		mapRes, err := NewEngine[int, int](mapped, maxProgram{}, testCfg(workers)).Run()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mapRes.Profile.Fingerprint(), heapRes.Profile.Fingerprint(); got != want {
			t.Errorf("workers=%d: mmap'd graph fingerprint %s differs from heap %s", workers, got, want)
		}
	}
}

// TestEnginePartitionedWrongGraph pins the guard: a partition built over
// a different graph is a configuration error, not silent misplacement.
func TestEnginePartitionedWrongGraph(t *testing.T) {
	g, other := starPlusRing(50), starPlusRing(50)
	eng := NewEngine[int, int](g, maxProgram{}, testCfg(2))
	eng.SetPartitioned(Partition(other, 2))
	if _, err := eng.Run(); err == nil {
		t.Fatal("engine accepted a partition over a different graph")
	}
}
