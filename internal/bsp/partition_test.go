package bsp

import (
	"testing"

	"predict/internal/graph"
)

func TestPartitionStatsConservation(t *testing.T) {
	g := starPlusRing(500)
	verts, edges := PartitionStats(g, 8)
	var vSum, eSum int64
	for w := range verts {
		vSum += verts[w]
		eSum += edges[w]
	}
	if vSum != int64(g.NumVertices()) {
		t.Errorf("vertex sum = %d, want %d", vSum, g.NumVertices())
	}
	if eSum != g.NumEdges() {
		t.Errorf("edge sum = %d, want %d", eSum, g.NumEdges())
	}
}

func TestPartitionStatsMatchesEngine(t *testing.T) {
	// The static partition stats must agree with what the engine records.
	g := starPlusRing(300)
	verts, edges := PartitionStats(g, 4)
	eng := NewEngine[int, int](g, maxProgram{}, testCfg(4))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if res.Profile.WorkerVertices[w] != verts[w] {
			t.Errorf("worker %d vertices: engine %d vs static %d",
				w, res.Profile.WorkerVertices[w], verts[w])
		}
		if res.Profile.WorkerOutEdges[w] != edges[w] {
			t.Errorf("worker %d edges: engine %d vs static %d",
				w, res.Profile.WorkerOutEdges[w], edges[w])
		}
	}
}

func TestCriticalShareOfBounds(t *testing.T) {
	g := starPlusRing(1000)
	share := CriticalShareOf(g, 8)
	if share < 1.0/8 || share > 1.0 {
		t.Errorf("CriticalShareOf = %v, want in [0.125, 1]", share)
	}
	// One worker owns everything.
	if s := CriticalShareOf(g, 1); s != 1 {
		t.Errorf("single-worker share = %v, want 1", s)
	}
}

func TestCriticalShareOfEmptyGraph(t *testing.T) {
	b := graph.NewBuilder(5) // no edges
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s := CriticalShareOf(g, 4); s != 0 {
		t.Errorf("edgeless share = %v, want 0", s)
	}
}

func TestPartitionStatsClampsWorkers(t *testing.T) {
	g := starPlusRing(10)
	verts, _ := PartitionStats(g, 100)
	if len(verts) != 10 {
		t.Errorf("got %d workers, want clamped 10", len(verts))
	}
	verts, _ = PartitionStats(g, 0)
	if len(verts) != 1 {
		t.Errorf("got %d workers for 0 requested, want 1", len(verts))
	}
}
