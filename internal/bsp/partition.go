package bsp

import "predict/internal/graph"

// PartitionStats computes, without running anything, the per-worker vertex
// and outbound-edge allocation the engine's hash partitioning would
// produce for g with the given worker count. The paper piggybacks exactly
// this computation on the read phase to locate the critical-path worker
// before the superstep phase starts (§3.4).
func PartitionStats(g *graph.Graph, workers int) (vertices, outEdges []int64) {
	n := g.NumVertices()
	if workers < 1 {
		workers = 1
	}
	if workers > n && n > 0 {
		workers = n
	}
	vertices = make([]int64, workers)
	outEdges = make([]int64, workers)
	for v := 0; v < n; v++ {
		w := partitionWorker(VertexID(v), workers)
		vertices[w]++
		outEdges[w] += int64(g.OutDegree(VertexID(v)))
	}
	return vertices, outEdges
}

// CriticalShareOf returns the critical-path worker's fraction of all
// outbound edges under the engine's partitioning of g across workers.
func CriticalShareOf(g *graph.Graph, workers int) float64 {
	_, outEdges := PartitionStats(g, workers)
	var total, maxE int64
	for _, e := range outEdges {
		total += e
		if e > maxE {
			maxE = e
		}
	}
	if total == 0 {
		return 0
	}
	return float64(maxE) / float64(total)
}
