package bsp

import "predict/internal/graph"

// assignHash computes the engine's hash placement for g across workers:
// part[v] is the worker owning vertex v, and vertices/outEdges are the
// per-worker tallies. This is THE assignment the engine's setup phase
// uses — PartitionStats and Engine.Run both call it, so the predicted
// and executed placements cannot drift (pinned by the partition tests).
func assignHash(g *graph.Graph, workers int) (part []int32, vertices, outEdges []int64) {
	n := g.NumVertices()
	if workers < 1 {
		workers = 1
	}
	if workers > n && n > 0 {
		workers = n
	}
	part = make([]int32, n)
	vertices = make([]int64, workers)
	outEdges = make([]int64, workers)
	for v := 0; v < n; v++ {
		w := partitionWorker(VertexID(v), workers)
		part[v] = int32(w)
		vertices[w]++
		outEdges[w] += int64(g.OutDegree(VertexID(v)))
	}
	return part, vertices, outEdges
}

// maxEdgeShare returns the largest worker's fraction of the summed
// outbound edges — the balance objective shared by the hash-placement
// diagnostics (CriticalShareOf) and the edge-balanced partitioner's
// quality metric (CriticalShare).
func maxEdgeShare(outEdges []int64) float64 {
	var total, maxE int64
	for _, e := range outEdges {
		total += e
		if e > maxE {
			maxE = e
		}
	}
	if total == 0 {
		return 0
	}
	return float64(maxE) / float64(total)
}

// PartitionStats computes, without running anything, the per-worker vertex
// and outbound-edge allocation the engine's hash partitioning would
// produce for g with the given worker count. The paper piggybacks exactly
// this computation on the read phase to locate the critical-path worker
// before the superstep phase starts (§3.4).
func PartitionStats(g *graph.Graph, workers int) (vertices, outEdges []int64) {
	_, vertices, outEdges = assignHash(g, workers)
	return vertices, outEdges
}

// CriticalShareOf returns the critical-path worker's fraction of all
// outbound edges under the engine's hash partitioning of g across workers.
func CriticalShareOf(g *graph.Graph, workers int) float64 {
	_, outEdges := PartitionStats(g, workers)
	return maxEdgeShare(outEdges)
}

// Partition cuts g into parts contiguous vertex ranges balanced by edge
// load: it minimizes the maximum per-partition cost, where a vertex costs
// outDegree(v)+1 (the +1 charges the per-vertex compute the engine does
// even for isolated vertices, so vertex-heavy sparse ranges are not
// free). The cuts are found by the painter's-partition binary search over
// the answer — O(n log(totalCost)) with no allocation beyond the result.
//
// Contiguity is deliberate: partitions become sub-slice views over the
// shared CSR arrays (graph.Partitioned), each worker scans a dense
// cache-friendly range, and an mmap'd graph partitions for free. The
// trade-off versus hash placement is balance when heavy vertices cluster
// in ID space (no contiguous cut can scatter them); CriticalShare
// reports the achieved balance in the same metric as CriticalShareOf so
// the two strategies are directly comparable, and the regression test
// pins the search optimal within the contiguous family.
func Partition(g *graph.Graph, parts int) *graph.Partitioned {
	n := g.NumVertices()
	if parts < 1 {
		parts = 1
	}
	if parts > n && n > 0 {
		parts = n
	}
	cost := func(v int) int64 { return int64(g.OutDegree(graph.VertexID(v))) + 1 }
	var total, maxCost int64
	for v := 0; v < n; v++ {
		c := cost(v)
		total += c
		if c > maxCost {
			maxCost = c
		}
	}

	// canCut reports whether every partition can stay within budget using
	// at most parts greedy cuts.
	canCut := func(budget int64) bool {
		used, acc := 1, int64(0)
		for v := 0; v < n; v++ {
			c := cost(v)
			if acc+c > budget {
				used++
				acc = c
				if used > parts {
					return false
				}
			} else {
				acc += c
			}
		}
		return true
	}
	lo, hi := maxCost, total
	if n == 0 {
		lo, hi = 0, 0
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if canCut(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}

	// Re-run the greedy sweep at the optimal budget lo to materialize the
	// cuts. canCut(lo) holds, so the sweep never runs out of partitions.
	starts := make([]graph.VertexID, 1, parts+1)
	acc := int64(0)
	for v := 0; v < n; v++ {
		c := cost(v)
		if acc+c > lo && len(starts) < parts {
			starts = append(starts, graph.VertexID(v))
			acc = c
		} else {
			acc += c
		}
	}
	for len(starts) < parts {
		starts = append(starts, graph.VertexID(n))
	}
	starts = append(starts, graph.VertexID(n))

	p, err := graph.NewPartitioned(g, starts)
	if err != nil {
		// Cannot happen: the sweep produces monotone cuts in [0, n].
		panic("bsp: Partition: " + err.Error())
	}
	return p
}

// CriticalShare returns the critical partition's fraction of all outbound
// edges for an edge-balanced partitioning — the same metric
// CriticalShareOf reports for hash placement, so the two strategies are
// directly comparable.
func CriticalShare(p *graph.Partitioned) float64 {
	outEdges := make([]int64, p.NumPartitions())
	for i := range outEdges {
		outEdges[i] = p.View(i).NumEdges()
	}
	return maxEdgeShare(outEdges)
}
