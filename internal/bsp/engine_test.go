package bsp

import (
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"predict/internal/cluster"
	"predict/internal/graph"
)

// quietOracle returns a noiseless oracle with no memory budget, so tests
// see exact arithmetic.
func quietOracle() *cluster.CostOracle {
	o := cluster.DefaultOracle()
	o.NoiseStdDev = 0
	o.MemoryBudgetBytes = 0
	return &o
}

func testCfg(workers int) Config {
	return Config{Workers: workers, Oracle: quietOracle(), Seed: 1}
}

// maxProgram propagates the maximum vertex ID through the graph: the
// classic Pregel example. Converges on any strongly connected structure.
type maxProgram struct{}

func (maxProgram) Init(_ *graph.Graph, id VertexID) int { return int(id) }

func (maxProgram) Compute(ctx *Context[int], id VertexID, value *int, msgs []int) {
	changed := ctx.Superstep() == 0
	for _, m := range msgs {
		if m > *value {
			*value = m
			changed = true
		}
	}
	if changed {
		ctx.SendToNeighbors(id, *value)
	}
	ctx.VoteToHalt()
}

func (maxProgram) MessageBytes(int) int { return 8 }

func TestMaxPropagationOnCycle(t *testing.T) {
	g := cycleGraph(20)
	eng := NewEngine[int, int](g, maxProgram{}, testCfg(4))
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for v, val := range res.Values {
		if val != 19 {
			t.Fatalf("vertex %d converged to %d, want 19", v, val)
		}
	}
	if !res.Converged {
		t.Error("Converged = false, want true")
	}
	// A cycle of 20 needs ~20 supersteps to flood the max around.
	if res.Supersteps < 19 || res.Supersteps > 22 {
		t.Errorf("Supersteps = %d, want ~20", res.Supersteps)
	}
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(VertexID(i), VertexID((i+1)%n))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestMessageCountersExact(t *testing.T) {
	// Superstep 0: every vertex sends its value to all out-neighbors, so
	// exactly NumEdges messages of 8 bytes each are sent in superstep 0.
	g := cycleGraph(12)
	eng := NewEngine[int, int](g, maxProgram{}, testCfg(3))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	s0 := res.Profile.Supersteps[0].Total()
	if s0.Messages() != 12 {
		t.Errorf("superstep 0 messages = %d, want 12", s0.Messages())
	}
	if s0.MessageBytes() != 96 {
		t.Errorf("superstep 0 bytes = %d, want 96", s0.MessageBytes())
	}
	if s0.ActiveVertices != 12 {
		t.Errorf("superstep 0 active = %d, want 12", s0.ActiveVertices)
	}
	if s0.TotalVertices != 12 {
		t.Errorf("superstep 0 total = %d, want 12", s0.TotalVertices)
	}
	// Local + remote must partition the total.
	var loc, rem int64
	for _, w := range res.Profile.Supersteps[0].Workers {
		loc += w.LocalMessages
		rem += w.RemoteMessages
	}
	if loc+rem != 12 {
		t.Errorf("local %d + remote %d != 12", loc, rem)
	}
	if rem == 0 {
		t.Error("expected some remote messages with 3 workers")
	}
}

func TestSingleWorkerAllMessagesLocal(t *testing.T) {
	g := cycleGraph(10)
	eng := NewEngine[int, int](g, maxProgram{}, testCfg(1))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for s, sp := range res.Profile.Supersteps {
		tot := sp.Total()
		if tot.RemoteMessages != 0 || tot.RemoteMessageBytes != 0 {
			t.Fatalf("superstep %d has remote traffic on a single worker", s)
		}
	}
}

// sumProgram floods a constant number of rounds, summing incoming message
// values; used to check combiner equivalence and aggregators.
type sumProgram struct{ rounds int }

func (sumProgram) Init(_ *graph.Graph, _ VertexID) float64 { return 0 }

func (p sumProgram) Compute(ctx *Context[float64], id VertexID, value *float64, msgs []float64) {
	for _, m := range msgs {
		*value += m
	}
	ctx.AddToAggregate("active", 1)
	if ctx.Superstep() < p.rounds {
		ctx.SendToNeighbors(id, float64(id)+1)
	} else {
		ctx.VoteToHalt()
	}
}

func (sumProgram) MessageBytes(float64) int { return 8 }

func TestCombinerEquivalence(t *testing.T) {
	g := starPlusRing(50)
	run := func(withCombiner bool) []float64 {
		eng := NewEngine[float64, float64](g, sumProgram{rounds: 3}, testCfg(4))
		if withCombiner {
			eng.SetCombiner(func(a, b float64) float64 { return a + b })
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("Run(combiner=%v): %v", withCombiner, err)
		}
		return res.Values
	}
	plain := run(false)
	combined := run(true)
	for v := range plain {
		if math.Abs(plain[v]-combined[v]) > 1e-9 {
			t.Fatalf("vertex %d: plain %v vs combined %v", v, plain[v], combined[v])
		}
	}
}

// starPlusRing builds a ring with chords into vertex 0, giving a mix of
// degrees.
func starPlusRing(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(VertexID(i), VertexID((i+1)%n))
		if i%3 == 0 && i != 0 {
			b.AddEdge(VertexID(i), 0)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestAggregatesMatchCounters(t *testing.T) {
	g := cycleGraph(30)
	eng := NewEngine[float64, float64](g, sumProgram{rounds: 2}, testCfg(4))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for s, sp := range res.Profile.Supersteps {
		tot := sp.Total()
		if agg := sp.Aggregates["active"]; agg != float64(tot.ActiveVertices) {
			t.Errorf("superstep %d: aggregate %v != active counter %d", s, agg, tot.ActiveVertices)
		}
	}
}

func TestHaltPredicateStopsRun(t *testing.T) {
	g := cycleGraph(40)
	eng := NewEngine[int, int](g, maxProgram{}, testCfg(4))
	eng.SetHalt(func(info SuperstepInfo) bool { return info.Superstep >= 4 })
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 5 {
		t.Errorf("Supersteps = %d, want 5 (halt after index 4)", res.Supersteps)
	}
	if !res.Converged {
		t.Error("halt predicate should mark run converged")
	}
}

// chattyProgram never halts; used for the superstep cap.
type chattyProgram struct{}

func (chattyProgram) Init(_ *graph.Graph, _ VertexID) int { return 0 }
func (chattyProgram) Compute(ctx *Context[int], id VertexID, _ *int, _ []int) {
	ctx.SendToNeighbors(id, 1)
}
func (chattyProgram) MessageBytes(int) int { return 8 }

func TestMaxSuperstepsReturnsErrNoConvergence(t *testing.T) {
	g := cycleGraph(10)
	cfg := testCfg(2)
	cfg.MaxSupersteps = 7
	eng := NewEngine[int, int](g, chattyProgram{}, cfg)
	res, err := eng.Run()
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
	if res == nil || res.Supersteps != 7 {
		t.Fatalf("partial result missing or wrong: %+v", res)
	}
	if res.Converged {
		t.Error("Converged = true on capped run")
	}
}

func TestOutOfMemory(t *testing.T) {
	g := cycleGraph(100)
	o := quietOracle()
	o.MemoryBudgetBytes = 10 // absurdly small
	cfg := Config{Workers: 2, Oracle: o}
	eng := NewEngine[int, int](g, chattyProgram{}, cfg)
	_, err := eng.Run()
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestDeterministicSimTimes(t *testing.T) {
	g := starPlusRing(200)
	run := func() *Profile {
		o := cluster.DefaultOracle()
		o.MemoryBudgetBytes = 0
		eng := NewEngine[int, int](g, maxProgram{}, Config{Workers: 4, Seed: 99, Oracle: &o})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile
	}
	p1, p2 := run(), run()
	if len(p1.Supersteps) != len(p2.Supersteps) {
		t.Fatalf("different superstep counts: %d vs %d", len(p1.Supersteps), len(p2.Supersteps))
	}
	for s := range p1.Supersteps {
		if p1.Supersteps[s].Seconds != p2.Supersteps[s].Seconds {
			t.Fatalf("superstep %d sim seconds differ: %v vs %v",
				s, p1.Supersteps[s].Seconds, p2.Supersteps[s].Seconds)
		}
	}
}

func TestProfilePhaseArithmetic(t *testing.T) {
	g := cycleGraph(10)
	eng := NewEngine[int, int](g, maxProgram{}, testCfg(2))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	want := p.SetupSeconds + p.ReadSeconds + p.SuperstepPhaseSeconds() + p.WriteSeconds
	if got := p.TotalSeconds(); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalSeconds = %v, want %v", got, want)
	}
	if p.Iterations() != res.Supersteps {
		t.Errorf("Iterations = %d, want %d", p.Iterations(), res.Supersteps)
	}
}

func TestCriticalWorker(t *testing.T) {
	p := &Profile{
		GraphEdges:     100,
		WorkerOutEdges: []int64{10, 60, 30},
	}
	if w := p.CriticalWorker(); w != 1 {
		t.Errorf("CriticalWorker = %d, want 1", w)
	}
	if s := p.CriticalShare(); s != 0.6 {
		t.Errorf("CriticalShare = %v, want 0.6", s)
	}
}

func TestPartitionCoversAllWorkers(t *testing.T) {
	counts := make([]int, 8)
	for v := 0; v < 10000; v++ {
		w := partitionWorker(VertexID(v), 8)
		if w < 0 || w >= 8 {
			t.Fatalf("partitionWorker out of range: %d", w)
		}
		counts[w]++
	}
	for w, c := range counts {
		if c < 800 || c > 1700 {
			t.Errorf("worker %d has %d vertices; hash partitioning badly skewed", w, c)
		}
	}
}

func TestMoreWorkersThanVertices(t *testing.T) {
	g := cycleGraph(3)
	eng := NewEngine[int, int](g, maxProgram{}, testCfg(16))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.NumWorkers != 3 {
		t.Errorf("NumWorkers = %d, want clamped to 3", res.Profile.NumWorkers)
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	var g graph.Graph
	eng := NewEngine[int, int](&g, maxProgram{}, testCfg(2))
	if _, err := eng.Run(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

// haltOnFirstProgram votes to halt immediately without sending anything.
type haltOnFirstProgram struct{}

func (haltOnFirstProgram) Init(_ *graph.Graph, _ VertexID) int { return 0 }
func (haltOnFirstProgram) Compute(ctx *Context[int], _ VertexID, _ *int, _ []int) {
	ctx.VoteToHalt()
}
func (haltOnFirstProgram) MessageBytes(int) int { return 8 }

func TestNaturalTerminationWhenAllHalt(t *testing.T) {
	g := cycleGraph(10)
	eng := NewEngine[int, int](g, haltOnFirstProgram{}, testCfg(2))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Supersteps != 1 {
		t.Errorf("Supersteps = %d, want 1", res.Supersteps)
	}
	if !res.Converged {
		t.Error("expected natural convergence")
	}
}

// reactivationProgram: vertex 0 sends a message to vertex 1 in superstep 0;
// everyone halts immediately. Vertex 1 must be reactivated in superstep 1.
type reactivationProgram struct{}

func (reactivationProgram) Init(_ *graph.Graph, _ VertexID) int { return 0 }
func (reactivationProgram) Compute(ctx *Context[int], id VertexID, value *int, msgs []int) {
	if ctx.Superstep() == 0 && id == 0 {
		ctx.Send(1, 42)
	}
	for _, m := range msgs {
		*value = m
	}
	ctx.VoteToHalt()
}
func (reactivationProgram) MessageBytes(int) int { return 8 }

func TestMessageReactivatesHaltedVertex(t *testing.T) {
	g := cycleGraph(4)
	eng := NewEngine[int, int](g, reactivationProgram{}, testCfg(2))
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[1] != 42 {
		t.Errorf("vertex 1 value = %d, want 42 (reactivation failed)", res.Values[1])
	}
	if res.Supersteps != 2 {
		t.Errorf("Supersteps = %d, want 2", res.Supersteps)
	}
	// Superstep 1 should have exactly one active vertex: the reactivated one.
	if act := res.Profile.Supersteps[1].Total().ActiveVertices; act != 1 {
		t.Errorf("superstep 1 active = %d, want 1", act)
	}
}

func TestAggregateVisibleNextSuperstep(t *testing.T) {
	g := cycleGraph(10)
	var sawPrev atomic.Bool
	prog := aggEchoProgram{saw: &sawPrev}
	eng := NewEngine[int, int](g, prog, testCfg(2))
	eng.SetHalt(func(info SuperstepInfo) bool { return info.Superstep >= 2 })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawPrev.Load() {
		t.Error("aggregate from superstep 0 was not visible in superstep 1")
	}
}

type aggEchoProgram struct{ saw *atomic.Bool }

func (aggEchoProgram) Init(_ *graph.Graph, _ VertexID) int { return 0 }
func (p aggEchoProgram) Compute(ctx *Context[int], id VertexID, _ *int, _ []int) {
	ctx.AddToAggregate("x", 1)
	if ctx.Superstep() == 1 && ctx.Aggregate("x") == 10 {
		p.saw.Store(true)
	}
	ctx.SendToNeighbors(id, 0)
}
func (aggEchoProgram) MessageBytes(int) int { return 8 }

// minProgram floods min labels like connected components; min is exact
// under regrouping, so plain and send-side combining must agree bit-wise.
type minProgram struct{}

func (minProgram) Init(_ *graph.Graph, id VertexID) int { return int(id) }

func (minProgram) Compute(ctx *Context[int], id VertexID, value *int, msgs []int) {
	changed := ctx.Superstep() == 0
	for _, m := range msgs {
		if m < *value {
			*value = m
			changed = true
		}
	}
	if changed {
		ctx.SendToNeighbors(id, *value)
	}
	ctx.VoteToHalt()
}

func (minProgram) MessageBytes(int) int { return 8 }

func TestExactCombinerMatchesPlainCombiner(t *testing.T) {
	g := starPlusRing(80)
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	run := func(exact bool) ([]int, string) {
		eng := NewEngine[int, int](g, minProgram{}, testCfg(4))
		if exact {
			eng.SetExactCombiner(min)
		} else {
			eng.SetCombiner(min)
		}
		res, err := eng.Run()
		if err != nil {
			t.Fatalf("Run(exact=%v): %v", exact, err)
		}
		return res.Values, res.Profile.Fingerprint()
	}
	plainVals, plainFP := run(false)
	exactVals, exactFP := run(true)
	for v := range plainVals {
		if plainVals[v] != exactVals[v] {
			t.Fatalf("vertex %d: plain %d vs exact %d", v, plainVals[v], exactVals[v])
		}
	}
	if plainFP != exactFP {
		t.Errorf("profiles diverge between plain and send-side combining:\nplain %s\nexact %s", plainFP, exactFP)
	}
}

// sparseAggProgram contributes to an aggregator only on even supersteps,
// guarding the epoch-gated merge: an interned name must not linger in the
// profile of supersteps where nothing touched it (the historical
// fresh-map-per-superstep semantics).
type sparseAggProgram struct{}

func (sparseAggProgram) Init(_ *graph.Graph, _ VertexID) int { return 0 }
func (sparseAggProgram) Compute(ctx *Context[int], id VertexID, _ *int, _ []int) {
	if ctx.Superstep()%2 == 0 {
		ctx.AddToAggregate("even", 1)
	}
	ctx.SendToNeighbors(id, 1)
}
func (sparseAggProgram) MessageBytes(int) int { return 8 }

func TestAggregateKeySetMatchesTouchedSupersteps(t *testing.T) {
	g := cycleGraph(20)
	eng := NewEngine[int, int](g, sparseAggProgram{}, testCfg(3))
	eng.SetHalt(func(info SuperstepInfo) bool { return info.Superstep >= 4 })
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for s, sp := range res.Profile.Supersteps {
		_, present := sp.Aggregates["even"]
		if s%2 == 0 {
			if !present || sp.Aggregates["even"] != 20 {
				t.Errorf("superstep %d: aggregate = %v, want 20", s, sp.Aggregates["even"])
			}
		} else if present {
			t.Errorf("superstep %d: stale aggregate key %v leaked into an untouched superstep", s, sp.Aggregates)
		}
	}
}

// fixedMaxProgram is maxProgram plus the FixedSizeMessager fast path; the
// counters must be identical to the interface-dispatch path.
type fixedMaxProgram struct{ maxProgram }

func (fixedMaxProgram) FixedMessageBytes() int { return 8 }

func TestFixedSizeMessagerCountersMatch(t *testing.T) {
	g := starPlusRing(60)
	run := func(p Program[int, int]) string {
		eng := NewEngine[int, int](g, p, testCfg(4))
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Profile.Fingerprint()
	}
	if got, want := run(fixedMaxProgram{}), run(maxProgram{}); got != want {
		t.Errorf("fixed-size byte counting diverges from MessageBytes dispatch: %s vs %s", got, want)
	}
}

// TestPersistentWorkersExit pins the engine's goroutine hygiene: repeated
// runs must not leak the persistent worker goroutines.
func TestPersistentWorkersExit(t *testing.T) {
	g := cycleGraph(50)
	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		eng := NewEngine[int, int](g, maxProgram{}, testCfg(5))
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Workers exit asynchronously after Run returns; give them a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+5 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 25 runs — persistent workers leak",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
