// Package gen generates synthetic graphs. It provides the classic random
// graph families (Barabási–Albert, RMAT/Kronecker, Erdős–Rényi,
// configuration models with power-law or log-normal degrees,
// Watts–Strogatz) plus degenerate structures used to test the limits of
// sampling-based prediction (paths, stars, grids).
//
// The package also registers the four dataset stand-ins that substitute
// for the paper's real graphs (LiveJournal, Wikipedia, Twitter, UK-2002),
// scaled down ~100x while preserving degree-distribution class and
// density. All generators are deterministic for a given seed.
package gen

import (
	"math"
	"math/rand/v2"

	"predict/internal/graph"
)

// rngFor derives a deterministic PCG generator from a single seed.
func rngFor(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// cdfSampler draws indices proportionally to fixed non-negative weights
// using binary search over the cumulative sum.
type cdfSampler struct {
	cum []float64
}

func newCDFSampler(weights []float64) *cdfSampler {
	cum := make([]float64, len(weights))
	var total float64
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		total += w
		cum[i] = total
	}
	return &cdfSampler{cum: cum}
}

func (s *cdfSampler) sample(rng *rand.Rand) int {
	if len(s.cum) == 0 {
		return 0
	}
	total := s.cum[len(s.cum)-1]
	x := rng.Float64() * total
	lo, hi := 0, len(s.cum)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s.cum) {
		lo = len(s.cum) - 1
	}
	return lo
}

// DegreeDist samples vertex out-degrees.
type DegreeDist interface {
	Sample(rng *rand.Rand) int
}

// PowerLawDist is a discrete power-law degree distribution with exponent
// Alpha truncated to [Min, Max].
type PowerLawDist struct {
	Alpha    float64
	Min, Max int
}

// Sample draws a degree by inverse-transform sampling of the continuous
// power law, rounded to the nearest integer and clamped to [Min, Max].
func (p PowerLawDist) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	d := (float64(p.Min) - 0.5) * math.Pow(1-u, -1/(p.Alpha-1))
	k := int(d + 0.5)
	if k < p.Min {
		k = p.Min
	}
	if p.Max > 0 && k > p.Max {
		k = p.Max
	}
	return k
}

// LogNormalDist is a log-normal degree distribution, the stand-in shape for
// graphs whose out-degrees do not follow a power law (the paper's
// LiveJournal observation, §5.1 footnote 7).
type LogNormalDist struct {
	Mu, Sigma float64
	Min, Max  int
}

// Sample draws round(exp(N(Mu, Sigma)))) clamped to [Min, Max].
func (l LogNormalDist) Sample(rng *rand.Rand) int {
	d := math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
	k := int(d + 0.5)
	if k < l.Min {
		k = l.Min
	}
	if l.Max > 0 && k > l.Max {
		k = l.Max
	}
	return k
}

// UniformDist draws degrees uniformly from [Min, Max].
type UniformDist struct {
	Min, Max int
}

// Sample draws an integer uniformly in [Min, Max].
func (u UniformDist) Sample(rng *rand.Rand) int {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + rng.IntN(u.Max-u.Min+1)
}

// ConfigModelOptions parameterizes FromDegreeDist.
type ConfigModelOptions struct {
	// TargetBias is the Zipf exponent for choosing edge destinations: the
	// i-th most popular vertex is chosen with weight (i+1)^-TargetBias.
	// Zero means uniform destinations (Poisson in-degrees); values near 1
	// produce heavy-tailed in-degrees, as in web and social graphs.
	TargetBias float64
	// BackEdgeProb adds a reverse edge for each generated edge with this
	// probability, creating cycles and raising in/out correlation.
	BackEdgeProb float64
	// CommunityCount, when positive, partitions vertices into this many
	// communities arranged on a ring; inter-community edges prefer the
	// two ring-adjacent communities. This gives the graph *depth*: rank
	// and labels must propagate community by community, so the effective
	// diameter — and with it the iteration counts of convergent
	// algorithms — resembles real web/social graphs instead of a
	// fast-mixing expander's 3-4 hops.
	CommunityCount int
	// IntraProb is the probability an edge stays inside its source's
	// community; NeighborProb is the probability it lands in a
	// ring-adjacent community. The remainder follows the global
	// popularity distribution (long-range links).
	IntraProb    float64
	NeighborProb float64
	// CommunityMassBias, when positive, skews total popularity across
	// communities by a Zipf factor (rank+1)^-bias over a shuffled
	// community order. An imbalanced stationary distribution forces rank
	// mass to flow along the ring during iteration — the slow transient
	// real graphs exhibit. Without it a uniform initialization never
	// excites the slow inter-community modes.
	CommunityMassBias float64
}

// FromDegreeDist builds a directed graph on n vertices where each vertex's
// out-degree is drawn from dist and each edge destination is drawn from a
// Zipf-weighted popularity ranking (see ConfigModelOptions.TargetBias),
// optionally confined to the source's community.
func FromDegreeDist(n int, dist DegreeDist, opts ConfigModelOptions, seed uint64) *graph.Graph {
	rng := rngFor(seed)

	// Popularity ranking: a random permutation of vertices, so vertex IDs
	// carry no structural meaning.
	perm := rng.Perm(n)
	weights := make([]float64, n)
	for rank, v := range perm {
		if opts.TargetBias == 0 {
			weights[v] = 1
		} else {
			weights[v] = math.Pow(float64(rank+1), -opts.TargetBias)
		}
	}
	// Community structure: contiguous ID blocks (IDs are structure-free
	// since popularity came from a random permutation).
	var local []*cdfSampler
	var members [][]int
	k := opts.CommunityCount
	size := 0
	if k > 1 && k <= n {
		size = (n + k - 1) / k
		// Skew total popularity across communities so the stationary
		// distribution is imbalanced along the ring.
		if opts.CommunityMassBias > 0 {
			commOrder := rng.Perm(k)
			for v := 0; v < n; v++ {
				c := v / size
				weights[v] *= math.Pow(float64(commOrder[c]+1), -opts.CommunityMassBias)
			}
		}
		members = make([][]int, k)
		for v := 0; v < n; v++ {
			c := v / size
			members[c] = append(members[c], v)
		}
		local = make([]*cdfSampler, k)
		for c := range members {
			w := make([]float64, len(members[c]))
			for i, v := range members[c] {
				w[i] = weights[v]
			}
			local[c] = newCDFSampler(w)
		}
	}
	global := newCDFSampler(weights)

	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		deg := dist.Sample(rng)
		for i := 0; i < deg; i++ {
			var dst int
			if local != nil {
				r := rng.Float64()
				switch {
				case r < opts.IntraProb:
					c := v / size
					dst = members[c][local[c].sample(rng)]
				case r < opts.IntraProb+opts.NeighborProb:
					c := v / size
					if rng.IntN(2) == 0 {
						c = (c + 1) % k
					} else {
						c = (c + k - 1) % k
					}
					dst = members[c][local[c].sample(rng)]
				default:
					dst = global.sample(rng)
				}
			} else {
				dst = global.sample(rng)
			}
			if dst == v {
				continue
			}
			b.AddEdge(graph.VertexID(v), graph.VertexID(dst))
			if opts.BackEdgeProb > 0 && rng.Float64() < opts.BackEdgeProb {
				b.AddEdge(graph.VertexID(dst), graph.VertexID(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: FromDegreeDist: " + err.Error())
	}
	return g
}

// ErdosRenyi builds a directed G(n, m) graph with m = n*avgOutDeg edges
// sampled uniformly at random (before deduplication).
func ErdosRenyi(n int, avgOutDeg float64, seed uint64) *graph.Graph {
	rng := rngFor(seed)
	m := int(float64(n) * avgOutDeg)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		src := rng.IntN(n)
		dst := rng.IntN(n)
		if src == dst {
			continue
		}
		b.AddEdge(graph.VertexID(src), graph.VertexID(dst))
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: ErdosRenyi: " + err.Error())
	}
	return g
}
