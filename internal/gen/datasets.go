package gen

import (
	"fmt"
	"math"

	"predict/internal/graph"
)

// Dataset is a registered stand-in for one of the paper's four evaluation
// graphs (Table 2). Generate(scale, seed) produces the stand-in graph;
// scale = 1.0 yields the default simulation size (~100x smaller than the
// paper's graph, preserving density and degree-distribution class).
type Dataset struct {
	// Name is the full stand-in name, e.g. "LiveJournal-sim".
	Name string
	// Prefix is the short tag used in the paper's plots: LJ, Wiki, TW, UK.
	Prefix string
	// PaperVertices/PaperEdges record the real dataset's size for Table 2.
	PaperVertices int64
	PaperEdges    int64
	// PaperSizeGB is the on-disk size the paper reports.
	PaperSizeGB float64
	// ScaleFree records whether the stand-in's out-degrees follow a power
	// law. LiveJournal deliberately does not (§5.1 footnote 7).
	ScaleFree bool
	// Description explains the generator choice.
	Description string
	// Generate builds the stand-in at the given scale with the given seed.
	Generate func(scale float64, seed uint64) *graph.Graph
}

// scaledN rounds base*scale to at least minimum.
func scaledN(base int, scale float64, minimum int) int {
	n := int(math.Round(float64(base) * scale))
	if n < minimum {
		n = minimum
	}
	return n
}

// StandIns returns the registry of the four dataset stand-ins in the
// paper's Table 2 order.
func StandIns() []Dataset {
	return []Dataset{
		{
			Name:          "LiveJournal-sim",
			Prefix:        "LJ",
			PaperVertices: 4_847_571,
			PaperEdges:    68_993_777,
			PaperSizeGB:   1.0,
			ScaleFree:     false,
			Description: "social graph whose out-degrees do NOT follow a power law " +
				"(log-normal out-degrees), reproducing the paper's finding that " +
				"LiveJournal samples poorly",
			Generate: func(scale float64, seed uint64) *graph.Graph {
				n := scaledN(40_000, scale, 500)
				dist := LogNormalDist{Mu: math.Log(7), Sigma: 1.05, Min: 1, Max: n / 40}
				return WithTrapPairs(FromDegreeDist(n, dist, ConfigModelOptions{
					TargetBias:        0.55,
					BackEdgeProb:      0.35,
					CommunityCount:    24,
					IntraProb:         0.75,
					NeighborProb:      0.22,
					CommunityMassBias: 0.8,
				}, seed), 0.007)
			},
		},
		{
			Name:          "Wikipedia-sim",
			Prefix:        "Wiki",
			PaperVertices: 11_712_323,
			PaperEdges:    97_652_232,
			PaperSizeGB:   1.4,
			ScaleFree:     true,
			Description: "web-style link graph with power-law out-degrees " +
				"(configuration model, alpha≈2.4, Zipf-biased destinations)",
			Generate: func(scale float64, seed uint64) *graph.Graph {
				n := scaledN(60_000, scale, 500)
				dist := PowerLawDist{Alpha: 2.4, Min: 3, Max: n / 40}
				return WithTrapPairs(FromDegreeDist(n, dist, ConfigModelOptions{
					TargetBias:        0.8,
					BackEdgeProb:      0.15,
					CommunityCount:    28,
					IntraProb:         0.8,
					NeighborProb:      0.17,
					CommunityMassBias: 0.8,
				}, seed), 0.015)
			},
		},
		{
			Name:          "Twitter-sim",
			Prefix:        "TW",
			PaperVertices: 40_103_281,
			PaperEdges:    1_468_365_182,
			PaperSizeGB:   25,
			ScaleFree:     true,
			Description: "dense follower graph with heavy hubs " +
				"(Barabási–Albert preferential attachment, m=24, 50% back-edges)",
			Generate: func(scale float64, seed uint64) *graph.Graph {
				n := scaledN(80_000, scale, 500)
				return WithTrapPairs(BarabasiAlbert(n, 24, 0.5, seed), 0.015)
			},
		},
		{
			Name:          "UK2002-sim",
			Prefix:        "UK",
			PaperVertices: 18_520_486,
			PaperEdges:    298_113_762,
			PaperSizeGB:   4.7,
			ScaleFree:     true,
			Description: "web crawl: denser than Wikipedia-sim with heavier skew " +
				"(configuration model, alpha≈2.1, strongly Zipf-biased destinations)",
			Generate: func(scale float64, seed uint64) *graph.Graph {
				n := scaledN(70_000, scale, 500)
				dist := PowerLawDist{Alpha: 2.1, Min: 4, Max: n / 60}
				return WithTrapPairs(FromDegreeDist(n, dist, ConfigModelOptions{
					TargetBias:        0.85,
					BackEdgeProb:      0.25,
					CommunityCount:    32,
					IntraProb:         0.85,
					NeighborProb:      0.13,
					CommunityMassBias: 0.9,
				}, seed), 0.012)
			},
		},
	}
}

// ByPrefix looks up a stand-in by its short tag (LJ, Wiki, TW, UK).
func ByPrefix(prefix string) (Dataset, error) {
	for _, d := range StandIns() {
		if d.Prefix == prefix {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset prefix %q (want LJ, Wiki, TW or UK)", prefix)
}
