package gen

import (
	"math"

	"predict/internal/graph"
)

// RMATOptions holds the recursive-quadrant probabilities of the RMAT
// (Kronecker) generator. They must sum to ~1; A is the top-left quadrant.
// Web-graph-like settings concentrate mass in A (e.g. 0.57/0.19/0.19/0.05),
// producing tight communities and heavy-tailed degrees.
type RMATOptions struct {
	A, B, C, D float64
	// NoiseFactor perturbs the quadrant probabilities at each recursion
	// level by up to ±NoiseFactor/2, avoiding artificial staircase degree
	// distributions. 0.1 is a reasonable default.
	NoiseFactor float64
}

// DefaultRMAT returns web-graph-like quadrant probabilities.
func DefaultRMAT() RMATOptions {
	return RMATOptions{A: 0.57, B: 0.19, C: 0.19, D: 0.05, NoiseFactor: 0.1}
}

// RMAT builds a directed graph on n vertices with approximately
// n*avgOutDeg edges using the recursive matrix method. Edges whose
// endpoints fall outside [0, n) in the padded 2^scale space are
// rejection-resampled, so the advertised vertex count is exact.
func RMAT(n int, avgOutDeg float64, opts RMATOptions, seed uint64) *graph.Graph {
	rng := rngFor(seed)
	scale := 0
	for (1 << scale) < n {
		scale++
	}
	target := int64(float64(n) * avgOutDeg)
	b := graph.NewBuilder(n)

	total := opts.A + opts.B + opts.C + opts.D
	if total <= 0 {
		panic("gen: RMAT: non-positive probability mass")
	}
	a, bb, c := opts.A/total, opts.B/total, opts.C/total

	var added int64
	attempts := target * 4 // bail-out guard for degenerate inputs
	for added < target && attempts > 0 {
		attempts--
		src, dst := 0, 0
		for level := 0; level < scale; level++ {
			// Perturb quadrant probabilities at each level.
			na, nb, nc := a, bb, c
			if opts.NoiseFactor > 0 {
				mul := 1 - opts.NoiseFactor/2 + opts.NoiseFactor*rng.Float64()
				na = math.Min(a*mul, 1)
				nb = math.Min(bb*mul, 1)
				nc = math.Min(c*mul, 1)
			}
			r := rng.Float64()
			half := 1 << (scale - level - 1)
			switch {
			case r < na:
				// top-left: nothing to add
			case r < na+nb:
				dst += half
			case r < na+nb+nc:
				src += half
			default:
				src += half
				dst += half
			}
		}
		if src >= n || dst >= n || src == dst {
			continue
		}
		b.AddEdge(graph.VertexID(src), graph.VertexID(dst))
		added++
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: RMAT: " + err.Error())
	}
	return g
}
