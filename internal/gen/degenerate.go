package gen

import (
	"predict/internal/graph"
)

// Path builds the directed path 0 -> 1 -> ... -> n-1, the degenerate "list"
// structure the paper's §3.5 calls out as not amenable to sampling-based
// prediction.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID(i+1))
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: Path: " + err.Error())
	}
	return g
}

// Cycle builds the directed cycle 0 -> 1 -> ... -> n-1 -> 0.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: Cycle: " + err.Error())
	}
	return g
}

// Star builds a star with vertex 0 at the center. If outward is true the
// edges point 0 -> leaf, otherwise leaf -> 0.
func Star(n int, outward bool) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		if outward {
			b.AddEdge(0, graph.VertexID(i))
		} else {
			b.AddEdge(graph.VertexID(i), 0)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: Star: " + err.Error())
	}
	return g
}

// Grid builds a rows x cols grid with edges pointing right and down (and
// their reverses), a high-diameter structure useful for convergence tests.
func Grid(rows, cols int) *graph.Graph {
	n := rows * cols
	b := graph.NewBuilder(n)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
				b.AddEdge(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
				b.AddEdge(id(r+1, c), id(r, c))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: Grid: " + err.Error())
	}
	return g
}

// Complete builds the complete directed graph on n vertices (no
// self-loops). Quadratic; intended for tiny test inputs.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(graph.VertexID(i), graph.VertexID(j))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: Complete: " + err.Error())
	}
	return g
}

// WattsStrogatz builds a directed small-world graph: a ring lattice where
// each vertex points to its k nearest clockwise neighbors, with each edge
// rewired to a uniform random destination with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	rng := rngFor(seed)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			dst := (v + j) % n
			if rng.Float64() < beta {
				dst = rng.IntN(n)
				if dst == v {
					dst = (v + 1) % n
				}
			}
			b.AddEdge(graph.VertexID(v), graph.VertexID(dst))
		}
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: WattsStrogatz: " + err.Error())
	}
	return g
}
