package gen

import (
	"math"
	"testing"

	"predict/internal/graph"
)

func TestPowerLawDistRespectsBounds(t *testing.T) {
	rng := rngFor(1)
	dist := PowerLawDist{Alpha: 2.3, Min: 2, Max: 50}
	for i := 0; i < 10000; i++ {
		d := dist.Sample(rng)
		if d < 2 || d > 50 {
			t.Fatalf("degree %d out of [2,50]", d)
		}
	}
}

func TestLogNormalDistRespectsBounds(t *testing.T) {
	rng := rngFor(2)
	dist := LogNormalDist{Mu: 2, Sigma: 1, Min: 1, Max: 100}
	for i := 0; i < 10000; i++ {
		d := dist.Sample(rng)
		if d < 1 || d > 100 {
			t.Fatalf("degree %d out of [1,100]", d)
		}
	}
}

func TestUniformDist(t *testing.T) {
	rng := rngFor(3)
	dist := UniformDist{Min: 5, Max: 7}
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		d := dist.Sample(rng)
		if d < 5 || d > 7 {
			t.Fatalf("degree %d out of [5,7]", d)
		}
		seen[d] = true
	}
	if len(seen) != 3 {
		t.Errorf("saw %d distinct degrees, want 3", len(seen))
	}
}

func TestFromDegreeDistShape(t *testing.T) {
	g := FromDegreeDist(2000, PowerLawDist{Alpha: 2.5, Min: 3, Max: 200},
		ConfigModelOptions{TargetBias: 0.8}, 42)
	if g.NumVertices() != 2000 {
		t.Fatalf("NumVertices = %d, want 2000", g.NumVertices())
	}
	avg := g.AvgOutDegree()
	if avg < 3 || avg > 30 {
		t.Errorf("AvgOutDegree = %v, expected power-law mean in [3,30]", avg)
	}
	// Zipf-biased destinations must produce in-degree skew: the max
	// in-degree should far exceed the mean.
	inDegs := g.InDegrees()
	stats := graph.NewDegreeStats(inDegs)
	if float64(stats.Max) < 5*stats.Mean {
		t.Errorf("in-degree max %d vs mean %.1f: expected heavy tail", stats.Max, stats.Mean)
	}
}

func TestFromDegreeDistDeterministic(t *testing.T) {
	g1 := FromDegreeDist(500, PowerLawDist{Alpha: 2.2, Min: 2, Max: 50}, ConfigModelOptions{}, 7)
	g2 := FromDegreeDist(500, PowerLawDist{Alpha: 2.2, Min: 2, Max: 50}, ConfigModelOptions{}, 7)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
	g3 := FromDegreeDist(500, PowerLawDist{Alpha: 2.2, Min: 2, Max: 50}, ConfigModelOptions{}, 8)
	if g1.NumEdges() == g3.NumEdges() {
		t.Log("different seeds gave same edge count (possible but unlikely)")
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(3000, 5, 0.3, 11)
	if g.NumVertices() != 3000 {
		t.Fatalf("NumVertices = %d, want 3000", g.NumVertices())
	}
	avg := g.AvgOutDegree()
	if avg < 4 || avg > 10 {
		t.Errorf("AvgOutDegree = %v, want ~5-7 for m=5, backProb=0.3", avg)
	}
	// Preferential attachment must create hubs.
	if g.MaxOutDegree() < 30 {
		t.Errorf("MaxOutDegree = %d, expected hubs >> m", g.MaxOutDegree())
	}
	// The graph should be (weakly) connected by construction.
	if frac := graph.LargestComponentFraction(g); frac < 0.99 {
		t.Errorf("LargestComponentFraction = %v, want ~1", frac)
	}
}

func TestBarabasiAlbertPowerLaw(t *testing.T) {
	g := BarabasiAlbert(20000, 8, 0.5, 13)
	degs := g.InDegrees()
	alpha := graph.PowerLawAlpha(degs, 8)
	// BA in-degree tail exponent is ~3 in theory; accept a broad band.
	if alpha < 1.8 || alpha > 4 {
		t.Errorf("in-degree power-law alpha = %v, want in [1.8, 4]", alpha)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(2000, 8, 5)
	if g.NumVertices() != 2000 {
		t.Fatalf("NumVertices = %d, want 2000", g.NumVertices())
	}
	if math.Abs(g.AvgOutDegree()-8) > 1 {
		t.Errorf("AvgOutDegree = %v, want ~8", g.AvgOutDegree())
	}
	// ER graphs have no heavy tail: max degree stays near the mean.
	if g.MaxOutDegree() > 40 {
		t.Errorf("MaxOutDegree = %d, unexpectedly heavy tail for ER", g.MaxOutDegree())
	}
}

func TestRMATShape(t *testing.T) {
	g := RMAT(4000, 10, DefaultRMAT(), 17)
	if g.NumVertices() != 4000 {
		t.Fatalf("NumVertices = %d, want 4000", g.NumVertices())
	}
	if g.AvgOutDegree() < 5 || g.AvgOutDegree() > 11 {
		t.Errorf("AvgOutDegree = %v, want near 10 (dedup shrinks it)", g.AvgOutDegree())
	}
	degs := g.OutDegrees()
	stats := graph.NewDegreeStats(degs)
	if float64(stats.Max) < 4*stats.Mean {
		t.Errorf("RMAT max degree %d vs mean %.1f: expected skew", stats.Max, stats.Mean)
	}
}

func TestPath(t *testing.T) {
	g := Path(10)
	if g.NumEdges() != 9 {
		t.Errorf("Path(10) edges = %d, want 9", g.NumEdges())
	}
	if g.OutDegree(9) != 0 {
		t.Errorf("last vertex out-degree = %d, want 0", g.OutDegree(9))
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(10)
	if g.NumEdges() != 10 {
		t.Errorf("Cycle(10) edges = %d, want 10", g.NumEdges())
	}
	if !g.HasEdge(9, 0) {
		t.Error("missing wrap-around edge")
	}
}

func TestStar(t *testing.T) {
	out := Star(10, true)
	if out.OutDegree(0) != 9 {
		t.Errorf("outward star center degree = %d, want 9", out.OutDegree(0))
	}
	in := Star(10, false)
	in.EnsureInEdges()
	if in.InDegree(0) != 9 {
		t.Errorf("inward star center in-degree = %d, want 9", in.InDegree(0))
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("NumVertices = %d, want 12", g.NumVertices())
	}
	// Interior horizontal + vertical edges, both directions:
	// horizontal: 3 rows * 3 = 9 pairs; vertical: 2*4 = 8 pairs; total 34.
	if g.NumEdges() != 34 {
		t.Errorf("NumEdges = %d, want 34", g.NumEdges())
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.NumEdges() != 20 {
		t.Errorf("Complete(5) edges = %d, want 20", g.NumEdges())
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(1000, 4, 0.1, 23)
	if g.NumVertices() != 1000 {
		t.Fatalf("NumVertices = %d, want 1000", g.NumVertices())
	}
	if g.AvgOutDegree() < 3.5 || g.AvgOutDegree() > 4.001 {
		t.Errorf("AvgOutDegree = %v, want ~4", g.AvgOutDegree())
	}
}

func TestStandInsRegistry(t *testing.T) {
	ds := StandIns()
	if len(ds) != 4 {
		t.Fatalf("StandIns() returned %d datasets, want 4", len(ds))
	}
	wantPrefixes := []string{"LJ", "Wiki", "TW", "UK"}
	for i, d := range ds {
		if d.Prefix != wantPrefixes[i] {
			t.Errorf("dataset %d prefix = %q, want %q", i, d.Prefix, wantPrefixes[i])
		}
		if d.Generate == nil {
			t.Errorf("dataset %s has nil generator", d.Prefix)
		}
		if d.PaperVertices == 0 || d.PaperEdges == 0 {
			t.Errorf("dataset %s missing paper statistics", d.Prefix)
		}
	}
}

func TestByPrefix(t *testing.T) {
	d, err := ByPrefix("TW")
	if err != nil {
		t.Fatalf("ByPrefix(TW): %v", err)
	}
	if d.Name != "Twitter-sim" {
		t.Errorf("Name = %q, want Twitter-sim", d.Name)
	}
	if _, err := ByPrefix("nope"); err == nil {
		t.Error("ByPrefix(nope) succeeded, want error")
	}
}

func TestStandInsTinyScale(t *testing.T) {
	// Small scale must still produce valid connected-ish graphs quickly.
	for _, d := range StandIns() {
		g := d.Generate(0.02, 99)
		if g.NumVertices() < 100 {
			t.Errorf("%s at scale 0.02: only %d vertices", d.Prefix, g.NumVertices())
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s at scale 0.02: no edges", d.Prefix)
		}
	}
}

func TestLJStandInIsNotPowerLawButWikiIs(t *testing.T) {
	lj, err := ByPrefix("LJ")
	if err != nil {
		t.Fatal(err)
	}
	wiki, err := ByPrefix("Wiki")
	if err != nil {
		t.Fatal(err)
	}
	if lj.ScaleFree {
		t.Error("LJ stand-in must be flagged non-scale-free")
	}
	if !wiki.ScaleFree {
		t.Error("Wiki stand-in must be flagged scale-free")
	}
}
