package gen

import (
	"predict/internal/graph"
)

// WithTrapPairs returns a copy of g in which roughly fraction of the
// vertices are rewired into reciprocal pairs: for each chosen pair (v,
// v+1), the out-edges of both vertices are replaced by the single mutual
// edge v <-> v+1. In-edges from the rest of the graph are preserved, so
// rank mass still flows *into* the pairs.
//
// Reciprocal appendage pairs are the minimal rank-trap structure of real
// web and social graphs: delta mass entering a pair recirculates at
// exactly the damping rate, which makes PageRank-style convergence
// damping-dominated (iterations ≈ log τ / log d) instead of
// expander-fast. Because a random walk that enters a pair necessarily
// visits both members, the traps survive walk-based sampling intact —
// the property that lets the paper's transform function preserve
// iteration counts between sample and full runs.
func WithTrapPairs(g *graph.Graph, fraction float64) *graph.Graph {
	n := g.NumVertices()
	if fraction <= 0 || n < 4 {
		return g
	}
	stride := int(2/fraction + 0.5)
	if stride < 2 {
		stride = 2
	}
	isTrap := make([]bool, n)
	for v := 0; v+1 < n; v += stride {
		isTrap[v] = true
		isTrap[v+1] = true
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if isTrap[v] {
			continue // out-edges replaced below
		}
		ws := g.OutWeights(graph.VertexID(v))
		for i, dst := range g.OutNeighbors(graph.VertexID(v)) {
			if ws != nil {
				b.AddWeightedEdge(graph.VertexID(v), dst, ws[i])
			} else {
				b.AddEdge(graph.VertexID(v), dst)
			}
		}
	}
	for v := 0; v+1 < n; v += stride {
		b.AddEdge(graph.VertexID(v), graph.VertexID(v+1))
		b.AddEdge(graph.VertexID(v+1), graph.VertexID(v))
	}
	out, err := b.Build()
	if err != nil {
		panic("gen: WithTrapPairs: " + err.Error())
	}
	return out
}
