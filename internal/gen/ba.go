package gen

import (
	"predict/internal/graph"
)

// BarabasiAlbert builds a directed scale-free graph by preferential
// attachment: vertices arrive one at a time and attach m edges to existing
// vertices chosen proportionally to their current total degree. Each
// attachment produces the edge new->old; with probability backProb the
// reverse edge old->new is added too, creating cycles (needed for
// PageRank-style propagation to be non-trivial).
//
// The construction uses the standard repeated-endpoints trick, so it runs
// in O(n*m) time.
func BarabasiAlbert(n, m int, backProb float64, seed uint64) *graph.Graph {
	if m < 1 {
		m = 1
	}
	if n < m+1 {
		n = m + 1
	}
	rng := rngFor(seed)
	b := graph.NewBuilder(n)

	// endpoints holds one entry per edge endpoint; sampling uniformly from
	// it implements degree-proportional selection.
	endpoints := make([]graph.VertexID, 0, 2*n*m)

	// Seed clique over the first m+1 vertices.
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			if i == j {
				continue
			}
			b.AddEdge(graph.VertexID(i), graph.VertexID(j))
		}
		for k := 0; k < m; k++ {
			endpoints = append(endpoints, graph.VertexID(i))
		}
	}

	for v := m + 1; v < n; v++ {
		for e := 0; e < m; e++ {
			target := endpoints[rng.IntN(len(endpoints))]
			if int(target) == v {
				continue
			}
			b.AddEdge(graph.VertexID(v), target)
			if rng.Float64() < backProb {
				b.AddEdge(target, graph.VertexID(v))
			}
			endpoints = append(endpoints, graph.VertexID(v), target)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic("gen: BarabasiAlbert: " + err.Error())
	}
	return g
}
