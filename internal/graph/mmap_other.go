//go:build !unix

package graph

import "os"

// Platforms without a usable mmap: MmapSnapshot reports
// ErrMmapUnsupported before ever calling these, and callers fall back to
// the copy-in ReadSnapshotFile.
const mmapSupported = false

func mmapFile(*os.File, int64) ([]byte, error) { return nil, ErrMmapUnsupported }

func munmapFile([]byte) error { return nil }
