// mmap-backed zero-copy snapshot loading.
//
// MmapSnapshot maps a PCSR snapshot file read-only and builds a Graph
// whose CSR slices alias the mapped pages directly: no array copies, no
// per-element decode, O(1) heap allocation regardless of graph size, and
// the kernel page cache shares one physical copy of the file across every
// process that maps it. Validation is NOT skipped — the mmap reader runs
// the same frame (header/size/checksum) and structural CSR checks as
// ReadSnapshot, so the two readers accept and reject exactly the same
// inputs (FuzzMmapSnapshot pins this). The checks stream through the
// mapped pages without allocating, which also conveniently pre-faults the
// file sequentially.
//
// Lifetime model: the returned MappedGraph owns the mapping. Close
// releases it explicitly; if the caller never calls Close, a finalizer
// unmaps when the region becomes unreachable. The Graph holds a reference
// to the region, so a live Graph always keeps its pages mapped — it is
// impossible to unmap a graph the GC can still see. After an explicit
// Close every accessor on the graph reads unmapped memory and will fault;
// Close only when no goroutine can touch the graph again.
//
// Mutation of an mmap'd graph's CSR arrays is forbidden and enforced: the
// pages are mapped PROT_READ, so a stray write faults instead of silently
// corrupting the on-disk snapshot for every other process mapping it.
// Lazily built derived state (reverse adjacency, degree artifacts) lives
// on the ordinary heap and works as usual.
//
// Fallback matrix: aliasing requires a little-endian host (the wire
// format is little-endian) and an OS with mmap. On other configurations
// MmapSnapshot returns ErrMmapUnsupported and callers fall back to the
// copy-in ReadSnapshotFile, which works everywhere.
package graph

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"

	"predict/internal/faultinject"
)

// ErrMmapUnsupported reports that zero-copy snapshot mapping is not
// available on this platform (no mmap, or a big-endian host that cannot
// alias the little-endian wire format). Callers should fall back to the
// copy-in ReadSnapshotFile.
var ErrMmapUnsupported = errors.New("graph: mmap snapshots unsupported on this platform")

// hostLittleEndian reports whether the host stores integers little-endian,
// the precondition for aliasing the wire format in place.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mmapRegion is one mapped snapshot file. The Graph built over it keeps a
// reference, so the region outlives every reachable graph; the finalizer
// set at map time unmaps once both the region and its graph are garbage.
type mmapRegion struct {
	data   []byte
	closed atomic.Bool
}

// release unmaps the region exactly once (explicit Close and the GC
// finalizer race benignly through the atomic).
func (r *mmapRegion) release() error {
	if r == nil || !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	data := r.data
	r.data = nil
	return munmapFile(data)
}

// MappedGraph is a Graph whose CSR arrays alias an mmap'd snapshot file,
// plus ownership of the mapping.
type MappedGraph struct {
	g      *Graph
	region *mmapRegion
}

// Graph returns the aliased graph. It stays valid until Close.
func (m *MappedGraph) Graph() *Graph { return m.g }

// SizeBytes reports the mapped file size (the bytes shared with the page
// cache rather than owned by this process's heap).
func (m *MappedGraph) SizeBytes() int64 { return int64(len(m.region.data)) }

// Close unmaps the snapshot. It is idempotent and safe against the
// finalizer. The caller must guarantee no further use of the Graph (or
// any slice obtained from it): after Close those point at unmapped pages.
func (m *MappedGraph) Close() error {
	err := m.region.release()
	// The region can no longer do anything at finalization time.
	runtime.SetFinalizer(m.region, nil)
	return err
}

// MmapSnapshot maps the snapshot at path read-only and returns a graph
// aliasing the mapped CSR arrays. The file is fully validated (checksum
// and structural invariants) exactly like ReadSnapshotFile; only the
// array materialization differs. Returns ErrMmapUnsupported where
// aliasing is impossible — callers then fall back to ReadSnapshotFile.
func MmapSnapshot(path string) (*MappedGraph, error) {
	if !mmapSupported || !hostLittleEndian {
		return nil, ErrMmapUnsupported
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < snapshotHeaderLen+snapshotTrailerLen {
		// Too small to even mmap meaningfully (and mmap of an empty file
		// fails outright); report it through the shared frame check so the
		// error matches ReadSnapshotFile byte for byte.
		_, err := parseSnapshotFrame(make([]byte, size))
		return nil, err
	}
	data, err := mmapFile(f, size)
	if err != nil {
		return nil, fmt.Errorf("graph: snapshot: mmap %s: %w", path, err)
	}
	region := &mmapRegion{data: data}
	g, err := aliasSnapshot(data, region)
	if err != nil {
		region.release()
		return nil, err
	}
	runtime.SetFinalizer(region, func(r *mmapRegion) { r.release() })
	return &MappedGraph{g: g, region: region}, nil
}

// aliasSnapshot validates data (same frame + structural checks as the
// copy-in reader) and builds a Graph whose slices alias it in place.
func aliasSnapshot(data []byte, region *mmapRegion) (*Graph, error) {
	fr, err := parseSnapshotFrame(data)
	if err != nil {
		return nil, err
	}
	body := fr.body
	// The mapping is page-aligned and the header is 24 bytes, so the
	// offsets array is 8-byte aligned and the edge/weight arrays 4-byte
	// aligned — the alignment unsafe.Slice requires.
	offsets := unsafe.Slice((*int64)(unsafe.Pointer(&body[0])), fr.n+1)
	body = body[(fr.n+1)*8:]
	var edges []VertexID
	if fr.m > 0 {
		edges = unsafe.Slice((*VertexID)(unsafe.Pointer(&body[0])), fr.m)
		body = body[fr.m*4:]
	}
	if err := validateSnapshotCSR(offsets, edges, fr.n, fr.m); err != nil {
		return nil, err
	}
	var weights []float32
	if fr.weighted {
		if fr.m > 0 {
			weights = unsafe.Slice((*float32)(unsafe.Pointer(&body[0])), fr.m)
		} else {
			// A weighted graph with zero edges still reports HasWeights,
			// matching the copy-in reader's empty non-nil slice.
			weights = []float32{}
		}
	}
	return &Graph{offsets: offsets, edges: edges, weights: weights, mapped: region}, nil
}

// OpenSnapshot loads the snapshot at path zero-copy when the platform
// supports it and falls back to the copy-in reader otherwise. The boolean
// reports whether the graph aliases a mapping (callers that got mapped =
// false own an ordinary heap graph with no Close obligations).
func OpenSnapshot(path string) (g *Graph, mapped bool, err error) {
	if fault := faultinject.Fire(faultinject.PointGraphOpenSnapshot); fault != nil {
		fault.Sleep()
		if fault.Err != nil {
			return nil, false, fault.Err
		}
	}
	mg, err := MmapSnapshot(path)
	if err == nil {
		return mg.Graph(), true, nil
	}
	if !errors.Is(err, ErrMmapUnsupported) {
		return nil, false, err
	}
	g, err = ReadSnapshotFile(path)
	return g, false, err
}
