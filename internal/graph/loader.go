// Parallel edge-list ingestion. ReadEdgeList (io.go) is the sequential
// reference: scanner, strings.Fields, Builder. The loader here is the
// production path for real datasets: it splits the input at line
// boundaries into shards, parses every shard concurrently on an
// internal/parallel pool with an allocation-lean byte-level lexer, and
// merges the per-shard triple buffers into the final CSR with the same
// two-pass direct construction the subgraph fast path uses — a global
// counting-sort scatter in shard (= file) order followed by the shared
// finishCSR bucket pass. Because the scatter visits edges in exactly the
// order the sequential parser appends them and the bucket pass is the
// same code Builder.Build runs, the loaded Graph is bit-identical to
// ReadEdgeList's at any parallelism; property and fuzz tests in
// loader_test.go hold the two implementations equal.
package graph

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"unicode"
	"unicode/utf8"
	"unsafe"

	"predict/internal/faultinject"
	"predict/internal/parallel"
)

// LoadOptions configures the parallel text loader.
type LoadOptions struct {
	// Parallelism bounds how many shards parse at once; zero selects
	// GOMAXPROCS. Ignored when Pool is set.
	Parallelism int
	// Pool optionally runs the shard parses on an existing worker pool
	// (sharing its bound with other work) instead of a transient one.
	Pool *parallel.Pool

	// chunkBytes overrides the shard target size; zero sizes shards
	// automatically. Tests use tiny values to force line-boundary and
	// cross-shard merge cases.
	chunkBytes int
}

// LoadEdgeList parses the WriteEdgeList text format in parallel and
// returns a Graph bit-identical to ReadEdgeList's on the same input —
// same CSR arrays, same weights, and errors on exactly the same inputs.
// The whole input is read into memory, split into line-aligned shards,
// parsed concurrently, and merged via a direct two-pass CSR build.
func LoadEdgeList(r io.Reader, opts LoadOptions) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return parseEdgeListBytes(data, opts)
}

// LoadFile loads a graph from disk, detecting the format: binary CSR
// snapshots (see WriteSnapshot) by their magic number, anything else as
// the plain-text edge-list format (parsed in parallel).
func LoadFile(path string, opts LoadOptions) (*Graph, error) {
	if fault := faultinject.Fire(faultinject.PointGraphLoadFile); fault != nil {
		fault.Sleep()
		if fault.Err != nil {
			return nil, fault.Err
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, snapshotMagic[:]) {
		return decodeSnapshot(data)
	}
	return parseEdgeListBytes(data, opts)
}

// defaultChunkBytes caps the shard size: past ~1 MiB per shard, more
// shards only improve load balance.
const defaultChunkBytes = 1 << 20

// minChunkBytes floors the shard size: below ~64 KiB the per-shard
// bookkeeping outweighs the parse work.
const minChunkBytes = 64 << 10

// chunkTarget picks a shard size that gives every pool slot several
// shards to balance across, within the [min, default] band.
func chunkTarget(size, parallelism int) int {
	if parallelism < 1 {
		parallelism = 1
	}
	t := size/(8*parallelism) + 1
	if t < minChunkBytes {
		t = minChunkBytes
	}
	if t > defaultChunkBytes {
		t = defaultChunkBytes
	}
	return t
}

// splitChunks splits data into line-aligned chunks of roughly target
// bytes: every chunk except possibly the last ends with '\n', so no line
// straddles two shards.
func splitChunks(data []byte, target int) [][]byte {
	var chunks [][]byte
	for len(data) > 0 {
		if len(data) <= target {
			chunks = append(chunks, data)
			break
		}
		nl := bytes.IndexByte(data[target:], '\n')
		if nl < 0 {
			chunks = append(chunks, data)
			break
		}
		cut := target + nl + 1
		chunks = append(chunks, data[:cut])
		data = data[cut:]
	}
	return chunks
}

// parseEdgeListBytes is the in-memory core of LoadEdgeList.
func parseEdgeListBytes(data []byte, opts LoadOptions) (*Graph, error) {
	target := opts.chunkBytes
	pool := opts.Pool
	if pool == nil {
		pool = parallel.NewPool(opts.Parallelism)
	}
	if target <= 0 {
		target = chunkTarget(len(data), pool.Size())
	}
	chunks := splitChunks(data, target)
	shards := make([]edgeShard, len(chunks))
	// Shard parse failures are not returned through ForEach: every shard
	// runs to its own first error, and the merge below reports the error
	// at the smallest file position, so the failing line is deterministic
	// at any parallelism (ForEach's first-error semantics would surface
	// whichever shard failed first in wall-clock order).
	_ = pool.ForEach(context.Background(), len(chunks), func(_ context.Context, i int) error {
		shards[i].parse(chunks[i])
		return nil
	})
	return mergeShards(shards)
}

// edgeShard is one chunk's parse output: triple buffers in chunk order
// plus the header/line bookkeeping the merge needs to reconstruct global
// line numbers and header semantics.
type edgeShard struct {
	srcs, dsts []VertexID
	weights    []float32 // nil until the shard sees its first weighted edge
	weighted   bool
	maxID      int64 // largest vertex ID in the shard; -1 if no edges
	headerN    int64 // first "# vertices" value in the shard; -1 if none
	headerLine int   // 1-based line (within the chunk) of that header
	lines      int   // lines consumed (exact when err is nil)
	err        error // first parse error, without the line prefix
	errLine    int   // 1-based line (within the chunk) of err
}

// fail records the shard's first error; parsing stops there, matching the
// sequential parser's first-error behavior.
func (s *edgeShard) fail(line int, err error) {
	s.err = err
	s.errLine = line
}

// parse consumes one chunk. It mirrors ReadEdgeList line for line:
// unicode-aware field splitting, the same comment/header rules, the same
// field validation — but works on byte slices with no per-line string or
// field allocations on the happy path.
func (s *edgeShard) parse(chunk []byte) {
	s.maxID = -1
	s.headerN = -1
	var fields [4][]byte
	for len(chunk) > 0 {
		var line []byte
		if nl := bytes.IndexByte(chunk, '\n'); nl >= 0 {
			line = chunk[:nl]
			chunk = chunk[nl+1:]
		} else {
			line = chunk
			chunk = nil
		}
		s.lines++
		if len(line) >= maxLineBytes {
			s.fail(s.lines, fmt.Errorf("line exceeds %d bytes", maxLineBytes))
			return
		}
		nf, ok := splitLineFields(line, &fields)
		if nf == 0 {
			continue // blank line
		}
		if fields[0][0] == '#' {
			// Comment; "# vertices <n>" (exactly three fields) is the header.
			if nf == 3 && ok && byteString(fields[1]) == "vertices" {
				v, err := parseHeaderCount(byteString(fields[2]))
				if err != nil {
					s.fail(s.lines, fmt.Errorf("bad vertex count %q", fields[2]))
					return
				}
				if s.headerN >= 0 {
					if s.headerN != v {
						s.fail(s.lines, fmt.Errorf("vertex count header %d conflicts with earlier header %d", v, s.headerN))
						return
					}
				} else {
					s.headerN = v
					s.headerLine = s.lines
				}
			}
			continue
		}
		if (nf != 2 && nf != 3) || !ok {
			s.fail(s.lines, fmt.Errorf("expected 'src dst [weight]', got %q", bytes.TrimFunc(line, unicode.IsSpace)))
			return
		}
		src, err := parseVertexBytes(fields[0])
		if err != nil {
			s.fail(s.lines, fmt.Errorf("bad source %q: %v", fields[0], err))
			return
		}
		dst, err := parseVertexBytes(fields[1])
		if err != nil {
			s.fail(s.lines, fmt.Errorf("bad destination %q: %v", fields[1], err))
			return
		}
		s.srcs = append(s.srcs, src)
		s.dsts = append(s.dsts, dst)
		if id := int64(src); id > s.maxID {
			s.maxID = id
		}
		if id := int64(dst); id > s.maxID {
			s.maxID = id
		}
		if nf == 3 {
			w, err := parseWeight(byteString(fields[2]))
			if err != nil {
				s.fail(s.lines, fmt.Errorf("bad weight %q: %v", fields[2], err))
				return
			}
			for len(s.weights) < len(s.srcs)-1 {
				s.weights = append(s.weights, 1)
			}
			s.weights = append(s.weights, w)
			s.weighted = true
		} else if s.weighted {
			s.weights = append(s.weights, 1)
		}
	}
}

// asciiSpace marks the single-byte runes unicode.IsSpace reports true for.
var asciiSpace = [utf8.RuneSelf]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// splitLineFields splits line into whitespace-separated fields with
// strings.Fields semantics (any unicode.IsSpace rune separates; invalid
// UTF-8 bytes are field bytes, as in strings.Fields). It fills at most
// len(fields) entries and reports how many fields were found, capped at
// len(fields); ok is false when the line has more fields than fit.
func splitLineFields(line []byte, fields *[4][]byte) (nf int, ok bool) {
	i := 0
	for i < len(line) {
		// Skip separators.
		for i < len(line) {
			if space, size := spaceAt(line, i); space {
				i += size
			} else {
				break
			}
		}
		if i >= len(line) {
			break
		}
		// Consume one field.
		fieldStart := i
		for i < len(line) {
			if space, size := spaceAt(line, i); space {
				break
			} else {
				i += size
			}
		}
		if nf == len(fields) {
			return nf, false
		}
		fields[nf] = line[fieldStart:i]
		nf++
	}
	return nf, true
}

// spaceAt reports whether the rune at line[i:] is whitespace and how many
// bytes it spans.
func spaceAt(line []byte, i int) (space bool, size int) {
	if b := line[i]; b < utf8.RuneSelf {
		return asciiSpace[b], 1
	}
	r, size := utf8.DecodeRune(line[i:])
	return unicode.IsSpace(r), size
}

// byteString is a zero-copy string view of b for transient parsing
// (strconv does not retain its argument). The string must not outlive b.
func byteString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// parseVertexBytes is parseVertex (io.go) over a byte slice: the same
// accepted grammar (optional sign, decimal digits) and the same error
// classes, without the string conversion.
func parseVertexBytes(b []byte) (VertexID, error) {
	if len(b) == 0 {
		return 0, errNotInteger
	}
	neg := false
	i := 0
	switch b[0] {
	case '+':
		i = 1
	case '-':
		neg = true
		i = 1
	}
	if i == len(b) {
		return 0, errNotInteger
	}
	var v int64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, errNotInteger
		}
		v = v*10 + int64(d)
		if v > maxVertexID+1 {
			// Already out of range; keep the sign-specific class without
			// risking int64 overflow on absurdly long digit runs.
			if neg {
				return 0, errNegativeID
			}
			return 0, errVertexTooBig
		}
	}
	if neg {
		if v > 0 {
			return 0, errNegativeID
		}
		return 0, nil // "-0" parses to 0, as strconv does
	}
	if v > maxVertexID {
		return 0, errVertexTooBig
	}
	return VertexID(v), nil
}

// mergeShards combines per-shard parse output into the final Graph. It
// walks shards in file order — replaying header adoption/conflict rules
// and surfacing the earliest error with its absolute line number — then
// builds the CSR directly in two passes: a counting-sort scatter over the
// shard triples in order (exactly the edge order ReadEdgeList feeds the
// Builder) and the shared finishCSR bucket pass.
func mergeShards(shards []edgeShard) (*Graph, error) {
	n := int64(-1)
	maxID := int64(-1)
	totalEdges := 0
	weighted := false
	base := 0 // lines before the current shard
	for i := range shards {
		s := &shards[i]
		// The shard stops at its first error, so a recorded header always
		// precedes the error line; adopt/check it first, as the sequential
		// parser would have.
		if s.headerN >= 0 {
			if n >= 0 && n != s.headerN {
				return nil, fmt.Errorf("graph: line %d: vertex count header %d conflicts with earlier header %d", base+s.headerLine, s.headerN, n)
			}
			n = s.headerN
		}
		if s.err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", base+s.errLine, s.err)
		}
		if s.maxID > maxID {
			maxID = s.maxID
		}
		totalEdges += len(s.srcs)
		weighted = weighted || s.weighted
		base += s.lines
	}
	if n < 0 {
		n = maxID + 1
	}

	// Pass 1: count per-source bucket sizes, validating IDs against the
	// (possibly header-declared) vertex count with the Builder's error
	// wording and global edge numbering.
	offsets := make([]int64, n+1)
	edgeNo := 0
	for i := range shards {
		s := &shards[i]
		for j := range s.srcs {
			if int64(s.srcs[j]) >= n {
				return nil, fmt.Errorf("graph: edge %d has out-of-range source %d (n=%d)", edgeNo, s.srcs[j], n)
			}
			if int64(s.dsts[j]) >= n {
				return nil, fmt.Errorf("graph: edge %d has out-of-range destination %d (n=%d)", edgeNo, s.dsts[j], n)
			}
			offsets[s.srcs[j]+1]++
			edgeNo++
		}
	}
	for i := int64(1); i <= n; i++ {
		offsets[i] += offsets[i-1]
	}

	// Pass 2: scatter destinations (and weights) into their buckets in
	// shard order. Shards concatenated in order are the sequential edge
	// order, and the scatter preserves in-bucket arrival order, so the
	// buckets handed to finishCSR match Builder.Build's exactly.
	edges := make([]VertexID, totalEdges)
	var weights []float32
	if weighted {
		weights = make([]float32, totalEdges)
	}
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for i := range shards {
		s := &shards[i]
		for j, src := range s.srcs {
			pos := cursor[src]
			cursor[src]++
			edges[pos] = s.dsts[j]
			if weighted {
				w := float32(1)
				if j < len(s.weights) {
					w = s.weights[j]
				}
				weights[pos] = w
			}
		}
	}
	return finishCSR(int(n), offsets, edges, weights, false), nil
}
