package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestBuilderCSRInvariants feeds the builder random edge soups and checks
// the CSR invariants the rest of the system depends on: adjacency sorted
// strictly ascending per vertex (sorted + deduplicated), all IDs in
// range, offsets monotone.
func TestBuilderCSRInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw%200) + 2
		m := int(mRaw % 2000)
		rng := rand.New(rand.NewPCG(seed, seed^77))
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			b.AddEdge(VertexID(rng.IntN(n)), VertexID(rng.IntN(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var total int64
		for v := 0; v < n; v++ {
			adj := g.OutNeighbors(VertexID(v))
			total += int64(len(adj))
			for i, dst := range adj {
				if int(dst) < 0 || int(dst) >= n {
					return false
				}
				if int(dst) == v {
					return false // self-loop kept
				}
				if i > 0 && adj[i-1] >= dst {
					return false // unsorted or duplicate
				}
			}
		}
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestInducedSubgraphPreservesEdgesExactly checks against a brute-force
// reference: an edge is in the subgraph iff both endpoints are sampled
// and the edge is in the original.
func TestInducedSubgraphPreservesEdgesExactly(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed*3+1))
		n := rng.IntN(60) + 5
		b := NewBuilder(n)
		for i := 0; i < n*3; i++ {
			b.AddEdge(VertexID(rng.IntN(n)), VertexID(rng.IntN(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		k := rng.IntN(n-1) + 1
		perm := rng.Perm(n)
		verts := make([]VertexID, k)
		for i := 0; i < k; i++ {
			verts[i] = VertexID(perm[i])
		}
		sub, m, err := InducedSubgraph(g, verts)
		if err != nil {
			return false
		}
		// Count original edges with both endpoints sampled.
		inSample := make(map[VertexID]bool, k)
		for _, v := range verts {
			inSample[v] = true
		}
		var want int64
		for v := 0; v < n; v++ {
			if !inSample[VertexID(v)] {
				continue
			}
			for _, dst := range g.OutNeighbors(VertexID(v)) {
				if inSample[dst] {
					want++
				}
			}
		}
		if sub.NumEdges() != want {
			return false
		}
		// Every subgraph edge maps back to an original edge.
		for sv := 0; sv < sub.NumVertices(); sv++ {
			ov := m.OriginalOf(VertexID(sv))
			for _, sd := range sub.OutNeighbors(VertexID(sv)) {
				if !g.HasEdge(ov, m.OriginalOf(sd)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestReverseIsInvolution checks Reverse(Reverse(g)) == g.
func TestReverseIsInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+9))
		n := rng.IntN(50) + 2
		b := NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(VertexID(rng.IntN(n)), VertexID(rng.IntN(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		rr := g.Reverse().Reverse()
		if rr.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, c := g.OutNeighbors(VertexID(v)), rr.OutNeighbors(VertexID(v))
			if len(a) != len(c) {
				return false
			}
			for i := range a {
				if a[i] != c[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestUndirectedIsSymmetric checks that the symmetric closure contains the
// reverse of every edge.
func TestUndirectedIsSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+13))
		n := rng.IntN(40) + 2
		b := NewBuilder(n)
		for i := 0; i < n*2; i++ {
			b.AddEdge(VertexID(rng.IntN(n)), VertexID(rng.IntN(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		u := g.Undirected()
		for v := 0; v < n; v++ {
			for _, dst := range u.OutNeighbors(VertexID(v)) {
				if !u.HasEdge(dst, VertexID(v)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInOutDegreeSumsMatch checks sum(out-degrees) == sum(in-degrees) ==
// edge count.
func TestInOutDegreeSumsMatch(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+21))
		n := rng.IntN(80) + 2
		b := NewBuilder(n)
		for i := 0; i < n*3; i++ {
			b.AddEdge(VertexID(rng.IntN(n)), VertexID(rng.IntN(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var outSum, inSum int64
		for _, d := range g.OutDegrees() {
			outSum += int64(d)
		}
		for _, d := range g.InDegrees() {
			inSum += int64(d)
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
