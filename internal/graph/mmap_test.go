package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

// writeSnapTemp writes g as a snapshot under t's temp dir and returns
// the path.
func writeSnapTemp(t *testing.T, g *Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.snap")
	if err := WriteSnapshotFile(path, g); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	return path
}

// mmapTestGraphs covers the shapes the alias path special-cases: plain,
// weighted, edgeless (nil edges), and weighted-edgeless (empty non-nil
// weights).
func mmapTestGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	weighted := NewBuilder(4)
	weighted.AddWeightedEdge(0, 3, 1.5)
	weighted.AddWeightedEdge(2, 1, -0.25)
	weighted.AddWeightedEdge(3, 0, 42)
	wg, err := weighted.Build()
	if err != nil {
		t.Fatal(err)
	}
	emptyWeighted := NewBuilder(2)
	emptyWeighted.AddWeightedEdge(0, 0, 9) // self-loop: dropped, weights stay on
	ewg, err := emptyWeighted.Build()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"plain":            MustFromEdges(5, [][2]VertexID{{0, 1}, {0, 4}, {2, 3}, {4, 0}}),
		"weighted":         wg,
		"edgeless":         MustFromEdges(3, nil),
		"weighted_no_edge": ewg,
	}
}

// TestMmapSnapshotMatchesRead pins the alias path's core contract: the
// mapped graph is bit-identical to the copy-in reader's on every shape,
// and lazily built derived state (reverse adjacency, degree artifacts)
// works on mapped graphs because it lives on the heap.
func TestMmapSnapshotMatchesRead(t *testing.T) {
	if !mmapSupported || !hostLittleEndian {
		t.Skip("mmap snapshots unsupported on this platform")
	}
	for name, g := range mmapTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			path := writeSnapTemp(t, g)
			want, err := ReadSnapshotFile(path)
			if err != nil {
				t.Fatalf("ReadSnapshotFile: %v", err)
			}
			mg, err := MmapSnapshot(path)
			if err != nil {
				t.Fatalf("MmapSnapshot: %v", err)
			}
			defer mg.Close()
			got := mg.Graph()
			if !graphsIdentical(want, got) {
				t.Fatal("mapped graph differs from copy-in read")
			}
			if fi, err := os.Stat(path); err != nil || mg.SizeBytes() != fi.Size() {
				t.Fatalf("SizeBytes = %d, want file size (%v)", mg.SizeBytes(), err)
			}
			got.EnsureInEdges()
			want.EnsureInEdges()
			for v := 0; v < got.NumVertices(); v++ {
				a, b := got.InNeighbors(VertexID(v)), want.InNeighbors(VertexID(v))
				if len(a) != len(b) {
					t.Fatalf("in-degree of %d differs on mapped graph", v)
				}
			}
			if got.MaxOutDegree() != want.MaxOutDegree() {
				t.Fatal("degree artifacts differ on mapped graph")
			}
		})
	}
}

// TestMmapSnapshotRejectionParity feeds both readers the same corrupted
// inputs and requires them to agree — same acceptance, same error text.
// The two paths share parseSnapshotFrame and validateSnapshotCSR, and
// this test keeps it that way.
func TestMmapSnapshotRejectionParity(t *testing.T) {
	if !mmapSupported || !hostLittleEndian {
		t.Skip("mmap snapshots unsupported on this platform")
	}
	g := MustFromEdges(5, [][2]VertexID{{0, 1}, {0, 4}, {2, 3}, {4, 0}})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	corrupt := func(mutate func(b []byte) []byte) []byte {
		return mutate(bytes.Clone(valid))
	}
	// restamp recomputes the trailing checksum, so a mutation reaches the
	// structural CSR checks instead of dying at the frame stage.
	restamp := func(b []byte) []byte {
		sum := xxhash64Sum(b[:len(b)-snapshotTrailerLen], 0)
		binary.LittleEndian.PutUint64(b[len(b)-snapshotTrailerLen:], sum)
		return b
	}
	edgesOff := snapshotHeaderLen + 6*8 // n=5: offsets array is 6 entries
	cases := map[string][]byte{
		"valid":          bytes.Clone(valid),
		"bad_magic":      corrupt(func(b []byte) []byte { b[0] ^= 0xff; return b }),
		"bad_version":    corrupt(func(b []byte) []byte { b[4] = 99; return b }),
		"bad_flags":      corrupt(func(b []byte) []byte { b[6] = 0x80; return b }),
		"bad_checksum":   corrupt(func(b []byte) []byte { b[len(b)-1] ^= 1; return b }),
		"flipped_offset": corrupt(func(b []byte) []byte { b[snapshotHeaderLen+8] ^= 0x40; return b }),
		"flipped_edge":   corrupt(func(b []byte) []byte { b[len(b)-snapshotTrailerLen-2] ^= 0x40; return b }),
		"truncated":      valid[:len(valid)-3],
		"tiny":           valid[:5],
		"empty":          {},
		"trailing_junk":  append(bytes.Clone(valid), 0),
		"offsets_not_monotone": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[snapshotHeaderLen+8:], 5)
			return restamp(b)
		}),
		"edge_out_of_range": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[edgesOff:], 200)
			return restamp(b)
		}),
		"adjacency_unsorted": corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[edgesOff+4:], 1) // bucket of 0 becomes [1,1]
			return restamp(b)
		}),
	}
	dir := t.TempDir()
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".snap")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			rg, readErr := ReadSnapshotFile(path)
			mg, mmapErr := MmapSnapshot(path)
			if (readErr == nil) != (mmapErr == nil) {
				t.Fatalf("readers disagree: copy-in err = %v, mmap err = %v", readErr, mmapErr)
			}
			if readErr != nil {
				if readErr.Error() != mmapErr.Error() {
					t.Fatalf("error text differs:\n  copy-in: %v\n  mmap:    %v", readErr, mmapErr)
				}
				return
			}
			defer mg.Close()
			if !graphsIdentical(rg, mg.Graph()) {
				t.Fatal("accepted input decodes differently across readers")
			}
		})
	}
}

// TestMappedGraphClose pins the explicit-release contract: Close is
// idempotent, and a second MappedGraph over the same file is independent
// of the first's lifetime.
func TestMappedGraphClose(t *testing.T) {
	if !mmapSupported || !hostLittleEndian {
		t.Skip("mmap snapshots unsupported on this platform")
	}
	g := MustFromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}})
	path := writeSnapTemp(t, g)
	a, err := MmapSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MmapSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	// b's mapping is its own; a's Close must not disturb it.
	if !graphsIdentical(g, b.Graph()) {
		t.Fatal("independent mapping affected by sibling Close")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenSnapshotFallback pins OpenSnapshot's contract on both kinds of
// platform: a graph identical to the copy-in reader's, with mapped
// reporting which path produced it.
func TestOpenSnapshotFallback(t *testing.T) {
	g := MustFromEdges(4, [][2]VertexID{{0, 1}, {1, 2}, {2, 3}})
	path := writeSnapTemp(t, g)
	got, mapped, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := mmapSupported && hostLittleEndian; mapped != want {
		t.Fatalf("mapped = %v, want %v", mapped, want)
	}
	if !graphsIdentical(g, got) {
		t.Fatal("OpenSnapshot graph differs from source")
	}
	// Missing files surface the os error, not a fallback attempt loop.
	if _, _, err := OpenSnapshot(filepath.Join(t.TempDir(), "absent.snap")); err == nil {
		t.Fatal("OpenSnapshot of a missing file succeeded")
	}
}
