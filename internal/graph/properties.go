package graph

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
)

// DegreeStats summarizes a degree sequence.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Median   float64
	// P90 is the 90th-percentile degree.
	P90 int
	// ZeroFraction is the fraction of vertices with degree zero.
	ZeroFraction float64
}

// NewDegreeStats computes summary statistics of a degree sequence.
func NewDegreeStats(degrees []int) DegreeStats {
	if len(degrees) == 0 {
		return DegreeStats{}
	}
	sorted := make([]int, len(degrees))
	copy(sorted, degrees)
	sort.Ints(sorted)
	var sum int64
	zeros := 0
	for _, d := range sorted {
		sum += int64(d)
		if d == 0 {
			zeros++
		}
	}
	n := len(sorted)
	return DegreeStats{
		Min:          sorted[0],
		Max:          sorted[n-1],
		Mean:         float64(sum) / float64(n),
		Median:       float64(sorted[n/2]),
		P90:          sorted[(n*9)/10],
		ZeroFraction: float64(zeros) / float64(n),
	}
}

// PowerLawAlpha estimates the exponent of a discrete power-law degree
// distribution by maximum likelihood (Clauset/Shalizi/Newman form):
//
//	alpha = 1 + n / sum(ln(d_i / (dmin - 0.5)))
//
// over degrees d_i >= dmin. It returns 0 if fewer than two vertices have
// degree >= dmin.
func PowerLawAlpha(degrees []int, dmin int) float64 {
	if dmin < 1 {
		dmin = 1
	}
	var sum float64
	n := 0
	for _, d := range degrees {
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			n++
		}
	}
	if n < 2 || sum == 0 {
		return 0
	}
	return 1 + float64(n)/sum
}

// KolmogorovSmirnov computes the two-sample KS D-statistic between two
// degree sequences: the maximum absolute difference between their empirical
// CDFs. It is the fidelity measure Leskovec & Faloutsos use to compare a
// sample's degree distribution against the full graph's.
func KolmogorovSmirnov(a, b []int) float64 {
	sa := make([]int, len(a))
	copy(sa, a)
	sort.Ints(sa)
	sb := make([]int, len(b))
	copy(sb, b)
	sort.Ints(sb)
	return KolmogorovSmirnovSorted(sa, sb)
}

// KolmogorovSmirnovSorted is KolmogorovSmirnov over sequences that are
// already sorted ascending — the memoized form SortedOutDegrees and
// SortedInDegrees serve — so repeated fidelity measurements against the
// same base graph skip the per-call copy and O(n log n) sort. The inputs
// are read, never modified.
func KolmogorovSmirnovSorted(sa, sb []int) float64 {
	if len(sa) == 0 || len(sb) == 0 {
		return 1
	}
	i, j := 0, 0
	var d float64
	for i < len(sa) && j < len(sb) {
		var x int
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// bfsScratch is the reusable BFS workspace EffectiveDiameter runs on: an
// epoch-stamped distance table (seen.Marked(v) means dist[v] is valid for
// the current source) and a queue walked by head index instead of
// re-slicing. Pooled so concurrent property measurements do not contend.
type bfsScratch struct {
	seen  EpochTable
	dist  []int32
	queue []VertexID
}

var bfsScratchPool = sync.Pool{New: func() any { return new(bfsScratch) }}

func (s *bfsScratch) size(n int) {
	if s.seen.Reset(n) {
		s.dist = make([]int32, n)
	}
	s.dist = s.dist[:n]
	if cap(s.queue) < n {
		s.queue = make([]VertexID, 0, n)
	}
}

// EffectiveDiameter estimates the effective diameter of g: the smallest
// hop count within which at least quantile (e.g. 0.9) of all *reachable*
// source/destination pairs can reach each other, following out-edges.
// It runs BFS from at most sources randomly chosen start vertices; pass
// sources >= NumVertices for the exact value. A seeded rng keeps the
// estimate deterministic.
func EffectiveDiameter(g *Graph, quantile float64, sources int, rng *rand.Rand) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	if sources > n {
		sources = n
	}
	order := rng.Perm(n)[:sources]

	// hopCounts[h] = number of (src, dst) pairs at BFS distance exactly h.
	hopCounts := make([]int64, 1, 64)
	sc := bfsScratchPool.Get().(*bfsScratch)
	defer bfsScratchPool.Put(sc)
	sc.size(n)
	for _, srcIdx := range order {
		// A fresh epoch invalidates every dist entry in O(1) instead of
		// the per-source O(n) -1 refill.
		sc.seen.Bump()
		src := VertexID(srcIdx)
		sc.seen.Mark(src)
		sc.dist[src] = 0
		queue := append(sc.queue[:0], src)
		hopCounts[0]++
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			dv := sc.dist[v]
			for _, w := range g.OutNeighbors(v) {
				if !sc.seen.Marked(w) {
					sc.seen.Mark(w)
					sc.dist[w] = dv + 1
					for int(dv)+1 >= len(hopCounts) {
						hopCounts = append(hopCounts, 0)
					}
					hopCounts[dv+1]++
					queue = append(queue, w)
				}
			}
		}
		sc.queue = queue[:0]
	}

	var total int64
	for _, c := range hopCounts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(quantile * float64(total)))
	var cum int64
	for h, c := range hopCounts {
		cum += c
		if cum >= target {
			return h
		}
	}
	return len(hopCounts) - 1
}

// ClusteringCoefficient estimates the mean local clustering coefficient of
// g treated as a directed graph (a triangle is counted when both (u,v) and
// (u,w) exist and (v,w) exists). It samples at most samples vertices with
// degree >= 2; pass samples >= NumVertices for the exact value.
func ClusteringCoefficient(g *Graph, samples int, rng *rand.Rand) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	order := rng.Perm(n)
	var sum float64
	count := 0
	for _, vi := range order {
		if count >= samples {
			break
		}
		v := VertexID(vi)
		adj := g.OutNeighbors(v)
		if len(adj) < 2 {
			continue
		}
		closed := 0
		possible := 0
		for i := 0; i < len(adj); i++ {
			for j := i + 1; j < len(adj); j++ {
				possible++
				if g.HasEdge(adj[i], adj[j]) || g.HasEdge(adj[j], adj[i]) {
					closed++
				}
			}
		}
		sum += float64(closed) / float64(possible)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// WeaklyConnectedComponents labels every vertex with a component ID
// (0-based, ordered by first appearance) ignoring edge direction, and
// returns the labels and the number of components.
func WeaklyConnectedComponents(g *Graph) (labels []int32, numComponents int) {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range g.OutNeighbors(VertexID(v)) {
			union(int32(v), int32(w))
		}
	}
	labels = make([]int32, n)
	next := int32(0)
	rename := make(map[int32]int32, 16)
	for v := 0; v < n; v++ {
		root := find(int32(v))
		id, ok := rename[root]
		if !ok {
			id = next
			rename[root] = id
			next++
		}
		labels[v] = id
	}
	return labels, int(next)
}

// LargestComponentFraction reports the fraction of vertices in the largest
// weakly connected component. Connectivity of samples is a primary
// sampling-fidelity requirement in the paper (§4.1).
func LargestComponentFraction(g *Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	labels, k := WeaklyConnectedComponents(g)
	sizes := make([]int, k)
	for _, l := range labels {
		sizes[l]++
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	return float64(maxSize) / float64(n)
}

// InOutRatioStats computes the mean of per-vertex in/out degree ratios over
// vertices with non-zero out-degree. The paper's sampling requirements call
// for the sample to preserve in/out degree proportionality (§4.1).
func InOutRatioStats(g *Graph) float64 {
	g.EnsureInEdges()
	n := g.NumVertices()
	var sum float64
	count := 0
	for v := 0; v < n; v++ {
		out := g.OutDegree(VertexID(v))
		if out == 0 {
			continue
		}
		sum += float64(g.InDegree(VertexID(v))) / float64(out)
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// Properties bundles the structural measurements reported in Table 2 and
// used to validate sampling fidelity.
type Properties struct {
	NumVertices       int
	NumEdges          int64
	AvgOutDegree      float64
	MaxOutDegree      int
	EffectiveDiameter int
	Clustering        float64
	PowerLawAlpha     float64
	LargestWCC        float64
	InOutRatio        float64
}

// Measure computes the full property bundle using the given number of
// BFS sources and clustering samples (both bounded by n).
func Measure(g *Graph, bfsSources, ccSamples int, seed uint64) Properties {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	// The shared memoized degree slice: MaxOutDegree comes straight from
	// the degree artifact (the old NewDegreeStats(degs).Max paid a full
	// O(n log n) sort just to read the last element), and PowerLawAlpha
	// only reads the sequence.
	degs := g.CachedOutDegrees()
	return Properties{
		NumVertices:       g.NumVertices(),
		NumEdges:          g.NumEdges(),
		AvgOutDegree:      g.AvgOutDegree(),
		MaxOutDegree:      g.MaxOutDegree(),
		EffectiveDiameter: EffectiveDiameter(g, 0.9, bfsSources, rng),
		Clustering:        ClusteringCoefficient(g, ccSamples, rng),
		PowerLawAlpha:     PowerLawAlpha(degs, 2),
		LargestWCC:        LargestComponentFraction(g),
		InOutRatio:        InOutRatioStats(g),
	}
}
