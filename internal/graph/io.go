package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g as a plain-text edge list: one "src dst [weight]"
// line per edge, preceded by a header line "# vertices <n>". The format
// round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.OutWeights(VertexID(v))
		for i, dst := range g.OutNeighbors(VertexID(v)) {
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, dst, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, dst)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the vertex-count header are ignored, as are blank
// lines. If no header is present the vertex count is inferred as
// max(vertex ID)+1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := -1
	var srcs, dsts []VertexID
	var weights []float32
	weighted := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[1] == "vertices" {
				v, err := strconv.Atoi(fields[2])
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[2])
				}
				n = v
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q", lineNo, fields[0])
		}
		dst, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination %q", lineNo, fields[1])
		}
		srcs = append(srcs, VertexID(src))
		dsts = append(dsts, VertexID(dst))
		if len(fields) == 3 {
			w, err := strconv.ParseFloat(fields[2], 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q", lineNo, fields[2])
			}
			for len(weights) < len(srcs)-1 {
				weights = append(weights, 1)
			}
			weights = append(weights, float32(w))
			weighted = true
		} else if weighted {
			weights = append(weights, 1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n < 0 {
		maxID := -1
		for i := range srcs {
			if int(srcs[i]) > maxID {
				maxID = int(srcs[i])
			}
			if int(dsts[i]) > maxID {
				maxID = int(dsts[i])
			}
		}
		n = maxID + 1
	}
	b := NewBuilder(n)
	for i := range srcs {
		if weighted {
			b.AddWeightedEdge(srcs[i], dsts[i], weights[i])
		} else {
			b.AddEdge(srcs[i], dsts[i])
		}
	}
	return b.Build()
}
