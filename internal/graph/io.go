package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// maxLineBytes bounds one edge-list line. Lines at or past this length are
// rejected with a positional error by both the sequential and the parallel
// text parser (it matches the sequential scanner's buffer, so the two
// paths fail on exactly the same inputs).
const maxLineBytes = 1 << 20

// maxVertexCount is the largest legal "# vertices" header value: vertex
// IDs are int32, so a graph holds at most MaxInt32 vertices.
const maxVertexCount = math.MaxInt32

// maxVertexID is the largest legal vertex ID (the count maxVertexCount
// must still exceed the ID).
const maxVertexID = math.MaxInt32 - 1

// Shared validation errors for the text parsers. Both ReadEdgeList and the
// parallel chunk parser classify malformed fields into these, so the two
// paths accept and reject identical inputs.
var (
	errNotInteger    = errors.New("not an integer")
	errNegativeID    = errors.New("vertex IDs must be non-negative")
	errVertexTooBig  = fmt.Errorf("vertex ID exceeds %d", int64(maxVertexID))
	errWeightFinite  = errors.New("weight must be finite (no NaN or Inf)")
	errHeaderPattern = errors.New("bad vertex count")
)

// WriteEdgeList writes g as a plain-text edge list: one "src dst [weight]"
// line per edge, preceded by a header line "# vertices <n>". The format
// round-trips through ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d\n", g.NumVertices()); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		ws := g.OutWeights(VertexID(v))
		for i, dst := range g.OutNeighbors(VertexID(v)) {
			var err error
			if ws != nil {
				_, err = fmt.Fprintf(bw, "%d %d %g\n", v, dst, ws[i])
			} else {
				_, err = fmt.Fprintf(bw, "%d %d\n", v, dst)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// parseVertex parses a vertex ID field, rejecting negative and oversized
// IDs (IDs are int32; the vertex count must still exceed the ID).
func parseVertex(s string) (VertexID, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		if errors.Is(err, strconv.ErrRange) {
			// Magnitude overflowed int64: the ID is out of range either way,
			// classify by sign for a precise message.
			if strings.HasPrefix(s, "-") {
				return 0, errNegativeID
			}
			return 0, errVertexTooBig
		}
		return 0, errNotInteger
	}
	if v < 0 {
		return 0, errNegativeID
	}
	if v > maxVertexID {
		return 0, errVertexTooBig
	}
	return VertexID(v), nil
}

// parseWeight parses an edge weight field, rejecting NaN and ±Inf: a
// non-finite weight silently poisons every downstream aggregate (degree-
// weighted features, message-byte models), so it is a parse error, not
// data.
func parseWeight(s string) (float32, error) {
	w, err := strconv.ParseFloat(s, 32)
	if err != nil {
		if errors.Is(err, strconv.ErrRange) {
			return 0, errWeightFinite
		}
		return 0, errors.New("not a number")
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return 0, errWeightFinite
	}
	return float32(w), nil
}

// parseHeaderCount parses the <n> of a "# vertices <n>" header.
func parseHeaderCount(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 || v > maxVertexCount {
		return 0, errHeaderPattern
	}
	return v, nil
}

// ReadEdgeList parses the format produced by WriteEdgeList. Lines starting
// with '#' other than the vertex-count header are ignored, as are blank
// lines. A "# vertices <n>" header may appear anywhere in the file and is
// always honoured; repeated headers must agree (a conflicting later header
// is a positional error, never silently preferred or ignored). If no
// header is present the vertex count is inferred as max(vertex ID)+1.
//
// Malformed input — negative or oversized vertex IDs, NaN/±Inf weights,
// non-numeric fields, wrong field counts, oversized lines — fails with an
// error naming the offending line.
//
// ReadEdgeList is the sequential reference implementation; LoadEdgeList
// parses the same format in parallel and produces a bit-identical Graph.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	n := int64(-1)
	var srcs, dsts []VertexID
	var weights []float32
	weighted := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[1] == "vertices" {
				v, err := parseHeaderCount(fields[2])
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[2])
				}
				if n >= 0 && n != v {
					return nil, fmt.Errorf("graph: line %d: vertex count header %d conflicts with earlier header %d", lineNo, v, n)
				}
				n = v
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: expected 'src dst [weight]', got %q", lineNo, line)
		}
		src, err := parseVertex(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		dst, err := parseVertex(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination %q: %v", lineNo, fields[1], err)
		}
		srcs = append(srcs, src)
		dsts = append(dsts, dst)
		if len(fields) == 3 {
			w, err := parseWeight(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineNo, fields[2], err)
			}
			for len(weights) < len(srcs)-1 {
				weights = append(weights, 1)
			}
			weights = append(weights, w)
			weighted = true
		} else if weighted {
			weights = append(weights, 1)
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("graph: line %d: line exceeds %d bytes", lineNo+1, maxLineBytes)
		}
		return nil, err
	}
	if n < 0 {
		maxID := -1
		for i := range srcs {
			if int(srcs[i]) > maxID {
				maxID = int(srcs[i])
			}
			if int(dsts[i]) > maxID {
				maxID = int(dsts[i])
			}
		}
		n = int64(maxID + 1)
	}
	b := NewBuilder(int(n))
	for i := range srcs {
		if weighted {
			b.AddWeightedEdge(srcs[i], dsts[i], weights[i])
		} else {
			b.AddEdge(srcs[i], dsts[i])
		}
	}
	return b.Build()
}
