package graph

import (
	"sync"
	"testing"
)

// TestEnsureInEdgesConcurrent is the -race regression for the lazy
// reverse-adjacency build: parallel fit pipelines share the base graph and
// may hit EnsureInEdges (via InDegrees, sampling fidelity, feature
// extraction) from many goroutines at once. Before the sync.Once guard
// this was an unguarded write to shared state.
func TestEnsureInEdgesConcurrent(t *testing.T) {
	const n = 500
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(VertexID(i), VertexID((i+1)%n))
		b.AddEdge(VertexID(i), VertexID((i*13+7)%n))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	degs := make([][]int, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			// Mix the three entry points that trigger or depend on the
			// lazy build.
			switch i % 3 {
			case 0:
				g.EnsureInEdges()
				degs[i] = g.InDegrees()
			case 1:
				degs[i] = g.InDegrees()
			default:
				g.EnsureInEdges()
				d := make([]int, n)
				for v := 0; v < n; v++ {
					d[v] = len(g.InNeighbors(VertexID(v)))
				}
				degs[i] = d
			}
		}(i)
	}
	wg.Wait()

	if !g.HasInEdges() {
		t.Fatal("HasInEdges = false after concurrent EnsureInEdges")
	}
	want := degs[0]
	var total int
	for _, d := range want {
		total += d
	}
	if int64(total) != g.NumEdges() {
		t.Fatalf("in-degrees sum to %d, want %d", total, g.NumEdges())
	}
	for i := 1; i < goroutines; i++ {
		for v := range want {
			if degs[i][v] != want[v] {
				t.Fatalf("goroutine %d saw in-degree %d for vertex %d, goroutine 0 saw %d",
					i, degs[i][v], v, want[v])
			}
		}
	}
}
