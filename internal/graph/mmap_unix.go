//go:build unix

package graph

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared, so every process
// mapping the same snapshot shares one page-cache copy.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size > math.MaxInt {
		return nil, fmt.Errorf("file size %d exceeds the address space", size)
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
