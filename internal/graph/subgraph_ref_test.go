package graph

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"
)

// referenceInducedSubgraph is the pre-rewrite Builder-based implementation,
// kept verbatim as the executable specification the direct-CSR fast path
// must match bit for bit.
func referenceInducedSubgraph(g *Graph, vertices []VertexID) (*Graph, []VertexID, error) {
	n := g.NumVertices()
	toSample := make([]VertexID, n)
	for i := range toSample {
		toSample[i] = -1
	}
	toOriginal := make([]VertexID, len(vertices))
	for i, v := range vertices {
		if int(v) < 0 || int(v) >= n {
			return nil, nil, fmt.Errorf("vertex %d out of range (n=%d)", v, n)
		}
		if toSample[v] != -1 {
			return nil, nil, fmt.Errorf("duplicate vertex %d", v)
		}
		toSample[v] = VertexID(i)
		toOriginal[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, orig := range toOriginal {
		ws := g.OutWeights(orig)
		for j, dst := range g.OutNeighbors(orig) {
			sd := toSample[dst]
			if sd < 0 {
				continue
			}
			if ws != nil {
				b.AddWeightedEdge(VertexID(i), sd, ws[j])
			} else {
				b.AddEdge(VertexID(i), sd)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, toOriginal, nil
}

// randomTestGraph builds a random graph through the Builder: random edges
// with duplicates and self-loops in the input (deduplicated/dropped by
// Build), optionally weighted, so the subgraph property test exercises
// every code path of the fast CSR induction.
func randomTestGraph(rng *rand.Rand, weighted bool) *Graph {
	n := 1 + rng.IntN(60)
	b := NewBuilder(n)
	m := rng.IntN(4 * n)
	for i := 0; i < m; i++ {
		src := VertexID(rng.IntN(n))
		dst := VertexID(rng.IntN(n))
		if weighted {
			b.AddWeightedEdge(src, dst, float32(rng.IntN(16)))
		} else {
			b.AddEdge(src, dst)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// requireSameGraph asserts two graphs are structurally identical: same
// vertex count, same sorted adjacency per vertex, same weights.
func requireSameGraph(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: %d vertices, reference has %d", label, got.NumVertices(), want.NumVertices())
	}
	if got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: %d edges, reference has %d", label, got.NumEdges(), want.NumEdges())
	}
	if got.HasWeights() != want.HasWeights() {
		t.Fatalf("%s: HasWeights %v, reference %v", label, got.HasWeights(), want.HasWeights())
	}
	for v := 0; v < want.NumVertices(); v++ {
		id := VertexID(v)
		ga, wa := got.OutNeighbors(id), want.OutNeighbors(id)
		if len(ga) != len(wa) {
			t.Fatalf("%s: vertex %d has %d out-edges, reference has %d", label, v, len(ga), len(wa))
		}
		for i := range wa {
			if ga[i] != wa[i] {
				t.Fatalf("%s: vertex %d edge %d: %d, reference %d", label, v, i, ga[i], wa[i])
			}
		}
		gw, ww := got.OutWeights(id), want.OutWeights(id)
		for i := range ww {
			if gw[i] != ww[i] {
				t.Fatalf("%s: vertex %d weight %d: %v, reference %v", label, v, i, gw[i], ww[i])
			}
		}
	}
}

// TestInducedSubgraphMatchesBuilderReference drives the direct-CSR
// induction against the Builder-based reference on hundreds of random
// graphs (weighted and unweighted) and random vertex subsets in random
// order, asserting bit-identical subgraphs and mappings.
func TestInducedSubgraphMatchesBuilderReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(2024, 7))
	for trial := 0; trial < 300; trial++ {
		weighted := trial%2 == 1
		g := randomTestGraph(rng, weighted)
		n := g.NumVertices()
		k := 1 + rng.IntN(n)
		verts := make([]VertexID, 0, k)
		for _, p := range rng.Perm(n)[:k] {
			verts = append(verts, VertexID(p))
		}
		got, mapping, err := InducedSubgraph(g, verts)
		if err != nil {
			t.Fatalf("trial %d: InducedSubgraph: %v", trial, err)
		}
		want, refOriginal, err := referenceInducedSubgraph(g, verts)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		requireSameGraph(t, got, want, fmt.Sprintf("trial %d (weighted=%v)", trial, weighted))
		for i, orig := range refOriginal {
			if mapping.OriginalOf(VertexID(i)) != orig {
				t.Fatalf("trial %d: OriginalOf(%d) = %d, reference %d",
					trial, i, mapping.OriginalOf(VertexID(i)), orig)
			}
		}
		for v := 0; v < n; v++ {
			s, ok := mapping.SampleOf(VertexID(v))
			wantIn := false
			var wantS VertexID
			for i, orig := range refOriginal {
				if orig == VertexID(v) {
					wantIn, wantS = true, VertexID(i)
				}
			}
			if ok != wantIn || (ok && s != wantS) {
				t.Fatalf("trial %d: SampleOf(%d) = (%d, %v), reference (%d, %v)",
					trial, v, s, ok, wantS, wantIn)
			}
		}
	}
}

// FuzzInducedSubgraph cross-checks the direct-CSR induction against the
// reference on fuzz-chosen graph shapes and subset selectors.
func FuzzInducedSubgraph(f *testing.F) {
	f.Add(uint64(1), uint64(3), false)
	f.Add(uint64(42), uint64(9), true)
	f.Add(uint64(7), uint64(0), false)
	f.Fuzz(func(t *testing.T, graphSeed, pickSeed uint64, weighted bool) {
		rng := rand.New(rand.NewPCG(graphSeed, graphSeed^0xabcdef))
		g := randomTestGraph(rng, weighted)
		n := g.NumVertices()
		pick := rand.New(rand.NewPCG(pickSeed, pickSeed^0x123456))
		k := 1 + pick.IntN(n)
		verts := make([]VertexID, 0, k)
		for _, p := range pick.Perm(n)[:k] {
			verts = append(verts, VertexID(p))
		}
		got, _, err := InducedSubgraph(g, verts)
		if err != nil {
			t.Fatalf("InducedSubgraph: %v", err)
		}
		want, _, err := referenceInducedSubgraph(g, verts)
		if err != nil {
			t.Fatalf("reference: %v", err)
		}
		requireSameGraph(t, got, want, "fuzz")
	})
}

// TestVerticesByOutDegreeMatchesSortReference asserts the counting-sort
// degree ordering reproduces the comparison-sort total order (out-degree
// descending, vertex ID ascending — the BRJ seed order) exactly, on random
// graphs with heavy degree ties.
func TestVerticesByOutDegreeMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(99, 101))
	for trial := 0; trial < 200; trial++ {
		g := randomTestGraph(rng, false)
		n := g.NumVertices()
		ref := make([]VertexID, n)
		for i := range ref {
			ref[i] = VertexID(i)
		}
		sort.Slice(ref, func(i, j int) bool {
			di, dj := g.OutDegree(ref[i]), g.OutDegree(ref[j])
			if di != dj {
				return di > dj
			}
			return ref[i] < ref[j]
		})
		got := g.VerticesByOutDegree()
		if len(got) != n {
			t.Fatalf("trial %d: order has %d entries, want %d", trial, len(got), n)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: position %d: vertex %d (deg %d), reference %d (deg %d)",
					trial, i, got[i], g.OutDegree(got[i]), ref[i], g.OutDegree(ref[i]))
			}
		}
	}
}

// TestDegreeArtifactsConsistency checks the memoized degree artifacts
// against directly computed values.
func TestDegreeArtifactsConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		g := randomTestGraph(rng, false)
		g.EnsureDegreeArtifacts() // the warm-ahead entry point the service uses
		degs := g.OutDegrees()
		cached := g.CachedOutDegrees()
		maxDeg := 0
		for v, d := range degs {
			if cached[v] != d {
				t.Fatalf("trial %d: CachedOutDegrees[%d] = %d, want %d", trial, v, cached[v], d)
			}
			if d > maxDeg {
				maxDeg = d
			}
		}
		if got := g.MaxOutDegree(); got != maxDeg {
			t.Fatalf("trial %d: MaxOutDegree = %d, want %d", trial, got, maxDeg)
		}
		sortedRef := append([]int(nil), degs...)
		sort.Ints(sortedRef)
		gotSorted := g.SortedOutDegrees()
		for i := range sortedRef {
			if gotSorted[i] != sortedRef[i] {
				t.Fatalf("trial %d: SortedOutDegrees[%d] = %d, want %d", trial, i, gotSorted[i], sortedRef[i])
			}
		}
		inRef := g.InDegrees()
		sort.Ints(inRef)
		gotIn := g.SortedInDegrees()
		if len(gotIn) != len(inRef) {
			t.Fatalf("trial %d: SortedInDegrees has %d entries, want %d", trial, len(gotIn), len(inRef))
		}
		for i := range inRef {
			if gotIn[i] != inRef[i] {
				t.Fatalf("trial %d: SortedInDegrees[%d] = %d, want %d", trial, i, gotIn[i], inRef[i])
			}
		}
	}
}

// TestSortDualLargeWeightedBuckets exercises the quicksort path of the
// in-place dual-slice sort (buckets above the insertion threshold,
// duplicate keys included): destinations must come out ascending with the
// (dst, weight) pair multiset preserved.
func TestSortDualLargeWeightedBuckets(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	for trial := 0; trial < 100; trial++ {
		k := 13 + rng.IntN(2000)
		dsts := make([]VertexID, k)
		ws := make([]float32, k)
		for i := range dsts {
			dsts[i] = VertexID(rng.IntN(k / 2)) // force duplicate keys
			ws[i] = float32(rng.IntN(32))
		}
		type pair struct {
			d VertexID
			w float32
		}
		want := make([]pair, k)
		for i := range dsts {
			want[i] = pair{dsts[i], ws[i]}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].d != want[j].d {
				return want[i].d < want[j].d
			}
			return want[i].w < want[j].w
		})
		sortDual(dsts, ws)
		for i := 1; i < k; i++ {
			if dsts[i-1] > dsts[i] {
				t.Fatalf("trial %d: dsts not sorted at %d: %d > %d", trial, i, dsts[i-1], dsts[i])
			}
		}
		got := make([]pair, k)
		for i := range dsts {
			got[i] = pair{dsts[i], ws[i]}
		}
		sort.Slice(got, func(i, j int) bool {
			if got[i].d != got[j].d {
				return got[i].d < got[j].d
			}
			return got[i].w < got[j].w
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pair multiset changed at %d: %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestBuilderWeightedDedupKeepsFirstAddedWeight pins Build's documented
// dedup contract for parallel weighted edges — "keeping the first weight
// seen" — on a bucket large enough to take the quicksort path rather than
// insertion sort, where an unstable sort would pick an arbitrary survivor.
func TestBuilderWeightedDedupKeepsFirstAddedWeight(t *testing.T) {
	b := NewBuilder(30)
	const edges = 25 // well above the insertion threshold, keys 0..5 repeating
	want := map[VertexID]float32{}
	for i := 0; i < edges; i++ {
		dst := VertexID(i % 6)
		b.AddWeightedEdge(10, dst, float32(i))
		if _, ok := want[dst]; !ok {
			want[dst] = float32(i)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	adj, ws := g.OutNeighbors(10), g.OutWeights(10)
	if len(adj) != len(want) {
		t.Fatalf("got %d deduped edges, want %d", len(adj), len(want))
	}
	for k, dst := range adj {
		if ws[k] != want[dst] {
			t.Errorf("edge (10,%d): kept weight %v, want first-added %v", dst, ws[k], want[dst])
		}
	}
}
