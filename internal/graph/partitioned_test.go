package graph

import "testing"

// cutsFor slices n vertices into parts roughly equal ranges — enough for
// representation tests, which must hold for ANY valid cut points (the
// edge-balanced cut quality is bsp.Partition's concern, tested there).
func cutsFor(n, parts int) []VertexID {
	starts := make([]VertexID, parts+1)
	for i := 0; i <= parts; i++ {
		starts[i] = VertexID(i * n / parts)
	}
	return starts
}

// partitionTestGraph builds a deterministic skewed random graph (an LCG
// drives both endpoints; low-ID vertices get extra edges so partitions
// see uneven degree mass, like the preferential-attachment graphs the
// higher layers use).
func partitionTestGraph(t *testing.T) *Graph {
	t.Helper()
	const n = 2000
	b := NewBuilder(n)
	state := uint64(7)
	next := func(mod int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(mod))
	}
	for i := 0; i < 5*n; i++ {
		src := next(n)
		if i%3 == 0 {
			src = next(n / 20) // skew: 5% of vertices take a third of the edges
		}
		b.AddEdge(VertexID(src), VertexID(next(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewPartitionedValidation(t *testing.T) {
	g := MustFromEdges(4, [][2]VertexID{{0, 1}, {2, 3}})
	for name, starts := range map[string][]VertexID{
		"too_few":       {0},
		"bad_first":     {1, 4},
		"bad_last":      {0, 3},
		"non_monotone":  {0, 3, 2, 4},
		"past_the_end":  {0, 5, 4},
		"negative_cut":  {0, -1, 4},
		"negative_last": {0, -4},
	} {
		if _, err := NewPartitioned(g, starts); err == nil {
			t.Errorf("%s: NewPartitioned(%v) accepted invalid cuts", name, starts)
		}
	}
	p, err := NewPartitioned(g, []VertexID{0, 2, 2, 4})
	if err != nil {
		t.Fatalf("valid cuts rejected: %v", err)
	}
	if p.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d, want 3", p.NumPartitions())
	}
	if lo, hi := p.Bounds(1); lo != 2 || hi != 2 {
		t.Fatalf("empty partition bounds = [%d, %d), want [2, 2)", lo, hi)
	}
}

// TestPartitionViewsAlias pins the zero-copy contract: a view's adjacency
// slice IS the flat graph's — same backing array, not a copy.
func TestPartitionViewsAlias(t *testing.T) {
	g := partitionTestGraph(t)
	p, err := NewPartitioned(g, cutsFor(g.NumVertices(), 4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumPartitions(); i++ {
		v := p.View(i)
		for u := v.Lo; u < v.Hi; u++ {
			flat := g.OutNeighbors(u)
			through := v.OutNeighbors(u)
			if len(flat) != len(through) {
				t.Fatalf("vertex %d: view degree %d, flat %d", u, len(through), len(flat))
			}
			if len(flat) > 0 && &flat[0] != &through[0] {
				t.Fatalf("vertex %d: view adjacency is a copy, not an alias", u)
			}
			if v.OutDegree(u) != len(flat) {
				t.Fatalf("vertex %d: OutDegree mismatch", u)
			}
		}
	}
}

// TestPartitionedCoversAllEdges walks every view and requires the union
// of their adjacencies to reproduce the flat edge set exactly, in order.
func TestPartitionedCoversAllEdges(t *testing.T) {
	g := partitionTestGraph(t)
	for _, parts := range []int{1, 2, 7} {
		p, err := NewPartitioned(g, cutsFor(g.NumVertices(), parts))
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		var rebuilt []VertexID
		for i := 0; i < p.NumPartitions(); i++ {
			v := p.View(i)
			total += v.NumEdges()
			for u := v.Lo; u < v.Hi; u++ {
				rebuilt = append(rebuilt, v.OutNeighbors(u)...)
			}
		}
		if total != g.NumEdges() {
			t.Fatalf("parts=%d: views own %d edges, graph has %d", parts, total, g.NumEdges())
		}
		flat := make([]VertexID, 0, g.NumEdges())
		for u := 0; u < g.NumVertices(); u++ {
			flat = append(flat, g.OutNeighbors(VertexID(u))...)
		}
		if len(rebuilt) != len(flat) {
			t.Fatalf("parts=%d: rebuilt %d edges, want %d", parts, len(rebuilt), len(flat))
		}
		for i := range flat {
			if rebuilt[i] != flat[i] {
				t.Fatalf("parts=%d: edge %d differs via views", parts, i)
			}
		}
	}
}

func TestPartitionOf(t *testing.T) {
	g := partitionTestGraph(t)
	for _, parts := range []int{1, 2, 7} {
		p, err := NewPartitioned(g, cutsFor(g.NumVertices(), parts))
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices(); v++ {
			i := p.PartitionOf(VertexID(v))
			lo, hi := p.Bounds(i)
			if VertexID(v) < lo || VertexID(v) >= hi {
				t.Fatalf("parts=%d: PartitionOf(%d) = %d with bounds [%d, %d)", parts, v, i, lo, hi)
			}
		}
	}
	// Empty partitions never own a vertex.
	p, err := NewPartitioned(g, []VertexID{0, 0, VertexID(g.NumVertices()), VertexID(g.NumVertices())})
	if err != nil {
		t.Fatal(err)
	}
	if i := p.PartitionOf(0); i != 1 {
		t.Fatalf("PartitionOf(0) = %d, want the owning partition 1", i)
	}
	if i := p.PartitionOf(VertexID(g.NumVertices() - 1)); i != 1 {
		t.Fatalf("PartitionOf(last) = %d, want 1", i)
	}
}

// TestPartitionedBFSOrderIdentity is the observational-identity property
// the tentpole promises: a BFS routed entirely through partition views
// visits vertices in exactly the flat order, at every partition count.
func TestPartitionedBFSOrderIdentity(t *testing.T) {
	g := partitionTestGraph(t)
	srcs := []VertexID{0, 1, VertexID(g.NumVertices() / 2), VertexID(g.NumVertices() - 1)}
	for _, parts := range []int{1, 2, 7} {
		p, err := NewPartitioned(g, cutsFor(g.NumVertices(), parts))
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range srcs {
			flat := BFSOrder(g, src)
			viaViews := p.BFSOrder(src)
			if len(flat) != len(viaViews) {
				t.Fatalf("parts=%d src=%d: visit counts differ (%d vs %d)", parts, src, len(flat), len(viaViews))
			}
			for i := range flat {
				if flat[i] != viaViews[i] {
					t.Fatalf("parts=%d src=%d: visit order diverges at step %d (%d vs %d)",
						parts, src, i, flat[i], viaViews[i])
				}
			}
		}
	}
}

// TestPartitionedMmapBFS composes the two tentpole pieces: partition an
// mmap'd graph and require the same BFS order as the flat heap graph —
// views over mapped pages behave exactly like views over heap arrays.
func TestPartitionedMmapBFS(t *testing.T) {
	if !mmapSupported || !hostLittleEndian {
		t.Skip("mmap snapshots unsupported on this platform")
	}
	g := partitionTestGraph(t)
	path := writeSnapTemp(t, g)
	mg, err := MmapSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	p, err := NewPartitioned(mg.Graph(), cutsFor(g.NumVertices(), 7))
	if err != nil {
		t.Fatal(err)
	}
	flat := BFSOrder(g, 0)
	mapped := p.BFSOrder(0)
	if len(flat) != len(mapped) {
		t.Fatalf("visit counts differ: %d vs %d", len(flat), len(mapped))
	}
	for i := range flat {
		if flat[i] != mapped[i] {
			t.Fatalf("partitioned mmap BFS diverges at step %d", i)
		}
	}
}

// TestPartitionViewWeights pins weight access through views against the
// flat accessors, including aliasing.
func TestPartitionViewWeights(t *testing.T) {
	b := NewBuilder(6)
	b.AddWeightedEdge(0, 1, 0.5)
	b.AddWeightedEdge(0, 5, 2)
	b.AddWeightedEdge(3, 2, -1)
	b.AddWeightedEdge(5, 0, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartitioned(g, []VertexID{0, 3, 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumPartitions(); i++ {
		v := p.View(i)
		for u := v.Lo; u < v.Hi; u++ {
			flat := g.OutWeights(u)
			through := v.OutWeights(u)
			if len(flat) != len(through) {
				t.Fatalf("vertex %d: weight lengths differ", u)
			}
			if len(flat) > 0 && &flat[0] != &through[0] {
				t.Fatalf("vertex %d: view weights are a copy, not an alias", u)
			}
		}
	}
	// Unweighted graphs yield nil from views too.
	ug := MustFromEdges(4, [][2]VertexID{{0, 1}})
	up, err := NewPartitioned(ug, []VertexID{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if w := up.View(0).OutWeights(0); w != nil {
		t.Fatalf("unweighted view returned weights %v", w)
	}
}
