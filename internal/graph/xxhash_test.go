package graph

import (
	"math/rand"
	"testing"
)

// refVector pins the implementation to digests produced by the canonical
// C library (xxhash 0.8): XXH64(input, seed).
type refVector struct {
	input      []byte
	seed       uint64
	wantSeed0  uint64
	wantSeeded uint64 // seed 20141025
}

func refInput(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i % 255)
	}
	return b
}

func TestXXHash64ReferenceVectors(t *testing.T) {
	vectors := []refVector{
		{[]byte(""), 20141025, 0xef46db3751d8e999, 0x493d554c526625ba},
		{[]byte("a"), 20141025, 0xd24ec4f1a98c6e5b, 0x9fe3ce221f1dd34a},
		{[]byte("abc"), 20141025, 0x44bc2cf5ad770999, 0x15bf5082de140c67},
		{[]byte("PCSR"), 20141025, 0x9c3e2194bd7d29d0, 0xfd3f783a0174d35a},
		{[]byte("hello, world"), 20141025, 0xb33a384e6d1b1242, 0xaf05c8726232692a},
		{refInput(32), 20141025, 0xcbf59c5116ff32b4, 0x979bb7c9b9e060d1},
		{refInput(63), 20141025, 0xe26aa9e2a95f8e4f, 0x72b10f434812a208},
		{refInput(64), 20141025, 0xf7c67301db6713f0, 0x51631704aebed3ed},
		{refInput(1020), 20141025, 0x2dfa04919c94d79f, 0x7b246a9e296e1038},
		{[]byte("0 1\n1 2\n2 0\n"), 20141025, 0x7a1354d6bbc05da2, 0x7633cac249c8e440},
	}
	for _, v := range vectors {
		if got := xxhash64Sum(v.input, 0); got != v.wantSeed0 {
			t.Errorf("XXH64(%q, seed 0) = %#x, want %#x", v.input, got, v.wantSeed0)
		}
		if got := xxhash64Sum(v.input, v.seed); got != v.wantSeeded {
			t.Errorf("XXH64(%q, seed %d) = %#x, want %#x", v.input, v.seed, got, v.wantSeeded)
		}
	}
}

// TestXXHash64Streaming holds the streaming digest equal to the one-shot
// form under arbitrary write fragmentation, including writes that straddle
// the 32-byte stripe buffer.
func TestXXHash64Streaming(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 4096)
	rng.Read(data)
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(len(data))
		in := data[:n]
		want := xxhash64Sum(in, 42)
		d := newXXHash64(42)
		for off := 0; off < n; {
			k := 1 + rng.Intn(97)
			if off+k > n {
				k = n - off
			}
			d.Write(in[off : off+k])
			off += k
		}
		if got := d.Sum64(); got != want {
			t.Fatalf("trial %d (len %d): streaming %#x != one-shot %#x", trial, n, got, want)
		}
	}
}
