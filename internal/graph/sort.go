package graph

import "slices"

// EpochTable is the shared core of every pooled scratch in the
// sampling→subgraph pipeline: a stamp array where stamp[v] == epoch means
// "v is marked for the current use". Bumping the epoch invalidates every
// mark in O(1), replacing the O(n) clear/refill the pre-rewrite code paid
// per use. The wrap case (once per 2^32 uses) clears the full capacity —
// not just the current length — so stale stamps beyond a smaller graph's
// prefix can never collide with a reissued epoch.
type EpochTable struct {
	epoch uint32
	stamp []uint32
}

// Reset sizes the table for n entries and invalidates all marks. It
// reports whether the backing array was reallocated, so callers can
// resize parallel payload arrays in the same breath.
func (t *EpochTable) Reset(n int) (resized bool) {
	if cap(t.stamp) < n {
		t.stamp = make([]uint32, n)
		t.epoch = 0
		resized = true
	}
	t.stamp = t.stamp[:n]
	t.Bump()
	return resized
}

// Bump starts a fresh epoch over the current length, invalidating all
// marks in O(1).
func (t *EpochTable) Bump() {
	t.epoch++
	if t.epoch == 0 { // wrapped: one real clear, then restart
		clear(t.stamp[:cap(t.stamp)])
		t.epoch = 1
	}
}

func (t *EpochTable) Mark(v VertexID)        { t.stamp[v] = t.epoch }
func (t *EpochTable) Marked(v VertexID) bool { return t.stamp[v] == t.epoch }

// sortDual sorts dsts ascending in place, permuting ws in lockstep when it
// is non-nil. It replaces the old sortPairs, which materialized a fresh
// []pair per adjacency bucket and sorted it through reflect-based
// sort.Slice — one short-lived allocation (plus closure boxing) per vertex
// per subgraph induction, which dominated the allocation profile of the
// sampling pipeline. The weighted path is a hand-rolled quicksort (median-
// of-three pivot, recursion on the smaller half, insertion sort below a
// small threshold) so the whole sort is allocation-free.
//
// The weighted sort is NOT stable: equal keys may come out in any order.
// That is fine for subgraph induction, whose buckets cannot contain
// duplicate keys (a built Graph's adjacency is deduplicated and the
// relabeling is injective). Builder.Build, whose buckets can contain
// parallel edges and whose dedup contract is "first weight seen wins",
// uses the stable sortPairsStable instead.
func sortDual(dsts []VertexID, ws []float32) {
	if len(dsts) < 2 {
		return
	}
	if ws == nil {
		slices.Sort(dsts) // non-reflect pdqsort, allocation-free
		return
	}
	quickDual(dsts, ws)
}

// insertionThreshold is the bucket size below which insertion sort beats
// quicksort's partitioning overhead.
const insertionThreshold = 12

func quickDual(d []VertexID, w []float32) {
	for len(d) > insertionThreshold {
		p := partitionDual(d, w)
		// Recurse into the smaller half, loop on the larger: stack depth
		// stays O(log n) even on adversarial inputs.
		if p < len(d)-p-1 {
			quickDual(d[:p], w[:p])
			d, w = d[p+1:], w[p+1:]
		} else {
			quickDual(d[p+1:], w[p+1:])
			d, w = d[:p], w[:p]
		}
	}
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
			w[j], w[j-1] = w[j-1], w[j]
		}
	}
}

// partitionDual partitions around a median-of-three pivot and returns its
// final index.
func partitionDual(d []VertexID, w []float32) int {
	mid, last := len(d)/2, len(d)-1
	if d[mid] < d[0] {
		swapDual(d, w, 0, mid)
	}
	if d[last] < d[0] {
		swapDual(d, w, 0, last)
	}
	if d[last] < d[mid] {
		swapDual(d, w, mid, last)
	}
	swapDual(d, w, mid, last) // pivot (the median) to the end
	pivot := d[last]
	i := 0
	for j := 0; j < last; j++ {
		if d[j] < pivot {
			swapDual(d, w, i, j)
			i++
		}
	}
	swapDual(d, w, i, last)
	return i
}

func swapDual(d []VertexID, w []float32, i, j int) {
	d[i], d[j] = d[j], d[i]
	w[i], w[j] = w[j], w[i]
}

// dstWeight pairs a destination with its weight for the Builder's stable
// weighted bucket sort.
type dstWeight struct {
	d VertexID
	w float32
}

// sortPairsStable sorts dsts ascending, permuting ws in lockstep and
// keeping equal keys in their incoming order. Stability is what makes
// Build's "first weight seen wins" dedup contract actually hold: buckets
// arrive in edge-insertion order (the counting-sort scatter preserves it),
// so after a stable sort the first entry of an equal-key run is the first
// edge added. (The old reflect-based sort.Slice was unstable, so the
// contract was only honored by accident of pdqsort's permutation.) The
// pair scratch is reused across buckets — one amortized allocation per
// Build, none per bucket; the possibly-grown scratch is returned for the
// next call.
func sortPairsStable(dsts []VertexID, ws []float32, scratch []dstWeight) []dstWeight {
	if len(dsts) < 2 {
		return scratch
	}
	if cap(scratch) < len(dsts) {
		scratch = make([]dstWeight, len(dsts))
	}
	scratch = scratch[:len(dsts)]
	for i := range dsts {
		scratch[i] = dstWeight{dsts[i], ws[i]}
	}
	slices.SortStableFunc(scratch, func(a, b dstWeight) int {
		return int(a.d) - int(b.d)
	})
	for i := range scratch {
		dsts[i] = scratch[i].d
		ws[i] = scratch[i].w
	}
	return scratch
}
