package graph

import (
	"testing"
)

// figure2G builds the 8-vertex graph G from Figure 2 of the paper: a
// two-level tree-like DAG where 1,2 -> 3,4 ... we use the published
// structure: edges chosen so that diameter is 2 and vertex 5 has two
// in-edges.
func figure2G() *Graph {
	return MustFromEdges(9, [][2]VertexID{
		{1, 3}, {2, 3}, {3, 5}, {4, 5}, {6, 7}, {7, 8}, {6, 5},
	})
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if got := g.NumVertices(); got != 0 {
		t.Errorf("NumVertices() = %d, want 0", got)
	}
	if got := g.NumEdges(); got != 0 {
		t.Errorf("NumEdges() = %d, want 0", got)
	}
	if got := g.AvgOutDegree(); got != 0 {
		t.Errorf("AvgOutDegree() = %v, want 0", got)
	}
}

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(3, 0)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", d)
	}
	adj := g.OutNeighbors(0)
	if len(adj) != 2 || adj[0] != 1 || adj[1] != 2 {
		t.Errorf("OutNeighbors(0) = %v, want [1 2]", adj)
	}
}

func TestBuilderSortsAdjacency(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 3)
	b.AddEdge(0, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	adj := g.OutNeighbors(0)
	for i := 1; i < len(adj); i++ {
		if adj[i-1] >= adj[i] {
			t.Fatalf("adjacency not sorted: %v", adj)
		}
	}
}

func TestBuilderDeduplicatesParallelEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 after dedup", g.NumEdges())
	}
}

func TestBuilderDropsSelfLoopsByDefault(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1 (self-loop dropped)", g.NumEdges())
	}
}

func TestBuilderKeepSelfLoops(t *testing.T) {
	b := NewBuilder(2).KeepSelfLoops()
	b.AddEdge(0, 0)
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2 (self-loop kept)", g.NumEdges())
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 5)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build accepted out-of-range destination")
	}
	b2 := NewBuilder(2)
	b2.AddEdge(-1, 0)
	if _, err := b2.Build(); err == nil {
		t.Fatal("Build accepted negative source")
	}
}

func TestBuilderWeighted(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1) // unweighted first; should backfill weight 1
	b.AddWeightedEdge(0, 2, 2.5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !g.HasWeights() {
		t.Fatal("HasWeights() = false, want true")
	}
	ws := g.OutWeights(0)
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 2.5 {
		t.Errorf("OutWeights(0) = %v, want [1 2.5]", ws)
	}
}

func TestInEdges(t *testing.T) {
	g := MustFromEdges(4, [][2]VertexID{{0, 2}, {1, 2}, {3, 2}, {2, 0}})
	g.EnsureInEdges()
	if d := g.InDegree(2); d != 3 {
		t.Errorf("InDegree(2) = %d, want 3", d)
	}
	if d := g.InDegree(0); d != 1 {
		t.Errorf("InDegree(0) = %d, want 1", d)
	}
	in := g.InNeighbors(2)
	if len(in) != 3 {
		t.Fatalf("InNeighbors(2) = %v, want 3 entries", in)
	}
}

func TestHasEdge(t *testing.T) {
	g := MustFromEdges(5, [][2]VertexID{{0, 1}, {0, 3}, {2, 4}})
	cases := []struct {
		src, dst VertexID
		want     bool
	}{
		{0, 1, true}, {0, 3, true}, {2, 4, true},
		{0, 2, false}, {1, 0, false}, {4, 2, false}, {0, 4, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.src, c.dst); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestReverse(t *testing.T) {
	g := MustFromEdges(3, [][2]VertexID{{0, 1}, {0, 2}, {1, 2}})
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("Reverse changed edge count: %d vs %d", r.NumEdges(), g.NumEdges())
	}
	if !r.HasEdge(1, 0) || !r.HasEdge(2, 0) || !r.HasEdge(2, 1) {
		t.Error("Reverse missing transposed edges")
	}
	if r.HasEdge(0, 1) {
		t.Error("Reverse kept original edge direction")
	}
}

func TestUndirected(t *testing.T) {
	g := MustFromEdges(3, [][2]VertexID{{0, 1}, {1, 2}})
	u := g.Undirected()
	if u.NumEdges() != 4 {
		t.Fatalf("Undirected NumEdges = %d, want 4", u.NumEdges())
	}
	for _, e := range [][2]VertexID{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		if !u.HasEdge(e[0], e[1]) {
			t.Errorf("Undirected missing edge %v", e)
		}
	}
	if !u.HasWeights() {
		t.Error("Undirected should carry weight 1 per edge")
	}
}

func TestUndirectedDeduplicatesMutualEdges(t *testing.T) {
	g := MustFromEdges(2, [][2]VertexID{{0, 1}, {1, 0}})
	u := g.Undirected()
	if u.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", u.NumEdges())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := figure2G()
	sub, m, err := InducedSubgraph(g, []VertexID{1, 3, 5, 6, 7})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if sub.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", sub.NumVertices())
	}
	// Edges kept: 1->3, 3->5, 6->7, 6->5. Dropped: 2->3, 4->5, 7->8.
	if sub.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", sub.NumEdges())
	}
	s1, ok := m.SampleOf(1)
	if !ok {
		t.Fatal("vertex 1 should be in sample")
	}
	s3, _ := m.SampleOf(3)
	if !sub.HasEdge(s1, s3) {
		t.Error("edge 1->3 not preserved under relabeling")
	}
	if _, ok := m.SampleOf(2); ok {
		t.Error("vertex 2 should not be in sample")
	}
	if m.OriginalOf(s1) != 1 {
		t.Errorf("OriginalOf(%d) = %d, want 1", s1, m.OriginalOf(s1))
	}
	if m.Len() != 5 {
		t.Errorf("Mapping.Len = %d, want 5", m.Len())
	}
}

func TestInducedSubgraphRejectsDuplicates(t *testing.T) {
	g := figure2G()
	if _, _, err := InducedSubgraph(g, []VertexID{1, 1}); err == nil {
		t.Fatal("expected error for duplicate vertices")
	}
}

func TestInducedSubgraphRejectsOutOfRange(t *testing.T) {
	g := figure2G()
	if _, _, err := InducedSubgraph(g, []VertexID{1, 100}); err == nil {
		t.Fatal("expected error for out-of-range vertex")
	}
}

func TestInducedSubgraphKeepsWeights(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 7)
	b.AddWeightedEdge(1, 2, 9)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := InducedSubgraph(g, []VertexID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sub.HasWeights() {
		t.Fatal("subgraph lost weights")
	}
	if ws := sub.OutWeights(0); len(ws) != 1 || ws[0] != 7 {
		t.Errorf("OutWeights(0) = %v, want [7]", ws)
	}
}

func TestTotalOutEdges(t *testing.T) {
	g := MustFromEdges(4, [][2]VertexID{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	if got := g.TotalOutEdges([]VertexID{0, 1}); got != 4 {
		t.Errorf("TotalOutEdges([0 1]) = %d, want 4", got)
	}
	if got := g.TotalOutEdges([]VertexID{2, 3}); got != 0 {
		t.Errorf("TotalOutEdges([2 3]) = %d, want 0", got)
	}
}

func TestFromEdgesLengthMismatch(t *testing.T) {
	if _, err := FromEdges(2, []VertexID{0}, []VertexID{1, 0}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}
