package graph

import (
	"encoding/binary"
	"math/bits"
)

// xxhash64: the 64-bit XXH64 hash (Yann Collet), used as the snapshot
// format's integrity checksum. Implemented here because the module takes
// no external dependencies; the implementation is pinned against
// reference digests from the canonical C library (xxhash_test.go), so the
// checksum in a snapshot file is the standard XXH64 of its payload and
// any xxhash implementation can verify it.
//
// xxh64 is a streaming digest (the snapshot writer hashes as it encodes);
// xxhash64Sum is the one-shot form the reader uses on the full payload.

const (
	xxPrime1 uint64 = 0x9E3779B185EBCA87
	xxPrime2 uint64 = 0xC2B2AE3D27D4EB4F
	xxPrime3 uint64 = 0x165667B19E3779F9
	xxPrime4 uint64 = 0x85EBCA77C2B2AE63
	xxPrime5 uint64 = 0x27D4EB2F165667C5
)

// xxh64 accumulates input incrementally. The zero value is not usable;
// construct with newXXHash64.
type xxh64 struct {
	v1, v2, v3, v4 uint64
	seed           uint64
	total          uint64
	mem            [32]byte // buffered tail, waiting for a full stripe
	memN           int
}

func newXXHash64(seed uint64) *xxh64 {
	d := &xxh64{seed: seed}
	d.v1 = seed + xxPrime1 + xxPrime2
	d.v2 = seed + xxPrime2
	d.v3 = seed
	d.v4 = seed - xxPrime1
	return d
}

func xxRound(acc, lane uint64) uint64 {
	acc += lane * xxPrime2
	return bits.RotateLeft64(acc, 31) * xxPrime1
}

func xxMergeRound(h, v uint64) uint64 {
	h ^= xxRound(0, v)
	return h*xxPrime1 + xxPrime4
}

// Write absorbs p; it never fails.
func (d *xxh64) Write(p []byte) (int, error) {
	n := len(p)
	d.total += uint64(n)
	if d.memN > 0 {
		c := copy(d.mem[d.memN:], p)
		d.memN += c
		p = p[c:]
		if d.memN < 32 {
			return n, nil
		}
		d.stripes(d.mem[:])
		d.memN = 0
	}
	if full := len(p) &^ 31; full > 0 {
		d.stripes(p[:full])
		p = p[full:]
	}
	d.memN = copy(d.mem[:], p)
	return n, nil
}

// stripes consumes len(b)/32 full 32-byte stripes.
func (d *xxh64) stripes(b []byte) {
	v1, v2, v3, v4 := d.v1, d.v2, d.v3, d.v4
	for len(b) >= 32 {
		v1 = xxRound(v1, binary.LittleEndian.Uint64(b[0:8]))
		v2 = xxRound(v2, binary.LittleEndian.Uint64(b[8:16]))
		v3 = xxRound(v3, binary.LittleEndian.Uint64(b[16:24]))
		v4 = xxRound(v4, binary.LittleEndian.Uint64(b[24:32]))
		b = b[32:]
	}
	d.v1, d.v2, d.v3, d.v4 = v1, v2, v3, v4
}

// Sum64 finalizes and returns the digest. The digest remains usable: more
// Writes continue the stream.
func (d *xxh64) Sum64() uint64 {
	var h uint64
	if d.total >= 32 {
		h = bits.RotateLeft64(d.v1, 1) + bits.RotateLeft64(d.v2, 7) +
			bits.RotateLeft64(d.v3, 12) + bits.RotateLeft64(d.v4, 18)
		h = xxMergeRound(h, d.v1)
		h = xxMergeRound(h, d.v2)
		h = xxMergeRound(h, d.v3)
		h = xxMergeRound(h, d.v4)
	} else {
		h = d.seed + xxPrime5
	}
	h += d.total

	tail := d.mem[:d.memN]
	for len(tail) >= 8 {
		h ^= xxRound(0, binary.LittleEndian.Uint64(tail))
		h = bits.RotateLeft64(h, 27)*xxPrime1 + xxPrime4
		tail = tail[8:]
	}
	if len(tail) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(tail)) * xxPrime1
		h = bits.RotateLeft64(h, 23)*xxPrime2 + xxPrime3
		tail = tail[4:]
	}
	for _, b := range tail {
		h ^= uint64(b) * xxPrime5
		h = bits.RotateLeft64(h, 11) * xxPrime1
	}

	h ^= h >> 33
	h *= xxPrime2
	h ^= h >> 29
	h *= xxPrime3
	h ^= h >> 32
	return h
}

// xxhash64Sum is the one-shot XXH64 of b.
func xxhash64Sum(b []byte, seed uint64) uint64 {
	d := newXXHash64(seed)
	_, _ = d.Write(b)
	return d.Sum64()
}
