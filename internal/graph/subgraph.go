package graph

import "fmt"

// Mapping relates the vertices of an induced subgraph to the vertices of
// the graph it was taken from.
type Mapping struct {
	// ToOriginal maps a subgraph vertex ID to the original graph vertex ID.
	ToOriginal []VertexID
	// toSample maps an original vertex ID to the subgraph vertex ID, or -1
	// if the vertex was not sampled.
	toSample []VertexID
}

// OriginalOf returns the original-graph ID of subgraph vertex v.
func (m *Mapping) OriginalOf(v VertexID) VertexID { return m.ToOriginal[v] }

// SampleOf returns the subgraph ID of original vertex v and whether v is in
// the subgraph.
func (m *Mapping) SampleOf(v VertexID) (VertexID, bool) {
	s := m.toSample[v]
	return s, s >= 0
}

// Len reports the number of sampled vertices.
func (m *Mapping) Len() int { return len(m.ToOriginal) }

// InducedSubgraph returns the subgraph of g induced by the given vertex
// set: the vertices are relabeled densely in the order given, and every
// edge of g with both endpoints in the set is kept (with its weight).
// Duplicate vertices in the set are rejected.
func InducedSubgraph(g *Graph, vertices []VertexID) (*Graph, *Mapping, error) {
	n := g.NumVertices()
	toSample := make([]VertexID, n)
	for i := range toSample {
		toSample[i] = -1
	}
	toOriginal := make([]VertexID, len(vertices))
	for i, v := range vertices {
		if int(v) < 0 || int(v) >= n {
			return nil, nil, fmt.Errorf("graph: induced subgraph: vertex %d out of range (n=%d)", v, n)
		}
		if toSample[v] != -1 {
			return nil, nil, fmt.Errorf("graph: induced subgraph: duplicate vertex %d", v)
		}
		toSample[v] = VertexID(i)
		toOriginal[i] = v
	}

	b := NewBuilder(len(vertices))
	for i, orig := range toOriginal {
		ws := g.OutWeights(orig)
		for j, dst := range g.OutNeighbors(orig) {
			sd := toSample[dst]
			if sd < 0 {
				continue
			}
			if ws != nil {
				b.AddWeightedEdge(VertexID(i), sd, ws[j])
			} else {
				b.AddEdge(VertexID(i), sd)
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, &Mapping{ToOriginal: toOriginal, toSample: toSample}, nil
}
