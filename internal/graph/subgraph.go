package graph

import (
	"fmt"
	"sync"
)

// Mapping relates the vertices of an induced subgraph to the vertices of
// the graph it was taken from.
type Mapping struct {
	// ToOriginal maps a subgraph vertex ID to the original graph vertex ID.
	ToOriginal []VertexID
	// originalN is the original graph's vertex count, kept so the reverse
	// table can be materialized on demand.
	originalN int
	// toSample maps an original vertex ID to the subgraph vertex ID, or -1
	// if the vertex was not sampled. It is built lazily — most samples are
	// drawn, profiled and discarded without a single reverse lookup, so the
	// O(n) table would be wasted work on the sampling hot path.
	sampleOnce sync.Once
	toSample   []VertexID
}

// OriginalOf returns the original-graph ID of subgraph vertex v.
func (m *Mapping) OriginalOf(v VertexID) VertexID { return m.ToOriginal[v] }

// SampleOf returns the subgraph ID of original vertex v and whether v is in
// the subgraph. The first call materializes the reverse table; it is safe
// for concurrent use.
func (m *Mapping) SampleOf(v VertexID) (VertexID, bool) {
	m.sampleOnce.Do(func() {
		ts := make([]VertexID, m.originalN)
		for i := range ts {
			ts[i] = -1
		}
		for i, orig := range m.ToOriginal {
			ts[orig] = VertexID(i)
		}
		m.toSample = ts
	})
	s := m.toSample[v]
	return s, s >= 0
}

// Len reports the number of sampled vertices.
func (m *Mapping) Len() int { return len(m.ToOriginal) }

// subgraphScratch is the reusable induction workspace: an epoch-stamped
// membership table (see EpochTable) with a parallel relabel array, sized
// to the base graph. Bumping the epoch invalidates the whole table in
// O(1), so repeated inductions on the same base graph (one per training
// ratio per fit) skip the O(n) refill the old implementation paid per
// call. Pooled because fit pipelines run concurrently.
type subgraphScratch struct {
	in       EpochTable
	sampleID []VertexID // valid only where in.Marked(v)
}

var subgraphScratchPool = sync.Pool{New: func() any { return new(subgraphScratch) }}

// begin prepares the scratch for a base graph of n vertices.
func (s *subgraphScratch) begin(n int) {
	if s.in.Reset(n) {
		s.sampleID = make([]VertexID, n)
	}
	s.sampleID = s.sampleID[:n]
}

// InducedSubgraph returns the subgraph of g induced by the given vertex
// set: the vertices are relabeled densely in the order given, and every
// edge of g with both endpoints in the set is kept (with its weight).
// Duplicate vertices in the set are rejected, and self-loops are dropped
// (matching the Builder default the sampler has always used).
//
// The CSR is built directly in two passes over the relevant adjacency
// lists — count, then fill + per-bucket sort — sized exactly, with no
// intermediate triple edge list. Dedup is unnecessary: a built Graph's
// adjacency lists carry no parallel edges and the relabeling is injective,
// so the induced lists cannot contain duplicates either.
func InducedSubgraph(g *Graph, vertices []VertexID) (*Graph, *Mapping, error) {
	n := g.NumVertices()
	sc := subgraphScratchPool.Get().(*subgraphScratch)
	defer subgraphScratchPool.Put(sc)
	sc.begin(n)

	toOriginal := make([]VertexID, len(vertices))
	for i, v := range vertices {
		if int(v) < 0 || int(v) >= n {
			return nil, nil, fmt.Errorf("graph: induced subgraph: vertex %d out of range (n=%d)", v, n)
		}
		if sc.in.Marked(v) {
			return nil, nil, fmt.Errorf("graph: induced subgraph: duplicate vertex %d", v)
		}
		sc.in.Mark(v)
		sc.sampleID[v] = VertexID(i)
		toOriginal[i] = v
	}

	// Pass 1: exact per-vertex edge counts -> CSR offsets.
	ns := len(vertices)
	offsets := make([]int64, ns+1)
	for i, orig := range toOriginal {
		cnt := int64(0)
		for _, dst := range g.OutNeighbors(orig) {
			if dst != orig && sc.in.Marked(dst) {
				cnt++
			}
		}
		offsets[i+1] = offsets[i] + cnt
	}

	// Pass 2: fill relabeled destinations (and weights), then sort each
	// bucket in place — relabeling does not preserve the base graph's
	// per-bucket order, so the CSR invariant needs a per-bucket sort.
	m := offsets[ns]
	edges := make([]VertexID, m)
	var weights []float32
	if g.HasWeights() && m > 0 {
		weights = make([]float32, m)
	}
	for i, orig := range toOriginal {
		pos := offsets[i]
		srcW := g.OutWeights(orig)
		for j, dst := range g.OutNeighbors(orig) {
			if dst == orig || !sc.in.Marked(dst) {
				continue
			}
			edges[pos] = sc.sampleID[dst]
			if weights != nil {
				weights[pos] = srcW[j]
			}
			pos++
		}
		if weights != nil {
			sortDual(edges[offsets[i]:pos], weights[offsets[i]:pos])
		} else {
			sortDual(edges[offsets[i]:pos], nil)
		}
	}

	sub := &Graph{offsets: offsets, edges: edges, weights: weights}
	return sub, &Mapping{ToOriginal: toOriginal, originalN: n}, nil
}
