package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustFromEdges(5, [][2]VertexID{{0, 1}, {0, 4}, {2, 3}, {4, 0}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %v vs %v", g2, g)
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.OutNeighbors(VertexID(v)), g2.OutNeighbors(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency mismatch: %v vs %v", v, a, b)
			}
		}
	}
}

func TestEdgeListRoundTripWeighted(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.125)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasWeights() {
		t.Fatal("weights lost in round trip")
	}
	if w := g2.OutWeights(0)[0]; w != 2.5 {
		t.Errorf("weight = %v, want 2.5", w)
	}
	if w := g2.OutWeights(1)[0]; w != 0.125 {
		t.Errorf("weight = %v, want 0.125", w)
	}
}

func TestReadEdgeListInfersVertexCount(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 7\n3 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 {
		t.Errorf("NumVertices = %d, want 8", g.NumVertices())
	}
}

func TestReadEdgeListIgnoresCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n# vertices 4\n0 1\n\n# trailing\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Errorf("got %v, want 4 vertices / 2 edges", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",          // too few fields
		"0 1 2 3\n",    // too many fields
		"x 1\n",        // bad source
		"0 y\n",        // bad destination
		"0 1 notnum\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q) succeeded, want error", in)
		}
	}
}

func TestReadEdgeListMixedWeightDefaults(t *testing.T) {
	// First edge unweighted, second weighted: first should default to 1.
	g, err := ReadEdgeList(strings.NewReader("# vertices 3\n0 1\n1 2 4.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasWeights() {
		t.Fatal("expected weighted graph")
	}
	if w := g.OutWeights(0)[0]; w != 1 {
		t.Errorf("default weight = %v, want 1", w)
	}
}
