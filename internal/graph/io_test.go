package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustFromEdges(5, [][2]VertexID{{0, 1}, {0, 4}, {2, 3}, {4, 0}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %v vs %v", g2, g)
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.OutNeighbors(VertexID(v)), g2.OutNeighbors(VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree mismatch", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d adjacency mismatch: %v vs %v", v, a, b)
			}
		}
	}
}

func TestEdgeListRoundTripWeighted(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.125)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasWeights() {
		t.Fatal("weights lost in round trip")
	}
	if w := g2.OutWeights(0)[0]; w != 2.5 {
		t.Errorf("weight = %v, want 2.5", w)
	}
	if w := g2.OutWeights(1)[0]; w != 0.125 {
		t.Errorf("weight = %v, want 0.125", w)
	}
}

func TestReadEdgeListInfersVertexCount(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 7\n3 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 8 {
		t.Errorf("NumVertices = %d, want 8", g.NumVertices())
	}
}

func TestReadEdgeListIgnoresCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n# vertices 4\n0 1\n\n# trailing\n2 3\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 2 {
		t.Errorf("got %v, want 4 vertices / 2 edges", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantMsg string
	}{
		{"too few fields", "0\n", "line 1"},
		{"too many fields", "0 1 2 3\n", "line 1"},
		{"bad source", "x 1\n", `bad source "x"`},
		{"bad destination", "0 y\n", `bad destination "y"`},
		{"bad weight", "0 1 notnum\n", `bad weight "notnum"`},
		{"truncated line mid-file", "0 1\n1\n2 3\n", "line 2"},
		{"negative source", "-3 1\n", "must be non-negative"},
		{"negative destination", "0 1\n0 -9\n", "line 2"},
		{"oversized source", "2147483647 0\n", "vertex ID exceeds"},
		{"oversized destination", "0 3000000000\n", "vertex ID exceeds"},
		{"source past int64", "99999999999999999999 0\n", "vertex ID exceeds"},
		{"negative past int64", "-99999999999999999999 0\n", "must be non-negative"},
		{"NaN weight", "0 1 NaN\n", "finite"},
		{"+Inf weight", "0 1 +Inf\n", "finite"},
		{"-Inf weight", "0 1 -Infinity\n", "finite"},
		{"weight overflows float32", "0 1 6e38\n", "finite"},
		{"bad header count", "# vertices x\n", `bad vertex count "x"`},
		{"negative header count", "# vertices -2\n", "bad vertex count"},
		{"header count past int32", "# vertices 3000000000\n", "bad vertex count"},
		{"conflicting headers", "# vertices 3\n0 1\n# vertices 5\n", "line 3"},
		{"edge above header count", "# vertices 2\n0 5\n", "out-of-range destination"},
	}
	for _, tc := range cases {
		_, err := ReadEdgeList(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: ReadEdgeList(%q) succeeded, want error containing %q", tc.name, tc.input, tc.wantMsg)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("%s: error %q, want it to contain %q", tc.name, err, tc.wantMsg)
		}
	}
}

func TestReadEdgeListHeaderAnywhere(t *testing.T) {
	// A later header is honoured, not silently replaced by inference.
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n# vertices 9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 9 {
		t.Errorf("NumVertices = %d, want 9 (trailing header ignored)", g.NumVertices())
	}
	// Agreeing duplicates are fine wherever they appear.
	g, err = ReadEdgeList(strings.NewReader("# vertices 4\n0 1\n# vertices 4\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d, want 4", g.NumVertices())
	}
}

func TestReadEdgeListAcceptsSignedZeroAndPlus(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("+0 +2\n-0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %v, want 3 vertices / 2 edges", g)
	}
}

func TestReadEdgeListMixedWeightDefaults(t *testing.T) {
	// First edge unweighted, second weighted: first should default to 1.
	g, err := ReadEdgeList(strings.NewReader("# vertices 3\n0 1\n1 2 4.0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasWeights() {
		t.Fatal("expected weighted graph")
	}
	if w := g.OutWeights(0)[0]; w != 1 {
		t.Errorf("default weight = %v, want 1", w)
	}
}
