package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts two properties over arbitrary text input:
//
//  1. Fixpoint: when the input parses, parse→write→parse reproduces the
//     graph bit-identically (WriteEdgeList output is canonical for the
//     graph it encodes).
//  2. Loader equivalence: the parallel loader accepts exactly the inputs
//     ReadEdgeList accepts and produces a bit-identical graph, at shard
//     shapes from one-shard to line-per-shard.
func FuzzReadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"0 1\n1 2\n",
		"# vertices 4\n0 1\n2 3 0.5\n",
		"0 1\n# vertices 4\n2 3\n",
		"# vertices 3\n# vertices 3\n1 0\n",
		"5 5\n5 5\n4 1 2.5\n4 1\n",
		"  0\t1 \r\n\t2  3\t\n",
		"a b\n",
		"0 1 NaN\n",
		"-1 2\n",
		"# vertices x\n",
		"3000000000 0\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Guard fuzz throughput: a single valid line like "300000000 0"
		// legitimately allocates gigabytes of CSR for a graph with hundreds
		// of millions of vertices. Any run of 7+ digits can name such a
		// vertex; those inputs are property-tested in io_test.go and
		// loader_test.go instead.
		digits := 0
		for i := 0; i < len(input); i++ {
			if input[i] >= '0' && input[i] <= '9' {
				if digits++; digits >= 7 {
					t.Skip("skipping input with huge numeric token")
				}
			} else {
				digits = 0
			}
		}
		seq, seqErr := ReadEdgeList(strings.NewReader(input))
		for _, cfg := range []LoadOptions{
			{Parallelism: 1},
			{Parallelism: 4, chunkBytes: 3},
			{Parallelism: 2, chunkBytes: 64},
		} {
			par, parErr := LoadEdgeList(strings.NewReader(input), cfg)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("config %+v: sequential err = %v, parallel err = %v", cfg, seqErr, parErr)
			}
			if seqErr == nil && !graphsIdentical(seq, par) {
				t.Fatalf("config %+v: parallel load differs from sequential", cfg)
			}
		}
		if seqErr != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, seq); err != nil {
			t.Fatalf("WriteEdgeList: %v", err)
		}
		again, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written graph failed: %v", err)
		}
		if seq.NumEdges() == 0 {
			// A graph whose weighted edges were all dropped (self-loops)
			// keeps a vestigial empty weight array the text format cannot
			// express; everything else must still round-trip.
			if again.NumVertices() != seq.NumVertices() || again.NumEdges() != 0 {
				t.Fatal("parse -> write -> parse changed an edgeless graph")
			}
			return
		}
		if !graphsIdentical(seq, again) {
			t.Fatal("parse -> write -> parse is not a fixpoint")
		}
	})
}

// FuzzReadSnapshot asserts that ReadSnapshot never panics on arbitrary
// bytes and that accepted inputs are canonical: decode→encode reproduces
// the exact input bytes (so decode→encode→decode is trivially a
// fixpoint).
func FuzzReadSnapshot(f *testing.F) {
	// Seed with valid snapshots (weighted and not) and light corruptions.
	g := MustFromEdges(5, [][2]VertexID{{0, 1}, {0, 4}, {2, 3}, {4, 0}})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 0.5)
	b.AddWeightedEdge(2, 1, -3)
	wg, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := WriteSnapshot(&buf, wg); err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(buf.Bytes()))
	f.Add(valid[:len(valid)-3])
	f.Add(bytes.Clone(snapshotMagic[:]))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteSnapshot(&out, g); err != nil {
			t.Fatalf("re-encode of accepted snapshot failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("accepted snapshot is not canonical: re-encode differs from input")
		}
	})
}

// FuzzMmapSnapshot asserts reader equivalence over arbitrary bytes: the
// mmap alias path accepts exactly the inputs the copy-in reader accepts
// (same error text on rejection, since both run the shared frame and
// structural checks) and decodes accepted inputs to an identical graph.
func FuzzMmapSnapshot(f *testing.F) {
	if !mmapSupported || !hostLittleEndian {
		f.Skip("mmap snapshots unsupported on this platform")
	}
	g := MustFromEdges(5, [][2]VertexID{{0, 1}, {0, 4}, {2, 3}, {4, 0}})
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 0.5)
	b.AddWeightedEdge(2, 1, -3)
	wg, err := b.Build()
	if err != nil {
		f.Fatal(err)
	}
	buf.Reset()
	if err := WriteSnapshot(&buf, wg); err != nil {
		f.Fatal(err)
	}
	f.Add(bytes.Clone(buf.Bytes()))
	f.Add(valid[:len(valid)-3])
	f.Add(bytes.Clone(snapshotMagic[:]))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.snap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		want, readErr := ReadSnapshot(bytes.NewReader(data))
		mg, mmapErr := MmapSnapshot(path)
		if (readErr == nil) != (mmapErr == nil) {
			t.Fatalf("readers disagree: copy-in err = %v, mmap err = %v", readErr, mmapErr)
		}
		if readErr != nil {
			if readErr.Error() != mmapErr.Error() {
				t.Fatalf("error text differs:\n  copy-in: %v\n  mmap:    %v", readErr, mmapErr)
			}
			return
		}
		defer mg.Close()
		if !graphsIdentical(want, mg.Graph()) {
			t.Fatal("mapped graph differs from copy-in decode")
		}
	})
}
