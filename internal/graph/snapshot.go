// Binary CSR snapshots: a versioned on-disk form of a built Graph that
// reloads in O(bytes) with no text parsing, no Builder pass and no
// per-bucket sorting — the CSR arrays land in memory exactly as they were
// written. Loading a real dataset therefore pays the text parse once
// (cmd/graphgen -convert, or the service registry's first load) and every
// later load is a few large reads plus a checksum.
//
// Wire format, all integers little-endian:
//
//	[0:4)    magic "PCSR"
//	[4:6)    version, currently 1
//	[6:8)    flags; bit 0 = weighted, all other bits must be zero
//	[8:16)   n, the vertex count
//	[16:24)  m, the edge count
//	[24:...) offsets, (n+1) × int64
//	[.....)  edges, m × int32 (per-bucket sorted vertex IDs)
//	[.....)  weights, m × float32 raw bits (present iff the weighted flag)
//	[-8:)    XXH64 (seed 0) of every preceding byte
//
// The encoding is canonical: a valid snapshot re-encodes to the identical
// byte sequence, which FuzzReadSnapshot asserts. ReadSnapshot verifies
// the checksum and every structural invariant a Graph promises (monotone
// offsets, in-range and strictly-sorted adjacency), so a corrupted or
// adversarial file fails loudly instead of producing a Graph that
// violates CSR invariants deep inside sampling or the BSP engine.
package graph

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"predict/internal/faultinject"
)

var snapshotMagic = [4]byte{'P', 'C', 'S', 'R'}

const (
	snapshotVersion      = 1
	snapshotFlagWeighted = 1 << 0
	snapshotHeaderLen    = 24
	snapshotTrailerLen   = 8
	// snapshotMaxEdges keeps the size arithmetic below far from uint64
	// overflow; it is ~7 orders of magnitude above any graph this system
	// handles.
	snapshotMaxEdges = 1 << 56
)

// WriteSnapshot writes g in the binary CSR snapshot format. The stream is
// hashed as it is written, so no second pass over the arrays is needed.
func WriteSnapshot(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 256<<10)
	h := newXXHash64(0)
	hw := io.MultiWriter(bw, h)

	offsets := g.offsets
	if len(offsets) == 0 {
		offsets = []int64{0} // canonical empty graph
	}
	n := len(offsets) - 1
	m := len(g.edges)

	var hdr [snapshotHeaderLen]byte
	copy(hdr[0:4], snapshotMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], snapshotVersion)
	var flags uint16
	if g.weights != nil {
		flags |= snapshotFlagWeighted
	}
	binary.LittleEndian.PutUint16(hdr[6:8], flags)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(m))
	if _, err := hw.Write(hdr[:]); err != nil {
		return err
	}

	// Encode the arrays through one fixed scratch so memory stays O(1)
	// regardless of graph size.
	buf := make([]byte, 64<<10)
	if err := writeInt64s(hw, buf, offsets); err != nil {
		return err
	}
	if err := writeVertexIDs(hw, buf, g.edges); err != nil {
		return err
	}
	if g.weights != nil {
		if err := writeFloat32s(hw, buf, g.weights); err != nil {
			return err
		}
	}

	var tr [snapshotTrailerLen]byte
	binary.LittleEndian.PutUint64(tr[:], h.Sum64())
	if _, err := bw.Write(tr[:]); err != nil {
		return err
	}
	return bw.Flush()
}

func writeInt64s(w io.Writer, buf []byte, vals []int64) error {
	for len(vals) > 0 {
		k := min(len(buf)/8, len(vals))
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(vals[i]))
		}
		if _, err := w.Write(buf[:k*8]); err != nil {
			return err
		}
		vals = vals[k:]
	}
	return nil
}

func writeVertexIDs(w io.Writer, buf []byte, vals []VertexID) error {
	for len(vals) > 0 {
		k := min(len(buf)/4, len(vals))
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(buf[i*4:], uint32(vals[i]))
		}
		if _, err := w.Write(buf[:k*4]); err != nil {
			return err
		}
		vals = vals[k:]
	}
	return nil
}

func writeFloat32s(w io.Writer, buf []byte, vals []float32) error {
	for len(vals) > 0 {
		k := min(len(buf)/4, len(vals))
		for i := 0; i < k; i++ {
			// Raw bits, so every float32 payload (including any NaN bit
			// pattern a caller built a graph with) round-trips exactly.
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(vals[i]))
		}
		if _, err := w.Write(buf[:k*4]); err != nil {
			return err
		}
		vals = vals[k:]
	}
	return nil
}

// ReadSnapshot reads a graph written by WriteSnapshot, verifying the
// checksum and every CSR structural invariant before returning.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	if fault := faultinject.Fire(faultinject.PointGraphReadSnapshot); fault != nil {
		fault.Sleep()
		if fault.Err != nil {
			return nil, fault.Err
		}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data)
}

// snapshotFrame is a validated snapshot's shape: the counts and the byte
// region holding the arrays (offsets, then edges, then optional weights).
// parseSnapshotFrame produces it after the header, size and checksum
// checks have all passed; the structural CSR invariants are then checked
// by validateSnapshotCSR once the arrays exist (copied by decodeSnapshot,
// aliased in place by MmapSnapshot — both readers run the identical frame
// and structural checks, so they accept and reject exactly the same
// inputs).
type snapshotFrame struct {
	n        uint64
	m        uint64
	weighted bool
	body     []byte // the array region: data[header : len-trailer]
}

// parseSnapshotFrame validates everything about a snapshot that does not
// require materialized arrays: magic, version, flags, plausible counts,
// exact file size and the trailing checksum.
func parseSnapshotFrame(data []byte) (snapshotFrame, error) {
	var fr snapshotFrame
	if len(data) < snapshotHeaderLen+snapshotTrailerLen {
		return fr, fmt.Errorf("graph: snapshot: truncated file (%d bytes)", len(data))
	}
	if !bytes.Equal(data[0:4], snapshotMagic[:]) {
		return fr, fmt.Errorf("graph: snapshot: bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != snapshotVersion {
		return fr, fmt.Errorf("graph: snapshot: unsupported version %d (want %d)", v, snapshotVersion)
	}
	flags := binary.LittleEndian.Uint16(data[6:8])
	if flags&^snapshotFlagWeighted != 0 {
		return fr, fmt.Errorf("graph: snapshot: unknown flags %#x", flags)
	}
	fr.weighted = flags&snapshotFlagWeighted != 0
	fr.n = binary.LittleEndian.Uint64(data[8:16])
	fr.m = binary.LittleEndian.Uint64(data[16:24])
	if fr.n > maxVertexCount {
		return fr, fmt.Errorf("graph: snapshot: vertex count %d exceeds %d", fr.n, int64(maxVertexCount))
	}
	if fr.m > snapshotMaxEdges {
		return fr, fmt.Errorf("graph: snapshot: implausible edge count %d", fr.m)
	}
	want := uint64(snapshotHeaderLen) + (fr.n+1)*8 + fr.m*4 + uint64(snapshotTrailerLen)
	if fr.weighted {
		want += fr.m * 4
	}
	if uint64(len(data)) != want {
		return fr, fmt.Errorf("graph: snapshot: %d bytes, want %d for n=%d m=%d", len(data), want, fr.n, fr.m)
	}

	payload := data[:len(data)-snapshotTrailerLen]
	sum := binary.LittleEndian.Uint64(data[len(data)-snapshotTrailerLen:])
	if got := xxhash64Sum(payload, 0); got != sum {
		return fr, fmt.Errorf("graph: snapshot: checksum mismatch (file %#016x, computed %#016x)", sum, got)
	}
	fr.body = payload[snapshotHeaderLen:]
	return fr, nil
}

// validateSnapshotCSR checks the structural invariants a Graph promises:
// zero-based monotone offsets ending at the edge count, every neighbor ID
// in range, every adjacency bucket strictly ascending (a built Graph's
// buckets are sorted and deduplicated).
func validateSnapshotCSR(offsets []int64, edges []VertexID, n, m uint64) error {
	if offsets[0] != 0 {
		return fmt.Errorf("graph: snapshot: offsets[0] = %d, want 0", offsets[0])
	}
	for i := uint64(1); i <= n; i++ {
		if offsets[i] < offsets[i-1] {
			return fmt.Errorf("graph: snapshot: offsets not monotone at vertex %d", i)
		}
	}
	if uint64(offsets[n]) != m {
		return fmt.Errorf("graph: snapshot: offsets end at %d, want edge count %d", offsets[n], m)
	}
	for v := uint64(0); v < n; v++ {
		prev := VertexID(-1)
		for _, dst := range edges[offsets[v]:offsets[v+1]] {
			if uint64(uint32(dst)) >= n || dst < 0 {
				return fmt.Errorf("graph: snapshot: vertex %d has out-of-range neighbor %d (n=%d)", v, dst, n)
			}
			if dst <= prev {
				return fmt.Errorf("graph: snapshot: vertex %d adjacency not strictly sorted", v)
			}
			prev = dst
		}
	}
	return nil
}

func decodeSnapshot(data []byte) (*Graph, error) {
	fr, err := parseSnapshotFrame(data)
	if err != nil {
		return nil, err
	}
	n, m, body := fr.n, fr.m, fr.body
	offsets := make([]int64, n+1)
	for i := range offsets {
		offsets[i] = int64(binary.LittleEndian.Uint64(body[i*8:]))
	}
	body = body[(n+1)*8:]
	edges := make([]VertexID, m)
	for i := range edges {
		edges[i] = VertexID(binary.LittleEndian.Uint32(body[i*4:]))
	}
	body = body[m*4:]
	if err := validateSnapshotCSR(offsets, edges, n, m); err != nil {
		return nil, err
	}
	var weights []float32
	if fr.weighted {
		weights = make([]float32, m)
		for i := range weights {
			weights[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[i*4:]))
		}
	}
	return &Graph{offsets: offsets, edges: edges, weights: weights}, nil
}

// WriteSnapshotFile writes g's snapshot to path atomically (temp file +
// rename), so a crash mid-write cannot leave a truncated snapshot behind
// the registry's back.
func WriteSnapshotFile(path string, g *Graph) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := WriteSnapshot(tmp, g); err != nil {
		tmp.Close()
		return err
	}
	// Flush to stable storage before the rename becomes visible, so a
	// crash cannot publish the new name with unwritten data blocks
	// (which would also have destroyed any previous good snapshot).
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	// CreateTemp's 0600 is right for a scratch file, not for a dataset
	// artifact other processes (and operators) read.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Best effort: sync the directory so the rename itself survives a
	// crash. Some filesystems reject fsync on directories; the data blocks
	// are already durable, so that is not worth failing the write over.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// ReadSnapshotFile reads a snapshot from path.
func ReadSnapshotFile(path string) (*Graph, error) {
	if fault := faultinject.Fire(faultinject.PointGraphReadSnapshot); fault != nil {
		fault.Sleep()
		if fault.Err != nil {
			return nil, fault.Err
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(data)
}
