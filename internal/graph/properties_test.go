package graph

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func testRNG() *rand.Rand {
	return rand.New(rand.NewPCG(42, 1337))
}

func TestDegreeStats(t *testing.T) {
	s := NewDegreeStats([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if s.Min != 0 || s.Max != 9 {
		t.Errorf("Min/Max = %d/%d, want 0/9", s.Min, s.Max)
	}
	if s.Mean != 4.5 {
		t.Errorf("Mean = %v, want 4.5", s.Mean)
	}
	if s.P90 != 9 {
		t.Errorf("P90 = %d, want 9", s.P90)
	}
	if s.ZeroFraction != 0.1 {
		t.Errorf("ZeroFraction = %v, want 0.1", s.ZeroFraction)
	}
}

func TestDegreeStatsEmpty(t *testing.T) {
	s := NewDegreeStats(nil)
	if s.Max != 0 || s.Mean != 0 {
		t.Errorf("empty stats = %+v, want zeros", s)
	}
}

func TestPowerLawAlphaRecoversExponent(t *testing.T) {
	// Draw degrees from a discrete power law with alpha = 2.5 via inverse
	// transform on the continuous approximation.
	// The discrete MLE with the -0.5 continuity correction is accurate for
	// dmin >~ 6 (Clauset et al.), so generate with a comfortably large dmin.
	rng := testRNG()
	const alpha = 2.5
	const dmin = 8
	degrees := make([]int, 30000)
	for i := range degrees {
		u := rng.Float64()
		d := (float64(dmin) - 0.5) * math.Pow(1-u, -1/(alpha-1))
		degrees[i] = int(d + 0.5)
	}
	got := PowerLawAlpha(degrees, dmin)
	if math.Abs(got-alpha) > 0.15 {
		t.Errorf("PowerLawAlpha = %v, want ~%v", got, alpha)
	}
}

func TestPowerLawAlphaDegenerate(t *testing.T) {
	if got := PowerLawAlpha([]int{1}, 2); got != 0 {
		t.Errorf("PowerLawAlpha on tiny input = %v, want 0", got)
	}
	if got := PowerLawAlpha(nil, 2); got != 0 {
		t.Errorf("PowerLawAlpha(nil) = %v, want 0", got)
	}
}

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	a := []int{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(a, a); d != 0 {
		t.Errorf("KS(a,a) = %v, want 0", d)
	}
}

func TestKolmogorovSmirnovDisjoint(t *testing.T) {
	a := []int{1, 1, 1}
	b := []int{100, 100, 100}
	if d := KolmogorovSmirnov(a, b); d != 1 {
		t.Errorf("KS(disjoint) = %v, want 1", d)
	}
}

func TestKolmogorovSmirnovEmpty(t *testing.T) {
	if d := KolmogorovSmirnov(nil, []int{1}); d != 1 {
		t.Errorf("KS(nil, x) = %v, want 1", d)
	}
}

func TestKolmogorovSmirnovSymmetric(t *testing.T) {
	f := func(a, b []uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		da := make([]int, len(a))
		for i, x := range a {
			da[i] = int(x)
		}
		db := make([]int, len(b))
		for i, x := range b {
			db[i] = int(x)
		}
		d1 := KolmogorovSmirnov(da, db)
		d2 := KolmogorovSmirnov(db, da)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveDiameterPath(t *testing.T) {
	// Directed path 0->1->2->...->9: from source i there are 10-i reachable
	// vertices. Exact diameter over all sources covers distances up to 9;
	// the 90th percentile of pair distances is smaller.
	const n = 10
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(VertexID(i), VertexID(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	d := EffectiveDiameter(g, 1.0, n, testRNG())
	if d != n-1 {
		t.Errorf("EffectiveDiameter(q=1) = %d, want %d", d, n-1)
	}
	d90 := EffectiveDiameter(g, 0.9, n, testRNG())
	if d90 >= d || d90 < 1 {
		t.Errorf("EffectiveDiameter(q=0.9) = %d, want in [1, %d)", d90, d)
	}
}

func TestEffectiveDiameterStar(t *testing.T) {
	// Star: center 0 -> all leaves. All reachable pairs are at distance 1.
	const n = 50
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, VertexID(i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d := EffectiveDiameter(g, 0.9, n, testRNG()); d != 1 {
		t.Errorf("star EffectiveDiameter = %d, want 1", d)
	}
}

func TestEffectiveDiameterEmpty(t *testing.T) {
	var g Graph
	if d := EffectiveDiameter(&g, 0.9, 10, testRNG()); d != 0 {
		t.Errorf("empty EffectiveDiameter = %d, want 0", d)
	}
}

func TestClusteringCoefficientTriangle(t *testing.T) {
	// Complete directed triangle: every vertex's two neighbors are linked.
	g := MustFromEdges(3, [][2]VertexID{
		{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1},
	})
	if c := ClusteringCoefficient(g, 3, testRNG()); c != 1 {
		t.Errorf("triangle clustering = %v, want 1", c)
	}
}

func TestClusteringCoefficientStar(t *testing.T) {
	// Star has no triangles.
	b := NewBuilder(10)
	for i := 1; i < 10; i++ {
		b.AddEdge(0, VertexID(i))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c := ClusteringCoefficient(g, 10, testRNG()); c != 0 {
		t.Errorf("star clustering = %v, want 0", c)
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; 5 isolated.
	g := MustFromEdges(6, [][2]VertexID{{0, 1}, {2, 1}, {3, 4}})
	labels, k := WeaklyConnectedComponents(g)
	if k != 3 {
		t.Fatalf("components = %d, want 3", k)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("vertices 0,1,2 should share a component")
	}
	if labels[3] != labels[4] {
		t.Error("vertices 3,4 should share a component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("vertex 5 should be isolated")
	}
}

func TestLargestComponentFraction(t *testing.T) {
	g := MustFromEdges(5, [][2]VertexID{{0, 1}, {1, 2}})
	got := LargestComponentFraction(g)
	if got != 0.6 {
		t.Errorf("LargestComponentFraction = %v, want 0.6", got)
	}
}

func TestInOutRatio(t *testing.T) {
	// 0->1, 1->0: each vertex has in=1, out=1, ratio 1.
	g := MustFromEdges(2, [][2]VertexID{{0, 1}, {1, 0}})
	if r := InOutRatioStats(g); r != 1 {
		t.Errorf("InOutRatioStats = %v, want 1", r)
	}
}

func TestMeasureBundle(t *testing.T) {
	g := figure2G()
	p := Measure(g, g.NumVertices(), g.NumVertices(), 7)
	if p.NumVertices != 9 {
		t.Errorf("NumVertices = %d, want 9", p.NumVertices)
	}
	if p.NumEdges != 7 {
		t.Errorf("NumEdges = %d, want 7", p.NumEdges)
	}
	if p.LargestWCC <= 0 || p.LargestWCC > 1 {
		t.Errorf("LargestWCC = %v, out of (0,1]", p.LargestWCC)
	}
}
