package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"predict/internal/parallel"
)

// graphsIdentical reports bit-identity of the CSR representation: same
// offsets, same adjacency, same weights (including weightedness).
func graphsIdentical(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if a.HasWeights() != b.HasWeights() {
		return false
	}
	for v := 0; v <= a.NumVertices(); v++ {
		if v < len(a.offsets) != (v < len(b.offsets)) {
			return false
		}
	}
	for i := range a.offsets {
		if a.offsets[i] != b.offsets[i] {
			return false
		}
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] {
			return false
		}
	}
	for i := range a.weights {
		if a.weights[i] != b.weights[i] {
			return false
		}
	}
	return true
}

// loadConfigs are the parallelism/chunking shapes the equivalence tests
// sweep: single shard, many tiny shards (every line its own shard for
// small inputs), and realistic multi-shard splits.
var loadConfigs = []LoadOptions{
	{Parallelism: 1},
	{Parallelism: 2, chunkBytes: 1},
	{Parallelism: 3, chunkBytes: 7},
	{Parallelism: 8, chunkBytes: 64},
	{Parallelism: 4, chunkBytes: 4096},
}

// assertLoadMatchesSequential parses input with ReadEdgeList and with the
// parallel loader under every load config, requiring both paths to agree
// on success/failure and, on success, produce bit-identical graphs.
func assertLoadMatchesSequential(t *testing.T, input string) {
	t.Helper()
	seq, seqErr := ReadEdgeList(strings.NewReader(input))
	for _, cfg := range loadConfigs {
		par, parErr := LoadEdgeList(strings.NewReader(input), cfg)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("config %+v: sequential err = %v, parallel err = %v\ninput: %q",
				cfg, seqErr, parErr, clip(input))
		}
		if seqErr != nil {
			continue
		}
		if !graphsIdentical(seq, par) {
			t.Fatalf("config %+v: parallel graph differs from sequential\ninput: %q\nseq: %v\npar: %v",
				cfg, clip(input), seq, par)
		}
	}
}

func clip(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}

func TestLoadEdgeListMatchesSequentialHandwritten(t *testing.T) {
	cases := []string{
		"",
		"\n\n\n",
		"# just a comment\n",
		"0 1\n",
		"0 1",
		"0 1\n1 2\n2 0\n",
		"# vertices 4\n0 1\n2 3\n",
		"0 1\n# vertices 4\n2 3\n",           // header after edges
		"0 1\n2 3\n# vertices 4",             // trailing header, no newline
		"# vertices 4\n# vertices 4\n0 1\n",  // repeated agreeing headers
		"  0\t1 \n\t2  3\t\n",                // tabs and padding
		"0 1\r\n1 2\r\n",                     // CRLF
		"0 1 2.5\n1 2 0.125\n",               // weighted
		"0 1\n1 2 4.0\n2 0\n",                // mixed: weight appears mid-file
		"0 1 1e-3\n1 0 -2.75\n",              // exotic but finite weights
		"5 5\n5 5\n",                         // self loops + duplicates
		"3 1\n3 1\n3 2\n3 0\n",               // parallel edges, unsorted
		"+0 +1\n",                            // explicit plus signs
		"-0 1\n",                             // negative zero ID is zero
		"# vertices 3\n\n#c\n0 2\n\n\n1 0\n", // blanks and comments interleaved
		"0\u00a01\n",                         // non-breaking space separates fields (unicode.IsSpace)
		"# vertices 10\n9 0\n",               // header larger than max ID
		"0 1 3\n0 1 7\n",                     // duplicate weighted edge: first weight wins
		"2 1 0.5\n2 1\n2 0\n",                // duplicate where the dup is unweighted
		"# vertices x\n",                     // bad header count
		"# vertices 3\n# vertices 4\n",       // conflicting headers
		"0 1\n# vertices 1\n",                // header too small for edges
		"0\n",                                // too few fields
		"0 1 2 3\n",                          // too many fields
		"a 1\n",                              // bad source
		"0 b\n",                              // bad destination
		"0 1 nope\n",                         // bad weight
		"0 1 NaN\n",                          // NaN weight
		"0 1 Inf\n",                          // Inf weight
		"0 1 -inf\n",                         // -Inf weight
		"0 1 1e40\n",                         // overflows float32 to Inf
		"-1 0\n",                             // negative source
		"0 -2\n",                             // negative destination
		"3000000000 0\n",                     // ID past int32
		"99999999999999999999999999999 0\n",  // ID past int64
		"-99999999999999999999999999999 0\n", // negative past int64
		"# vertices 99999999999999999999\n",  // header count past int64
		"# vertices -1\n",                    // negative header count
		"0 1\nx y\n2 3\n",                    // error mid-file
		"\ufeff0 1\n",                        // BOM is not whitespace: parse error
	}
	for _, in := range cases {
		assertLoadMatchesSequential(t, in)
	}
}

// TestLoadEdgeListMatchesSequentialRandom holds the two implementations
// equal on randomized edge lists: random shapes, random formatting noise
// (comments, blank lines, padding, weight mixes, header placement).
func TestLoadEdgeListMatchesSequentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		var sb strings.Builder
		headerAt := -1
		lines := rng.Intn(120)
		if rng.Intn(2) == 0 {
			headerAt = rng.Intn(lines + 1)
		}
		for i := 0; i < lines; i++ {
			if i == headerAt {
				fmt.Fprintf(&sb, "# vertices %d\n", n)
			}
			switch rng.Intn(10) {
			case 0:
				sb.WriteString("\n")
			case 1:
				fmt.Fprintf(&sb, "# comment %d\n", i)
			default:
				src, dst := rng.Intn(n), rng.Intn(n)
				pad := strings.Repeat(" ", rng.Intn(3))
				sep := []string{" ", "\t", "  ", " \t"}[rng.Intn(4)]
				if rng.Intn(3) == 0 {
					fmt.Fprintf(&sb, "%s%d%s%d%s%.3f\n", pad, src, sep, dst, sep, rng.Float64()*10-5)
				} else {
					fmt.Fprintf(&sb, "%s%d%s%d\n", pad, src, sep, dst)
				}
			}
		}
		assertLoadMatchesSequential(t, sb.String())
	}
}

// TestLoadEdgeListRoundTripsWrittenGraphs drives randomly built graphs
// (parallel edges, self-loops, weights) through WriteEdgeList and back via
// the parallel loader.
func TestLoadEdgeListRoundTripsWrittenGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(50)
		b := NewBuilder(n)
		weighted := rng.Intn(2) == 0
		for e := rng.Intn(4 * n); e > 0; e-- {
			if weighted {
				b.AddWeightedEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), float32(rng.NormFloat64()))
			} else {
				b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatal(err)
		}
		assertLoadMatchesSequential(t, buf.String())
		got, err := LoadEdgeList(bytes.NewReader(buf.Bytes()), LoadOptions{Parallelism: 4, chunkBytes: 32})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !graphsIdentical(g, got) {
			t.Fatalf("trial %d: loaded graph differs from source", trial)
		}
	}
}

func TestLoadEdgeListErrorLineNumbers(t *testing.T) {
	cases := []struct {
		input    string
		wantLine string
	}{
		{"0 1\n1 2\nx 3\n", "line 3"},
		{"0 1\n\n# c\n0 -7\n", "line 4"},
		{"# vertices 3\n0 1\n# vertices 5\n", "line 3"},
		{"0 1 NaN\n", "line 1"},
		{"0 1\n1 2\n3000000000 1\n", "line 3"},
	}
	for _, tc := range cases {
		for _, cfg := range loadConfigs {
			_, err := LoadEdgeList(strings.NewReader(tc.input), cfg)
			if err == nil {
				t.Fatalf("LoadEdgeList(%q) succeeded, want error", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Errorf("LoadEdgeList(%q) config %+v error %q, want it to name %q",
					tc.input, cfg, err, tc.wantLine)
			}
		}
		_, err := ReadEdgeList(strings.NewReader(tc.input))
		if err == nil || !strings.Contains(err.Error(), tc.wantLine) {
			t.Errorf("ReadEdgeList(%q) error %v, want it to name %q", tc.input, err, tc.wantLine)
		}
	}
}

func TestLoadEdgeListLineTooLong(t *testing.T) {
	long := "0 1 " + strings.Repeat("#", maxLineBytes)
	input := "0 1\n" + long + "\n"
	if _, err := ReadEdgeList(strings.NewReader(input)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("ReadEdgeList long line error = %v, want positional error on line 2", err)
	}
	if _, err := LoadEdgeList(strings.NewReader(input), LoadOptions{Parallelism: 2}); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("LoadEdgeList long line error = %v, want positional error on line 2", err)
	}
}

func TestLoadEdgeListOnSharedPool(t *testing.T) {
	pool := parallel.NewPool(3)
	input := "# vertices 6\n0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n"
	g, err := LoadEdgeList(strings.NewReader(input), LoadOptions{Pool: pool, chunkBytes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 6 || g.NumEdges() != 6 {
		t.Fatalf("got %v, want 6 vertices / 6 edges", g)
	}
}

func TestSplitChunksLineAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		var sb bytes.Buffer
		for i := rng.Intn(60); i > 0; i-- {
			sb.WriteString(strings.Repeat("x", rng.Intn(9)))
			if rng.Intn(5) > 0 {
				sb.WriteByte('\n')
			}
		}
		data := sb.Bytes()
		chunks := splitChunks(data, 1+rng.Intn(16))
		var rejoined []byte
		for i, c := range chunks {
			if len(c) == 0 {
				t.Fatalf("chunk %d empty", i)
			}
			if i < len(chunks)-1 && c[len(c)-1] != '\n' {
				t.Fatalf("chunk %d does not end at a line boundary", i)
			}
			rejoined = append(rejoined, c...)
		}
		if !bytes.Equal(rejoined, data) {
			t.Fatal("chunks do not rejoin to the input")
		}
	}
}
