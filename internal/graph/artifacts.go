package graph

// Per-graph derived artifacts, built lazily — and concurrency-safely — the
// first time any consumer asks, then shared read-only by every subsequent
// consumer. The sampling→subgraph pipeline re-runs on the *same* base graph
// once per training ratio (and once per cold fit on a cached service
// graph), so everything here used to be recomputed per call: the BRJ seed
// ordering paid an O(n log n) sort.Slice per Sample, and the fidelity and
// property measurements re-derived and re-sorted full degree sequences per
// call. A Graph is immutable once built, which makes all of these pure
// functions of the graph — ideal cache fodder behind a sync.Once, the same
// pattern EnsureInEdges uses for the reverse adjacency.
type degreeArtifacts struct {
	// outDegrees[v] is v's out-degree. Shared; callers must not modify.
	outDegrees []int
	// sortedOut is the out-degree sequence in ascending order (the form
	// KS-statistics and degree stats consume). Shared; do not modify.
	sortedOut []int
	// maxOut is the largest out-degree.
	maxOut int
	// byOutDegreeDesc holds all vertex IDs ordered by out-degree
	// descending, ties broken by ascending ID — the BRJ seed total order.
	// Shared; callers must not modify.
	byOutDegreeDesc []VertexID
}

// EnsureDegreeArtifacts materializes the degree artifacts if they have not
// been built yet — the EnsureInEdges counterpart for degree state. Callers
// that load or generate a graph ahead of serving (the prediction service's
// graph cache) warm the artifacts here so the first cold fit's sampling
// pipelines find the BRJ seed ordering ready instead of paying the build
// inside the request path. Safe for concurrent use.
func (g *Graph) EnsureDegreeArtifacts() {
	g.ensureDegreeArtifacts()
}

// ensureDegreeArtifacts builds the degree artifacts exactly once. The
// ordering is produced by a counting sort over degrees (O(n + maxDeg))
// that reproduces the comparison sort's total order bit-exactly: the
// comparator (degree desc, ID asc) is a strict total order, so any
// correct sort yields the same permutation. Placing ascending IDs into
// descending-degree buckets gives exactly that permutation without the
// O(n log n) comparison sort the sampler used to pay per call.
func (g *Graph) ensureDegreeArtifacts() *degreeArtifacts {
	g.degOnce.Do(func() {
		n := g.NumVertices()
		a := &degreeArtifacts{
			outDegrees:      make([]int, n),
			byOutDegreeDesc: make([]VertexID, n),
		}
		maxDeg := 0
		for v := 0; v < n; v++ {
			d := g.OutDegree(VertexID(v))
			a.outDegrees[v] = d
			if d > maxDeg {
				maxDeg = d
			}
		}
		a.maxOut = maxDeg
		if n == 0 {
			g.deg = a
			return
		}
		// Histogram of degrees, then two scans: one building the ascending
		// sorted degree sequence directly from the histogram, one scattering
		// ascending vertex IDs to descending-degree positions.
		counts := make([]int, maxDeg+1)
		for _, d := range a.outDegrees {
			counts[d]++
		}
		a.sortedOut = sortedFromCounts(counts, n)
		// cursor[d] = first position of degree d in the descending order.
		cursor := make([]int, maxDeg+1)
		pos := 0
		for d := maxDeg; d >= 0; d-- {
			cursor[d] = pos
			pos += counts[d]
		}
		for v := 0; v < n; v++ {
			d := a.outDegrees[v]
			a.byOutDegreeDesc[cursor[d]] = VertexID(v)
			cursor[d]++
		}
		g.deg = a
	})
	return g.deg
}

// CachedOutDegrees returns the memoized out-degree slice indexed by vertex.
// The slice is shared: callers must not modify it. Use OutDegrees for a
// private copy.
func (g *Graph) CachedOutDegrees() []int {
	return g.ensureDegreeArtifacts().outDegrees
}

// SortedOutDegrees returns the memoized ascending out-degree sequence (the
// form KolmogorovSmirnovSorted and degree statistics consume). The slice is
// shared: callers must not modify it.
func (g *Graph) SortedOutDegrees() []int {
	return g.ensureDegreeArtifacts().sortedOut
}

// VerticesByOutDegree returns all vertex IDs ordered by out-degree
// descending, ties broken by ascending ID — the total order BRJ draws its
// restart seeds from (a prefix of this slice). Built once per graph by
// counting sort; the slice is shared and callers must not modify it.
func (g *Graph) VerticesByOutDegree() []VertexID {
	return g.ensureDegreeArtifacts().byOutDegreeDesc
}

// SortedInDegrees returns the memoized ascending in-degree sequence,
// materializing the reverse adjacency if needed. The slice is shared:
// callers must not modify it.
func (g *Graph) SortedInDegrees() []int {
	g.inDegOnce.Do(func() {
		g.EnsureInEdges()
		n := g.NumVertices()
		counts := []int{0}
		for v := 0; v < n; v++ {
			d := g.InDegree(VertexID(v))
			for d >= len(counts) {
				counts = append(counts, 0)
			}
			counts[d]++
		}
		g.sortedInDeg = sortedFromCounts(counts, n)
	})
	return g.sortedInDeg
}

// sortedFromCounts expands a degree histogram into the ascending degree
// sequence of n entries.
func sortedFromCounts(counts []int, n int) []int {
	sorted := make([]int, 0, n)
	for d, c := range counts {
		for i := 0; i < c; i++ {
			sorted = append(sorted, d)
		}
	}
	return sorted
}
