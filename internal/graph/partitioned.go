package graph

import "fmt"

// Partitioned is a Graph sliced into contiguous vertex ranges, each with
// a CSR view aliasing the shared arrays — no copies, no ownership. The
// partitioned form is purely a placement/locality structure: every view
// reads the same offsets/edges/weights the flat graph does, so any
// algorithm is observationally identical on the two forms (the property
// tests pin BFS visit order, sampling fingerprints and engine superstep
// fingerprints to the flat path bit for bit).
//
// Because views alias, a Partitioned over an mmap'd graph (MmapSnapshot)
// still owns nothing: partitions of a billion-edge snapshot cost P slice
// headers, and the same lifetime rules apply (the underlying Graph keeps
// the mapping alive).
type Partitioned struct {
	g *Graph
	// starts[i] is the first vertex of partition i; starts[P] = n.
	// Monotone non-decreasing, so empty partitions are representable
	// (more partitions than vertices).
	starts []VertexID
}

// NewPartitioned wraps g with the given cut points. starts must begin at
// 0, end at NumVertices and be non-decreasing; it is retained, not
// copied.
func NewPartitioned(g *Graph, starts []VertexID) (*Partitioned, error) {
	n := g.NumVertices()
	if len(starts) < 2 {
		return nil, fmt.Errorf("graph: partition: need at least 2 cut points, got %d", len(starts))
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("graph: partition: starts[0] = %d, want 0", starts[0])
	}
	if int(starts[len(starts)-1]) != n {
		return nil, fmt.Errorf("graph: partition: starts end at %d, want vertex count %d", starts[len(starts)-1], n)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return nil, fmt.Errorf("graph: partition: cut points not monotone at %d", i)
		}
	}
	return &Partitioned{g: g, starts: starts}, nil
}

// Graph returns the underlying flat graph.
func (p *Partitioned) Graph() *Graph { return p.g }

// NumPartitions reports the partition count.
func (p *Partitioned) NumPartitions() int { return len(p.starts) - 1 }

// Bounds returns partition i's vertex range [lo, hi).
func (p *Partitioned) Bounds(i int) (lo, hi VertexID) {
	return p.starts[i], p.starts[i+1]
}

// PartitionOf returns the partition owning vertex v (binary search over
// the cut points; empty partitions never own anything).
func (p *Partitioned) PartitionOf(v VertexID) int {
	lo, hi := 0, p.NumPartitions()-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.starts[mid+1] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// View returns partition i's CSR view. Views are values built from three
// sub-slice headers; constructing one allocates nothing.
func (p *Partitioned) View(i int) PartitionView {
	lo, hi := p.starts[i], p.starts[i+1]
	offsets := p.g.offsets[lo : hi+1]
	first, last := offsets[0], offsets[len(offsets)-1]
	v := PartitionView{
		Lo:      lo,
		Hi:      hi,
		offsets: offsets,
		edges:   p.g.edges[first:last],
	}
	if p.g.weights != nil {
		v.weights = p.g.weights[first:last]
	}
	return v
}

// PartitionView is one partition's read-only CSR window: the vertices in
// [Lo, Hi) with their adjacency, all aliasing the parent graph's arrays.
// Vertex arguments are GLOBAL IDs (the same namespace as the flat graph),
// so code can move between views and the flat graph without translating.
type PartitionView struct {
	Lo, Hi  VertexID
	offsets []int64 // parent offsets[Lo : Hi+1], NOT rebased to zero
	edges   []VertexID
	weights []float32
}

// NumVertices reports the number of vertices in the view.
func (v PartitionView) NumVertices() int { return int(v.Hi - v.Lo) }

// NumEdges reports the number of out-edges owned by the view's vertices.
func (v PartitionView) NumEdges() int64 { return int64(len(v.edges)) }

// OutDegree reports the out-degree of global vertex u, which must lie in
// [Lo, Hi).
func (v PartitionView) OutDegree(u VertexID) int {
	i := u - v.Lo
	return int(v.offsets[i+1] - v.offsets[i])
}

// OutNeighbors returns the out-neighbors of global vertex u (in [Lo, Hi))
// as a shared slice aliasing the parent graph. Callers must not modify it
// — for mmap-backed graphs the pages are physically read-only.
func (v PartitionView) OutNeighbors(u VertexID) []VertexID {
	i := u - v.Lo
	base := v.offsets[0]
	return v.edges[v.offsets[i]-base : v.offsets[i+1]-base]
}

// OutWeights returns the weights parallel to OutNeighbors(u), nil for
// unweighted graphs.
func (v PartitionView) OutWeights(u VertexID) []float32 {
	if v.weights == nil {
		return nil
	}
	i := u - v.Lo
	base := v.offsets[0]
	return v.weights[v.offsets[i]-base : v.offsets[i+1]-base]
}

// BFSOrder runs a deterministic breadth-first traversal from src over the
// flat graph and returns the visit order. It is the observational probe
// the partition property tests compare against Partitioned.BFSOrder.
func BFSOrder(g *Graph, src VertexID) []VertexID {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	visited := make([]bool, n)
	order := make([]VertexID, 0, n)
	queue := make([]VertexID, 0, n)
	visited[src] = true
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, w := range g.OutNeighbors(u) {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}

// BFSOrder runs the same breadth-first traversal routed entirely through
// partition views: every adjacency read resolves the owning partition
// first (the access pattern a partition-aware worker uses). The returned
// order is bit-identical to BFSOrder on the flat graph — the views alias
// the same arrays and enumerate the same sorted buckets.
func (p *Partitioned) BFSOrder(src VertexID) []VertexID {
	n := p.g.NumVertices()
	if n == 0 {
		return nil
	}
	// Materialize the views once; per-vertex view construction would also
	// work (it allocates nothing) but the lookup table mirrors how the
	// engine holds its partition views for a whole run.
	views := make([]PartitionView, p.NumPartitions())
	for i := range views {
		views[i] = p.View(i)
	}
	visited := make([]bool, n)
	order := make([]VertexID, 0, n)
	queue := make([]VertexID, 0, n)
	visited[src] = true
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, w := range views[p.PartitionOf(u)].OutNeighbors(u) {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}
