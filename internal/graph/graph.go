// Package graph provides the directed-graph substrate used throughout the
// PREDIcT reproduction: a compact CSR (compressed sparse row)
// representation, a builder, induced subgraphs with vertex mappings, and
// the structural properties that drive sampling fidelity (degree
// statistics, effective diameter, clustering coefficient, power-law
// exponent, connected components).
//
// Graphs are immutable once built. Vertex identifiers are dense integers
// in [0, NumVertices). Parallel edges are deduplicated by the builder and
// self-loops are dropped unless explicitly kept.
package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// VertexID identifies a vertex. IDs are dense: every graph with n vertices
// uses exactly the IDs 0..n-1.
type VertexID int32

// Graph is an immutable directed graph in CSR form. The zero value is an
// empty graph with no vertices.
type Graph struct {
	offsets []int64    // len = n+1; out-edges of v are edges[offsets[v]:offsets[v+1]]
	edges   []VertexID // concatenated adjacency lists, sorted per vertex
	weights []float32  // optional, parallel to edges; nil if unweighted

	// Reverse adjacency (in-edges), built lazily — and concurrency-safely —
	// by EnsureInEdges. inOnce serializes the build; inBuilt publishes its
	// completion to lock-free readers (HasInEdges).
	inOnce    sync.Once
	inBuilt   atomic.Bool
	inOffsets []int64
	inEdges   []VertexID

	// Degree artifacts (memoized out-degree slices, sorted sequences and
	// the BRJ seed ordering), built lazily by ensureDegreeArtifacts; see
	// artifacts.go. The sync.Once publishes deg with a happens-before edge
	// for every caller, the same discipline as EnsureInEdges.
	degOnce sync.Once
	deg     *degreeArtifacts

	// Sorted in-degree sequence, memoized separately because it needs the
	// reverse adjacency first.
	inDegOnce   sync.Once
	sortedInDeg []int

	// mapped is non-nil for graphs whose CSR slices alias an mmap'd
	// snapshot (MmapSnapshot). The reference keeps the mapping alive for
	// as long as the Graph is reachable, so the finalizer-driven munmap
	// can never pull pages out from under a live graph. See mmap.go.
	mapped *mmapRegion
}

// NumVertices reports the number of vertices.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges reports the number of directed edges.
func (g *Graph) NumEdges() int64 {
	return int64(len(g.edges))
}

// OutDegree reports the number of out-edges of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// OutNeighbors returns the out-neighbors of v as a shared slice view.
// Callers must not modify the returned slice.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// HasWeights reports whether the graph carries edge weights.
func (g *Graph) HasWeights() bool { return g.weights != nil }

// OutWeights returns the weights parallel to OutNeighbors(v). It returns
// nil for unweighted graphs.
func (g *Graph) OutWeights(v VertexID) []float32 {
	if g.weights == nil {
		return nil
	}
	return g.weights[g.offsets[v]:g.offsets[v+1]]
}

// HasInEdges reports whether the reverse adjacency has been materialized.
// It is safe to call concurrently with EnsureInEdges.
func (g *Graph) HasInEdges() bool { return g.inBuilt.Load() }

// EnsureInEdges materializes the reverse adjacency (in-edges) if it has
// not been built yet. It is safe for concurrent use: parallel fit
// pipelines share the base graph (in-degree features, sampling fidelity),
// so the build is serialized behind a sync.Once and every caller returns
// with the reverse adjacency visible (the Once gives the happens-before
// edge).
func (g *Graph) EnsureInEdges() {
	g.inOnce.Do(g.buildInEdges)
}

func (g *Graph) buildInEdges() {
	n := g.NumVertices()
	inDeg := make([]int64, n+1)
	for _, dst := range g.edges {
		inDeg[dst+1]++
	}
	for i := 1; i <= n; i++ {
		inDeg[i] += inDeg[i-1]
	}
	inEdges := make([]VertexID, len(g.edges))
	cursor := make([]int64, n)
	copy(cursor, inDeg[:n])
	for src := 0; src < n; src++ {
		for _, dst := range g.OutNeighbors(VertexID(src)) {
			inEdges[cursor[dst]] = VertexID(src)
			cursor[dst]++
		}
	}
	g.inOffsets = inDeg
	g.inEdges = inEdges
	g.inBuilt.Store(true)
}

// InDegree reports the number of in-edges of v. It requires in-edges to be
// materialized (see EnsureInEdges).
func (g *Graph) InDegree(v VertexID) int {
	if g.inOffsets == nil {
		panic("graph: InDegree called before EnsureInEdges")
	}
	return int(g.inOffsets[v+1] - g.inOffsets[v])
}

// InNeighbors returns the in-neighbors of v as a shared slice view. It
// requires in-edges to be materialized (see EnsureInEdges).
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	if g.inOffsets == nil {
		panic("graph: InNeighbors called before EnsureInEdges")
	}
	return g.inEdges[g.inOffsets[v]:g.inOffsets[v+1]]
}

// HasEdge reports whether the directed edge (src, dst) exists. It runs a
// binary search over src's sorted adjacency list.
func (g *Graph) HasEdge(src, dst VertexID) bool {
	adj := g.OutNeighbors(src)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < dst {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == dst
}

// AvgOutDegree reports the mean out-degree, 0 for an empty graph.
func (g *Graph) AvgOutDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(n)
}

// MaxOutDegree reports the largest out-degree in the graph, from the
// memoized degree artifacts (no sort, O(1) after the first call).
func (g *Graph) MaxOutDegree() int {
	return g.ensureDegreeArtifacts().maxOut
}

// String summarizes the graph as "Graph(n=..., m=...)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.NumVertices(), g.NumEdges())
}

// Reverse returns the transpose graph: every edge (u, v) becomes (v, u).
// Weights are carried over.
func (g *Graph) Reverse() *Graph {
	n := g.NumVertices()
	b := NewBuilder(n)
	for src := 0; src < n; src++ {
		ws := g.OutWeights(VertexID(src))
		for i, dst := range g.OutNeighbors(VertexID(src)) {
			if ws != nil {
				b.AddWeightedEdge(dst, VertexID(src), ws[i])
			} else {
				b.AddEdge(dst, VertexID(src))
			}
		}
	}
	rg, err := b.Build()
	if err != nil {
		// Cannot happen: edges come from a valid graph.
		panic("graph: Reverse: " + err.Error())
	}
	return rg
}

// Undirected returns the symmetric closure of g: for every edge (u, v) the
// result contains both (u, v) and (v, u), deduplicated. Unweighted inputs
// produce a result with weight 1.0 on every edge, which is the form the
// semi-clustering algorithm expects.
func (g *Graph) Undirected() *Graph {
	n := g.NumVertices()
	b := NewBuilder(n)
	for src := 0; src < n; src++ {
		ws := g.OutWeights(VertexID(src))
		for i, dst := range g.OutNeighbors(VertexID(src)) {
			w := float32(1.0)
			if ws != nil {
				w = ws[i]
			}
			b.AddWeightedEdge(VertexID(src), dst, w)
			b.AddWeightedEdge(dst, VertexID(src), w)
		}
	}
	ug, err := b.Build()
	if err != nil {
		panic("graph: Undirected: " + err.Error())
	}
	return ug
}

// OutDegrees returns a freshly allocated slice of out-degrees indexed by
// vertex.
func (g *Graph) OutDegrees() []int {
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.OutDegree(VertexID(v))
	}
	return deg
}

// InDegrees returns a freshly allocated slice of in-degrees indexed by
// vertex, materializing the reverse adjacency if needed.
func (g *Graph) InDegrees() []int {
	g.EnsureInEdges()
	n := g.NumVertices()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.InDegree(VertexID(v))
	}
	return deg
}

// TotalOutEdges returns, for an arbitrary subset of vertices, the sum of
// their out-degrees. It is the quantity used to locate the critical-path
// worker (the paper's §3.4 "Modeling the Critical Path").
func (g *Graph) TotalOutEdges(vertices []VertexID) int64 {
	var total int64
	for _, v := range vertices {
		total += int64(g.OutDegree(v))
	}
	return total
}
