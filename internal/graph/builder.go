package graph

import (
	"errors"
	"fmt"
)

// Builder accumulates edges and produces an immutable Graph. Edges may be
// added in any order; Build sorts adjacency lists, drops self-loops and
// deduplicates parallel edges (keeping the first weight seen).
//
// The zero Builder is not usable; construct with NewBuilder.
type Builder struct {
	n        int
	srcs     []VertexID
	dsts     []VertexID
	weights  []float32
	weighted bool
	keepSelf bool
}

// NewBuilder returns a Builder for a graph with numVertices vertices
// (IDs 0..numVertices-1).
func NewBuilder(numVertices int) *Builder {
	return &Builder{n: numVertices}
}

// KeepSelfLoops configures the builder to retain self-loop edges, which are
// dropped by default.
func (b *Builder) KeepSelfLoops() *Builder {
	b.keepSelf = true
	return b
}

// AddEdge records the directed edge (src, dst).
func (b *Builder) AddEdge(src, dst VertexID) {
	b.srcs = append(b.srcs, src)
	b.dsts = append(b.dsts, dst)
	if b.weighted {
		b.weights = append(b.weights, 1)
	}
}

// AddWeightedEdge records the directed edge (src, dst) with weight w. Mixing
// weighted and unweighted edges is allowed; unweighted edges default to 1.
func (b *Builder) AddWeightedEdge(src, dst VertexID, w float32) {
	if !b.weighted {
		// Backfill weight 1 for edges added before the first weighted one.
		b.weights = make([]float32, len(b.srcs), cap(b.srcs))
		for i := range b.weights {
			b.weights[i] = 1
		}
		b.weighted = true
	}
	b.srcs = append(b.srcs, src)
	b.dsts = append(b.dsts, dst)
	b.weights = append(b.weights, w)
}

// NumPendingEdges reports how many edges have been added so far (before
// dedup).
func (b *Builder) NumPendingEdges() int { return len(b.srcs) }

// Build validates, sorts and deduplicates the accumulated edges and returns
// the immutable Graph. The builder must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.n < 0 {
		return nil, errors.New("graph: negative vertex count")
	}
	for i := range b.srcs {
		if int(b.srcs[i]) < 0 || int(b.srcs[i]) >= b.n {
			return nil, fmt.Errorf("graph: edge %d has out-of-range source %d (n=%d)", i, b.srcs[i], b.n)
		}
		if int(b.dsts[i]) < 0 || int(b.dsts[i]) >= b.n {
			return nil, fmt.Errorf("graph: edge %d has out-of-range destination %d (n=%d)", i, b.dsts[i], b.n)
		}
	}

	// Counting sort by source to build CSR buckets, then sort each bucket
	// by destination and deduplicate.
	offsets := make([]int64, b.n+1)
	for _, s := range b.srcs {
		offsets[s+1]++
	}
	for i := 1; i <= b.n; i++ {
		offsets[i] += offsets[i-1]
	}
	edges := make([]VertexID, len(b.srcs))
	var weights []float32
	if b.weighted {
		weights = make([]float32, len(b.srcs))
	}
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for i, s := range b.srcs {
		edges[cursor[s]] = b.dsts[i]
		if weights != nil {
			weights[cursor[s]] = b.weights[i]
		}
		cursor[s]++
	}

	g := finishCSR(b.n, offsets, edges, weights, b.keepSelf)
	// Release builder storage.
	b.srcs, b.dsts, b.weights = nil, nil, nil
	return g, nil
}

// finishCSR turns a counting-sort scatter (per-source buckets in edge-
// insertion order) into a finished Graph: per-bucket sort + dedup,
// compacting in place. Weighted buckets sort stably (on a scratch reused
// across buckets) so dedup keeps the first weight *added*; unweighted
// buckets use the allocation-free in-place sort — equal ints are
// indistinguishable, so stability is moot. It is shared by Builder.Build
// and the parallel edge-list loader's shard merge, which makes the two
// construction paths bit-identical by construction in everything past the
// scatter. The offsets/edges/weights arrays are consumed (mutated).
func finishCSR(n int, offsets []int64, edges []VertexID, weights []float32, keepSelf bool) *Graph {
	outEdges := edges[:0]
	var outWeights []float32
	var pairScratch []dstWeight
	if weights != nil {
		outWeights = weights[:0]
	}
	newOffsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		bucket := edges[lo:hi]
		var wbucket []float32
		if weights != nil {
			wbucket = weights[lo:hi]
			pairScratch = sortPairsStable(bucket, wbucket, pairScratch)
		} else {
			sortDual(bucket, nil)
		}
		var prev VertexID = -1
		for i, dst := range bucket {
			if dst == prev {
				continue // parallel edge
			}
			if !keepSelf && int(dst) == v {
				prev = dst
				continue // self-loop
			}
			prev = dst
			outEdges = append(outEdges, dst)
			if weights != nil {
				outWeights = append(outWeights, wbucket[i])
			}
		}
		newOffsets[v+1] = int64(len(outEdges))
	}

	return &Graph{
		offsets: newOffsets,
		edges:   outEdges,
		weights: outWeights,
	}
}

// FromEdges is a convenience constructor building an unweighted graph from
// parallel src/dst slices.
func FromEdges(numVertices int, srcs, dsts []VertexID) (*Graph, error) {
	if len(srcs) != len(dsts) {
		return nil, fmt.Errorf("graph: FromEdges: %d sources vs %d destinations", len(srcs), len(dsts))
	}
	b := NewBuilder(numVertices)
	for i := range srcs {
		b.AddEdge(srcs[i], dsts[i])
	}
	return b.Build()
}

// MustFromEdges is FromEdges but panics on error; intended for tests and
// examples with literal edge lists.
func MustFromEdges(numVertices int, edges [][2]VertexID) *Graph {
	b := NewBuilder(numVertices)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
