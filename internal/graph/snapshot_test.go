package graph

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func buildRandomGraph(t *testing.T, rng *rand.Rand, weighted bool) *Graph {
	t.Helper()
	n := 1 + rng.Intn(60)
	b := NewBuilder(n)
	for e := rng.Intn(5 * n); e > 0; e-- {
		if weighted {
			b.AddWeightedEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)), float32(rng.NormFloat64()))
		} else {
			b.AddEdge(VertexID(rng.Intn(n)), VertexID(rng.Intn(n)))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func snapshotBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, g); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		g := buildRandomGraph(t, rng, trial%2 == 0)
		got, err := ReadSnapshot(bytes.NewReader(snapshotBytes(t, g)))
		if err != nil {
			t.Fatalf("trial %d: ReadSnapshot: %v", trial, err)
		}
		if !graphsIdentical(g, got) {
			t.Fatalf("trial %d: snapshot round trip changed the graph", trial)
		}
	}
}

func TestSnapshotRoundTripEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0).Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(snapshotBytes(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 0 || got.NumEdges() != 0 || got.HasWeights() {
		t.Fatalf("empty round trip gave %v (weights %v)", got, got.HasWeights())
	}
	// The zero-value Graph (nil offsets) must also snapshot cleanly.
	var zero Graph
	got, err = ReadSnapshot(bytes.NewReader(snapshotBytes(t, &zero)))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 0 {
		t.Fatalf("zero-value round trip gave %v", got)
	}
}

func TestSnapshotPreservesSelfLoopsAndNaNWeights(t *testing.T) {
	b := NewBuilder(3).KeepSelfLoops()
	b.AddWeightedEdge(0, 0, float32(math.NaN()))
	b.AddWeightedEdge(0, 2, 1.5)
	b.AddWeightedEdge(2, 1, -0)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(snapshotBytes(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (self-loop lost?)", got.NumEdges())
	}
	w := got.OutWeights(0)
	if !math.IsNaN(float64(w[0])) {
		t.Errorf("NaN weight not preserved: %v", w[0])
	}
	if math.Float32bits(w[0]) != math.Float32bits(g.OutWeights(0)[0]) {
		t.Errorf("NaN payload bits changed: %#x vs %#x",
			math.Float32bits(w[0]), math.Float32bits(g.OutWeights(0)[0]))
	}
}

// TestSnapshotCanonicalEncoding: a valid snapshot re-encodes to the
// identical byte sequence — the property FuzzReadSnapshot leans on.
func TestSnapshotCanonicalEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := buildRandomGraph(t, rng, trial%2 == 0)
		raw := snapshotBytes(t, g)
		got, err := ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snapshotBytes(t, got), raw) {
			t.Fatalf("trial %d: re-encoded snapshot differs", trial)
		}
	}
}

// corrupt returns a copy of b with f applied, checksum left stale.
func corrupt(b []byte, f func([]byte)) []byte {
	c := bytes.Clone(b)
	f(c)
	return c
}

// reseal recomputes the trailing checksum so structural validation (not
// the checksum) is what rejects the mutation.
func reseal(b []byte) {
	sum := xxhash64Sum(b[:len(b)-snapshotTrailerLen], 0)
	binary.LittleEndian.PutUint64(b[len(b)-snapshotTrailerLen:], sum)
}

func TestSnapshotCorruption(t *testing.T) {
	b := NewBuilder(4)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(3, 0, -4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	valid := snapshotBytes(t, g)

	cases := []struct {
		name    string
		data    []byte
		wantMsg string
	}{
		{"empty", nil, "truncated"},
		{"short header", valid[:10], "truncated"},
		{"bad magic", corrupt(valid, func(b []byte) { b[0] = 'X' }), "bad magic"},
		{"bad version", corrupt(valid, func(b []byte) {
			binary.LittleEndian.PutUint16(b[4:6], 99)
			reseal(b)
		}), "unsupported version"},
		{"unknown flags", corrupt(valid, func(b []byte) {
			binary.LittleEndian.PutUint16(b[6:8], 0x8001)
			reseal(b)
		}), "unknown flags"},
		{"truncated body", valid[:len(valid)-9], "bytes, want"},
		{"trailing garbage", append(bytes.Clone(valid), 0), "bytes, want"},
		{"flipped payload byte", corrupt(valid, func(b []byte) { b[snapshotHeaderLen+3] ^= 0x40 }), "checksum mismatch"},
		{"flipped checksum", corrupt(valid, func(b []byte) { b[len(b)-1] ^= 0x01 }), "checksum mismatch"},
		{"implausible edge count", corrupt(valid, func(b []byte) {
			binary.LittleEndian.PutUint64(b[16:24], 1<<57)
			reseal(b)
		}), "implausible edge count"},
		{"vertex count overflow", corrupt(valid, func(b []byte) {
			binary.LittleEndian.PutUint64(b[8:16], 1<<40)
			reseal(b)
		}), "exceeds"},
		{"non-monotone offsets", corrupt(valid, func(b []byte) {
			// offsets[1] = 3 > offsets[2]
			binary.LittleEndian.PutUint64(b[snapshotHeaderLen+8:], 3)
			reseal(b)
		}), "not monotone"},
		{"offsets end mismatch", corrupt(valid, func(b []byte) {
			binary.LittleEndian.PutUint64(b[snapshotHeaderLen+4*8:], 2)
			reseal(b)
		}), "offsets end"},
		{"out-of-range neighbor", corrupt(valid, func(b []byte) {
			binary.LittleEndian.PutUint32(b[snapshotHeaderLen+5*8:], 77)
			reseal(b)
		}), "out-of-range neighbor"},
	}
	for _, tc := range cases {
		_, err := ReadSnapshot(bytes.NewReader(tc.data))
		if err == nil {
			t.Errorf("%s: ReadSnapshot succeeded, want error containing %q", tc.name, tc.wantMsg)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantMsg) {
			t.Errorf("%s: error %q, want it to contain %q", tc.name, err, tc.wantMsg)
		}
	}
}

func TestSnapshotUnsortedAdjacencyRejected(t *testing.T) {
	g := MustFromEdges(3, [][2]VertexID{{0, 1}, {0, 2}, {1, 0}})
	raw := snapshotBytes(t, g)
	// Swap vertex 0's two neighbors (1, 2) -> (2, 1) and reseal.
	edgesOff := snapshotHeaderLen + 4*8
	bad := corrupt(raw, func(b []byte) {
		binary.LittleEndian.PutUint32(b[edgesOff:], 2)
		binary.LittleEndian.PutUint32(b[edgesOff+4:], 1)
		reseal(b)
	})
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "not strictly sorted") {
		t.Errorf("unsorted adjacency error = %v, want sorted-adjacency rejection", err)
	}
}

func TestSnapshotFileHelpersAndLoadFileSniffing(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := buildRandomGraph(t, rng, true)
	dir := t.TempDir()

	snapPath := filepath.Join(dir, "g.snap")
	if err := WriteSnapshotFile(snapPath, g); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	got, err := ReadSnapshotFile(snapPath)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if !graphsIdentical(g, got) {
		t.Fatal("file round trip changed the graph")
	}

	// LoadFile detects snapshots by magic and text by fallback.
	got, err = LoadFile(snapPath, LoadOptions{})
	if err != nil {
		t.Fatalf("LoadFile(snapshot): %v", err)
	}
	if !graphsIdentical(g, got) {
		t.Fatal("LoadFile(snapshot) changed the graph")
	}

	textPath := filepath.Join(dir, "g.txt")
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(textPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = LoadFile(textPath, LoadOptions{Parallelism: 2, chunkBytes: 64})
	if err != nil {
		t.Fatalf("LoadFile(text): %v", err)
	}
	if !graphsIdentical(g, got) {
		t.Fatal("LoadFile(text) changed the graph")
	}

	if _, err := LoadFile(filepath.Join(dir, "missing.snap"), LoadOptions{}); err == nil {
		t.Error("LoadFile on a missing path succeeded")
	}
}
