// Package retry is the service's transient-failure policy: bounded,
// context-aware, jittered exponential backoff.
//
// The Lakehouse-variance and runtime-variation studies (PAPERS.md) put
// numbers on what operators know: a large share of cloud I/O failures are
// transient — a slow or briefly erroring disk, an interrupted syscall, a
// file being replaced under a reader. Retrying those immediately turns a
// blip into a failed request; retrying them forever turns a dead disk
// into an outage. A Policy bounds both directions: a fixed number of
// attempts, exponentially spaced with jitter (so concurrent retries
// decorrelate instead of stampeding), each sleep abandoned as soon as the
// caller's context expires.
//
// Not every error deserves a retry. Callers pass a classifier; the
// conventional one is IsTransient, which recognizes errors explicitly
// marked Transient (fault injection, wrappers that know their cause) and
// the handful of OS error classes that are transient by nature (timeouts,
// EINTR/EAGAIN/EIO/EBUSY). Corruption, validation failures and not-found
// are permanent: retrying them burns latency to reach the same answer.
package retry

import (
	"context"
	"errors"
	"os"
	"sync/atomic"
	"syscall"
	"time"
)

// Policy bounds and spaces retries of one operation. The zero value
// retries nothing (one attempt); withDefaults fills the spacing knobs.
type Policy struct {
	// Attempts is the total number of tries, including the first; values
	// below 1 mean 1 (no retry).
	Attempts int
	// BaseDelay is the backoff before the first retry; zero selects 10ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; zero selects 1s.
	MaxDelay time.Duration
	// Multiplier grows the delay between retries; values <= 1 select 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized (0..1):
	// the actual sleep is delay * (1 - Jitter + Jitter*u) for a seeded
	// uniform u in [0,1). Negative means 0 (deterministic spacing); the
	// default is 0.5 — enough to decorrelate concurrent retriers without
	// making the worst case unpredictable.
	Jitter float64
	// Seed fixes the jitter sequence for deterministic tests. Zero mixes
	// in a process-wide counter so concurrent Do calls decorrelate.
	Seed uint64
	// OnRetry, when set, observes every retry decision: the attempt that
	// failed (1-based), its error, and the sleep about to be taken. The
	// service hangs its /stats retry counter here.
	OnRetry func(attempt int, err error, sleep time.Duration)
}

func (p Policy) withDefaults() Policy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	} else if p.Jitter < 0 {
		p.Jitter = 0
	} else if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// doSeq decorrelates the jitter streams of concurrent Do calls that did
// not pin a Seed.
var doSeq atomic.Uint64

// Do runs op up to p.Attempts times, sleeping a jittered exponential
// backoff between attempts, and returns the last error (nil on success).
// A retry happens only when retryable reports the error transient (a nil
// retryable retries everything) and ctx is still live; sleeps are cut
// short by ctx, in which case Do returns the ctx error wrapped over the
// op's last error so callers can distinguish "gave up" from "kept
// failing".
func (p Policy) Do(ctx context.Context, retryable func(error) bool, op func() error) error {
	p = p.withDefaults()
	seed := p.Seed
	if seed == 0 {
		seed = doSeq.Add(1) * 0x9e3779b97f4a7c15
	}
	delay := p.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= p.Attempts {
			return err
		}
		if retryable != nil && !retryable(err) {
			return err
		}
		sleep := delay
		if p.Jitter > 0 {
			seed = splitmix64(seed)
			u := float64(seed>>11) / float64(1<<53)
			sleep = time.Duration(float64(delay) * (1 - p.Jitter + p.Jitter*u))
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, sleep)
		}
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return errors.Join(ctx.Err(), err)
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// transientError marks an error as transient for IsTransient.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient marks err as transient: IsTransient reports true for it and
// anything wrapping it. Fault injection and wrappers that know their
// failure is environmental (not semantic) use it to opt into retries.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is worth retrying: explicitly marked
// Transient, an I/O timeout, or one of the OS error classes that are
// transient by nature (interrupted syscall, resource briefly unavailable,
// I/O error, device busy). Not-found, permission, corruption and
// validation errors all report false — retrying them reproduces the same
// failure at added latency.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *transientError
	if errors.As(err, &te) {
		return true
	}
	if os.IsTimeout(err) {
		return true
	}
	return errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EIO) ||
		errors.Is(err, syscall.EBUSY)
}
