package retry

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"syscall"
	"testing"
	"time"
)

var errFlaky = errors.New("flaky")

// fastPolicy keeps test wall-clock negligible while preserving the
// attempt/backoff structure.
func fastPolicy(attempts int) Policy {
	return Policy{
		Attempts:  attempts,
		BaseDelay: 10 * time.Microsecond,
		MaxDelay:  100 * time.Microsecond,
		Seed:      1,
	}
}

func TestDoSucceedsFirstTry(t *testing.T) {
	calls := 0
	err := fastPolicy(3).Do(context.Background(), IsTransient, func() error {
		calls++
		return nil
	})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want nil/1", err, calls)
	}
}

func TestDoRetriesTransient(t *testing.T) {
	calls := 0
	err := fastPolicy(5).Do(context.Background(), IsTransient, func() error {
		calls++
		if calls < 3 {
			return Transient(errFlaky)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success after retries", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	permanent := errors.New("corrupt header")
	calls := 0
	err := fastPolicy(5).Do(context.Background(), IsTransient, func() error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) {
		t.Fatalf("Do = %v, want the permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of permanent errors)", calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	calls := 0
	err := fastPolicy(4).Do(context.Background(), IsTransient, func() error {
		calls++
		return Transient(errFlaky)
	})
	if !errors.Is(err, errFlaky) {
		t.Fatalf("Do = %v, want last transient error", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}

func TestDoNilRetryableRetriesEverything(t *testing.T) {
	calls := 0
	_ = fastPolicy(3).Do(context.Background(), nil, func() error {
		calls++
		return errors.New("anything")
	})
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (nil classifier retries all)", calls)
	}
}

func TestDoContextCancelDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour, Seed: 1}
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, IsTransient, func() error {
			calls++
			return Transient(errFlaky)
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled in chain", err)
		}
		if !errors.Is(err, errFlaky) {
			t.Fatalf("Do = %v, want op error preserved in chain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not honor context cancellation during sleep")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled before retry)", calls)
	}
}

func TestOnRetryObservesEachRetry(t *testing.T) {
	type obs struct {
		attempt int
		sleep   time.Duration
	}
	var seen []obs
	p := fastPolicy(4)
	p.OnRetry = func(attempt int, err error, sleep time.Duration) {
		if !errors.Is(err, errFlaky) {
			t.Fatalf("OnRetry err = %v, want errFlaky", err)
		}
		seen = append(seen, obs{attempt, sleep})
	}
	_ = p.Do(context.Background(), IsTransient, func() error { return Transient(errFlaky) })
	if len(seen) != 3 {
		t.Fatalf("OnRetry fired %d times, want 3 (attempts-1)", len(seen))
	}
	for i, o := range seen {
		if o.attempt != i+1 {
			t.Fatalf("OnRetry[%d].attempt = %d, want %d", i, o.attempt, i+1)
		}
		if o.sleep <= 0 {
			t.Fatalf("OnRetry[%d].sleep = %v, want > 0", i, o.sleep)
		}
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	var sleeps []time.Duration
	p := Policy{
		Attempts:  6,
		BaseDelay: 10 * time.Microsecond,
		MaxDelay:  40 * time.Microsecond,
		Jitter:    -1, // deterministic spacing
		Seed:      1,
	}
	p.OnRetry = func(_ int, _ error, sleep time.Duration) { sleeps = append(sleeps, sleep) }
	_ = p.Do(context.Background(), nil, func() error { return errFlaky })
	want := []time.Duration{10, 20, 40, 40, 40}
	for i := range want {
		want[i] *= time.Microsecond
	}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps = %v, want %d entries", sleeps, len(want))
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleeps = %v, want %v (exponential, capped)", sleeps, want)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		var sleeps []time.Duration
		p := Policy{Attempts: 5, BaseDelay: 10 * time.Microsecond, MaxDelay: time.Millisecond, Seed: seed}
		p.OnRetry = func(_ int, _ error, s time.Duration) { sleeps = append(sleeps, s) }
		_ = p.Do(context.Background(), nil, func() error { return errFlaky })
		return sleeps
	}
	a, b := run(11), run(11)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	c := run(12)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical jitter %v", a)
	}
	for _, s := range a {
		if s <= 0 {
			t.Fatalf("jittered sleep %v not positive in %v", s, a)
		}
	}
}

func TestIsTransient(t *testing.T) {
	timeout := &os.SyscallError{Syscall: "read", Err: syscall.ETIMEDOUT}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("nope"), false},
		{"marked", Transient(errors.New("disk hiccup")), true},
		{"wrapped-marked", fmt.Errorf("load: %w", Transient(errFlaky)), true},
		{"eintr", &fs.PathError{Op: "read", Path: "x", Err: syscall.EINTR}, true},
		{"eagain", syscall.EAGAIN, true},
		{"eio", fmt.Errorf("append: %w", syscall.EIO), true},
		{"ebusy", syscall.EBUSY, true},
		{"timeout", timeout, true},
		{"not-exist", os.ErrNotExist, false},
		{"permission", os.ErrPermission, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsTransient(tc.err); got != tc.want {
				t.Fatalf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

func TestTransientNilPassthrough(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) should be nil")
	}
}

func TestTransientPreservesMessageAndUnwrap(t *testing.T) {
	err := Transient(errFlaky)
	if err.Error() != errFlaky.Error() {
		t.Fatalf("Error() = %q, want %q", err.Error(), errFlaky.Error())
	}
	if !errors.Is(err, errFlaky) {
		t.Fatal("Transient wrapper must unwrap to the cause")
	}
}
