// Package crashtest is the process-level crash/soak harness: it builds
// the real predictd binary, drives it with seeded traffic over real TCP,
// kills it for real (SIGKILL scheduled by fault injection inside the
// binary, at points chosen to be maximally inconvenient — mid-append,
// mid-compaction, mid-fit), restarts it, and asserts the warm-started
// model set is exactly what the checkpoint log promised.
//
// Everything the in-process chaos suite cannot prove lives here: that
// deferred cleanups, atexit flushes and graceful-anything contribute
// nothing to crash consistency — the process dies with SIGKILL, the next
// process reads only what hit the kernel, and that must be enough.
//
// The harness needs no external dependencies: the binary is built with
// the already-present Go toolchain, traffic is net/http, the kill comes
// from the process itself (faultinject.RaiseKill via PREDICT_FAULTS), and
// the oracle is the history file read back with internal/history.
package crashtest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"predict/internal/history"
)

// build caches the compiled binary across the package's tests: one
// `go build` per test process, not per test.
var build struct {
	once sync.Once
	path string
	err  error
}

// BinaryPath builds cmd/predictd once and returns the binary's path.
func BinaryPath(t *testing.T) string {
	t.Helper()
	build.once.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			build.err = err
			return
		}
		dir, err := os.MkdirTemp("", "crashtest-bin-*")
		if err != nil {
			build.err = err
			return
		}
		build.path = filepath.Join(dir, "predictd")
		cmd := exec.Command("go", "build", "-o", build.path, "./cmd/predictd")
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			build.err = fmt.Errorf("building predictd: %v\n%s", err, out)
		}
	})
	if build.err != nil {
		t.Fatal(build.err)
	}
	return build.path
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module (GOMOD=%q)", gomod)
	}
	return filepath.Dir(gomod), nil
}

// lockedBuffer collects the child's combined output for failure dumps.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) WriteLine(line string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.WriteString(line)
	b.buf.WriteByte('\n')
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Server is one running predictd process under harness control.
type Server struct {
	t     *testing.T
	cmd   *exec.Cmd
	Addr  string
	out   *lockedBuffer
	waitc chan error
}

// Start launches the binary on a kernel-chosen port (-addr 127.0.0.1:0),
// with extra flags and environment (e.g. PREDICT_FAULTS schedules), and
// blocks until the serve listener's "listening on" line reports the bound
// address — or the process dies first, which fails the test with its
// output. The process is SIGKILLed at test cleanup if still running.
func Start(t *testing.T, args []string, env ...string) *Server {
	t.Helper()
	s := &Server{t: t, out: &lockedBuffer{}, waitc: make(chan error, 1)}
	s.cmd = exec.Command(BinaryPath(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	s.cmd.Env = append(os.Environ(), env...)

	// A hand-made pipe instead of StderrPipe: cmd.Wait must not race the
	// scanner goroutine for the pipe's lifetime, and EOF must come from
	// the child's death alone.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	s.cmd.Stdout = pw
	s.cmd.Stderr = pw
	if err := s.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	pw.Close() // the child holds its own copy
	t.Cleanup(func() {
		s.cmd.Process.Kill()
		<-s.waitc
	})

	addrc := make(chan string, 1)
	go func() {
		defer pr.Close()
		sc := bufio.NewScanner(pr)
		sent := false
		for sc.Scan() {
			line := sc.Text()
			s.out.WriteLine(line)
			if !sent && !strings.Contains(line, "pprof") {
				if i := strings.Index(line, "listening on "); i >= 0 {
					addrc <- strings.TrimSpace(line[i+len("listening on "):])
					sent = true
				}
			}
		}
	}()
	go func() { s.waitc <- s.cmd.Wait() }()

	select {
	case s.Addr = <-addrc:
	case err := <-s.waitc:
		s.waitc <- err // keep the channel readable for cleanup
		t.Fatalf("predictd exited before listening: %v\n%s", err, s.out.String())
	case <-time.After(30 * time.Second):
		t.Fatalf("predictd did not report its address\n%s", s.out.String())
	}
	return s
}

// URL is the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr }

// Output is everything the process wrote so far.
func (s *Server) Output() string { return s.out.String() }

// WaitExit blocks until the process exits and returns cmd.Wait's error.
func (s *Server) WaitExit(timeout time.Duration) error {
	s.t.Helper()
	select {
	case err := <-s.waitc:
		s.waitc <- err
		return err
	case <-time.After(timeout):
		s.t.Fatalf("predictd still running after %v\n%s", timeout, s.Output())
		return nil
	}
}

// ExpectKilled asserts the process died by SIGKILL — the scheduled crash
// actually struck, rather than the process exiting some polite way.
func (s *Server) ExpectKilled(timeout time.Duration) {
	s.t.Helper()
	err := s.WaitExit(timeout)
	ee, ok := err.(*exec.ExitError)
	if !ok {
		s.t.Fatalf("expected SIGKILL death, got exit err %v\n%s", err, s.Output())
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		s.t.Fatalf("expected SIGKILL death, got %v\n%s", ee, s.Output())
	}
}

// GracefulStop sends SIGTERM and asserts a clean (exit 0) drain.
func (s *Server) GracefulStop(timeout time.Duration) {
	s.t.Helper()
	if err := s.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		s.t.Fatalf("SIGTERM: %v", err)
	}
	if err := s.WaitExit(timeout); err != nil {
		s.t.Fatalf("drain exit: %v\n%s", err, s.Output())
	}
}

// WaitReady polls /readyz until 200.
func (s *Server) WaitReady(timeout time.Duration) {
	s.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(s.URL() + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	s.t.Fatalf("server never became ready\n%s", s.Output())
}

// PredictRequest is the cheap request shape the harness drives: a tiny
// generated Wiki graph whose cold fit takes milliseconds. SampleSeed
// varies the model key, so each seed is one distinct checkpointed model.
func PredictRequest(sampleSeed uint64) map[string]any {
	return map[string]any{
		"dataset":         "Wiki",
		"scale":           0.02,
		"algorithm":       "PR",
		"epsilon":         0.01,
		"ratio":           0.15,
		"training_ratios": []float64{0.1, 0.2},
		"sample_seed":     sampleSeed,
	}
}

// Predict posts one prediction and returns the HTTP status. A transport
// error (connection reset, EOF) returns 0 — the expected signature of
// the process dying mid-request.
func (s *Server) Predict(sampleSeed uint64) int {
	s.t.Helper()
	body, err := json.Marshal(PredictRequest(sampleSeed))
	if err != nil {
		s.t.Fatal(err)
	}
	resp, err := http.Post(s.URL()+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0
	}
	return resp.StatusCode
}

// Models returns the server's cached model keys as a set.
func (s *Server) Models() map[string]bool {
	s.t.Helper()
	resp, err := http.Get(s.URL() + "/models")
	if err != nil {
		s.t.Fatalf("/models: %v\n%s", err, s.Output())
	}
	defer resp.Body.Close()
	var out struct {
		Models []struct {
			Key string `json:"key"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		s.t.Fatalf("decoding /models: %v", err)
	}
	keys := make(map[string]bool, len(out.Models))
	for _, m := range out.Models {
		keys[m.Key] = true
	}
	return keys
}

// Stats fetches and decodes the /stats counters.
func (s *Server) Stats() map[string]json.RawMessage {
	s.t.Helper()
	resp, err := http.Get(s.URL() + "/stats")
	if err != nil {
		s.t.Fatalf("/stats: %v\n%s", err, s.Output())
	}
	defer resp.Body.Close()
	var out struct {
		Stats map[string]json.RawMessage `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		s.t.Fatalf("decoding /stats: %v", err)
	}
	return out.Stats
}

// StatInt reads one integer counter out of a Stats snapshot.
func StatInt(t *testing.T, stats map[string]json.RawMessage, field string) int64 {
	t.Helper()
	raw, ok := stats[field]
	if !ok {
		t.Fatalf("/stats has no %q field", field)
	}
	var v int64
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("stats field %q = %s: %v", field, raw, err)
	}
	return v
}

// StatFloat reads one float counter out of a Stats snapshot.
func StatFloat(t *testing.T, stats map[string]json.RawMessage, field string) float64 {
	t.Helper()
	raw, ok := stats[field]
	if !ok {
		t.Fatalf("/stats has no %q field", field)
	}
	var v float64
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("stats field %q = %s: %v", field, raw, err)
	}
	return v
}

// CheckpointedModels is the crash-consistency oracle: the model keys a
// warm start MUST reconstruct from the history file — the newest complete
// record per key, with any torn tail (the interrupted append the crash
// left behind) excluded, exactly as the service's loader excludes it.
func CheckpointedModels(t *testing.T, path string) map[string]bool {
	t.Helper()
	records, _, err := history.LoadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}
		}
		t.Fatalf("reading checkpoint log %s: %v", path, err)
	}
	keys := make(map[string]bool)
	for _, r := range records {
		if r.Model != nil {
			keys[r.Model.Key] = true
		}
	}
	return keys
}

// SameKeySet asserts two model-key sets are identical.
func SameKeySet(t *testing.T, got, want map[string]bool, context string) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Errorf("%s: missing model %q", context, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: unexpected model %q", context, k)
		}
	}
}

// ChaosSeed is the harness's PREDICT_CHAOS_SEED convention (default 1),
// shared with the in-process chaos suite so a CI seed reproduces both.
func ChaosSeed(t *testing.T) uint64 {
	t.Helper()
	v := os.Getenv("PREDICT_CHAOS_SEED")
	if v == "" {
		return 1
	}
	var seed uint64
	if _, err := fmt.Sscanf(v, "%d", &seed); err != nil {
		t.Fatalf("PREDICT_CHAOS_SEED=%q: %v", v, err)
	}
	return seed
}
