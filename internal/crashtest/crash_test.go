package crashtest

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCrashMidAppendWarmStartsCheckpointedPrefix is the harness's
// headline property: the process SIGKILLs itself halfway through writing
// checkpoint N (a torn prefix really lands on disk first), and the
// restarted process must warm-start with exactly checkpoints 1..N-1 — the
// torn record excluded, nothing else lost, no clean shutdown anywhere.
// The kill point is seed-chosen so different CI seeds crash different
// appends.
func TestCrashMidAppendWarmStartsCheckpointedPrefix(t *testing.T) {
	seed := ChaosSeed(t)
	killAt := 2 + int(seed%3) // die during the 2nd..4th checkpoint append
	hist := filepath.Join(t.TempDir(), "models.jsonl")

	srv := Start(t, []string{"-history", hist},
		fmt.Sprintf("PREDICT_FAULTS=point=history.append,from=%d,partial=30,kill", killAt),
		fmt.Sprintf("PREDICT_FAULTS_SEED=%d", seed))
	srv.WaitReady(15 * time.Second)
	for i := 1; i <= killAt; i++ {
		code := srv.Predict(uint64(i))
		if i < killAt && code != 200 {
			t.Fatalf("fit %d before the crash = %d, want 200\n%s", i, code, srv.Output())
		}
		if i == killAt && code == 200 {
			t.Fatalf("fit %d survived its scheduled mid-append crash\n%s", i, srv.Output())
		}
	}
	srv.ExpectKilled(15 * time.Second)

	// The oracle: the complete records the torn log holds.
	oracle := CheckpointedModels(t, hist)
	if len(oracle) != killAt-1 {
		t.Fatalf("checkpoint log holds %d complete models after crash at fit %d, want %d",
			len(oracle), killAt, killAt-1)
	}

	// Restart without faults: warm start must equal the oracle exactly,
	// recover (and count) the torn tail, and serve the survivors warm.
	srv2 := Start(t, []string{"-history", hist})
	srv2.WaitReady(15 * time.Second)
	SameKeySet(t, srv2.Models(), oracle, "warm start after mid-append crash")
	if got := StatInt(t, srv2.Stats(), "torn_records_recovered"); got != 1 {
		t.Errorf("torn_records_recovered = %d, want 1", got)
	}
	if code := srv2.Predict(1); code != 200 {
		t.Fatalf("warm predict after restart = %d", code)
	}
	if got := StatInt(t, srv2.Stats(), "fits"); got != 0 {
		t.Errorf("warm-started server ran %d fits for a checkpointed model, want 0", got)
	}
	srv2.GracefulStop(30 * time.Second)
}

// TestCrashMidCompactionKeepsOldLog kills the process in compaction's
// most dangerous window — the compacted temp file is durable but the
// rename has not published it. The old log must win: the restart sees
// every checkpointed model.
func TestCrashMidCompactionKeepsOldLog(t *testing.T) {
	seed := ChaosSeed(t)
	hist := filepath.Join(t.TempDir(), "models.jsonl")

	srv := Start(t, []string{"-history", hist, "-checkpoint-growth-factor", "2"},
		"PREDICT_FAULTS=point=history.compact,from=1,kill",
		fmt.Sprintf("PREDICT_FAULTS_SEED=%d", seed))
	srv.WaitReady(15 * time.Second)
	if code := srv.Predict(1); code != 200 {
		t.Fatalf("fit 1 = %d, want 200\n%s", code, srv.Output())
	}
	// Fit 2 checkpoints fine, which tips the log over the growth factor;
	// the compaction then dies pre-rename, taking the process with it.
	if code := srv.Predict(2); code == 200 {
		t.Fatalf("fit 2 survived its scheduled mid-compaction crash\n%s", srv.Output())
	}
	srv.ExpectKilled(15 * time.Second)

	oracle := CheckpointedModels(t, hist)
	if len(oracle) != 2 {
		t.Fatalf("old log holds %d models after mid-compaction crash, want both", len(oracle))
	}

	srv2 := Start(t, []string{"-history", hist})
	srv2.WaitReady(15 * time.Second)
	SameKeySet(t, srv2.Models(), oracle, "warm start after mid-compaction crash")
	if got := StatInt(t, srv2.Stats(), "fits"); got != 0 {
		t.Errorf("restart refit %d models the old log already held, want 0", got)
	}
	srv2.GracefulStop(30 * time.Second)
}

// TestCrashMidFitLosesOnlyTheInFlightFit kills the process at the start
// of fit N: fits 1..N-1 are checkpointed and must all come back; the
// in-flight fit was never durable, is legitimately lost, and refits on
// demand after the restart.
func TestCrashMidFitLosesOnlyTheInFlightFit(t *testing.T) {
	seed := ChaosSeed(t)
	hist := filepath.Join(t.TempDir(), "models.jsonl")

	srv := Start(t, []string{"-history", hist},
		"PREDICT_FAULTS=point=service.fit,from=2,kill",
		fmt.Sprintf("PREDICT_FAULTS_SEED=%d", seed))
	srv.WaitReady(15 * time.Second)
	if code := srv.Predict(1); code != 200 {
		t.Fatalf("fit 1 = %d, want 200\n%s", code, srv.Output())
	}
	if code := srv.Predict(2); code == 200 {
		t.Fatalf("fit 2 survived its scheduled mid-fit crash\n%s", srv.Output())
	}
	srv.ExpectKilled(15 * time.Second)

	oracle := CheckpointedModels(t, hist)
	if len(oracle) != 1 {
		t.Fatalf("checkpoint log holds %d models, want only the completed fit", len(oracle))
	}

	srv2 := Start(t, []string{"-history", hist})
	srv2.WaitReady(15 * time.Second)
	SameKeySet(t, srv2.Models(), oracle, "warm start after mid-fit crash")
	// The lost fit is recomputed on demand — a crash loses work, never
	// the ability to redo it.
	if code := srv2.Predict(2); code != 200 {
		t.Fatalf("refit of the lost model = %d, want 200\n%s", code, srv2.Output())
	}
	if got := StatInt(t, srv2.Stats(), "fits"); got != 1 {
		t.Errorf("fits after refitting the lost model = %d, want 1", got)
	}
	srv2.GracefulStop(30 * time.Second)
}

// TestSigtermDrainsAndPersists pins the graceful half: SIGTERM drains
// (the log shows the supervised sequence), the process exits 0, and the
// shutdown snapshot compacts the checkpoint log to exactly the live
// model set.
func TestSigtermDrainsAndPersists(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "models.jsonl")
	srv := Start(t, []string{"-history", hist})
	srv.WaitReady(15 * time.Second)
	for i := 1; i <= 2; i++ {
		if code := srv.Predict(uint64(i)); code != 200 {
			t.Fatalf("fit %d = %d\n%s", i, code, srv.Output())
		}
	}
	srv.GracefulStop(30 * time.Second)
	out := srv.Output()
	for _, want := range []string{"draining", "drain complete", "persisted 2 model(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("drain log missing %q:\n%s", want, out)
		}
	}
	if got := CheckpointedModels(t, hist); len(got) != 2 {
		t.Errorf("persisted log holds %d models, want 2", len(got))
	}
}
