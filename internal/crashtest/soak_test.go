package crashtest

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestSoakLeakFree runs the real binary under sustained mixed traffic and
// asserts the process-level leak canaries stay flat: goroutine count and
// open file descriptors must not grow round over round, uptime and the
// checkpoint counters must be monotone, and the final SIGTERM must still
// drain cleanly. PREDICT_SOAK_ROUNDS scales the loop (CI keeps it short;
// a nightly can crank it).
func TestSoakLeakFree(t *testing.T) {
	rounds := 5
	if v := os.Getenv("PREDICT_SOAK_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("PREDICT_SOAK_ROUNDS=%q", v)
		}
		rounds = n
	}

	hist := filepath.Join(t.TempDir(), "models.jsonl")
	srv := Start(t, []string{"-history", hist})
	srv.WaitReady(15 * time.Second)

	// Warm-up: two cold fits plus a burst of warm hits, so pools, caches
	// and HTTP keep-alives reach steady state before the baseline is read.
	for i := 1; i <= 2; i++ {
		if code := srv.Predict(uint64(i)); code != 200 {
			t.Fatalf("warm-up fit %d = %d\n%s", i, code, srv.Output())
		}
	}
	for i := 0; i < 10; i++ {
		if code := srv.Predict(1); code != 200 {
			t.Fatalf("warm-up hit = %d", code)
		}
	}
	base := srv.Stats()
	baseGoroutines := StatInt(t, base, "goroutines")
	baseFDs := StatInt(t, base, "open_fds")
	lastUptime := StatFloat(t, base, "uptime_seconds")
	lastCheckpoints := StatInt(t, base, "checkpoints_written")

	for round := 1; round <= rounds; round++ {
		// Mixed traffic: warm hits on both models, one cold fit for a new
		// key (exercising fit pool, checkpoint append and eventual
		// compaction), and the observability endpoints a poller hammers.
		for i := 0; i < 10; i++ {
			if code := srv.Predict(uint64(1 + i%2)); code != 200 {
				t.Fatalf("round %d warm predict = %d\n%s", round, code, srv.Output())
			}
		}
		if code := srv.Predict(uint64(100 + round)); code != 200 {
			t.Fatalf("round %d cold predict = %d\n%s", round, code, srv.Output())
		}
		srv.Models()

		st := srv.Stats()
		if up := StatFloat(t, st, "uptime_seconds"); up < lastUptime {
			t.Fatalf("round %d: uptime went backwards (%v -> %v)", round, lastUptime, up)
		} else {
			lastUptime = up
		}
		if cp := StatInt(t, st, "checkpoints_written"); cp < lastCheckpoints {
			t.Fatalf("round %d: checkpoints_written went backwards (%d -> %d)", round, lastCheckpoints, cp)
		} else {
			lastCheckpoints = cp
		}
	}

	// Leak check: the canaries may wobble by a few (transient HTTP conns,
	// GC workers) but must not scale with rounds.
	final := srv.Stats()
	if g := StatInt(t, final, "goroutines"); g > baseGoroutines+10 {
		t.Errorf("goroutines grew %d -> %d over %d rounds", baseGoroutines, g, rounds)
	}
	if baseFDs > 0 { // 0 means /proc is unavailable: nothing to check
		if f := StatInt(t, final, "open_fds"); f > baseFDs+10 {
			t.Errorf("open fds grew %d -> %d over %d rounds", baseFDs, f, rounds)
		}
	}
	if got := StatInt(t, final, "checkpoints_written"); got < int64(2+rounds) {
		t.Errorf("checkpoints_written = %d after %d cold fits", got, 2+rounds)
	}

	srv.GracefulStop(30 * time.Second)
	if out := srv.Output(); !strings.Contains(out, "drain complete") {
		t.Errorf("soak shutdown did not drain cleanly:\n%s", out)
	}
}
