package history

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predict/internal/faultinject"
	"predict/internal/features"
)

// historyBytes builds a clean three-record JSONL file in memory.
func historyBytes(t *testing.T) []byte {
	t.Helper()
	ri := profiledRun(t)
	var buf bytes.Buffer
	err := Write(&buf,
		FromRun(ri, "d1", "actual", features.ModeCriticalShare),
		FromRun(ri, "d2", "sample", features.ModeCriticalShare),
		FromRun(ri, "d3", "actual", features.ModeCriticalShare),
	)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTruncateEveryOffset is the crash-safety property test: a valid
// JSONL history truncated at EVERY byte offset (any crash point during an
// append) must load all complete records and report — never fail on — the
// torn tail.
func TestTruncateEveryOffset(t *testing.T) {
	data := historyBytes(t)
	path := filepath.Join(t.TempDir(), "truncated.jsonl")
	for off := 0; off <= len(data); off++ {
		prefix := data[:off]
		if err := os.WriteFile(path, prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		records, torn, err := LoadFile(path)
		if err != nil {
			t.Fatalf("offset %d: LoadFile failed: %v (truncation must never be fatal)", off, err)
		}
		// Expected outcome from the prefix shape: every newline-terminated
		// line is a complete record; a non-empty remainder is either the
		// final record minus its newline (valid JSON → loads) or a torn
		// fragment (→ reported).
		complete := bytes.Count(prefix, []byte{'\n'})
		remainder := prefix
		if i := bytes.LastIndexByte(prefix, '\n'); i >= 0 {
			remainder = prefix[i+1:]
		}
		wantRecords := complete
		wantTorn := false
		if len(remainder) > 0 {
			if json.Valid(remainder) {
				wantRecords++
			} else {
				wantTorn = true
			}
		}
		if len(records) != wantRecords {
			t.Fatalf("offset %d: loaded %d records, want %d", off, len(records), wantRecords)
		}
		if (torn != nil) != wantTorn {
			t.Fatalf("offset %d: torn = %v, want torn=%v", off, torn, wantTorn)
		}
		if torn != nil {
			if torn.Bytes != len(remainder) {
				t.Fatalf("offset %d: torn.Bytes = %d, want %d", off, torn.Bytes, len(remainder))
			}
			if torn.Offset != int64(off-len(remainder)) {
				t.Fatalf("offset %d: torn.Offset = %d, want %d", off, torn.Offset, off-len(remainder))
			}
			if torn.Err == nil || !strings.Contains(torn.String(), "torn trailing record") {
				t.Fatalf("offset %d: torn report incomplete: %v", off, torn)
			}
		}
	}
}

// TestInteriorCorruptionIsFatal pins the other half of the recovery rule:
// a corrupt record BEFORE the final line is not a crash signature and must
// fail the load, not be skipped silently.
func TestInteriorCorruptionIsFatal(t *testing.T) {
	data := historyBytes(t)
	lines := bytes.SplitAfter(data, []byte{'\n'})
	corrupt := bytes.Join([][]byte{lines[0], []byte("{broken\n"), lines[1]}, nil)
	path := filepath.Join(t.TempDir(), "corrupt.jsonl")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(path); err == nil {
		t.Fatal("interior corruption loaded without error")
	}
}

func TestLoadFileBlankLines(t *testing.T) {
	data := historyBytes(t)
	padded := append([]byte("\n"), data...)
	padded = append(padded, '\n', '\n')
	path := filepath.Join(t.TempDir(), "padded.jsonl")
	if err := os.WriteFile(path, padded, 0o644); err != nil {
		t.Fatal(err)
	}
	records, torn, err := LoadFile(path)
	if err != nil || torn != nil {
		t.Fatalf("blank-padded file: err=%v torn=%v", err, torn)
	}
	if len(records) != 3 {
		t.Fatalf("loaded %d records, want 3", len(records))
	}
}

func TestAppendFileSyncDurable(t *testing.T) {
	ri := profiledRun(t)
	path := filepath.Join(t.TempDir(), "durable.jsonl")
	rec := FromRun(ri, "d1", "actual", features.ModeCriticalShare)
	if err := AppendFileSync(path, rec); err != nil {
		t.Fatal(err)
	}
	records, torn, err := LoadFile(path)
	if err != nil || torn != nil || len(records) != 1 {
		t.Fatalf("after sync append: records=%d torn=%v err=%v", len(records), torn, err)
	}
}

// TestInjectedTornAppend drives the full crash story end to end: a fault
// schedule tears the second append mid-payload (a real partial write on
// disk), and LoadFile recovers the first record while reporting the tail.
func TestInjectedTornAppend(t *testing.T) {
	ri := profiledRun(t)
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	errCrash := errors.New("injected crash")
	restore := faultinject.Enable(faultinject.NewInjector(1, faultinject.Rule{
		Point:        faultinject.PointHistoryAppend,
		From:         2,
		Count:        1,
		Err:          errCrash,
		PartialBytes: 25,
	}))
	defer restore()

	if err := AppendFile(path, FromRun(ri, "d1", "actual", features.ModeCriticalShare)); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err := AppendFile(path, FromRun(ri, "d2", "actual", features.ModeCriticalShare))
	if !errors.Is(err, errCrash) {
		t.Fatalf("second append err = %v, want injected crash", err)
	}
	records, torn, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile after torn append: %v", err)
	}
	if len(records) != 1 || records[0].Dataset != "d1" {
		t.Fatalf("recovered %d records (want 1: d1): %+v", len(records), records)
	}
	if torn == nil || torn.Bytes != 25 {
		t.Fatalf("torn = %v, want 25-byte fragment reported", torn)
	}
}

// TestInjectedAppendErrorNothingWritten: a pure error fault (no partial
// bytes) models failure before any byte reaches the disk.
func TestInjectedAppendErrorNothingWritten(t *testing.T) {
	ri := profiledRun(t)
	path := filepath.Join(t.TempDir(), "never.jsonl")
	restore := faultinject.Enable(faultinject.NewInjector(1, faultinject.Rule{
		Point: faultinject.PointHistoryAppend,
		Err:   errors.New("disk full"),
	}))
	defer restore()
	if err := AppendFile(path, FromRun(ri, "d1", "actual", features.ModeCriticalShare)); err == nil {
		t.Fatal("injected append error swallowed")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("file exists after failed-before-write append (stat err=%v)", err)
	}
}

func TestInjectedLoadError(t *testing.T) {
	ri := profiledRun(t)
	path := filepath.Join(t.TempDir(), "h.jsonl")
	if err := AppendFile(path, FromRun(ri, "d1", "actual", features.ModeCriticalShare)); err != nil {
		t.Fatal(err)
	}
	errIO := errors.New("injected read error")
	restore := faultinject.Enable(faultinject.NewInjector(1, faultinject.Rule{
		Point: faultinject.PointHistoryLoad,
		Err:   errIO,
	}))
	defer restore()
	if _, _, err := LoadFile(path); !errors.Is(err, errIO) {
		t.Fatalf("LoadFile err = %v, want injected error", err)
	}
}
