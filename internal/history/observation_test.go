package history

import (
	"os"
	"path/filepath"
	"testing"
)

func TestObservationRoundTripAndGrouping(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	recs := []Record{
		NewObservation("key-a", 10.5, 8),
		modelRecord("key-a", 1),
		NewObservation("key-b", 3.25, 0),
		NewObservation("key-a", 11.5, 8),
	}
	for _, r := range recs {
		if err := AppendFileSync(path, r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	loaded, torn, err := LoadFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if torn != nil {
		t.Fatalf("unexpected torn tail: %v", torn)
	}
	obs := ObservationsByKey(loaded)
	if got := obs["key-a"]; len(got) != 2 || got[0] != 10.5 || got[1] != 11.5 {
		t.Errorf("key-a observations %v, want [10.5 11.5] in log order", got)
	}
	if got := obs["key-b"]; len(got) != 1 || got[0] != 3.25 {
		t.Errorf("key-b observations %v, want [3.25]", got)
	}
	if loaded[0].Kind != KindObservation {
		t.Errorf("round-tripped kind %q, want %q", loaded[0].Kind, KindObservation)
	}
	if loaded[0].Observation.Workers != 8 {
		t.Errorf("round-tripped workers %d, want 8", loaded[0].Observation.Workers)
	}
}

func TestCompactRecordsCapsObservationsPerKey(t *testing.T) {
	// Twice the cap for one key, interleaved with another key's small
	// stream and a model record: compaction must keep exactly the newest
	// MaxObservationsPerKey of the big stream, in log order, and leave
	// the small stream and the model untouched.
	var records []Record
	for i := 0; i < 2*MaxObservationsPerKey; i++ {
		records = append(records, NewObservation("big", float64(i), 0))
		if i < 3 {
			records = append(records, NewObservation("small", 100+float64(i), 0))
		}
	}
	records = append(records, modelRecord("big", 1))
	compacted := CompactRecords(records)
	obs := ObservationsByKey(compacted)
	big := obs["big"]
	if len(big) != MaxObservationsPerKey {
		t.Fatalf("big stream kept %d observations, want %d", len(big), MaxObservationsPerKey)
	}
	for i, v := range big {
		if want := float64(MaxObservationsPerKey + i); v != want {
			t.Fatalf("big[%d] = %v, want %v (newest window in log order)", i, v, want)
		}
	}
	if got := obs["small"]; len(got) != 3 {
		t.Errorf("small stream kept %d observations, want all 3", len(got))
	}
	if live := liveSet(compacted); live["big"] == "" {
		t.Error("model record lost by observation capping")
	}
}

func TestCompactFileDropsStaleObservations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")
	for i := 0; i < MaxObservationsPerKey+5; i++ {
		if err := AppendFile(path, NewObservation("k", float64(i), 0)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	kept, err := CompactFile(path)
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if kept != MaxObservationsPerKey {
		t.Errorf("compacted log holds %d records, want %d", kept, MaxObservationsPerKey)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the log (%d -> %d bytes)", before.Size(), after.Size())
	}
}
