// Log compaction. Continuous checkpointing appends one "model" record per
// fitted model, so a long-lived service's history file accumulates stale
// generations of the same model key. CompactFile rewrites the log keeping
// only the newest record per key — crash-safely: the compacted payload is
// written to a temp file, fsynced, and renamed over the log, so any
// instant of death leaves either the old log or the new one, both of
// which warm-start to exactly the same model set.
package history

import (
	"fmt"
	"os"
	"path/filepath"

	"predict/internal/faultinject"
)

// MaxObservationsPerKey bounds how many "observation" records per model
// key survive a compaction (the newest win). The bound matches the
// service's in-memory observation window: older observations have already
// shaped the blend as much as they ever will, and an unbounded feedback
// stream would make the log grow per *request* instead of per fit —
// exactly the unbounded growth compaction exists to prevent.
const MaxObservationsPerKey = 64

// CompactRecords returns the log's live suffix: for each model key, only
// the newest model record survives, holding its last position in the log
// so a warm start replays insertions in the same order the uncompacted
// log would. Observation records are capped at the newest
// MaxObservationsPerKey per model key, kept in log order. Records that
// are neither (plain profiled runs, which TrainingRunsFor still trains
// on) are kept verbatim in place — they are training data, not cache
// generations, and compaction must never drop data it cannot reconstruct.
func CompactRecords(records []Record) []Record {
	last := make(map[string]int, len(records))
	obsSeen := map[string]int{}
	for i, r := range records {
		if r.Model != nil {
			last[r.Model.Key] = i
		}
		if r.Observation != nil {
			obsSeen[r.Observation.ModelKey]++
		}
	}
	// An observation survives when fewer than MaxObservationsPerKey of its
	// key follow it — i.e. the newest window, in original order.
	obsAfter := make(map[string]int, len(obsSeen))
	out := make([]Record, 0, len(last))
	for i, r := range records {
		if r.Model != nil && last[r.Model.Key] != i {
			continue
		}
		if r.Observation != nil {
			k := r.Observation.ModelKey
			obsAfter[k]++
			if obsSeen[k]-obsAfter[k] >= MaxObservationsPerKey {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// CompactFile rewrites the log at path to its compacted form, returning
// how many records the compacted log holds. A torn trailing record (crash
// mid-append) is dropped by the rewrite — it was never a complete record.
// The rewrite is atomic (temp file + fsync + rename): a crash at any
// point, including the injected one between durability and rename, leaves
// a log that warm-starts to the same model set.
func CompactFile(path string) (kept int, err error) {
	records, _, err := LoadFile(path)
	if err != nil {
		return 0, fmt.Errorf("history: compacting %s: %w", path, err)
	}
	records = CompactRecords(records)
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".compact*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := Write(tmp, records...); err != nil {
		tmp.Close()
		return 0, err
	}
	// The compacted payload must be durable before the rename publishes
	// it: rename-over-old with unsynced data can survive a crash as an
	// empty log on some filesystems, destroying every checkpoint.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if fault := faultinject.Fire(faultinject.PointHistoryCompact); fault != nil {
		fault.Sleep()
		// The scheduled crash strikes in the window where the new log is
		// durable but not yet published — the old log must win.
		fault.MaybeKill()
		if fault.Err != nil {
			return 0, fault.Err
		}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	return len(records), nil
}
