// Package history persists profiled runs so later predictions can train
// their cost models on them. The paper's training methodology (§3.4)
// assumes exactly this: "measurements of previous runs of the algorithm
// that were given different datasets as input (if such runs exist) ...
// Such historical runs are typically available for analytical applications
// that are executed repetitively over newly arriving data sets."
//
// A Store is a JSON-lines file of Records; each Record carries the
// algorithm name, a dataset label, and the per-iteration feature vectors
// plus simulated seconds of one run.
package history

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"predict/internal/algorithms"
	"predict/internal/costmodel"
	"predict/internal/faultinject"
	"predict/internal/features"
)

// Record is one archived run.
type Record struct {
	// Algorithm is the algorithm's Name(); predictions only train on
	// records of the same algorithm (cost factors are per-algorithm,
	// §3.4).
	Algorithm string `json:"algorithm"`
	// Dataset labels the input (free-form, e.g. "UK2002-sim scale=1").
	Dataset string `json:"dataset"`
	// Kind distinguishes "actual" runs from "sample" runs; "model"
	// records carry a fitted cache entry and "observation" records carry
	// one observed actual runtime fed back through POST /observe.
	Kind string `json:"kind"`
	// FeatureNames fixes the column order of Iterations vectors, guarding
	// against pool changes between writer and reader versions.
	FeatureNames []string `json:"feature_names"`
	// Iterations holds one row per superstep: the feature vector followed
	// by the simulated seconds.
	Iterations []IterationRow `json:"iterations"`
	// Model optionally carries the extrapolation metadata of a fitted
	// cost-model cache entry (kind "model"), letting a prediction service
	// warm its cache from history: the rows above retrain the regression
	// (cheap) while Model restores the sample-scale context the expensive
	// sample runs produced. Absent on plain run records.
	Model *ModelMeta `json:"model,omitempty"`
	// Observation carries one observed actual runtime (kind
	// "observation"), keyed to the model key whose prediction it grades.
	// Absent on every other record kind.
	Observation *ObservationMeta `json:"observation,omitempty"`
}

// KindObservation is the Record.Kind of observed-runtime feedback records.
const KindObservation = "observation"

// ObservationMeta is the payload of one "observation" record: an actual
// runtime reported back for a prediction, keyed to the model that
// produced it. Observation records ride the same fsync'd checkpoint
// append and compaction log as "model" records, so the feedback a blended
// estimator depends on survives a crash exactly as far as the models do.
type ObservationMeta struct {
	// ModelKey is the service's canonical cache key of the model whose
	// prediction this observation grades.
	ModelKey string `json:"model_key"`
	// ActualSeconds is the observed superstep-phase runtime.
	ActualSeconds float64 `json:"actual_seconds"`
	// Workers is the worker count the observed run executed on (zero when
	// the reporter did not say).
	Workers int `json:"workers,omitempty"`
}

// NewObservation builds an "observation" record for a model key.
func NewObservation(modelKey string, actualSeconds float64, workers int) Record {
	return Record{
		Kind: KindObservation,
		Observation: &ObservationMeta{
			ModelKey:      modelKey,
			ActualSeconds: actualSeconds,
			Workers:       workers,
		},
	}
}

// ObservationsByKey collects the observed runtimes of every "observation"
// record, grouped by model key in log order — the per-key feedback stream
// a blended estimator consumes.
func ObservationsByKey(records []Record) map[string][]float64 {
	out := map[string][]float64{}
	for _, r := range records {
		if r.Observation == nil {
			continue
		}
		out[r.Observation.ModelKey] = append(out[r.Observation.ModelKey], r.Observation.ActualSeconds)
	}
	return out
}

// ModelMeta is the extrapolation context of one fitted cost model — the
// scalars a core.Fitted needs beyond its training rows. Together with a
// Record's iteration rows it reconstructs a cache entry without re-running
// the sample pipeline.
type ModelMeta struct {
	// Key is the service's canonical cache key (algorithm, cluster config,
	// sampling config, training ratios, dataset identity).
	Key string `json:"key"`
	// SampleVertices/SampleEdges size the sample graph (extrapolation
	// denominators).
	SampleVertices int   `json:"sample_vertices"`
	SampleEdges    int64 `json:"sample_edges"`
	// SampleVertexRatio/SampleEdgeRatio are the achieved sampling ratios.
	SampleVertexRatio float64 `json:"sample_vertex_ratio"`
	SampleEdgeRatio   float64 `json:"sample_edge_ratio"`
	// SampleCriticalShare is the structural critical-path share of the
	// sample graph at SampleWorkers.
	SampleCriticalShare float64 `json:"sample_critical_share"`
	// ProfiledCriticalShare is the profiled critical share of the sample
	// run.
	ProfiledCriticalShare float64 `json:"profiled_critical_share"`
	// SampleRunSeconds is the simulated planning cost of the sample run.
	SampleRunSeconds float64 `json:"sample_run_seconds"`
	// SampleWorkers is the sample cluster's resolved worker count.
	SampleWorkers int `json:"sample_workers"`
	// Mode is the feature-reduction mode (features.Mode) the rows encode.
	Mode int `json:"mode"`
	// VerticesOnly records the eV-only extrapolation ablation.
	VerticesOnly bool `json:"vertices_only,omitempty"`
	// RemoteBytesPerIter holds raw per-iteration remote message bytes for
	// the Figure 6 remote-bytes prediction.
	RemoteBytesPerIter []float64 `json:"remote_bytes_per_iter,omitempty"`
	// TrainingRows is the full training matrix the model was fitted on
	// (main sample run, additional-ratio runs, history) — the refit input.
	// The Record's Iterations rows are only the main sample run's, which
	// double as the extrapolation vectors.
	TrainingRows []IterationRow `json:"training_rows,omitempty"`
	// MaxFeatures/DisableSelection reproduce the costmodel.Options the
	// model was fitted under, so a refit selects the same features.
	MaxFeatures      int  `json:"max_features,omitempty"`
	DisableSelection bool `json:"disable_selection,omitempty"`
}

// IterationRow is one superstep's features and runtime.
type IterationRow struct {
	Features []float64 `json:"features"`
	Seconds  float64   `json:"seconds"`
}

// FromRun converts a profiled run into a Record under the given feature
// mode.
func FromRun(ri *algorithms.RunInfo, dataset, kind string, mode features.Mode) Record {
	names := make([]string, len(features.Pool()))
	for i, n := range features.Pool() {
		names[i] = string(n)
	}
	rec := Record{
		Algorithm:    ri.Algorithm,
		Dataset:      dataset,
		Kind:         kind,
		FeatureNames: names,
	}
	for _, it := range features.FromProfile(ri.Profile, mode) {
		rec.Iterations = append(rec.Iterations, IterationRow{
			Features: it.Vector,
			Seconds:  it.Seconds,
		})
	}
	return rec
}

// TrainingRun converts a Record back into cost-model training data. It
// validates the feature schema.
func (r Record) TrainingRun() (costmodel.TrainingRun, error) {
	pool := features.Pool()
	if len(r.FeatureNames) != len(pool) {
		return costmodel.TrainingRun{}, fmt.Errorf(
			"history: record %q has %d features, this build expects %d",
			r.Dataset, len(r.FeatureNames), len(pool))
	}
	for i, n := range r.FeatureNames {
		if n != string(pool[i]) {
			return costmodel.TrainingRun{}, fmt.Errorf(
				"history: record %q feature %d is %q, expected %q", r.Dataset, i, n, pool[i])
		}
	}
	tr := costmodel.TrainingRun{Source: r.Kind + " " + r.Dataset}
	for _, row := range r.Iterations {
		if len(row.Features) != len(pool) {
			return costmodel.TrainingRun{}, fmt.Errorf(
				"history: record %q has a row with %d features", r.Dataset, len(row.Features))
		}
		tr.Iters = append(tr.Iters, features.IterationFeatures{
			Vector:  append(features.Vector(nil), row.Features...),
			Seconds: row.Seconds,
		})
	}
	return tr, nil
}

// Write appends records to w as JSON lines.
func Write(w io.Writer, records ...Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("history: encoding record %q: %w", r.Dataset, err)
		}
	}
	return bw.Flush()
}

// Read parses all records from a JSON-lines stream.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("history: record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// AppendFile appends records to a JSON-lines file, creating it if needed.
// The close error is propagated: on many filesystems a full disk only
// surfaces at close, and an append that reports success while dropping the
// record would silently starve future warm-starts.
func AppendFile(path string, records ...Record) error {
	return appendFile(path, false, records...)
}

// AppendFileSync is AppendFile with an fsync before close — the record is
// durable against power loss when it returns. The extra fsync costs one
// disk flush per append; services persisting models they cannot cheaply
// refit opt in, profiling runs that can be repeated stay with AppendFile.
func AppendFileSync(path string, records ...Record) error {
	return appendFile(path, true, records...)
}

func appendFile(path string, durable bool, records ...Record) error {
	// Encode before opening the file: an encoding error must not leave a
	// half-written record behind, and a single Write keeps the torn-write
	// window (and the injectable partial-write surface) to one syscall.
	var buf bytes.Buffer
	if err := Write(&buf, records...); err != nil {
		return err
	}
	payload := buf.Bytes()
	var injected error
	killAfterWrite := false
	if fault := faultinject.Fire(faultinject.PointHistoryAppend); fault != nil {
		fault.Sleep()
		torn := fault.PartialBytes > 0 && fault.PartialBytes < len(payload) &&
			(fault.Err != nil || fault.Kill)
		if torn {
			// Simulated crash mid-append: persist a prefix of the payload
			// for real, then report the failure (or die for real).
			payload = payload[:fault.PartialBytes]
			injected = fault.Err
		}
		switch {
		case fault.Kill && !torn:
			// Scheduled crash before any byte lands: the record is lost
			// whole, the log stays clean.
			faultinject.RaiseKill()
		case fault.Kill && torn:
			// Die only after the torn prefix is really in the file.
			killAfterWrite = true
		case fault.Err != nil && !torn:
			return fault.Err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(payload)
	if killAfterWrite {
		// A SIGKILL loses nothing already written into the page cache, so
		// the torn prefix survives for the restarted process to recover.
		faultinject.RaiseKill()
	}
	var serr error
	if durable && werr == nil {
		serr = f.Sync()
	}
	cerr := f.Close()
	switch {
	case werr != nil:
		return fmt.Errorf("history: appending to %s: %w", path, werr)
	case serr != nil:
		return fmt.Errorf("history: syncing %s: %w", path, serr)
	case cerr != nil:
		return fmt.Errorf("history: closing %s: %w", path, cerr)
	}
	return injected
}

// TornTail reports a trailing incomplete record recovered (skipped) by
// LoadFile — the signature a crash or power loss mid-append leaves behind.
type TornTail struct {
	// Offset is the byte offset where the torn record begins.
	Offset int64
	// Bytes is the length of the discarded fragment.
	Bytes int
	// Err is the decode error the fragment produced.
	Err error
}

// String renders the tear for warm-up logs: where it begins, how many
// bytes were discarded, and the decode error the fragment produced.
func (t *TornTail) String() string {
	return fmt.Sprintf("torn trailing record at offset %d (%d bytes): %v", t.Offset, t.Bytes, t.Err)
}

// LoadFile reads all records from a JSON-lines file, tolerating a torn
// trailing record: if the final line is incomplete (crash mid-append), the
// complete records still load and the tail is reported via TornTail rather
// than failing the whole file — one interrupted append must never disable
// warm-start. Corruption anywhere before the final line is still an error:
// that is not a crash signature, and records silently skipped mid-file
// would train on a silently biased history.
func LoadFile(path string) ([]Record, *TornTail, error) {
	if fault := faultinject.Fire(faultinject.PointHistoryLoad); fault != nil {
		fault.Sleep()
		if fault.Err != nil {
			return nil, nil, fault.Err
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return parseLines(data)
}

func parseLines(data []byte) ([]Record, *TornTail, error) {
	var out []Record
	var off int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		line := data
		terminated := nl >= 0
		if terminated {
			line = data[:nl]
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var rec Record
			if err := json.Unmarshal(trimmed, &rec); err != nil {
				if terminated {
					return nil, nil, fmt.Errorf(
						"history: record %d at offset %d: %w", len(out), off, err)
				}
				return out, &TornTail{Offset: off, Bytes: len(line), Err: err}, nil
			}
			out = append(out, rec)
		}
		if !terminated {
			break
		}
		off += int64(nl) + 1
		data = data[nl+1:]
	}
	return out, nil, nil
}

// TrainingRunsFor extracts the training data of every record matching the
// algorithm name, skipping (and reporting) records from other algorithms.
func TrainingRunsFor(records []Record, algorithm string) ([]costmodel.TrainingRun, int, error) {
	var out []costmodel.TrainingRun
	skipped := 0
	for _, r := range records {
		if r.Algorithm != algorithm {
			skipped++
			continue
		}
		tr, err := r.TrainingRun()
		if err != nil {
			return nil, 0, err
		}
		out = append(out, tr)
	}
	return out, skipped, nil
}
