// Package history persists profiled runs so later predictions can train
// their cost models on them. The paper's training methodology (§3.4)
// assumes exactly this: "measurements of previous runs of the algorithm
// that were given different datasets as input (if such runs exist) ...
// Such historical runs are typically available for analytical applications
// that are executed repetitively over newly arriving data sets."
//
// A Store is a JSON-lines file of Records; each Record carries the
// algorithm name, a dataset label, and the per-iteration feature vectors
// plus simulated seconds of one run.
package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"predict/internal/algorithms"
	"predict/internal/costmodel"
	"predict/internal/features"
)

// Record is one archived run.
type Record struct {
	// Algorithm is the algorithm's Name(); predictions only train on
	// records of the same algorithm (cost factors are per-algorithm,
	// §3.4).
	Algorithm string `json:"algorithm"`
	// Dataset labels the input (free-form, e.g. "UK2002-sim scale=1").
	Dataset string `json:"dataset"`
	// Kind distinguishes "actual" runs from "sample" runs.
	Kind string `json:"kind"`
	// FeatureNames fixes the column order of Iterations vectors, guarding
	// against pool changes between writer and reader versions.
	FeatureNames []string `json:"feature_names"`
	// Iterations holds one row per superstep: the feature vector followed
	// by the simulated seconds.
	Iterations []IterationRow `json:"iterations"`
	// Model optionally carries the extrapolation metadata of a fitted
	// cost-model cache entry (kind "model"), letting a prediction service
	// warm its cache from history: the rows above retrain the regression
	// (cheap) while Model restores the sample-scale context the expensive
	// sample runs produced. Absent on plain run records.
	Model *ModelMeta `json:"model,omitempty"`
}

// ModelMeta is the extrapolation context of one fitted cost model — the
// scalars a core.Fitted needs beyond its training rows. Together with a
// Record's iteration rows it reconstructs a cache entry without re-running
// the sample pipeline.
type ModelMeta struct {
	// Key is the service's canonical cache key (algorithm, cluster config,
	// sampling config, training ratios, dataset identity).
	Key string `json:"key"`
	// SampleVertices/SampleEdges size the sample graph (extrapolation
	// denominators).
	SampleVertices int   `json:"sample_vertices"`
	SampleEdges    int64 `json:"sample_edges"`
	// SampleVertexRatio/SampleEdgeRatio are the achieved sampling ratios.
	SampleVertexRatio float64 `json:"sample_vertex_ratio"`
	SampleEdgeRatio   float64 `json:"sample_edge_ratio"`
	// SampleCriticalShare is the structural critical-path share of the
	// sample graph at SampleWorkers.
	SampleCriticalShare float64 `json:"sample_critical_share"`
	// ProfiledCriticalShare is the profiled critical share of the sample
	// run.
	ProfiledCriticalShare float64 `json:"profiled_critical_share"`
	// SampleRunSeconds is the simulated planning cost of the sample run.
	SampleRunSeconds float64 `json:"sample_run_seconds"`
	// SampleWorkers is the sample cluster's resolved worker count.
	SampleWorkers int `json:"sample_workers"`
	// Mode is the feature-reduction mode (features.Mode) the rows encode.
	Mode int `json:"mode"`
	// VerticesOnly records the eV-only extrapolation ablation.
	VerticesOnly bool `json:"vertices_only,omitempty"`
	// RemoteBytesPerIter holds raw per-iteration remote message bytes for
	// the Figure 6 remote-bytes prediction.
	RemoteBytesPerIter []float64 `json:"remote_bytes_per_iter,omitempty"`
	// TrainingRows is the full training matrix the model was fitted on
	// (main sample run, additional-ratio runs, history) — the refit input.
	// The Record's Iterations rows are only the main sample run's, which
	// double as the extrapolation vectors.
	TrainingRows []IterationRow `json:"training_rows,omitempty"`
	// MaxFeatures/DisableSelection reproduce the costmodel.Options the
	// model was fitted under, so a refit selects the same features.
	MaxFeatures      int  `json:"max_features,omitempty"`
	DisableSelection bool `json:"disable_selection,omitempty"`
}

// IterationRow is one superstep's features and runtime.
type IterationRow struct {
	Features []float64 `json:"features"`
	Seconds  float64   `json:"seconds"`
}

// FromRun converts a profiled run into a Record under the given feature
// mode.
func FromRun(ri *algorithms.RunInfo, dataset, kind string, mode features.Mode) Record {
	names := make([]string, len(features.Pool()))
	for i, n := range features.Pool() {
		names[i] = string(n)
	}
	rec := Record{
		Algorithm:    ri.Algorithm,
		Dataset:      dataset,
		Kind:         kind,
		FeatureNames: names,
	}
	for _, it := range features.FromProfile(ri.Profile, mode) {
		rec.Iterations = append(rec.Iterations, IterationRow{
			Features: it.Vector,
			Seconds:  it.Seconds,
		})
	}
	return rec
}

// TrainingRun converts a Record back into cost-model training data. It
// validates the feature schema.
func (r Record) TrainingRun() (costmodel.TrainingRun, error) {
	pool := features.Pool()
	if len(r.FeatureNames) != len(pool) {
		return costmodel.TrainingRun{}, fmt.Errorf(
			"history: record %q has %d features, this build expects %d",
			r.Dataset, len(r.FeatureNames), len(pool))
	}
	for i, n := range r.FeatureNames {
		if n != string(pool[i]) {
			return costmodel.TrainingRun{}, fmt.Errorf(
				"history: record %q feature %d is %q, expected %q", r.Dataset, i, n, pool[i])
		}
	}
	tr := costmodel.TrainingRun{Source: r.Kind + " " + r.Dataset}
	for _, row := range r.Iterations {
		if len(row.Features) != len(pool) {
			return costmodel.TrainingRun{}, fmt.Errorf(
				"history: record %q has a row with %d features", r.Dataset, len(row.Features))
		}
		tr.Iters = append(tr.Iters, features.IterationFeatures{
			Vector:  append(features.Vector(nil), row.Features...),
			Seconds: row.Seconds,
		})
	}
	return tr, nil
}

// Write appends records to w as JSON lines.
func Write(w io.Writer, records ...Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("history: encoding record %q: %w", r.Dataset, err)
		}
	}
	return bw.Flush()
}

// Read parses all records from a JSON-lines stream.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	dec := json.NewDecoder(r)
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("history: record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// AppendFile appends records to a JSON-lines file, creating it if needed.
func AppendFile(path string, records ...Record) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(f, records...)
}

// LoadFile reads all records from a JSON-lines file.
func LoadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// TrainingRunsFor extracts the training data of every record matching the
// algorithm name, skipping (and reporting) records from other algorithms.
func TrainingRunsFor(records []Record, algorithm string) ([]costmodel.TrainingRun, int, error) {
	var out []costmodel.TrainingRun
	skipped := 0
	for _, r := range records {
		if r.Algorithm != algorithm {
			skipped++
			continue
		}
		tr, err := r.TrainingRun()
		if err != nil {
			return nil, 0, err
		}
		out = append(out, tr)
	}
	return out, skipped, nil
}
