package history

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"predict/internal/faultinject"
)

// modelRecord builds a distinguishable "model" record generation: key
// identifies the model, gen the generation, so equality of live sets
// compares content, not just key presence.
func modelRecord(key string, gen int) Record {
	return Record{
		Algorithm: "PageRank",
		Dataset:   fmt.Sprintf("%s-gen%d", key, gen),
		Kind:      "model",
		Model:     &ModelMeta{Key: key, SampleVertices: gen},
	}
}

// liveSet is the warm-start oracle: what a service warming from this log
// would end up caching — the newest record per model key.
func liveSet(records []Record) map[string]string {
	out := make(map[string]string)
	for _, r := range records {
		if r.Model != nil {
			out[r.Model.Key] = r.Dataset
		}
	}
	return out
}

func loadLiveSet(t *testing.T, path string) map[string]string {
	t.Helper()
	records, _, err := LoadFile(path)
	if err != nil {
		t.Fatalf("loading %s: %v", path, err)
	}
	return liveSet(records)
}

func equalSets(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestCompactRecordsKeepsNewestPerKeyAndRunRecords(t *testing.T) {
	run := Record{Algorithm: "PageRank", Dataset: "plain-run", Kind: "actual"}
	records := []Record{
		modelRecord("a", 1),
		modelRecord("b", 1),
		run,
		modelRecord("a", 2),
	}
	got := CompactRecords(records)
	if len(got) != 3 {
		t.Fatalf("compacted to %d records, want 3: %+v", len(got), got)
	}
	// Order is by last occurrence: b, run, a-gen2.
	if got[0].Model.Key != "b" || got[1].Kind != "actual" || got[2].Dataset != "a-gen2" {
		t.Errorf("compacted order/content wrong: %+v", got)
	}
	if !equalSets(liveSet(records), liveSet(got)) {
		t.Errorf("compaction changed the live set: %v vs %v", liveSet(records), liveSet(got))
	}
}

// TestChaosCompactionEquivalence is the crash-consistency property test:
// a history log compacted at ANY point — after every prefix of appends,
// under a seeded schedule, with a torn tail thrown in — must warm-start
// to exactly the same model set as the log that was never compacted.
func TestChaosCompactionEquivalence(t *testing.T) {
	seed := uint64(1)
	if v := os.Getenv("PREDICT_CHAOS_SEED"); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("PREDICT_CHAOS_SEED=%q: %v", v, err)
		}
		seed = parsed
	}
	rng := seed
	next := func(n int) int { // splitmix64-ish, deterministic per seed
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return int((z ^ (z >> 31)) % uint64(n))
	}

	dir := t.TempDir()
	compacted := filepath.Join(dir, "compacted.jsonl")
	reference := filepath.Join(dir, "reference.jsonl")

	keys := []string{"k0", "k1", "k2", "k3"}
	gens := make(map[string]int)
	const ops = 60
	for op := 0; op < ops; op++ {
		key := keys[next(len(keys))]
		gens[key]++
		rec := modelRecord(key, gens[key])
		if err := AppendFile(compacted, rec); err != nil {
			t.Fatal(err)
		}
		if err := AppendFile(reference, rec); err != nil {
			t.Fatal(err)
		}
		// Compact the log at seed-chosen points — roughly every third op.
		if next(3) == 0 {
			if _, err := CompactFile(compacted); err != nil {
				t.Fatalf("op %d: CompactFile: %v", op, err)
			}
		}
		if !equalSets(loadLiveSet(t, compacted), loadLiveSet(t, reference)) {
			t.Fatalf("op %d: live sets diverged:\ncompacted: %v\nreference: %v",
				op, loadLiveSet(t, compacted), loadLiveSet(t, reference))
		}
	}

	// Tear the compacted log's tail mid-append (for real, on disk), then
	// compact: the torn fragment is dropped, the live set is unchanged.
	before := loadLiveSet(t, compacted)
	restore := faultinject.Enable(faultinject.NewInjector(seed, faultinject.Rule{
		Point:        faultinject.PointHistoryAppend,
		Err:          errors.New("injected crash"),
		PartialBytes: 21,
	}))
	err := AppendFile(compacted, modelRecord("k0", 999))
	restore()
	if err == nil {
		t.Fatal("torn append reported success")
	}
	if _, torn, lerr := LoadFile(compacted); lerr != nil || torn == nil {
		t.Fatalf("expected a torn tail before compaction: torn=%v err=%v", torn, lerr)
	}
	kept, err := CompactFile(compacted)
	if err != nil {
		t.Fatalf("compacting a torn log: %v", err)
	}
	if kept != len(before) {
		t.Errorf("kept = %d records, want the %d live models", kept, len(before))
	}
	if _, torn, err := LoadFile(compacted); err != nil || torn != nil {
		t.Fatalf("compacted log still torn: torn=%v err=%v", torn, err)
	}
	if got := loadLiveSet(t, compacted); !equalSets(got, before) {
		t.Fatalf("torn-tail compaction changed the live set: %v vs %v", got, before)
	}
}

// TestChaosCompactionCrashLeavesLogIntact injects a crash into the
// window between the compacted temp file becoming durable and the rename
// publishing it: the original log must survive byte-identically, and the
// next (uninjected) compaction must succeed.
func TestChaosCompactionCrashLeavesLogIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	for gen := 1; gen <= 3; gen++ {
		if err := AppendFile(path, modelRecord("a", gen), modelRecord("b", gen)); err != nil {
			t.Fatal(err)
		}
	}
	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	restore := faultinject.Enable(faultinject.NewInjector(1, faultinject.Rule{
		Point: faultinject.PointHistoryCompact,
		Err:   errors.New("injected crash before rename"),
	}))
	_, cerr := CompactFile(path)
	restore()
	if cerr == nil {
		t.Fatal("crashed compaction reported success")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(original) {
		t.Fatal("crashed compaction modified the log")
	}
	// No temp litter: the aborted compaction cleans up after itself.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("aborted compaction left %d files in the log directory, want 1", len(entries))
	}

	kept, err := CompactFile(path)
	if err != nil {
		t.Fatalf("compaction after the crash: %v", err)
	}
	if kept != 2 {
		t.Errorf("kept = %d, want 2 (newest generation of a and b)", kept)
	}
	want := map[string]string{"a": "a-gen3", "b": "b-gen3"}
	if got := loadLiveSet(t, path); !equalSets(got, want) {
		t.Errorf("live set after recovery = %v, want %v", got, want)
	}
}
