package history

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/costmodel"
	"predict/internal/features"
	"predict/internal/gen"
)

func profiledRun(t *testing.T) *algorithms.RunInfo {
	t.Helper()
	g := gen.BarabasiAlbert(500, 4, 0.4, 1)
	o := cluster.DefaultOracle()
	o.NoiseStdDev = 0
	o.MemoryBudgetBytes = 0
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.01, g.NumVertices())
	ri, err := pr.Run(g, bsp.Config{Workers: 2, Oracle: &o})
	if err != nil {
		t.Fatal(err)
	}
	return ri
}

func TestRoundTrip(t *testing.T) {
	ri := profiledRun(t)
	rec := FromRun(ri, "BA-test", "actual", features.ModeCriticalShare)
	if rec.Algorithm != "PageRank" {
		t.Errorf("Algorithm = %q", rec.Algorithm)
	}
	if len(rec.Iterations) != ri.Iterations {
		t.Fatalf("%d rows, want %d", len(rec.Iterations), ri.Iterations)
	}

	var buf bytes.Buffer
	if err := Write(&buf, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("read %d records, want 1", len(got))
	}
	tr, err := got[0].TrainingRun()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Iters) != ri.Iterations {
		t.Errorf("training rows = %d, want %d", len(tr.Iters), ri.Iterations)
	}
	// The recovered training data must train a model.
	if _, err := costmodel.Train([]costmodel.TrainingRun{tr}, costmodel.Options{}); err != nil {
		t.Errorf("Train on recovered history: %v", err)
	}
}

func TestFileAppendAndLoad(t *testing.T) {
	ri := profiledRun(t)
	path := filepath.Join(t.TempDir(), "history.jsonl")
	rec := FromRun(ri, "d1", "actual", features.ModeCriticalShare)
	if err := AppendFile(path, rec); err != nil {
		t.Fatal(err)
	}
	rec2 := FromRun(ri, "d2", "sample", features.ModeCriticalShare)
	if err := AppendFile(path, rec2); err != nil {
		t.Fatal(err)
	}
	got, torn, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != nil {
		t.Fatalf("unexpected torn tail on a clean file: %v", torn)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d records, want 2", len(got))
	}
	if got[1].Dataset != "d2" || got[1].Kind != "sample" {
		t.Errorf("second record = %+v", got[1])
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, _, err := LoadFile(filepath.Join(t.TempDir(), "nope.jsonl")); !os.IsNotExist(err) {
		t.Errorf("err = %v, want not-exist", err)
	}
}

func TestSchemaValidation(t *testing.T) {
	ri := profiledRun(t)
	rec := FromRun(ri, "d", "actual", features.ModeCriticalShare)
	rec.FeatureNames[0] = "Bogus"
	if _, err := rec.TrainingRun(); err == nil || !strings.Contains(err.Error(), "Bogus") {
		t.Errorf("schema mismatch accepted: %v", err)
	}
	rec2 := FromRun(ri, "d", "actual", features.ModeCriticalShare)
	rec2.FeatureNames = rec2.FeatureNames[:3]
	if _, err := rec2.TrainingRun(); err == nil {
		t.Error("truncated schema accepted")
	}
	rec3 := FromRun(ri, "d", "actual", features.ModeCriticalShare)
	rec3.Iterations[0].Features = rec3.Iterations[0].Features[:2]
	if _, err := rec3.TrainingRun(); err == nil {
		t.Error("truncated row accepted")
	}
}

func TestTrainingRunsForFiltersAlgorithm(t *testing.T) {
	ri := profiledRun(t)
	recs := []Record{
		FromRun(ri, "d1", "actual", features.ModeCriticalShare),
		{Algorithm: "SemiClustering", Dataset: "d2"},
	}
	runs, skipped, err := TrainingRunsFor(recs, "PageRank")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || skipped != 1 {
		t.Errorf("runs = %d, skipped = %d; want 1, 1", len(runs), skipped)
	}
}

func TestReadCorruptStream(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Error("corrupt stream accepted")
	}
}
