package sampling

import (
	"sync"

	"predict/internal/graph"
)

// workspace holds the sampler's reusable per-draw state: the epoch-stamped
// membership table (graph.EpochTable — bumping the epoch invalidates the
// whole table in O(1), replacing the O(n) []bool the old sampler allocated
// and zeroed per draw) and the visited-order scratch buffer the walks
// append into.
//
// Workspaces are pooled: a fit's per-training-ratio pipelines (sequential
// or fanned out on core's parallel pool) and the service's shared fit pool
// all draw from the same sync.Pool, so steady-state sampling touches no
// fresh O(n) memory — each pipeline worker keeps reusing the tables the
// previous draw warmed. Nothing here consumes randomness, so the rng
// stream (and therefore every visited sequence) is bit-identical to the
// pre-workspace sampler.
type workspace struct {
	in      graph.EpochTable
	visited []graph.VertexID
}

var workspacePool = sync.Pool{New: func() any { return new(workspace) }}

// begin prepares the workspace for one draw over an n-vertex graph with
// the given target sample size.
func (w *workspace) begin(n, target int) {
	w.in.Reset(n)
	if cap(w.visited) < target {
		w.visited = make([]graph.VertexID, 0, target)
	}
	w.visited = w.visited[:0]
}

// add appends v to the sample if it is not already in it.
func (w *workspace) add(v graph.VertexID) {
	if !w.in.Marked(v) {
		w.in.Mark(v)
		w.visited = append(w.visited, v)
	}
}
