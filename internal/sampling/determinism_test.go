package sampling

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"predict/internal/gen"
	"predict/internal/graph"
)

// The sampling-determinism pins: for every (method, seed, ratio) the exact
// bits of the visited sequence, the induced subgraph's CSR arrays and the
// achieved ratios. The values were captured from the pre-rewrite sampler
// (fresh sort.Slice seed ordering, fresh visited tables, Builder-based
// subgraph induction) and pin the artifact-cache + workspace + direct-CSR
// fast path to it bit for bit: any change to the seed total order, the rng
// consumption, the visit order or the subgraph construction shows up here
// as a one-line diff.
//
// To regenerate after an *intentional* semantics change, run:
//
//	PREDICT_CAPTURE_PINS=1 go test ./internal/sampling -run TestSamplingDeterminismPins -v
//
// and paste the printed table (then justify the change in DESIGN.md §8).
var samplingPins = map[string]string{
	"BRJ/s1/r0.05":        "14bca7b942e5812d",
	"BRJ/s1/r0.15":        "9d05613b313055d1",
	"BRJ/s42/r0.05":       "346c70ddff812529",
	"BRJ/s42/r0.15":       "9ddd7c6486d23b00",
	"BRJ/s1234567/r0.05":  "705c7f57d4257fdf",
	"BRJ/s1234567/r0.15":  "8fa8c98d2cd93bff",
	"RJ/s1/r0.05":         "3d626bdf1b1b65fb",
	"RJ/s1/r0.15":         "1a15fc3512ee0e09",
	"RJ/s42/r0.05":        "fd2988f785451399",
	"RJ/s42/r0.15":        "5a13100c736616e7",
	"RJ/s1234567/r0.05":   "85b33ef0681b2ea3",
	"RJ/s1234567/r0.15":   "d71e2e6aba770dc2",
	"MHRW/s1/r0.05":       "d27a1ae32a89734e",
	"MHRW/s1/r0.15":       "ad5777c187299273",
	"MHRW/s42/r0.05":      "b4eca86bd75e9417",
	"MHRW/s42/r0.15":      "a0194ca9ff330ecd",
	"MHRW/s1234567/r0.05": "1e857ae6c8e6792b",
	"MHRW/s1234567/r0.15": "bb7b2fa72ce1757c",
	"UNI/s1/r0.05":        "7d57c2b7d786d54a",
	"UNI/s1/r0.15":        "1300f941021b3cda",
	"UNI/s42/r0.05":       "8cf16a5e74d3685d",
	"UNI/s42/r0.15":       "37930f202a812c0b",
	"UNI/s1234567/r0.05":  "e33a1c39eed4847f",
	"UNI/s1234567/r0.15":  "33e555252965315e",
}

// sampleFingerprint digests everything downstream code can observe from a
// sample: the visited sequence (drives the transform function and the
// mapping), the induced subgraph's offsets, edges and weights (drives the
// profiled sample run) and the achieved ratios (drive extrapolation).
func sampleFingerprint(r *Result) string {
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, v := range r.Vertices {
		wu(uint64(v))
	}
	wu(uint64(r.Graph.NumVertices()))
	wu(uint64(r.Graph.NumEdges()))
	for v := 0; v < r.Graph.NumVertices(); v++ {
		id := graph.VertexID(v)
		wu(uint64(r.Graph.OutDegree(id)))
		for _, w := range r.Graph.OutNeighbors(id) {
			wu(uint64(w))
		}
		for _, wt := range r.Graph.OutWeights(id) {
			wu(uint64(math.Float32bits(wt)))
		}
		orig := r.Mapping.OriginalOf(id)
		wu(uint64(orig))
		if s, ok := r.Mapping.SampleOf(orig); !ok || s != id {
			wu(^uint64(0)) // poison: mapping is not an inverse pair
		}
	}
	wu(uint64(int64(r.VertexRatio * 1e15)))
	wu(uint64(int64(r.EdgeRatio * 1e15)))
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestSamplingDeterminismPins draws samples with every method across 3
// seeds x 2 ratios on the fixed scale-free test graph and asserts the
// visited sequences, subgraphs, mappings and ratios are bit-identical to
// the pinned pre-rewrite sampler.
func TestSamplingDeterminismPins(t *testing.T) {
	capture := os.Getenv("PREDICT_CAPTURE_PINS") != ""
	g := gen.BarabasiAlbert(5000, 6, 0.4, 101)
	var keys []string
	got := map[string]string{}
	for _, m := range []Method{BiasedRandomJump, RandomJump, MetropolisHastings, UniformVertex} {
		for _, seed := range []uint64{1, 42, 1234567} {
			for _, ratio := range []float64{0.05, 0.15} {
				key := fmt.Sprintf("%s/s%d/r%g", m, seed, ratio)
				r, err := Sample(g, m, Options{Ratio: ratio, Seed: seed})
				if err != nil {
					t.Fatalf("%s: %v", key, err)
				}
				got[key] = sampleFingerprint(r)
				keys = append(keys, key)
			}
		}
	}
	if capture {
		sorted := append([]string(nil), keys...)
		sort.Strings(sorted)
		for _, k := range sorted {
			fmt.Printf("\t%q: %q,\n", k, got[k])
		}
		return
	}
	for _, k := range keys {
		want, ok := samplingPins[k]
		if !ok {
			t.Errorf("%s: no pinned fingerprint (run with PREDICT_CAPTURE_PINS=1 to capture)", k)
			continue
		}
		if got[k] != want {
			t.Errorf("%s: fingerprint %s, pinned %s — sample output changed bit-wise", k, got[k], want)
		}
	}
}

// TestSamplingPinsOnPartitionedAndMmap holds the alternate graph
// representations against the SAME pinned fingerprints the flat heap
// graph satisfies: a partitioned wrapper (SamplePartitioned) and an
// mmap'd snapshot of the pin graph. Representation — partition views,
// mapped pages — must be invisible to the sampler bit for bit.
func TestSamplingPinsOnPartitionedAndMmap(t *testing.T) {
	if os.Getenv("PREDICT_CAPTURE_PINS") != "" {
		t.Skip("capture runs on the flat graph only")
	}
	g := gen.BarabasiAlbert(5000, 6, 0.4, 101)

	snapPath := filepath.Join(t.TempDir(), "pin.snap")
	if err := graph.WriteSnapshotFile(snapPath, g); err != nil {
		t.Fatal(err)
	}
	mapped, mappedLive, err := graph.OpenSnapshot(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("mmap path live: %v (false means copy-in fallback, still pinned)", mappedLive)

	parts := []graph.VertexID{0, 1100, 2500, 2500, 5000} // uneven + one empty
	draw := func(key string, do func(m Method, o Options) (*Result, error)) {
		for _, m := range []Method{BiasedRandomJump, RandomJump, MetropolisHastings, UniformVertex} {
			for _, seed := range []uint64{1, 42, 1234567} {
				for _, ratio := range []float64{0.05, 0.15} {
					pin := fmt.Sprintf("%s/s%d/r%g", m, seed, ratio)
					r, err := do(m, Options{Ratio: ratio, Seed: seed})
					if err != nil {
						t.Fatalf("%s via %s: %v", pin, key, err)
					}
					if got := sampleFingerprint(r); got != samplingPins[pin] {
						t.Errorf("%s via %s: fingerprint %s, pinned %s — representation leaked into sampling",
							pin, key, got, samplingPins[pin])
					}
				}
			}
		}
	}
	p, err := graph.NewPartitioned(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	draw("partitioned", func(m Method, o Options) (*Result, error) {
		return SamplePartitioned(p, m, o)
	})
	draw("mmap", func(m Method, o Options) (*Result, error) {
		return Sample(mapped, m, o)
	})
	mp, err := graph.NewPartitioned(mapped, parts)
	if err != nil {
		t.Fatal(err)
	}
	draw("mmap+partitioned", func(m Method, o Options) (*Result, error) {
		return SamplePartitioned(mp, m, o)
	})
}

// TestSamplingRunToRunStability draws the same sample twice in one process
// and asserts bit-identity — workspace reuse across calls must never leak
// one draw's state into the next.
func TestSamplingRunToRunStability(t *testing.T) {
	g := gen.BarabasiAlbert(5000, 6, 0.4, 101)
	for _, m := range []Method{BiasedRandomJump, RandomJump, MetropolisHastings, UniformVertex} {
		opts := Options{Ratio: 0.1, Seed: 9}
		r1, err := Sample(g, m, opts)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		r2, err := Sample(g, m, opts)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if f1, f2 := sampleFingerprint(r1), sampleFingerprint(r2); f1 != f2 {
			t.Errorf("%s: fingerprints differ across runs: %s vs %s", m, f1, f2)
		}
	}
}
