package sampling

import (
	"testing"
	"testing/quick"

	"predict/internal/gen"
	"predict/internal/graph"
)

// TestSampleInvariants property-tests every method on random scale-free
// graphs: exact target size, no duplicates, valid induced subgraph,
// consistent ratios.
func TestSampleInvariants(t *testing.T) {
	methods := []Method{RandomJump, BiasedRandomJump, MetropolisHastings, UniformVertex}
	f := func(seed uint64, ratioRaw uint8, mIdx uint8) bool {
		g := gen.BarabasiAlbert(800, 4, 0.4, seed%16) // few distinct graphs, cached by BA determinism
		ratio := 0.02 + float64(ratioRaw%80)/100.0
		method := methods[int(mIdx)%len(methods)]
		r, err := Sample(g, method, Options{Ratio: ratio, Seed: seed})
		if err != nil {
			return false
		}
		target := int(float64(g.NumVertices())*ratio + 0.5)
		if target < 1 {
			target = 1
		}
		if len(r.Vertices) != target {
			return false
		}
		seen := make(map[graph.VertexID]bool, len(r.Vertices))
		for _, v := range r.Vertices {
			if seen[v] || int(v) >= g.NumVertices() {
				return false
			}
			seen[v] = true
		}
		if r.Graph.NumVertices() != target {
			return false
		}
		wantVR := float64(target) / float64(g.NumVertices())
		if r.VertexRatio < wantVR-1e-9 || r.VertexRatio > wantVR+1e-9 {
			return false
		}
		return r.EdgeRatio >= 0 && r.EdgeRatio <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSampleEdgeRatioMonotoneInVertexRatio: on average, sampling more
// vertices keeps at least as many edges. Checked on fixed seeds to stay
// deterministic.
func TestSampleEdgeRatioMonotone(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 6, 0.4, 5)
	prev := -1.0
	for _, ratio := range []float64{0.05, 0.1, 0.2, 0.4, 0.8} {
		r, err := Sample(g, BiasedRandomJump, Options{Ratio: ratio, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if r.EdgeRatio < prev {
			t.Errorf("edge ratio decreased: %v -> %v at vertex ratio %v", prev, r.EdgeRatio, ratio)
		}
		prev = r.EdgeRatio
	}
}
