package sampling

import (
	"testing"

	"predict/internal/graph"
)

// brjBenchGraph builds a deterministic scale-free-ish graph: a ring for
// connectivity plus chords whose fan-in concentrates on low IDs, giving
// the hub structure BRJ's restart seeding exercises.
func brjBenchGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.VertexID(i), graph.VertexID((i+1)%n))
		b.AddEdge(graph.VertexID(i), graph.VertexID((i*i)%(i/4+1)))
		if i%3 == 0 {
			b.AddEdge(graph.VertexID(i), graph.VertexID((i*13+5)%n))
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// BenchmarkBRJSamplingWalk measures one Biased Random Jump sample draw —
// the walk plus the induced-subgraph construction every fit pipeline pays
// per training ratio.
func BenchmarkBRJSamplingWalk(b *testing.B) {
	g := brjBenchGraph(20000)
	opts := Options{Ratio: 0.10, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sample(g, BiasedRandomJump, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBRJWalkOnly isolates the walk itself (seed selection + random
// walk with restarts) from subgraph induction.
func BenchmarkBRJWalkOnly(b *testing.B) {
	g := brjBenchGraph(20000)
	opts := Options{Ratio: 0.10, Seed: 7}.withDefaults()
	seeds := topOutDegreeSeeds(g, opts.SeedFraction)
	n := g.NumVertices()
	target := int(float64(n) * opts.Ratio)
	ws := new(workspace)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := newRNG(opts.Seed)
		ws.begin(n, target)
		walkSample(g, target, opts, rng, seeds, ws)
		if len(ws.visited) != target {
			b.Fatalf("walk returned %d vertices, want %d", len(ws.visited), target)
		}
	}
}
