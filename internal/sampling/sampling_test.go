package sampling

import (
	"testing"

	"predict/internal/gen"
	"predict/internal/graph"
)

func testGraph() *graph.Graph {
	return gen.BarabasiAlbert(5000, 6, 0.4, 101)
}

func TestSampleTargetSize(t *testing.T) {
	g := testGraph()
	for _, m := range []Method{RandomJump, BiasedRandomJump, MetropolisHastings, UniformVertex} {
		r, err := Sample(g, m, Options{Ratio: 0.1, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		want := 500
		if len(r.Vertices) != want {
			t.Errorf("%s: sampled %d vertices, want %d", m, len(r.Vertices), want)
		}
		if r.Graph.NumVertices() != want {
			t.Errorf("%s: induced graph has %d vertices, want %d", m, r.Graph.NumVertices(), want)
		}
		if r.VertexRatio < 0.099 || r.VertexRatio > 0.101 {
			t.Errorf("%s: VertexRatio = %v, want ~0.1", m, r.VertexRatio)
		}
		if r.EdgeRatio <= 0 || r.EdgeRatio >= 1 {
			t.Errorf("%s: EdgeRatio = %v, want in (0,1)", m, r.EdgeRatio)
		}
	}
}

func TestSampleNoDuplicates(t *testing.T) {
	g := testGraph()
	for _, m := range []Method{RandomJump, BiasedRandomJump, MetropolisHastings} {
		r, err := Sample(g, m, Options{Ratio: 0.2, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		seen := make(map[graph.VertexID]bool, len(r.Vertices))
		for _, v := range r.Vertices {
			if seen[v] {
				t.Fatalf("%s: duplicate vertex %d", m, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	g := testGraph()
	r1, err := Sample(g, BiasedRandomJump, Options{Ratio: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Sample(g, BiasedRandomJump, Options{Ratio: 0.1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Vertices) != len(r2.Vertices) {
		t.Fatal("same seed, different sample sizes")
	}
	for i := range r1.Vertices {
		if r1.Vertices[i] != r2.Vertices[i] {
			t.Fatalf("same seed, different vertex at %d: %d vs %d", i, r1.Vertices[i], r2.Vertices[i])
		}
	}
}

func TestSampleErrors(t *testing.T) {
	g := testGraph()
	if _, err := Sample(g, RandomJump, Options{Ratio: 0}); err == nil {
		t.Error("ratio 0 accepted")
	}
	if _, err := Sample(g, RandomJump, Options{Ratio: 1.5}); err == nil {
		t.Error("ratio > 1 accepted")
	}
	if _, err := Sample(g, Method("bogus"), Options{Ratio: 0.1}); err == nil {
		t.Error("unknown method accepted")
	}
	var empty graph.Graph
	if _, err := Sample(&empty, RandomJump, Options{Ratio: 0.1}); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestSampleFullRatio(t *testing.T) {
	g := gen.Cycle(100)
	r, err := Sample(g, RandomJump, Options{Ratio: 1.0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vertices) != 100 {
		t.Errorf("sampled %d, want all 100", len(r.Vertices))
	}
	if r.EdgeRatio != 1.0 {
		t.Errorf("EdgeRatio = %v, want 1 for full sample", r.EdgeRatio)
	}
}

func TestBRJPrefersHubs(t *testing.T) {
	// On a scale-free graph at a small ratio, BRJ samples should include
	// the very top out-degree hubs (its restart seeds).
	g := testGraph()
	top := topOutDegreeSeeds(g, 0.002)
	r, err := Sample(g, BiasedRandomJump, Options{Ratio: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	inSample := make(map[graph.VertexID]bool)
	for _, v := range r.Vertices {
		inSample[v] = true
	}
	hubHits := 0
	for _, h := range top {
		if inSample[h] {
			hubHits++
		}
	}
	if float64(hubHits) < 0.5*float64(len(top)) {
		t.Errorf("BRJ hit only %d/%d top hubs", hubHits, len(top))
	}
}

func TestBRJConnectivityBeatsUniform(t *testing.T) {
	g := testGraph()
	brj, err := Sample(g, BiasedRandomJump, Options{Ratio: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := Sample(g, UniformVertex, Options{Ratio: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fb := graph.LargestComponentFraction(brj.Graph)
	fu := graph.LargestComponentFraction(uni.Graph)
	if fb <= fu {
		t.Errorf("BRJ connectivity %v <= uniform %v; walk-based sampling should preserve connectivity better", fb, fu)
	}
}

func TestWalkSampleHandlesSinkVertices(t *testing.T) {
	// A star pointing inward: every walk hits the sink center immediately;
	// restarts must keep the sampler making progress.
	g := gen.Star(200, false)
	r, err := Sample(g, RandomJump, Options{Ratio: 0.5, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vertices) != 100 {
		t.Errorf("sampled %d, want 100", len(r.Vertices))
	}
}

func TestMHRWHandlesPath(t *testing.T) {
	g := gen.Path(500)
	r, err := Sample(g, MetropolisHastings, Options{Ratio: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vertices) != 100 {
		t.Errorf("sampled %d, want 100", len(r.Vertices))
	}
}

func TestTopOutDegreeSeedsOrdering(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]graph.VertexID{
		{0, 1}, {0, 2}, {0, 3}, // vertex 0: degree 3
		{1, 2}, {1, 3}, // vertex 1: degree 2
		{2, 3}, // vertex 2: degree 1
	})
	seeds := topOutDegreeSeeds(g, 0.5)
	if len(seeds) != 2 {
		t.Fatalf("got %d seeds, want 2", len(seeds))
	}
	if seeds[0] != 0 || seeds[1] != 1 {
		t.Errorf("seeds = %v, want [0 1]", seeds)
	}
}

func TestMeasureFidelity(t *testing.T) {
	g := testGraph()
	r, err := Sample(g, BiasedRandomJump, Options{Ratio: 0.2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	f := MeasureFidelity(g, r)
	if f.DStatOut < 0 || f.DStatOut > 1 {
		t.Errorf("DStatOut = %v, out of [0,1]", f.DStatOut)
	}
	if f.ConnectivityGraph < 0.99 {
		t.Errorf("BA graph should be connected, got %v", f.ConnectivityGraph)
	}
	// A 20% BRJ sample of a scale-free graph should stay mostly connected.
	if f.ConnectivitySample < 0.5 {
		t.Errorf("sample connectivity = %v, suspiciously low", f.ConnectivitySample)
	}
}

func TestSampleRatioSmallerThanOneVertex(t *testing.T) {
	g := gen.Cycle(10)
	r, err := Sample(g, RandomJump, Options{Ratio: 0.001, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vertices) != 1 {
		t.Errorf("sampled %d vertices, want 1 (minimum)", len(r.Vertices))
	}
}
