package sampling

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(5, 2) != DeriveSeed(5, 2) {
		t.Fatal("DeriveSeed is not a pure function")
	}
}

// TestDeriveSeedScheme pins the derivation to the sequential pipeline's
// historical base+stream+1 scheme: changing it silently invalidates every
// committed EXPERIMENTS.md table, so a change must be deliberate enough
// to update this test and regenerate the experiment docs.
func TestDeriveSeedScheme(t *testing.T) {
	for base := uint64(0); base < 8; base++ {
		for stream := uint64(0); stream < 8; stream++ {
			got := DeriveSeed(base, stream)
			if want := base + stream + 1; got != want {
				t.Fatalf("DeriveSeed(%d,%d) = %d, want %d", base, stream, got, want)
			}
			if got == base {
				t.Errorf("DeriveSeed(%d,%d) returned the base seed unchanged", base, stream)
			}
		}
	}
}

func TestDeriveSeedSeparatesStreams(t *testing.T) {
	const base = 42
	seen := map[uint64]uint64{}
	for stream := uint64(0); stream < 64; stream++ {
		s := DeriveSeed(base, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("DeriveSeed collision for base %d: streams %d and %d -> %d",
				base, prev, stream, s)
		}
		seen[s] = stream
	}
}
