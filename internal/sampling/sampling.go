// Package sampling implements the graph-sampling techniques PREDIcT uses
// to construct sample runs (§3.2.1, §5.3): Random Jump (RJ), Biased Random
// Jump (BRJ, the paper's default, biased towards high out-degree hubs) and
// Metropolis–Hastings Random Walk (MHRW), plus a uniform vertex sampler as
// an ablation baseline.
//
// All methods return the subgraph induced by the visited vertex set,
// together with the vertex mapping and the achieved vertex/edge ratios
// that drive feature extrapolation.
package sampling

import (
	"fmt"
	"math/rand/v2"

	"predict/internal/graph"
)

// Method selects a sampling technique.
type Method string

// Supported sampling methods.
const (
	// RandomJump performs random walks with uniform restarts (Leskovec &
	// Faloutsos). It cannot get stuck in isolated regions.
	RandomJump Method = "RJ"
	// BiasedRandomJump is RJ with walk restarts drawn from the top
	// out-degree hub vertices ("the core of the network"). It is the
	// paper's default method.
	BiasedRandomJump Method = "BRJ"
	// MetropolisHastings removes the degree bias inherent in random walks
	// by rejecting moves to higher-degree vertices probabilistically.
	MetropolisHastings Method = "MHRW"
	// UniformVertex ignores structure entirely: vertices are chosen
	// uniformly at random. Used as an ablation baseline; it destroys
	// connectivity on sparse graphs.
	UniformVertex Method = "UNI"
)

// Methods lists the techniques compared in the paper's Figure 9.
func Methods() []Method {
	return []Method{BiasedRandomJump, RandomJump, MetropolisHastings}
}

// Options parameterizes a sampling run.
type Options struct {
	// Ratio is the target fraction of vertices to sample, in (0, 1].
	Ratio float64
	// RestartProb is the walk restart probability; the paper uses 0.15.
	// Zero selects the default.
	RestartProb float64
	// SeedFraction is the fraction of the highest out-degree vertices used
	// as BRJ restart seeds; the paper uses 0.01 (k = 1% of vertices).
	// Zero selects the default.
	SeedFraction float64
	// Seed drives all randomness; equal seeds give identical samples.
	Seed uint64
	// MaxStepFactor bounds the walk length at MaxStepFactor * target
	// vertices before falling back to uniform fill; zero selects 400.
	MaxStepFactor int
}

func (o Options) withDefaults() Options {
	if o.RestartProb == 0 {
		o.RestartProb = 0.15
	}
	if o.SeedFraction == 0 {
		o.SeedFraction = 0.01
	}
	if o.MaxStepFactor == 0 {
		o.MaxStepFactor = 400
	}
	return o
}

// newRNG builds the sampling PCG stream for a seed: the second word is a
// fixed xor-mix of the first, so equal seeds give identical walks.
func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909))
}

// DeriveSeed maps a base sampling seed and a stream index to the seed of
// the stream-th auxiliary sampling run (the fit pipeline's per-training-
// ratio runs). The derivation depends only on base and stream — never on
// execution order — which is what makes the parallel and sequential fit
// paths draw bit-identical samples. The scheme itself is the simple
// base+stream+1 the sequential pipeline has always used: Sample feeds
// seeds through PCG's own mixing (rand.NewPCG with two derived words),
// so adjacent seeds are already decorrelated, and keeping the scheme
// keeps every committed EXPERIMENTS.md number reproducible.
func DeriveSeed(base, stream uint64) uint64 {
	return base + stream + 1
}

// Result is a sample: the induced subgraph, the vertex mapping back to the
// original graph, and the achieved ratios.
type Result struct {
	Method   Method
	Vertices []graph.VertexID // original-graph IDs in visit order
	Graph    *graph.Graph     // subgraph induced by Vertices
	Mapping  *graph.Mapping
	// VertexRatio is |V_S| / |V_G|; EdgeRatio is |E_S| / |E_G|. The
	// extrapolator scales vertex-driven features by 1/VertexRatio and
	// edge-driven features by 1/EdgeRatio (§3.4).
	VertexRatio float64
	EdgeRatio   float64
}

// SamplePartitioned draws a sample from a partitioned graph. Partitions
// are views aliasing the flat CSR arrays (a placement structure, not a
// different graph), so sampling reads straight through the underlying
// graph and the visit sequence, induced subgraph and achieved ratios are
// bit-identical to Sample on the flat form — the partitioned determinism
// test holds both against the same pinned fingerprints.
func SamplePartitioned(p *graph.Partitioned, method Method, opts Options) (*Result, error) {
	return Sample(p.Graph(), method, opts)
}

// Sample draws a sample of g using the given method.
func Sample(g *graph.Graph, method Method, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("sampling: empty graph")
	}
	if opts.Ratio <= 0 || opts.Ratio > 1 {
		return nil, fmt.Errorf("sampling: ratio %v out of (0, 1]", opts.Ratio)
	}
	target := int(float64(n)*opts.Ratio + 0.5)
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	rng := newRNG(opts.Seed)

	// The walks run on a pooled workspace (epoch-stamped membership table,
	// reusable visited buffer): steady-state draws allocate nothing that
	// scales with the base graph. Nothing in the workspace touches the rng,
	// so visited sequences are bit-identical to the pre-workspace sampler
	// (pinned by TestSamplingDeterminismPins).
	ws := workspacePool.Get().(*workspace)
	defer workspacePool.Put(ws)
	ws.begin(n, target)
	switch method {
	case RandomJump:
		walkSample(g, target, opts, rng, nil, ws)
	case BiasedRandomJump:
		walkSample(g, target, opts, rng, topOutDegreeSeeds(g, opts.SeedFraction), ws)
	case MetropolisHastings:
		mhrwSample(g, target, opts, rng, ws)
	case UniformVertex:
		uniformSample(n, target, rng, ws)
	default:
		return nil, fmt.Errorf("sampling: unknown method %q", method)
	}

	sub, mapping, err := graph.InducedSubgraph(g, ws.visited)
	if err != nil {
		return nil, fmt.Errorf("sampling: inducing subgraph: %w", err)
	}
	// Vertices is a private copy of the visit sequence: the workspace
	// buffer returns to the pool, and Mapping.ToOriginal must stay
	// unaliased so a caller reordering Vertices cannot corrupt the
	// mapping's relabeling.
	visited := append([]graph.VertexID(nil), ws.visited...)
	res := &Result{
		Method:      method,
		Vertices:    visited,
		Graph:       sub,
		Mapping:     mapping,
		VertexRatio: float64(len(visited)) / float64(n),
	}
	if ge := g.NumEdges(); ge > 0 {
		res.EdgeRatio = float64(sub.NumEdges()) / float64(ge)
	}
	return res, nil
}

// topOutDegreeSeeds returns the ceil(fraction*n) vertices with the highest
// out-degrees, ties broken by vertex ID for determinism. The ordering is
// the graph's memoized degree artifact (counting sort, built once per
// graph), which reproduces the old per-call sort.Slice total order
// bit-exactly; the returned prefix is shared and must not be modified.
func topOutDegreeSeeds(g *graph.Graph, fraction float64) []graph.VertexID {
	n := g.NumVertices()
	k := int(float64(n)*fraction + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return g.VerticesByOutDegree()[:k]
}

// walkSample runs random walks with restarts until target distinct vertices
// are visited. If seeds is nil, restarts are uniform over all vertices
// (RJ); otherwise restarts are uniform over seeds (BRJ).
func walkSample(g *graph.Graph, target int, opts Options, rng *rand.Rand, seeds []graph.VertexID, ws *workspace) {
	n := g.NumVertices()
	restart := func() graph.VertexID {
		if seeds != nil {
			return seeds[rng.IntN(len(seeds))]
		}
		return graph.VertexID(rng.IntN(n))
	}

	cur := restart()
	ws.add(cur)
	maxSteps := opts.MaxStepFactor * target
	for steps := 0; len(ws.visited) < target && steps < maxSteps; steps++ {
		adj := g.OutNeighbors(cur)
		if len(adj) == 0 || rng.Float64() < opts.RestartProb {
			cur = restart()
		} else {
			cur = adj[rng.IntN(len(adj))]
		}
		ws.add(cur)
	}
	fillUniform(n, target, rng, ws)
}

// mhrwSample runs a Metropolis–Hastings random walk whose stationary
// distribution is uniform over vertices: a proposed move from v to w is
// accepted with probability min(1, deg(v)/deg(w)). Restarts use the same
// probability as RJ so the walk cannot stall in a sink region.
func mhrwSample(g *graph.Graph, target int, opts Options, rng *rand.Rand, ws *workspace) {
	n := g.NumVertices()
	cur := graph.VertexID(rng.IntN(n))
	ws.add(cur)
	maxSteps := opts.MaxStepFactor * target
	for steps := 0; len(ws.visited) < target && steps < maxSteps; steps++ {
		adj := g.OutNeighbors(cur)
		if len(adj) == 0 || rng.Float64() < opts.RestartProb {
			cur = graph.VertexID(rng.IntN(n))
			ws.add(cur)
			continue
		}
		proposal := adj[rng.IntN(len(adj))]
		dv, dw := g.OutDegree(cur), g.OutDegree(proposal)
		if dw == 0 {
			// Accepting would strand the walk; treat as rejection.
			continue
		}
		if rng.Float64() < float64(dv)/float64(dw) {
			cur = proposal
			ws.add(cur)
		}
	}
	fillUniform(n, target, rng, ws)
}

// uniformSample picks target vertices uniformly without replacement.
func uniformSample(n, target int, rng *rand.Rand, ws *workspace) {
	perm := rng.Perm(n)
	for i := 0; i < target; i++ {
		ws.add(graph.VertexID(perm[i]))
	}
}

// fillUniform tops up a sample to the target size with uniformly chosen
// unvisited vertices; reached only when walks exhaust their step budget on
// pathological graphs. (rng.Perm allocates, but only on that cold path —
// and only there, so the rng stream stays identical to the old sampler's.)
func fillUniform(n, target int, rng *rand.Rand, ws *workspace) {
	if len(ws.visited) >= target {
		return
	}
	perm := rng.Perm(n)
	for _, vi := range perm {
		if len(ws.visited) >= target {
			return
		}
		ws.add(graph.VertexID(vi))
	}
}

// Fidelity quantifies how well a sample preserves the key graph properties
// the paper's sampling requirements call for (§4.1): degree-distribution
// closeness (KS D-statistic, as in Leskovec & Faloutsos Table 1),
// connectivity, and in/out degree proportionality.
type Fidelity struct {
	// DStatOut is the KS distance between sample and graph out-degree
	// distributions (0 = identical).
	DStatOut float64
	// DStatIn is the same for in-degrees.
	DStatIn float64
	// ConnectivitySample/ConnectivityGraph are the largest-WCC fractions.
	ConnectivitySample float64
	ConnectivityGraph  float64
	// InOutRatioSample/Graph are the mean per-vertex in/out degree ratios.
	InOutRatioSample float64
	InOutRatioGraph  float64
}

// MeasureFidelity computes sample-vs-graph fidelity metrics. The degree
// sequences on both sides come from the graphs' memoized sorted-degree
// artifacts, so measuring many samples against the same base graph pays
// the full-graph degree sort once instead of once per sample.
func MeasureFidelity(g *graph.Graph, r *Result) Fidelity {
	return Fidelity{
		DStatOut:           graph.KolmogorovSmirnovSorted(r.Graph.SortedOutDegrees(), g.SortedOutDegrees()),
		DStatIn:            graph.KolmogorovSmirnovSorted(r.Graph.SortedInDegrees(), g.SortedInDegrees()),
		ConnectivitySample: graph.LargestComponentFraction(r.Graph),
		ConnectivityGraph:  graph.LargestComponentFraction(g),
		InOutRatioSample:   graph.InOutRatioStats(r.Graph),
		InOutRatioGraph:    graph.InOutRatioStats(g),
	}
}
