package regress

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestOLSRecoversExactLinearModel(t *testing.T) {
	// y = 3 + 2*x0 - 0.5*x1, no noise.
	X := [][]float64{
		{1, 2}, {2, 1}, {3, 5}, {4, 0}, {5, 3}, {0, 7},
	}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 3 + 2*x[0] - 0.5*x[1]
	}
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatalf("OLS: %v", err)
	}
	if math.Abs(fit.Intercept-3) > 1e-8 {
		t.Errorf("Intercept = %v, want 3", fit.Intercept)
	}
	if math.Abs(fit.Coef[0]-2) > 1e-8 || math.Abs(fit.Coef[1]+0.5) > 1e-8 {
		t.Errorf("Coef = %v, want [2 -0.5]", fit.Coef)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
}

func TestOLSWithNoise(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := rng.Float64()*10, rng.Float64()*10
		X[i] = []float64{x0, x1}
		y[i] = 1 + 4*x0 + 2*x1 + rng.NormFloat64()*0.1
	}
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Coef[0]-4) > 0.05 || math.Abs(fit.Coef[1]-2) > 0.05 {
		t.Errorf("Coef = %v, want ~[4 2]", fit.Coef)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", fit.R2)
	}
}

func TestOLSPredictExtrapolates(t *testing.T) {
	// The paper's reason for a fixed functional form: predict outside the
	// training range (train on sample, test on full graph).
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{2, 4, 6, 8}
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := fit.Predict([]float64{100}); math.Abs(got-200) > 1e-6 {
		t.Errorf("Predict(100) = %v, want 200", got)
	}
}

func TestOLSConstantFeatureDoesNotCrash(t *testing.T) {
	// A constant column is collinear with the intercept; the ridge
	// fallback must keep the fit finite.
	X := [][]float64{{5, 1}, {5, 2}, {5, 3}, {5, 4}}
	y := []float64{3, 5, 7, 9}
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatalf("OLS with constant feature: %v", err)
	}
	if got := fit.Predict([]float64{5, 5}); math.Abs(got-11) > 0.01 {
		t.Errorf("Predict = %v, want ~11", got)
	}
}

func TestOLSInsufficientData(t *testing.T) {
	X := [][]float64{{1, 2}}
	y := []float64{1}
	if _, err := OLS(X, y); err == nil {
		t.Fatal("1 observation for 3 parameters accepted")
	}
	if _, err := OLS(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestOLSLengthMismatch(t *testing.T) {
	if _, err := OLS([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestForwardSelectPicksInformativeFeatures(t *testing.T) {
	// y depends only on columns 0 and 2; column 1 is noise.
	rng := rand.New(rand.NewPCG(9, 9))
	n := 100
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10, rng.Float64() * 10}
		X[i] = x
		y[i] = 5*x[0] + 3*x[2] + rng.NormFloat64()*0.01
	}
	fit, err := ForwardSelect(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	has := map[int]bool{}
	for _, idx := range fit.FeatureIdx {
		has[idx] = true
	}
	if !has[0] || !has[2] {
		t.Errorf("selected %v, want to include 0 and 2", fit.FeatureIdx)
	}
	if has[1] {
		t.Errorf("selected noise feature 1: %v", fit.FeatureIdx)
	}
	if fit.R2 < 0.999 {
		t.Errorf("R2 = %v, want ~1", fit.R2)
	}
}

func TestForwardSelectMaxFeatures(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	n := 60
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		X[i] = x
		y[i] = x[0] + x[1] + x[2] + x[3]
	}
	fit, err := ForwardSelect(X, y, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fit.FeatureIdx) > 2 {
		t.Errorf("selected %d features, cap was 2", len(fit.FeatureIdx))
	}
}

func TestForwardSelectConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	fit, err := ForwardSelect(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := fit.Predict([]float64{10}); math.Abs(got-7) > 0.5 {
		t.Errorf("Predict = %v, want ~7 (intercept-only)", got)
	}
}

func TestPredictUsesOnlySelectedColumns(t *testing.T) {
	fit := &Fit{FeatureIdx: []int{2}, Coef: []float64{10}, Intercept: 1}
	if got := fit.Predict([]float64{99, 99, 3}); got != 31 {
		t.Errorf("Predict = %v, want 31", got)
	}
}

func TestOLSPropertyFitNeverWorseThanMean(t *testing.T) {
	// R² of OLS is >= 0 on training data (never worse than the mean
	// predictor), for any data where the fit succeeds.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed+1))
		n := 10 + int(seed%20)
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			X[i] = []float64{rng.Float64() * 100, rng.Float64()}
			y[i] = rng.Float64() * 50
		}
		fit, err := OLS(X, y)
		if err != nil {
			return true
		}
		return fit.R2 >= -1e-9 && fit.R2 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
