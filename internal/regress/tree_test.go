package regress

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestTreeFitsStepFunction(t *testing.T) {
	// A step function is the regression tree's home turf and a linear
	// model's nightmare.
	var X [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		x := float64(i)
		X = append(X, []float64{x})
		if x < 50 {
			y = append(y, 1)
		} else {
			y = append(y, 10)
		}
	}
	tree, err := FitTree(X, y, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{25}); math.Abs(got-1) > 0.01 {
		t.Errorf("Predict(25) = %v, want 1", got)
	}
	if got := tree.Predict([]float64{75}); math.Abs(got-10) > 0.01 {
		t.Errorf("Predict(75) = %v, want 10", got)
	}
	if r2 := tree.R2(X, y); r2 < 0.99 {
		t.Errorf("R2 = %v, want ~1", r2)
	}
	// The linear model cannot match this.
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 >= tree.R2(X, y) {
		t.Errorf("linear R2 %v >= tree R2 %v on a step function", fit.R2, tree.R2(X, y))
	}
}

func TestTreePicksInformativeFeature(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		noise := rng.Float64() * 100
		signal := rng.Float64() * 10
		X = append(X, []float64{noise, signal})
		if signal > 5 {
			y = append(y, 100)
		} else {
			y = append(y, 0)
		}
	}
	tree, err := FitTree(X, y, TreeOptions{MaxDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.root.left == nil {
		t.Fatal("tree did not split")
	}
	if tree.root.feature != 1 {
		t.Errorf("root split on feature %d, want 1 (the signal)", tree.root.feature)
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	tree, err := FitTree(X, y, TreeOptions{MaxDepth: 10, MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	// With MinLeaf=2 on 4 points, at most one split is possible.
	if tree.root.left != nil && (tree.root.left.left != nil || tree.root.right.left != nil) {
		t.Error("tree split below MinLeaf")
	}
}

func TestTreeConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}}
	y := []float64{7, 7, 7, 7, 7, 7}
	tree, err := FitTree(X, y, TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Predict([]float64{3.5}); got != 7 {
		t.Errorf("Predict = %v, want 7", got)
	}
	if r2 := tree.R2(X, y); r2 != 1 {
		t.Errorf("R2 on constant = %v, want 1", r2)
	}
}

func TestTreeEmptyInput(t *testing.T) {
	if _, err := FitTree(nil, nil, TreeOptions{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := FitTree([][]float64{{1}}, []float64{1, 2}, TreeOptions{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTreeCannotExtrapolate(t *testing.T) {
	// Document the §3.4 trade-off: trees clamp outside the training
	// range, linear models extrapolate.
	var X [][]float64
	var y []float64
	for i := 1; i <= 50; i++ {
		X = append(X, []float64{float64(i)})
		y = append(y, 2*float64(i))
	}
	tree, err := FitTree(X, y, TreeOptions{MaxDepth: 6, MinLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	const far = 1000.0
	treePred := tree.Predict([]float64{far})
	linPred := fit.Predict([]float64{far})
	if math.Abs(linPred-2*far) > 1 {
		t.Errorf("linear extrapolation = %v, want 2000", linPred)
	}
	if treePred > 110 {
		t.Errorf("tree prediction %v beyond training max 100 — trees should clamp", treePred)
	}
}
