package regress

import (
	"math"
	"sort"
)

// Tree is a CART-style regression tree — the nonlinear model the paper's
// "Cost Model Extensions" (§3.4) proposes for compute phases that are not
// linear in the key input features (it cites MART; a single variance-
// minimizing tree is the building block). Unlike the linear model it
// cannot extrapolate beyond the training range, which is exactly the
// trade-off the paper discusses; see costmodel for how the two are
// combined.
type Tree struct {
	root *treeNode
}

type treeNode struct {
	// Leaf prediction.
	value float64
	// Split definition (leaf when left == nil).
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
}

// TreeOptions bounds tree growth.
type TreeOptions struct {
	// MaxDepth bounds recursion; zero selects 4.
	MaxDepth int
	// MinLeaf is the minimum observations per leaf; zero selects 3.
	MinLeaf int
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.MaxDepth == 0 {
		o.MaxDepth = 4
	}
	if o.MinLeaf == 0 {
		o.MinLeaf = 3
	}
	return o
}

// FitTree grows a regression tree minimizing within-leaf variance.
func FitTree(X [][]float64, y []float64, opts TreeOptions) (*Tree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, ErrInsufficientData
	}
	opts = opts.withDefaults()
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	return &Tree{root: growTree(X, y, idx, opts, 0)}, nil
}

// Predict evaluates the tree on a feature vector.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	for n.left != nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// R2 computes the coefficient of determination on a dataset.
func (t *Tree) R2(X [][]float64, y []float64) float64 {
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - t.Predict(X[i])
		ssRes += d * d
		m := y[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

func growTree(X [][]float64, y []float64, idx []int, opts TreeOptions, depth int) *treeNode {
	node := &treeNode{value: meanOf(y, idx)}
	if depth >= opts.MaxDepth || len(idx) < 2*opts.MinLeaf {
		return node
	}
	feature, threshold, ok := bestSplit(X, y, idx, opts.MinLeaf)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	node.feature = feature
	node.threshold = threshold
	node.left = growTree(X, y, left, opts, depth+1)
	node.right = growTree(X, y, right, opts, depth+1)
	return node
}

func meanOf(y []float64, idx []int) float64 {
	var sum float64
	for _, i := range idx {
		sum += y[i]
	}
	return sum / float64(len(idx))
}

// bestSplit scans every feature for the threshold minimizing the summed
// squared error of the two children.
func bestSplit(X [][]float64, y []float64, idx []int, minLeaf int) (feature int, threshold float64, ok bool) {
	bestSSE := math.Inf(1)
	k := len(X[idx[0]])
	order := make([]int, len(idx))
	for f := 0; f < k; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })

		// Prefix sums over the sorted order for O(1) SSE at each cut.
		n := len(order)
		prefSum := make([]float64, n+1)
		prefSq := make([]float64, n+1)
		for i, id := range order {
			prefSum[i+1] = prefSum[i] + y[id]
			prefSq[i+1] = prefSq[i] + y[id]*y[id]
		}
		for cut := minLeaf; cut <= n-minLeaf; cut++ {
			// Skip ties: cannot split between equal feature values.
			if X[order[cut-1]][f] == X[order[cut]][f] {
				continue
			}
			nl, nr := float64(cut), float64(n-cut)
			sl, sr := prefSum[cut], prefSum[n]-prefSum[cut]
			ql, qr := prefSq[cut], prefSq[n]-prefSq[cut]
			sse := (ql - sl*sl/nl) + (qr - sr*sr/nr)
			if sse < bestSSE {
				bestSSE = sse
				feature = f
				threshold = (X[order[cut-1]][f] + X[order[cut]][f]) / 2
				ok = true
			}
		}
	}
	return feature, threshold, ok
}
