// Package regress implements multivariate linear regression by ordinary
// least squares and the sequential forward feature-selection mechanism the
// paper's cost-model framework uses (§3.4, after Hastie et al.).
//
// The implementation is self-contained: normal equations solved by
// Gaussian elimination with partial pivoting, with a tiny ridge fallback
// for singular systems (which arise naturally when a candidate feature is
// constant across training iterations).
package regress

import (
	"errors"
	"fmt"
	"math"
)

// Fit is a fitted linear model y = Intercept + Σ Coef[i] * x[FeatureIdx[i]].
type Fit struct {
	// FeatureIdx lists the design-matrix columns the model uses, in
	// coefficient order. For a plain OLS fit it is 0..k-1.
	FeatureIdx []int
	// Coef holds one coefficient per selected feature.
	Coef []float64
	// Intercept is the residual term r of the paper's functional form.
	Intercept float64
	// R2 and AdjustedR2 measure fit quality on the training data.
	R2         float64
	AdjustedR2 float64
	// ResidualVariance is the unbiased estimate of the noise variance
	// around the fitted line: SSE / (n - p - 1), with the denominator
	// clamped at 1 when the model consumes every degree of freedom. It is
	// the per-observation uncertainty a prediction interval starts from.
	ResidualVariance float64
}

// Predict evaluates the model on a full feature vector (all columns, not
// just the selected ones).
func (f *Fit) Predict(x []float64) float64 {
	y := f.Intercept
	for i, idx := range f.FeatureIdx {
		y += f.Coef[i] * x[idx]
	}
	return y
}

// ErrInsufficientData reports that there are not enough observations for
// the requested number of coefficients.
var ErrInsufficientData = errors.New("regress: insufficient observations")

// OLS fits y = b0 + b·x over all columns of X by least squares.
func OLS(X [][]float64, y []float64) (*Fit, error) {
	if len(X) == 0 {
		return nil, ErrInsufficientData
	}
	k := len(X[0])
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return OLSSubset(X, y, idx)
}

// OLSSubset fits using only the given columns of X.
func OLSSubset(X [][]float64, y []float64, cols []int) (*Fit, error) {
	n := len(X)
	if n != len(y) {
		return nil, fmt.Errorf("regress: %d rows vs %d targets", n, len(y))
	}
	p := len(cols) + 1 // + intercept
	if n < p {
		return nil, fmt.Errorf("%w: %d rows for %d parameters", ErrInsufficientData, n, p)
	}

	// Build normal equations A b = c with A = D'D, c = D'y where D is the
	// design matrix [1 | X[:, cols]].
	A := make([][]float64, p)
	for i := range A {
		A[i] = make([]float64, p)
	}
	c := make([]float64, p)
	row := make([]float64, p)
	for r := 0; r < n; r++ {
		row[0] = 1
		for j, col := range cols {
			row[j+1] = X[r][col]
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				A[i][j] += row[i] * row[j]
			}
			c[i] += row[i] * y[r]
		}
	}

	b, err := solve(A, c)
	if err != nil {
		// Singular system (constant/collinear features): retry with a tiny
		// ridge proportional to the trace.
		var trace float64
		for i := 0; i < p; i++ {
			trace += A[i][i]
		}
		ridge := 1e-10*trace/float64(p) + 1e-12
		for i := 0; i < p; i++ {
			A[i][i] += ridge
		}
		b, err = solve(A, c)
		if err != nil {
			return nil, fmt.Errorf("regress: singular normal equations: %w", err)
		}
	}

	fit := &Fit{
		FeatureIdx: append([]int(nil), cols...),
		Coef:       b[1:],
		Intercept:  b[0],
	}
	fit.R2, fit.AdjustedR2, fit.ResidualVariance = rsquared(X, y, fit)
	return fit, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// A, returning x with A x = c.
func solve(A [][]float64, c []float64) ([]float64, error) {
	p := len(A)
	// Work on copies.
	m := make([][]float64, p)
	for i := range m {
		m[i] = append([]float64(nil), A[i]...)
		m[i] = append(m[i], c[i])
	}
	for col := 0; col < p; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return nil, errors.New("zero pivot")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := col + 1; r < p; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for j := col; j <= p; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	x := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		sum := m[i][p]
		for j := i + 1; j < p; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errors.New("non-finite solution")
		}
	}
	return x, nil
}

func rsquared(X [][]float64, y []float64, fit *Fit) (r2, adj, resVar float64) {
	n := len(y)
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	var ssRes, ssTot float64
	for i := range y {
		pred := fit.Predict(X[i])
		d := y[i] - pred
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	p := len(fit.Coef)
	df := n - p - 1
	if df < 1 {
		df = 1
	}
	resVar = ssRes / float64(df)
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, 1, resVar
		}
		return 0, 0, resVar
	}
	r2 = 1 - ssRes/ssTot
	if n-p-1 > 0 {
		adj = 1 - (1-r2)*float64(n-1)/float64(n-p-1)
	} else {
		adj = r2
	}
	return r2, adj, resVar
}

// ForwardSelect performs sequential forward selection: starting from the
// empty model it repeatedly adds the feature whose inclusion most improves
// adjusted R², stopping when no candidate improves it by more than a small
// threshold or maxFeatures is reached (§3.4's "sequential forward
// selection mechanism").
func ForwardSelect(X [][]float64, y []float64, maxFeatures int) (*Fit, error) {
	if len(X) == 0 {
		return nil, ErrInsufficientData
	}
	k := len(X[0])
	if maxFeatures <= 0 || maxFeatures > k {
		maxFeatures = k
	}
	// Never fit more parameters than observations allow.
	if cap := len(X) - 2; maxFeatures > cap && cap >= 1 {
		maxFeatures = cap
	}

	const minImprovement = 1e-4
	selected := []int{}
	used := make([]bool, k)
	var best *Fit

	// Baseline: intercept-only model.
	interceptOnly, err := OLSSubset(X, y, nil)
	if err != nil {
		return nil, err
	}
	best = interceptOnly

	for len(selected) < maxFeatures {
		var roundBest *Fit
		roundIdx := -1
		for col := 0; col < k; col++ {
			if used[col] {
				continue
			}
			trial := append(append([]int(nil), selected...), col)
			fit, err := OLSSubset(X, y, trial)
			if err != nil {
				continue
			}
			if roundBest == nil || fit.AdjustedR2 > roundBest.AdjustedR2 {
				roundBest = fit
				roundIdx = col
			}
		}
		if roundBest == nil || roundBest.AdjustedR2 <= best.AdjustedR2+minImprovement {
			break
		}
		best = roundBest
		selected = append(selected, roundIdx)
		used[roundIdx] = true
	}
	return best, nil
}
