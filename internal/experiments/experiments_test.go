package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyLab returns a Lab small and fast enough for unit tests: tiny
// datasets, two sampling ratios, two training ratios.
func tinyLab() *Lab {
	return NewLab(Config{
		Scale:          0.04,
		Workers:        4,
		Seed:           7,
		Ratios:         []float64{0.1, 0.2},
		TrainingRatios: []float64{0.1, 0.2},
	})
}

func checkFigure(t *testing.T, f *FigureResult, wantSeries int) {
	t.Helper()
	if len(f.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", f.ID, len(f.Series), wantSeries)
	}
	for _, s := range f.Series {
		if len(s.Points) == 0 {
			t.Fatalf("%s series %s: no points", f.ID, s.Label)
		}
		for _, p := range s.Points {
			if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
				t.Errorf("%s series %s ratio %v: non-finite value", f.ID, s.Label, p.Ratio)
			}
		}
	}
	var buf bytes.Buffer
	f.Render(&buf)
	if !strings.Contains(buf.String(), f.ID) {
		t.Errorf("%s: Render missing figure ID", f.ID)
	}
}

func TestFigure4Tiny(t *testing.T) {
	figs, err := tinyLab().Figure4()
	if err != nil {
		t.Fatalf("Figure4: %v", err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d figures, want 2 (two tolerance levels)", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f, 4)
	}
}

func TestFigure5Tiny(t *testing.T) {
	figs, err := tinyLab().Figure5()
	if err != nil {
		t.Fatalf("Figure5: %v", err)
	}
	for _, f := range figs {
		checkFigure(t, f, 3)
	}
}

func TestFigure6Tiny(t *testing.T) {
	figs, err := tinyLab().Figure6()
	if err != nil {
		t.Fatalf("Figure6: %v", err)
	}
	if len(figs) != 2 {
		t.Fatalf("got %d panels, want 2", len(figs))
	}
	for _, f := range figs {
		checkFigure(t, f, 3)
	}
}

func TestFigure9Tiny(t *testing.T) {
	figs, err := tinyLab().Figure9()
	if err != nil {
		t.Fatalf("Figure9: %v", err)
	}
	for _, f := range figs {
		checkFigure(t, f, 3) // BRJ, RJ, MHRW
	}
}

func TestFigure7And8Tiny(t *testing.T) {
	// The runtime figures are the most expensive; share one tiny lab and
	// check only panel (a) series shape.
	lab := tinyLab()
	figs7, err := lab.Figure7()
	if err != nil {
		t.Fatalf("Figure7: %v", err)
	}
	for _, f := range figs7 {
		checkFigure(t, f, 3)
	}
	figs8, err := lab.Figure8()
	if err != nil {
		t.Fatalf("Figure8: %v", err)
	}
	for _, f := range figs8 {
		checkFigure(t, f, 3)
	}
}

func TestExtendedFiguresTiny(t *testing.T) {
	lab := tinyLab()
	cc, err := lab.FigureConnectedComponents()
	if err != nil {
		t.Fatalf("FigureConnectedComponents: %v", err)
	}
	checkFigure(t, cc[0], 4)
	nh, err := lab.FigureNeighborhoodEstimation()
	if err != nil {
		t.Fatalf("FigureNeighborhoodEstimation: %v", err)
	}
	checkFigure(t, nh[0], 3)
}

func TestTable2Tiny(t *testing.T) {
	tab, err := tinyLab().Table2()
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4 datasets", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	for _, prefix := range []string{"LJ", "Wiki", "TW", "UK"} {
		if !strings.Contains(buf.String(), prefix) {
			t.Errorf("Table 2 render missing %s", prefix)
		}
	}
}

func TestTable3Tiny(t *testing.T) {
	tab, err := tinyLab().Table3()
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	// Rows: sr = 0.01, 0.1, 0.2, 1.0.
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	if tab.Rows[3][0] != "1.00" {
		t.Errorf("last row should be the actual run, got %v", tab.Rows[3])
	}
}

func TestUpperBoundsTiny(t *testing.T) {
	tab, err := tinyLab().UpperBounds()
	if err != nil {
		t.Fatalf("UpperBounds: %v", err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2 tolerance levels", len(tab.Rows))
	}
}

func TestAblationsTiny(t *testing.T) {
	lab := tinyLab()
	for _, fn := range []struct {
		name string
		f    func() (*TableResult, error)
	}{
		{"NoTransform", lab.AblationNoTransform},
		{"UniformSampling", lab.AblationUniformSampling},
		{"VertexOnlyExtrapolation", lab.AblationVertexOnlyExtrapolation},
		{"NoCriticalPath", lab.AblationNoCriticalPath},
		{"NoFeatureSelection", lab.AblationNoFeatureSelection},
	} {
		tab, err := fn.f()
		if err != nil {
			t.Fatalf("Ablation %s: %v", fn.name, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("Ablation %s: no rows", fn.name)
		}
	}
}

func TestLabCachesActualRuns(t *testing.T) {
	lab := tinyLab()
	g, err := lab.Graph("Wiki")
	if err != nil {
		t.Fatal(err)
	}
	if g2, _ := lab.Graph("Wiki"); g2 != g {
		t.Error("Graph not cached")
	}
}

func TestConfigDefaults(t *testing.T) {
	lab := NewLab(Config{})
	cfg := lab.Config()
	if cfg.Scale != 1.0 || cfg.Workers == 0 || len(cfg.Ratios) == 0 || cfg.Oracle == nil {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestRenderTableAlignment(t *testing.T) {
	tab := &TableResult{
		ID:     "T",
		Title:  "test",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "y"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "a note") {
		t.Error("notes not rendered")
	}
	if !strings.Contains(out, "xxxxx") {
		t.Error("row not rendered")
	}
}

func TestClosedLoopTiny(t *testing.T) {
	tab, err := tinyLab().ClosedLoop()
	if err != nil {
		t.Fatalf("ClosedLoop: %v", err)
	}
	// Rows: observation prefixes 0, 1, 3, 5, 8, 16, 32, 64.
	if len(tab.Rows) != 8 {
		t.Fatalf("%d rows, want 8 observation prefixes", len(tab.Rows))
	}
	// Below the threshold the sample fit answers untouched: identical
	// regime, identical prediction. At and past it the refit answers.
	for _, row := range tab.Rows[:3] {
		if row[1] != "extrapolation" {
			t.Errorf("%s observations: regime %q, want extrapolation", row[0], row[1])
		}
		if row[2] != tab.Rows[0][2] {
			t.Errorf("%s observations: prediction %s moved without enough feedback (want %s)",
				row[0], row[2], tab.Rows[0][2])
		}
	}
	for _, row := range tab.Rows[3:] {
		if row[1] != "interpolation" {
			t.Errorf("%s observations: regime %q, want interpolation", row[0], row[1])
		}
	}
	// The interpolation-regime interval must cover the actual runtime:
	// the stream is ±2% noise around the truth, and the refit tracks it.
	if got := tab.Rows[len(tab.Rows)-1][6]; got != "yes" {
		t.Errorf("64 observations: interval does not cover the actual runtime")
	}
	if len(tab.Notes) == 0 {
		t.Error("ClosedLoop: no notes (seed and threshold provenance missing)")
	}
}
