package experiments

import (
	"fmt"

	"predict/internal/algorithms"
	"predict/internal/core"
	"predict/internal/costmodel"
	"predict/internal/features"
	"predict/internal/metrics"
	"predict/internal/sampling"
)

// iterationErrorSweep runs, for each dataset and sampling ratio, a
// transformed sample run and reports the signed relative error of its
// iteration count against the actual run's.
func (l *Lab) iterationErrorSweep(id, title string, mkAlg func(n int) algorithms.Algorithm,
	key string, prefixes []string, method sampling.Method) (*FigureResult, error) {
	fig := &FigureResult{ID: id, Title: title, YLabel: "signed relative error, iterations"}
	for _, prefix := range prefixes {
		g, err := l.Graph(prefix)
		if err != nil {
			return nil, err
		}
		alg := mkAlg(g.NumVertices())
		actual, err := l.Actual(alg, key, prefix)
		if err != nil {
			return nil, err
		}
		s := Series{Label: prefix}
		for i, ratio := range l.cfg.Ratios {
			ri, _, err := l.sampleRun(alg, g, ratio, method, uint64(i)*131)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", id, prefix, err)
			}
			errIter := metrics.SignedRelativeError(float64(ri.Iterations), float64(actual.Iterations))
			s.Points = append(s.Points, Point{Ratio: ratio, Value: errIter})
			l.progressf("%s %s ratio %.2f: sample %d vs actual %d iterations (err %+.2f)",
				id, prefix, ratio, ri.Iterations, actual.Iterations, errIter)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Figure4 reproduces "Predicting iterations for PageRank" for tolerance
// levels ε = 0.01 and ε = 0.001 on all four datasets with BRJ sampling.
// Paper shape: ≲20% error at sr = 0.1 for the scale-free graphs (ε=0.01),
// below ~10% for ε = 0.001; LiveJournal is the outlier.
func (l *Lab) Figure4() ([]*FigureResult, error) {
	var out []*FigureResult
	for _, eps := range []float64{0.01, 0.001} {
		eps := eps
		fig, err := l.iterationErrorSweep(
			"Figure 4",
			fmt.Sprintf("Predicting iterations for PageRank, eps=%g", eps),
			func(n int) algorithms.Algorithm {
				pr := algorithms.NewPageRank()
				pr.Tau = algorithms.TauForTolerance(eps, n)
				return pr
			},
			fmt.Sprintf("eps=%g", eps),
			[]string{"LJ", "Wiki", "UK", "TW"},
			sampling.BiasedRandomJump,
		)
		if err != nil {
			return nil, err
		}
		fig.Notes = append(fig.Notes,
			"paper: <=20% at sr=0.1 for scale-free graphs (eps=0.01); <=10% for eps=0.001; LJ worst")
		out = append(out, fig)
	}
	return out, nil
}

// Figure5 reproduces "Predicting iterations for semi-clustering" for
// τ = 0.01 and τ = 0.001 on LJ, Wiki and UK (Twitter exceeds cluster
// memory, §5 "Memory Limits").
func (l *Lab) Figure5() ([]*FigureResult, error) {
	var out []*FigureResult
	for _, tau := range []float64{0.01, 0.001} {
		tau := tau
		fig, err := l.iterationErrorSweep(
			"Figure 5",
			fmt.Sprintf("Predicting iterations for semi-clustering, tau=%g", tau),
			func(int) algorithms.Algorithm {
				sc := algorithms.NewSemiClustering()
				sc.Tau = tau
				return sc
			},
			fmt.Sprintf("tau=%g", tau),
			[]string{"LJ", "Wiki", "UK"},
			sampling.BiasedRandomJump,
		)
		if err != nil {
			return nil, err
		}
		fig.Notes = append(fig.Notes,
			"paper: <=20% at sr=0.1 for the web graphs; LJ higher variability; no TW (out of memory)")
		out = append(out, fig)
	}
	return out, nil
}

// Figure6 reproduces the top-k ranking feature predictions: iteration
// error (top panel) and remote-message-byte error (bottom panel) at
// τ = 0.001.
func (l *Lab) Figure6() ([]*FigureResult, error) {
	iters := &FigureResult{
		ID:     "Figure 6 (top)",
		Title:  "Predicting iterations for top-k ranking, tau=0.001",
		YLabel: "signed relative error, iterations",
		Notes:  []string{"paper: below 35% for scale-free graphs; LJ over-estimates up to 1.5x"},
	}
	bytes := &FigureResult{
		ID:     "Figure 6 (bottom)",
		Title:  "Predicting remote message bytes for top-k ranking, tau=0.001",
		YLabel: "signed relative error, remote message bytes",
		Notes:  []string{"paper: below 10% for scale-free graphs; LJ ~40%"},
	}
	for _, prefix := range []string{"LJ", "Wiki", "UK"} {
		g, err := l.Graph(prefix)
		if err != nil {
			return nil, err
		}
		tk := algorithms.NewTopKRanking()
		tk.PageRank.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
		actual, err := l.Actual(tk, "tau=0.001", prefix)
		if err != nil {
			return nil, err
		}
		var actualRemBytes float64
		for i := range actual.Profile.Supersteps {
			actualRemBytes += float64(actual.Profile.Supersteps[i].Total().RemoteMessageBytes)
		}
		sIter := Series{Label: prefix}
		sBytes := Series{Label: prefix}
		for i, ratio := range l.cfg.Ratios {
			ri, s, err := l.sampleRun(tk, g, ratio, sampling.BiasedRandomJump, uint64(i)*269)
			if err != nil {
				return nil, fmt.Errorf("Figure 6 on %s: %w", prefix, err)
			}
			sIter.Points = append(sIter.Points, Point{Ratio: ratio,
				Value: metrics.SignedRelativeError(float64(ri.Iterations), float64(actual.Iterations))})

			// Extrapolate the sample run's remote bytes with the edge factor.
			scale, err := features.NewScale(g.NumVertices(), s.Graph.NumVertices(),
				g.NumEdges(), s.Graph.NumEdges())
			if err != nil {
				return nil, err
			}
			var sampleRemBytes float64
			for j := range ri.Profile.Supersteps {
				sampleRemBytes += float64(ri.Profile.Supersteps[j].Total().RemoteMessageBytes)
			}
			predBytes := sampleRemBytes * scale.EE
			sBytes.Points = append(sBytes.Points, Point{Ratio: ratio,
				Value: metrics.SignedRelativeError(predBytes, actualRemBytes)})
		}
		iters.Series = append(iters.Series, sIter)
		bytes.Series = append(bytes.Series, sBytes)
	}
	return []*FigureResult{iters, bytes}, nil
}

// runtimeErrorSweep reproduces the Figure 7/8 protocol for one algorithm:
// predict superstep-phase runtime at each ratio, training the cost model
// on sample runs (and optionally on actual runs of the other datasets —
// the "history" panel), and compare with the actual run.
func (l *Lab) runtimeErrorSweep(id, title string, mkAlg func(n int) algorithms.Algorithm,
	key string, prefixes []string, withHistory bool) (*FigureResult, error) {
	fig := &FigureResult{ID: id, Title: title, YLabel: "signed relative error, runtime"}
	for _, prefix := range prefixes {
		g, err := l.Graph(prefix)
		if err != nil {
			return nil, err
		}
		alg := mkAlg(g.NumVertices())
		actual, err := l.Actual(alg, key, prefix)
		if err != nil {
			return nil, err
		}

		// History: actual runs of the same algorithm on the other datasets.
		var history []costmodel.TrainingRun
		var r2s []float64
		if withHistory {
			for _, other := range prefixes {
				if other == prefix {
					continue
				}
				og, err := l.Graph(other)
				if err != nil {
					return nil, err
				}
				oactual, err := l.Actual(mkAlg(og.NumVertices()), key, other)
				if err != nil {
					return nil, err
				}
				history = append(history,
					costmodel.FromProfile("actual "+other, oactual.Profile, features.ModeCriticalShare))
			}
		}

		s := Series{Label: prefix}
		for i, ratio := range l.cfg.Ratios {
			p := core.New(core.Options{
				Sampling:       sampling.Options{Ratio: ratio, Seed: l.cfg.Seed + uint64(i)*401},
				BSP:            l.BSP(),
				TrainingRatios: l.cfg.TrainingRatios,
				History:        history,
			})
			pred, err := p.Predict(alg, g)
			if err != nil {
				return nil, fmt.Errorf("%s on %s at ratio %.2f: %w", id, prefix, ratio, err)
			}
			ev := core.Evaluate(pred, actual)
			s.Points = append(s.Points, Point{Ratio: ratio, Value: ev.RuntimeError})
			r2s = append(r2s, pred.Model.R2())
			l.progressf("%s %s ratio %.2f: predicted %.0fs vs actual %.0fs (err %+.2f, R2 %.2f)",
				id, prefix, ratio, ev.PredictedSeconds, ev.ActualSeconds, ev.RuntimeError, pred.Model.R2())
		}
		fig.Series = append(fig.Series, s)
		fig.Notes = append(fig.Notes, fmt.Sprintf("R2(%s) = %.2f (last ratio)", prefix, r2s[len(r2s)-1]))
	}
	return fig, nil
}

// Figure7 reproduces "Predicting runtime for semi-clustering": panel (a)
// trains on sample runs only, panel (b) adds actual runs of the other
// datasets as history. Paper shape: <=30% at sr=0.1 for the web graphs,
// <=50% for LJ; history improves UK to <=10%.
func (l *Lab) Figure7() ([]*FigureResult, error) {
	mk := func(int) algorithms.Algorithm { return algorithms.NewSemiClustering() }
	prefixes := []string{"LJ", "Wiki", "UK"}
	a, err := l.runtimeErrorSweep("Figure 7a",
		"Predicting runtime for semi-clustering (training: sample runs)",
		mk, "tau=0.001", prefixes, false)
	if err != nil {
		return nil, err
	}
	a.Notes = append(a.Notes, "paper R2: LJ 0.82, Wiki 0.89, UK 0.84; errors <=30% scale-free, <=50% LJ at sr=0.1")
	b, err := l.runtimeErrorSweep("Figure 7b",
		"Predicting runtime for semi-clustering (training: sample runs + history)",
		mk, "tau=0.001", prefixes, true)
	if err != nil {
		return nil, err
	}
	b.Notes = append(b.Notes, "paper R2: LJ 0.95, Wiki 0.95, UK 0.88; UK error <=10% at sr>=0.1")
	return []*FigureResult{a, b}, nil
}

// Figure8 reproduces "Predicting runtime for top-k ranking", panels (a)
// and (b) as in Figure 7. Paper shape: <=10% for scale-free graphs;
// LJ over-predicts without history (short sample runs inflate cost
// factors); history improves all models to R2 = 0.99.
func (l *Lab) Figure8() ([]*FigureResult, error) {
	mk := func(n int) algorithms.Algorithm {
		tk := algorithms.NewTopKRanking()
		tk.PageRank.Tau = algorithms.TauForTolerance(0.001, n)
		return tk
	}
	prefixes := []string{"LJ", "Wiki", "UK"}
	a, err := l.runtimeErrorSweep("Figure 8a",
		"Predicting runtime for top-k ranking (training: sample runs)",
		mk, "tau=0.001", prefixes, false)
	if err != nil {
		return nil, err
	}
	a.Notes = append(a.Notes, "paper R2: LJ 0.95, Wiki 0.96, UK 0.99; LJ over-predicted via inflated cost factors")
	b, err := l.runtimeErrorSweep("Figure 8b",
		"Predicting runtime for top-k ranking (training: sample runs + history)",
		mk, "tau=0.001", prefixes, true)
	if err != nil {
		return nil, err
	}
	b.Notes = append(b.Notes, "paper R2: 0.99 on all datasets with history")
	return []*FigureResult{a, b}, nil
}

// Figure9 reproduces the sampling-technique sensitivity analysis:
// iteration-prediction error for semi-clustering and top-k ranking on the
// UK dataset under BRJ, RJ and MHRW. Paper shape: at sr = 0.1 BRJ's error
// is smaller than or similar to the others'.
func (l *Lab) Figure9() ([]*FigureResult, error) {
	g, err := l.Graph("UK")
	if err != nil {
		return nil, err
	}
	type panel struct {
		id    string
		alg   algorithms.Algorithm
		key   string
		title string
	}
	tk := algorithms.NewTopKRanking()
	tk.PageRank.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
	panels := []panel{
		{"Figure 9 (top)", algorithms.NewSemiClustering(), "tau=0.001",
			"Sampling sensitivity: semi-clustering iterations on UK"},
		{"Figure 9 (bottom)", tk, "tau=0.001",
			"Sampling sensitivity: top-k iterations on UK"},
	}
	var out []*FigureResult
	for _, pn := range panels {
		actual, err := l.Actual(pn.alg, pn.key, "UK")
		if err != nil {
			return nil, err
		}
		fig := &FigureResult{ID: pn.id, Title: pn.title,
			YLabel: "signed relative error, iterations",
			Notes:  []string{"paper: BRJ error smaller or similar to RJ/MHRW at sr=0.1"}}
		for _, method := range sampling.Methods() {
			s := Series{Label: string(method)}
			for i, ratio := range l.cfg.Ratios {
				ri, _, err := l.sampleRun(pn.alg, g, ratio, method, uint64(i)*577)
				if err != nil {
					return nil, fmt.Errorf("%s %s: %w", pn.id, method, err)
				}
				s.Points = append(s.Points, Point{Ratio: ratio,
					Value: metrics.SignedRelativeError(float64(ri.Iterations), float64(actual.Iterations))})
			}
			fig.Series = append(fig.Series, s)
		}
		out = append(out, fig)
	}
	return out, nil
}
