package experiments

import (
	"fmt"

	"predict/internal/algorithms"
	"predict/internal/core"
	"predict/internal/sampling"
)

// ClosedLoop measures the closed-loop feedback experiment: PageRank on
// the Wiki stand-in is fitted once from sample runs, the actual run
// provides the ground-truth runtime, and a seeded stream of noisy
// observed runtimes (±2% around the truth) is fed back through the
// blended estimator. Each row re-predicts with a growing observation
// prefix and reports the regime, the signed runtime error, the p50/p95
// interval, and whether the interval covered the truth. Below the
// threshold (K = core.DefaultObservationThreshold) the prediction is the
// untouched sample fit; at and past it the observation-weighted refit
// answers, with error shrinking as the stream accrues.
func (l *Lab) ClosedLoop() (*TableResult, error) {
	const prefix = "Wiki"
	g, err := l.Graph(prefix)
	if err != nil {
		return nil, err
	}
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
	actual, err := l.Actual(pr, "tau-eps=0.001", prefix)
	if err != nil {
		return nil, err
	}
	target := actual.Profile.SuperstepPhaseSeconds()

	p := core.New(core.Options{
		Sampling:       sampling.Options{Ratio: 0.10, Seed: l.cfg.Seed},
		BSP:            l.BSP(),
		TrainingRatios: l.cfg.TrainingRatios,
	})
	fitted, err := p.Fit(pr, g)
	if err != nil {
		return nil, fmt.Errorf("closed-loop fit: %w", err)
	}

	// A seeded stream of observed runtimes, multiplicatively jittered ±2%
	// around the ground truth (an LCG, so the stream is pinned by Seed).
	const maxObs = 64
	stream := make([]float64, maxObs)
	state := l.cfg.Seed
	for i := range stream {
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11) / float64(1<<53)
		stream[i] = target * (0.98 + 0.04*u)
	}

	tbl := &TableResult{
		ID:     "Closed loop",
		Title:  "Feedback-blended prediction error and interval coverage (PR on Wiki)",
		Header: []string{"observations", "regime", "predicted s", "error", "p50 s", "p95 s", "covers actual"},
	}
	for _, n := range []int{0, 1, 3, 5, 8, 16, 32, 64} {
		pred, err := fitted.ExtrapolateBlended(g, 0, stream[:n], 0)
		if err != nil {
			return nil, fmt.Errorf("closed-loop predict at %d observations: %w", n, err)
		}
		d := pred.Runtime
		lo := d.P50Seconds - (d.P95Seconds - d.P50Seconds)
		covers := "no"
		if target >= lo && target <= d.P95Seconds {
			covers = "yes"
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			d.Regime,
			fmt.Sprintf("%.1f", pred.SuperstepSeconds),
			fmt.Sprintf("%+.1f%%", 100*(pred.SuperstepSeconds-target)/target),
			fmt.Sprintf("%.1f", d.P50Seconds),
			fmt.Sprintf("%.1f", d.P95Seconds),
			covers,
		})
		l.progressf("closed loop, %d observations: %s regime, predicted %.1fs vs actual %.1fs",
			n, d.Regime, pred.SuperstepSeconds, target)
	}
	tbl.Notes = append(tbl.Notes,
		fmt.Sprintf("actual runtime %.1f s; observation stream jittered ±2%% around it (seed %d)", target, l.cfg.Seed),
		fmt.Sprintf("regime switches at K = %d observations (the Ellis density rule); below it the sample fit answers untouched", core.DefaultObservationThreshold),
		fmt.Sprintf("p95 = p50 + %.3f·sigma; \"covers actual\" tests the symmetric central interval [2·p50−p95, p95]", 1.6448536269514722),
	)
	return tbl, nil
}
