package experiments

import (
	"predict/internal/algorithms"
	"predict/internal/sampling"
)

// FigureConnectedComponents reproduces the extended-version result the
// paper defers for space ("complete results for connected components and
// neighborhood estimation are presented in the extended version", §5):
// iteration prediction for HashMin connected components. CC converges at
// a fixed point, so there is no threshold to transform; iteration counts
// track the sample's effective diameter.
func (l *Lab) FigureConnectedComponents() ([]*FigureResult, error) {
	fig, err := l.iterationErrorSweep(
		"Extended: CC",
		"Predicting iterations for connected components (fixed point)",
		func(int) algorithms.Algorithm { return algorithms.NewConnectedComponents() },
		"fixpoint",
		[]string{"LJ", "Wiki", "UK", "TW"},
		sampling.BiasedRandomJump,
	)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"extended-version experiment: CC has no convergence threshold; sample must preserve effective diameter")
	return []*FigureResult{fig}, nil
}

// FigureNeighborhoodEstimation reproduces the extended-version result for
// FM-sketch neighborhood estimation (τ = 0.001 on the changed-vertex
// ratio; identity transform). Twitter is excluded: it exceeds the memory
// budget, as in the paper.
func (l *Lab) FigureNeighborhoodEstimation() ([]*FigureResult, error) {
	fig, err := l.iterationErrorSweep(
		"Extended: NH",
		"Predicting iterations for neighborhood estimation, tau=0.001",
		func(int) algorithms.Algorithm { return algorithms.NewNeighborhoodEstimation() },
		"tau=0.001",
		[]string{"LJ", "Wiki", "UK"},
		sampling.BiasedRandomJump,
	)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"extended-version experiment; no TW (out of memory, as in the paper)")
	return []*FigureResult{fig}, nil
}
