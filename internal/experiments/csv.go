package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV emits the figure as CSV (ratio column followed by one column
// per series), ready for external plotting tools.
func (f *FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"ratio"}, labelsOf(f.Series)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, ratio := range ratiosOf(f.Series) {
		row := []string{fmt.Sprintf("%g", ratio)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.Ratio == ratio {
					cell = fmt.Sprintf("%g", p.Value)
					break
				}
			}
			row = append(row, cell)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the table as CSV.
func (t *TableResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
