// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: Figures 4-9, Tables 2-3, the
// analytical upper-bound comparison, and the ablations DESIGN.md calls
// out. Each experiment returns a structured result that renders as an
// aligned text table; cmd/genexp prints them and bench_test.go wraps them
// as benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/gen"
	"predict/internal/graph"
	"predict/internal/sampling"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies the stand-in dataset sizes; 1.0 is the default
	// (~100x below the paper's graphs), benchmarks use smaller scales.
	Scale float64
	// Workers is the BSP worker count (default bsp.DefaultWorkers).
	Workers int
	// Seed drives all randomness.
	Seed uint64
	// Ratios is the sampling-ratio sweep of the figures' x-axis.
	Ratios []float64
	// TrainingRatios are the sample-run ratios used to train cost models
	// (§5.2 uses 0.05, 0.1, 0.15, 0.2).
	TrainingRatios []float64
	// Oracle prices the simulated cluster; nil selects the default.
	Oracle *cluster.CostOracle
	// Progress, when non-nil, receives one line per completed step.
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Workers == 0 {
		c.Workers = bsp.DefaultWorkers
	}
	if c.Seed == 0 {
		c.Seed = 20130826 // VLDB 2013 started August 26
	}
	if len(c.Ratios) == 0 {
		c.Ratios = []float64{0.01, 0.05, 0.10, 0.15, 0.20, 0.25}
	}
	if len(c.TrainingRatios) == 0 {
		c.TrainingRatios = []float64{0.05, 0.10, 0.15, 0.20}
	}
	if c.Oracle == nil {
		o := cluster.DefaultOracle()
		c.Oracle = &o
	}
	return c
}

// Lab memoizes dataset graphs and actual (full-graph) runs across
// experiments, since several figures share them.
type Lab struct {
	cfg     Config
	graphs  map[string]*graph.Graph
	actuals map[string]*algorithms.RunInfo
}

// NewLab returns a Lab for the given config.
func NewLab(cfg Config) *Lab {
	return &Lab{
		cfg:     cfg.withDefaults(),
		graphs:  map[string]*graph.Graph{},
		actuals: map[string]*algorithms.RunInfo{},
	}
}

// Config returns the Lab's effective (defaulted) configuration.
func (l *Lab) Config() Config { return l.cfg }

func (l *Lab) progressf(format string, args ...any) {
	if l.cfg.Progress != nil {
		fmt.Fprintf(l.cfg.Progress, format+"\n", args...)
	}
}

// BSP returns the execution environment shared by sample and actual runs
// (the paper's assumption iii).
func (l *Lab) BSP() bsp.Config {
	return bsp.Config{Workers: l.cfg.Workers, Oracle: l.cfg.Oracle, Seed: l.cfg.Seed}
}

// Graph returns the stand-in dataset for a paper prefix (LJ, Wiki, TW,
// UK), generating and caching it on first use.
func (l *Lab) Graph(prefix string) (*graph.Graph, error) {
	if g, ok := l.graphs[prefix]; ok {
		return g, nil
	}
	ds, err := gen.ByPrefix(prefix)
	if err != nil {
		return nil, err
	}
	l.progressf("generating %s at scale %.2f", ds.Name, l.cfg.Scale)
	g := ds.Generate(l.cfg.Scale, l.cfg.Seed)
	l.graphs[prefix] = g
	return g, nil
}

// Actual returns the profiled full-graph run of alg on the dataset,
// caching by algorithm name + threshold key + prefix.
func (l *Lab) Actual(alg algorithms.Algorithm, key, prefix string) (*algorithms.RunInfo, error) {
	cacheKey := alg.Name() + "/" + key + "/" + prefix
	if ri, ok := l.actuals[cacheKey]; ok {
		return ri, nil
	}
	g, err := l.Graph(prefix)
	if err != nil {
		return nil, err
	}
	l.progressf("actual run: %s on %s", alg.Name(), prefix)
	ri, err := alg.Run(g, l.BSP())
	if err != nil {
		return nil, fmt.Errorf("actual %s on %s: %w", alg.Name(), prefix, err)
	}
	l.actuals[cacheKey] = ri
	return ri, nil
}

// sampleRun draws a sample of g and executes the transformed algorithm on
// it, returning the run and the sample.
func (l *Lab) sampleRun(alg algorithms.Algorithm, g *graph.Graph, ratio float64,
	method sampling.Method, seedOffset uint64) (*algorithms.RunInfo, *sampling.Result, error) {
	s, err := sampling.Sample(g, method, sampling.Options{
		Ratio: ratio,
		Seed:  l.cfg.Seed + seedOffset,
	})
	if err != nil {
		return nil, nil, err
	}
	ri, err := alg.Transformed(s.VertexRatio).Run(s.Graph, l.BSP())
	if err != nil {
		return nil, nil, fmt.Errorf("sample run (ratio %.2f): %w", ratio, err)
	}
	return ri, s, nil
}

// ----- Result containers -------------------------------------------------

// Point is one measurement at a sampling ratio.
type Point struct {
	Ratio float64
	Value float64
}

// Series is one labeled line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// FigureResult is a reproduced paper figure: one or more series over the
// sampling-ratio sweep.
type FigureResult struct {
	ID    string
	Title string
	// YLabel describes Value (e.g. "relative error, iterations").
	YLabel string
	Series []Series
	// Notes carries free-form observations (e.g. paper-reported bands).
	Notes []string
}

// TableResult is a reproduced paper table.
type TableResult struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the figure as an aligned text table: one row per ratio,
// one column per series.
func (f *FigureResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "y: %s\n", f.YLabel)
	header := append([]string{"ratio"}, labelsOf(f.Series)...)
	rows := [][]string{}
	for _, ratio := range ratiosOf(f.Series) {
		row := []string{fmt.Sprintf("%.2f", ratio)}
		for _, s := range f.Series {
			cell := ""
			for _, p := range s.Points {
				if p.Ratio == ratio {
					cell = fmt.Sprintf("%+.3f", p.Value)
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	renderTable(w, header, rows)
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Render writes the table with aligned columns.
func (t *TableResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	renderTable(w, t.Header, t.Rows)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func labelsOf(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

func ratiosOf(series []Series) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.Ratio] {
				seen[p.Ratio] = true
				out = append(out, p.Ratio)
			}
		}
	}
	sort.Float64s(out)
	return out
}

func renderTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}
