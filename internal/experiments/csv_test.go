package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFigureWriteCSV(t *testing.T) {
	f := &FigureResult{
		ID: "F",
		Series: []Series{
			{Label: "A", Points: []Point{{Ratio: 0.1, Value: 0.5}, {Ratio: 0.2, Value: -0.25}}},
			{Label: "B", Points: []Point{{Ratio: 0.1, Value: 1}}},
		},
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if lines[0] != "ratio,A,B" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0.1,0.5,1" {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Missing point renders as empty cell.
	if lines[2] != "0.2,-0.25," {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &TableResult{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "x,y"}},
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}
