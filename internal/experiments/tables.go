package experiments

import (
	"errors"
	"fmt"

	"predict/internal/algorithms"
	"predict/internal/bounds"
	"predict/internal/bsp"
	"predict/internal/gen"
	"predict/internal/graph"
)

// Table2 reproduces the dataset-characteristics table: the paper's real
// graph sizes side by side with the measured properties of the stand-ins
// at the lab's scale.
func (l *Lab) Table2() (*TableResult, error) {
	t := &TableResult{
		ID:    "Table 2",
		Title: "Graph datasets: paper originals vs simulated stand-ins",
		Header: []string{"Name", "Prefix", "paper |V|", "paper |E|", "sim |V|", "sim |E|",
			"avg deg", "eff diam", "alpha", "WCC frac", "scale-free"},
	}
	for _, ds := range gen.StandIns() {
		g, err := l.Graph(ds.Prefix)
		if err != nil {
			return nil, err
		}
		props := graph.Measure(g, 32, 200, l.cfg.Seed)
		t.Rows = append(t.Rows, []string{
			ds.Name, ds.Prefix,
			fmt.Sprintf("%d", ds.PaperVertices),
			fmt.Sprintf("%d", ds.PaperEdges),
			fmt.Sprintf("%d", props.NumVertices),
			fmt.Sprintf("%d", props.NumEdges),
			fmt.Sprintf("%.1f", props.AvgOutDegree),
			fmt.Sprintf("%d", props.EffectiveDiameter),
			fmt.Sprintf("%.2f", props.PowerLawAlpha),
			fmt.Sprintf("%.2f", props.LargestWCC),
			fmt.Sprintf("%v", ds.ScaleFree),
		})
	}
	t.Notes = append(t.Notes,
		"stand-ins are ~100x smaller than the paper's graphs with proportional densities (DESIGN.md §1)")
	return t, nil
}

// table3Workload returns the (algorithm, dataset) pairs of the paper's
// Table 3: PR on UK and TW; SC, TOP-K and NH on UK; CC on TW.
func (l *Lab) table3Workload() ([]struct {
	label  string
	alg    func(n int) algorithms.Algorithm
	key    string
	prefix string
}, error) {
	mkPR := func(n int) algorithms.Algorithm {
		pr := algorithms.NewPageRank()
		pr.Tau = algorithms.TauForTolerance(0.001, n)
		return pr
	}
	mkSC := func(int) algorithms.Algorithm { return algorithms.NewSemiClustering() }
	mkCC := func(int) algorithms.Algorithm { return algorithms.NewConnectedComponents() }
	mkTK := func(n int) algorithms.Algorithm {
		tk := algorithms.NewTopKRanking()
		tk.PageRank.Tau = algorithms.TauForTolerance(0.001, n)
		return tk
	}
	mkNH := func(int) algorithms.Algorithm { return algorithms.NewNeighborhoodEstimation() }
	return []struct {
		label  string
		alg    func(n int) algorithms.Algorithm
		key    string
		prefix string
	}{
		{"PR (UK)", mkPR, "eps=0.001", "UK"},
		{"PR (TW)", mkPR, "eps=0.001", "TW"},
		{"SC (UK)", mkSC, "tau=0.001", "UK"},
		{"CC (TW)", mkCC, "fixpoint", "TW"},
		{"TOP-K (UK)", mkTK, "tau=0.001", "UK"},
		{"NH (UK)", mkNH, "tau=0.001", "UK"},
	}, nil
}

// Table3 reproduces the overhead analysis: simulated end-to-end runtime of
// sample runs (sr = 0.01, 0.1, 0.2) and actual runs (sr = 1.0) for the
// paper's algorithm/dataset pairs.
func (l *Lab) Table3() (*TableResult, error) {
	workload, err := l.table3Workload()
	if err != nil {
		return nil, err
	}
	ratios := []float64{0.01, 0.1, 0.2}
	t := &TableResult{
		ID:     "Table 3",
		Title:  "Runtime of sample runs and actual runs (simulated seconds)",
		Header: []string{"SR", "PR (UK)", "PR (TW)", "SC (UK)", "CC (TW)", "TOP-K (UK)", "NH (UK)"},
	}
	cols := make([][]string, len(workload))
	for c, w := range workload {
		g, err := l.Graph(w.prefix)
		if err != nil {
			return nil, err
		}
		alg := w.alg(g.NumVertices())
		var col []string
		for i, sr := range ratios {
			ri, _, err := l.sampleRun(alg, g, sr, "BRJ", uint64(c*100+i))
			if err != nil {
				return nil, fmt.Errorf("Table 3 %s sr=%.2f: %w", w.label, sr, err)
			}
			col = append(col, fmt.Sprintf("%.0f", ri.Profile.TotalSeconds()))
		}
		actual, err := l.Actual(alg, w.key, w.prefix)
		if err != nil {
			return nil, err
		}
		col = append(col, fmt.Sprintf("%.0f", actual.Profile.TotalSeconds()))
		cols[c] = col
	}
	allRatios := append(append([]float64(nil), ratios...), 1.0)
	for r, sr := range allRatios {
		row := []string{fmt.Sprintf("%.2f", sr)}
		for c := range cols {
			row = append(row, cols[c][r])
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper (seconds): sr=0.01 row 57-70s, sr=0.1 row 105-230s, actual row 861-4192s",
		"sample runs are dominated by fixed setup costs; actual runs by the superstep phase")
	return t, nil
}

// UpperBounds reproduces the §5.1 comparison of the analytical PageRank
// iteration bound (Langville & Meyer) against actual iteration counts:
// the bound ignores dataset characteristics and lands ~2-3.5x high.
func (l *Lab) UpperBounds() (*TableResult, error) {
	t := &TableResult{
		ID:     "Upper bounds (§5.1)",
		Title:  "Analytical PageRank iteration bound vs actual iterations",
		Header: []string{"eps", "bound", "LJ", "Wiki", "UK", "TW"},
	}
	for _, eps := range []float64{0.01, 0.001} {
		row := []string{fmt.Sprintf("%g", eps),
			fmt.Sprintf("%d", bounds.PageRankIterations(eps, 0.85))}
		for _, prefix := range []string{"LJ", "Wiki", "UK", "TW"} {
			g, err := l.Graph(prefix)
			if err != nil {
				return nil, err
			}
			pr := algorithms.NewPageRank()
			pr.Tau = algorithms.TauForTolerance(eps, g.NumVertices())
			actual, err := l.Actual(pr, fmt.Sprintf("eps=%g", eps), prefix)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d", actual.Iterations))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"paper: bound of 42 iterations for eps=0.001 vs fewer than 21 actual on all datasets (2x loose)")
	return t, nil
}

// MemoryLimits reproduces the §5 "Memory Limits" narrative: on the
// Twitter stand-in, semi-clustering, top-k ranking and neighborhood
// estimation exceed the simulated cluster memory budget, while PageRank
// and connected components fit.
func (l *Lab) MemoryLimits() (*TableResult, error) {
	g, err := l.Graph("TW")
	if err != nil {
		return nil, err
	}
	t := &TableResult{
		ID:     "Memory limits (§5)",
		Title:  "Algorithms on the Twitter stand-in vs the simulated memory budget",
		Header: []string{"algorithm", "outcome"},
	}
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
	tk := algorithms.NewTopKRanking()
	tk.PageRank.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
	algs := []algorithms.Algorithm{
		pr,
		algorithms.NewSemiClustering(),
		algorithms.NewConnectedComponents(),
		tk,
		algorithms.NewNeighborhoodEstimation(),
	}
	for _, alg := range algs {
		_, err := l.Actual(alg, "memlimits", "TW")
		outcome := "completed"
		switch {
		case errors.Is(err, bsp.ErrOutOfMemory):
			outcome = "OUT OF MEMORY (as in the paper)"
		case err != nil:
			outcome = "error: " + err.Error()
		}
		t.Rows = append(t.Rows, []string{alg.Name(), outcome})
	}
	t.Notes = append(t.Notes,
		"paper: Giraph cannot spill messages to disk; SC, TOP-K and NH run out of memory on Twitter")
	return t, nil
}
