package experiments

import (
	"fmt"

	"predict/internal/algorithms"
	"predict/internal/core"
	"predict/internal/features"
	"predict/internal/metrics"
	"predict/internal/sampling"
)

// AblationNoTransform isolates the transform function (§1.1's motivating
// example): PageRank iteration-prediction error at sr = 0.1 with and
// without scaling the convergence threshold on the sample run.
func (l *Lab) AblationNoTransform() (*TableResult, error) {
	t := &TableResult{
		ID:     "Ablation: transform function",
		Title:  "PageRank iteration error at sr=0.1, with vs without the transform function",
		Header: []string{"dataset", "actual iters", "with transform", "without transform"},
	}
	const ratio = 0.1
	for _, prefix := range []string{"LJ", "Wiki", "UK", "TW"} {
		g, err := l.Graph(prefix)
		if err != nil {
			return nil, err
		}
		pr := algorithms.NewPageRank()
		pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
		actual, err := l.Actual(pr, "eps=0.001", prefix)
		if err != nil {
			return nil, err
		}
		with, _, err := l.sampleRun(pr, g, ratio, sampling.BiasedRandomJump, 17)
		if err != nil {
			return nil, err
		}
		// Without: run the untransformed algorithm on the same sample.
		s, err := sampling.Sample(g, sampling.BiasedRandomJump,
			sampling.Options{Ratio: ratio, Seed: l.cfg.Seed + 17})
		if err != nil {
			return nil, err
		}
		without, err := pr.Run(s.Graph, l.BSP())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			prefix,
			fmt.Sprintf("%d", actual.Iterations),
			fmt.Sprintf("%d (err %+.2f)", with.Iterations,
				metrics.SignedRelativeError(float64(with.Iterations), float64(actual.Iterations))),
			fmt.Sprintf("%d (err %+.2f)", without.Iterations,
				metrics.SignedRelativeError(float64(without.Iterations), float64(actual.Iterations))),
		})
	}
	t.Notes = append(t.Notes,
		"without tau scaling, the sample run over-iterates: per-vertex deltas on a 10x smaller graph sit 10x above the absolute threshold")
	return t, nil
}

// AblationUniformSampling compares BRJ against structure-blind uniform
// vertex sampling for iteration prediction (PageRank, eps = 0.001).
func (l *Lab) AblationUniformSampling() (*TableResult, error) {
	t := &TableResult{
		ID:     "Ablation: sampling structure",
		Title:  "PageRank iteration error at sr=0.1: BRJ vs uniform vertex sampling",
		Header: []string{"dataset", "BRJ err", "uniform err", "BRJ sample WCC", "uniform sample WCC"},
	}
	const ratio = 0.1
	for _, prefix := range []string{"Wiki", "UK", "TW"} {
		g, err := l.Graph(prefix)
		if err != nil {
			return nil, err
		}
		pr := algorithms.NewPageRank()
		pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
		actual, err := l.Actual(pr, "eps=0.001", prefix)
		if err != nil {
			return nil, err
		}
		row := []string{prefix}
		var wccs []string
		for _, method := range []sampling.Method{sampling.BiasedRandomJump, sampling.UniformVertex} {
			ri, s, err := l.sampleRun(pr, g, ratio, method, 23)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%+.2f",
				metrics.SignedRelativeError(float64(ri.Iterations), float64(actual.Iterations))))
			fid := sampling.MeasureFidelity(g, s)
			wccs = append(wccs, fmt.Sprintf("%.2f", fid.ConnectivitySample))
		}
		row = append(row, wccs...)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"uniform sampling shreds connectivity, breaking the propagation structure convergence depends on")
	return t, nil
}

// AblationVertexOnlyExtrapolation isolates the two-factor extrapolator:
// remote-message-byte prediction for top-k with the proper eE factor vs
// extrapolating everything by eV.
func (l *Lab) AblationVertexOnlyExtrapolation() (*TableResult, error) {
	t := &TableResult{
		ID:     "Ablation: extrapolation factors",
		Title:  "Top-k remote message bytes at sr=0.1: eE vs vertices-only extrapolation",
		Header: []string{"dataset", "err with eE", "err with eV only"},
	}
	const ratio = 0.1
	for _, prefix := range []string{"Wiki", "UK"} {
		g, err := l.Graph(prefix)
		if err != nil {
			return nil, err
		}
		tk := algorithms.NewTopKRanking()
		tk.PageRank.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
		actual, err := l.Actual(tk, "tau=0.001", prefix)
		if err != nil {
			return nil, err
		}
		var actualBytes float64
		for i := range actual.Profile.Supersteps {
			actualBytes += float64(actual.Profile.Supersteps[i].Total().RemoteMessageBytes)
		}
		ri, s, err := l.sampleRun(tk, g, ratio, sampling.BiasedRandomJump, 29)
		if err != nil {
			return nil, err
		}
		var sampleBytes float64
		for i := range ri.Profile.Supersteps {
			sampleBytes += float64(ri.Profile.Supersteps[i].Total().RemoteMessageBytes)
		}
		scale, err := features.NewScale(g.NumVertices(), s.Graph.NumVertices(),
			g.NumEdges(), s.Graph.NumEdges())
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			prefix,
			fmt.Sprintf("%+.2f", metrics.SignedRelativeError(sampleBytes*scale.EE, actualBytes)),
			fmt.Sprintf("%+.2f", metrics.SignedRelativeError(sampleBytes*scale.EV, actualBytes)),
		})
	}
	t.Notes = append(t.Notes,
		"walk-based samples over-sample edges relative to vertices, so eV underestimates message traffic")
	return t, nil
}

// runtimeAblation runs the predictor twice with different options and
// reports both runtime errors.
func (l *Lab) runtimeAblation(id, title string, prefix string,
	optA, optB string, mutate func(*core.Options, bool)) (*TableResult, error) {
	g, err := l.Graph(prefix)
	if err != nil {
		return nil, err
	}
	sc := algorithms.NewSemiClustering()
	actual, err := l.Actual(sc, "tau=0.001", prefix)
	if err != nil {
		return nil, err
	}
	t := &TableResult{
		ID:     id,
		Title:  title,
		Header: []string{"variant", "predicted s", "actual s", "err", "R2"},
	}
	for _, variant := range []bool{false, true} {
		opts := core.Options{
			Sampling:       sampling.Options{Ratio: 0.1, Seed: l.cfg.Seed + 31},
			BSP:            l.BSP(),
			TrainingRatios: l.cfg.TrainingRatios,
		}
		mutate(&opts, variant)
		pred, err := core.New(opts).Predict(sc, g)
		if err != nil {
			return nil, err
		}
		ev := core.Evaluate(pred, actual)
		label := optA
		if variant {
			label = optB
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.0f", ev.PredictedSeconds),
			fmt.Sprintf("%.0f", ev.ActualSeconds),
			fmt.Sprintf("%+.2f", ev.RuntimeError),
			fmt.Sprintf("%.2f", pred.Model.R2()),
		})
	}
	return t, nil
}

// AblationNoCriticalPath compares critical-path feature scaling against
// mean-worker scaling for semi-clustering runtime prediction on UK.
func (l *Lab) AblationNoCriticalPath() (*TableResult, error) {
	return l.runtimeAblation("Ablation: critical path",
		"Semi-clustering runtime on UK: critical-path share vs mean-worker features",
		"UK", "critical-path share", "mean worker",
		func(o *core.Options, variant bool) {
			if variant {
				o.Mode = features.ModeMeanWorker
			} else {
				o.Mode = features.ModeCriticalShare
			}
		})
}

// AblationNoFeatureSelection compares forward selection against fitting
// the full feature pool.
func (l *Lab) AblationNoFeatureSelection() (*TableResult, error) {
	return l.runtimeAblation("Ablation: feature selection",
		"Semi-clustering runtime on UK: forward selection vs all features",
		"UK", "forward selection", "all features",
		func(o *core.Options, variant bool) {
			o.CostModel.DisableSelection = variant
		})
}
