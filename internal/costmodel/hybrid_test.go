package costmodel

import (
	"math"
	"testing"

	"predict/internal/features"
	"predict/internal/regress"
)

// nonlinearRun builds a training run whose seconds have a step component
// on top of a linear law — the shape §3.4's extension targets.
func nonlinearRun(n int) TrainingRun {
	run := TrainingRun{Source: "nonlinear"}
	for i := 1; i <= n; i++ {
		v := make(features.Vector, len(features.Pool()))
		v[3] = float64(i) * 100  // RemMsg
		v[5] = float64(i) * 1000 // RemMsgSize
		v[6] = 10
		secs := 0.5 + 1e-4*v[3]
		if v[3] > float64(n)*50 { // step in the second half
			secs += 3
		}
		run.Iters = append(run.Iters, features.IterationFeatures{Vector: v, Seconds: secs})
	}
	return run
}

func TestHybridBeatsLinearInRange(t *testing.T) {
	run := nonlinearRun(40)
	linear, err := Train([]TrainingRun{run}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := TrainHybrid([]TrainingRun{run}, Options{}, regress.TreeOptions{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	var linSSE, hybSSE float64
	for _, it := range run.Iters {
		dl := it.Seconds - linear.PredictIteration(it.Vector)
		dh := it.Seconds - hybrid.PredictIteration(it.Vector)
		linSSE += dl * dl
		hybSSE += dh * dh
	}
	if hybSSE >= linSSE {
		t.Errorf("hybrid SSE %v >= linear SSE %v on nonlinear data", hybSSE, linSSE)
	}
}

func TestHybridFallsBackToLinearOutOfRange(t *testing.T) {
	run := nonlinearRun(40)
	hybrid, err := TrainHybrid([]TrainingRun{run}, Options{}, regress.TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Far outside the training range the residual tree is skipped, so the
	// hybrid equals its linear part.
	v := make(features.Vector, len(features.Pool()))
	v[3] = 1e9
	v[5] = 1e10
	v[6] = 10
	if got, want := hybrid.PredictIteration(v), hybrid.Linear().PredictIteration(v); math.Abs(got-want) > 1e-9 {
		t.Errorf("out-of-range hybrid = %v, linear = %v; want equal", got, want)
	}
}

func TestHybridNoData(t *testing.T) {
	if _, err := TrainHybrid(nil, Options{}, regress.TreeOptions{}); err == nil {
		t.Fatal("empty training accepted")
	}
}
