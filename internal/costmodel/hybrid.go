package costmodel

import (
	"fmt"

	"predict/internal/features"
	"predict/internal/regress"
)

// HybridModel implements the paper's "Cost Model Extensions" (§3.4): when
// the compute phase is not linear in the key input features, a nonlinear
// model corrects the linear one. The linear part carries the
// extrapolation (a fixed functional form predicts outside the training
// boundaries); a regression tree fitted on the linear model's residuals
// captures nonlinear structure *within* the training range. Residual
// corrections are damped to zero outside the tree's reliable range, so
// extrapolation falls back to the linear model — the paper's stated
// reason for preferring a fixed functional form.
type HybridModel struct {
	linear *Model
	tree   *regress.Tree
	// maxTrained guards extrapolation: feature vectors whose RemMsg
	// exceeds the training maximum skip the residual correction.
	maxTrained float64
}

// TrainHybrid fits the linear model and a residual tree.
func TrainHybrid(runs []TrainingRun, opts Options, treeOpts regress.TreeOptions) (*HybridModel, error) {
	linear, err := Train(runs, opts)
	if err != nil {
		return nil, err
	}
	var X [][]float64
	var resid []float64
	var maxTrained float64
	remIdx, err := features.Index(features.RemMsg)
	if err != nil {
		return nil, err
	}
	for _, r := range runs {
		for _, it := range r.Iters {
			X = append(X, it.Vector)
			resid = append(resid, it.Seconds-linear.PredictIteration(it.Vector))
			if v := it.Vector[remIdx]; v > maxTrained {
				maxTrained = v
			}
		}
	}
	tree, err := regress.FitTree(X, resid, treeOpts)
	if err != nil {
		return nil, fmt.Errorf("costmodel: residual tree: %w", err)
	}
	return &HybridModel{linear: linear, tree: tree, maxTrained: maxTrained}, nil
}

// PredictIteration prices one iteration: the linear estimate plus, inside
// the training range, the tree's residual correction.
func (h *HybridModel) PredictIteration(v features.Vector) float64 {
	t := h.linear.PredictIteration(v)
	remIdx, _ := features.Index(features.RemMsg)
	if v[remIdx] <= h.maxTrained {
		t += h.tree.Predict(v)
	}
	if t < 0 {
		t = 0
	}
	return t
}

// Linear exposes the underlying linear model.
func (h *HybridModel) Linear() *Model { return h.linear }
