// Package costmodel builds the customizable cost models of §3.4: per
// iteration, a multivariate linear regression from key input features to
// runtime, with features chosen by sequential forward selection. Models
// train on sample runs and, when available, historical actual runs of the
// same algorithm on other datasets, and are then reused across input
// datasets.
package costmodel

import (
	"errors"
	"fmt"

	"predict/internal/bsp"
	"predict/internal/features"
	"predict/internal/regress"
)

// TrainingRun is one profiled run contributing training rows: each
// iteration is an observation (features -> seconds).
type TrainingRun struct {
	// Source labels the run (e.g. "sample sr=0.10 Wiki" or "actual UK")
	// for diagnostics.
	Source string
	// Iters holds the per-iteration observations.
	Iters []features.IterationFeatures
}

// FromProfile converts a run profile into a TrainingRun under a feature
// mode.
func FromProfile(source string, p *bsp.Profile, mode features.Mode) TrainingRun {
	return TrainingRun{Source: source, Iters: features.FromProfile(p, mode)}
}

// Options configures model training.
type Options struct {
	// MaxFeatures caps forward selection; zero selects 4.
	MaxFeatures int
	// DisableSelection fits all pool features without selection (ablation).
	DisableSelection bool
}

// Model is a fitted per-iteration cost model.
type Model struct {
	fit  *regress.Fit
	pool []features.Name
}

// ErrNoTrainingData reports an empty training set.
var ErrNoTrainingData = errors.New("costmodel: no training data")

// Train fits a cost model on the union of all runs' iterations.
func Train(runs []TrainingRun, opts Options) (*Model, error) {
	var X [][]float64
	var y []float64
	for _, r := range runs {
		for _, it := range r.Iters {
			X = append(X, it.Vector)
			y = append(y, it.Seconds)
		}
	}
	if len(X) == 0 {
		return nil, ErrNoTrainingData
	}
	maxF := opts.MaxFeatures
	if maxF == 0 {
		maxF = 4
	}
	var fit *regress.Fit
	var err error
	if opts.DisableSelection {
		fit, err = regress.OLS(X, y)
	} else {
		fit, err = regress.ForwardSelect(X, y, maxF)
	}
	if err != nil {
		return nil, fmt.Errorf("costmodel: fitting: %w", err)
	}
	return &Model{fit: fit, pool: features.Pool()}, nil
}

// PredictIteration prices one iteration from its (extrapolated) feature
// vector. Predictions are clamped at zero: the linear model can go
// negative far outside its training range.
func (m *Model) PredictIteration(v features.Vector) float64 {
	t := m.fit.Predict(v)
	if t < 0 {
		t = 0
	}
	return t
}

// R2 returns the coefficient of determination on the training data — the
// paper's per-model fit statistic (§5.2 reports R² per dataset).
func (m *Model) R2() float64 { return m.fit.R2 }

// ResidualVariance returns the unbiased per-iteration noise variance of
// the underlying regression (SSE over residual degrees of freedom) — the
// starting point of a prediction interval: summed over the predicted
// iteration count it bounds how far a point estimate should be trusted.
func (m *Model) ResidualVariance() float64 { return m.fit.ResidualVariance }

// Refit refits the model's coefficients on new training data while
// keeping the selected feature subset fixed. This is the closed-loop
// interpolation path: observed runtimes re-weight the coefficients of the
// structure forward selection chose from sample runs, rather than
// re-running selection (whose greedy path is sensitive to single added
// rows and would make feedback non-monotone).
func (m *Model) Refit(runs []TrainingRun) (*Model, error) {
	var X [][]float64
	var y []float64
	for _, r := range runs {
		for _, it := range r.Iters {
			X = append(X, it.Vector)
			y = append(y, it.Seconds)
		}
	}
	if len(X) == 0 {
		return nil, ErrNoTrainingData
	}
	fit, err := regress.OLSSubset(X, y, m.fit.FeatureIdx)
	if err != nil {
		return nil, fmt.Errorf("costmodel: refitting: %w", err)
	}
	return &Model{fit: fit, pool: m.pool}, nil
}

// SelectedFeatures lists the features forward selection kept, in selection
// order.
func (m *Model) SelectedFeatures() []features.Name {
	out := make([]features.Name, len(m.fit.FeatureIdx))
	for i, idx := range m.fit.FeatureIdx {
		out[i] = m.pool[idx]
	}
	return out
}

// Coefficients returns the fitted cost factors by feature, plus the
// intercept (the residual term r). These are the per-feature "cost values"
// the paper interprets (§3.4).
func (m *Model) Coefficients() (map[features.Name]float64, float64) {
	coefs := make(map[features.Name]float64, len(m.fit.Coef))
	for i, idx := range m.fit.FeatureIdx {
		coefs[m.pool[idx]] = m.fit.Coef[i]
	}
	return coefs, m.fit.Intercept
}
