package costmodel

import (
	"math"
	"testing"

	"predict/internal/features"
)

// synthRun builds a TrainingRun whose seconds follow a known linear law of
// the feature vector: secs = base + cRem*RemMsg + cBytes*RemMsgSize.
func synthRun(n int, base, cRem, cBytes float64, scale float64) TrainingRun {
	run := TrainingRun{Source: "synth"}
	for i := 1; i <= n; i++ {
		v := make(features.Vector, len(features.Pool()))
		v[0] = float64(i) * 10 * scale     // ActVert
		v[1] = 100 * scale                 // TotVert (constant)
		v[2] = float64(i) * 50 * scale     // LocMsg
		v[3] = float64(i) * 200 * scale    // RemMsg
		v[4] = float64(i) * 400 * scale    // LocMsgSize
		v[5] = float64(i*i) * 1600 * scale // RemMsgSize (nonlinear in i)
		v[6] = 8                           // AvgMsgSize
		secs := base + cRem*v[3] + cBytes*v[5]
		run.Iters = append(run.Iters, features.IterationFeatures{Vector: v, Seconds: secs})
	}
	return run
}

func TestTrainRecoversCostFactors(t *testing.T) {
	run := synthRun(12, 0.5, 2e-5, 1e-6, 1)
	m, err := Train([]TrainingRun{run}, Options{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.R2() < 0.999 {
		t.Errorf("R2 = %v, want ~1 on noiseless data", m.R2())
	}
	// Prediction on an extrapolated feature vector must follow the linear
	// law — the "predict outside training boundaries" requirement. The
	// probe keeps the same inter-feature relationships as the generating
	// process (i = 100), as real extrapolated vectors do: collinear
	// features make individual coefficients non-identifiable, but the
	// fitted hyperplane is exact along the data manifold.
	const i = 100.0
	v := make(features.Vector, len(features.Pool()))
	v[0] = i * 10
	v[1] = 100
	v[2] = i * 50
	v[3] = i * 200
	v[4] = i * 400
	v[5] = i * i * 1600
	v[6] = 8
	want := 0.5 + 2e-5*v[3] + 1e-6*v[5]
	got := m.PredictIteration(v)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("PredictIteration = %v, want ~%v", got, want)
	}
}

func TestTrainSelectsMessageFeatures(t *testing.T) {
	run := synthRun(15, 0.1, 3e-5, 2e-6, 1)
	m, err := Train([]TrainingRun{run}, Options{MaxFeatures: 3})
	if err != nil {
		t.Fatal(err)
	}
	sel := m.SelectedFeatures()
	if len(sel) == 0 {
		t.Fatal("no features selected")
	}
	// RemMsgSize is the dominant driver and must be selected.
	found := false
	for _, f := range sel {
		if f == features.RemMsgSize {
			found = true
		}
	}
	if !found {
		t.Errorf("selected %v, want RemMsgSize included", sel)
	}
}

func TestTrainWithHistoryImprovesRange(t *testing.T) {
	// Sample-only training sees a narrow feature range; adding "history"
	// (a run at 10x scale) widens it, keeping the model linear.
	sample := synthRun(6, 0.5, 2e-5, 1e-6, 0.1)
	history := synthRun(6, 0.5, 2e-5, 1e-6, 10)
	mSample, err := Train([]TrainingRun{sample}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mBoth, err := Train([]TrainingRun{sample, history}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both on a large-scale iteration.
	v := history.Iters[5].Vector
	want := history.Iters[5].Seconds
	errSample := math.Abs(mSample.PredictIteration(v)-want) / want
	errBoth := math.Abs(mBoth.PredictIteration(v)-want) / want
	if errBoth > errSample+1e-9 {
		t.Errorf("history-trained error %v > sample-only %v", errBoth, errSample)
	}
}

func TestTrainNoData(t *testing.T) {
	if _, err := Train(nil, Options{}); err == nil {
		t.Fatal("empty training accepted")
	}
}

func TestPredictIterationClampsNegative(t *testing.T) {
	run := synthRun(8, 0.5, 2e-5, 1e-6, 1)
	m, err := Train([]TrainingRun{run}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := make(features.Vector, len(features.Pool()))
	for i := range v {
		v[i] = -1e12 // absurd vector far below training range
	}
	if got := m.PredictIteration(v); got < 0 {
		t.Errorf("PredictIteration = %v, want clamped >= 0", got)
	}
}

func TestDisableSelectionUsesAllFeatures(t *testing.T) {
	run := synthRun(20, 0.5, 2e-5, 1e-6, 1)
	m, err := Train([]TrainingRun{run}, Options{DisableSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SelectedFeatures()) != len(features.Pool()) {
		t.Errorf("selected %d features, want all %d",
			len(m.SelectedFeatures()), len(features.Pool()))
	}
}

func TestCoefficientsExposeCostFactors(t *testing.T) {
	run := synthRun(12, 0.5, 2e-5, 1e-6, 1)
	m, err := Train([]TrainingRun{run}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	coefs, intercept := m.Coefficients()
	if len(coefs) == 0 {
		t.Fatal("no coefficients")
	}
	if math.IsNaN(intercept) {
		t.Error("NaN intercept")
	}
	if c, ok := coefs[features.RemMsgSize]; ok {
		if c < 0 {
			t.Errorf("RemMsgSize coefficient %v, want positive cost factor", c)
		}
	}
}
