package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"predict/internal/faultinject"
	"predict/internal/history"
)

// jsonBody encodes v for a raw http.Post whose response headers the test
// needs to inspect (postJSON discards them).
func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCheckpointOnFitAndWarmStart pins the tentpole property: a fitted
// model is durably in the history log the moment the fit completes — no
// clean shutdown required — and a fresh service warm-started from that
// log answers the same request as a cache hit.
func TestCheckpointOnFitAndWarmStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.jsonl")
	svc := New(Config{HistoryPath: path})
	if _, err := svc.Predict(t.Context(), testRequest()); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().CheckpointsWritten; got != 1 {
		t.Fatalf("checkpoints_written = %d after one fit, want 1", got)
	}
	records, torn, err := history.LoadFile(path)
	if err != nil || torn != nil {
		t.Fatalf("checkpoint log: records err=%v torn=%v", err, torn)
	}
	if len(records) != 1 || records[0].Model == nil {
		t.Fatalf("checkpoint log holds %+v, want one model record", records)
	}

	warm := New(Config{HistoryPath: path})
	if warmed, skipped, err := warm.WarmFromHistory(path); warmed != 1 || skipped != 0 || err != nil {
		t.Fatalf("WarmFromHistory = (%d, %d, %v), want (1, 0, nil)", warmed, skipped, err)
	}
	resp, err := warm.Predict(t.Context(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("warm-started service refitted instead of hitting the checkpointed model")
	}
	if warm.Stats().Fits != 0 {
		t.Fatalf("warm-started service ran %d fits, want 0", warm.Stats().Fits)
	}
}

// TestCheckpointCompaction drives the growth-factor trigger: refitting
// the same keys (evicted by a tiny LRU) appends stale generations until
// the log doubles its baseline, at which point compaction rewrites it to
// the newest record per key.
func TestCheckpointCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.jsonl")
	svc := New(Config{
		HistoryPath:            path,
		MaxModels:              1, // each alternation below evicts and refits
		CheckpointGrowthFactor: 2,
	})
	a := testRequest()
	b := testRequest()
	b.SampleSeed = 2 // different model key, same cheap pipeline
	for i, req := range []PredictRequest{a, b, a, b} {
		if _, err := svc.Predict(t.Context(), req); err != nil {
			t.Fatalf("fit %d: %v", i, err)
		}
	}
	st := svc.Stats()
	if st.CheckpointsWritten != 4 {
		t.Errorf("checkpoints_written = %d, want 4", st.CheckpointsWritten)
	}
	if st.Compactions < 1 {
		t.Errorf("compactions = %d, want >= 1", st.Compactions)
	}
	if st.CheckpointFailures != 0 {
		t.Errorf("checkpoint_failures = %d, want 0", st.CheckpointFailures)
	}
	records, torn, err := history.LoadFile(path)
	if err != nil || torn != nil {
		t.Fatalf("compacted log: err=%v torn=%v", err, torn)
	}
	if len(records) != 2 {
		t.Fatalf("compacted log holds %d records, want 2 (newest per key)", len(records))
	}
}

// TestCheckpointFailureDegradesNotFails: an unwritable history volume
// must not fail the prediction — the model is served and the failure
// counted for the readiness probe to surface.
func TestCheckpointFailureDegradesNotFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "models.jsonl") // parent missing: appends fail
	svc := New(Config{HistoryPath: path})
	resp, err := svc.Predict(t.Context(), testRequest())
	if err != nil {
		t.Fatalf("prediction failed because checkpointing failed: %v", err)
	}
	if resp.CacheHit {
		t.Fatal("expected a cold fit")
	}
	st := svc.Stats()
	if st.CheckpointFailures != 1 || st.CheckpointsWritten != 0 {
		t.Fatalf("failures=%d written=%d, want 1/0", st.CheckpointFailures, st.CheckpointsWritten)
	}
}

// TestHardStopCancelsInFlightFit is the satellite regression test: a fit
// stalled mid-pipeline when HardStop fires must stop promptly, fail its
// request with 503, and free its fit-queue slot — no goroutine parked on
// the injected delay.
func TestHardStopCancelsInFlightFit(t *testing.T) {
	restore := faultinject.Enable(faultinject.NewInjector(chaosSeed(t), faultinject.Rule{
		Point: faultinject.PointServiceFit,
		Delay: time.Minute, // far longer than the test: only cancellation ends it
	}))
	defer restore()

	svc := New(Config{})
	errc := make(chan error, 1)
	go func() {
		_, err := svc.Predict(t.Context(), testRequest())
		errc <- err
	}()
	waitFor(t, 5*time.Second, "the fit to hold its queue slot", func() bool {
		return svc.Stats().FitQueueDepth == 1
	})
	svc.HardStop()
	select {
	case err := <-errc:
		var se *Error
		if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
			t.Fatalf("canceled fit returned %v, want a 503 service error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("HardStop did not cancel the stalled fit")
	}
	waitFor(t, 5*time.Second, "the fit-queue slot to free", func() bool {
		st := svc.Stats()
		return st.FitQueueDepth == 0 && st.InFlightFits == 0
	})
	if got := svc.Stats().FitTimeouts; got != 0 {
		t.Errorf("fit_timeouts = %d after shutdown cancellation, want 0", got)
	}
}

// TestControllerSupervisedDrain walks the whole drain sequence over real
// TCP: readiness flips to draining, new predictions get 503 with
// Connection: close, observability stays up, the pprof listener closes,
// the in-flight request finishes inside the deadline, and the serving
// listener closes last.
func TestControllerSupervisedDrain(t *testing.T) {
	restore := faultinject.Enable(faultinject.NewInjector(chaosSeed(t), faultinject.Rule{
		Point: faultinject.PointServiceFit,
		Delay: 2 * time.Second, // the in-flight window the drain overlaps
		Count: 1,
	}))
	defer restore()

	svc := New(Config{})
	ctrl, err := StartController(svc, ControllerConfig{
		Addr:          "127.0.0.1:0",
		PprofAddr:     "127.0.0.1:0",
		PprofHandler:  http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(http.StatusOK) }),
		DrainTimeout:  30 * time.Second,
		HardStopGrace: time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ctrl.Addr()
	pprofURL := "http://" + ctrl.PprofAddr()

	if code, _ := getJSON(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", code)
	}
	if resp, err := http.Get(pprofURL + "/debug/pprof/"); err != nil {
		t.Fatalf("pprof before drain: %v", err)
	} else {
		resp.Body.Close()
	}

	// The stalled in-flight request the drain must wait for.
	inflight := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, base+"/predict", testRequest())
		inflight <- code
	}()
	waitFor(t, 5*time.Second, "the cold fit to start", func() bool {
		return svc.Stats().FitQueueDepth == 1
	})

	drained := make(chan error, 1)
	go func() { drained <- ctrl.Drain() }()
	waitFor(t, 5*time.Second, "draining to begin", func() bool { return svc.Draining() })

	// New work: refused with 503 + Connection: close.
	req := testRequest()
	resp, err := http.Post(base+"/predict", "application/json", jsonBody(t, req))
	if err != nil {
		t.Fatalf("predict during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("predict during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Connection") != "close" && !resp.Close {
		t.Error("drain rejection did not ask the client to close the connection")
	}
	// Readiness: 503 "draining". Observability: still served.
	rresp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", rresp.StatusCode)
	}
	if code, _ := getJSON(t, base+"/stats"); code != http.StatusOK {
		t.Errorf("/stats during drain = %d, want 200", code)
	}
	// The pprof listener is already closed.
	waitFor(t, 5*time.Second, "the pprof listener to close", func() bool {
		resp, err := http.Get(pprofURL + "/debug/pprof/")
		if err == nil {
			resp.Body.Close()
		}
		return err != nil
	})

	// The stalled request finishes inside the deadline; the drain follows.
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request during drain = %d, want 200", code)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain with the request finished in time: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("drain did not complete")
	}
	if st := svc.Stats(); !st.Draining || st.DrainRejected < 1 {
		t.Errorf("stats after drain: draining=%v drain_rejected=%d, want true/>=1", st.Draining, st.DrainRejected)
	}
	// The serving listener is closed; the serve loop reported a clean exit.
	if _, err := http.Get(base + "/stats"); err == nil {
		t.Error("serving listener still accepting after drain")
	}
	if err := <-ctrl.Err(); err != http.ErrServerClosed {
		t.Errorf("serve loop exited with %v, want http.ErrServerClosed", err)
	}
}

// TestControllerDrainDeadlineHardStops: when in-flight fits outlive the
// drain deadline, the controller cancels them, their requests answer 503,
// and Drain still returns (reporting the deadline) instead of hanging.
func TestControllerDrainDeadlineHardStops(t *testing.T) {
	restore := faultinject.Enable(faultinject.NewInjector(chaosSeed(t), faultinject.Rule{
		Point: faultinject.PointServiceFit,
		Delay: time.Minute,
		Count: 1,
	}))
	defer restore()

	svc := New(Config{})
	ctrl, err := StartController(svc, ControllerConfig{
		Addr:          "127.0.0.1:0",
		DrainTimeout:  200 * time.Millisecond,
		HardStopGrace: 5 * time.Second,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ctrl.Addr()

	inflight := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, base+"/predict", testRequest())
		inflight <- code
	}()
	waitFor(t, 5*time.Second, "the cold fit to start", func() bool {
		return svc.Stats().FitQueueDepth == 1
	})

	start := time.Now()
	err = ctrl.Drain()
	if err == nil {
		t.Fatal("drain past its deadline reported success")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("drain took %v despite a 200ms deadline", elapsed)
	}
	if code := <-inflight; code != http.StatusServiceUnavailable {
		t.Fatalf("request whose fit was canceled = %d, want 503", code)
	}
	waitFor(t, 5*time.Second, "the fit-queue slot to free", func() bool {
		return svc.Stats().FitQueueDepth == 0
	})
}

// TestReadinessDrainingOverridesProbes: draining answers NOT ready even
// when every dependency probe would pass.
func TestReadinessDrainingOverridesProbes(t *testing.T) {
	svc := New(Config{HistoryPath: filepath.Join(t.TempDir(), "h.jsonl")})
	if rd := svc.Readiness(); !rd.Ready {
		t.Fatalf("fresh service not ready: %+v", rd)
	}
	svc.BeginDrain()
	rd := svc.Readiness()
	if rd.Ready || rd.Status != "draining" {
		t.Fatalf("draining readiness = %+v, want not-ready/draining", rd)
	}
}

// TestRedirectHistoryDivertsCheckpoints: after a divert (unreadable
// warm-start file), checkpoints land at the new path and the original is
// untouched.
func TestRedirectHistoryDivertsCheckpoints(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "models.jsonl")
	if err := os.WriteFile(orig, []byte("{corrupt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{HistoryPath: orig})
	diverted := orig + ".recovered"
	svc.RedirectHistory(diverted)
	if _, err := svc.Predict(t.Context(), testRequest()); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(orig); err != nil || string(data) != "{corrupt\n" {
		t.Fatalf("original history modified after divert: %q err=%v", data, err)
	}
	records, _, err := history.LoadFile(diverted)
	if err != nil || len(records) != 1 {
		t.Fatalf("diverted log: %d records, err=%v, want 1 checkpoint", len(records), err)
	}
}
