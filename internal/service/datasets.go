// The dataset registry: named real-world graphs served from disk.
//
// Config.DatasetDir points at a directory of graph files; every file with
// a recognized extension is a dataset, addressable by its base name. A
// request's "dataset" field resolves against the registry first and falls
// back to the synthetic generator prefixes (LJ, Wiki, TW, UK), so real
// edge lists and the paper's stand-ins share one request shape, one graph
// cache and one model-key scheme.
//
//	<name>.snap           binary CSR snapshot (graph.WriteSnapshot) — preferred
//	<name>.txt, .el,
//	<name>.edges          plain-text edge list (graph.WriteEdgeList format)
//
// When both forms exist the snapshot wins: it loads in O(bytes) with no
// parsing. Loads go through the shared graph cache (LRU + single-flight),
// and a loaded graph is warmed (EnsureDegreeArtifacts) exactly like a
// generated one, so the first cold fit finds the BRJ seed ordering ready.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"time"

	"predict/internal/graph"
	"predict/internal/retry"
)

// snapshotExt is the extension the registry treats as a binary snapshot;
// edgeListExts are the plain-text forms, in resolution order.
var (
	snapshotExt  = ".snap"
	edgeListExts = []string{".txt", ".el", ".edges"}
)

// DatasetInfo describes one registry dataset (the GET /datasets payload).
type DatasetInfo struct {
	Name string `json:"name"`
	// Formats lists the on-disk forms present, snapshot first.
	Formats []string `json:"formats"`
	// SizeBytes is the size of the file a load would read (the snapshot
	// when present, the edge list otherwise).
	SizeBytes int64 `json:"size_bytes"`
	// Loaded reports whether the graph currently sits in the graph cache.
	Loaded bool `json:"loaded"`
	// Vertices/Edges/Weighted are filled when the graph is loaded.
	Vertices int    `json:"vertices,omitempty"`
	Edges    int64  `json:"edges,omitempty"`
	Weighted bool   `json:"weighted,omitempty"`
	Path     string `json:"path"`
}

// datasetKey namespaces registry graphs in the shared graph cache, apart
// from the "prefix|scale|seed" keys generated graphs use, and embeds the
// resolved file's identity (mtime + size, rsync-style): replacing the
// file on disk yields a new key, so the next load — and the next model
// fit, since the model key embeds this string — reads the new contents
// instead of serving a graph or model cached from the old ones. Stale
// versions age out of the LRU caches. The identity also guards history
// warm-up across restarts: models persisted against the old file cannot
// be served for the new one.
func datasetKey(name string, fi os.FileInfo) string {
	return fmt.Sprintf("dataset:%s@%d.%d", name, fi.ModTime().UnixNano(), fi.Size())
}

// validDatasetName rejects names that could escape DatasetDir or collide
// with path syntax; registry names are file base names, nothing more.
func validDatasetName(name string) bool {
	if name == "" || strings.HasPrefix(name, ".") {
		return false
	}
	return !strings.ContainsAny(name, `/\`)
}

// resolveDataset maps a dataset name to the file a load would read,
// returning its Stat (the identity datasetKey embeds). Snapshot beats
// edge list when both exist.
func (s *Service) resolveDataset(name string) (path string, fi os.FileInfo, snapshot, ok bool) {
	if s.cfg.DatasetDir == "" || !validDatasetName(name) {
		return "", nil, false, false
	}
	p := filepath.Join(s.cfg.DatasetDir, name+snapshotExt)
	if fi, err := os.Stat(p); err == nil && fi.Mode().IsRegular() {
		return p, fi, true, true
	}
	for _, ext := range edgeListExts {
		p := filepath.Join(s.cfg.DatasetDir, name+ext)
		if fi, err := os.Stat(p); err == nil && fi.Mode().IsRegular() {
			return p, fi, false, true
		}
	}
	return "", nil, false, false
}

// describeDataset builds the DatasetInfo for one name: which forms exist
// (snapshot first — the preference order resolveDataset loads by), the
// size of the file a load would read, and the cached graph's shape when
// it is loaded. ok is false when no recognized file exists for the name.
// datasetFormats lists the on-disk forms for a resolved dataset,
// preferred form first.
func (s *Service) datasetFormats(name string, snapshot bool) []string {
	if !snapshot {
		return []string{"edgelist"}
	}
	formats := []string{"snapshot"}
	for _, ext := range edgeListExts {
		if efi, err := os.Stat(filepath.Join(s.cfg.DatasetDir, name+ext)); err == nil && efi.Mode().IsRegular() {
			return append(formats, "edgelist")
		}
	}
	return formats
}

func (s *Service) describeDataset(name string) (DatasetInfo, bool) {
	path, fi, snapshot, ok := s.resolveDataset(name)
	if !ok {
		return DatasetInfo{}, false
	}
	info := DatasetInfo{
		Name:      name,
		Path:      path,
		SizeBytes: fi.Size(),
		Formats:   s.datasetFormats(name, snapshot),
	}
	// Loaded means "this version of the file is cached": a replaced file
	// reports unloaded until its new contents are read.
	if g, ok := s.graphs.peek(datasetKey(name, fi)); ok {
		info.Loaded = true
		info.Vertices = g.NumVertices()
		info.Edges = g.NumEdges()
		info.Weighted = g.HasWeights()
	}
	return info, true
}

// Datasets scans DatasetDir and reports every registered dataset, sorted
// by name. Graphs already in the cache carry their vertex/edge counts.
func (s *Service) Datasets() ([]DatasetInfo, error) {
	entries, err := os.ReadDir(s.cfg.DatasetDir)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	out := make([]DatasetInfo, 0, len(entries))
	for _, e := range entries {
		// No e.Type() filter here: symlinked dataset files (the natural way
		// to mount a multi-GB graph without copying) must list. describeDataset
		// stats through the link and drops anything that is not a regular file.
		ext := filepath.Ext(e.Name())
		name := strings.TrimSuffix(e.Name(), ext)
		if seen[name] || !validDatasetName(name) {
			continue
		}
		if ext != snapshotExt && !slices.Contains(edgeListExts, ext) {
			continue
		}
		seen[name] = true
		if info, ok := s.describeDataset(name); ok {
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ioRetryPolicy is the dataset I/O transient-failure policy, shaped by
// Config.Retry* and counting attempts into /stats io_retries.
func (s *Service) ioRetryPolicy() retry.Policy {
	return retry.Policy{
		Attempts:  s.cfg.RetryAttempts,
		BaseDelay: s.cfg.RetryBaseDelay,
		MaxDelay:  s.cfg.RetryMaxDelay,
		OnRetry:   func(int, error, time.Duration) { s.ioRetries.Add(1) },
	}
}

// loadDataset loads (or returns the cached) registry graph for one file
// version via the shared graph cache: concurrent loads of the same
// dataset share one read, and the loaded graph is artifact-warmed like a
// generated one. key is the datasetKey of the resolved file.
func (s *Service) loadDataset(ctx context.Context, name, path, key string) (*graph.Graph, bool, error) {
	return s.graphs.get(ctx, key, func() (*graph.Graph, error) {
		var g *graph.Graph
		// Transient I/O failures (a briefly erroring disk, an interrupted
		// syscall) retry under jittered backoff instead of failing a load
		// the next attempt would have served; permanent errors (corrupt
		// snapshot, not-found) fail immediately — see retry.IsTransient.
		err := s.ioRetryPolicy().Do(ctx, retry.IsTransient, func() error {
			var loadErr error
			if s.cfg.MmapDatasets && filepath.Ext(path) == snapshotExt {
				// Zero-copy generation: the graph aliases the mmap'd file, the
				// cache holds only slice headers, and eviction lets the
				// finalizer unmap. Falls back to copy-in where mmap is
				// unavailable (OpenSnapshot handles ErrMmapUnsupported).
				g, _, loadErr = graph.OpenSnapshot(path)
			} else {
				// Parse on the service's shared fit pool: N concurrent first
				// touches of N distinct datasets stay within one parallelism
				// budget instead of stampeding N*GOMAXPROCS parser goroutines —
				// the same discipline cold fits follow.
				g, loadErr = graph.LoadFile(path, graph.LoadOptions{Pool: s.fitPool})
			}
			return loadErr
		})
		if err != nil {
			// The request was valid — the name resolved; a file that then
			// fails to load (corrupt snapshot, I/O error, permissions) is a
			// server-side fault, not a client error.
			return nil, &Error{Status: 500, Msg: fmt.Sprintf("service: loading dataset %q: %v", name, err)}
		}
		g.EnsureDegreeArtifacts()
		return g, nil
	})
}

// LoadDataset resolves and loads a registry dataset by name, returning
// its description. The boolean reports whether the graph was already
// cached (the POST /datasets/{name}/load "already_loaded" field).
func (s *Service) LoadDataset(ctx context.Context, name string) (*DatasetInfo, bool, error) {
	if s.cfg.DatasetDir == "" {
		return nil, false, &Error{Status: 404, Msg: "service: no dataset directory configured"}
	}
	path, fi, snapshot, ok := s.resolveDataset(name)
	if !ok {
		return nil, false, &Error{Status: 404, Msg: fmt.Sprintf("service: unknown dataset %q", name)}
	}
	g, cached, err := s.loadDataset(ctx, name, path, datasetKey(name, fi))
	if err != nil {
		if ctx.Err() != nil {
			return nil, false, &Error{Status: 504, Msg: fmt.Sprintf(
				"service: request timed out loading dataset %s", name)}
		}
		var se *Error
		if errors.As(err, &se) {
			return nil, false, se
		}
		return nil, false, &Error{Status: 500, Msg: err.Error()}
	}
	// The response describes the version that was resolved and loaded —
	// no re-resolve, so a file replaced mid-request cannot mix two
	// versions' metadata in one answer.
	info := &DatasetInfo{
		Name:      name,
		Path:      path,
		SizeBytes: fi.Size(),
		Formats:   s.datasetFormats(name, snapshot),
		Loaded:    true,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Weighted:  g.HasWeights(),
	}
	return info, cached, nil
}
