// Lifecycle supervision: the Controller owns the serving listener, the
// optional pprof listener, and the supervised drain a SIGTERM triggers.
//
// The drain sequence is crash-only in spirit — every stage is safe to be
// interrupted by a SIGKILL, because continuous checkpointing already made
// each fitted model durable at fit time:
//
//  1. BeginDrain: /readyz flips to 503 "draining" so pollers pull the
//     process out of rotation; new prediction work is refused with 503 +
//     Connection: close; in-flight work keeps running.
//  2. The pprof listener closes — profiling must never hold a drain open.
//  3. http.Server.Shutdown waits for in-flight requests under the drain
//     deadline.
//  4. If the deadline passes with work still in flight, HardStop cancels
//     the lifecycle context: detached cold fits abort, release their pool
//     slots, and answer their waiting requests 503; a short grace period
//     lets those responses flush before the connections close.
package service

import (
	"context"
	"log"
	"net"
	"net/http"
	"time"
)

// ControllerConfig parameterizes a Controller.
type ControllerConfig struct {
	// Addr is the serving listen address. ":0" and "127.0.0.1:0" work; the
	// bound address is logged ("listening on ...") and exposed via Addr(),
	// which is how the crash harness finds a free-port server.
	Addr string
	// PprofAddr, when non-empty, serves PprofHandler on its own listener —
	// never on the serving address. Closed first during drain.
	PprofAddr string
	// PprofHandler is the handler for PprofAddr (callers pass
	// http.DefaultServeMux after blank-importing net/http/pprof, keeping
	// the profiling registration out of this package).
	PprofHandler http.Handler
	// DrainTimeout bounds how long a drain waits for in-flight requests
	// before canceling their fits; zero selects 10s.
	DrainTimeout time.Duration
	// HardStopGrace bounds how long the post-HardStop 503 responses get to
	// flush before connections are force-closed; zero selects 2s.
	HardStopGrace time.Duration
	// Logf receives progress lines; nil selects log.Printf.
	Logf func(format string, args ...any)
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.HardStopGrace <= 0 {
		c.HardStopGrace = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Controller runs a Service's HTTP listeners and supervises their
// shutdown. Create with StartController, wait on Err, stop with Drain.
type Controller struct {
	svc      *Service
	cfg      ControllerConfig
	srv      *http.Server
	ln       net.Listener
	pprofSrv *http.Server
	pprofLn  net.Listener
	errc     chan error
}

// StartController binds the listeners and begins serving. The returned
// controller is already live: Addr() is routable and Err() will deliver
// any serve failure. A pprof listener that cannot bind is logged and
// skipped — profiling must not keep the service down.
func StartController(svc *Service, cfg ControllerConfig) (*Controller, error) {
	cfg = cfg.withDefaults()
	c := &Controller{
		svc:  svc,
		cfg:  cfg,
		srv:  &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 10 * time.Second},
		errc: make(chan error, 1),
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	c.ln = ln
	cfg.Logf("listening on %s", ln.Addr())
	go func() { c.errc <- c.srv.Serve(ln) }()

	if cfg.PprofAddr != "" && cfg.PprofHandler != nil {
		pln, err := net.Listen("tcp", cfg.PprofAddr)
		if err != nil {
			cfg.Logf("pprof listener: %v (profiling disabled)", err)
		} else {
			c.pprofSrv = &http.Server{Handler: cfg.PprofHandler, ReadHeaderTimeout: 10 * time.Second}
			c.pprofLn = pln
			cfg.Logf("pprof listening on %s", pln.Addr())
			go func() {
				if err := c.pprofSrv.Serve(pln); err != nil && err != http.ErrServerClosed {
					cfg.Logf("pprof listener: %v", err)
				}
			}()
		}
	}
	return c, nil
}

// Addr is the bound serving address (resolves ":0" to the real port).
func (c *Controller) Addr() string { return c.ln.Addr().String() }

// PprofAddr is the bound profiling address, "" when profiling is off or
// its listener failed to bind.
func (c *Controller) PprofAddr() string {
	if c.pprofLn == nil {
		return ""
	}
	return c.pprofLn.Addr().String()
}

// Err delivers the serve loop's terminal error — http.ErrServerClosed
// after a drain, anything else is a real failure.
func (c *Controller) Err() <-chan error { return c.errc }

// Drain performs the supervised shutdown sequence described in the
// package comment. It returns nil when every in-flight request finished
// within the deadline, and context.DeadlineExceeded when HardStop had to
// cancel fits — callers log the difference but exit either way.
//
// The listener stays open for the whole drain window: new prediction work
// gets the application-level 503 + Connection: close (a TCP refusal would
// look like an outage, not a drain, to load balancers) and pollers keep
// reading /readyz and /stats until the last in-flight request is done.
// Only then does the listener close.
func (c *Controller) Drain() error {
	c.svc.BeginDrain()
	c.cfg.Logf("draining: refusing new work, waiting up to %s for in-flight requests", c.cfg.DrainTimeout)
	if c.pprofSrv != nil {
		// Profiling sessions must never hold a drain open, and a closed
		// pprof port is a cheap signal the process is on its way out.
		c.pprofSrv.Close()
	}
	deadline := time.Now().Add(c.cfg.DrainTimeout)
	for c.svc.ActiveWork() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	var err error
	if c.svc.ActiveWork() > 0 {
		// The deadline passed with work still in flight — almost always
		// requests waiting on cold fits. Cancel the fits through the
		// lifecycle context so they release their pool slots and answer
		// 503; the grace below lets those responses flush.
		c.cfg.Logf("drain deadline passed with %d request(s) in flight: canceling their fits", c.svc.ActiveWork())
		c.svc.HardStop()
		err = context.DeadlineExceeded
	}
	grace, cancel := context.WithTimeout(context.Background(), c.cfg.HardStopGrace)
	defer cancel()
	if serr := c.srv.Shutdown(grace); serr != nil {
		c.srv.Close()
	}
	if err == nil {
		c.cfg.Logf("drain complete: all in-flight requests finished")
	}
	return err
}
