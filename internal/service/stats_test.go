package service

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestStatsEndpoint drives one cold and one warm request through the
// service and checks the /stats payload: hit ratio, fit counters, and the
// shared pool's configuration.
func TestStatsEndpoint(t *testing.T) {
	svc, server := newTestServer(t, Config{FitParallelism: 3})
	ctx := context.Background()

	if _, err := svc.Predict(ctx, testRequest()); err != nil {
		t.Fatalf("cold predict: %v", err)
	}
	if _, err := svc.Predict(ctx, testRequest()); err != nil {
		t.Fatalf("warm predict: %v", err)
	}

	resp, err := http.Get(server.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", resp.StatusCode)
	}
	var body struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Stats         Stats   `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}

	st := body.Stats
	if st.Fits != 1 {
		t.Errorf("fits = %d, want 1", st.Fits)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.HitRatio != 0.5 {
		t.Errorf("hit_ratio = %v, want 0.5", st.HitRatio)
	}
	if st.PoolSize != 3 {
		t.Errorf("pool_size = %d, want the configured FitParallelism 3", st.PoolSize)
	}
	if st.InFlightFits != 0 || st.PoolInFlight != 0 || st.PoolDepth != 0 {
		t.Errorf("idle service reports in-flight work: %+v", st)
	}
	if st.FitTimeouts != 0 {
		t.Errorf("fit_timeouts = %d, want 0", st.FitTimeouts)
	}

	if code := mustStatus(t, http.MethodPost, server.URL+"/stats"); code != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats = %d, want 405", code)
	}
}

// TestFitTimeoutBoundsColdPath configures an unmeetable per-fit deadline
// and verifies the cold path fails with the deadline error instead of
// hanging, and that the timeout counter records it.
func TestFitTimeoutBoundsColdPath(t *testing.T) {
	svc := New(Config{FitTimeout: time.Nanosecond})
	_, err := svc.Predict(context.Background(), testRequest())
	if err == nil {
		t.Fatal("predict under 1ns fit deadline succeeded")
	}
	if st := svc.Stats(); st.FitTimeouts != 1 {
		t.Errorf("fit_timeouts = %d, want 1", st.FitTimeouts)
	}
}

func mustStatus(t *testing.T, method, url string) int {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
