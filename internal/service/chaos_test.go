// The chaos suite: seeded fault schedules replayed against the full
// service, under -race in CI across several fixed seeds.
//
// Every test reads its seed from PREDICT_CHAOS_SEED (default 1), so a CI
// failure names the exact schedule that produced it and one env var
// reproduces it locally. The suite holds the three robustness stories the
// failure-handling layer promises: a torn history tail cannot disable
// warm-start, a failing model trips its breaker (fast 503s, no fit-pool
// consumption) and recovers through a half-open probe, and readiness
// degrades and recovers while warm cache hits keep serving.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"predict/internal/faultinject"
	"predict/internal/graph"
	"predict/internal/history"
	"predict/internal/retry"
)

// chaosSeed reads the schedule seed from PREDICT_CHAOS_SEED (default 1).
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	v := os.Getenv("PREDICT_CHAOS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("PREDICT_CHAOS_SEED=%q: %v", v, err)
	}
	return seed
}

// getJSON fetches url and returns the status and decoded body.
func getJSON(t *testing.T, url string) (int, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

// TestChaosBreakerTripsAndRecovers drives the circuit breaker through its
// whole state machine over HTTP: consecutive injected fit failures trip
// it (503 + Retry-After, no fit consumed while open), a failed half-open
// probe reopens it, and a successful probe closes it again.
func TestChaosBreakerTripsAndRecovers(t *testing.T) {
	const cooldown = 150 * time.Millisecond
	errFit := errors.New("injected fit failure")
	// Three injected failures: two trip the breaker, the third fails the
	// first half-open probe (reopening it); the fourth attempt succeeds.
	in := faultinject.NewInjector(chaosSeed(t), faultinject.Rule{
		Point: faultinject.PointServiceFit,
		From:  1, Count: 3,
		Err: errFit,
	})
	restore := faultinject.Enable(in)
	defer restore()

	svc, server := newTestServer(t, Config{
		FitBreakerThreshold: 2,
		FitBreakerCooldown:  cooldown,
	})

	post := func() (int, http.Header, map[string]json.RawMessage) {
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(testRequest()); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(server.URL+"/predict", "application/json", &body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header, out
	}

	// Two consecutive fit failures: each is a real (500) failure and
	// together they trip the breaker.
	for i := 1; i <= 2; i++ {
		if status, _, raw := post(); status != http.StatusInternalServerError {
			t.Fatalf("failure %d: HTTP %d (%v), want 500", i, status, raw)
		}
	}
	if got := in.Hits(faultinject.PointServiceFit); got != 2 {
		t.Fatalf("fit attempts after trip = %d, want 2", got)
	}

	// Open: immediate 503 with a Retry-After hint, and crucially no new
	// fit attempt — the breaker answers before the fit gate.
	status, hdr, raw := post()
	if status != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: HTTP %d (%v), want 503", status, raw)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("open breaker response missing Retry-After header")
	}
	st := svc.Stats()
	if got := in.Hits(faultinject.PointServiceFit); got != 2 {
		t.Fatalf("open breaker consumed a fit attempt: %d, want 2", got)
	}
	if st.FitQueueDepth != 0 {
		t.Fatalf("open breaker holds a fit-queue slot: depth = %d", st.FitQueueDepth)
	}
	if st.BreakerTrips != 1 || st.BreakerOpen != 1 || st.BreakerFastFails < 1 {
		t.Fatalf("breaker stats after trip: %+v", st)
	}

	// Half-open probe #1: the third injected failure reopens the breaker.
	time.Sleep(cooldown + 20*time.Millisecond)
	if status, _, _ := post(); status != http.StatusInternalServerError {
		t.Fatalf("failed probe: HTTP %d, want 500", status)
	}
	if status, _, _ := post(); status != http.StatusServiceUnavailable {
		t.Fatalf("after failed probe the breaker must be open again, got HTTP %d", status)
	}
	if got := svc.Stats().BreakerTrips; got != 2 {
		t.Fatalf("trips after failed probe = %d, want 2", got)
	}

	// Half-open probe #2: the schedule is exhausted, the fit succeeds, the
	// breaker closes and stays closed.
	time.Sleep(cooldown + 20*time.Millisecond)
	status, _, raw = post()
	if status != http.StatusOK {
		t.Fatalf("successful probe: HTTP %d (%v), want 200", status, raw)
	}
	if pr := decodePrediction(t, raw); pr.CacheHit {
		t.Fatal("probe fit reported a cache hit")
	}
	st = svc.Stats()
	if st.BreakerOpen != 0 {
		t.Fatalf("breaker still open after successful probe: %+v", st)
	}
	// Warm traffic flows normally again.
	if status, _, raw := post(); status != http.StatusOK || !decodePrediction(t, raw).CacheHit {
		t.Fatalf("warm request after recovery: HTTP %d, %v", status, raw)
	}
	if got := in.Fired(faultinject.PointServiceFit); got != 3 {
		t.Fatalf("injected faults fired = %d, want 3 (%s)", got, in)
	}
}

// TestChaosTornHistoryWarmStart crashes an append mid-record (for real,
// on disk) and shows warm-start survives: the complete records refit, the
// torn tail is counted, and the warmed model serves a cache hit.
func TestChaosTornHistoryWarmStart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.jsonl")

	svc1 := New(Config{})
	if _, err := svc1.Predict(context.Background(), testRequest()); err != nil {
		t.Fatal(err)
	}
	if n, err := svc1.SaveHistory(path); err != nil || n != 1 {
		t.Fatalf("SaveHistory: n=%d err=%v", n, err)
	}

	// Crash mid-append: a fault schedule tears the next record partway
	// through its payload.
	func() {
		restore := faultinject.Enable(faultinject.NewInjector(chaosSeed(t), faultinject.Rule{
			Point:        faultinject.PointHistoryAppend,
			Err:          errors.New("injected crash"),
			PartialBytes: 37,
		}))
		defer restore()
		rec := svc1.models.snapshot()[0].val.Record("torn-key", "torn-dataset")
		if err := history.AppendFile(path, rec); err == nil {
			t.Fatal("torn append reported success")
		}
	}()

	svc2 := New(Config{})
	warmed, skipped, err := svc2.WarmFromHistory(path)
	if err != nil {
		t.Fatalf("WarmFromHistory on torn file: %v", err)
	}
	if warmed != 1 || skipped != 0 {
		t.Fatalf("warmed=%d skipped=%d, want 1, 0", warmed, skipped)
	}
	if got := svc2.Stats().TornRecovered; got != 1 {
		t.Fatalf("torn_records_recovered = %d, want 1", got)
	}
	resp, err := svc2.Predict(context.Background(), testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("warm-started model missed the cache")
	}
	if got := svc2.Stats().Fits; got != 0 {
		t.Fatalf("warm start ran %d fits, want 0", got)
	}
}

// TestChaosWarmStartTruncationSweep truncates a saved history at a
// seed-phased sweep of byte offsets and asserts warm-start NEVER fails:
// whatever the crash point, the service comes up with every complete
// record warmed and the torn tail (when there is one) counted.
func TestChaosWarmStartTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "history.jsonl")

	svc1 := New(Config{})
	if _, err := svc1.Predict(context.Background(), testRequest()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.SaveHistory(full); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Stride the sweep (prime step) with a seed-dependent phase: across
	// the CI seed matrix the offsets tile the file densely, while one run
	// stays fast. Boundary offsets always run.
	const stride = 17
	seed := chaosSeed(t)
	offsets := []int{0, 1, len(data) - 1, len(data)}
	for off := int(seed % stride); off < len(data); off += stride {
		offsets = append(offsets, off)
	}

	path := filepath.Join(dir, "truncated.jsonl")
	for _, off := range offsets {
		prefix := data[:off]
		if err := os.WriteFile(path, prefix, 0o644); err != nil {
			t.Fatal(err)
		}
		svc := New(Config{})
		warmed, skipped, err := svc.WarmFromHistory(path)
		if err != nil {
			t.Fatalf("offset %d: WarmFromHistory failed: %v (truncation must never be fatal)", off, err)
		}
		// Oracle: newline-terminated records are complete; a non-empty
		// remainder either IS the final record (valid JSON, missing only
		// its newline) or is a torn tail.
		complete := bytes.Count(prefix, []byte{'\n'})
		remainder := prefix
		if i := bytes.LastIndexByte(prefix, '\n'); i >= 0 {
			remainder = prefix[i+1:]
		}
		want := complete
		wantTorn := int64(0)
		if len(remainder) > 0 {
			if json.Valid(remainder) {
				want++
			} else {
				wantTorn = 1
			}
		}
		if warmed != want || skipped != 0 {
			t.Fatalf("offset %d: warmed=%d skipped=%d, want %d, 0", off, warmed, skipped, want)
		}
		if got := svc.Stats().TornRecovered; got != wantTorn {
			t.Fatalf("offset %d: torn_records_recovered = %d, want %d", off, got, wantTorn)
		}
	}
}

// TestChaosFlakyDatasetLoadRetries injects transient faults (with
// latency) into the registry load path and shows the backoff policy rides
// them out — and that permanent errors are NOT retried.
func TestChaosFlakyDatasetLoadRetries(t *testing.T) {
	dir := t.TempDir()
	if err := graph.WriteSnapshotFile(filepath.Join(dir, "social.snap"), testWikiGraph(t)); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		DatasetDir:     dir,
		RetryAttempts:  4,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
	}

	// Two transient failures, then success: the load must succeed on the
	// third attempt, having recorded two retries.
	in := faultinject.NewInjector(chaosSeed(t), faultinject.Rule{
		Point: faultinject.PointGraphLoadFile,
		From:  1, Count: 2,
		Err:   retry.Transient(errors.New("injected flaky read")),
		Delay: time.Millisecond,
	})
	restore := faultinject.Enable(in)
	svc := New(cfg)
	_, cached, err := svc.LoadDataset(context.Background(), "social")
	restore()
	if err != nil {
		t.Fatalf("flaky load did not recover: %v", err)
	}
	if cached {
		t.Fatal("first load reported already-cached")
	}
	if got := svc.Stats().IORetries; got != 2 {
		t.Fatalf("io_retries = %d, want 2", got)
	}
	if got := in.Hits(faultinject.PointGraphLoadFile); got != 3 {
		t.Fatalf("load attempts = %d, want 3 (%s)", got, in)
	}

	// Persistent transient failure: the policy gives up after its attempt
	// budget instead of retrying forever.
	in = faultinject.NewInjector(chaosSeed(t), faultinject.Rule{
		Point: faultinject.PointGraphLoadFile,
		Err:   retry.Transient(errors.New("injected dead disk")),
	})
	restore = faultinject.Enable(in)
	svc = New(cfg)
	_, _, err = svc.LoadDataset(context.Background(), "social")
	restore()
	if err == nil {
		t.Fatal("persistently failing load reported success")
	}
	var se *Error
	if !errors.As(err, &se) || se.Status != 500 {
		t.Fatalf("persistent failure error = %v, want a 500 service error", err)
	}
	if got := in.Hits(faultinject.PointGraphLoadFile); got != 4 {
		t.Fatalf("load attempts = %d, want the full budget of 4 (%s)", got, in)
	}

	// Permanent (non-transient) failure: exactly one attempt.
	in = faultinject.NewInjector(chaosSeed(t), faultinject.Rule{
		Point: faultinject.PointGraphLoadFile,
		Err:   errors.New("injected corrupt file"),
	})
	restore = faultinject.Enable(in)
	svc = New(cfg)
	_, _, err = svc.LoadDataset(context.Background(), "social")
	restore()
	if err == nil {
		t.Fatal("corrupt load reported success")
	}
	if got := in.Hits(faultinject.PointGraphLoadFile); got != 1 {
		t.Fatalf("permanent error retried: %d attempts, want 1", got)
	}
	if got := svc.Stats().IORetries; got != 0 {
		t.Fatalf("io_retries = %d for a permanent error, want 0", got)
	}
}

// TestChaosReadinessDegradesAndRecovers breaks the service's dependencies
// while it is serving warm traffic: /readyz flips to 503 (and /healthz
// reports degraded, still 200 — liveness must not get the process
// killed), warm /predict hits keep answering 200, and restoring the
// dependencies flips readiness back without a restart.
func TestChaosReadinessDegradesAndRecovers(t *testing.T) {
	base := t.TempDir()
	dataDir := filepath.Join(base, "data")
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteSnapshotFile(filepath.Join(dataDir, "social.snap"), testWikiGraph(t)); err != nil {
		t.Fatal(err)
	}
	histPath := filepath.Join(dataDir, "history.jsonl")
	svc, server := newTestServer(t, Config{DatasetDir: dataDir, HistoryPath: histPath})

	// Warm a generator-backed model (no disk dependency on the warm path).
	if status, raw := postJSON(t, server.URL+"/predict", testRequest()); status != http.StatusOK {
		t.Fatalf("cold predict: HTTP %d (%v)", status, raw)
	}

	// Healthy: ready, ok.
	if status, raw := getJSON(t, server.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("healthy /readyz: HTTP %d (%v)", status, raw)
	}
	status, raw := getJSON(t, server.URL+"/healthz")
	if status != http.StatusOK || string(raw["status"]) != `"ok"` {
		t.Fatalf("healthy /healthz: HTTP %d status %s", status, raw["status"])
	}

	// Break both dependencies at once: the dataset dir (with the history
	// file inside it) disappears, as a bad volume would.
	if err := os.RemoveAll(dataDir); err != nil {
		t.Fatal(err)
	}
	status, raw = getJSON(t, server.URL+"/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz: HTTP %d (%v), want 503", status, raw)
	}
	var rd Readiness
	if err := json.Unmarshal(mustMarshal(t, raw), &rd); err != nil {
		t.Fatal(err)
	}
	if rd.Ready || rd.Status != "degraded" || len(rd.Reasons) != 2 {
		t.Fatalf("degraded readiness payload: %+v (want both probes failing)", rd)
	}
	// Liveness stays 200 — restarting would destroy the warm cache that
	// is still serving — but the status field tells the truth.
	status, raw = getJSON(t, server.URL+"/healthz")
	if status != http.StatusOK || string(raw["status"]) != `"degraded"` {
		t.Fatalf("degraded /healthz: HTTP %d status %s, want 200 + degraded", status, raw["status"])
	}
	// Warm traffic keeps flowing through the degraded state.
	status, praw := postJSON(t, server.URL+"/predict", testRequest())
	if status != http.StatusOK || !decodePrediction(t, praw).CacheHit {
		t.Fatalf("warm predict while degraded: HTTP %d (%v), want 200 cache hit", status, praw)
	}
	if got := svc.Stats().Fits; got != 1 {
		t.Fatalf("degraded warm serving ran %d fits, want 1 (the original cold fit)", got)
	}

	// The operator restores the volume: readiness flips back by itself.
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if status, raw := getJSON(t, server.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("restored /readyz: HTTP %d (%v)", status, raw)
	}
	if status, raw := getJSON(t, server.URL+"/healthz"); status != http.StatusOK || string(raw["status"]) != `"ok"` {
		t.Fatalf("restored /healthz: HTTP %d status %s", status, raw["status"])
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
