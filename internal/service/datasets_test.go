package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predict/internal/gen"
	"predict/internal/graph"
)

// newRegistryServer builds a dataset directory holding the same tiny
// graph as both a text edge list ("web") and a binary snapshot ("social",
// plus a "web.snap" shadowing check via "both"), and serves it.
func testWikiGraph(t *testing.T) *graph.Graph {
	t.Helper()
	ds, err := gen.ByPrefix("Wiki")
	if err != nil {
		t.Fatal(err)
	}
	return ds.Generate(0.02, 1)
}

func newRegistryServer(t *testing.T) (*Service, *httptest.Server, *graph.Graph) {
	t.Helper()
	dir := t.TempDir()
	g := testWikiGraph(t)

	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "web.txt"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteSnapshotFile(filepath.Join(dir, "social.snap"), g); err != nil {
		t.Fatal(err)
	}
	// "both" exists in both forms; the snapshot must win.
	if err := os.WriteFile(filepath.Join(dir, "both.txt"), []byte("this is not a valid edge list\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteSnapshotFile(filepath.Join(dir, "both.snap"), g); err != nil {
		t.Fatal(err)
	}
	// Unrecognized extensions are not datasets.
	if err := os.WriteFile(filepath.Join(dir, "notes.md"), []byte("readme"), 0o644); err != nil {
		t.Fatal(err)
	}

	svc := New(Config{DatasetDir: dir})
	server := httptest.NewServer(svc.Handler())
	t.Cleanup(server.Close)
	return svc, server, g
}

func getJSONInto(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func postJSONInto(t *testing.T, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestDatasetsEndpointLists(t *testing.T) {
	_, server, _ := newRegistryServer(t)
	var got struct {
		Dir      string        `json:"dir"`
		Datasets []DatasetInfo `json:"datasets"`
		Count    int           `json:"count"`
	}
	if code := getJSONInto(t, server.URL+"/datasets", &got); code != http.StatusOK {
		t.Fatalf("GET /datasets = %d", code)
	}
	if got.Count != 3 || len(got.Datasets) != 3 {
		t.Fatalf("count = %d (%d entries), want 3", got.Count, len(got.Datasets))
	}
	// Sorted by name: both, social, web.
	names := []string{got.Datasets[0].Name, got.Datasets[1].Name, got.Datasets[2].Name}
	want := []string{"both", "social", "web"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	both := got.Datasets[0]
	if len(both.Formats) != 2 || both.Formats[0] != "snapshot" || both.Formats[1] != "edgelist" {
		t.Errorf("both.Formats = %v, want [snapshot edgelist]", both.Formats)
	}
	if both.Loaded {
		t.Error("both reported loaded before any load")
	}
	if both.SizeBytes == 0 {
		t.Error("both.SizeBytes = 0, want the snapshot size")
	}
}

func TestDatasetLoadEndpoint(t *testing.T) {
	_, server, g := newRegistryServer(t)
	var got struct {
		Dataset       DatasetInfo `json:"dataset"`
		AlreadyLoaded bool        `json:"already_loaded"`
	}
	if code := postJSONInto(t, server.URL+"/datasets/web/load", nil, &got); code != http.StatusOK {
		t.Fatalf("POST /datasets/web/load = %d", code)
	}
	if got.AlreadyLoaded {
		t.Error("first load reported already_loaded")
	}
	if got.Dataset.Vertices != g.NumVertices() || got.Dataset.Edges != g.NumEdges() {
		t.Errorf("loaded %d vertices / %d edges, want %d / %d",
			got.Dataset.Vertices, got.Dataset.Edges, g.NumVertices(), g.NumEdges())
	}
	if len(got.Dataset.Formats) != 1 || got.Dataset.Formats[0] != "edgelist" {
		t.Errorf("Formats = %v, want [edgelist]", got.Dataset.Formats)
	}
	if code := postJSONInto(t, server.URL+"/datasets/web/load", nil, &got); code != http.StatusOK {
		t.Fatalf("second POST = %d", code)
	}
	if !got.AlreadyLoaded {
		t.Error("second load not reported as cached")
	}

	// The list now shows it loaded.
	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	getJSONInto(t, server.URL+"/datasets", &list)
	for _, d := range list.Datasets {
		if d.Name == "web" && (!d.Loaded || d.Vertices != g.NumVertices()) {
			t.Errorf("web after load: %+v", d)
		}
	}

	// Unknown names and malformed paths 404.
	if code := postJSONInto(t, server.URL+"/datasets/nosuch/load", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown dataset load = %d, want 404", code)
	}
	if code := postJSONInto(t, server.URL+"/datasets/a/b/load", nil, nil); code != http.StatusNotFound {
		t.Errorf("nested name load = %d, want 404", code)
	}
	if code := postJSONInto(t, server.URL+"/datasets/..%2Fweb/load", nil, nil); code == http.StatusOK {
		t.Error("path-traversal name loaded")
	}
}

func TestDatasetSnapshotPreferredOverEdgeList(t *testing.T) {
	_, server, g := newRegistryServer(t)
	// "both.txt" is deliberately invalid; a successful load proves the
	// snapshot was chosen.
	var got struct {
		Dataset DatasetInfo `json:"dataset"`
	}
	if code := postJSONInto(t, server.URL+"/datasets/both/load", nil, &got); code != http.StatusOK {
		t.Fatalf("POST /datasets/both/load = %d", code)
	}
	if got.Dataset.Formats[0] != "snapshot" {
		t.Errorf("Formats = %v, want snapshot preferred", got.Dataset.Formats)
	}
	if got.Dataset.Vertices != g.NumVertices() {
		t.Errorf("vertices = %d, want %d", got.Dataset.Vertices, g.NumVertices())
	}
}

func TestPredictOnRegistryDataset(t *testing.T) {
	_, server, _ := newRegistryServer(t)
	req := PredictRequest{Dataset: "social", Algorithm: "CC", TrainingRatios: []float64{0.1, 0.2}}
	var resp PredictResponse
	if code := postJSONInto(t, server.URL+"/predict", req, &resp); code != http.StatusOK {
		t.Fatalf("POST /predict on registry dataset = %d", code)
	}
	if resp.Iterations <= 0 || resp.CacheHit {
		t.Errorf("cold registry prediction: iterations=%d hit=%v", resp.Iterations, resp.CacheHit)
	}
	// Second request hits the model cache.
	if code := postJSONInto(t, server.URL+"/predict", req, &resp); code != http.StatusOK {
		t.Fatal("second predict failed")
	}
	if !resp.CacheHit {
		t.Error("repeat registry prediction missed the model cache")
	}
	// Generator prefixes still work beside the registry.
	genReq := PredictRequest{Dataset: "Wiki", Scale: 0.02, Algorithm: "CC", TrainingRatios: []float64{0.1, 0.2}}
	if code := postJSONInto(t, server.URL+"/predict", genReq, &resp); code != http.StatusOK {
		t.Error("generator dataset no longer served")
	}
	// Generator knobs are rejected on registry datasets.
	bad := req
	bad.Scale = 0.5
	if code := postJSONInto(t, server.URL+"/predict", bad, nil); code != http.StatusBadRequest {
		t.Errorf("scale on registry dataset = %d, want 400", code)
	}
	bad = req
	bad.GraphSeed = 7
	if code := postJSONInto(t, server.URL+"/predict", bad, nil); code != http.StatusBadRequest {
		t.Errorf("graph_seed on registry dataset = %d, want 400", code)
	}
	// Unknown names still 400 with the registry hint.
	unknown := PredictRequest{Dataset: "XX", Algorithm: "PR"}
	var errBody map[string]string
	if code := postJSONInto(t, server.URL+"/predict", unknown, &errBody); code != http.StatusBadRequest {
		t.Errorf("unknown dataset = %d, want 400", code)
	}
}

func TestLoadDatasetDirectAndConcurrent(t *testing.T) {
	svc, _, g := newRegistryServer(t)
	const clients = 8
	results := make([]*DatasetInfo, clients)
	errs := make([]error, clients)
	done := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			info, _, err := svc.LoadDataset(context.Background(), "social")
			results[i], errs[i] = info, err
			done <- i
		}(i)
	}
	for i := 0; i < clients; i++ {
		<-done
	}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if results[i].Vertices != g.NumVertices() {
			t.Fatalf("client %d saw %d vertices, want %d", i, results[i].Vertices, g.NumVertices())
		}
	}
	// All clients shared one cache entry.
	st := svc.Stats()
	if st.Graphs != 1 {
		t.Errorf("graphs cached = %d, want 1", st.Graphs)
	}
}

// TestDatasetsListsSymlinkedFiles: symlinking a large graph into the
// dataset directory (instead of copying it) must produce a dataset that
// both lists and loads.
func TestDatasetsListsSymlinkedFiles(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "real-file")
	if err := graph.WriteSnapshotFile(target, testWikiGraph(t)); err != nil {
		t.Fatal(err)
	}
	if err := os.Symlink(target, filepath.Join(dir, "linked.snap")); err != nil {
		t.Skipf("symlinks unavailable: %v", err)
	}
	// A dangling symlink must not list.
	if err := os.Symlink(filepath.Join(dir, "gone"), filepath.Join(dir, "dangling.snap")); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{DatasetDir: dir})
	infos, err := svc.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "linked" {
		t.Fatalf("Datasets() = %+v, want exactly [linked]", infos)
	}
	if _, _, err := svc.LoadDataset(context.Background(), "linked"); err != nil {
		t.Errorf("loading symlinked dataset: %v", err)
	}
}

// TestRegistryDatasetModelKeyNamespaced: a registry file named like a
// generator prefix must not share the generator's model-cache key —
// otherwise a model fitted on the stand-in would be served for the real
// graph (or vice versa) the moment the file appears.
func TestRegistryDatasetModelKeyNamespaced(t *testing.T) {
	dir := t.TempDir()
	if err := graph.WriteSnapshotFile(filepath.Join(dir, "Wiki.snap"), testWikiGraph(t)); err != nil {
		t.Fatal(err)
	}
	req := PredictRequest{Dataset: "Wiki", Algorithm: "PR"}.withDefaults()
	withRegistry := New(Config{DatasetDir: dir})
	without := New(Config{})
	_, fi, _, ok := withRegistry.resolveDataset("Wiki")
	if !ok {
		t.Fatal("Wiki.snap did not resolve")
	}
	regKey := withRegistry.modelKey(req, datasetKey("Wiki", fi))
	genKey := without.modelKey(req, "")
	if regKey == genKey {
		t.Fatalf("registry and generator models share key %q", regKey)
	}
	if !strings.Contains(regKey, "data=dataset:Wiki@") {
		t.Errorf("registry model key %q not namespaced with file identity", regKey)
	}
}

// TestDatasetReplacedFileReloads: replacing a dataset file on disk must
// invalidate the cached graph — the next load reads the new contents
// instead of reporting already_loaded on the old ones.
func TestDatasetReplacedFileReloads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{DatasetDir: dir})
	info, cached, err := svc.LoadDataset(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	if cached || info.Edges != 2 {
		t.Fatalf("first load: cached=%v edges=%d", cached, info.Edges)
	}
	// Replace with a bigger graph; size change guarantees a new identity
	// even on filesystems with coarse mtimes.
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 3\n3 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, cached, err = svc.LoadDataset(context.Background(), "g")
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Error("replaced file reported already_loaded")
	}
	if info.Edges != 4 {
		t.Errorf("replaced file served %d edges, want 4", info.Edges)
	}
}

func TestDatasetsWithoutDirConfigured(t *testing.T) {
	svc := New(Config{})
	server := httptest.NewServer(svc.Handler())
	defer server.Close()
	if code := getJSONInto(t, server.URL+"/datasets", &map[string]any{}); code != http.StatusNotFound {
		t.Errorf("GET /datasets without dir = %d, want 404", code)
	}
	if code := postJSONInto(t, server.URL+"/datasets/x/load", nil, nil); code != http.StatusNotFound {
		t.Errorf("POST load without dir = %d, want 404", code)
	}
}

func TestLoadDatasetCorruptFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.txt"), []byte("0 1\nnot an edge\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A truncated snapshot must fail checksum/size validation.
	g := testWikiGraph(t)
	snap := filepath.Join(dir, "cut.snap")
	if err := graph.WriteSnapshotFile(snap, g); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	svc := New(Config{DatasetDir: dir})
	server := httptest.NewServer(svc.Handler())
	defer server.Close()
	var body map[string]string
	if code := postJSONInto(t, server.URL+"/datasets/bad/load", nil, &body); code != http.StatusInternalServerError {
		t.Errorf("corrupt edge list load = %d (%v), want 500 (server-side fault)", code, body)
	}
	if code := postJSONInto(t, server.URL+"/datasets/cut/load", nil, &body); code != http.StatusInternalServerError {
		t.Errorf("truncated snapshot load = %d (%v), want 500 (server-side fault)", code, body)
	}
}

// TestMmapDatasetsMode serves the registry with MmapDatasets on: snapshot
// loads come back identical to the copy-in path, edge lists still parse,
// a corrupt snapshot still answers 500, and the full /predict path runs
// over the mapped graph.
func TestMmapDatasetsMode(t *testing.T) {
	dir := t.TempDir()
	g := testWikiGraph(t)
	if err := graph.WriteSnapshotFile(filepath.Join(dir, "social.snap"), g); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "web.txt"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "cut.snap")
	if err := graph.WriteSnapshotFile(bad, g); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	svc := New(Config{DatasetDir: dir, MmapDatasets: true})
	server := httptest.NewServer(svc.Handler())
	defer server.Close()

	for _, name := range []string{"social", "web"} {
		var got struct {
			Dataset DatasetInfo `json:"dataset"`
		}
		if code := postJSONInto(t, server.URL+"/datasets/"+name+"/load", nil, &got); code != http.StatusOK {
			t.Fatalf("load %s with mmap mode = %d, want 200", name, code)
		}
		if got.Dataset.Vertices != g.NumVertices() || got.Dataset.Edges != g.NumEdges() {
			t.Errorf("%s: loaded %d/%d, want %d/%d",
				name, got.Dataset.Vertices, got.Dataset.Edges, g.NumVertices(), g.NumEdges())
		}
	}
	// The cached graph must be byte-equivalent to the source.
	loaded, _, err := svc.loadDataset(context.Background(), "social",
		filepath.Join(dir, "social.snap"), "probe-key")
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		a, b := g.OutNeighbors(graph.VertexID(v)), loaded.OutNeighbors(graph.VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("vertex %d: mapped degree %d, want %d", v, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: adjacency differs on mapped dataset", v)
			}
		}
	}

	var body map[string]string
	if code := postJSONInto(t, server.URL+"/datasets/cut/load", nil, &body); code != http.StatusInternalServerError {
		t.Errorf("truncated snapshot with mmap mode = %d (%v), want 500", code, body)
	}

	var resp PredictResponse
	req := PredictRequest{Dataset: "social", Algorithm: "PR", Ratio: 0.3}
	if code := postJSONInto(t, server.URL+"/predict", req, &resp); code != http.StatusOK {
		t.Fatalf("predict on mmap'd dataset = %d, want 200", code)
	}
	if resp.Iterations <= 0 || resp.SuperstepSeconds <= 0 {
		t.Errorf("predict on mmap'd dataset returned iterations=%d superstep=%v",
			resp.Iterations, resp.SuperstepSeconds)
	}
}
