package service

import (
	"context"
	"math"
	"net/http"
	"path/filepath"
	"testing"
)

// observeUnknownKeyError produces the live error Observe answers for a
// key no fitted model carries, for the error-to-HTTP mapping table.
func observeUnknownKeyError(t *testing.T) error {
	t.Helper()
	svc := New(Config{})
	_, err := svc.Observe(context.Background(), ObserveRequest{
		ModelKey: "no-such-key", ActualSeconds: 1,
	})
	if err == nil {
		t.Fatal("Observe(unknown key) did not fail")
	}
	return err
}

// TestObserveValidation pins the /observe request contract: missing or
// malformed fields are 400s, an unknown model key is a 404, and none of
// them leave a record behind.
func TestObserveValidation(t *testing.T) {
	svc, server := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"missing model key", ObserveRequest{ActualSeconds: 1}, http.StatusBadRequest},
		{"zero actual seconds", ObserveRequest{ModelKey: "k", ActualSeconds: 0}, http.StatusBadRequest},
		{"negative actual seconds", ObserveRequest{ModelKey: "k", ActualSeconds: -3}, http.StatusBadRequest},
		{"negative workers", ObserveRequest{ModelKey: "k", ActualSeconds: 1, Workers: -1}, http.StatusBadRequest},
		{"unknown field", `{"model_key":"k","actual":1}`, http.StatusBadRequest},
		{"unknown model key", ObserveRequest{ModelKey: "k", ActualSeconds: 1}, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _ := postJSON(t, server.URL+"/observe", tc.req)
			if status != tc.want {
				t.Fatalf("HTTP %d, want %d", status, tc.want)
			}
		})
	}
	if got := svc.Stats().Observations; got != 0 {
		t.Fatalf("rejected observations were recorded: %d", got)
	}
}

// TestObserveClosedLoop drives the feedback loop over HTTP: before the
// threshold, predictions stay in the extrapolation regime with the
// sample-fit estimate untouched; at the threshold the interpolation
// regime answers, strictly closer to the observed runtimes, with the
// interval and /stats bookkeeping following along.
func TestObserveClosedLoop(t *testing.T) {
	svc, server := newTestServer(t, Config{})

	status, raw := postJSON(t, server.URL+"/predict", testRequest())
	if status != http.StatusOK {
		t.Fatalf("cold predict: HTTP %d (%v)", status, raw)
	}
	base := decodePrediction(t, raw)
	if base.BlendRegime != "extrapolation" || base.Observations != 0 {
		t.Fatalf("cold prediction regime %q/%d, want extrapolation/0", base.BlendRegime, base.Observations)
	}
	if base.P50Seconds != base.SuperstepSeconds || base.P95Seconds < base.P50Seconds {
		t.Fatalf("interval p50=%v p95=%v around mean %v is malformed",
			base.P50Seconds, base.P95Seconds, base.SuperstepSeconds)
	}

	// Feed back runtimes clustered 30% above the estimate.
	target := base.SuperstepSeconds * 1.3
	threshold := svc.cfg.BlendThreshold
	offsets := []float64{0.98, 1.01, 0.99, 1.02, 1.0, 0.97, 1.03}
	for i := 0; i < threshold; i++ {
		status, obsRaw := postJSON(t, server.URL+"/observe", ObserveRequest{
			ModelKey: base.ModelKey, ActualSeconds: target * offsets[i%len(offsets)],
		})
		if status != http.StatusOK {
			t.Fatalf("observe %d: HTTP %d (%v)", i, status, obsRaw)
		}

		status, raw = postJSON(t, server.URL+"/predict", testRequest())
		if status != http.StatusOK {
			t.Fatalf("predict after %d observations: HTTP %d", i+1, status)
		}
		got := decodePrediction(t, raw)
		if got.Observations != i+1 {
			t.Fatalf("after %d observations: response reports %d", i+1, got.Observations)
		}
		if i+1 < threshold {
			if got.BlendRegime != "extrapolation" {
				t.Fatalf("below threshold (%d obs): regime %q", i+1, got.BlendRegime)
			}
			if got.SuperstepSeconds != base.SuperstepSeconds {
				t.Fatalf("below threshold: prediction moved (%v -> %v)",
					base.SuperstepSeconds, got.SuperstepSeconds)
			}
		}
	}
	blended := decodePrediction(t, raw)
	if blended.BlendRegime != "interpolation" {
		t.Fatalf("at threshold: regime %q, want interpolation", blended.BlendRegime)
	}
	if baseErr, blendErr := math.Abs(base.SuperstepSeconds-target), math.Abs(blended.SuperstepSeconds-target); blendErr >= baseErr {
		t.Errorf("feedback did not shrink error: |%v - %v| vs |%v - %v|",
			blended.SuperstepSeconds, target, base.SuperstepSeconds, target)
	}
	if blended.P95Seconds < blended.P50Seconds || blended.StdDevSeconds <= 0 {
		t.Errorf("blended interval malformed: p50=%v p95=%v sd=%v",
			blended.P50Seconds, blended.P95Seconds, blended.StdDevSeconds)
	}

	st := svc.Stats()
	if st.Observations != int64(threshold) || st.ObservedKeys != 1 {
		t.Errorf("stats observations=%d keys=%d, want %d/1", st.Observations, st.ObservedKeys, threshold)
	}
	if st.BlendInterpolation == 0 || st.BlendExtrapolation == 0 {
		t.Errorf("blend regime tallies not kept: extrapolation=%d interpolation=%d",
			st.BlendExtrapolation, st.BlendInterpolation)
	}
}

// TestPredictDeadlineProbability pins probability_of_deadline: absent
// without a deadline, near 1 for a generous deadline, near 0 for an
// impossible one, and rejected when negative.
func TestPredictDeadlineProbability(t *testing.T) {
	_, server := newTestServer(t, Config{})

	req := testRequest()
	status, raw := postJSON(t, server.URL+"/predict", req)
	if status != http.StatusOK {
		t.Fatalf("predict: HTTP %d", status)
	}
	if _, present := raw["probability_of_deadline"]; present {
		t.Error("probability_of_deadline present without deadline_seconds")
	}
	base := decodePrediction(t, raw)

	req.DeadlineSeconds = base.SuperstepSeconds * 10
	status, raw = postJSON(t, server.URL+"/predict", req)
	if status != http.StatusOK {
		t.Fatalf("predict with deadline: HTTP %d", status)
	}
	generous := decodePrediction(t, raw)
	if generous.ProbabilityOfDeadline == nil || *generous.ProbabilityOfDeadline < 0.99 {
		t.Errorf("generous deadline probability = %v, want ~1", generous.ProbabilityOfDeadline)
	}

	req.DeadlineSeconds = base.SuperstepSeconds / 10
	status, raw = postJSON(t, server.URL+"/predict", req)
	if status != http.StatusOK {
		t.Fatalf("predict with tight deadline: HTTP %d", status)
	}
	tight := decodePrediction(t, raw)
	if tight.ProbabilityOfDeadline == nil || *tight.ProbabilityOfDeadline > 0.01 {
		t.Errorf("impossible deadline probability = %v, want ~0", tight.ProbabilityOfDeadline)
	}

	req.DeadlineSeconds = -1
	if status, _ := postJSON(t, server.URL+"/predict", req); status != http.StatusBadRequest {
		t.Errorf("negative deadline: HTTP %d, want 400", status)
	}
}

// TestObservationsSurviveRestart pins the persistence loop: observations
// ride the checkpoint log as "observation" records, and a restarted
// service warm-starts both the model and its feedback window, answering
// in the interpolation regime immediately.
func TestObservationsSurviveRestart(t *testing.T) {
	histPath := filepath.Join(t.TempDir(), "history.jsonl")
	svc := New(Config{HistoryPath: histPath})

	resp, err := svc.Predict(context.Background(), testRequest())
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	target := resp.SuperstepSeconds * 1.3
	for i := 0; i < svc.cfg.BlendThreshold; i++ {
		if _, err := svc.Observe(context.Background(), ObserveRequest{
			ModelKey: resp.ModelKey, ActualSeconds: target,
		}); err != nil {
			t.Fatalf("Observe %d: %v", i, err)
		}
	}

	restarted := New(Config{HistoryPath: histPath})
	if _, _, err := restarted.WarmFromHistory(histPath); err != nil {
		t.Fatalf("WarmFromHistory: %v", err)
	}
	if got := restarted.Stats().Observations; got != int64(svc.cfg.BlendThreshold) {
		t.Fatalf("restarted service warm-started %d observations, want %d",
			got, svc.cfg.BlendThreshold)
	}
	warm, err := restarted.Predict(context.Background(), testRequest())
	if err != nil {
		t.Fatalf("Predict after restart: %v", err)
	}
	if !warm.CacheHit {
		t.Error("restarted service refitted instead of warm-starting the model")
	}
	if warm.BlendRegime != "interpolation" {
		t.Errorf("restarted service regime %q, want interpolation", warm.BlendRegime)
	}
}
