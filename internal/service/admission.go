// Admission control and prediction coalescing — the two mechanisms that
// keep the serving path responsive under sustained mixed cold/warm
// traffic.
//
// Admission: cold fits are orders of magnitude more expensive than warm
// hits (~ms of CPU vs ~µs), and without a bound a burst of distinct cold
// requests queues unbounded work behind the fit pool, growing cold-path
// latency without limit and starving warm traffic of CPU. An admission
// gate bounds how many cold fits may be outstanding (running + queued);
// past the bound, the miss is shed immediately with 503 + Retry-After
// instead of joining a queue it would time out in anyway. Warm hits
// never touch the gate. A second, optional gate bounds total in-flight
// HTTP requests (429 + Retry-After) for operators who want a hard
// concurrency ceiling.
//
// Coalescing: the model cache's single-flight already collapses
// concurrent fits of one model key. The coalescer extends that to the
// whole prediction — graph lookup, model lookup, extrapolation, response
// assembly — keyed by (model key, what-if workers). Concurrent identical
// predictions always share one computation; with a batch window
// configured, the computed prediction additionally stays shareable for
// the window after it completes, so a sustained stream of identical warm
// requests pays one extrapolation per window instead of one per request.
// Predictions are deterministic (same fitted model + same graph + same
// workers => identical response), so sharing never changes response
// bytes — only elapsed_ms, which is stamped per request.
package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// gate is a try-acquire counting semaphore with shed accounting. A nil
// slots channel means unlimited (the gate always admits).
type gate struct {
	slots chan struct{}
	shed  atomic.Int64
}

// newGate returns a gate admitting at most depth holders; depth <= 0
// means unlimited.
func newGate(depth int) *gate {
	g := &gate{}
	if depth > 0 {
		g.slots = make(chan struct{}, depth)
	}
	return g
}

// tryAcquire admits the caller or records a shed and returns false.
// It never blocks: shedding at the door is the point.
func (g *gate) tryAcquire() bool {
	if g.slots == nil {
		return true
	}
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		g.shed.Add(1)
		return false
	}
}

func (g *gate) release() {
	if g.slots != nil {
		<-g.slots
	}
}

// held reports how many slots are currently acquired (the fit-queue
// depth /stats exposes).
func (g *gate) held() int64 {
	if g.slots == nil {
		return 0
	}
	return int64(len(g.slots))
}

// capacity reports the configured bound; 0 means unlimited.
func (g *gate) capacity() int {
	if g.slots == nil {
		return 0
	}
	return cap(g.slots)
}

// predFlight is one coalesced prediction computation. resp is the
// immutable response template (ElapsedMillis zero); sharers copy it and
// stamp their own latency.
type predFlight struct {
	done chan struct{}
	resp *PredictResponse
	err  error
}

// coalescer shares prediction computations between requests for the same
// (model key, workers). window > 0 keeps completed predictions shareable
// for that long after they finish; window == 0 coalesces only requests
// that overlap in flight.
type coalescer struct {
	mu     sync.Mutex
	window time.Duration
	m      map[string]*predFlight

	// coalesced counts responses served by sharing another request's
	// computation (mid-flight waiters and window sharers alike).
	coalesced atomic.Int64
}

func newCoalescer(window time.Duration) *coalescer {
	if window < 0 {
		window = 0
	}
	return &coalescer{window: window, m: make(map[string]*predFlight)}
}

// do returns the prediction for key, computing it with compute if no
// shareable one exists. The boolean reports that the caller joined a
// computation that had already completed (a window sharer): such callers
// are semantically cache hits regardless of what the original computer
// observed, because the model was certainly cached by the time they
// arrived.
//
// compute runs detached from ctx (like the cache fills it wraps): a
// caller whose ctx expires abandons only its response, and every other
// sharer — present and future — still gets the result. Failed
// computations are forgotten immediately, never held for the window, so
// an error is retried by the next request rather than replayed to it.
func (c *coalescer) do(ctx context.Context, key string, compute func() (*PredictResponse, error)) (resp *PredictResponse, joinedDone bool, err error) {
	c.mu.Lock()
	f, ok := c.m[key]
	if ok {
		select {
		case <-f.done:
			joinedDone = true
		default:
		}
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-f.done:
			return f.resp, joinedDone, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f = &predFlight{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()

	go func() {
		f.resp, f.err = compute()
		c.mu.Lock()
		if f.err != nil || c.window == 0 {
			delete(c.m, key)
		} else {
			// Hold the completed prediction open for the batch window, then
			// forget it. The timer owns the removal: a flight is deleted
			// exactly once, by its error path or by its timer.
			time.AfterFunc(c.window, func() {
				c.mu.Lock()
				if c.m[key] == f {
					delete(c.m, key)
				}
				c.mu.Unlock()
			})
		}
		c.mu.Unlock()
		close(f.done)
	}()

	select {
	case <-f.done:
		return f.resp, false, f.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}
