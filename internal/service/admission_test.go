package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// postRaw posts v and returns the full response (status, headers, body)
// without decoding, for tests that assert on shed headers.
func postRaw(t *testing.T, url string, v any) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// TestWriteServiceErrorStatusMapping pins the error-to-HTTP contract:
// every service error code maps to its status, shed errors carry their
// Retry-After hint, deadline expiry maps to 504, and anything untyped
// is a 500. Wrapped errors unwrap.
func TestWriteServiceErrorStatusMapping(t *testing.T) {
	cases := []struct {
		name       string
		err        error
		wantStatus int
		wantRetry  string // Retry-After header; empty = must be absent
		wantMsg    string
	}{
		{
			name:       "bad request",
			err:        &Error{Status: http.StatusBadRequest, Msg: "service: missing dataset"},
			wantStatus: http.StatusBadRequest,
			wantMsg:    "service: missing dataset",
		},
		{
			name:       "not found",
			err:        &Error{Status: http.StatusNotFound, Msg: "service: no such dataset"},
			wantStatus: http.StatusNotFound,
			wantMsg:    "service: no such dataset",
		},
		{
			name:       "shed 429 carries Retry-After",
			err:        &Error{Status: http.StatusTooManyRequests, RetryAfterSeconds: 2, Msg: "service: too many in flight"},
			wantStatus: http.StatusTooManyRequests,
			wantRetry:  "2",
			wantMsg:    "service: too many in flight",
		},
		{
			name:       "shed 503 carries Retry-After",
			err:        &Error{Status: http.StatusServiceUnavailable, RetryAfterSeconds: 1, Msg: "service: fit queue full"},
			wantStatus: http.StatusServiceUnavailable,
			wantRetry:  "1",
			wantMsg:    "service: fit queue full",
		},
		{
			name:       "timeout 504",
			err:        &Error{Status: http.StatusGatewayTimeout, Msg: "service: request timed out"},
			wantStatus: http.StatusGatewayTimeout,
			wantMsg:    "service: request timed out",
		},
		{
			name:       "wrapped service error unwraps",
			err:        fmt.Errorf("outer: %w", &Error{Status: http.StatusNotFound, Msg: "inner"}),
			wantStatus: http.StatusNotFound,
			wantMsg:    "inner",
		},
		{
			name:       "context.DeadlineExceeded maps to 504",
			err:        context.DeadlineExceeded,
			wantStatus: http.StatusGatewayTimeout,
			wantMsg:    context.DeadlineExceeded.Error(),
		},
		{
			name:       "wrapped deadline maps to 504",
			err:        fmt.Errorf("fit: %w", context.DeadlineExceeded),
			wantStatus: http.StatusGatewayTimeout,
			wantMsg:    "fit: " + context.DeadlineExceeded.Error(),
		},
		{
			name:       "untyped error is a 500",
			err:        errors.New("boom"),
			wantStatus: http.StatusInternalServerError,
			wantMsg:    "boom",
		},
		{
			// The /observe contract: an unknown model key is a typed 404,
			// never a silently created orphan history record.
			name:       "observe unknown model key is a 404",
			err:        observeUnknownKeyError(t),
			wantStatus: http.StatusNotFound,
			wantMsg:    `service: unknown model key "no-such-key": observations attach to fitted models (predict first)`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			writeServiceError(rec, tc.err)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d", rec.Code, tc.wantStatus)
			}
			if got := rec.Header().Get("Retry-After"); got != tc.wantRetry {
				t.Fatalf("Retry-After = %q, want %q", got, tc.wantRetry)
			}
			var body map[string]string
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("body %q is not JSON: %v", rec.Body.Bytes(), err)
			}
			if body["error"] != tc.wantMsg {
				t.Fatalf("error = %q, want %q", body["error"], tc.wantMsg)
			}
		})
	}
}

// TestAdmissionStressColdAndWarm hammers one service from many
// goroutines — a herd on a single cold key, a saturating stream of
// distinct cold keys, and steady warm traffic — and asserts the
// admission invariants: the herd shares exactly one fit, warm hits are
// never shed, every shed is a 503 carrying Retry-After, and warm
// latency stays bounded while the fit queue is saturated.
func TestAdmissionStressColdAndWarm(t *testing.T) {
	svc, server := newTestServer(t, Config{
		FitParallelism: 1,
		FitQueueDepth:  1,
	})

	// Warm two keys and measure uncontended warm latency.
	warmKeys := []PredictRequest{testRequest(), testRequest()}
	warmKeys[1].Algorithm = "CC"
	for _, r := range warmKeys {
		if status, raw := postJSON(t, server.URL+"/predict", r); status != http.StatusOK {
			t.Fatalf("warming: HTTP %d (%v)", status, raw)
		}
	}
	warmupFits := svc.Stats().Fits

	var uncontended []time.Duration
	for i := 0; i < 20; i++ {
		start := time.Now()
		if status, _ := postJSON(t, server.URL+"/predict", warmKeys[i%2]); status != http.StatusOK {
			t.Fatalf("uncontended warm: HTTP %d", status)
		}
		uncontended = append(uncontended, time.Since(start))
	}

	// Herd: one cold key, many concurrent requests, exactly one fit.
	herd := testRequest()
	herd.SampleSeed = 77
	const herdSize = 8
	var wg sync.WaitGroup
	errs := make(chan error, herdSize)
	for i := 0; i < herdSize; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, raw := postRaw(t, server.URL+"/predict", herd)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("herd request: HTTP %d (%v)", resp.StatusCode, raw)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if fits := svc.Stats().Fits; fits != warmupFits+1 {
		t.Fatalf("herd on one cold key ran %d fits, want exactly 1", fits-warmupFits)
	}

	// Saturation: distinct cold keys flood the depth-1 fit queue while
	// warm traffic continues. Warm requests must all succeed; cold
	// requests either succeed or shed with 503 + Retry-After.
	const (
		coldClients   = 4
		coldPerClient = 6
		warmClients   = 2
		warmPerClient = 25
	)
	var mu sync.Mutex
	var warmLatencies []time.Duration
	shedSeen := 0
	for round := 0; shedSeen == 0 && round < 5; round++ {
		var stress sync.WaitGroup
		stressErrs := make(chan error, coldClients*coldPerClient+warmClients*warmPerClient)
		for c := 0; c < coldClients; c++ {
			stress.Add(1)
			go func(c int) {
				defer stress.Done()
				for i := 0; i < coldPerClient; i++ {
					r := testRequest()
					r.SampleSeed = uint64(1000 + round*1000 + c*100 + i)
					resp, _ := postRaw(t, server.URL+"/predict", r)
					switch resp.StatusCode {
					case http.StatusOK:
					case http.StatusServiceUnavailable:
						if resp.Header.Get("Retry-After") == "" {
							stressErrs <- fmt.Errorf("shed 503 without Retry-After")
							return
						}
						mu.Lock()
						shedSeen++
						mu.Unlock()
					default:
						stressErrs <- fmt.Errorf("cold request: HTTP %d", resp.StatusCode)
						return
					}
				}
			}(c)
		}
		for c := 0; c < warmClients; c++ {
			stress.Add(1)
			go func(c int) {
				defer stress.Done()
				for i := 0; i < warmPerClient; i++ {
					start := time.Now()
					resp, _ := postRaw(t, server.URL+"/predict", warmKeys[(c+i)%2])
					if resp.StatusCode != http.StatusOK {
						stressErrs <- fmt.Errorf("warm request shed or failed: HTTP %d", resp.StatusCode)
						return
					}
					mu.Lock()
					warmLatencies = append(warmLatencies, time.Since(start))
					mu.Unlock()
				}
			}(c)
		}
		stress.Wait()
		close(stressErrs)
		for err := range stressErrs {
			t.Fatal(err)
		}
	}
	if shedSeen == 0 {
		t.Log("no sheds observed (fits drained faster than arrivals); shed path covered by TestPredictShedsWhenFitQueueFull")
	}
	if got := svc.Stats().Shed; got != int64(shedSeen) {
		t.Fatalf("/stats shed = %d, client observed %d", got, shedSeen)
	}

	// Warm latency under saturation stays bounded. The bound is generous
	// (race detector, single-CPU CI runners): 10x the uncontended p99
	// with a 2s floor — this is a starvation check, not a perf gate.
	sort.Slice(uncontended, func(i, j int) bool { return uncontended[i] < uncontended[j] })
	sort.Slice(warmLatencies, func(i, j int) bool { return warmLatencies[i] < warmLatencies[j] })
	up99 := uncontended[len(uncontended)*99/100]
	p99 := warmLatencies[len(warmLatencies)*99/100]
	bound := 10 * up99
	if bound < 2*time.Second {
		bound = 2 * time.Second
	}
	if p99 > bound {
		t.Fatalf("warm p99 %v under saturated fit queue exceeds bound %v (uncontended p99 %v)", p99, bound, up99)
	}
}

// TestPredictShedsWhenFitQueueFull drives the fit-queue 503 path
// deterministically: with the single admission slot held, a cache miss
// must shed immediately with 503 + Retry-After, and a warm hit must
// still be served.
func TestPredictShedsWhenFitQueueFull(t *testing.T) {
	svc, server := newTestServer(t, Config{FitQueueDepth: 1, ShedRetryAfter: 3 * time.Second})

	warm := testRequest()
	if status, raw := postJSON(t, server.URL+"/predict", warm); status != http.StatusOK {
		t.Fatalf("warming: HTTP %d (%v)", status, raw)
	}

	if !svc.fitGate.tryAcquire() {
		t.Fatal("could not hold the only fit-queue slot")
	}
	defer svc.fitGate.release()

	cold := testRequest()
	cold.SampleSeed = 99
	resp, raw := postRaw(t, server.URL+"/predict", cold)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold miss with full fit queue: HTTP %d (%v), want 503", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want %q", got, "3")
	}

	if status, _ := postJSON(t, server.URL+"/predict", warm); status != http.StatusOK {
		t.Fatalf("warm hit was shed (HTTP %d) while the fit queue was full", status)
	}
	if svc.Stats().Shed == 0 {
		t.Fatal("shed counter did not record the 503")
	}
}

// TestPredictShedsWhenInFlightFull drives the request-gate 429 path:
// with every in-flight slot held, the handler sheds before reading the
// body, with 429 + Retry-After.
func TestPredictShedsWhenInFlightFull(t *testing.T) {
	svc, server := newTestServer(t, Config{MaxInFlight: 1, ShedRetryAfter: 2 * time.Second})

	if !svc.reqGate.tryAcquire() {
		t.Fatal("could not hold the only in-flight slot")
	}
	defer svc.reqGate.release()

	resp, raw := postRaw(t, server.URL+"/predict", testRequest())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request with in-flight gate full: HTTP %d (%v), want 429", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q", got, "2")
	}
	if svc.Stats().Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", svc.Stats().Shed)
	}
}

// TestClientCancelMidFitDoesNotPoison cancels a request mid-fit (tiny
// timeout on a cold key) and asserts the single-flight machinery is not
// poisoned: the request gets a 504, the detached fit completes and warms
// the cache, and the next request for the same key succeeds without a
// second fit.
func TestClientCancelMidFitDoesNotPoison(t *testing.T) {
	svc, server := newTestServer(t, Config{})

	cold := testRequest()
	cold.SampleSeed = 55
	cold.TimeoutMillis = 1
	status, raw := postJSON(t, server.URL+"/predict", cold)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("cold predict with 1ms budget: HTTP %d (%v), want 504", status, raw)
	}

	// The abandoned fit keeps running detached; the retry must succeed —
	// joining the in-flight fill or hitting the warmed cache — without
	// starting a second fit for the key.
	cold.TimeoutMillis = 0
	status, raw = postJSON(t, server.URL+"/predict", cold)
	if status != http.StatusOK {
		t.Fatalf("retry after canceled fit: HTTP %d (%v)", status, raw)
	}
	if pr := decodePrediction(t, raw); pr.SuperstepSeconds <= 0 {
		t.Fatalf("retry returned an empty prediction: %+v", pr)
	}
	if fits := svc.Stats().Fits; fits != 1 {
		t.Fatalf("canceled fit poisoned single-flight: %d fits for one key, want 1", fits)
	}
}

// TestBatchWindowCoalescesWarmRequests pins the batch-window contract: a
// request arriving within the window of an identical completed
// prediction shares it (reported as a cache hit) without another model
// cache lookup, and the coalesced counter records the share.
func TestBatchWindowCoalescesWarmRequests(t *testing.T) {
	svc, server := newTestServer(t, Config{BatchWindow: 30 * time.Second})

	status, raw := postJSON(t, server.URL+"/predict", testRequest())
	if status != http.StatusOK {
		t.Fatalf("cold predict: HTTP %d (%v)", status, raw)
	}
	if pr := decodePrediction(t, raw); pr.CacheHit {
		t.Fatal("cold predict reported a cache hit")
	}
	lookups := func() int64 { h, m, _ := svc.models.counters(); return h + m }
	before := lookups()

	status, raw = postJSON(t, server.URL+"/predict", testRequest())
	if status != http.StatusOK {
		t.Fatalf("coalesced predict: HTTP %d (%v)", status, raw)
	}
	if pr := decodePrediction(t, raw); !pr.CacheHit {
		t.Fatal("request within the batch window did not report a cache hit")
	}
	if after := lookups(); after != before {
		t.Fatalf("coalesced request performed %d model-cache lookups, want 0", after-before)
	}
	if svc.Stats().Coalesced == 0 {
		t.Fatal("coalesced counter did not record the shared prediction")
	}
}

// TestStatsUnderConcurrentLoad scrapes /stats continuously while mixed
// cold/warm traffic runs, asserting every snapshot is internally
// consistent (ratios in range, queue depth within its cap) and the
// counters are monotonic across snapshots; the final totals must agree
// with the traffic actually sent.
func TestStatsUnderConcurrentLoad(t *testing.T) {
	// A history path plus an aggressive growth factor keeps the
	// checkpointing counters moving under the same load, so their
	// monotonicity is asserted under real concurrency, not at rest.
	svc, server := newTestServer(t, Config{
		FitQueueDepth:          2,
		HistoryPath:            filepath.Join(t.TempDir(), "models.jsonl"),
		CheckpointGrowthFactor: 2,
	})

	warm := testRequest()
	if status, raw := postJSON(t, server.URL+"/predict", warm); status != http.StatusOK {
		t.Fatalf("warming: HTTP %d (%v)", status, raw)
	}

	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	go func() {
		defer close(scrapeErr)
		var prev Stats
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(server.URL + "/stats")
			if err != nil {
				scrapeErr <- err
				return
			}
			var payload struct {
				Stats Stats `json:"stats"`
			}
			err = json.NewDecoder(resp.Body).Decode(&payload)
			resp.Body.Close()
			if err != nil {
				scrapeErr <- fmt.Errorf("decoding /stats: %w", err)
				return
			}
			st := payload.Stats
			if st.HitRatio < 0 || st.HitRatio > 1 {
				scrapeErr <- fmt.Errorf("hit ratio %v out of [0, 1]", st.HitRatio)
				return
			}
			if st.FitQueueDepth < 0 || st.FitQueueDepth > int64(st.FitQueueCap) {
				scrapeErr <- fmt.Errorf("fit queue depth %d out of [0, %d]", st.FitQueueDepth, st.FitQueueCap)
				return
			}
			if st.Hits < prev.Hits || st.Misses < prev.Misses || st.Fits < prev.Fits ||
				st.Shed < prev.Shed || st.Requests < prev.Requests || st.Coalesced < prev.Coalesced {
				scrapeErr <- fmt.Errorf("counters went backwards: %+v then %+v", prev, st)
				return
			}
			if st.UptimeSeconds < prev.UptimeSeconds {
				scrapeErr <- fmt.Errorf("uptime went backwards: %v then %v", prev.UptimeSeconds, st.UptimeSeconds)
				return
			}
			if st.CheckpointsWritten < prev.CheckpointsWritten || st.Compactions < prev.Compactions ||
				st.CheckpointFailures < prev.CheckpointFailures {
				scrapeErr <- fmt.Errorf("checkpoint counters went backwards: %+v then %+v", prev, st)
				return
			}
			if st.Draining {
				scrapeErr <- fmt.Errorf("service reported draining with no drain begun")
				return
			}
			prev = st
		}
	}()

	const (
		clients   = 4
		perClient = 10
	)
	var wg sync.WaitGroup
	reqErrs := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				r := warm
				if i%3 == 0 { // a third of the traffic is cold
					r.SampleSeed = uint64(10000 + c*100 + i)
				}
				resp, _ := postRaw(t, server.URL+"/predict", r)
				switch resp.StatusCode {
				case http.StatusOK, http.StatusServiceUnavailable:
				default:
					reqErrs <- fmt.Errorf("client %d request %d: HTTP %d", c, i, resp.StatusCode)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(reqErrs)
	for err := range reqErrs {
		t.Fatal(err)
	}
	close(stop)
	if err := <-scrapeErr; err != nil {
		t.Fatal(err)
	}

	st := svc.Stats()
	if want := int64(clients*perClient + 1); st.Requests != want {
		t.Fatalf("requests = %d, want %d", st.Requests, want)
	}
	if st.FitQueueCap != 2 {
		t.Fatalf("fit queue cap = %d, want 2", st.FitQueueCap)
	}
	if st.FitQueueDepth != 0 {
		t.Fatalf("fit queue depth = %d after traffic drained, want 0", st.FitQueueDepth)
	}
	// Every completed fit checkpointed (the shed ones never fit at all),
	// and the aggressive growth factor forced at least one compaction.
	if st.CheckpointsWritten != st.Fits {
		t.Fatalf("checkpoints_written = %d with %d fits completed", st.CheckpointsWritten, st.Fits)
	}
	if st.CheckpointFailures != 0 {
		t.Fatalf("checkpoint_failures = %d on a writable volume", st.CheckpointFailures)
	}
	if st.Fits > 2 && st.Compactions < 1 {
		t.Fatalf("compactions = %d after %d checkpoints under growth factor 2", st.Compactions, st.Fits)
	}
}
