// Liveness vs readiness: the two questions an orchestrator asks.
//
// Liveness ("is the process alive?") is what /healthz answers — always
// 200 while the process can serve HTTP at all, because restarting a
// degraded-but-serving process destroys the warm caches that are still
// answering requests. Readiness ("should new traffic come here?") is what
// /readyz answers — non-200 while a dependency the service needs for NEW
// work is broken: the dataset directory unreadable (cold loads will
// fail), or the history file unwritable (models fitted now would be lost
// on restart). Warm cache hits keep serving through a degraded state;
// that is the whole point of separating the two probes.
//
// Probes run live on each request rather than from a cached background
// check: readiness is asked seconds apart by pollers, the probes are two
// cheap syscalls, and a stale "ready" during an outage is exactly the
// failure mode the endpoint exists to prevent.
package service

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// Readiness reports whether the service should receive new traffic, with
// the reasons it should not. Degraded is the /readyz payload.
type Readiness struct {
	// Ready is true when every probe passed.
	Ready bool `json:"ready"`
	// Status is "ready" or "degraded" (mirrors the /healthz status field).
	Status string `json:"status"`
	// Reasons lists every failed probe; empty when ready.
	Reasons []string `json:"reasons,omitempty"`
}

// Readiness probes the service's dependencies: the dataset registry
// directory must be readable (when configured) and the history file
// appendable (when configured). Both probes are live — a dependency
// restored by an operator flips the endpoint back without a restart.
func (s *Service) Readiness() Readiness {
	// Draining overrides every dependency probe: a draining process must
	// answer NOT ready immediately and unambiguously so pollers pull it
	// out of rotation before its listener closes.
	if s.draining.Load() {
		return Readiness{Status: "draining", Reasons: []string{"service is draining: shutting down"}}
	}
	r := Readiness{Ready: true, Status: "ready"}
	if s.cfg.DatasetDir != "" {
		if err := probeDirReadable(s.cfg.DatasetDir); err != nil {
			r.Reasons = append(r.Reasons, fmt.Sprintf("dataset dir: %v", err))
		}
	}
	if hp := s.HistoryPath(); hp != "" {
		if err := probeFileAppendable(hp); err != nil {
			r.Reasons = append(r.Reasons, fmt.Sprintf("history file: %v", err))
		}
	}
	if len(r.Reasons) > 0 {
		r.Ready = false
		r.Status = "degraded"
	}
	return r
}

// probeDirReadable verifies the directory can be opened AND listed — an
// unreadable directory on some systems opens fine and only fails on the
// first read.
func probeDirReadable(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// An empty directory returns io.EOF, which is a healthy answer.
	if _, err := d.Readdirnames(1); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// probeFileAppendable verifies the history file can be opened for append
// (creating it if absent) — the exact open an archive write performs, so
// a read-only volume or permission change is caught before a save fails.
func probeFileAppendable(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	return f.Close()
}
