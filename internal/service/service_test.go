package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testRequest is a fast request: tiny graph, coarse tolerance, two
// training ratios.
func testRequest() PredictRequest {
	return PredictRequest{
		Dataset:        "Wiki",
		Scale:          0.02,
		Algorithm:      "PR",
		Epsilon:        0.01,
		Ratio:          0.15,
		TrainingRatios: []float64{0.1, 0.2},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	server := httptest.NewServer(svc.Handler())
	t.Cleanup(server.Close)
	return svc, server
}

// postJSON posts v and returns the status code and decoded body.
func postJSON(t *testing.T, url string, v any) (int, map[string]json.RawMessage) {
	t.Helper()
	var body bytes.Buffer
	if s, ok := v.(string); ok {
		body.WriteString(s)
	} else if err := json.NewEncoder(&body).Encode(v); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func decodePrediction(t *testing.T, raw map[string]json.RawMessage) PredictResponse {
	t.Helper()
	blob, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	var pr PredictResponse
	if err := json.Unmarshal(blob, &pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestPredictEndpointColdThenWarm(t *testing.T) {
	svc, server := newTestServer(t, Config{})

	status, raw := postJSON(t, server.URL+"/predict", testRequest())
	if status != http.StatusOK {
		t.Fatalf("cold predict: HTTP %d (%v)", status, raw)
	}
	cold := decodePrediction(t, raw)
	if cold.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if cold.Iterations <= 0 || cold.SuperstepSeconds <= 0 {
		t.Errorf("degenerate prediction: %+v", cold)
	}

	status, raw = postJSON(t, server.URL+"/predict", testRequest())
	if status != http.StatusOK {
		t.Fatalf("warm predict: HTTP %d", status)
	}
	warm := decodePrediction(t, raw)
	if !warm.CacheHit {
		t.Error("second identical request missed the cache")
	}
	if warm.SuperstepSeconds != cold.SuperstepSeconds || warm.Iterations != cold.Iterations {
		t.Errorf("warm prediction differs from cold: warm %+v cold %+v", warm, cold)
	}
	if got := svc.Stats().Fits; got != 1 {
		t.Errorf("fits = %d, want 1", got)
	}
}

func TestPredictMalformedAndInvalidInput(t *testing.T) {
	_, server := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"malformed json", `{"dataset": "Wiki",`, http.StatusBadRequest},
		{"unknown field", `{"dataset":"Wiki","algorithm":"PR","nope":1}`, http.StatusBadRequest},
		{"missing dataset", PredictRequest{Algorithm: "PR"}, http.StatusBadRequest},
		{"unknown dataset", PredictRequest{Dataset: "XX", Algorithm: "PR"}, http.StatusBadRequest},
		{"unknown algorithm", PredictRequest{Dataset: "Wiki", Algorithm: "FOO"}, http.StatusBadRequest},
		{"bad ratio", func() any { r := testRequest(); r.Ratio = 1.5; return r }(), http.StatusBadRequest},
		{"bad method", func() any { r := testRequest(); r.Method = "ZZZ"; return r }(), http.StatusBadRequest},
		{"bad training ratio", func() any { r := testRequest(); r.TrainingRatios = []float64{-0.1}; return r }(), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := postJSON(t, server.URL+"/predict", tc.body)
			if status != tc.want {
				t.Errorf("HTTP %d, want %d (%v)", status, tc.want, raw)
			}
			if _, ok := raw["error"]; !ok {
				t.Error("error response missing \"error\" field")
			}
		})
	}
}

func TestPredictMethodNotAllowed(t *testing.T) {
	_, server := newTestServer(t, Config{})
	resp, err := http.Get(server.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict: HTTP %d, want 405", resp.StatusCode)
	}
}

func TestBatchSharesOneModelAcrossWhatIfSweep(t *testing.T) {
	svc, server := newTestServer(t, Config{})

	var batch BatchRequest
	for _, w := range []int{4, 8, 16} {
		req := testRequest()
		req.Workers = w
		batch.Requests = append(batch.Requests, req)
	}
	// One malformed item must not poison the others.
	bad := testRequest()
	bad.Algorithm = "NOPE"
	batch.Requests = append(batch.Requests, bad)

	status, raw := postJSON(t, server.URL+"/predict/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("batch: HTTP %d (%v)", status, raw)
	}
	var br BatchResponse
	blob, _ := json.Marshal(raw)
	if err := json.Unmarshal(blob, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Responses) != 4 {
		t.Fatalf("got %d responses, want 4", len(br.Responses))
	}
	var times []float64
	for i, item := range br.Responses[:3] {
		if item.Error != "" {
			t.Fatalf("item %d failed: %s", i, item.Error)
		}
		times = append(times, item.Response.SuperstepSeconds)
	}
	if br.Responses[3].Error == "" {
		t.Error("malformed batch item did not report an error")
	}
	// The what-if sweep varies only the worker count, so all items share
	// one fitted model...
	if got := svc.Stats().Fits; got != 1 {
		t.Errorf("fits = %d, want 1 (what-if sweep must share the model)", got)
	}
	// ...but more workers must still predict faster runtimes.
	if !(times[0] > times[1] && times[1] > times[2]) {
		t.Errorf("predicted seconds not decreasing in workers: %v", times)
	}
}

func TestConcurrentIdenticalRequestsFitOnce(t *testing.T) {
	svc, server := newTestServer(t, Config{})

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, raw := postJSON(t, server.URL+"/predict", testRequest())
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("HTTP %d: %v", status, raw)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Stats().Fits; got != 1 {
		t.Errorf("fits = %d, want 1 (single-flight must collapse concurrent misses)", got)
	}
	if got := svc.Stats().Models; got != 1 {
		t.Errorf("models = %d, want 1", got)
	}
}

func TestModelCacheLRUEviction(t *testing.T) {
	svc := New(Config{MaxModels: 2})
	ctx := context.Background()

	reqs := make([]PredictRequest, 3)
	for i := range reqs {
		reqs[i] = testRequest()
		reqs[i].SampleSeed = uint64(i + 1) // distinct model keys
	}
	for _, r := range reqs {
		if _, err := svc.Predict(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Models != 2 {
		t.Errorf("models = %d, want 2 (LRU bound)", st.Models)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// The first request's model (LRU victim) must refit; the last two hit.
	for i, r := range reqs {
		resp, err := svc.Predict(ctx, r)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && resp.CacheHit {
			t.Error("evicted model reported a cache hit")
		}
	}
}

func TestPredictTimeout(t *testing.T) {
	_, server := newTestServer(t, Config{})
	req := testRequest()
	req.Scale = 0.3 // big enough that the cold fit cannot finish in 1ms
	req.TimeoutMillis = 1
	status, raw := postJSON(t, server.URL+"/predict", req)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("HTTP %d, want 504 (%v)", status, raw)
	}
}

func TestModelsAndHealthzEndpoints(t *testing.T) {
	_, server := newTestServer(t, Config{})
	if status, _ := postJSON(t, server.URL+"/predict", testRequest()); status != http.StatusOK {
		t.Fatalf("seed predict failed: HTTP %d", status)
	}

	resp, err := http.Get(server.URL + "/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var models struct {
		Models []ModelInfo `json:"models"`
		Count  int         `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	if models.Count != 1 || len(models.Models) != 1 {
		t.Fatalf("models inventory = %+v, want exactly one entry", models)
	}
	m := models.Models[0]
	if m.Algorithm != "PageRank" || m.R2 <= 0 || m.Iterations <= 0 || len(m.Features) == 0 {
		t.Errorf("degenerate model info: %+v", m)
	}
	if !strings.Contains(m.Key, "data=Wiki") {
		t.Errorf("model key %q does not canonicalize the dataset", m.Key)
	}

	hresp, err := http.Get(server.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v", health["status"])
	}
	if health["models"].(float64) != 1 || health["fits"].(float64) != 1 {
		t.Errorf("healthz counters = %v", health)
	}
}

func TestHistoryPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "models.jsonl")
	ctx := context.Background()

	svc1 := New(Config{})
	cold, err := svc1.Predict(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if n, err := svc1.SaveHistory(path); err != nil || n != 1 {
		t.Fatalf("SaveHistory = (%d, %v), want (1, nil)", n, err)
	}

	// A fresh service warms from the file and answers without fitting.
	svc2 := New(Config{})
	if n, skipped, err := svc2.WarmFromHistory(path); err != nil || n != 1 || skipped != 0 {
		t.Fatalf("WarmFromHistory = (%d, %d, %v), want (1, 0, nil)", n, skipped, err)
	}
	warm, err := svc2.Predict(ctx, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("request after warm start missed the cache")
	}
	if got := svc2.Stats().Fits; got != 0 {
		t.Errorf("fits after warm start = %d, want 0", got)
	}
	if warm.Iterations != cold.Iterations {
		t.Errorf("iterations changed across persistence: %d != %d", warm.Iterations, cold.Iterations)
	}
	// The refitted regression must reproduce the original prediction
	// (identical training matrix, identical selection).
	if diff := warm.SuperstepSeconds - cold.SuperstepSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("superstep seconds changed across persistence: %g != %g",
			warm.SuperstepSeconds, cold.SuperstepSeconds)
	}

	// Missing files warm zero models without error.
	if n, _, err := svc2.WarmFromHistory(filepath.Join(t.TempDir(), "absent.jsonl")); err != nil || n != 0 {
		t.Errorf("WarmFromHistory(absent) = (%d, %v), want (0, nil)", n, err)
	}

	// A record with a broken feature schema is skipped, not fatal, and
	// the intact record still warms.
	svc3 := New(Config{})
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(raw), `"ActVert"`, `"Bogus"`, 1)
	mixedPath := filepath.Join(t.TempDir(), "mixed.jsonl")
	if err := os.WriteFile(mixedPath, append([]byte(corrupt), raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, skipped, err := svc3.WarmFromHistory(mixedPath); err != nil || n != 1 || skipped != 1 {
		t.Errorf("WarmFromHistory(mixed) = (%d, %d, %v), want (1, 1, nil)", n, skipped, err)
	}
}

// TestCacheHitTenTimesFasterThanCold is the acceptance criterion: a
// cache-hit prediction must be at least 10x faster than the cold path
// (sample runs + regression) for the same request.
func TestCacheHitTenTimesFasterThanCold(t *testing.T) {
	svc := New(Config{})
	ctx := context.Background()
	req := testRequest()

	coldStart := time.Now()
	if _, err := svc.Predict(ctx, req); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)

	// Median of several warm calls to be robust against scheduler noise.
	const warmCalls = 5
	warm := make([]time.Duration, warmCalls)
	for i := range warm {
		s := time.Now()
		resp, err := svc.Predict(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.CacheHit {
			t.Fatal("warm call missed the cache")
		}
		warm[i] = time.Since(s)
	}
	best := warm[0]
	for _, d := range warm[1:] {
		if d < best {
			best = d
		}
	}
	if best*10 > cold {
		t.Errorf("cache hit not 10x faster: cold %v, best warm %v (%.1fx)",
			cold, best, float64(cold)/float64(best))
	}
	t.Logf("cold %v, warm %v (%.0fx speedup)", cold, best, float64(cold)/float64(best))
}

// BenchmarkColdPrediction measures the full pipeline (fresh service per
// iteration so nothing is cached).
func BenchmarkColdPrediction(b *testing.B) {
	ctx := context.Background()
	req := PredictRequest{
		Dataset: "Wiki", Scale: 0.02, Algorithm: "PR",
		Epsilon: 0.01, Ratio: 0.15, TrainingRatios: []float64{0.1, 0.2},
	}
	for i := 0; i < b.N; i++ {
		svc := New(Config{})
		if _, err := svc.Predict(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmPrediction measures the cache-hit path.
func BenchmarkWarmPrediction(b *testing.B) {
	ctx := context.Background()
	req := PredictRequest{
		Dataset: "Wiki", Scale: 0.02, Algorithm: "PR",
		Epsilon: 0.01, Ratio: 0.15, TrainingRatios: []float64{0.1, 0.2},
	}
	svc := New(Config{})
	if _, err := svc.Predict(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Predict(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
