// Per-model-key circuit breaker for the cold fit path.
//
// A dataset that keeps failing to fit — corrupt file, flaky storage, a
// pathological configuration — would otherwise consume a fit-pool slot on
// every request that misses the cache, starving cold fits that would have
// succeeded. The breaker converts repeated doomed fits into immediate
// 503 + Retry-After answers: after threshold consecutive failures for one
// model key the breaker opens and requests for that key fast-fail BEFORE
// touching the fit gate or pool. After a cooldown one probe request is
// let through (half-open); its success closes the breaker, its failure
// reopens it for another cooldown.
//
// State is per model key and only failing keys hold state at all: a
// success deletes the entry, so the steady-state map is empty and the
// warm path never consults it (breakers sit inside the cache-miss fill).
package service

import (
	"sync"
	"sync/atomic"
	"time"
)

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

type breakerEntry struct {
	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// breakerSet holds the per-key breakers plus the /stats counters.
type breakerSet struct {
	mu        sync.Mutex
	threshold int // consecutive failures to trip; <= 0 disables
	cooldown  time.Duration
	byKey     map[string]*breakerEntry

	trips     atomic.Int64 // closed/half-open -> open transitions
	fastFails atomic.Int64 // requests rejected while open
}

func newBreakerSet(threshold int, cooldown time.Duration) breakerSet {
	return breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		byKey:     make(map[string]*breakerEntry),
	}
}

func (b *breakerSet) enabled() bool { return b.threshold > 0 }

// allow reports whether a fit attempt for key may proceed. While open it
// returns false plus how long the caller should tell the client to wait;
// when the cooldown has elapsed it admits exactly one probe (half-open).
func (b *breakerSet) allow(key string) (proceed bool, retryAfter time.Duration) {
	if !b.enabled() {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.byKey[key]
	if e == nil || e.state == breakerClosed {
		return true, 0
	}
	remaining := b.cooldown - time.Since(e.openedAt)
	if e.state == breakerOpen && remaining <= 0 {
		e.state = breakerHalfOpen
	}
	if e.state == breakerHalfOpen {
		if e.probing {
			// One probe at a time: concurrent requests keep fast-failing
			// until the in-flight probe settles the state.
			b.fastFails.Add(1)
			return false, b.cooldown
		}
		e.probing = true
		return true, 0
	}
	b.fastFails.Add(1)
	return false, remaining
}

// success records a successful fit: the key's breaker closes and its
// state is dropped entirely.
func (b *breakerSet) success(key string) {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.byKey, key)
}

// failure records a failed fit. Consecutive failures reaching the
// threshold — or any failed half-open probe — open the breaker.
func (b *breakerSet) failure(key string) {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.byKey[key]
	if e == nil {
		e = &breakerEntry{}
		b.byKey[key] = e
	}
	e.probing = false
	if e.state == breakerHalfOpen {
		e.state = breakerOpen
		e.openedAt = time.Now()
		b.trips.Add(1)
		return
	}
	e.failures++
	if e.state == breakerClosed && e.failures >= b.threshold {
		e.state = breakerOpen
		e.openedAt = time.Now()
		b.trips.Add(1)
	}
}

// skip releases a half-open probe admission without judging the fit —
// used when the attempt was shed by the fit gate before fitting, which
// says nothing about whether the key's fits still fail.
func (b *breakerSet) skip(key string) {
	if !b.enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if e := b.byKey[key]; e != nil {
		e.probing = false
	}
}

// openCount reports how many model keys are currently open (for /stats).
func (b *breakerSet) openCount() int {
	if !b.enabled() {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.byKey {
		if e.state != breakerClosed {
			n++
		}
	}
	return n
}
