package service

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// cache is an LRU-bounded cache with single-flight fills: concurrent
// misses on the same key share one fill instead of racing N expensive
// computations. It backs both the fitted-model cache and the generated-
// graph cache.
type cache[V any] struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight[V]

	hits, misses, evictions int64
}

// entry is one cached value plus bookkeeping.
type entry[V any] struct {
	key   string
	val   V
	hits  int64
	added time.Time
}

// flight is one in-progress fill that waiters share.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newCache[V any](max int) *cache[V] {
	return &cache[V]{
		max:      max,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight[V]),
	}
}

// get returns the cached value for key, filling it with fill on a miss.
// The boolean reports a cache hit; waiters on an in-flight fill report a
// miss, since they pay cold-path latency (the initiator already counted
// the miss, so they count neither). If ctx expires, get returns ctx.Err()
// but the fill keeps running and caches its result for later requests.
func (c *cache[V]) get(ctx context.Context, key string, fill func() (V, error)) (V, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*entry[V])
		e.hits++
		c.hits++
		c.mu.Unlock()
		return e.val, true, nil
	}
	f, ok := c.inflight[key]
	if !ok {
		f = &flight[V]{done: make(chan struct{})}
		c.inflight[key] = f
		c.misses++
		// Run the fill in its own goroutine so an expired ctx abandons
		// only the response: the fill still completes and warms the cache.
		go func() {
			f.val, f.err = fill()
			c.mu.Lock()
			delete(c.inflight, key)
			if f.err == nil {
				c.insert(key, f.val)
			}
			c.mu.Unlock()
			close(f.done)
		}()
	}
	c.mu.Unlock()

	select {
	case <-f.done:
		return f.val, false, f.err
	case <-ctx.Done():
		var zero V
		return zero, false, ctx.Err()
	}
}

// peek returns the cached value for key without counting a hit or
// refreshing LRU order — inventory endpoints observe the cache without
// perturbing it.
func (c *cache[V]) peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts a value directly (cache warming).
func (c *cache[V]) put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, val)
}

// insert adds or refreshes an entry and evicts past the bound. Callers
// hold c.mu.
func (c *cache[V]) insert(key string, val V) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[V]).val = val
		return
	}
	el := c.ll.PushFront(&entry[V]{key: key, val: val, added: time.Now()})
	c.entries[key] = el
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry[V]).key)
		c.evictions++
	}
}

// snapshot copies the entries, most recently used first.
func (c *cache[V]) snapshot() []entry[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]entry[V], 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*entry[V]))
	}
	return out
}

func (c *cache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *cache[V]) counters() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
