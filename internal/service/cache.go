package service

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// cache is an LRU-bounded cache with single-flight fills: concurrent
// misses on the same key share one fill instead of racing N expensive
// computations. It backs both the fitted-model cache and the generated-
// graph cache.
//
// The lock is sharded by key hash once the capacity is large enough for
// contention to matter: under sustained traffic every request takes the
// model-cache lock at least once, and a single mutex serializes all warm
// hits behind each other. Each shard owns an independent LRU list over
// its slice of the capacity, so the bound stays exact in total while
// hits on different shards never contend. Small caches (capacity below
// 2*cacheShards) keep one shard and therefore exact global LRU order —
// which is also what keeps eviction tests deterministic.
type cache[V any] struct {
	shards []*cacheShard[V]
}

// cacheShards is the shard count for large caches: enough to spread the
// handful of hot keys a serving workload concentrates on, small enough
// that per-shard LRU capacity (max/cacheShards) stays meaningful. Power
// of two so the hash maps to a shard with a mask, not a division.
const cacheShards = 8

// cacheShard is one independently locked slice of the cache.
type cacheShard[V any] struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight[V]

	hits, misses, evictions int64
}

// entry is one cached value plus bookkeeping.
type entry[V any] struct {
	key   string
	val   V
	hits  int64
	added time.Time
}

// flight is one in-progress fill that waiters share.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newCache[V any](max int) *cache[V] {
	n := 1
	if max >= 2*cacheShards {
		n = cacheShards
	}
	c := &cache[V]{shards: make([]*cacheShard[V], n)}
	for i := range c.shards {
		// Distribute the capacity exactly: the first max%n shards take the
		// remainder, so the total bound is max, not a rounded-up multiple.
		cap := max / n
		if i < max%n {
			cap++
		}
		c.shards[i] = &cacheShard[V]{
			max:      cap,
			ll:       list.New(),
			entries:  make(map[string]*list.Element),
			inflight: make(map[string]*flight[V]),
		}
	}
	return c
}

// shard maps a key to its shard by FNV-1a hash (inlined: no allocation,
// no dependency on the key escaping).
func (c *cache[V]) shard(key string) *cacheShard[V] {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return c.shards[h&uint64(len(c.shards)-1)]
}

// get returns the cached value for key, filling it with fill on a miss.
// The boolean reports a cache hit; waiters on an in-flight fill report a
// miss, since they pay cold-path latency (the initiator already counted
// the miss, so they count neither). If ctx expires, get returns ctx.Err()
// but the fill keeps running and caches its result for later requests.
func (c *cache[V]) get(ctx context.Context, key string, fill func() (V, error)) (V, bool, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		e := el.Value.(*entry[V])
		e.hits++
		s.hits++
		s.mu.Unlock()
		return e.val, true, nil
	}
	f, ok := s.inflight[key]
	if !ok {
		f = &flight[V]{done: make(chan struct{})}
		s.inflight[key] = f
		s.misses++
		// Run the fill in its own goroutine so an expired ctx abandons
		// only the response: the fill still completes and warms the cache.
		go func() {
			f.val, f.err = fill()
			s.mu.Lock()
			delete(s.inflight, key)
			if f.err == nil {
				s.insert(key, f.val)
			}
			s.mu.Unlock()
			close(f.done)
		}()
	}
	s.mu.Unlock()

	select {
	case <-f.done:
		return f.val, false, f.err
	case <-ctx.Done():
		var zero V
		return zero, false, ctx.Err()
	}
}

// peek returns the cached value for key without counting a hit or
// refreshing LRU order — inventory endpoints observe the cache without
// perturbing it.
func (c *cache[V]) peek(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts a value directly (cache warming).
func (c *cache[V]) put(key string, val V) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insert(key, val)
}

// insert adds or refreshes an entry and evicts past the shard's bound.
// Callers hold s.mu.
func (s *cacheShard[V]) insert(key string, val V) {
	if el, ok := s.entries[key]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*entry[V]).val = val
		return
	}
	el := s.ll.PushFront(&entry[V]{key: key, val: val, added: time.Now()})
	s.entries[key] = el
	for s.ll.Len() > s.max {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.entries, oldest.Value.(*entry[V]).key)
		s.evictions++
	}
}

// snapshot copies the entries, most recently used first within each
// shard (exact MRU order when the cache has one shard).
func (c *cache[V]) snapshot() []entry[V] {
	var out []entry[V]
	for _, s := range c.shards {
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			out = append(out, *el.Value.(*entry[V]))
		}
		s.mu.Unlock()
	}
	return out
}

func (c *cache[V]) len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

func (c *cache[V]) counters() (hits, misses, evictions int64) {
	for _, s := range c.shards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		evictions += s.evictions
		s.mu.Unlock()
	}
	return hits, misses, evictions
}
