package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// elapsedRE matches the one non-deterministic response field: the
// service-side wall-clock latency. Everything else in a PredictResponse
// is fixed by the request's seeds.
var elapsedRE = regexp.MustCompile(`"elapsed_ms":[0-9.eE+-]+`)

// fingerprintRequests are the warm-path pins: one per algorithm family
// plus a what-if worker override, all at the fast test scale. The golden
// files under testdata/ hold the exact response bytes (elapsed_ms
// normalized) captured before the pooled/coalesced request path rewrite;
// the serving refactor must not change a single warm-path response byte.
func fingerprintRequests() map[string]PredictRequest {
	pr := testRequest()
	cc := testRequest()
	cc.Algorithm = "CC"
	nh := testRequest()
	nh.Algorithm = "NH"
	whatif := testRequest()
	whatif.Workers = 16
	return map[string]PredictRequest{
		"warm_pr.json":     pr,
		"warm_cc.json":     cc,
		"warm_nh.json":     nh,
		"warm_pr_w16.json": whatif,
	}
}

// warmResponseBytes drives one cold request to fit the model, then
// returns the raw bytes of a second (warm) request with elapsed_ms
// normalized to 0.
func warmResponseBytes(t *testing.T, url string, req PredictRequest) []byte {
	t.Helper()
	post := func() (int, []byte) {
		var body bytes.Buffer
		enc := jsonEncode(t, req)
		body.Write(enc)
		resp, err := http.Post(url+"/predict", "application/json", &body)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, blob
	}
	if status, blob := post(); status != http.StatusOK {
		t.Fatalf("cold predict: HTTP %d: %s", status, blob)
	}
	status, blob := post()
	if status != http.StatusOK {
		t.Fatalf("warm predict: HTTP %d: %s", status, blob)
	}
	return elapsedRE.ReplaceAll(blob, []byte(`"elapsed_ms":0`))
}

func jsonEncode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestWarmResponseFingerprints pins the exact warm-path response bytes.
// Regenerate the goldens (deliberately, when the response schema itself
// changes) with:
//
//	PREDICT_UPDATE_FINGERPRINTS=1 go test ./internal/service -run Fingerprints
func TestWarmResponseFingerprints(t *testing.T) {
	_, server := newTestServer(t, Config{})
	update := os.Getenv("PREDICT_UPDATE_FINGERPRINTS") != ""
	for name, req := range fingerprintRequests() {
		t.Run(name, func(t *testing.T) {
			got := warmResponseBytes(t, server.URL, req)
			path := filepath.Join("testdata", name)
			if update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run with PREDICT_UPDATE_FINGERPRINTS=1 to capture): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("warm response bytes diverged from the pinned pre-refactor golden\n got: %s\nwant: %s", got, want)
			}
		})
	}
}
