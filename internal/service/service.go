// Package service turns the batch PREDIcT pipeline into a long-running
// prediction service: graphs are loaded once, fitted cost models are
// cached and reused across requests, and predictions are answered
// concurrently over JSON/HTTP.
//
// The split follows the cost structure of the pipeline. The expensive half
// — drawing samples, profiling transformed sample runs at several training
// ratios, fitting the regression (core.Predictor.Fit) — depends only on
// (algorithm configuration, cluster configuration, sampling configuration,
// training ratios, input dataset). The cheap half — extrapolating the
// fitted features to full scale and pricing them (core.Fitted.Extrapolate)
// — additionally takes a what-if worker count. The service therefore keys
// an LRU-bounded cache of core.Fitted values by the expensive half's
// inputs; repeated queries, batch sweeps and what-if cluster sizing all
// hit the cache and pay only extrapolation. This mirrors how C3O-style
// systems answer many configuration queries from runtime models trained
// once.
//
// Endpoints (all JSON; docs/API.md is the full reference):
//
//	POST /predict        one PredictRequest  -> PredictResponse
//	POST /predict/batch  BatchRequest        -> BatchResponse (concurrent)
//	POST /observe        ObserveRequest      -> ObserveResponse (feedback)
//	GET  /models         cached model inventory
//	GET  /datasets       dataset registry inventory
//	GET  /stats          cache hit ratio, in-flight fits, fit-pool depth
//	GET  /healthz        liveness + cache statistics
//	GET  /readyz         readiness: 503 while degraded
//
// Observed actual runtimes posted to /observe close the loop: they are
// persisted as history "observation" records and folded into later
// predictions for the same model key (core.ExtrapolateBlended), which
// also carry p50/p95 interval estimates and deadline probabilities.
//
// Cache entries persist through internal/history ("model" records):
// SaveHistory archives every cached entry's training matrix and
// extrapolation context, and WarmFromHistory refits them at startup —
// cheap regression refits instead of expensive sample reruns.
package service

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/core"
	"predict/internal/faultinject"
	"predict/internal/gen"
	"predict/internal/graph"
	"predict/internal/history"
	"predict/internal/parallel"
	"predict/internal/sampling"
)

// DefaultTrainingRatios are the paper's §5.2 training sampling ratios,
// used when a request does not override them.
var DefaultTrainingRatios = []float64{0.05, 0.10, 0.15, 0.20}

// Config parameterizes a Service.
type Config struct {
	// MaxModels bounds the fitted-model LRU cache; zero selects 64.
	MaxModels int
	// MaxGraphs bounds the generated-graph LRU cache; zero selects 8.
	MaxGraphs int
	// DefaultTimeout bounds each request when the request itself does not
	// set one; zero selects 60s.
	DefaultTimeout time.Duration
	// MaxBatch bounds the number of requests in one batch call; zero
	// selects 256.
	MaxBatch int
	// BatchParallelism bounds how many batch items execute at once, so
	// one batch of distinct cold requests cannot launch MaxBatch sample
	// pipelines simultaneously; zero selects GOMAXPROCS.
	BatchParallelism int
	// FitParallelism budgets the shared fit pool: across all concurrent
	// cold-path fits, at most this many sample+profile pipelines execute
	// at once. Concurrent cache misses for different keys previously
	// serialized on fit compute; the shared pool lets them interleave
	// without letting them multiply. Zero selects GOMAXPROCS.
	FitParallelism int
	// FitTimeout is the per-fit deadline. Fits run detached from request
	// contexts (an abandoned request still warms the cache), so this is
	// the only bound on a cold path that cannot finish; zero selects 5m.
	FitTimeout time.Duration
	// FitQueueDepth bounds how many cold fits may be outstanding at once
	// (executing plus queued behind the fit pool). A cache miss past the
	// bound is shed immediately with 503 + Retry-After instead of queuing
	// unbounded work, so a burst of cold traffic cannot starve warm cache
	// hits. Warm hits never consult the gate. Zero selects
	// 4*FitParallelism; negative disables shedding (unbounded).
	FitQueueDepth int
	// MaxInFlight bounds concurrently served prediction requests
	// (/predict and /predict/batch each count one); excess requests are
	// shed with 429 + Retry-After. Zero or negative means unlimited.
	MaxInFlight int
	// BatchWindow coalesces identical predictions beyond the model
	// cache's single-flight: requests for the same (model key, workers)
	// that overlap in flight always share one computation, and a positive
	// window additionally keeps each computed prediction shareable for
	// that long after it completes — a sustained stream of identical warm
	// requests then pays one extrapolation per window, not per request.
	// Predictions are deterministic, so sharing never changes response
	// bytes (only elapsed_ms, stamped per request). Zero coalesces
	// overlapping requests only.
	BatchWindow time.Duration
	// ShedRetryAfter is the Retry-After hint attached to shed (429/503)
	// responses; zero selects 1s.
	ShedRetryAfter time.Duration
	// Cluster is the sample-run execution environment. The zero value
	// selects 8 workers priced by cluster.DefaultOracle() — the repo's
	// stand-in for the paper's testbed.
	Cluster bsp.Config
	// DatasetDir, when set, enables the dataset registry: files under the
	// directory (<name>.snap snapshots, <name>.txt/.el/.edges edge lists)
	// become named datasets a request can address alongside the generator
	// prefixes. See datasets.go.
	DatasetDir string
	// FitBreakerThreshold is the per-model-key circuit breaker's trip
	// point: after this many consecutive fit failures for one key, further
	// requests for it fast-fail with 503 + Retry-After without consuming
	// fit-pool slots, until a half-open probe succeeds. Zero selects 5;
	// negative disables the breaker.
	FitBreakerThreshold int
	// FitBreakerCooldown is how long an open breaker waits before letting
	// one probe request through (half-open); zero selects 5s.
	FitBreakerCooldown time.Duration
	// RetryAttempts bounds dataset I/O attempts (first try included) for
	// transient failures; zero selects 3, negative disables retries.
	RetryAttempts int
	// RetryBaseDelay/RetryMaxDelay shape the jittered exponential backoff
	// between dataset I/O retries; zero selects 50ms / 1s.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// HistoryPath, when set, names the history file the service persists
	// models to; the readiness probe (Readiness) checks it stays
	// appendable so operators learn about a read-only or full volume
	// before a save silently starts failing. With checkpointing enabled
	// (the default), every newly fitted model is appended here at fit
	// time via the crash-safe durable append — a SIGKILL at any instant
	// loses at most the fit in flight, never a fitted model.
	HistoryPath string
	// DisableCheckpoints turns off continuous model checkpointing: models
	// then persist only through explicit SaveHistory calls (the clean-
	// shutdown path), and a crash loses every fit since startup. The
	// zero value — checkpointing on whenever HistoryPath is set — is the
	// crash-consistent default.
	DisableCheckpoints bool
	// CheckpointGrowthFactor bounds checkpoint-log growth: when the log
	// holds at least this many times the records it held after the last
	// compaction (or warm start), a compaction pass rewrites it keeping
	// only the newest record per model key. Zero selects 4; negative
	// disables compaction (the log grows one record per fit, forever).
	CheckpointGrowthFactor int
	// BlendThreshold is the closed-loop regime switch: a model key with at
	// least this many observed actual runtimes answers from the
	// observation-weighted refit (interpolation) instead of the pure
	// sample-fit model (extrapolation). Zero selects
	// core.DefaultObservationThreshold (5, the Ellis density rule).
	BlendThreshold int
	// MmapDatasets serves .snap registry datasets from mmap'd pages
	// (graph.MmapSnapshot) instead of heap copies: loads are O(1), the
	// kernel page cache shares one physical copy across processes, and a
	// dataset larger than RAM pages in on demand. On platforms without
	// mmap the load silently falls back to the copy-in reader. Mapped
	// generations are never explicitly unmapped — the LRU eviction drops
	// the Graph and the mapping's finalizer reclaims the address space,
	// per the lifetime rules in graph/mmap.go.
	MmapDatasets bool
}

func (c Config) withDefaults() Config {
	if c.MaxModels <= 0 {
		c.MaxModels = 64
	}
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 8
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.BatchParallelism <= 0 {
		c.BatchParallelism = runtime.GOMAXPROCS(0)
	}
	if c.FitParallelism <= 0 {
		c.FitParallelism = runtime.GOMAXPROCS(0)
	}
	if c.FitTimeout <= 0 {
		c.FitTimeout = 5 * time.Minute
	}
	if c.FitQueueDepth == 0 {
		c.FitQueueDepth = 4 * c.FitParallelism
	}
	if c.ShedRetryAfter <= 0 {
		c.ShedRetryAfter = time.Second
	}
	if c.FitBreakerThreshold == 0 {
		c.FitBreakerThreshold = 5
	}
	if c.FitBreakerCooldown <= 0 {
		c.FitBreakerCooldown = 5 * time.Second
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = time.Second
	}
	if c.CheckpointGrowthFactor == 0 {
		c.CheckpointGrowthFactor = 4
	}
	if c.BlendThreshold <= 0 {
		c.BlendThreshold = core.DefaultObservationThreshold
	}
	if c.Cluster.Oracle == nil {
		o := cluster.DefaultOracle()
		c.Cluster.Oracle = &o
	}
	if c.Cluster.Workers == 0 {
		c.Cluster.Workers = bsp.DefaultWorkers
	}
	return c
}

// Service answers prediction requests from cached graphs and cost models.
// All methods are safe for concurrent use.
type Service struct {
	cfg      Config
	models   *cache[*core.Fitted]
	graphs   *cache[*graph.Graph]
	fitPool  *parallel.Pool
	fitGate  *gate // bounds outstanding cold fits (admission control)
	reqGate  *gate // optional bound on in-flight requests
	coalesce *coalescer
	start    time.Time
	// oracleFP fingerprints the cost oracle once at construction — it
	// never changes afterwards, so modelKey must not re-hash it per
	// request (reflection-heavy and allocating).
	oracleFP uint64

	// fits counts cold-path model fits (for tests and /healthz);
	// fitsInFlight tracks fits currently executing; fitTimeouts counts
	// fits killed by the per-fit deadline; requests counts Predict calls.
	fits         atomic.Int64
	fitsInFlight atomic.Int64
	fitTimeouts  atomic.Int64
	requests     atomic.Int64

	// breakers holds per-model-key circuit breakers; ioRetries counts
	// dataset I/O retry attempts, tornRecovered torn history tails
	// skipped during warm-start (both for /stats).
	breakers      breakerSet
	ioRetries     atomic.Int64
	tornRecovered atomic.Int64

	// lifeCtx is the lifecycle context every detached cold fit derives
	// its deadline from: HardStop cancels it, so a drain deadline passing
	// actually stops in-flight fits instead of letting them outlive the
	// server. draining gates new work (503 + Connection: close) once
	// BeginDrain flips it; drainRejected counts the requests it refused.
	lifeCtx       context.Context
	lifeCancel    context.CancelFunc
	draining      atomic.Bool
	drainRejected atomic.Int64
	// activeWork counts admitted prediction-work requests (predict, batch,
	// dataset load) currently executing — the population a supervised
	// drain waits for while the listener keeps answering 503s and probes.
	activeWork atomic.Int64

	// histMu serializes checkpoint appends, compactions and snapshot
	// saves against each other and guards the mutable history path (an
	// unreadable warm-start file diverts persistence to a sibling).
	// ckptLog counts records in the checkpoint log; ckptBase is the count
	// right after the last compaction/warm-start/save — the growth-factor
	// trigger compares the two.
	histMu   sync.Mutex
	histPath string
	ckptLog  int
	ckptBase int

	// checkpoints/checkpointFailures/compactions are the continuous-
	// checkpointing counters /stats exposes.
	checkpoints        atomic.Int64
	checkpointFailures atomic.Int64
	compactions        atomic.Int64

	// obsMu guards obs, the per-model-key windows of observed actual
	// runtimes (/observe feedback), each capped at
	// history.MaxObservationsPerKey newest-first-out. observations counts
	// runtimes ever recorded; blendExtrapolation/blendInterpolation tally
	// which regime answered each prediction (for /stats).
	obsMu              sync.RWMutex
	obs                map[string][]float64
	observations       atomic.Int64
	blendExtrapolation atomic.Int64
	blendInterpolation atomic.Int64
}

// New returns a Service with the given configuration.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", *cfg.Cluster.Oracle)
	lifeCtx, lifeCancel := context.WithCancel(context.Background())
	return &Service{
		cfg:        cfg,
		models:     newCache[*core.Fitted](cfg.MaxModels),
		graphs:     newCache[*graph.Graph](cfg.MaxGraphs),
		fitPool:    parallel.NewPool(cfg.FitParallelism),
		fitGate:    newGate(cfg.FitQueueDepth),
		reqGate:    newGate(cfg.MaxInFlight),
		coalesce:   newCoalescer(cfg.BatchWindow),
		oracleFP:   h.Sum64(),
		start:      time.Now(),
		breakers:   newBreakerSet(cfg.FitBreakerThreshold, cfg.FitBreakerCooldown),
		lifeCtx:    lifeCtx,
		lifeCancel: lifeCancel,
		histPath:   cfg.HistoryPath,
		ckptBase:   1,
		obs:        make(map[string][]float64),
	}
}

// PredictRequest is one prediction query.
type PredictRequest struct {
	// Dataset is a stand-in prefix: LJ, Wiki, TW or UK.
	Dataset string `json:"dataset"`
	// Scale is the dataset scale factor; zero selects 1.0.
	Scale float64 `json:"scale,omitempty"`
	// GraphSeed seeds dataset generation; zero selects 1.
	GraphSeed uint64 `json:"graph_seed,omitempty"`
	// Algorithm names the algorithm: PR, SC, TOPK, CC, NH (or long names).
	Algorithm string `json:"algorithm"`
	// Epsilon is the PageRank tolerance (tau = eps/N) for PR and TOPK;
	// zero selects 0.001.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Ratio is the main sampling ratio; zero selects 0.10.
	Ratio float64 `json:"ratio,omitempty"`
	// Method is the sampling method: BRJ (default), RJ, MHRW, UNI.
	Method string `json:"method,omitempty"`
	// SampleSeed seeds sampling; zero selects 1.
	SampleSeed uint64 `json:"sample_seed,omitempty"`
	// TrainingRatios override the paper's {0.05, 0.10, 0.15, 0.20}.
	TrainingRatios []float64 `json:"training_ratios,omitempty"`
	// Workers is the what-if worker count of the target run; zero keeps
	// the sample cluster's size (the paper's matched-environment
	// assumption iii). Non-zero values answer capacity-planning queries
	// from the same cached model: only the critical-path share moves.
	Workers int `json:"workers,omitempty"`
	// TimeoutMillis bounds this request; zero selects the service default.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// DeadlineSeconds, when positive, asks for the probability that the
	// actual runtime meets this SLA deadline (probability_of_deadline in
	// the response), evaluated against the prediction's p50/p95
	// distribution. It does not change the prediction itself and is not
	// part of the model key.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
}

func (r PredictRequest) withDefaults() PredictRequest {
	if r.Scale == 0 {
		r.Scale = 1.0
	}
	if r.GraphSeed == 0 {
		r.GraphSeed = 1
	}
	if r.Epsilon == 0 {
		r.Epsilon = 0.001
	}
	if r.Ratio == 0 {
		r.Ratio = 0.10
	}
	if r.Method == "" {
		r.Method = string(sampling.BiasedRandomJump)
	}
	if r.SampleSeed == 0 {
		r.SampleSeed = 1
	}
	if len(r.TrainingRatios) == 0 {
		r.TrainingRatios = DefaultTrainingRatios
	}
	return r
}

// Validate reports malformed request fields without touching any cache.
func (r PredictRequest) Validate() error {
	if r.Dataset == "" {
		return fmt.Errorf("service: missing dataset")
	}
	// Dataset existence is resolved per service (registry datasets, then
	// generator prefixes) in graphFor, not here: Validate has no registry.
	if r.Algorithm == "" {
		return fmt.Errorf("service: missing algorithm")
	}
	if _, err := algorithms.ByName(r.Algorithm); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	if r.Scale < 0 {
		return fmt.Errorf("service: negative scale %v", r.Scale)
	}
	if r.Ratio < 0 || r.Ratio > 1 {
		return fmt.Errorf("service: sampling ratio %v out of (0, 1]", r.Ratio)
	}
	if r.Workers < 0 {
		return fmt.Errorf("service: negative workers %d", r.Workers)
	}
	switch sampling.Method(r.Method) {
	case "", sampling.BiasedRandomJump, sampling.RandomJump,
		sampling.MetropolisHastings, sampling.UniformVertex:
	default:
		return fmt.Errorf("service: unknown sampling method %q", r.Method)
	}
	for _, tr := range r.TrainingRatios {
		if tr <= 0 || tr > 1 {
			return fmt.Errorf("service: training ratio %v out of (0, 1]", tr)
		}
	}
	if r.TimeoutMillis < 0 {
		return fmt.Errorf("service: negative timeout %d", r.TimeoutMillis)
	}
	if r.DeadlineSeconds < 0 || math.IsNaN(r.DeadlineSeconds) || math.IsInf(r.DeadlineSeconds, 0) {
		return fmt.Errorf("service: deadline_seconds %v must be a positive finite number", r.DeadlineSeconds)
	}
	return nil
}

// PredictResponse is the answer to one PredictRequest.
type PredictResponse struct {
	Algorithm string `json:"algorithm"`
	Dataset   string `json:"dataset"`
	// Iterations and SuperstepSeconds are the headline predictions.
	Iterations       int     `json:"iterations"`
	SuperstepSeconds float64 `json:"superstep_seconds"`
	// PerIterationSeconds breaks the runtime down by superstep.
	PerIterationSeconds []float64 `json:"per_iteration_seconds,omitempty"`
	// RemoteMessageBytes is the extrapolated network volume (Figure 6).
	RemoteMessageBytes float64 `json:"remote_message_bytes"`
	// ModelR2 and ModelFeatures describe the (possibly cached) cost model.
	ModelR2       float64  `json:"model_r2"`
	ModelFeatures []string `json:"model_features"`
	// ModelKey is the cache key; equal keys share one fitted model.
	ModelKey string `json:"model_key"`
	// CacheHit reports whether the expensive pipeline was skipped.
	CacheHit bool `json:"cache_hit"`
	// Workers is the worker count the prediction targets.
	Workers int `json:"workers"`
	// SampleRunSeconds is the simulated planning cost paid when the model
	// was fitted (zero marginal cost on cache hits).
	SampleRunSeconds float64 `json:"sample_run_seconds"`
	// P50Seconds/P95Seconds/StdDevSeconds describe the prediction's
	// uncertainty distribution: the median, the 95th-percentile runtime
	// bound, and the normal approximation's spread.
	P50Seconds    float64 `json:"p50_seconds"`
	P95Seconds    float64 `json:"p95_seconds"`
	StdDevSeconds float64 `json:"stddev_seconds"`
	// BlendRegime reports which closed-loop regime answered:
	// "extrapolation" (pure sample-fit) or "interpolation"
	// (observation-weighted refit). Observations is how many observed
	// actual runtimes informed the blend.
	BlendRegime  string `json:"blend_regime"`
	Observations int    `json:"observations"`
	// ProbabilityOfDeadline is P(runtime <= deadline_seconds), present
	// only when the request set deadline_seconds.
	ProbabilityOfDeadline *float64 `json:"probability_of_deadline,omitempty"`
	// ElapsedMillis is the service-side wall-clock latency.
	ElapsedMillis float64 `json:"elapsed_ms"`
}

// appendModelKey canonicalizes the expensive half's inputs into b.
// Everything that changes the fitted model is in the key; the what-if
// worker count is deliberately not. The algorithm name is canonicalized
// ("PR" and "PageRank" share a model) and epsilon only enters for the
// PageRank-based algorithms that consume it, so epsilon-insensitive
// requests cannot fragment the cache. The key is built by appends into a
// caller-provided buffer — the serving path computes it on every request,
// so it must not pay fmt's boxing and scratch allocations.
func (s *Service) appendModelKey(b []byte, r PredictRequest, registryKey string) []byte {
	name, eps := r.Algorithm, 0.0
	if alg, err := algorithms.ByName(r.Algorithm); err == nil {
		name = alg.Name()
		switch alg.(type) {
		case algorithms.PageRank, algorithms.TopKRanking:
			eps = r.Epsilon
		}
	}
	b = append(b, "alg="...)
	b = append(b, name...)
	b = append(b, ",eps="...)
	b = strconv.AppendFloat(b, eps, 'g', -1, 64)
	// Registry datasets enter under their graph-cache key (namespace +
	// file mtime/size): a registry file named "Wiki" must not hit a model
	// fitted on the generator stand-in of the same name, and a model
	// fitted on one version of a file must not be served — now or via
	// history warm-up after a restart — for a replaced file. The caller
	// resolves the dataset once and passes the same key here and to
	// graphFor, so a file racing in, out or over mid-request cannot split
	// the two decisions.
	data := r.Dataset
	if registryKey != "" {
		data = registryKey
	}
	b = append(b, "|data="...)
	b = append(b, data...)
	b = append(b, ",scale="...)
	b = strconv.AppendFloat(b, r.Scale, 'g', -1, 64)
	b = append(b, ",gseed="...)
	b = strconv.AppendUint(b, r.GraphSeed, 10)
	b = append(b, "|method="...)
	b = append(b, r.Method...)
	b = append(b, ",ratio="...)
	b = strconv.AppendFloat(b, r.Ratio, 'g', -1, 64)
	b = append(b, ",sseed="...)
	b = strconv.AppendUint(b, r.SampleSeed, 10)
	b = append(b, "|train="...)
	for i, tr := range r.TrainingRatios {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendFloat(b, tr, 'g', -1, 64)
	}
	// The oracle enters as an opaque fingerprint (hashed once in New):
	// any coefficient change invalidates the key without leaking the
	// hidden ground truth into API responses.
	b = append(b, "|cluster=w"...)
	b = strconv.AppendInt(b, int64(s.cfg.Cluster.Workers), 10)
	b = append(b, ",s"...)
	b = strconv.AppendUint(b, s.cfg.Cluster.Seed, 10)
	b = append(b, ",o"...)
	b = strconv.AppendUint(b, s.oracleFP, 16)
	return b
}

// modelKey is appendModelKey as a standalone string.
func (s *Service) modelKey(r PredictRequest, registryKey string) string {
	return string(s.appendModelKey(nil, r, registryKey))
}

// graphFor returns the requested dataset graph: the registry file at
// path when the caller resolved one (registryKey non-empty; loaded from
// disk at most once per file version), a generated stand-in otherwise
// (generated at most once per (prefix, scale, seed)).
func (s *Service) graphFor(ctx context.Context, r PredictRequest, path, registryKey string) (*graph.Graph, error) {
	if registryKey != "" {
		// Registry datasets are fixed files: the generator knobs do not
		// apply, and silently ignoring them would fragment the model cache
		// across keys that name the same graph.
		if r.Scale != 1 {
			return nil, &Error{Status: 400, Msg: fmt.Sprintf(
				"service: dataset %q is a registry dataset; scale does not apply (got %g)", r.Dataset, r.Scale)}
		}
		if r.GraphSeed != 1 {
			return nil, &Error{Status: 400, Msg: fmt.Sprintf(
				"service: dataset %q is a registry dataset; graph_seed does not apply (got %d)", r.Dataset, r.GraphSeed)}
		}
		g, _, err := s.loadDataset(ctx, r.Dataset, path, registryKey)
		return g, err
	}
	key := fmt.Sprintf("%s|%g|%d", r.Dataset, r.Scale, r.GraphSeed)
	g, _, err := s.graphs.get(ctx, key, func() (*graph.Graph, error) {
		ds, err := gen.ByPrefix(r.Dataset)
		if err != nil {
			if s.cfg.DatasetDir != "" {
				return nil, fmt.Errorf("service: unknown dataset %q: not a file under %s and not a generator prefix (LJ, Wiki, TW, UK)",
					r.Dataset, s.cfg.DatasetDir)
			}
			return nil, fmt.Errorf("service: unknown dataset %q (want LJ, Wiki, TW or UK)", r.Dataset)
		}
		gr := ds.Generate(r.Scale, r.GraphSeed)
		// Warm the per-graph degree artifacts (BRJ seed ordering, memoized
		// degree sequences) while the graph is being cached: every cold fit
		// against this graph — all algorithms, all sampling ratios — shares
		// them, so the first request should not pay the build inside its
		// sampling pipeline.
		gr.EnsureDegreeArtifacts()
		return gr, nil
	})
	return g, err
}

// algorithmFor configures the named algorithm for a graph of n vertices.
func algorithmFor(name string, eps float64, n int) (algorithms.Algorithm, error) {
	alg, err := algorithms.ByName(name)
	if err != nil {
		return nil, err
	}
	switch a := alg.(type) {
	case algorithms.PageRank:
		a.Tau = algorithms.TauForTolerance(eps, n)
		return a, nil
	case algorithms.TopKRanking:
		a.PageRank.Tau = algorithms.TauForTolerance(eps, n)
		return a, nil
	}
	return alg, nil
}

// Predict answers one request, consulting and populating the model cache.
// The fit of a cache miss is shared across concurrent identical requests
// (single-flight) and keeps running to completion even if ctx expires, so
// the cache still warms; only the response is abandoned.
func (s *Service) Predict(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	var resp PredictResponse
	if err := s.predictInto(ctx, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// predictInto is Predict writing into a caller-owned response — the HTTP
// handler passes a pooled struct so the warm path allocates nothing for
// the response itself. Every field of out is overwritten on success.
func (s *Service) predictInto(ctx context.Context, req PredictRequest, out *PredictResponse) error {
	start := time.Now()
	s.requests.Add(1)
	req = req.withDefaults()
	if err := req.Validate(); err != nil {
		return &Error{Status: 400, Msg: err.Error()}
	}

	// Resolve the dataset against the registry exactly once per request:
	// the prediction must agree on registry-vs-generator — and on the
	// file version — even if the file appears, disappears or is replaced
	// while the request is in flight.
	var registryKey string
	path, fi, _, registry := s.resolveDataset(req.Dataset)
	if registry {
		registryKey = datasetKey(req.Dataset, fi)
	}

	// One buffer builds both keys; the model key is a prefix slice of the
	// coalescer key, so the whole request path pays a single string
	// allocation for its keys.
	kb := make([]byte, 0, 192)
	kb = s.appendModelKey(kb, req, registryKey)
	modelKeyLen := len(kb)
	kb = append(kb, "|w="...)
	kb = strconv.AppendInt(kb, int64(req.Workers), 10)
	ckey := string(kb)
	key := ckey[:modelKeyLen]

	// The whole prediction — graph lookup, model lookup, extrapolation,
	// response assembly — runs coalesced: concurrent identical requests
	// share one computation, and a configured batch window keeps the
	// result shareable briefly after it completes. The computation is
	// detached from ctx (like the cache fills inside it), so a canceled
	// request abandons only its response.
	tmpl, joinedDone, err := s.coalesce.do(ctx, ckey, func() (*PredictResponse, error) {
		return s.computePrediction(req, path, registryKey, key)
	})
	if err != nil {
		if ctx.Err() != nil {
			return &Error{Status: 504, Msg: fmt.Sprintf(
				"service: request timed out predicting %s on dataset %s", req.Algorithm, req.Dataset)}
		}
		var se *Error
		if errors.As(err, &se) {
			return se
		}
		return &Error{Status: 500, Msg: err.Error()}
	}
	*out = *tmpl
	if joinedDone {
		// A sharer that arrived after the computation finished is a cache
		// hit no matter what the computing request observed: the model was
		// cached before this request began.
		out.CacheHit = true
	}
	// The deadline probability is per-request (deadline_seconds is not in
	// the coalescing key), derived from the shared template's distribution
	// after the copy.
	if req.DeadlineSeconds > 0 {
		d := core.Distribution{
			MeanSeconds:   out.SuperstepSeconds,
			StdDevSeconds: out.StdDevSeconds,
		}
		p := d.ProbabilityWithin(req.DeadlineSeconds)
		out.ProbabilityOfDeadline = &p
	}
	out.ElapsedMillis = float64(time.Since(start)) / float64(time.Millisecond)
	return nil
}

// computePrediction is the coalesced unit of work: everything past
// validation and key construction. It runs detached from any request
// context; its response template is immutable once returned (sharers
// copy it), with ElapsedMillis left zero for the per-request stamp.
func (s *Service) computePrediction(req PredictRequest, path, registryKey, key string) (*PredictResponse, error) {
	g, err := s.graphFor(context.Background(), req, path, registryKey)
	if err != nil {
		var se *Error
		if errors.As(err, &se) {
			return nil, se
		}
		return nil, &Error{Status: 400, Msg: err.Error()}
	}

	fitted, hit, err := s.models.get(context.Background(), key, func() (*core.Fitted, error) {
		// The breaker runs before the fit gate: while it is open, requests
		// for this key must not consume fit-queue slots that working keys
		// could use.
		if proceed, wait := s.breakers.allow(key); !proceed {
			return nil, &Error{Status: 503, RetryAfterSeconds: ceilSeconds(wait), Msg: fmt.Sprintf(
				"service: circuit breaker open for this model (%d consecutive fit failures); retry later",
				s.cfg.FitBreakerThreshold)}
		}
		if !s.fitGate.tryAcquire() {
			// A gate shed says nothing about whether this key's fits still
			// fail — release any half-open probe admission unjudged.
			s.breakers.skip(key)
			return nil, &Error{Status: 503, RetryAfterSeconds: s.retryAfterSeconds(), Msg: fmt.Sprintf(
				"service: fit queue full (%d cold fits outstanding); retry later", s.cfg.FitQueueDepth)}
		}
		defer s.fitGate.release()
		fitted, err := s.fit(req, g)
		if err != nil {
			s.breakers.failure(key)
			return nil, err
		}
		s.breakers.success(key)
		s.checkpoint(key, fitted)
		return fitted, nil
	})
	if err != nil {
		var se *Error
		if errors.As(err, &se) {
			return nil, se
		}
		return nil, &Error{Status: 500, Msg: err.Error()}
	}

	// Closed-loop blending: the key's observed actual runtimes (if any)
	// select the regime and widen or tighten the interval. A key that has
	// never been observed takes the plain extrapolation path, bit-identical
	// to Extrapolate.
	pred, err := fitted.ExtrapolateBlended(g, req.Workers, s.observationsFor(key), s.cfg.BlendThreshold)
	if err != nil {
		return nil, &Error{Status: 500, Msg: err.Error()}
	}
	switch pred.Runtime.Regime {
	case core.RegimeInterpolation:
		s.blendInterpolation.Add(1)
	default:
		s.blendExtrapolation.Add(1)
	}
	workers := req.Workers
	if workers == 0 {
		workers = fitted.SampleWorkers
	}
	resp := &PredictResponse{
		Algorithm:           pred.Algorithm,
		Dataset:             req.Dataset,
		Iterations:          pred.Iterations,
		SuperstepSeconds:    pred.SuperstepSeconds,
		PerIterationSeconds: pred.PerIterationSeconds,
		RemoteMessageBytes:  pred.PredictedRemoteMessageBytes,
		ModelR2:             pred.Model.R2(),
		ModelKey:            key,
		CacheHit:            hit,
		Workers:             workers,
		SampleRunSeconds:    pred.SampleRunSeconds,
		P50Seconds:          pred.Runtime.P50Seconds,
		P95Seconds:          pred.Runtime.P95Seconds,
		StdDevSeconds:       pred.Runtime.StdDevSeconds,
		BlendRegime:         pred.Runtime.Regime,
		Observations:        pred.Runtime.Observations,
	}
	for _, f := range pred.Model.SelectedFeatures() {
		resp.ModelFeatures = append(resp.ModelFeatures, string(f))
	}
	return resp, nil
}

// ceilSeconds converts a wait into a whole-second Retry-After hint, at
// least 1 (zero would tell clients to hammer immediately).
func ceilSeconds(d time.Duration) int {
	sec := int((d + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// retryAfterSeconds is the whole-second Retry-After hint on shed
// responses (at least 1: zero would tell clients to hammer immediately).
func (s *Service) retryAfterSeconds() int {
	sec := int(s.cfg.ShedRetryAfter / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// fit runs the expensive pipeline half for a request (cold path). Its
// sample pipelines execute on the service's shared fit pool, so N
// concurrent cold fits interleave within one parallelism budget instead
// of serializing behind each other (or stampeding the host). Each fit
// gets its own FitTimeout deadline, detached from request contexts: an
// abandoned request still warms the cache, but a fit that cannot finish
// is bounded.
func (s *Service) fit(req PredictRequest, g *graph.Graph) (*core.Fitted, error) {
	// The deadline derives from the lifecycle context, not Background():
	// fits are detached from request contexts, so the only way a drain
	// deadline can stop one is HardStop canceling lifeCtx — which must
	// abort the fit, free its pool slot, and leave no goroutine behind.
	ctx, cancel := context.WithTimeout(s.lifeCtx, s.cfg.FitTimeout)
	defer cancel()
	if fault := faultinject.Fire(faultinject.PointServiceFit); fault != nil {
		// An injected stall must end the moment the lifecycle context is
		// canceled, not after the scheduled delay — it stands in for a fit
		// stuck in its sample pipeline during a drain.
		fault.SleepContext(ctx)
		fault.MaybeKill()
		if fault.Err != nil {
			return nil, fault.Err
		}
	}
	alg, err := algorithmFor(req.Algorithm, req.Epsilon, g.NumVertices())
	if err != nil {
		return nil, err
	}
	p := core.New(core.Options{
		Method:         sampling.Method(req.Method),
		Sampling:       sampling.Options{Ratio: req.Ratio, Seed: req.SampleSeed},
		BSP:            s.cfg.Cluster,
		TrainingRatios: req.TrainingRatios,
		Pool:           s.fitPool,
	})
	s.fits.Add(1)
	s.fitsInFlight.Add(1)
	defer s.fitsInFlight.Add(-1)
	fitted, err := p.FitContext(ctx, alg, g)
	switch {
	case err == nil:
		return fitted, nil
	case s.lifeCtx.Err() != nil:
		// Lifecycle cancellation is shutdown, not a deadline: the client
		// should retry against a healthy replica, and fitTimeouts must not
		// count it as a stuck fit.
		return nil, &Error{Status: 503, Msg: "service: fit canceled: service shutting down"}
	case errors.Is(err, context.DeadlineExceeded):
		s.fitTimeouts.Add(1)
		return nil, fmt.Errorf("service: fit exceeded the %v per-fit deadline: %w",
			s.cfg.FitTimeout, err)
	}
	return nil, err
}

// checkpoint appends one freshly fitted model to the history log — the
// continuous-checkpointing path. The append is durable (fsync before
// close), so once it returns a SIGKILL at any instant loses at most the
// fit in flight, never a fitted model. When the log has grown past
// CheckpointGrowthFactor times its post-compaction size, a crash-safe
// compaction (temp + fsync + rename) rewrites it to the newest record per
// key. Failures are counted, not fatal: a full or read-only volume
// degrades persistence, not serving (the readiness probe surfaces it).
func (s *Service) checkpoint(key string, fitted *core.Fitted) {
	if s.cfg.DisableCheckpoints {
		return
	}
	if s.appendRecord(fitted.Record(key, key)) {
		s.checkpoints.Add(1)
	}
}

// appendRecord durably appends one record to the history log (fsync
// before close) and runs the growth-triggered crash-safe compaction.
// Both the continuous model checkpoint and the /observe feedback path
// land here, so observations ride exactly the persistence machinery —
// and the compaction cap — the checkpoint log already has. Reports
// whether the append succeeded; failures are counted, not fatal.
func (s *Service) appendRecord(rec history.Record) bool {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if s.histPath == "" {
		return false
	}
	if err := history.AppendFileSync(s.histPath, rec); err != nil {
		s.checkpointFailures.Add(1)
		return false
	}
	s.ckptLog++
	if f := s.cfg.CheckpointGrowthFactor; f > 0 && s.ckptLog >= f*s.ckptBase {
		kept, err := history.CompactFile(s.histPath)
		if err != nil {
			s.checkpointFailures.Add(1)
			return true // the append itself succeeded
		}
		s.compactions.Add(1)
		s.ckptLog = kept
		if kept < 1 {
			kept = 1
		}
		s.ckptBase = kept
	}
	return true
}

// ObserveRequest reports one observed actual runtime for a previously
// predicted model key — the feedback half of the closed loop.
type ObserveRequest struct {
	// ModelKey is the model_key a /predict response reported.
	ModelKey string `json:"model_key"`
	// ActualSeconds is the observed superstep-phase runtime.
	ActualSeconds float64 `json:"actual_seconds"`
	// Workers optionally records the cluster size of the observed run.
	Workers int `json:"workers,omitempty"`
}

// ObserveResponse acknowledges one recorded observation.
type ObserveResponse struct {
	ModelKey string `json:"model_key"`
	// Observations is the key's observation count after this record.
	Observations int `json:"observations"`
	// BlendRegime is the regime the key's next prediction will use.
	BlendRegime string `json:"blend_regime"`
	// Persisted reports whether the observation reached the history log
	// (false when no history path is configured or the volume is failing;
	// the observation still informs this process's predictions).
	Persisted bool `json:"persisted"`
}

// Observe records an observed actual runtime against a cached model key:
// it joins the key's in-memory observation window (bounded by
// history.MaxObservationsPerKey, oldest evicted first) and is durably
// appended to the history log as an "observation" record so feedback
// survives restarts. An unknown key is a 404 — accepting it would write
// an orphan history record no prediction could ever use.
func (s *Service) Observe(ctx context.Context, req ObserveRequest) (*ObserveResponse, error) {
	if req.ModelKey == "" {
		return nil, &Error{Status: 400, Msg: "service: missing model_key"}
	}
	if req.ActualSeconds <= 0 || math.IsNaN(req.ActualSeconds) || math.IsInf(req.ActualSeconds, 0) {
		return nil, &Error{Status: 400, Msg: fmt.Sprintf(
			"service: actual_seconds %v must be a positive finite number", req.ActualSeconds)}
	}
	if req.Workers < 0 {
		return nil, &Error{Status: 400, Msg: fmt.Sprintf("service: negative workers %d", req.Workers)}
	}
	// peek, not get: a failed observation must not count as a cache hit or
	// refresh the key's LRU position.
	if _, ok := s.models.peek(req.ModelKey); !ok {
		return nil, &Error{Status: 404, Msg: fmt.Sprintf(
			"service: unknown model key %q: observations attach to fitted models (predict first)", req.ModelKey)}
	}
	n := s.recordObservation(req.ModelKey, req.ActualSeconds)
	persisted := !s.cfg.DisableCheckpoints &&
		s.appendRecord(history.NewObservation(req.ModelKey, req.ActualSeconds, req.Workers))
	regime := core.RegimeExtrapolation
	if n >= s.cfg.BlendThreshold {
		regime = core.RegimeInterpolation
	}
	return &ObserveResponse{
		ModelKey:     req.ModelKey,
		Observations: n,
		BlendRegime:  regime,
		Persisted:    persisted,
	}, nil
}

// recordObservation appends seconds to the key's in-memory observation
// window, evicting the oldest past history.MaxObservationsPerKey, and
// returns the window's new size.
func (s *Service) recordObservation(key string, seconds float64) int {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	o := append(s.obs[key], seconds)
	if len(o) > history.MaxObservationsPerKey {
		o = o[len(o)-history.MaxObservationsPerKey:]
	}
	s.obs[key] = o
	s.observations.Add(1)
	return len(o)
}

// observationsFor returns a copy of the key's observation window (nil
// when the key has never been observed — the common warm-path case,
// which must not allocate).
func (s *Service) observationsFor(key string) []float64 {
	s.obsMu.RLock()
	defer s.obsMu.RUnlock()
	o := s.obs[key]
	if len(o) == 0 {
		return nil
	}
	return append([]float64(nil), o...)
}

// ActiveWork reports how many admitted prediction-work requests are
// executing right now — what a supervised drain waits to reach zero.
func (s *Service) ActiveWork() int64 { return s.activeWork.Load() }

// BeginDrain flips the service into draining: new prediction work is
// refused with 503 + Connection: close (load balancers move on), the
// readiness probe reports draining, and in-flight work keeps running.
// Idempotent; there is no way back — a draining process exits.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// HardStop cancels the lifecycle context: every in-flight detached fit
// derives its deadline from it, so fits abort promptly, release their
// pool slots, and fail their waiting requests with 503. Called when the
// drain deadline passes with work still in flight.
func (s *Service) HardStop() { s.lifeCancel() }

// HistoryPath reports where checkpoints and saves currently land (the
// configured path unless RedirectHistory diverted it).
func (s *Service) HistoryPath() string {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	return s.histPath
}

// RedirectHistory diverts future checkpoints and saves to path — the
// recovery move when the configured history file is unreadable and must
// be preserved for inspection rather than overwritten.
func (s *Service) RedirectHistory(path string) {
	s.histMu.Lock()
	defer s.histMu.Unlock()
	s.histPath = path
	s.ckptLog = 0
	s.ckptBase = 1
}

// ModelInfo describes one cached model for the /models inventory.
type ModelInfo struct {
	Key        string   `json:"key"`
	Algorithm  string   `json:"algorithm"`
	Iterations int      `json:"iterations"`
	R2         float64  `json:"r2"`
	Features   []string `json:"features"`
	Hits       int64    `json:"hits"`
	AgeSeconds float64  `json:"age_seconds"`
}

// Models lists the cached models, most recently used first.
func (s *Service) Models() []ModelInfo {
	entries := s.models.snapshot()
	out := make([]ModelInfo, 0, len(entries))
	for _, e := range entries {
		info := ModelInfo{
			Key:        e.key,
			Algorithm:  e.val.Algorithm,
			Iterations: e.val.Iterations,
			R2:         e.val.Model.R2(),
			Hits:       e.hits,
			AgeSeconds: time.Since(e.added).Seconds(),
		}
		for _, f := range e.val.Model.SelectedFeatures() {
			info.Features = append(info.Features, string(f))
		}
		out = append(out, info)
	}
	return out
}

// Stats are the service's cache, fit and pool counters — the /stats
// payload an operator watches to size FitParallelism.
type Stats struct {
	Models    int   `json:"models"`
	Graphs    int   `json:"graphs"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// HitRatio is Hits / (Hits + Misses); zero before any lookup.
	HitRatio float64 `json:"hit_ratio"`
	// Fits counts cold-path fits ever started; InFlightFits counts fits
	// executing now; FitTimeouts counts fits killed by the per-fit
	// deadline.
	Fits         int64 `json:"fits"`
	InFlightFits int64 `json:"in_flight_fits"`
	FitTimeouts  int64 `json:"fit_timeouts"`
	// PoolSize is the fit pool's parallelism budget; PoolInFlight the
	// sample pipelines executing now; PoolDepth the pipelines queued
	// waiting for a slot.
	PoolSize     int   `json:"pool_size"`
	PoolInFlight int64 `json:"pool_in_flight"`
	PoolDepth    int64 `json:"pool_depth"`
	// Requests counts Predict calls ever served (batch items count
	// individually); Coalesced counts responses answered by sharing
	// another request's prediction computation.
	Requests  int64 `json:"requests"`
	Coalesced int64 `json:"coalesced"`
	// FitQueueCap is the admission bound on outstanding cold fits (0 =
	// unlimited); FitQueueDepth the slots held right now; Shed the
	// requests rejected by admission control (fit-queue 503s plus
	// in-flight 429s).
	FitQueueCap   int   `json:"fit_queue_cap"`
	FitQueueDepth int64 `json:"fit_queue_depth"`
	Shed          int64 `json:"shed"`
	// BreakerTrips counts circuit-breaker open transitions; BreakerOpen
	// the model keys currently open; BreakerFastFails the requests
	// answered 503 by an open breaker without consuming fit slots.
	BreakerTrips     int64 `json:"breaker_trips"`
	BreakerOpen      int   `json:"breaker_open"`
	BreakerFastFails int64 `json:"breaker_fast_fails"`
	// IORetries counts dataset I/O retry attempts (transient-failure
	// backoff); TornRecovered counts torn trailing history records
	// recovered (skipped, not fatal) during warm-start.
	IORetries     int64 `json:"io_retries"`
	TornRecovered int64 `json:"torn_records_recovered"`
	// UptimeSeconds is seconds since the service was constructed —
	// monotonically non-decreasing across successive /stats reads of one
	// process, so a reset betrays an unnoticed restart.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Draining reports whether the service has begun supervised drain;
	// DrainRejected counts the requests refused (503 + Connection: close)
	// since it began.
	Draining      bool  `json:"draining"`
	DrainRejected int64 `json:"drain_rejected"`
	// CheckpointsWritten counts fitted models durably appended to the
	// history log at fit time; CheckpointFailures the appends/compactions
	// that failed (persistence degraded, serving unaffected); Compactions
	// the growth-triggered log rewrites.
	CheckpointsWritten int64 `json:"checkpoints_written"`
	CheckpointFailures int64 `json:"checkpoint_failures"`
	Compactions        int64 `json:"compactions"`
	// Observations counts actual runtimes ever recorded via /observe (or
	// warm-started from the history log); ObservedKeys the model keys with
	// a non-empty observation window.
	Observations int64 `json:"observations"`
	ObservedKeys int   `json:"observed_keys"`
	// BlendExtrapolation/BlendInterpolation tally predictions answered by
	// each closed-loop regime (coalesced sharers count once, with the
	// computing request).
	BlendExtrapolation int64 `json:"blend_extrapolation"`
	BlendInterpolation int64 `json:"blend_interpolation"`
	// Goroutines and OpenFDs are process-level leak canaries the soak
	// harness watches; OpenFDs is 0 where /proc is unavailable.
	Goroutines int `json:"goroutines"`
	OpenFDs    int `json:"open_fds"`
}

// Stats returns a snapshot of the cache, fit and pool counters.
func (s *Service) Stats() Stats {
	h, m, ev := s.models.counters()
	st := Stats{
		Models:        s.models.len(),
		Graphs:        s.graphs.len(),
		Hits:          h,
		Misses:        m,
		Evictions:     ev,
		Fits:          s.fits.Load(),
		InFlightFits:  s.fitsInFlight.Load(),
		FitTimeouts:   s.fitTimeouts.Load(),
		PoolSize:      s.fitPool.Size(),
		PoolInFlight:  s.fitPool.InFlight(),
		PoolDepth:     s.fitPool.Waiting(),
		Requests:      s.requests.Load(),
		Coalesced:     s.coalesce.coalesced.Load(),
		FitQueueCap:   s.fitGate.capacity(),
		FitQueueDepth: s.fitGate.held(),
		Shed:          s.fitGate.shed.Load() + s.reqGate.shed.Load(),

		BreakerTrips:     s.breakers.trips.Load(),
		BreakerOpen:      s.breakers.openCount(),
		BreakerFastFails: s.breakers.fastFails.Load(),
		IORetries:        s.ioRetries.Load(),
		TornRecovered:    s.tornRecovered.Load(),

		UptimeSeconds:      time.Since(s.start).Seconds(),
		Draining:           s.draining.Load(),
		DrainRejected:      s.drainRejected.Load(),
		CheckpointsWritten: s.checkpoints.Load(),
		CheckpointFailures: s.checkpointFailures.Load(),
		Compactions:        s.compactions.Load(),
		Observations:       s.observations.Load(),
		BlendExtrapolation: s.blendExtrapolation.Load(),
		BlendInterpolation: s.blendInterpolation.Load(),
		Goroutines:         runtime.NumGoroutine(),
		OpenFDs:            openFDs(),
	}
	s.obsMu.RLock()
	st.ObservedKeys = len(s.obs)
	s.obsMu.RUnlock()
	if total := h + m; total > 0 {
		st.HitRatio = float64(h) / float64(total)
	}
	return st
}

// Uptime reports how long the service has been running.
func (s *Service) Uptime() time.Duration { return time.Since(s.start) }

// openFDs counts this process's open file descriptors via /proc — the
// soak harness asserts it stays flat. Returns 0 where /proc is absent
// (non-Linux), which the harness treats as "cannot check".
func openFDs() int {
	entries, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0
	}
	// ReadDir's own descriptor is open while counting; exclude it.
	return len(entries) - 1
}

// SaveHistory archives every cached model as a history "model" record,
// returning the number written. The snapshot replaces the file atomically
// (temp file + rename), so a crash or full disk mid-write cannot destroy
// the previous snapshot. Together with WarmFromHistory it gives the cache
// crash/restart durability without re-running sample pipelines.
func (s *Service) SaveHistory(path string) (int, error) {
	// histMu serializes the snapshot against concurrent checkpoint appends
	// and compactions: a checkpoint landing between snapshot and rename
	// would be silently erased by the rewrite.
	s.histMu.Lock()
	defer s.histMu.Unlock()
	entries := s.models.snapshot()
	// Oldest first so a warm start re-inserts in LRU order.
	sort.Slice(entries, func(i, j int) bool { return entries[i].added.Before(entries[j].added) })
	records := make([]history.Record, 0, len(entries))
	for _, e := range entries {
		records = append(records, e.val.Record(e.key, e.key))
	}
	// Observation windows follow the models (deterministic key order):
	// the snapshot replaces the whole file, so leaving them out would
	// erase the feedback the checkpoint log had accumulated.
	s.obsMu.RLock()
	keys := make([]string, 0, len(s.obs))
	for k := range s.obs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, secs := range s.obs[k] {
			records = append(records, history.NewObservation(k, secs, 0))
		}
	}
	s.obsMu.RUnlock()
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := history.Write(tmp, records...); err != nil {
		tmp.Close()
		return 0, err
	}
	// Flush to stable storage before the rename makes the file visible:
	// rename-over-old with an unsynced payload can survive a crash as an
	// empty file on some filesystems, destroying the previous snapshot.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return 0, err
	}
	if path == s.histPath {
		// The rewrite is the new compaction baseline.
		s.ckptLog = len(records)
		s.ckptBase = len(records)
		if s.ckptBase < 1 {
			s.ckptBase = 1
		}
	}
	return len(records), nil
}

// WarmFromHistory loads "model" records from a history file and refits
// them into the cache (cheap regression refits; no sample runs). Missing
// files are not an error, and individually unreadable records are skipped
// rather than aborting the warm-up; the skipped count reports them so
// operators can decide whether overwriting the file loses data. A torn
// trailing record (crash mid-append) is recovered, counted in /stats as
// torn_records_recovered, and does not prevent the complete records from
// warming the cache.
func (s *Service) WarmFromHistory(path string) (warmed, skipped int, err error) {
	records, torn, err := history.LoadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	if torn != nil {
		s.tornRecovered.Add(1)
	}
	for _, rec := range records {
		if rec.Observation != nil {
			// Feedback survives restarts: the log's observation records
			// (already capped per key by compaction) rebuild the in-memory
			// windows in log order.
			s.recordObservation(rec.Observation.ModelKey, rec.Observation.ActualSeconds)
			continue
		}
		if rec.Model == nil {
			continue
		}
		fitted, err := core.FittedFromRecord(rec)
		if err != nil {
			skipped++
			continue
		}
		s.models.put(rec.Model.Key, fitted)
		warmed++
	}
	s.histMu.Lock()
	if path == s.histPath {
		// The warm-started log is the compaction baseline: growth is
		// measured against what survived the restart, so a long-lived key
		// set does not trigger a compaction storm on the first few fits.
		s.ckptLog = len(records)
		s.ckptBase = len(records)
		if s.ckptBase < 1 {
			s.ckptBase = 1
		}
	}
	s.histMu.Unlock()
	return warmed, skipped, nil
}

// Error is a service error with an HTTP status. Shed (429/503) errors
// carry a Retry-After hint in whole seconds.
type Error struct {
	Status            int
	Msg               string
	RetryAfterSeconds int
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Msg }
