package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// BatchRequest asks for many predictions in one call. Items are answered
// concurrently; identical model keys share one fit via the cache's
// single-flight, so a what-if sweep over worker counts pays for at most
// one cold path per distinct (algorithm, cluster, training, dataset) key.
type BatchRequest struct {
	Requests []PredictRequest `json:"requests"`
}

// BatchItem is one batch answer: a response or an error, never both.
type BatchItem struct {
	Response *PredictResponse `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// BatchResponse answers a BatchRequest positionally.
type BatchResponse struct {
	Responses []BatchItem `json:"responses"`
	// CacheHits counts items answered from cached models.
	CacheHits int `json:"cache_hits"`
	// ElapsedMillis is the wall-clock time of the whole batch.
	ElapsedMillis float64 `json:"elapsed_ms"`
}

// Handler returns the service's HTTP API:
//
//	POST /predict               PredictRequest  -> PredictResponse
//	POST /predict/batch         BatchRequest    -> BatchResponse
//	GET  /models                -> {"models": [ModelInfo...]}
//	GET  /datasets              -> {"datasets": [DatasetInfo...]} (registry)
//	POST /datasets/{name}/load  -> load a registry dataset into the cache
//	GET  /stats                 -> Stats (pool depth, in-flight fits, hit ratio)
//	GET  /healthz               -> {"status": "ok", ...Stats}
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/predict/batch", s.handleBatch)
	mux.HandleFunc("/models", s.handleModels)
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/datasets/", s.handleDatasetLoad)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// requestContext derives the per-request context from the request's
// timeout override or the service default.
func (s *Service) requestContext(r *http.Request, timeoutMillis int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMillis > 0 {
		d = time.Duration(timeoutMillis) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req PredictRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMillis)
	defer cancel()
	resp, err := s.Predict(ctx, req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var batch BatchRequest
	if err := decodeJSON(w, r, &batch); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(batch.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "service: empty batch")
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"service: batch of %d exceeds limit %d", len(batch.Requests), s.cfg.MaxBatch))
		return
	}

	start := time.Now()
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()

	resp := BatchResponse{Responses: make([]BatchItem, len(batch.Requests))}
	// Bounded fan-out: a batch of distinct cold requests must not launch
	// MaxBatch sample pipelines at once.
	sem := make(chan struct{}, s.cfg.BatchParallelism)
	var wg sync.WaitGroup
	for i, req := range batch.Requests {
		wg.Add(1)
		go func(i int, req PredictRequest) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			itemCtx := ctx
			var itemCancel context.CancelFunc = func() {}
			if req.TimeoutMillis > 0 {
				itemCtx, itemCancel = context.WithTimeout(ctx,
					time.Duration(req.TimeoutMillis)*time.Millisecond)
			}
			defer itemCancel()
			pr, err := s.Predict(itemCtx, req)
			if err != nil {
				resp.Responses[i] = BatchItem{Error: err.Error()}
				return
			}
			resp.Responses[i] = BatchItem{Response: pr}
		}(i, req)
	}
	wg.Wait()
	for _, item := range resp.Responses {
		if item.Response != nil && item.Response.CacheHit {
			resp.CacheHits++
		}
	}
	resp.ElapsedMillis = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	models := s.Models()
	writeJSON(w, http.StatusOK, map[string]any{
		"models": models,
		"count":  len(models),
	})
}

// handleDatasets lists the dataset registry (GET /datasets).
func (s *Service) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.DatasetDir == "" {
		writeError(w, http.StatusNotFound, "service: no dataset directory configured")
		return
	}
	datasets, err := s.Datasets()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("service: scanning dataset directory: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":      s.cfg.DatasetDir,
		"datasets": datasets,
		"count":    len(datasets),
	})
}

// handleDatasetLoad serves POST /datasets/{name}/load: resolve the named
// registry dataset, pull it into the graph cache (shared single-flight
// with any concurrent /predict on the same dataset) and report its shape.
func (s *Service) handleDatasetLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/datasets/")
	name, ok := strings.CutSuffix(rest, "/load")
	if !ok || name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusNotFound, "service: want POST /datasets/{name}/load")
		return
	}
	start := time.Now()
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	info, cached, err := s.LoadDataset(ctx, name)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":        info,
		"already_loaded": cached,
		"elapsed_ms":     float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// handleStats exposes the service's operational counters: cache hit
// ratio, in-flight fits, and the shared fit pool's depth — the numbers
// that tell an operator whether FitParallelism is the bottleneck.
func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": s.Uptime().Seconds(),
		"stats":          st,
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": s.Uptime().Seconds(),
		"models":         st.Models,
		"graphs":         st.Graphs,
		"hits":           st.Hits,
		"misses":         st.Misses,
		"evictions":      st.Evictions,
		"fits":           st.Fits,
	})
}

// maxBodyBytes bounds request bodies so one oversized POST cannot exhaust
// the long-running server's memory. Generous for the largest legal batch.
const maxBodyBytes = 8 << 20

// decodeJSON strictly decodes one size-limited JSON body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: malformed request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeServiceError maps service errors to HTTP statuses.
func writeServiceError(w http.ResponseWriter, err error) {
	var se *Error
	if errors.As(err, &se) {
		writeError(w, se.Status, se.Msg)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error())
}
