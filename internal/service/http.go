package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// BatchRequest asks for many predictions in one call. Items are answered
// concurrently; identical model keys share one fit via the cache's
// single-flight, so a what-if sweep over worker counts pays for at most
// one cold path per distinct (algorithm, cluster, training, dataset) key.
type BatchRequest struct {
	Requests []PredictRequest `json:"requests"`
}

// BatchItem is one batch answer: a response or an error, never both.
type BatchItem struct {
	Response *PredictResponse `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// BatchResponse answers a BatchRequest positionally.
type BatchResponse struct {
	Responses []BatchItem `json:"responses"`
	// CacheHits counts items answered from cached models.
	CacheHits int `json:"cache_hits"`
	// ElapsedMillis is the wall-clock time of the whole batch.
	ElapsedMillis float64 `json:"elapsed_ms"`
}

// Handler returns the service's HTTP API (docs/API.md is the full
// reference):
//
//	POST /predict               PredictRequest  -> PredictResponse
//	POST /predict/batch         BatchRequest    -> BatchResponse
//	POST /observe               ObserveRequest  -> ObserveResponse (feedback)
//	GET  /models                -> {"models": [ModelInfo...]}
//	GET  /datasets              -> {"datasets": [DatasetInfo...]} (registry)
//	POST /datasets/{name}/load  -> load a registry dataset into the cache
//	GET  /stats                 -> Stats (pool depth, in-flight fits, hit ratio)
//	GET  /healthz               -> liveness: always 200, honest status field
//	GET  /readyz                -> readiness: 503 while degraded
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/predict/batch", s.handleBatch)
	mux.HandleFunc("/observe", s.handleObserve)
	mux.HandleFunc("/models", s.handleModels)
	mux.HandleFunc("/datasets", s.handleDatasets)
	mux.HandleFunc("/datasets/", s.handleDatasetLoad)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// requestContext derives the per-request context from the request's
// timeout override or the service default.
func (s *Service) requestContext(r *http.Request, timeoutMillis int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMillis > 0 {
		d = time.Duration(timeoutMillis) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// shedError is the 429 the in-flight gate answers when MaxInFlight is
// reached: admission control at the front door, before any body is read.
func (s *Service) shedError() *Error {
	return &Error{
		Status:            http.StatusTooManyRequests,
		RetryAfterSeconds: s.retryAfterSeconds(),
		Msg: fmt.Sprintf("service: %d requests already in flight; retry later",
			s.cfg.MaxInFlight),
	}
}

// rejectIfDraining refuses new prediction work while the service drains:
// 503 so the caller retries elsewhere, Connection: close so keep-alive
// clients and load balancers stop routing to this process instead of
// queueing more requests behind a closing listener. Observability
// endpoints (/stats, /models, /healthz, /readyz) keep answering — the
// drain supervisor itself polls them.
func (s *Service) rejectIfDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	s.drainRejected.Add(1)
	w.Header().Set("Connection", "close")
	writeServiceError(w, &Error{
		Status:            http.StatusServiceUnavailable,
		RetryAfterSeconds: s.retryAfterSeconds(),
		Msg:               "service: draining: shutting down, retry against another replica",
	})
	return true
}

func (s *Service) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.rejectIfDraining(w) {
		return
	}
	if !s.reqGate.tryAcquire() {
		writeServiceError(w, s.shedError())
		return
	}
	defer s.reqGate.release()
	s.activeWork.Add(1)
	defer s.activeWork.Add(-1)
	c := codecPool.Get().(*codec)
	defer codecPool.Put(c)
	var req PredictRequest
	if err := c.decodeJSON(w, r, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMillis)
	defer cancel()
	resp := respPool.Get().(*PredictResponse)
	defer respPool.Put(resp)
	if err := s.predictInto(ctx, req, resp); err != nil {
		c.writeServiceError(w, err)
		return
	}
	c.writeJSON(w, http.StatusOK, resp)
}

// handleObserve serves POST /observe: record one observed actual runtime
// against a cached model key (the closed-loop feedback path). Unknown
// keys are 404s — see Service.Observe.
func (s *Service) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.rejectIfDraining(w) {
		return
	}
	if !s.reqGate.tryAcquire() {
		writeServiceError(w, s.shedError())
		return
	}
	defer s.reqGate.release()
	s.activeWork.Add(1)
	defer s.activeWork.Add(-1)
	c := codecPool.Get().(*codec)
	defer codecPool.Put(c)
	var req ObserveRequest
	if err := c.decodeJSON(w, r, &req); err != nil {
		c.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	resp, err := s.Observe(ctx, req)
	if err != nil {
		c.writeServiceError(w, err)
		return
	}
	c.writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.rejectIfDraining(w) {
		return
	}
	if !s.reqGate.tryAcquire() {
		writeServiceError(w, s.shedError())
		return
	}
	defer s.reqGate.release()
	s.activeWork.Add(1)
	defer s.activeWork.Add(-1)
	c := codecPool.Get().(*codec)
	defer codecPool.Put(c)
	var batch BatchRequest
	if err := c.decodeJSON(w, r, &batch); err != nil {
		c.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(batch.Requests) == 0 {
		c.writeError(w, http.StatusBadRequest, "service: empty batch")
		return
	}
	if len(batch.Requests) > s.cfg.MaxBatch {
		c.writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"service: batch of %d exceeds limit %d", len(batch.Requests), s.cfg.MaxBatch))
		return
	}

	start := time.Now()
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()

	resp := BatchResponse{Responses: make([]BatchItem, len(batch.Requests))}
	// Bounded fan-out: a batch of distinct cold requests must not launch
	// MaxBatch sample pipelines at once.
	sem := make(chan struct{}, s.cfg.BatchParallelism)
	var wg sync.WaitGroup
	for i, req := range batch.Requests {
		wg.Add(1)
		go func(i int, req PredictRequest) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			itemCtx := ctx
			var itemCancel context.CancelFunc = func() {}
			if req.TimeoutMillis > 0 {
				itemCtx, itemCancel = context.WithTimeout(ctx,
					time.Duration(req.TimeoutMillis)*time.Millisecond)
			}
			defer itemCancel()
			pr, err := s.Predict(itemCtx, req)
			if err != nil {
				resp.Responses[i] = BatchItem{Error: err.Error()}
				return
			}
			resp.Responses[i] = BatchItem{Response: pr}
		}(i, req)
	}
	wg.Wait()
	for _, item := range resp.Responses {
		if item.Response != nil && item.Response.CacheHit {
			resp.CacheHits++
		}
	}
	resp.ElapsedMillis = float64(time.Since(start)) / float64(time.Millisecond)
	c.writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	models := s.Models()
	writeJSON(w, http.StatusOK, map[string]any{
		"models": models,
		"count":  len(models),
	})
}

// handleDatasets lists the dataset registry (GET /datasets).
func (s *Service) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.DatasetDir == "" {
		writeError(w, http.StatusNotFound, "service: no dataset directory configured")
		return
	}
	datasets, err := s.Datasets()
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("service: scanning dataset directory: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":      s.cfg.DatasetDir,
		"datasets": datasets,
		"count":    len(datasets),
	})
}

// handleDatasetLoad serves POST /datasets/{name}/load: resolve the named
// registry dataset, pull it into the graph cache (shared single-flight
// with any concurrent /predict on the same dataset) and report its shape.
func (s *Service) handleDatasetLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.rejectIfDraining(w) {
		return
	}
	s.activeWork.Add(1)
	defer s.activeWork.Add(-1)
	rest := strings.TrimPrefix(r.URL.Path, "/datasets/")
	name, ok := strings.CutSuffix(rest, "/load")
	if !ok || name == "" || strings.Contains(name, "/") {
		writeError(w, http.StatusNotFound, "service: want POST /datasets/{name}/load")
		return
	}
	start := time.Now()
	ctx, cancel := s.requestContext(r, 0)
	defer cancel()
	info, cached, err := s.LoadDataset(ctx, name)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":        info,
		"already_loaded": cached,
		"elapsed_ms":     float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// handleStats exposes the service's operational counters: cache hit
// ratio, in-flight fits, and the shared fit pool's depth — the numbers
// that tell an operator whether FitParallelism is the bottleneck.
func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": s.Uptime().Seconds(),
		"stats":          st,
	})
}

// handleHealthz is the LIVENESS probe: always 200 while the process
// serves HTTP, because restarting a degraded-but-serving process would
// destroy the warm caches still answering requests. The status field is
// honest — "ok" or "degraded" per the readiness probes — so operators
// and dashboards see trouble here even though only /readyz changes its
// HTTP status. The pre-existing fields are kept for compatibility.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.Stats()
	rd := s.Readiness()
	status := "ok"
	if !rd.Ready {
		status = rd.Status
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"ready":          rd.Ready,
		"reasons":        rd.Reasons,
		"uptime_seconds": s.Uptime().Seconds(),
		"models":         st.Models,
		"graphs":         st.Graphs,
		"hits":           st.Hits,
		"misses":         st.Misses,
		"evictions":      st.Evictions,
		"fits":           st.Fits,
	})
}

// handleReadyz is the READINESS probe: 503 while a dependency needed for
// new work is broken (dataset dir unreadable, history unwritable), 200
// otherwise. Load balancers drain traffic on 503; the process keeps
// serving warm hits meanwhile, and the endpoint flips back by itself when
// the dependency is restored (probes run live, nothing is cached).
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	rd := s.Readiness()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

// maxBodyBytes bounds request bodies so one oversized POST cannot exhaust
// the long-running server's memory. Generous for the largest legal batch.
const maxBodyBytes = 8 << 20

// codec is one request's pooled JSON machinery: a body read buffer, a
// bytes.Reader over it, and a write buffer with a json.Encoder bound to
// it once (the encoder holds only the writer, so it is reusable across
// requests as long as the buffer identity is stable). Pooling these is
// most of the serving path's allocation win: without it every request
// pays a fresh read buffer, encoder and encode buffer.
type codec struct {
	body []byte
	br   bytes.Reader
	out  bytes.Buffer
	enc  *json.Encoder
}

var codecPool = sync.Pool{New: func() any {
	c := &codec{body: make([]byte, 0, 4096)}
	c.enc = json.NewEncoder(&c.out)
	return c
}}

// respPool recycles the response structs the /predict handler fills —
// predictInto overwrites every field, so entries carry no state between
// requests (the slices they point at belong to immutable templates and
// are never written through).
var respPool = sync.Pool{New: func() any { return new(PredictResponse) }}

// readBody reads the size-limited request body into the codec's reused
// buffer and points the codec's reader at it.
func (c *codec) readBody(w http.ResponseWriter, r *http.Request) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	b := c.body[:0]
	for {
		if len(b) == cap(b) {
			b = append(b, 0)[:len(b)]
		}
		n, err := body.Read(b[len(b):cap(b)])
		b = b[:len(b)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			c.body = b
			return err
		}
	}
	c.body = b
	c.br.Reset(b)
	return nil
}

// decodeJSON strictly decodes one size-limited JSON body into v. The
// decoder itself is fresh per request (encoding/json has no decoder
// reset), but it reads from the codec's pooled buffer instead of pulling
// the body through its own internal buffering.
func (c *codec) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	if err := c.readBody(w, r); err != nil {
		return fmt.Errorf("service: malformed request body: %w", err)
	}
	dec := json.NewDecoder(&c.br)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: malformed request body: %w", err)
	}
	return nil
}

// writeJSON encodes v into the codec's pooled buffer and writes it out
// in one Write with an explicit Content-Length. The response bytes are
// exactly what json.Encoder produces — the pre-pooling path encoded
// straight to the wire, and the warm-path fingerprints pin that those
// bytes never change.
func (c *codec) writeJSON(w http.ResponseWriter, status int, v any) {
	c.out.Reset()
	if err := c.enc.Encode(v); err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(&c.out, `{"error":%q}`, "service: encoding response: "+err.Error())
		_, _ = w.Write(c.out.Bytes())
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(c.out.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(c.out.Bytes())
}

func (c *codec) writeError(w http.ResponseWriter, status int, msg string) {
	c.writeJSON(w, status, map[string]string{"error": msg})
}

// writeJSON and writeError are the non-pooled forms for handlers that
// have no codec in hand (one-off endpoints; tests).
func writeJSON(w http.ResponseWriter, status int, v any) {
	c := codecPool.Get().(*codec)
	c.writeJSON(w, status, v)
	codecPool.Put(c)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// writeServiceError maps service errors to HTTP statuses, attaching the
// Retry-After hint shed (429/503) responses carry.
func (c *codec) writeServiceError(w http.ResponseWriter, err error) {
	var se *Error
	if errors.As(err, &se) {
		if se.RetryAfterSeconds > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(se.RetryAfterSeconds))
		}
		c.writeError(w, se.Status, se.Msg)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		c.writeError(w, http.StatusGatewayTimeout, err.Error())
		return
	}
	c.writeError(w, http.StatusInternalServerError, err.Error())
}

func writeServiceError(w http.ResponseWriter, err error) {
	c := codecPool.Get().(*codec)
	c.writeServiceError(w, err)
	codecPool.Put(c)
}
