package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"testing"

	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/features"
)

// fitPins pin the full fit pipeline — fitted coefficients, intercept, R²,
// iteration count and per-iteration predictions, exact float64 bits —
// across sample-cluster worker counts {1, 2, 7} and two base seeds. The
// engine rewrite (persistent workers, reused buffers, send-side exact
// combining) must not move any of these: coefficients derive from
// send-time counters and the master's oracle pricing, both of which the
// engine-determinism pins hold bit-identical to the pre-rewrite message
// path. Regenerate (only after a justified semantics change) with:
//
//	PREDICT_CAPTURE_PINS=1 go test ./internal/core -run TestFitCoefficientsPinnedAcrossWorkers -v
var fitPins = map[string]string{
	"s5/w1":  "c7c2b8ece48dba8e",
	"s5/w2":  "316da447a8b41aef",
	"s5/w7":  "9426463f167c1a2c",
	"s11/w1": "8da3d8e0fa0c9f05",
	"s11/w2": "6233b94594273603",
	"s11/w7": "192a08327867e8ab",
}

// fitFingerprint digests everything a cached model serves from.
func fitFingerprint(t *testing.T, f *Fitted, perIter []float64) string {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wf := func(v float64) { wu(math.Float64bits(v)) }

	coeffs, intercept := f.Model.Coefficients()
	names := make([]string, 0, len(coeffs))
	for name := range coeffs {
		names = append(names, string(name))
	}
	sort.Strings(names)
	for _, name := range names {
		h.Write([]byte(name))
		wf(coeffs[features.Name(name)])
	}
	wf(intercept)
	wf(f.Model.R2())
	wu(uint64(f.Iterations))
	for _, s := range perIter {
		wf(s)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestFitCoefficientsPinnedAcrossWorkers(t *testing.T) {
	capture := os.Getenv("PREDICT_CAPTURE_PINS") != ""
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	for _, seed := range []uint64{5, 11} {
		for _, workers := range []int{1, 2, 7} {
			key := fmt.Sprintf("s%d/w%d", seed, workers)
			o := cluster.DefaultOracle()
			o.NoiseStdDev = 0.02
			o.MemoryBudgetBytes = 0
			opts := testOptions(0.1)
			opts.Sampling.Seed = seed
			opts.BSP = bsp.Config{Workers: workers, Oracle: &o, Seed: seed}
			fitted, err := New(opts).Fit(pr, g)
			if err != nil {
				t.Fatalf("%s: Fit: %v", key, err)
			}
			pred, err := fitted.Extrapolate(g, 0)
			if err != nil {
				t.Fatalf("%s: Extrapolate: %v", key, err)
			}
			got := fitFingerprint(t, fitted, pred.PerIterationSeconds)
			if capture {
				fmt.Printf("\t%q: %q,\n", key, got)
				continue
			}
			if want := fitPins[key]; got != want {
				t.Errorf("%s: fit fingerprint %s, pinned %s — coefficients or predictions moved bit-wise", key, got, want)
			}
		}
	}
}
