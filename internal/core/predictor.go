// Package core implements the PREDIcT pipeline of Figure 1: sample the
// input graph, run the transformed algorithm on the sample while profiling
// key input features, extrapolate the features to full-graph scale, and
// translate them into runtime through a fitted cost model.
package core

import (
	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/costmodel"
	"predict/internal/features"
	"predict/internal/graph"
	"predict/internal/parallel"
	"predict/internal/sampling"
)

// Options configures a Predictor.
type Options struct {
	// Method is the sampling technique; the default is Biased Random Jump,
	// the paper's default (§3.2.1).
	Method sampling.Method
	// Sampling carries the sampling ratio, restart probability, seed etc.
	Sampling sampling.Options
	// BSP is the execution environment used for the sample run. Per the
	// paper's assumption iii, it must match the actual run's environment
	// (same workers, same cost oracle).
	BSP bsp.Config
	// Mode selects per-iteration feature reduction; the default is
	// critical-path share scaling (§3.4).
	Mode features.Mode
	// CostModel configures regression and feature selection.
	CostModel costmodel.Options
	// History holds profiled runs of the same algorithm on other datasets;
	// when present they join the sample run as training data (§3.4,
	// "Training Methodology").
	History []costmodel.TrainingRun
	// TrainingRatios lists additional sampling ratios whose sample runs
	// train the cost model alongside the main sample run. The paper trains
	// on sample runs at ratios 0.05, 0.1, 0.15 and 0.2 (§5.2); multiple
	// scales give the regression the feature range a single run of a
	// constant-per-iteration algorithm cannot provide.
	TrainingRatios []float64
	// Parallelism bounds how many sample+profile pipelines Fit runs
	// concurrently (the main sample run plus one per training ratio).
	// Zero selects GOMAXPROCS; 1 selects the sequential path. Any value
	// yields bit-identical models: every run's randomness derives from
	// its ratio index (sampling.DeriveSeed), never from execution order.
	Parallelism int
	// Pool optionally supplies a shared worker pool for the sample runs,
	// so many predictors (e.g. a service's concurrent cold fits) can
	// share one parallelism budget. When nil, Fit uses a transient pool
	// of Parallelism slots.
	Pool *parallel.Pool
	// DisableTransform skips the transform function (ablation: the §1.1
	// example shows why this breaks iteration invariants).
	DisableTransform bool
	// ExtrapolateVerticesOnly scales all features by eV (ablation for the
	// two-factor extrapolator).
	ExtrapolateVerticesOnly bool
}

// Predictor runs the PREDIcT methodology for one algorithm on one graph.
type Predictor struct {
	opts Options
}

// New returns a Predictor with the given options.
func New(opts Options) *Predictor {
	if opts.Method == "" {
		opts.Method = sampling.BiasedRandomJump
	}
	return &Predictor{opts: opts}
}

// Prediction is the outcome of the pipeline.
type Prediction struct {
	// Algorithm is the predicted algorithm's name.
	Algorithm string
	// Iterations is the predicted iteration count — the sample run's
	// count, preserved by the transform function rather than extrapolated.
	Iterations int
	// PerIterationSeconds holds the cost model's per-iteration runtime
	// estimates on extrapolated features.
	PerIterationSeconds []float64
	// SuperstepSeconds is the predicted superstep-phase runtime (the sum
	// of PerIterationSeconds) — the quantity §2.2 targets.
	SuperstepSeconds float64
	// PredictedRemoteMessageBytes is the extrapolated total of remote
	// message bytes across iterations (Figure 6's second panel).
	PredictedRemoteMessageBytes float64
	// Model is the fitted cost model (inspect R2, selected features,
	// coefficients).
	Model *costmodel.Model
	// Scale holds the extrapolation factors eV, eE.
	Scale features.Scale
	// Sample is the sampling result used for the sample run.
	Sample *sampling.Result
	// SampleRun is the profiled sample run.
	SampleRun *algorithms.RunInfo
	// SampleRunSeconds is the end-to-end simulated cost of the sample run,
	// the overhead quantity of Table 3.
	SampleRunSeconds float64
	// CriticalShareSample/Full are the critical-path workers' outbound
	// edge shares on the sample and full graph.
	CriticalShareSample float64
	CriticalShareFull   float64
	// Runtime is the prediction's uncertainty distribution (mean, spread,
	// p50/p95 and blend regime). It is populated by ExtrapolateBlended;
	// plain Extrapolate leaves it zero.
	Runtime Distribution
}

// Predict runs the full pipeline for alg on g: the expensive half (Fit:
// sample, profile, train) followed by the cheap half (Extrapolate: scale
// features to g and price them). The returned Prediction carries a
// populated Runtime distribution (extrapolation regime: no observations).
// Callers that issue repeated or what-if queries should hold on to Fit's
// result and call Extrapolate or ExtrapolateBlended directly.
func (p *Predictor) Predict(alg algorithms.Algorithm, g *graph.Graph) (*Prediction, error) {
	fitted, err := p.Fit(alg, g)
	if err != nil {
		return nil, err
	}
	return fitted.ExtrapolateBlended(g, 0, nil, 0)
}

// SampleVertexRatio returns the achieved |V_S|/|V_G| of the sample run.
func (p *Prediction) SampleVertexRatio() float64 {
	if p.Sample == nil {
		return 0
	}
	return p.Sample.VertexRatio
}

// SampleEdgeRatio returns the achieved |E_S|/|E_G| of the sample run.
func (p *Prediction) SampleEdgeRatio() float64 {
	if p.Sample == nil {
		return 0
	}
	return p.Sample.EdgeRatio
}

// Evaluation compares a prediction against a profiled actual run.
type Evaluation struct {
	PredictedIterations int
	ActualIterations    int
	// IterationsError is the signed relative error on iteration count —
	// the y-axis of Figures 4, 5, 6 (top) and 9.
	IterationsError  float64
	PredictedSeconds float64
	ActualSeconds    float64
	// RuntimeError is the signed relative error on superstep-phase
	// runtime — the y-axis of Figures 7 and 8.
	RuntimeError         float64
	PredictedRemoteBytes float64
	ActualRemoteBytes    float64
	// RemoteBytesError is the signed relative error on total remote
	// message bytes — the y-axis of Figure 6 (bottom).
	RemoteBytesError float64
}

// Evaluate computes the paper's error metrics for a prediction against the
// actual run's profile.
func Evaluate(pred *Prediction, actual *algorithms.RunInfo) Evaluation {
	ev := Evaluation{
		PredictedIterations:  pred.Iterations,
		ActualIterations:     actual.Iterations,
		PredictedSeconds:     pred.SuperstepSeconds,
		ActualSeconds:        actual.Profile.SuperstepPhaseSeconds(),
		PredictedRemoteBytes: pred.PredictedRemoteMessageBytes,
	}
	for i := range actual.Profile.Supersteps {
		ev.ActualRemoteBytes += float64(actual.Profile.Supersteps[i].Total().RemoteMessageBytes)
	}
	ev.IterationsError = signedRel(float64(ev.PredictedIterations), float64(ev.ActualIterations))
	ev.RuntimeError = signedRel(ev.PredictedSeconds, ev.ActualSeconds)
	ev.RemoteBytesError = signedRel(ev.PredictedRemoteBytes, ev.ActualRemoteBytes)
	return ev
}

func signedRel(pred, actual float64) float64 {
	if actual == 0 {
		return 0
	}
	return (pred - actual) / actual
}
