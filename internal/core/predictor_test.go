package core

import (
	"math"
	"testing"

	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/costmodel"
	"predict/internal/features"
	"predict/internal/gen"
	"predict/internal/graph"
	"predict/internal/sampling"
)

// testEnv returns the shared BSP environment for predictor tests: modest
// noise, no memory budget, fixed seed.
func testEnv() bsp.Config {
	o := cluster.DefaultOracle()
	o.NoiseStdDev = 0.02
	o.MemoryBudgetBytes = 0
	return bsp.Config{Workers: 4, Oracle: &o, Seed: 11}
}

func testOptions(ratio float64) Options {
	return Options{
		Sampling:       sampling.Options{Ratio: ratio, Seed: 5},
		BSP:            testEnv(),
		TrainingRatios: []float64{0.05, 0.1, 0.15, 0.2},
	}
}

func testGraphBA() *graph.Graph {
	return gen.BarabasiAlbert(6000, 6, 0.4, 42)
}

func TestPredictPageRankEndToEnd(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	p := New(testOptions(0.15))
	pred, err := p.Predict(pr, g)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	actual, err := pr.Run(g, testEnv())
	if err != nil {
		t.Fatalf("actual run: %v", err)
	}
	ev := Evaluate(pred, actual)

	if math.Abs(ev.IterationsError) > 0.40 {
		t.Errorf("iterations error %.2f (predicted %d, actual %d), want within 40%%",
			ev.IterationsError, ev.PredictedIterations, ev.ActualIterations)
	}
	if math.Abs(ev.RuntimeError) > 0.60 {
		t.Errorf("runtime error %.2f (predicted %.1fs, actual %.1fs), want within 60%%",
			ev.RuntimeError, ev.PredictedSeconds, ev.ActualSeconds)
	}
	if pred.Model.R2() < 0.5 {
		t.Errorf("cost model R2 = %v, suspiciously poor fit", pred.Model.R2())
	}
	// The sample run's superstep phase must be cheaper than the actual
	// run's (fixed setup costs dominate both at this tiny test scale, so
	// compare the phase PREDIcT targets).
	if s, a := pred.SampleRun.Profile.SuperstepPhaseSeconds(), actual.Profile.SuperstepPhaseSeconds(); s >= a {
		t.Errorf("sample superstep phase (%.1fs) not cheaper than actual (%.1fs)", s, a)
	}
}

func TestPredictTopKEndToEnd(t *testing.T) {
	g := testGraphBA()
	tk := algorithms.NewTopKRanking()
	tk.PageRank.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	p := New(testOptions(0.15))
	pred, err := p.Predict(tk, g)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	actual, err := tk.Run(g, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(pred, actual)
	if math.Abs(ev.RemoteBytesError) > 0.8 {
		t.Errorf("remote bytes error %.2f, want within 80%%", ev.RemoteBytesError)
	}
	if ev.ActualRemoteBytes == 0 || ev.PredictedRemoteBytes == 0 {
		t.Error("remote byte accounting missing")
	}
}

func TestPredictionIterationsComeFromSampleRun(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.01, g.NumVertices())
	p := New(testOptions(0.1))
	pred, err := p.Predict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Iterations != pred.SampleRun.Iterations {
		t.Errorf("Iterations %d != sample run's %d", pred.Iterations, pred.SampleRun.Iterations)
	}
	if len(pred.PerIterationSeconds) != pred.Iterations {
		t.Errorf("%d per-iteration estimates for %d iterations",
			len(pred.PerIterationSeconds), pred.Iterations)
	}
	var sum float64
	for _, s := range pred.PerIterationSeconds {
		sum += s
	}
	if math.Abs(sum-pred.SuperstepSeconds) > 1e-9 {
		t.Error("SuperstepSeconds != sum of per-iteration estimates")
	}
}

func TestTransformMattersForPageRank(t *testing.T) {
	// Without the transform function the sample run uses the full graph's
	// absolute threshold; on a 10x smaller sample the per-vertex deltas
	// are 10x larger, so the untransformed run must need MORE iterations
	// than the transformed one (it starts further above the threshold).
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	with := New(testOptions(0.1))
	predWith, err := with.Predict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	optsNo := testOptions(0.1)
	optsNo.DisableTransform = true
	without := New(optsNo)
	predWithout, err := without.Predict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	if predWithout.Iterations <= predWith.Iterations {
		t.Errorf("untransformed sample run %d iterations <= transformed %d; transform should matter",
			predWithout.Iterations, predWith.Iterations)
	}
	actual, err := pr.Run(g, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	errWith := math.Abs(float64(predWith.Iterations-actual.Iterations) / float64(actual.Iterations))
	errWithout := math.Abs(float64(predWithout.Iterations-actual.Iterations) / float64(actual.Iterations))
	if errWith > errWithout {
		t.Errorf("transform hurt iteration accuracy: with %.2f, without %.2f", errWith, errWithout)
	}
}

func TestHistoryTrainingIsUsed(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	// History: an actual run on a different dataset.
	other := gen.RMAT(4000, 10, gen.DefaultRMAT(), 77)
	prOther := algorithms.NewPageRank()
	prOther.Tau = algorithms.TauForTolerance(0.001, other.NumVertices())
	otherRun, err := prOther.Run(other, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(0.1)
	opts.History = []costmodel.TrainingRun{
		costmodel.FromProfile("actual RMAT", otherRun.Profile, features.ModeCriticalShare),
	}
	pred, err := New(opts).Predict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Model.R2() < 0.5 {
		t.Errorf("history-trained model R2 = %v", pred.Model.R2())
	}
	// The prediction should still be in a sane band.
	actual, err := pr.Run(g, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(pred, actual)
	if math.Abs(ev.RuntimeError) > 0.8 {
		t.Errorf("runtime error with history = %.2f", ev.RuntimeError)
	}
}

func TestPredictErrorPaths(t *testing.T) {
	g := testGraphBA()
	pr := algorithms.NewPageRank()

	// Bad sampling ratio propagates.
	opts := testOptions(0)
	if _, err := New(opts).Predict(pr, g); err == nil {
		t.Error("ratio 0 accepted")
	}
}

func TestDefaultMethodIsBRJ(t *testing.T) {
	p := New(Options{})
	if p.opts.Method != sampling.BiasedRandomJump {
		t.Errorf("default method = %s, want BRJ", p.opts.Method)
	}
}

func TestEvaluateArithmetic(t *testing.T) {
	pred := &Prediction{
		Iterations:                  10,
		SuperstepSeconds:            200,
		PredictedRemoteMessageBytes: 1000,
	}
	actual := &algorithms.RunInfo{
		Iterations: 8,
		Profile:    &bsp.Profile{},
	}
	ev := Evaluate(pred, actual)
	if math.Abs(ev.IterationsError-0.25) > 1e-12 {
		t.Errorf("IterationsError = %v, want 0.25", ev.IterationsError)
	}
	if ev.ActualSeconds != 0 || ev.RuntimeError != 0 {
		t.Errorf("zero-actual runtime handling: %+v", ev)
	}
}
