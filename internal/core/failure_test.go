package core

import (
	"errors"
	"math"
	"testing"

	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/cluster"
	"predict/internal/features"
	"predict/internal/gen"
	"predict/internal/sampling"
)

// TestPredictPropagatesSampleRunOOM injects a tiny memory budget so the
// sample run itself blows the simulated cluster memory; the predictor must
// surface bsp.ErrOutOfMemory instead of fabricating a prediction.
func TestPredictPropagatesSampleRunOOM(t *testing.T) {
	g := gen.BarabasiAlbert(4000, 8, 0.4, 1)
	o := cluster.DefaultOracle()
	o.NoiseStdDev = 0
	o.MemoryBudgetBytes = 1000 // absurdly small
	p := New(Options{
		Sampling: sampling.Options{Ratio: 0.2, Seed: 2},
		BSP:      bsp.Config{Workers: 4, Oracle: &o},
	})
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.01, g.NumVertices())
	_, err := p.Predict(pr, g)
	if !errors.Is(err, bsp.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

// TestPredictPropagatesNonConvergence injects a superstep cap too small
// for the sample run to converge.
func TestPredictPropagatesNonConvergence(t *testing.T) {
	g := gen.BarabasiAlbert(4000, 8, 0.4, 1)
	pr := algorithms.NewPageRank()
	pr.Tau = 1e-15 // unreachable threshold
	pr.MaxIterations = 5
	p := New(testOptions(0.2))
	_, err := p.Predict(pr, g)
	if !errors.Is(err, bsp.ErrNoConvergence) {
		t.Fatalf("err = %v, want ErrNoConvergence", err)
	}
}

// TestPredictTrainingRatioFailurePropagates injects a failing training
// ratio (out of range) to exercise the training-sample-run error path.
func TestPredictTrainingRatioFailurePropagates(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 6, 0.4, 1)
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.01, g.NumVertices())
	opts := testOptions(0.1)
	opts.TrainingRatios = []float64{0.1, 7.5} // invalid ratio
	_, err := New(opts).Predict(pr, g)
	if err == nil {
		t.Fatal("invalid training ratio accepted")
	}
}

// TestPredictModeVariants exercises the ablation feature modes end to end.
func TestPredictModeVariants(t *testing.T) {
	g := gen.BarabasiAlbert(4000, 6, 0.4, 7)
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())
	actual, err := pr.Run(g, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []features.Mode{
		features.ModeCriticalShare, features.ModeMeanWorker, features.ModeTotals,
	} {
		opts := testOptions(0.15)
		opts.Mode = mode
		pred, err := New(opts).Predict(pr, g)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		ev := Evaluate(pred, actual)
		if math.Abs(ev.RuntimeError) > 1.0 {
			t.Errorf("mode %v: runtime error %+.2f out of band", mode, ev.RuntimeError)
		}
	}
}

// TestPredictVerticesOnlyExtrapolationDiffers verifies the ablation knob
// actually changes the extrapolation.
func TestPredictVerticesOnlyExtrapolationDiffers(t *testing.T) {
	g := gen.BarabasiAlbert(4000, 6, 0.4, 7)
	pr := algorithms.NewPageRank()
	pr.Tau = algorithms.TauForTolerance(0.001, g.NumVertices())

	base := testOptions(0.1)
	predFull, err := New(base).Predict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	ablate := testOptions(0.1)
	ablate.ExtrapolateVerticesOnly = true
	predV, err := New(ablate).Predict(pr, g)
	if err != nil {
		t.Fatal(err)
	}
	if predV.Scale.EE != predV.Scale.EV {
		t.Errorf("VerticesOnly: EE = %v, want EV = %v", predV.Scale.EE, predV.Scale.EV)
	}
	// On a hub-biased sample eE > eV is impossible... rather: the two
	// predictions must differ unless the sample happened to have
	// identical ratios.
	if predFull.Scale.EE != predFull.Scale.EV &&
		predFull.PredictedRemoteMessageBytes == predV.PredictedRemoteMessageBytes {
		t.Error("ablation had no effect on extrapolated bytes")
	}
}

// TestPredictSemiClusteringEndToEnd covers the symmetrizing-algorithm path
// (share consistency) end to end.
func TestPredictSemiClusteringEndToEnd(t *testing.T) {
	ds, err := gen.ByPrefix("UK")
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Generate(0.08, 3)
	sc := algorithms.NewSemiClustering()
	pred, err := New(testOptions(0.15)).Predict(sc, g)
	if err != nil {
		t.Fatalf("Predict(SC): %v", err)
	}
	actual, err := sc.Run(g, testEnv())
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(pred, actual)
	if math.Abs(ev.RuntimeError) > 0.9 {
		t.Errorf("SC runtime error %+.2f out of band (pred %.0fs, actual %.0fs)",
			ev.RuntimeError, ev.PredictedSeconds, ev.ActualSeconds)
	}
}
