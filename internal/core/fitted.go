package core

import (
	"context"
	"fmt"

	"predict/internal/algorithms"
	"predict/internal/bsp"
	"predict/internal/costmodel"
	"predict/internal/features"
	"predict/internal/graph"
	"predict/internal/parallel"
	"predict/internal/sampling"
)

// Fitted is the reusable product of the expensive half of the pipeline:
// the profiled sample runs and the cost model fitted on them (steps 1–5 of
// Figure 1). A Fitted is independent of the extrapolation target, so a
// prediction service can cache it and answer repeated or what-if queries
// by re-running only Extrapolate — the cheap half — against a full graph
// and a (possibly hypothetical) worker count.
type Fitted struct {
	// Algorithm is the fitted algorithm's Name().
	Algorithm string
	// Iterations is the sample run's superstep count, which the transform
	// function preserves at full scale.
	Iterations int
	// Model is the fitted per-iteration cost model.
	Model *costmodel.Model
	// IterFeatures holds the sample run's per-iteration feature vectors,
	// mode-reduced at sample scale — the vectors Extrapolate scales up.
	IterFeatures []features.IterationFeatures
	// RemoteBytesPerIter holds the sample run's raw (ModeTotals) remote
	// message bytes per iteration, extrapolated by eE for the Figure 6
	// remote-bytes prediction.
	RemoteBytesPerIter []float64
	// SampleVertices/SampleEdges are the sample graph's size, the
	// denominators of the extrapolation factors eV and eE.
	SampleVertices int
	SampleEdges    int64
	// SampleVertexRatio/SampleEdgeRatio are the achieved sampling ratios.
	SampleVertexRatio float64
	SampleEdgeRatio   float64
	// SampleCriticalShare is the structural critical-path share
	// bsp.CriticalShareOf(sample graph, SampleWorkers): the denominator of
	// the share-rescaling factor of §3.4.
	SampleCriticalShare float64
	// ProfiledCriticalShare is the profiled critical share of the sample
	// run (reported on Prediction for diagnostics).
	ProfiledCriticalShare float64
	// SampleRunSeconds is the simulated end-to-end cost of the main sample
	// run — the planning overhead of Table 3, paid once per Fitted.
	SampleRunSeconds float64
	// SampleWorkers is the resolved worker count of the sample cluster.
	// Per the paper's assumption iii the sample and actual environments
	// match; Extrapolate defaults to this count.
	SampleWorkers int
	// Mode is the feature-reduction mode the model was trained under.
	Mode features.Mode
	// VerticesOnly records the eV-only extrapolation ablation.
	VerticesOnly bool
	// TrainingRows is the flattened training matrix the model was fitted
	// on (history + main sample run + additional-ratio runs), kept so the
	// model can be refitted bit-identically after persistence.
	TrainingRows []features.IterationFeatures
	// CostModel records the training options, for faithful refits.
	CostModel costmodel.Options

	// Sample and SampleRun carry the raw sampling and profiling artifacts
	// when the Fitted was produced in-process by Fit. They are nil on a
	// Fitted rebuilt from a persisted record; Extrapolate does not need
	// them.
	Sample    *sampling.Result
	SampleRun *algorithms.RunInfo
}

// sampleTask describes one sample+profile pipeline of a fit: the main
// sample run (index 0) or one additional training-ratio run. Its seed is
// fixed before execution starts, which is what makes the parallel fan-out
// bit-identical to the sequential path.
type sampleTask struct {
	ratio float64
	seed  uint64
}

// sampleOutcome is a completed sampleTask's artifacts.
type sampleOutcome struct {
	sample *sampling.Result
	run    *algorithms.RunInfo
}

// Fit runs the expensive half of the pipeline for alg on g: sample the
// graph, profile the transformed sample run (plus one run per additional
// training ratio), and fit the cost model. The result can be cached and
// extrapolated many times.
func (p *Predictor) Fit(alg algorithms.Algorithm, g *graph.Graph) (*Fitted, error) {
	return p.FitContext(context.Background(), alg, g)
}

// FitContext is Fit with cancellation: the per-ratio sample pipelines run
// concurrently on Options.Pool (or a transient Options.Parallelism-sized
// pool), and ctx cancels pipelines that have not started yet. Each
// pipeline's randomness is fixed by its ratio index before execution
// (sampling.DeriveSeed), so the fitted model's coefficients are
// bit-identical at every parallelism level. Cancellation is observed
// between pipeline stages, not inside a profiled run.
//
// The sampling stages are allocation-light by construction: every pipeline
// draws on pooled sampling workspaces (epoch-stamped membership tables,
// reused visited buffers) and on g's shared degree artifacts (the BRJ seed
// ordering is built once per graph, not once per ratio), so a fit's four
// training-ratio samples — and every later fit on the same cached graph —
// reuse the same steady-state memory whether they run sequentially or
// fanned out on the pool. See DESIGN.md §8.
func (p *Predictor) FitContext(ctx context.Context, alg algorithms.Algorithm, g *graph.Graph) (*Fitted, error) {
	// Task 0 is the main sample run; the rest are the additional
	// training-ratio runs in declaration order, each seeded from its
	// index in Options.TrainingRatios.
	tasks := []sampleTask{{ratio: p.opts.Sampling.Ratio, seed: p.opts.Sampling.Seed}}
	for i, ratio := range p.opts.TrainingRatios {
		if ratio == p.opts.Sampling.Ratio {
			continue // the main sample run already contributes
		}
		tasks = append(tasks, sampleTask{
			ratio: ratio,
			seed:  sampling.DeriveSeed(p.opts.Sampling.Seed, uint64(i)),
		})
	}

	pool := p.opts.Pool
	if pool == nil {
		pool = parallel.NewPool(p.opts.Parallelism)
	}
	outcomes := make([]sampleOutcome, len(tasks))
	err := pool.ForEach(ctx, len(tasks), func(taskCtx context.Context, i int) error {
		t := tasks[i]
		sOpts := p.opts.Sampling
		sOpts.Ratio = t.ratio
		sOpts.Seed = t.seed

		// Sample run input: structure-preserving sample of g.
		s, err := sampling.Sample(g, p.opts.Method, sOpts)
		if err != nil {
			if i == 0 {
				return fmt.Errorf("core: sampling: %w", err)
			}
			return fmt.Errorf("core: training sample at ratio %v: %w", t.ratio, err)
		}
		// Cancellation boundary between the two pipeline stages: the
		// profiled run is the expensive half of a pipeline, so a fit past
		// its deadline stops here instead of pricing a doomed run.
		if err := taskCtx.Err(); err != nil {
			return err
		}
		// Transform function: adjust convergence parameters to the
		// sample, then profile the transformed run.
		runAlg := alg
		if !p.opts.DisableTransform {
			runAlg = alg.Transformed(s.VertexRatio)
		}
		ri, err := runAlg.Run(s.Graph, p.opts.BSP)
		if err != nil {
			if i == 0 {
				return fmt.Errorf("core: sample run: %w", err)
			}
			return fmt.Errorf("core: training sample run at ratio %v: %w", t.ratio, err)
		}
		outcomes[i] = sampleOutcome{sample: s, run: ri}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sample, sampleRun := outcomes[0].sample, outcomes[0].run

	// Cost model: train on the sample run, the additional-ratio sample
	// runs, and any history — assembled in the sequential path's order.
	iterFeats := features.FromProfile(sampleRun.Profile, p.opts.Mode)
	training := append(append([]costmodel.TrainingRun(nil), p.opts.History...),
		costmodel.TrainingRun{Source: "sample", Iters: iterFeats})
	for i := 1; i < len(tasks); i++ {
		training = append(training, costmodel.FromProfile(
			fmt.Sprintf("sample sr=%.2f", tasks[i].ratio),
			outcomes[i].run.Profile, p.opts.Mode))
	}
	model, err := costmodel.Train(training, p.opts.CostModel)
	if err != nil {
		return nil, fmt.Errorf("core: training cost model: %w", err)
	}

	workers := p.opts.BSP.Workers
	if workers == 0 {
		workers = bsp.DefaultWorkers
	}
	f := &Fitted{
		Algorithm:             alg.Name(),
		Iterations:            sampleRun.Iterations,
		Model:                 model,
		IterFeatures:          iterFeats,
		SampleVertices:        sample.Graph.NumVertices(),
		SampleEdges:           sample.Graph.NumEdges(),
		SampleVertexRatio:     sample.VertexRatio,
		SampleEdgeRatio:       sample.EdgeRatio,
		SampleCriticalShare:   bsp.CriticalShareOf(sample.Graph, workers),
		ProfiledCriticalShare: sampleRun.Profile.CriticalShare(),
		SampleRunSeconds:      sampleRun.Profile.TotalSeconds(),
		SampleWorkers:         workers,
		Mode:                  p.opts.Mode,
		VerticesOnly:          p.opts.ExtrapolateVerticesOnly,
		CostModel:             p.opts.CostModel,
		Sample:                sample,
		SampleRun:             sampleRun,
	}
	for _, tr := range training {
		f.TrainingRows = append(f.TrainingRows, tr.Iters...)
	}
	for i := range sampleRun.Profile.Supersteps {
		f.RemoteBytesPerIter = append(f.RemoteBytesPerIter,
			float64(sampleRun.Profile.Supersteps[i].Total().RemoteMessageBytes))
	}
	return f, nil
}

// Extrapolate runs the cheap half of the pipeline: scale the fitted sample
// features to g and translate them into per-iteration runtime through the
// cached cost model. workers is the what-if cluster size of the target
// run; zero selects the sample cluster's size (the paper's assumption iii
// setting). A non-default workers answers capacity-planning questions —
// the cost model's per-unit rates are hardware properties, so only the
// critical-path share moves — at the cost of stepping outside the paper's
// matched-environment assumption.
func (f *Fitted) Extrapolate(g *graph.Graph, workers int) (*Prediction, error) {
	if workers <= 0 {
		workers = f.SampleWorkers
	}
	scale, shareFactor, shareG, err := f.extrapolationScale(g, workers)
	if err != nil {
		return nil, err
	}

	// Per-iteration prediction on extrapolated features.
	pred := &Prediction{
		Algorithm:           f.Algorithm,
		Iterations:          f.Iterations,
		Model:               f.Model,
		Scale:               scale,
		Sample:              f.Sample,
		SampleRun:           f.SampleRun,
		SampleRunSeconds:    f.SampleRunSeconds,
		CriticalShareSample: f.ProfiledCriticalShare,
		CriticalShareFull:   shareG,
	}
	for i, it := range f.IterFeatures {
		x := scale.Apply(it.Vector).RescaleShare(shareFactor)
		secs := f.Model.PredictIteration(x)
		pred.PerIterationSeconds = append(pred.PerIterationSeconds, secs)
		pred.SuperstepSeconds += secs
		if i < len(f.RemoteBytesPerIter) {
			pred.PredictedRemoteMessageBytes += f.RemoteBytesPerIter[i] * scale.EE
		}
	}
	return pred, nil
}

// extrapolationScale computes the extrapolation inputs shared by
// Extrapolate and ExtrapolateBlended: the eV/eE scale from sample to g,
// the §3.4 critical-path share rescaling factor, and g's structural
// critical share at the given worker count. Both callers must price
// feature vectors through identical arithmetic, so the computation lives
// in one place.
func (f *Fitted) extrapolationScale(g *graph.Graph, workers int) (scale features.Scale, shareFactor, shareG float64, err error) {
	// Extrapolation factors from full-graph and sample sizes.
	scale, err = features.NewScale(g.NumVertices(), f.SampleVertices,
		g.NumEdges(), f.SampleEdges)
	if err != nil {
		return features.Scale{}, 0, 0, fmt.Errorf("core: %w", err)
	}
	if f.VerticesOnly {
		scale = scale.VerticesOnly()
	}

	// Critical-path adjustment: move vectors from the sample graph's
	// critical share to the full graph's (both known before execution).
	// Both shares are computed on the *input* graphs so they stay
	// consistent for algorithms that internally symmetrize (the
	// symmetrization distorts both shares equally, so the ratio holds).
	shareFactor = 1.0
	shareG = bsp.CriticalShareOf(g, workers)
	if f.Mode == features.ModeCriticalShare && f.SampleCriticalShare > 0 && shareG > 0 {
		shareFactor = shareG / f.SampleCriticalShare
	}
	return scale, shareFactor, shareG, nil
}
