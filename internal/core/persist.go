package core

import (
	"fmt"

	"predict/internal/costmodel"
	"predict/internal/features"
	"predict/internal/history"
)

// Record converts a Fitted into a history record of kind "model": the main
// sample run's iteration rows plus the ModelMeta extrapolation context and
// full training matrix. key is the caller's canonical cache key, dataset a
// free-form input label.
func (f *Fitted) Record(key, dataset string) history.Record {
	names := make([]string, len(features.Pool()))
	for i, n := range features.Pool() {
		names[i] = string(n)
	}
	rec := history.Record{
		Algorithm:    f.Algorithm,
		Dataset:      dataset,
		Kind:         "model",
		FeatureNames: names,
		Model: &history.ModelMeta{
			Key:                   key,
			SampleVertices:        f.SampleVertices,
			SampleEdges:           f.SampleEdges,
			SampleVertexRatio:     f.SampleVertexRatio,
			SampleEdgeRatio:       f.SampleEdgeRatio,
			SampleCriticalShare:   f.SampleCriticalShare,
			ProfiledCriticalShare: f.ProfiledCriticalShare,
			SampleRunSeconds:      f.SampleRunSeconds,
			SampleWorkers:         f.SampleWorkers,
			Mode:                  int(f.Mode),
			VerticesOnly:          f.VerticesOnly,
			RemoteBytesPerIter:    append([]float64(nil), f.RemoteBytesPerIter...),
			MaxFeatures:           f.CostModel.MaxFeatures,
			DisableSelection:      f.CostModel.DisableSelection,
		},
	}
	for _, it := range f.IterFeatures {
		rec.Iterations = append(rec.Iterations, history.IterationRow{
			Features: it.Vector, Seconds: it.Seconds,
		})
	}
	for _, it := range f.TrainingRows {
		rec.Model.TrainingRows = append(rec.Model.TrainingRows, history.IterationRow{
			Features: it.Vector, Seconds: it.Seconds,
		})
	}
	return rec
}

// FittedFromRecord rebuilds a cacheable Fitted from a persisted "model"
// record by refitting the regression on the archived training matrix —
// cheap relative to the sample runs the record stands in for. The rebuilt
// Fitted has no Sample/SampleRun artifacts but extrapolates identically.
func FittedFromRecord(rec history.Record) (*Fitted, error) {
	if rec.Model == nil {
		return nil, fmt.Errorf("core: record %q is not a model record", rec.Dataset)
	}
	// Validate the feature schema and convert the extrapolation rows.
	tr, err := rec.TrainingRun()
	if err != nil {
		return nil, err
	}
	meta := rec.Model
	opts := costmodel.Options{
		MaxFeatures:      meta.MaxFeatures,
		DisableSelection: meta.DisableSelection,
	}
	training := rowsToIters(meta.TrainingRows)
	if len(training) == 0 {
		training = tr.Iters
	}
	model, err := costmodel.Train(
		[]costmodel.TrainingRun{{Source: "persisted " + rec.Dataset, Iters: training}}, opts)
	if err != nil {
		return nil, fmt.Errorf("core: refitting persisted model %q: %w", meta.Key, err)
	}
	return &Fitted{
		Algorithm:             rec.Algorithm,
		Iterations:            len(tr.Iters),
		Model:                 model,
		IterFeatures:          tr.Iters,
		RemoteBytesPerIter:    append([]float64(nil), meta.RemoteBytesPerIter...),
		SampleVertices:        meta.SampleVertices,
		SampleEdges:           meta.SampleEdges,
		SampleVertexRatio:     meta.SampleVertexRatio,
		SampleEdgeRatio:       meta.SampleEdgeRatio,
		SampleCriticalShare:   meta.SampleCriticalShare,
		ProfiledCriticalShare: meta.ProfiledCriticalShare,
		SampleRunSeconds:      meta.SampleRunSeconds,
		SampleWorkers:         meta.SampleWorkers,
		Mode:                  features.Mode(meta.Mode),
		VerticesOnly:          meta.VerticesOnly,
		TrainingRows:          training,
		CostModel:             opts,
	}, nil
}

// rowsToIters converts persisted rows back into feature observations.
func rowsToIters(rows []history.IterationRow) []features.IterationFeatures {
	var out []features.IterationFeatures
	for _, row := range rows {
		out = append(out, features.IterationFeatures{
			Vector:  append(features.Vector(nil), row.Features...),
			Seconds: row.Seconds,
		})
	}
	return out
}
